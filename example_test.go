//lint:file-ignore SA1019 this file deliberately exercises the deprecated compatibility wrappers.
package acstab_test

import (
	"fmt"
	"log"

	acstab "acstab"
)

// The paper's single-node flow: probe one node of a closed-loop circuit
// and read the resonance parameters off the stability plot.
func ExampleAnalyzeNode() {
	ckt, err := acstab.ParseNetlist(`resonant tank
R1 t 0 318
L1 t 0 25.33u
C1 t 0 1n
`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := acstab.AnalyzeNode(ckt, "t", acstab.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	d := res.Dominant
	fmt.Printf("natural frequency ~ %.0f kHz\n", d.FreqHz/1000)
	fmt.Printf("damping ratio %.2f\n", d.Zeta)
	fmt.Printf("kind: %s\n", d.Kind)
	// Output:
	// natural frequency ~ 1000 kHz
	// damping ratio 0.25
	// kind: normal
}

// The all-nodes flow groups resonant nodes into feedback loops, like the
// paper's Table 2.
func ExampleAnalyzeAllNodes() {
	ckt, err := acstab.ParseNetlist(`two tanks
R1 a 0 318
L1 a 0 25.33u
C1 a 0 1n
R2 b 0 318
L2 b 0 2.533u
C2 b 0 0.1n
`)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := acstab.AnalyzeAllNodes(ckt, acstab.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	for _, l := range rep.Loops {
		fmt.Printf("loop %d at ~%.0f MHz with %d node(s)\n",
			l.ID, l.FreqHz/1e6, len(l.Nodes))
	}
	// Output:
	// loop 1 at ~1 MHz with 1 node(s)
	// loop 2 at ~10 MHz with 1 node(s)
}

// The simulator substrate is directly usable: DC operating point, AC
// sweeps with the waveform calculator, and transient analysis.
func ExampleCircuit_OperatingPoint() {
	ckt, err := acstab.ParseNetlist(`divider
V1 in 0 10
R1 in out 3k
R2 out 0 1k
`)
	if err != nil {
		log.Fatal(err)
	}
	op, err := ckt.OperatingPoint()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("v(out) = %.2f V\n", op["out"])
	// Output:
	// v(out) = 2.50 V
}
