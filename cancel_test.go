package acstab_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"acstab"
)

// ladder builds an n-stage RC ladder driven by a DC source — enough
// nodes that an all-nodes run takes many linear solves, so a canceled
// run returning promptly is observable.
func ladder(n int) *acstab.Circuit {
	c := acstab.NewCircuit("cancel ladder")
	c.AddVDC("v1", "n0", "0", 1)
	for i := 0; i < n; i++ {
		c.AddR(fmt.Sprintf("r%d", i), fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", i+1), 1e3)
		c.AddC(fmt.Sprintf("c%d", i), fmt.Sprintf("n%d", i+1), "0", 1e-9)
	}
	return c
}

func TestAnalyzeAllNodesCanceledUpFront(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := acstab.AnalyzeAllNodesContext(ctx, ladder(40), acstab.DefaultOptions())
	if err == nil {
		t.Fatal("canceled run should fail")
	}
	if !errors.Is(err, acstab.ErrCanceled) {
		t.Errorf("errors.Is(err, ErrCanceled) = false for %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false for %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("pre-canceled run took %s, want immediate return", d)
	}
}

func TestAnalyzeAllNodesCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := acstab.AnalyzeAllNodesContext(ctx, ladder(60), acstab.DefaultOptions())
	elapsed := time.Since(start)
	if !errors.Is(err, acstab.ErrCanceled) {
		t.Fatalf("mid-run cancel: err = %v, want ErrCanceled", err)
	}
	// The run must stop within one linear solve of the cancellation, not
	// finish the sweep. Full runs on this ladder take far longer than the
	// generous bound here.
	if elapsed > 5*time.Second {
		t.Errorf("canceled run took %s, want prompt abort", elapsed)
	}
}

func TestAnalyzeAllNodesDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err := acstab.AnalyzeAllNodesContext(ctx, ladder(60), acstab.DefaultOptions())
	if !errors.Is(err, acstab.ErrCanceled) {
		t.Errorf("errors.Is(err, ErrCanceled) = false for %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("errors.Is(err, context.DeadlineExceeded) = false for %v", err)
	}
}

func TestSentinelsCrossAPIBoundary(t *testing.T) {
	ctx := context.Background()
	ckt := ladder(3)
	if _, err := acstab.AnalyzeNodeContext(ctx, ckt, "nosuch", acstab.DefaultOptions()); !errors.Is(err, acstab.ErrUnknownNode) {
		t.Errorf("unknown node: err = %v, want ErrUnknownNode", err)
	}
	// Context cancellation surfaces through the single-node entry point
	// and the simulation entry points too.
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := acstab.AnalyzeNodeContext(canceled, ckt, "n1", acstab.DefaultOptions()); !errors.Is(err, acstab.ErrCanceled) {
		t.Errorf("AnalyzeNodeContext: err = %v, want ErrCanceled", err)
	}
	if _, err := ckt.ACSweepContext(canceled, 1e3, 1e9, 10); !errors.Is(err, acstab.ErrCanceled) {
		t.Errorf("ACSweepContext: err = %v, want ErrCanceled", err)
	}
	if _, err := ckt.TransientContext(canceled, 1e-6, 1e-9); !errors.Is(err, acstab.ErrCanceled) {
		t.Errorf("TransientContext: err = %v, want ErrCanceled", err)
	}
	if _, err := ckt.PolesContext(canceled, 1e3, 1e9); !errors.Is(err, acstab.ErrCanceled) {
		t.Errorf("PolesContext: err = %v, want ErrCanceled", err)
	}
}
