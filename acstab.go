// Package acstab is a tool and library for AC-stability analysis of
// continuous-time closed-loop circuits, reproducing Milev & Burt, "A Tool
// and Methodology for AC-Stability Analysis of Continuous-Time Closed-Loop
// Systems" (DATE 2005).
//
// The method injects a unit AC current at a circuit node, sweeps
// frequency, and post-processes the node's response magnitude into the
// stability plot P(ω) = d²ln|T|/d(lnω)². Complex pole pairs — potential
// oscillators — appear as sharp negative peaks of depth -1/ζ² at their
// natural frequency, regardless of how many real poles and zeros surround
// them, and without breaking any feedback loop. Running the injection at
// every node and clustering peaks by frequency identifies each feedback
// loop in the circuit (main loop and local loops alike) along with its
// damping ratio, estimated phase margin, and equivalent step overshoot.
//
// The package bundles everything the methodology needs: a SPICE-class
// circuit simulator (netlist parsing, device models, DC operating point,
// AC and transient analyses), the stability-plot analysis, run
// orchestration with parallel sweeps, and report generation.
//
// # Quick start
//
//	ckt, _ := acstab.ParseNetlist(netlistText)
//	rep, _ := acstab.AnalyzeAllNodesContext(ctx, ckt, acstab.DefaultOptions())
//	rep.WriteText(os.Stdout)
//
// # Cancellation and deadlines
//
// Every analysis entry point has a Context variant
// (AnalyzeNodeContext, AnalyzeAllNodesContext, ACSweepContext,
// TransientContext, PolesContext). A canceled or deadline-expired
// context aborts the run within one linear solve; the returned error
// wraps ErrCanceled plus the context's own error, so
// errors.Is(err, context.DeadlineExceeded) still distinguishes a
// deadline from an explicit cancel. The context-free names are kept as
// thin deprecated wrappers over context.Background().
package acstab

import (
	"context"
	"fmt"
	"io"
	"io/fs"
	"strings"

	"acstab/internal/acerr"
	"acstab/internal/netlist"
	"acstab/internal/report"
	"acstab/internal/stab"
	"acstab/internal/tool"
	"acstab/internal/wave"
)

// Sentinel errors. Internal layers wrap these with %w, so errors.Is
// recognizes them across the API boundary no matter how much context a
// failure accumulated on the way out.
var (
	// ErrCanceled is returned when a run is aborted by context
	// cancellation or deadline expiry. The chain also wraps the
	// context's own error (context.Canceled or
	// context.DeadlineExceeded).
	ErrCanceled = acerr.ErrCanceled
	// ErrNoConvergence is returned when the DC operating point cannot
	// be found: plain Newton, gmin stepping, and source stepping all
	// failed.
	ErrNoConvergence = acerr.ErrNoConvergence
	// ErrSingularMatrix is returned when a linear solve hits an
	// (effectively) singular MNA matrix — typically a floating node or
	// a degenerate source loop.
	ErrSingularMatrix = acerr.ErrSingularMatrix
	// ErrUnknownNode is returned when a named node does not exist in
	// the (flattened) circuit.
	ErrUnknownNode = acerr.ErrUnknownNode
)

// Circuit is a captured circuit: parse one from netlist text or build one
// programmatically with the Add* methods.
type Circuit struct {
	n *netlist.Circuit
}

// ParseNetlist reads a SPICE-style netlist (first line is the title;
// R C L V I E G F H D Q M X elements, .subckt, .model, .param, .temp,
// .option cards).
func ParseNetlist(src string) (*Circuit, error) {
	c, err := netlist.Parse(src)
	if err != nil {
		return nil, err
	}
	return &Circuit{n: c}, nil
}

// ParseNetlistFS parses a netlist from a filesystem, resolving .include
// directives relative to the including file — the entry point for
// multi-file decks (model libraries, PDK fragments).
func ParseNetlistFS(fsys fs.FS, name string) (*Circuit, error) {
	c, err := netlist.ParseFS(fsys, name)
	if err != nil {
		return nil, err
	}
	return &Circuit{n: c}, nil
}

// NewCircuit starts an empty circuit with the given title.
func NewCircuit(title string) *Circuit {
	return &Circuit{n: netlist.NewCircuit(title)}
}

// Title returns the circuit title.
func (c *Circuit) Title() string { return c.n.Title }

// SetTemp sets the simulation temperature in Celsius (default 27).
func (c *Circuit) SetTemp(tc float64) { c.n.Temp = tc }

// SetParam defines or overrides a design variable.
func (c *Circuit) SetParam(name string, v float64) {
	c.n.Params[strings.ToLower(name)] = v
}

// Netlist renders the circuit back as netlist text.
func (c *Circuit) Netlist() string { return netlist.Format(c.n) }

// Nodes lists all non-ground nodes.
func (c *Circuit) Nodes() []string { return c.n.Nodes() }

// AddR adds a resistor between two nodes (ohms).
func (c *Circuit) AddR(name, n1, n2 string, ohms float64) { c.n.AddR(name, n1, n2, ohms) }

// AddC adds a capacitor (farads).
func (c *Circuit) AddC(name, n1, n2 string, farads float64) { c.n.AddC(name, n1, n2, farads) }

// AddL adds an inductor (henries).
func (c *Circuit) AddL(name, n1, n2 string, henries float64) { c.n.AddL(name, n1, n2, henries) }

// AddVDC adds a DC voltage source from n+ to n-.
func (c *Circuit) AddVDC(name, np, nn string, volts float64) { c.n.AddVDC(name, np, nn, volts) }

// AddIDC adds a DC current source (SPICE convention: positive current
// flows from n+ through the source into n-).
func (c *Circuit) AddIDC(name, np, nn string, amps float64) { c.n.AddIDC(name, np, nn, amps) }

// AddVAC adds a voltage source with both DC and AC small-signal values.
func (c *Circuit) AddVAC(name, np, nn string, dc, acMag float64) {
	c.n.AddV(name, np, nn, netlist.SourceSpec{DC: dc, ACMag: acMag})
}

// AddVStep adds a voltage source that steps from v1 to v2 at time td.
func (c *Circuit) AddVStep(name, np, nn string, v1, v2, td float64) {
	c.n.AddV(name, np, nn, netlist.SourceSpec{
		DC:   v1,
		Tran: netlist.PulseFunc{V1: v1, V2: v2, TD: td, TR: 1e-9, TF: 1e-9, PW: 1e3, PER: 2e3},
	})
}

// AddG adds a voltage-controlled current source: i(np->nn) = gm*v(cp,cn).
func (c *Circuit) AddG(name, np, nn, cp, cn string, gm float64) { c.n.AddG(name, np, nn, cp, cn, gm) }

// AddE adds a voltage-controlled voltage source: v(np,nn) = gain*v(cp,cn).
func (c *Circuit) AddE(name, np, nn, cp, cn string, gain float64) {
	c.n.AddE(name, np, nn, cp, cn, gain)
}

// AddD adds a diode with a previously registered model.
func (c *Circuit) AddD(name, anode, cathode, model string) { c.n.AddD(name, anode, cathode, model) }

// AddQ adds a BJT (collector, base, emitter) with a registered npn/pnp
// model.
func (c *Circuit) AddQ(name, col, base, emit, model string) { c.n.AddQ(name, col, base, emit, model) }

// AddM adds a MOSFET (drain, gate, source, bulk) with a registered
// nmos/pmos model and channel dimensions in meters.
func (c *Circuit) AddM(name, d, g, s, b, model string, w, l float64) {
	c.n.AddM(name, d, g, s, b, model, w, l)
}

// SetModel registers a device model ("d", "npn", "pnp", "nmos", "pmos")
// with its parameters.
func (c *Circuit) SetModel(name, typ string, params map[string]float64) {
	c.n.SetModel(name, typ, params)
}

// Options configures a stability run.
type Options struct {
	// FStart and FStop bound the frequency sweep in Hz (default 1 kHz to
	// 1 GHz).
	FStart, FStop float64
	// PointsPerDecade sets the sweep density (default 40).
	PointsPerDecade int
	// LoopTolerance is the relative natural-frequency tolerance for
	// grouping nodes into loops (default 0.12).
	LoopTolerance float64
	// Workers sets parallel sweep workers (0 = all CPUs, 1 = serial).
	Workers int
	// SkipNodes excludes nodes whose names contain any of these
	// substrings.
	SkipNodes []string
	// OnlySubckt restricts the all-nodes run to one subcircuit instance
	// (instance path prefix, e.g. "x1"); ports shared with the parent are
	// included.
	OnlySubckt string
}

// DefaultOptions returns the documented defaults.
func DefaultOptions() Options {
	return Options{FStart: 1e3, FStop: 1e9, PointsPerDecade: 40, LoopTolerance: 0.12}
}

func (o Options) toTool() tool.Options {
	t := tool.DefaultOptions()
	if o.FStart > 0 {
		t.FStart = o.FStart
	}
	if o.FStop > 0 {
		t.FStop = o.FStop
	}
	if o.PointsPerDecade > 0 {
		t.PointsPerDecade = o.PointsPerDecade
	}
	if o.LoopTolerance > 0 {
		t.LoopTol = o.LoopTolerance
	}
	t.Workers = o.Workers
	t.SkipNodes = o.SkipNodes
	t.OnlySubckt = o.OnlySubckt
	return t
}

// PeakKind classifies a stability-plot peak.
type PeakKind string

// Peak kinds, mirroring the tool's report notices.
const (
	PeakNormal     PeakKind = "normal"
	PeakEndOfRange PeakKind = "end-of-range"
	PeakMinMax     PeakKind = "min/max"
)

// Peak is one detected stability-plot extremum.
type Peak struct {
	// FreqHz is the natural frequency of the (potential) oscillation.
	FreqHz float64
	// Value is the performance index: negative for complex poles,
	// positive for complex zeros; P(ωn) = -1/ζ².
	Value float64
	Kind  PeakKind
	// IsZero marks a complex-zero (positive) peak.
	IsZero bool
	// Zeta is the damping ratio (NaN for zero peaks).
	Zeta float64
	// PhaseMarginDeg estimates the loop phase margin from Zeta.
	PhaseMarginDeg float64
	// OvershootPct is the equivalent unit-step overshoot.
	OvershootPct float64
}

func fromStabPeak(p stab.Peak) Peak {
	return Peak{
		FreqHz: p.Freq, Value: p.Value, Kind: PeakKind(p.Type.String()),
		IsZero: p.IsZero, Zeta: p.Zeta,
		PhaseMarginDeg: p.PhaseMarginDeg, OvershootPct: p.OvershootPct,
	}
}

// NodeReport is the stability analysis of one node.
type NodeReport struct {
	Node string
	// Impedance is the probed |Z(f)| waveform.
	Impedance *Waveform
	// StabilityPlot is P(f).
	StabilityPlot *Waveform
	// Peaks lists every detected extremum sorted by frequency.
	Peaks []Peak
	// Dominant is the deepest negative peak, or nil.
	Dominant   *Peak
	Skipped    bool
	SkipReason string
}

// Loop is one identified feedback loop.
type Loop struct {
	ID             int
	FreqHz         float64
	WorstPeak      float64
	Zeta           float64
	PhaseMarginDeg float64
	OvershootPct   float64
	Nodes          []string
}

// StabilityReport is the outcome of an all-nodes run.
type StabilityReport struct {
	CircuitTitle string
	Loops        []Loop
	Nodes        []NodeReport

	raw  *tool.Report
	tool *tool.Tool
}

// AnalyzeNode runs the "Single Node" mode at the named node.
//
// Deprecated: use AnalyzeNodeContext, which can be canceled and
// deadlined. This wrapper runs with context.Background().
func AnalyzeNode(c *Circuit, node string, opts Options) (*NodeReport, error) {
	return AnalyzeNodeContext(context.Background(), c, node, opts)
}

// AnalyzeNodeContext runs the "Single Node" mode at the named node.
//
// Errors: ErrUnknownNode if the node does not exist, ErrNoConvergence
// if the operating point cannot be found, ErrSingularMatrix on a
// degenerate MNA system, and ErrCanceled once ctx is done (the run
// aborts within one linear solve).
func AnalyzeNodeContext(ctx context.Context, c *Circuit, node string, opts Options) (*NodeReport, error) {
	if c == nil || c.n == nil {
		return nil, fmt.Errorf("acstab: empty circuit (use NewCircuit or ParseNetlist)")
	}
	t, err := tool.New(c.n, opts.toTool())
	if err != nil {
		return nil, err
	}
	nr, err := t.SingleNode(ctx, node)
	if err != nil {
		return nil, err
	}
	out := fromNodeResult(nr)
	return &out, nil
}

func fromNodeResult(nr *tool.NodeResult) NodeReport {
	out := NodeReport{Node: nr.Node, Skipped: nr.Skipped, SkipReason: nr.SkipReason}
	if nr.Impedance != nil {
		out.Impedance = &Waveform{w: nr.Impedance}
	}
	if nr.Stab != nil {
		out.StabilityPlot = &Waveform{w: nr.Stab.Plot}
		for _, p := range nr.Stab.Peaks {
			out.Peaks = append(out.Peaks, fromStabPeak(p))
		}
	}
	if nr.Best != nil {
		p := fromStabPeak(*nr.Best)
		out.Dominant = &p
	}
	return out
}

// AnalyzeAllNodes runs the "All Nodes" mode: every non-ground node is
// probed and the resonant nodes are clustered into feedback loops.
//
// Deprecated: use AnalyzeAllNodesContext, which can be canceled and
// deadlined. This wrapper runs with context.Background().
func AnalyzeAllNodes(c *Circuit, opts Options) (*StabilityReport, error) {
	return AnalyzeAllNodesContext(context.Background(), c, opts)
}

// AnalyzeAllNodesContext runs the "All Nodes" mode: every non-ground
// node is probed and the resonant nodes are clustered into feedback
// loops.
//
// Errors: ErrNoConvergence if the operating point cannot be found,
// ErrSingularMatrix on a degenerate MNA system, and ErrCanceled once
// ctx is done — the sweep workers and the Newton loop all observe the
// context, so cancellation aborts within one linear solve.
func AnalyzeAllNodesContext(ctx context.Context, c *Circuit, opts Options) (*StabilityReport, error) {
	if c == nil || c.n == nil {
		return nil, fmt.Errorf("acstab: empty circuit (use NewCircuit or ParseNetlist)")
	}
	t, err := tool.New(c.n, opts.toTool())
	if err != nil {
		return nil, err
	}
	rep, err := t.AllNodes(ctx)
	if err != nil {
		return nil, err
	}
	out := &StabilityReport{CircuitTitle: rep.CircuitTitle, raw: rep, tool: t}
	for _, l := range rep.Loops {
		ol := Loop{
			ID: l.ID, FreqHz: l.Freq, WorstPeak: l.WorstPeak, Zeta: l.Zeta,
			PhaseMarginDeg: l.PhaseMarginDeg, OvershootPct: l.OvershootPct,
		}
		for _, np := range l.Nodes {
			ol.Nodes = append(ol.Nodes, np.Node)
		}
		out.Loops = append(out.Loops, ol)
	}
	for i := range rep.Nodes {
		out.Nodes = append(out.Nodes, fromNodeResult(&rep.Nodes[i]))
	}
	return out, nil
}

// WriteText renders the report in the paper's Table 2 layout.
func (r *StabilityReport) WriteText(w io.Writer) error { return report.Text(w, r.raw) }

// WriteCSV renders one CSV row per node.
func (r *StabilityReport) WriteCSV(w io.Writer) error { return report.CSV(w, r.raw) }

// WriteJSON renders the report as JSON.
func (r *StabilityReport) WriteJSON(w io.Writer) error { return report.JSON(w, r.raw) }

// WriteAnnotatedNetlist renders the flattened netlist with per-node
// stability annotations (the schematic-annotation substitute).
func (r *StabilityReport) WriteAnnotatedNetlist(w io.Writer) error {
	return report.Annotate(w, r.tool.Flat, r.raw)
}

// Waveform is a sampled waveform handle.
type Waveform struct {
	w *wave.Wave
}

// Samples returns copies of the x and real-valued y samples.
func (w *Waveform) Samples() (x, y []float64) {
	x = append([]float64(nil), w.w.X...)
	return x, w.w.Real()
}

// At returns the (interpolated) value at x.
func (w *Waveform) At(x float64) float64 { return w.w.At(x) }

// Plot renders the waveform as an ASCII chart.
func (w *Waveform) Plot(out io.Writer, title string) error {
	return wave.Plot(out, wave.PlotOptions{Title: title, LogX: w.w.LogX,
		XLabel: w.w.XUnit, YLabel: w.w.YUnit}, w.w)
}

// String summarizes the waveform.
func (w *Waveform) String() string {
	if w.w.Len() == 0 {
		return "waveform(empty)"
	}
	return fmt.Sprintf("waveform(%s, %d pts, x %g..%g)", w.w.Name, w.w.Len(),
		w.w.X[0], w.w.X[w.w.Len()-1])
}
