// Package acerr defines the sentinel errors shared by every analysis
// layer. The public acstab package re-exports them (acstab.ErrCanceled,
// acstab.ErrNoConvergence, acstab.ErrSingularMatrix,
// acstab.ErrUnknownNode), and the internal layers wrap them with %w so
// errors.Is works across the API boundary regardless of how many layers
// of context a failure picked up on the way out.
package acerr

import (
	"context"
	"errors"
	"fmt"
)

// Sentinel errors. The texts are chosen so existing wrapped messages keep
// their historical wording (e.g. "tool: unknown node \"x\"" is now
// produced by wrapping ErrUnknownNode).
var (
	// ErrCanceled marks a run aborted by context cancellation or
	// deadline expiry. Errors wrapping it also wrap the context's own
	// error, so errors.Is(err, context.Canceled) and
	// errors.Is(err, context.DeadlineExceeded) distinguish the cause.
	ErrCanceled = errors.New("run canceled")
	// ErrNoConvergence marks a DC solve whose every homotopy failed.
	ErrNoConvergence = errors.New("analysis: DC did not converge")
	// ErrSingularMatrix marks a linear solve that hit an (effectively)
	// singular matrix.
	ErrSingularMatrix = errors.New("singular matrix")
	// ErrUnknownNode marks a reference to a node the circuit does not
	// have.
	ErrUnknownNode = errors.New("unknown node")
	// ErrAccuracy marks a linear solve whose scale-relative residual
	// stayed above the configured threshold even after iterative
	// refinement and a fresh full factorization — the result is finite
	// but numerically untrustworthy, which the stability analysis (a
	// double differentiation) must not silently consume.
	ErrAccuracy = errors.New("solution exceeds residual tolerance")
)

// Canceled wraps the context's error (which must be non-nil) with
// ErrCanceled, preserving the context.Canceled / context.DeadlineExceeded
// distinction in the chain.
func Canceled(ctx context.Context) error {
	return fmt.Errorf("%w: %w", ErrCanceled, ctx.Err())
}

// Ctx returns nil while ctx is live and a Canceled-wrapped error once it
// is done — the one-line guard the solver loops call between units of
// work (Newton iterations, frequency points, transient steps).
func Ctx(ctx context.Context) error {
	if ctx != nil && ctx.Err() != nil {
		return Canceled(ctx)
	}
	return nil
}
