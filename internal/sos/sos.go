// Package sos provides the closed-form second-order-system relationships
// used throughout the paper (its Table 1): damping ratio vs. transient
// overshoot, phase margin, frequency-response peak magnitude, and the
// stability-plot performance index P(wn) = -1/zeta^2 (paper Eq. 1.4).
//
// Source relationships follow Dorf & Bishop, "Modern Control Systems"
// (paper reference [1]).
package sos

import "math"

// PerformanceIndex returns the stability-plot value at the natural
// frequency for damping ratio zeta: P(wn) = -1/zeta^2. For zeta = 0 it
// returns -Inf, matching the last row of the paper's Table 1.
func PerformanceIndex(zeta float64) float64 {
	if zeta == 0 {
		return math.Inf(-1)
	}
	return -1 / (zeta * zeta)
}

// ZetaFromIndex inverts PerformanceIndex: given a (negative) stability-plot
// peak value, it returns the implied damping ratio. Non-negative peaks
// return NaN (no resonance).
func ZetaFromIndex(p float64) float64 {
	if p >= 0 {
		return math.NaN()
	}
	return 1 / math.Sqrt(-p)
}

// Overshoot returns the percent overshoot of the unit-step response of a
// standard second-order system: 100*exp(-pi*zeta/sqrt(1-zeta^2)).
// For zeta >= 1 the response is non-oscillatory and overshoot is 0; for
// zeta = 0 it is 100.
func Overshoot(zeta float64) float64 {
	if zeta >= 1 {
		return 0
	}
	if zeta <= 0 {
		return 100
	}
	return 100 * math.Exp(-math.Pi*zeta/math.Sqrt(1-zeta*zeta))
}

// ZetaFromOvershoot inverts Overshoot for 0 < os < 100 (percent).
func ZetaFromOvershoot(os float64) float64 {
	if os <= 0 {
		return 1
	}
	if os >= 100 {
		return 0
	}
	l := math.Log(os / 100)
	return -l / math.Sqrt(math.Pi*math.Pi+l*l)
}

// PhaseMargin returns the phase margin in degrees of the canonical
// second-order loop G(s) = wn^2/(s(s+2 zeta wn)) closed with unity
// feedback:
//
//	PM = atan( 2 zeta / sqrt( sqrt(1+4 zeta^4) - 2 zeta^2 ) )
//
// This is the mapping used by the paper's Table 1 (e.g. zeta=0.5 -> ~51.8,
// tabulated as 50). For zeta = 0 it returns 0.
func PhaseMargin(zeta float64) float64 {
	if zeta <= 0 {
		return 0
	}
	inner := math.Sqrt(1+4*math.Pow(zeta, 4)) - 2*zeta*zeta
	if inner <= 0 {
		return 90
	}
	return math.Atan(2*zeta/math.Sqrt(inner)) * 180 / math.Pi
}

// ZetaFromPhaseMargin numerically inverts PhaseMargin (degrees in (0,90)).
func ZetaFromPhaseMargin(pmDeg float64) float64 {
	if pmDeg <= 0 {
		return 0
	}
	lo, hi := 0.0, 2.0
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if PhaseMargin(mid) < pmDeg {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// PeakMagnitude returns the maximum of |T(jw)| for the standard
// second-order low-pass with unit DC gain: Mp = 1/(2 zeta sqrt(1-zeta^2))
// for zeta < 1/sqrt(2); for larger zeta there is no peak and it returns 1.
// For zeta = 0 it returns +Inf.
func PeakMagnitude(zeta float64) float64 {
	if zeta <= 0 {
		return math.Inf(1)
	}
	if zeta >= math.Sqrt2/2 {
		return 1
	}
	return 1 / (2 * zeta * math.Sqrt(1-zeta*zeta))
}

// ResonantFrequency returns the frequency (as a fraction of wn) at which
// |T(jw)| peaks: wr/wn = sqrt(1-2 zeta^2) for zeta < 1/sqrt(2), else 0.
func ResonantFrequency(zeta float64) float64 {
	if zeta >= math.Sqrt2/2 {
		return 0
	}
	return math.Sqrt(1 - 2*zeta*zeta)
}

// Magnitude returns |T(jw)| of the normalized second-order system (wn = 1)
// at normalized frequency w: 1/sqrt((1-w^2)^2 + (2 zeta w)^2). Paper
// Eq. (1.2).
func Magnitude(zeta, w float64) float64 {
	a := 1 - w*w
	b := 2 * zeta * w
	return 1 / math.Sqrt(a*a+b*b)
}

// StabilityPlot returns the exact stability-plot function
// P(w) = d^2 ln|T| / d(ln w)^2 of the normalized second-order system at
// normalized frequency w (analytic differentiation of Eq. 1.2).
func StabilityPlot(zeta, w float64) float64 {
	// f(w) = (1-w^2)^2 + 4 z^2 w^2 ; ln|T| = -0.5 ln f
	// P = -0.5 * w d/dw ( w f'/f )
	f := (1-w*w)*(1-w*w) + 4*zeta*zeta*w*w
	if f == 0 {
		return math.Inf(-1)
	}
	fp := -4*w*(1-w*w) + 8*zeta*zeta*w
	fpp := -4 + 12*w*w + 8*zeta*zeta
	// d/dw (w f'/f) = f'/f + w f''/f - w (f')^2/f^2
	return -0.5 * w * (fp/f + w*fpp/f - w*fp*fp/(f*f))
}

// Table1Row is one row of the paper's Table 1.
type Table1Row struct {
	Zeta             float64
	OvershootPct     float64 // time domain
	PhaseMarginDeg   float64 // frequency domain (NaN where paper prints "-")
	PeakMagnitude    float64 // frequency domain (NaN where paper prints "-")
	PerformanceIndex float64 // stability plot peak
}

// PaperTable1 returns the paper's Table 1 exactly as printed (including the
// rounding the authors applied and the "-" cells encoded as NaN).
func PaperTable1() []Table1Row {
	nan := math.NaN()
	return []Table1Row{
		{1.0, 0, nan, nan, -1.0},
		{0.9, 0, nan, nan, -1.2},
		{0.8, 2, nan, nan, -1.6},
		{0.7, 5, 70, 1.01, -2.0},
		{0.6, 10, 60, 1.04, -2.8},
		{0.5, 16, 50, 1.15, -4.0},
		{0.4, 25, 40, 1.4, -6.3},
		{0.3, 37, 30, 1.8, -11},
		{0.2, 53, 20, 2.6, -25},
		{0.1, 73, 10, 5.0, -100},
		{0.0, 100, 0, math.Inf(1), math.Inf(-1)},
	}
}

// ComputedTable1 regenerates Table 1 from the closed forms for the same
// zeta values as the paper.
func ComputedTable1() []Table1Row {
	zetas := []float64{1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1, 0.0}
	rows := make([]Table1Row, len(zetas))
	for i, z := range zetas {
		rows[i] = Table1Row{
			Zeta:             z,
			OvershootPct:     Overshoot(z),
			PhaseMarginDeg:   PhaseMargin(z),
			PeakMagnitude:    PeakMagnitude(z),
			PerformanceIndex: PerformanceIndex(z),
		}
	}
	return rows
}
