package sos

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"acstab/internal/num"
)

func TestPerformanceIndexTable1(t *testing.T) {
	// Paper Table 1, performance index column: P = -1/zeta^2.
	cases := []struct{ zeta, want, tol float64 }{
		{1.0, -1.0, 0.01},
		{0.9, -1.2, 0.05}, // paper rounds 1.235 to 1.2
		{0.8, -1.6, 0.05}, // 1.5625
		{0.7, -2.0, 0.05}, // 2.041
		{0.6, -2.8, 0.05}, // 2.778
		{0.5, -4.0, 0.01},
		{0.4, -6.3, 0.01}, // 6.25
		{0.3, -11, 0.02},  // 11.1
		{0.2, -25, 0.01},
		{0.1, -100, 0.01},
	}
	for _, c := range cases {
		got := PerformanceIndex(c.zeta)
		if math.Abs(got-c.want) > c.tol*math.Abs(c.want) {
			t.Errorf("PerformanceIndex(%g) = %g, want ~%g", c.zeta, got, c.want)
		}
	}
	if !math.IsInf(PerformanceIndex(0), -1) {
		t.Error("PerformanceIndex(0) should be -Inf")
	}
}

func TestOvershootTable1(t *testing.T) {
	cases := []struct{ zeta, want, tol float64 }{
		{0.9, 0, 0.25},
		{0.8, 2, 0.7},
		{0.7, 5, 0.7},
		{0.6, 10, 1},
		{0.5, 16, 1},
		{0.4, 25, 1},
		{0.3, 37, 1},
		{0.2, 53, 1},
		{0.1, 73, 1},
	}
	for _, c := range cases {
		got := Overshoot(c.zeta)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("Overshoot(%g) = %g, want ~%g", c.zeta, got, c.want)
		}
	}
	if Overshoot(1) != 0 || Overshoot(1.5) != 0 {
		t.Error("no overshoot for zeta >= 1")
	}
	if Overshoot(0) != 100 {
		t.Error("Overshoot(0) = 100")
	}
}

func TestPhaseMarginTable1(t *testing.T) {
	// Paper tabulates PM to coarse precision (e.g. 0.5 -> 50 though the
	// exact value is 51.8). Allow the paper's rounding.
	cases := []struct{ zeta, want, tol float64 }{
		{0.7, 70, 5},
		{0.6, 60, 5},
		{0.5, 50, 5},
		{0.4, 40, 5},
		{0.3, 30, 5},
		{0.2, 20, 5},
		{0.1, 10, 5},
	}
	for _, c := range cases {
		got := PhaseMargin(c.zeta)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("PhaseMargin(%g) = %g, want ~%g", c.zeta, got, c.want)
		}
	}
	if PhaseMargin(0) != 0 {
		t.Error("PhaseMargin(0) = 0")
	}
}

func TestPhaseMarginApprox100Zeta(t *testing.T) {
	// Classic rule of thumb: PM ~ 100*zeta for zeta <= 0.6.
	for _, z := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6} {
		pm := PhaseMargin(z)
		if math.Abs(pm-100*z) > 7 {
			t.Errorf("PM(%g) = %g deviates from 100*zeta", z, pm)
		}
	}
}

func TestPeakMagnitudeTable1(t *testing.T) {
	cases := []struct{ zeta, want, tol float64 }{
		{0.7, 1.01, 0.02},
		{0.6, 1.04, 0.02},
		{0.5, 1.15, 0.01},
		{0.4, 1.4, 0.05},
		{0.3, 1.8, 0.06},
		{0.2, 2.6, 0.06},
		{0.1, 5.0, 0.05},
	}
	for _, c := range cases {
		got := PeakMagnitude(c.zeta)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("PeakMagnitude(%g) = %g, want ~%g", c.zeta, got, c.want)
		}
	}
	if PeakMagnitude(0.8) != 1 {
		t.Error("no peak above 1/sqrt2")
	}
	if !math.IsInf(PeakMagnitude(0), 1) {
		t.Error("PeakMagnitude(0) = +Inf")
	}
}

func TestStabilityPlotAtNaturalFrequency(t *testing.T) {
	// Paper Eq. (1.4): P(wn) = -1/zeta^2 exactly at w = 1.
	for _, z := range []float64{0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1.0} {
		got := StabilityPlot(z, 1)
		want := -1 / (z * z)
		if !num.ApproxEqual(got, want, 1e-9, 0) {
			t.Errorf("StabilityPlot(%g, 1) = %g, want %g", z, got, want)
		}
	}
}

func TestStabilityPlotMatchesNumericalDerivative(t *testing.T) {
	// The closed form must agree with a finite-difference second derivative
	// of ln Magnitude in ln w.
	h := 1e-4
	for _, z := range []float64{0.2, 0.5, 0.8} {
		for _, w := range []float64{0.3, 0.7, 1.0, 1.4, 3.0} {
			u := math.Log(w)
			l := func(u float64) float64 { return math.Log(Magnitude(z, math.Exp(u))) }
			numd := (l(u+h) - 2*l(u) + l(u-h)) / (h * h)
			got := StabilityPlot(z, w)
			if math.Abs(got-numd) > 1e-3*(1+math.Abs(numd)) {
				t.Errorf("z=%g w=%g: closed form %g vs numeric %g", z, w, got, numd)
			}
		}
	}
}

func TestStabilityPlotAsymptotes(t *testing.T) {
	// Far below and far above the resonance P -> 0 (log-log slope constant).
	for _, z := range []float64{0.2, 0.6} {
		if p := StabilityPlot(z, 1e-3); math.Abs(p) > 1e-2 {
			t.Errorf("P at low freq = %g, want ~0", p)
		}
		if p := StabilityPlot(z, 1e3); math.Abs(p) > 1e-2 {
			t.Errorf("P at high freq = %g, want ~0", p)
		}
	}
}

func TestInverses(t *testing.T) {
	for _, z := range []float64{0.1, 0.3, 0.5, 0.7} {
		if got := ZetaFromIndex(PerformanceIndex(z)); !num.ApproxEqual(got, z, 1e-9, 0) {
			t.Errorf("ZetaFromIndex round trip: %g -> %g", z, got)
		}
		if got := ZetaFromOvershoot(Overshoot(z)); !num.ApproxEqual(got, z, 1e-6, 0) {
			t.Errorf("ZetaFromOvershoot round trip: %g -> %g", z, got)
		}
		if got := ZetaFromPhaseMargin(PhaseMargin(z)); !num.ApproxEqual(got, z, 1e-6, 0) {
			t.Errorf("ZetaFromPhaseMargin round trip: %g -> %g", z, got)
		}
	}
	if !math.IsNaN(ZetaFromIndex(1)) {
		t.Error("positive peak has no damping ratio")
	}
}

func TestInversesQuick(t *testing.T) {
	f := func(raw float64) bool {
		z := 0.05 + math.Mod(math.Abs(raw), 0.9) // zeta in (0.05, 0.95)
		ok := num.ApproxEqual(ZetaFromIndex(PerformanceIndex(z)), z, 1e-9, 0)
		ok = ok && num.ApproxEqual(ZetaFromOvershoot(Overshoot(z)), z, 1e-6, 0)
		ok = ok && num.ApproxEqual(ZetaFromPhaseMargin(PhaseMargin(z)), z, 1e-6, 0)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestMonotonicity(t *testing.T) {
	// Overshoot decreases with zeta; PM increases; |index| decreases.
	prev := 101.0
	for z := 0.05; z < 1; z += 0.05 {
		os := Overshoot(z)
		if os >= prev {
			t.Fatalf("overshoot not decreasing at zeta=%g", z)
		}
		prev = os
	}
	prevPM := -1.0
	for z := 0.05; z < 1; z += 0.05 {
		pm := PhaseMargin(z)
		if pm <= prevPM {
			t.Fatalf("PM not increasing at zeta=%g", z)
		}
		prevPM = pm
	}
}

func TestResonantFrequency(t *testing.T) {
	// Magnitude peaks at wr: check by sampling.
	for _, z := range []float64{0.1, 0.3, 0.5} {
		wr := ResonantFrequency(z)
		m0 := Magnitude(z, wr)
		if Magnitude(z, wr*1.02) >= m0 || Magnitude(z, wr*0.98) >= m0 {
			t.Errorf("magnitude not peaked at wr for zeta=%g", z)
		}
	}
	if ResonantFrequency(0.9) != 0 {
		t.Error("no resonant peak above 1/sqrt2")
	}
}

func TestPaperVsComputedTable1(t *testing.T) {
	paper := PaperTable1()
	comp := ComputedTable1()
	if len(paper) != len(comp) {
		t.Fatal("row count mismatch")
	}
	for i := range paper {
		p, c := paper[i], comp[i]
		if p.Zeta != c.Zeta {
			t.Fatalf("zeta mismatch row %d", i)
		}
		// Overshoot within 1.5 percentage points of the paper's rounding.
		if math.Abs(p.OvershootPct-c.OvershootPct) > 1.5 {
			t.Errorf("row %d overshoot: paper %g vs computed %g", i, p.OvershootPct, c.OvershootPct)
		}
		// Index within 5%.
		if !math.IsInf(p.PerformanceIndex, -1) {
			if math.Abs(p.PerformanceIndex-c.PerformanceIndex) > 0.05*math.Abs(p.PerformanceIndex) {
				t.Errorf("row %d index: paper %g vs computed %g", i, p.PerformanceIndex, c.PerformanceIndex)
			}
		} else if !math.IsInf(c.PerformanceIndex, -1) {
			t.Errorf("row %d index should be -Inf", i)
		}
	}
}
