package ratfn

import (
	"math"
	"math/cmplx"
	"sort"
)

// TF is a rational transfer function Gain * Num(s)/Den(s) described by its
// zeros and poles (complex, in rad/s).
type TF struct {
	Gain  float64
	Zeros []complex128
	Poles []complex128
}

// NewTF builds a transfer function from gain, zeros, and poles.
func NewTF(gain float64, zeros, poles []complex128) TF {
	return TF{
		Gain:  gain,
		Zeros: append([]complex128(nil), zeros...),
		Poles: append([]complex128(nil), poles...),
	}
}

// SecondOrder returns the normalized second-order low-pass
// T(s) = wn^2 / (s^2 + 2 zeta wn s + wn^2), the paper's Eq. (1.1) scaled to
// natural frequency wn (rad/s).
func SecondOrder(zeta, wn float64) TF {
	if zeta < 1 {
		re := -zeta * wn
		im := wn * math.Sqrt(1-zeta*zeta)
		return TF{Gain: wn * wn, Poles: []complex128{complex(re, im), complex(re, -im)}}
	}
	// Real poles for zeta >= 1.
	d := wn * math.Sqrt(zeta*zeta-1)
	return TF{Gain: wn * wn, Poles: []complex128{
		complex(-zeta*wn+d, 0), complex(-zeta*wn-d, 0),
	}}
}

// Eval evaluates T at complex frequency s.
func (t TF) Eval(s complex128) complex128 {
	v := complex(t.Gain, 0)
	for _, z := range t.Zeros {
		v *= s - z
	}
	for _, p := range t.Poles {
		v /= s - p
	}
	return v
}

// MagAt returns |T(jw)|.
func (t TF) MagAt(w float64) float64 {
	return cmplx.Abs(t.Eval(complex(0, w)))
}

// PhaseAt returns the phase of T(jw) in radians, principal value.
func (t TF) PhaseAt(w float64) float64 {
	return cmplx.Phase(t.Eval(complex(0, w)))
}

// Mul returns the product transfer function t*u.
func (t TF) Mul(u TF) TF {
	return TF{
		Gain:  t.Gain * u.Gain,
		Zeros: append(append([]complex128(nil), t.Zeros...), u.Zeros...),
		Poles: append(append([]complex128(nil), t.Poles...), u.Poles...),
	}
}

// LogLogSecondDeriv returns the analytic d^2 ln|T| / d(ln w)^2 at w, the
// exact value of the paper's stability-plot function P(w) (Eq. 1.3). Each
// pole p contributes -g(w;p) and each zero +g(w;p), where for a root at
// p = a+bi,
//
//	ln|jw - p| = 0.5 ln(a^2 + (w-b)^2)
//
// and the second log-log derivative follows in closed form.
func (t TF) LogLogSecondDeriv(w float64) float64 {
	sum := 0.0
	for _, z := range t.Zeros {
		sum += rootLogLogSecondDeriv(w, z)
	}
	for _, p := range t.Poles {
		sum -= rootLogLogSecondDeriv(w, p)
	}
	return sum
}

// rootLogLogSecondDeriv computes d^2 ln|jw - p| / d(ln w)^2 for a single
// root p = a + bi at frequency w > 0.
func rootLogLogSecondDeriv(w float64, p complex128) float64 {
	a, b := real(p), imag(p)
	// f(w) = a^2 + (w-b)^2 ; ln|jw-p| = 0.5 ln f
	// dL/du = 0.5 * w f'/f with f' = 2(w-b)
	// d2L/du2 = w d/dw (w * (w-b)/f)
	//        = w [ (2w-b)/f - w(w-b) f'/f^2 ]
	f := a*a + (w-b)*(w-b)
	if f == 0 {
		return math.Inf(-1)
	}
	fp := 2 * (w - b)
	return w * ((2*w-b)/f - w*(w-b)*fp/(f*f))
}

// ComplexPolePairs groups the complex poles of t into conjugate pairs and
// returns, for each pair, its natural frequency wn = |p| and damping ratio
// zeta = -Re(p)/|p|, sorted by wn. Poles with |Im| below tol*|p| are treated
// as real and skipped.
func (t TF) ComplexPolePairs(tol float64) (wn, zeta []float64) {
	type pair struct{ wn, z float64 }
	var pairs []pair
	for _, p := range t.Poles {
		if imag(p) <= 0 {
			continue // take one of each conjugate pair
		}
		mag := cmplx.Abs(p)
		if mag == 0 || math.Abs(imag(p)) < tol*mag {
			continue
		}
		pairs = append(pairs, pair{mag, -real(p) / mag})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].wn < pairs[j].wn })
	for _, pr := range pairs {
		wn = append(wn, pr.wn)
		zeta = append(zeta, pr.z)
	}
	return wn, zeta
}

// AsPolys returns numerator and denominator polynomials (monic roots scaled
// by Gain on the numerator).
func (t TF) AsPolys() (num, den Poly) {
	num = FromRoots(t.Zeros...)
	for i := range num.Coeffs {
		num.Coeffs[i] *= complex(t.Gain, 0)
	}
	den = FromRoots(t.Poles...)
	return num, den
}
