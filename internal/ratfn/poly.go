// Package ratfn provides polynomials and rational transfer functions in the
// Laplace variable s, including polynomial root finding (Aberth-Ehrlich
// iteration). It supplies the analytic ground truth against which the
// stability-plot method is validated: a transfer function built from known
// poles and zeros can be sampled in magnitude and fed to the detector, and
// the recovered natural frequencies and damping ratios compared with the
// exact pole locations.
package ratfn

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Poly is a polynomial with complex coefficients, Coeffs[i] multiplying s^i.
type Poly struct {
	Coeffs []complex128
}

// NewPoly builds a polynomial from ascending-power coefficients.
func NewPoly(coeffs ...complex128) Poly {
	p := Poly{Coeffs: append([]complex128(nil), coeffs...)}
	p.trim()
	return p
}

// NewPolyReal builds a polynomial from ascending-power real coefficients.
func NewPolyReal(coeffs ...float64) Poly {
	c := make([]complex128, len(coeffs))
	for i, v := range coeffs {
		c[i] = complex(v, 0)
	}
	return NewPoly(c...)
}

func (p *Poly) trim() {
	n := len(p.Coeffs)
	for n > 1 && p.Coeffs[n-1] == 0 {
		n--
	}
	p.Coeffs = p.Coeffs[:n]
}

// Degree returns the polynomial degree (0 for constants, including zero).
func (p Poly) Degree() int { return len(p.Coeffs) - 1 }

// Eval evaluates p at s by Horner's method.
func (p Poly) Eval(s complex128) complex128 {
	if len(p.Coeffs) == 0 {
		return 0
	}
	acc := p.Coeffs[len(p.Coeffs)-1]
	for i := len(p.Coeffs) - 2; i >= 0; i-- {
		acc = acc*s + p.Coeffs[i]
	}
	return acc
}

// Deriv returns the derivative polynomial.
func (p Poly) Deriv() Poly {
	if len(p.Coeffs) <= 1 {
		return NewPoly(0)
	}
	d := make([]complex128, len(p.Coeffs)-1)
	for i := 1; i < len(p.Coeffs); i++ {
		d[i-1] = p.Coeffs[i] * complex(float64(i), 0)
	}
	return NewPoly(d...)
}

// Mul returns p * q.
func (p Poly) Mul(q Poly) Poly {
	out := make([]complex128, len(p.Coeffs)+len(q.Coeffs)-1)
	for i, a := range p.Coeffs {
		if a == 0 {
			continue
		}
		for j, b := range q.Coeffs {
			out[i+j] += a * b
		}
	}
	return NewPoly(out...)
}

// FromRoots builds the monic polynomial with the given roots.
func FromRoots(roots ...complex128) Poly {
	p := NewPoly(1)
	for _, r := range roots {
		p = p.Mul(NewPoly(-r, 1))
	}
	return p
}

// Roots finds all roots by Aberth-Ehrlich iteration. It returns an error if
// the iteration fails to converge.
func (p Poly) Roots() ([]complex128, error) {
	q := p
	q.trim()
	n := q.Degree()
	if n <= 0 {
		return nil, nil
	}
	// Normalize to monic.
	lead := q.Coeffs[n]
	if lead == 0 {
		return nil, fmt.Errorf("ratfn: zero leading coefficient")
	}
	c := make([]complex128, n+1)
	for i := range c {
		c[i] = q.Coeffs[i] / lead
	}
	mon := Poly{Coeffs: c}
	der := mon.Deriv()

	// Initial guesses: points on a circle with radius from the Cauchy bound,
	// slightly perturbed off any symmetry axis.
	rad := 0.0
	for i := 0; i < n; i++ {
		if a := cmplx.Abs(c[i]); a > rad {
			rad = a
		}
	}
	rad = 1 + rad
	roots := make([]complex128, n)
	for i := range roots {
		ang := 2*math.Pi*float64(i)/float64(n) + 0.4
		roots[i] = cmplx.Rect(rad*(0.5+0.5*float64(i+1)/float64(n)), ang)
	}

	const maxIter = 500
	for iter := 0; iter < maxIter; iter++ {
		maxStep := 0.0
		for i := range roots {
			pz := mon.Eval(roots[i])
			dz := der.Eval(roots[i])
			if pz == 0 {
				continue
			}
			newton := pz / dz
			sum := complex(0, 0)
			for j := range roots {
				if j != i {
					sum += 1 / (roots[i] - roots[j])
				}
			}
			denom := 1 - newton*sum
			var step complex128
			if denom == 0 {
				step = newton
			} else {
				step = newton / denom
			}
			roots[i] -= step
			if a := cmplx.Abs(step); a > maxStep {
				maxStep = a
			}
		}
		scale := 1 + rad
		if maxStep < 1e-14*scale {
			return roots, nil
		}
	}
	// Accept if residuals are small even without step convergence.
	for _, r := range roots {
		if cmplx.Abs(mon.Eval(r)) > 1e-8*(1+math.Pow(cmplx.Abs(r), float64(n))) {
			return roots, fmt.Errorf("ratfn: root finding did not converge")
		}
	}
	return roots, nil
}

// String renders the polynomial for debugging.
func (p Poly) String() string {
	s := ""
	for i := len(p.Coeffs) - 1; i >= 0; i-- {
		if p.Coeffs[i] == 0 && len(p.Coeffs) > 1 {
			continue
		}
		if s != "" {
			s += " + "
		}
		s += fmt.Sprintf("(%v)s^%d", p.Coeffs[i], i)
	}
	if s == "" {
		s = "0"
	}
	return s
}
