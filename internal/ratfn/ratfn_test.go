package ratfn

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPolyEval(t *testing.T) {
	// p(s) = 1 + 2s + 3s^2 at s=2 -> 1+4+12 = 17
	p := NewPolyReal(1, 2, 3)
	if got := p.Eval(2); got != 17 {
		t.Errorf("Eval = %v, want 17", got)
	}
	if p.Degree() != 2 {
		t.Errorf("Degree = %d", p.Degree())
	}
}

func TestPolyTrim(t *testing.T) {
	p := NewPolyReal(1, 0, 0)
	if p.Degree() != 0 {
		t.Errorf("trailing zeros should trim, degree = %d", p.Degree())
	}
}

func TestPolyDeriv(t *testing.T) {
	// d/ds (1 + 2s + 3s^2) = 2 + 6s
	d := NewPolyReal(1, 2, 3).Deriv()
	if d.Eval(1) != 8 {
		t.Errorf("Deriv eval = %v, want 8", d.Eval(1))
	}
}

func TestPolyMul(t *testing.T) {
	// (1+s)(1-s) = 1 - s^2
	p := NewPolyReal(1, 1).Mul(NewPolyReal(1, -1))
	want := NewPolyReal(1, 0, -1)
	for i := range want.Coeffs {
		if p.Coeffs[i] != want.Coeffs[i] {
			t.Errorf("coeff %d = %v", i, p.Coeffs[i])
		}
	}
}

func TestRootsQuadratic(t *testing.T) {
	// s^2 + 2s + 5 -> roots -1 +/- 2i
	p := NewPolyReal(5, 2, 1)
	roots, err := p.Roots()
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != 2 {
		t.Fatalf("got %d roots", len(roots))
	}
	sort.Slice(roots, func(i, j int) bool { return imag(roots[i]) < imag(roots[j]) })
	if cmplx.Abs(roots[0]-complex(-1, -2)) > 1e-9 || cmplx.Abs(roots[1]-complex(-1, 2)) > 1e-9 {
		t.Errorf("roots = %v", roots)
	}
}

func TestRootsFromRootsRoundTrip(t *testing.T) {
	want := []complex128{complex(-1, 0), complex(-2, 3), complex(-2, -3), complex(-10, 0)}
	p := FromRoots(want...)
	got, err := p.Roots()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d roots", len(got))
	}
	for _, w := range want {
		best := math.Inf(1)
		for _, g := range got {
			if d := cmplx.Abs(g - w); d < best {
				best = d
			}
		}
		if best > 1e-7 {
			t.Errorf("root %v not recovered (closest %g away)", w, best)
		}
	}
}

func TestRootsQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		roots := make([]complex128, 0, n)
		for len(roots) < n {
			// Random roots spread in the left half plane, separated.
			re := -0.1 - 3*r.Float64()
			im := 3 * r.NormFloat64()
			roots = append(roots, complex(re, im))
		}
		p := FromRoots(roots...)
		got, err := p.Roots()
		if err != nil {
			return false
		}
		for _, w := range roots {
			best := math.Inf(1)
			for _, g := range got {
				if d := cmplx.Abs(g - w); d < best {
					best = d
				}
			}
			if best > 1e-5*(1+cmplx.Abs(w)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestSecondOrderTF(t *testing.T) {
	tf := SecondOrder(0.5, 1)
	// DC gain 1.
	if math.Abs(tf.MagAt(1e-6)-1) > 1e-4 {
		t.Errorf("DC gain = %g", tf.MagAt(1e-6))
	}
	// Pole pair at wn=1, zeta=0.5.
	wn, z := tf.ComplexPolePairs(1e-9)
	if len(wn) != 1 {
		t.Fatalf("pairs = %d", len(wn))
	}
	if math.Abs(wn[0]-1) > 1e-12 || math.Abs(z[0]-0.5) > 1e-12 {
		t.Errorf("wn=%g zeta=%g", wn[0], z[0])
	}
}

func TestSecondOrderOverdamped(t *testing.T) {
	tf := SecondOrder(2, 10)
	wn, _ := tf.ComplexPolePairs(1e-9)
	if len(wn) != 0 {
		t.Error("overdamped system should have no complex pairs")
	}
	// Both poles real, product = wn^2 = 100.
	prod := real(tf.Poles[0]) * real(tf.Poles[1])
	if math.Abs(prod-100) > 1e-9 {
		t.Errorf("pole product = %g", prod)
	}
}

func TestLogLogSecondDerivMatchesSOS(t *testing.T) {
	// The TF-based closed form must equal -1/zeta^2 at w = wn.
	for _, z := range []float64{0.1, 0.3, 0.5, 0.8} {
		tf := SecondOrder(z, 1)
		got := tf.LogLogSecondDeriv(1)
		want := -1 / (z * z)
		if math.Abs(got-want) > 1e-9*math.Abs(want) {
			t.Errorf("zeta=%g: P(1) = %g, want %g", z, got, want)
		}
	}
}

func TestLogLogSecondDerivRealPole(t *testing.T) {
	// Single real pole at -1: P has minimum -0.5 at w=1.
	tf := NewTF(1, nil, []complex128{-1})
	if got := tf.LogLogSecondDeriv(1); math.Abs(got-(-0.5)) > 1e-12 {
		t.Errorf("P(1) = %g, want -0.5", got)
	}
	// Far away it tends to zero.
	if got := tf.LogLogSecondDeriv(1e4); math.Abs(got) > 1e-3 {
		t.Errorf("P(inf) = %g", got)
	}
}

// Property: P is additive over products of transfer functions
// (ln|T1 T2| = ln|T1| + ln|T2|).
func TestLogLogSecondDerivAdditiveQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mk := func() TF {
			z := 0.1 + 0.8*r.Float64()
			wn := math.Pow(10, 3*r.Float64())
			return SecondOrder(z, wn)
		}
		t1, t2 := mk(), mk()
		prod := t1.Mul(t2)
		for _, w := range []float64{0.5, 1, 5, 50, 500} {
			sum := t1.LogLogSecondDeriv(w) + t2.LogLogSecondDeriv(w)
			got := prod.LogLogSecondDeriv(w)
			if math.Abs(got-sum) > 1e-9*(1+math.Abs(sum)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestLogLogSecondDerivNumericQuick(t *testing.T) {
	// Closed form agrees with finite differences for random pole/zero sets.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var zeros, poles []complex128
		for i := 0; i < 1+r.Intn(3); i++ {
			re := -0.2 - 5*r.Float64()
			im := 5 * r.NormFloat64()
			poles = append(poles, complex(re, im), complex(re, -im))
		}
		if r.Intn(2) == 0 {
			zeros = append(zeros, complex(-1-r.Float64()*5, 0))
		}
		tf := NewTF(1, zeros, poles)
		h := 1e-4
		for _, w := range []float64{0.5, 1.7, 4.2} {
			u := math.Log(w)
			l := func(u float64) float64 { return math.Log(tf.MagAt(math.Exp(u))) }
			numd := (l(u+h) - 2*l(u) + l(u-h)) / (h * h)
			got := tf.LogLogSecondDeriv(w)
			if math.Abs(got-numd) > 1e-3*(1+math.Abs(numd)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestAsPolys(t *testing.T) {
	tf := NewTF(2, []complex128{-1}, []complex128{-2, -3})
	numP, den := tf.AsPolys()
	// num = 2(s+1), den = (s+2)(s+3)
	if cmplx.Abs(numP.Eval(0)-2) > 1e-12 || cmplx.Abs(den.Eval(0)-6) > 1e-12 {
		t.Errorf("num(0)=%v den(0)=%v", numP.Eval(0), den.Eval(0))
	}
	// Consistency with Eval.
	s := complex(0.3, 1.2)
	if cmplx.Abs(tf.Eval(s)-numP.Eval(s)/den.Eval(s)) > 1e-12 {
		t.Error("AsPolys inconsistent with Eval")
	}
}

func TestComplexPolePairsSorted(t *testing.T) {
	tf := NewTF(1, nil, []complex128{
		complex(-1, 100), complex(-1, -100),
		complex(-0.5, 3), complex(-0.5, -3),
	})
	wn, _ := tf.ComplexPolePairs(1e-9)
	if len(wn) != 2 || wn[0] > wn[1] {
		t.Errorf("pairs not sorted: %v", wn)
	}
}
