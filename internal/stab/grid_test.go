package stab

import (
	"math"
	"sort"
	"testing"

	"acstab/internal/num"
	"acstab/internal/ratfn"
	"acstab/internal/wave"
)

func magWaveOn(tf ratfn.TF, fs []float64) *wave.Wave {
	y := make([]float64, len(fs))
	for i, f := range fs {
		y[i] = tf.MagAt(2 * math.Pi * f)
	}
	w := wave.NewReal("mag", append([]float64(nil), fs...), y)
	w.LogX = true
	return w
}

// TestAddPeakNonUniformBracket pins the satellite fix: when the three
// samples around an extremum have unequal spacing (one side refined, the
// other still coarse — exactly what adaptive grids produce), the peak
// refinement must fit the actual parabola through them. On this (2h, h)
// bracket the old uniform-step formula lands ~2.7% off in frequency; the
// spacing-aware fit recovers fn to well under 1%.
func TestAddPeakNonUniformBracket(t *testing.T) {
	grid := num.LogGridPPD(1e3, 1e9, 40)
	h := math.Log(grid[1]) - math.Log(grid[0])
	// Place fn just above a grid point near 3 MHz (so that point is the
	// discrete extremum), then delete the sample on its low side so the
	// extremum's bracket is (2h, h).
	k := 0
	for i, f := range grid {
		if f <= 3e6 {
			k = i
		}
	}
	fn := math.Exp(math.Log(grid[k]) + 0.1*h)
	skewed := append(append([]float64(nil), grid[:k-1]...), grid[k:]...)
	tf := ratfn.SecondOrder(0.5, 2*math.Pi*fn)
	res, err := Analyze(magWaveOn(tf, skewed), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Dominant == nil {
		t.Fatal("no dominant peak")
	}
	if !num.ApproxEqual(res.Dominant.Freq, fn, 0.006, 0) {
		t.Errorf("fn = %g, want %g (rel err %.4f)", res.Dominant.Freq, fn,
			math.Abs(res.Dominant.Freq/fn-1))
	}
	if !num.ApproxEqual(res.Dominant.Zeta, 0.5, 0.1, 0) {
		t.Errorf("zeta = %g, want 0.5", res.Dominant.Zeta)
	}
}

// refineLoop drives RefinePlan to convergence the way the tool's adaptive
// sweep does, resolving new points against the analytic magnitude.
func refineLoop(t *testing.T, tf ratfn.TF, freqs []float64, opt RefineOptions) []float64 {
	t.Helper()
	freqs = append([]float64(nil), freqs...)
	for round := 0; ; round++ {
		if round > 20 {
			t.Fatal("refinement did not converge in 20 rounds")
		}
		mags := make([]float64, len(freqs))
		for i, f := range freqs {
			mags[i] = tf.MagAt(2 * math.Pi * f)
		}
		want := RefinePlan(freqs, mags, opt)
		if len(want) == 0 {
			return freqs
		}
		freqs = append(freqs, want...)
		sort.Float64s(freqs)
	}
}

// TestRefinePlanRecoversPeaks: a coarse pass plus RefinePlan rounds must
// converge to a grid that (a) is much smaller than the dense 40-ppd grid
// and (b) still recovers fn and zeta within the dense sweep's own
// stencil tolerance.
func TestRefinePlanRecoversPeaks(t *testing.T) {
	coarse := num.LogGridPPD(1e3, 1e9, 8)
	dense := num.LogGridPPD(1e3, 1e9, 40)
	opt := RefineOptions{
		Threshold: 0.5,
		WideDU:    math.Ln10 / 16,
		PeakDU:    math.Ln10 / 40,
	}
	for _, zeta := range []float64{0.15, 0.35, 0.6} {
		fn := 3.16e6
		tf := ratfn.SecondOrder(zeta, 2*math.Pi*fn)
		freqs := refineLoop(t, tf, coarse, opt)
		if len(freqs) >= len(dense)/2 {
			t.Errorf("zeta=%g: adaptive grid has %d points, dense %d — no win",
				zeta, len(freqs), len(dense))
		}
		res, err := Analyze(magWaveOn(tf, freqs), DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if res.Dominant == nil {
			t.Fatalf("zeta=%g: adaptive grid lost the peak", zeta)
		}
		if !num.ApproxEqual(res.Dominant.Freq, fn, 0.03, 0) {
			t.Errorf("zeta=%g: fn=%g, want %g", zeta, res.Dominant.Freq, fn)
		}
		if !num.ApproxEqual(res.Dominant.Zeta, zeta, 0.12, 0) {
			t.Errorf("zeta=%g: recovered %g", zeta, res.Dominant.Zeta)
		}
	}
}

// TestRefinePlanFlatResponse: a response with no resonance anywhere never
// asks for refinement — the coarse grid is final.
func TestRefinePlanFlatResponse(t *testing.T) {
	coarse := num.LogGridPPD(1e3, 1e9, 8)
	mags := make([]float64, len(coarse))
	for i, f := range coarse {
		mags[i] = 100 / (1 + f/1e6) // single real pole: |P| stays under 0.5
	}
	opt := RefineOptions{Threshold: 0.5, WideDU: math.Ln10 / 16, PeakDU: math.Ln10 / 40}
	if want := RefinePlan(coarse, mags, opt); len(want) != 0 {
		t.Errorf("flat response requested %d refinement points: %v", len(want), want)
	}
}

// TestRefinePlanProperties: outputs are ascending, strictly interior to
// existing intervals, and identical across repeated calls (determinism is
// what keeps sharded merges byte-identical).
func TestRefinePlanProperties(t *testing.T) {
	coarse := num.LogGridPPD(1e3, 1e9, 8)
	tf := ratfn.SecondOrder(0.2, 2*math.Pi*2e6)
	mags := make([]float64, len(coarse))
	for i, f := range coarse {
		mags[i] = tf.MagAt(2 * math.Pi * f)
	}
	opt := RefineOptions{Threshold: 0.5, WideDU: math.Ln10 / 16, PeakDU: math.Ln10 / 40}
	a := RefinePlan(coarse, mags, opt)
	b := RefinePlan(coarse, mags, opt)
	if len(a) == 0 {
		t.Fatal("expected refinement around the resonance")
	}
	if len(a) != len(b) {
		t.Fatalf("non-deterministic: %d vs %d points", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d: %g vs %g", i, a[i], b[i])
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i] <= a[i-1] {
			t.Fatal("refinement points not ascending")
		}
	}
	for _, f := range a {
		j := sort.SearchFloat64s(coarse, f)
		if j == 0 || j == len(coarse) || coarse[j] == f {
			t.Fatalf("refinement point %g not interior to the grid", f)
		}
	}
}
