package stab

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"acstab/internal/num"
	"acstab/internal/ratfn"
	"acstab/internal/sos"
	"acstab/internal/wave"
)

// magWave samples |tf(j2πf)| on a log grid.
func magWave(tf ratfn.TF, fstart, fstop float64, ppd int) *wave.Wave {
	fs := num.LogGridPPD(fstart, fstop, ppd)
	y := make([]float64, len(fs))
	for i, f := range fs {
		y[i] = tf.MagAt(2 * math.Pi * f)
	}
	w := wave.NewReal("mag", fs, y)
	w.LogX = true
	return w
}

func TestPlotMatchesAnalyticSecondOrder(t *testing.T) {
	// Sampled second-order magnitude: P must match the closed form.
	for _, zeta := range []float64{0.2, 0.5, 0.8} {
		fn := 1e6
		tf := ratfn.SecondOrder(zeta, 2*math.Pi*fn)
		mag := magWave(tf, 1e4, 1e8, 60)
		plot, err := Plot(mag, Options{Stencil: 3})
		if err != nil {
			t.Fatal(err)
		}
		for i := 5; i < plot.Len()-5; i += 7 {
			f := plot.X[i]
			want := sos.StabilityPlot(zeta, f/fn)
			got := real(plot.Y[i])
			if math.Abs(got-want) > 0.04*(1+math.Abs(want)) {
				t.Errorf("zeta=%g f=%g: P=%g want %g", zeta, f, got, want)
			}
		}
	}
}

func TestAnalyzeRecoversZetaAndFn(t *testing.T) {
	for _, zeta := range []float64{0.1, 0.186, 0.3, 0.5, 0.7} {
		fn := 3.16e6
		tf := ratfn.SecondOrder(zeta, 2*math.Pi*fn)
		res, err := Analyze(magWave(tf, 1e3, 1e9, 40), DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if res.Dominant == nil {
			t.Fatalf("zeta=%g: no dominant peak", zeta)
		}
		d := res.Dominant
		if !num.ApproxEqual(d.Freq, fn, 0.02, 0) {
			t.Errorf("zeta=%g: fn=%g, want %g", zeta, d.Freq, fn)
		}
		// 5-point stencil at 40 ppd: worst case ~3% at zeta=0.1.
		if !num.ApproxEqual(d.Zeta, zeta, 0.05, 0) {
			t.Errorf("zeta=%g: recovered %g", zeta, d.Zeta)
		}
		if d.Type != PeakNormal {
			t.Errorf("zeta=%g: type=%v", zeta, d.Type)
		}
	}
}

func TestPaperFig4Numbers(t *testing.T) {
	// The paper's example: peak -28.9 at 3.16 MHz corresponds to
	// zeta ~ 0.186 and phase margin just under 20 degrees.
	tf := ratfn.SecondOrder(0.186, 2*math.Pi*3.16e6)
	res, err := Analyze(magWave(tf, 1e3, 1e9, 40), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	d := res.Dominant
	if d == nil {
		t.Fatal("no peak")
	}
	if math.Abs(d.Value-(-28.9)) > 1.0 {
		t.Errorf("peak = %g, want ~-28.9", d.Value)
	}
	if math.Abs(d.Freq-3.16e6) > 0.05e6 {
		t.Errorf("fn = %g, want 3.16e6", d.Freq)
	}
	if d.PhaseMarginDeg < 17 || d.PhaseMarginDeg > 23 {
		t.Errorf("PM = %g, want just under 20 (paper reads 'slightly below 20')", d.PhaseMarginDeg)
	}
	if d.OvershootPct < 50 || d.OvershootPct > 60 {
		t.Errorf("overshoot = %g, want ~55", d.OvershootPct)
	}
}

func TestRealPolesRejected(t *testing.T) {
	// A chain of well-separated real poles must not produce a normal peak:
	// every extremum stays above the -0.75 threshold.
	tf := ratfn.NewTF(1, nil, []complex128{
		complex(-2*math.Pi*1e4, 0),
		complex(-2*math.Pi*3e5, 0),
		complex(-2*math.Pi*1e7, 0),
	})
	res, err := Analyze(magWave(tf, 1e2, 1e9, 40), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Dominant != nil {
		t.Errorf("real-pole system reported dominant peak %+v", *res.Dominant)
	}
	for _, p := range res.Peaks {
		if !p.IsZero && p.Type == PeakNormal {
			t.Errorf("real poles produced normal peak %+v", p)
		}
	}
}

func TestComplexZeroPositivePeak(t *testing.T) {
	// A complex zero pair produces a positive peak at its frequency.
	fz := 1e6
	zz := 0.3
	re := -zz * 2 * math.Pi * fz
	im := 2 * math.Pi * fz * math.Sqrt(1-zz*zz)
	tf := ratfn.NewTF(1, []complex128{complex(re, im), complex(re, -im)},
		[]complex128{complex(-2*math.Pi*1e8, 0), complex(-2*math.Pi*1.1e8, 0)})
	res, err := Analyze(magWave(tf, 1e3, 1e9, 40), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var zero *Peak
	for i := range res.Peaks {
		if res.Peaks[i].IsZero && res.Peaks[i].Type == PeakNormal {
			zero = &res.Peaks[i]
		}
	}
	if zero == nil {
		t.Fatal("no positive peak for complex zero")
	}
	if !num.ApproxEqual(zero.Freq, fz, 0.03, 0) {
		t.Errorf("zero freq = %g, want %g", zero.Freq, fz)
	}
	if math.Abs(zero.Value-1/(zz*zz)) > 0.5 {
		t.Errorf("zero peak = %g, want ~%g", zero.Value, 1/(zz*zz))
	}
	if !math.IsNaN(zero.Zeta) {
		t.Error("zero peaks must not report damping")
	}
}

func TestTwoLoopsSeparated(t *testing.T) {
	// Two complex pairs at separated frequencies: both found.
	t1 := ratfn.SecondOrder(0.2, 2*math.Pi*1e5)
	t2 := ratfn.SecondOrder(0.4, 2*math.Pi*5e7)
	res, err := Analyze(magWave(t1.Mul(t2), 1e3, 1e9, 40), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var normals []Peak
	for _, p := range res.Peaks {
		if !p.IsZero && p.Type == PeakNormal {
			normals = append(normals, p)
		}
	}
	if len(normals) != 2 {
		t.Fatalf("found %d normal peaks, want 2: %+v", len(normals), res.Peaks)
	}
	if !num.ApproxEqual(normals[0].Freq, 1e5, 0.03, 0) ||
		!num.ApproxEqual(normals[1].Freq, 5e7, 0.03, 0) {
		t.Errorf("frequencies %g %g", normals[0].Freq, normals[1].Freq)
	}
	if !num.ApproxEqual(normals[0].Zeta, 0.2, 0.05, 0) ||
		!num.ApproxEqual(normals[1].Zeta, 0.4, 0.05, 0) {
		t.Errorf("zetas %g %g", normals[0].Zeta, normals[1].Zeta)
	}
	// Dominant is the deeper (zeta=0.2) one.
	if !num.ApproxEqual(res.Dominant.Freq, 1e5, 0.03, 0) {
		t.Errorf("dominant at %g", res.Dominant.Freq)
	}
}

func TestEndOfRangeClassification(t *testing.T) {
	// Resonance just beyond the sweep's upper edge.
	tf := ratfn.SecondOrder(0.3, 2*math.Pi*9e8)
	res, err := Analyze(magWave(tf, 1e3, 1e9, 40), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range res.Peaks {
		if !p.IsZero && p.Type == PeakEndOfRange {
			found = true
		}
	}
	if !found {
		t.Errorf("expected end-of-range notice, peaks: %+v", res.Peaks)
	}
}

func TestMinMaxClassification(t *testing.T) {
	// Heavily damped pair (zeta=0.95 -> P ~ -1.1) is normal;
	// zeta well above 1 splits into real poles -> min/max or nothing.
	tf := ratfn.SecondOrder(1.35, 2*math.Pi*1e6)
	res, err := Analyze(magWave(tf, 1e3, 1e9, 40), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Peaks {
		if !p.IsZero && p.Type == PeakNormal {
			t.Errorf("overdamped system produced normal peak %+v", p)
		}
	}
}

// Property: for random underdamped second-order systems the analysis
// recovers zeta and fn within tolerance.
func TestRecoveryQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		zeta := 0.1 + 0.55*r.Float64()
		fn := math.Pow(10, 4+4*r.Float64()) // 1e4..1e8
		tf := ratfn.SecondOrder(zeta, 2*math.Pi*fn)
		res, err := Analyze(magWave(tf, 1e3, 1e9, 40), DefaultOptions())
		if err != nil || res.Dominant == nil {
			return false
		}
		// Tolerance matches the measured stencil bias: ~7 % at zeta = 0.1
		// with 40 points/decade (EXPERIMENTS.md ablation A4/A5).
		return num.ApproxEqual(res.Dominant.Freq, fn, 0.03, 0) &&
			num.ApproxEqual(res.Dominant.Zeta, zeta, 0.09, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// Property: adding well-separated real poles does not disturb the zeta
// estimate of the dominant complex pair (the method's core claim: double
// log differentiation filters real singularities).
func TestRealPoleImmunityQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		zeta := 0.1 + 0.4*r.Float64()
		fn := 1e6
		tf := ratfn.SecondOrder(zeta, 2*math.Pi*fn)
		// Sprinkle real poles/zeros at least a decade away.
		for k := 0; k < 1+r.Intn(3); k++ {
			f0 := fn * math.Pow(10, 1.2+1.5*r.Float64())
			if r.Intn(2) == 0 {
				f0 = fn / math.Pow(10, 1.2+1.5*r.Float64())
			}
			p := complex(-2*math.Pi*f0, 0)
			if r.Intn(3) == 0 {
				tf.Zeros = append(tf.Zeros, p)
			} else {
				tf.Poles = append(tf.Poles, p)
			}
		}
		res, err := Analyze(magWave(tf, 1e2, 1e10, 40), DefaultOptions())
		if err != nil || res.Dominant == nil {
			return false
		}
		return num.ApproxEqual(res.Dominant.Freq, fn, 0.05, 0) &&
			num.ApproxEqual(res.Dominant.Zeta, zeta, 0.10, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestStencil5MatchesStencil3(t *testing.T) {
	tf := ratfn.SecondOrder(0.25, 2*math.Pi*1e6)
	mag := magWave(tf, 1e3, 1e9, 40)
	r3, err := Analyze(mag, Options{Stencil: 3, MinPeakDepth: 0.75})
	if err != nil {
		t.Fatal(err)
	}
	r5, err := Analyze(mag, Options{Stencil: 5, MinPeakDepth: 0.75})
	if err != nil {
		t.Fatal(err)
	}
	if r3.Dominant == nil || r5.Dominant == nil {
		t.Fatal("missing dominant peaks")
	}
	if !num.ApproxEqual(r3.Dominant.Freq, r5.Dominant.Freq, 0.02, 0) {
		t.Errorf("stencil freq mismatch: %g vs %g", r3.Dominant.Freq, r5.Dominant.Freq)
	}
	// 5-point should be at least as close to the analytic -1/zeta^2.
	want := -1 / (0.25 * 0.25)
	e3 := math.Abs(r3.Dominant.Value - want)
	e5 := math.Abs(r5.Dominant.Value - want)
	if e5 > e3*1.5 {
		t.Errorf("5-point error %g much worse than 3-point %g", e5, e3)
	}
}

func TestPlotErrors(t *testing.T) {
	short := wave.NewReal("w", []float64{1, 2, 3}, []float64{1, 1, 1})
	if _, err := Plot(short, DefaultOptions()); err == nil {
		t.Error("expected too-few-points error")
	}
	mag := magWave(ratfn.SecondOrder(0.3, 1), 1e3, 1e6, 10)
	if _, err := Plot(mag, Options{Stencil: 7}); err == nil {
		t.Error("expected unsupported stencil error")
	}
}

func TestPlotZeroMagnitudeClamped(t *testing.T) {
	x := num.LogSpace(1, 1e6, 30)
	y := make([]float64, len(x))
	for i := range y {
		y[i] = 1
	}
	y[10] = 0 // pathological sample
	w := wave.NewReal("w", x, y)
	if _, err := Plot(w, DefaultOptions()); err != nil {
		t.Errorf("zero magnitude should be clamped, got %v", err)
	}
}

func TestClusterLoopsTable2Shape(t *testing.T) {
	// Synthetic Table 2: four loops.
	mk := func(node string, f, v float64) NodePeak {
		return NodePeak{Node: node, Peak: Peak{Freq: f, Value: v, Zeta: sos.ZetaFromIndex(v)}}
	}
	peaks := []NodePeak{
		mk("output", 3.16e6, -28.88),
		mk("net052", 3.16e6, -28.88),
		mk("net136", 3.16e6, -28.88),
		mk("net138", 3.16e6, -27.52),
		mk("net99", 3.31e6, -27.09),
		mk("net066", 3.63e7, -0.948),
		mk("net81", 4.79e7, -5.33),
		mk("net17", 4.68e7, -0.504),
		mk("net056", 4.79e7, -4.61),
		mk("net013", 4.90e7, -5.06),
		mk("net57", 5.01e7, -4.49),
		mk("net16", 5.01e7, -0.252),
		mk("net75", 4.90e7, -5.07),
		mk("net019", 5.13e7, -0.233),
	}
	loops := ClusterLoops(peaks, 0.12)
	if len(loops) != 3 && len(loops) != 4 {
		t.Fatalf("got %d loops, want 3-4 (paper: 4, with 47.9/51.3 adjacent)", len(loops))
	}
	// First loop: the 3.16-3.31 MHz main loop with 5 nodes.
	if len(loops[0].Nodes) != 5 {
		t.Errorf("main loop has %d nodes, want 5", len(loops[0].Nodes))
	}
	if !num.ApproxEqual(loops[0].Freq, 3.2e6, 0.05, 0) {
		t.Errorf("main loop freq = %g", loops[0].Freq)
	}
	if loops[0].WorstPeak > -28 {
		t.Errorf("main loop worst peak = %g", loops[0].WorstPeak)
	}
	// Loops sorted by frequency, IDs assigned.
	for i := 1; i < len(loops); i++ {
		if loops[i].Freq <= loops[i-1].Freq {
			t.Error("loops not sorted by frequency")
		}
		if loops[i].ID != i+1 {
			t.Error("IDs not sequential")
		}
	}
}

func TestClusterLoopsSingleAndEmpty(t *testing.T) {
	if got := ClusterLoops(nil, 0.1); got != nil {
		t.Error("empty input should yield nil")
	}
	one := []NodePeak{{Node: "a", Peak: Peak{Freq: 1e6, Value: -5, Zeta: sos.ZetaFromIndex(-5)}}}
	loops := ClusterLoops(one, 0.1)
	if len(loops) != 1 || len(loops[0].Nodes) != 1 {
		t.Fatalf("single peak clustering wrong: %+v", loops)
	}
	if !num.ApproxEqual(loops[0].Zeta, 1/math.Sqrt(5), 1e-9, 0) {
		t.Errorf("loop zeta = %g", loops[0].Zeta)
	}
}

// Property: clustering is independent of input order and every input node
// appears exactly once.
func TestClusterLoopsInvariantsQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		peaks := make([]NodePeak, n)
		for i := range peaks {
			peaks[i] = NodePeak{
				Node: "n" + string(rune('a'+i)),
				Peak: Peak{Freq: math.Pow(10, 4+5*r.Float64()), Value: -1 - 20*r.Float64()},
			}
		}
		loops := ClusterLoops(peaks, 0.12)
		count := 0
		for _, l := range loops {
			count += len(l.Nodes)
		}
		if count != n {
			return false
		}
		// Shuffle and recluster: same group count and membership sizes.
		shuf := append([]NodePeak(nil), peaks...)
		r.Shuffle(len(shuf), func(i, j int) { shuf[i], shuf[j] = shuf[j], shuf[i] })
		loops2 := ClusterLoops(shuf, 0.12)
		if len(loops2) != len(loops) {
			return false
		}
		for i := range loops {
			if len(loops[i].Nodes) != len(loops2[i].Nodes) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestMaxPeaksOption(t *testing.T) {
	// Three pole pairs: MaxPeaks=2 keeps the two deepest.
	t1 := ratfn.SecondOrder(0.15, 2*math.Pi*1e5)
	t2 := ratfn.SecondOrder(0.35, 2*math.Pi*2e6)
	t3 := ratfn.SecondOrder(0.55, 2*math.Pi*4e7)
	mag := magWave(t1.Mul(t2).Mul(t3), 1e3, 1e9, 40)
	full, err := Analyze(mag, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	limited, err := Analyze(mag, Options{MaxPeaks: 2, MinPeakDepth: 0.75})
	if err != nil {
		t.Fatal(err)
	}
	if len(limited.Peaks) != 2 {
		t.Fatalf("peaks = %d, want 2", len(limited.Peaks))
	}
	if len(full.Peaks) <= 2 {
		t.Fatalf("full analysis should see more than 2 peaks, got %d", len(full.Peaks))
	}
	// The kept peaks are the deepest two (the zeta=0.15 and 0.35 pairs),
	// still sorted by frequency.
	if !num.ApproxEqual(limited.Peaks[0].Freq, 1e5, 0.05, 0) ||
		!num.ApproxEqual(limited.Peaks[1].Freq, 2e6, 0.05, 0) {
		t.Errorf("kept peaks: %+v", limited.Peaks)
	}
	if limited.Peaks[0].Freq > limited.Peaks[1].Freq {
		t.Error("limited peaks not sorted by frequency")
	}
}

func TestZeroMinPeakDepthDisablesFilter(t *testing.T) {
	// An overdamped pair dips only ~ -0.3, which the default filter
	// classifies MinMax. An explicit zero threshold must disable the
	// filter — not be silently replaced by the 0.75 default — so the same
	// interior peak comes back Normal.
	tf := ratfn.SecondOrder(1.35, 2*math.Pi*1e6)
	mag := magWave(tf, 1e3, 1e9, 40)

	opts := DefaultOptions()
	res, err := Analyze(mag, opts)
	if err != nil {
		t.Fatal(err)
	}
	sawMinMax := false
	for _, p := range res.Peaks {
		if p.Type == PeakMinMax {
			sawMinMax = true
		}
	}
	if !sawMinMax {
		t.Fatal("expected a MinMax-classified peak under the default filter")
	}

	opts.MinPeakDepth = 0
	res, err = Analyze(mag, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Peaks {
		if p.Type == PeakMinMax {
			t.Errorf("MinPeakDepth=0 still filtered peak %+v", p)
		}
	}
}

func TestAnalyzeInvalidStencil(t *testing.T) {
	tf := ratfn.SecondOrder(0.3, 2*math.Pi*1e6)
	mag := magWave(tf, 1e3, 1e9, 40)
	for _, st := range []int{1, 2, 4, 7, -3} {
		opts := DefaultOptions()
		opts.Stencil = st
		if _, err := Analyze(mag, opts); err == nil {
			t.Errorf("stencil %d accepted", st)
		}
	}
	for _, st := range []int{0, 3, 5} {
		opts := DefaultOptions()
		opts.Stencil = st
		if _, err := Analyze(mag, opts); err != nil {
			t.Errorf("stencil %d rejected: %v", st, err)
		}
	}
}
