package stab

import (
	"math"
	"sort"
)

// NodePeak associates a circuit node with its dominant stability peak.
type NodePeak struct {
	Node string
	Peak Peak
}

// Loop is a group of nodes whose dominant peaks share a natural frequency:
// the signature of one feedback loop seen from every node inside it. This
// is the structure of the paper's Table 2 ("Loop at 3.3 MHz", ...).
type Loop struct {
	ID int
	// Freq is the representative natural frequency (geometric mean of the
	// members').
	Freq float64
	// WorstPeak is the deepest (most negative) member peak: the loop's
	// performance index.
	WorstPeak float64
	// Zeta, PhaseMarginDeg, OvershootPct derive from WorstPeak.
	Zeta           float64
	PhaseMarginDeg float64
	OvershootPct   float64
	Nodes          []NodePeak
}

// MergePeaks unions per-shard peak lists into one deterministic list,
// sorted by node name then peak frequency. A sharded all-nodes run
// collects its shards' NodePeaks in arrival order, which varies with
// worker timing; sorting before ClusterLoops makes the merged clustering
// input — and with it loop membership, worst-peak attribution, and loop
// IDs — independent of which shard answered first, so a sharded run
// reproduces the unsharded report exactly.
func MergePeaks(sets ...[]NodePeak) []NodePeak {
	var out []NodePeak
	for _, s := range sets {
		out = append(out, s...)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Node != out[b].Node {
			return out[a].Node < out[b].Node
		}
		return out[a].Peak.Freq < out[b].Peak.Freq
	})
	return out
}

// ClusterLoops groups node peaks into loops by natural frequency using
// single-linkage clustering in log frequency: two peaks join the same loop
// when their frequencies agree within relTol (e.g. 0.12 = 12%). Groups are
// returned sorted by frequency, nodes within a group sorted by name.
func ClusterLoops(peaks []NodePeak, relTol float64) []Loop {
	if relTol <= 0 {
		relTol = 0.12
	}
	if len(peaks) == 0 {
		return nil
	}
	sorted := append([]NodePeak(nil), peaks...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].Peak.Freq < sorted[b].Peak.Freq })
	gap := math.Log(1 + relTol)

	var loops []Loop
	start := 0
	for i := 1; i <= len(sorted); i++ {
		if i < len(sorted) &&
			math.Log(sorted[i].Peak.Freq)-math.Log(sorted[i-1].Peak.Freq) <= gap {
			continue
		}
		group := sorted[start:i]
		loops = append(loops, makeLoop(group))
		start = i
	}
	for i := range loops {
		loops[i].ID = i + 1
	}
	return loops
}

func makeLoop(group []NodePeak) Loop {
	l := Loop{WorstPeak: math.Inf(1)}
	logSum := 0.0
	for _, np := range group {
		logSum += math.Log(np.Peak.Freq)
		if np.Peak.Value < l.WorstPeak {
			l.WorstPeak = np.Peak.Value
			l.Zeta = np.Peak.Zeta
			l.PhaseMarginDeg = np.Peak.PhaseMarginDeg
			l.OvershootPct = np.Peak.OvershootPct
		}
	}
	l.Freq = math.Exp(logSum / float64(len(group)))
	l.Nodes = append(l.Nodes, group...)
	sort.Slice(l.Nodes, func(a, b int) bool { return l.Nodes[a].Node < l.Nodes[b].Node })
	return l
}
