// Package stab implements the paper's contribution: the stability-plot
// methodology for AC-stability analysis of closed-loop continuous-time
// circuits without breaking any loop.
//
// Given a node's AC response magnitude |T(ω)| to a unit current injection
// (its driving-point impedance), the stability plot is
//
//	P(ω) = d/dω[ ω·(d|T|/dω)/|T| ]·ω  =  d² ln|T| / d(ln ω)²
//
// (paper Eq. 1.3). The double log-log differentiation cancels real poles
// and zeros (a single real pole contributes a shallow dip bounded by -0.5)
// while a complex pole pair produces a sharp negative peak at its natural
// frequency with depth P(ωn) = -1/ζ² (paper Eq. 1.4); complex zeros
// produce positive peaks. Peak location therefore identifies a potential
// oscillation frequency and peak depth its damping — hence phase margin
// and equivalent step overshoot via the second-order relationships in
// package sos (paper Table 1).
package stab

import (
	"fmt"
	"math"
	"sort"

	"acstab/internal/num"
	"acstab/internal/sos"
	"acstab/internal/wave"
)

// Options configures stability-plot computation and peak classification.
type Options struct {
	// Stencil selects the finite-difference scheme for the second
	// derivative: 0 (auto: 5-point on uniform log grids, else 3-point),
	// 3 (works on non-uniform grids) or 5 (higher order, uniform log
	// grids only). At 40 points/decade the 3-point scheme underestimates
	// a zeta=0.1 peak by ~14% while the 5-point scheme stays within ~6%.
	Stencil int
	// MinPeakDepth: negative peaks shallower than this magnitude are
	// classified MinMax (numerical extremum, not a resonance). The bound
	// comes from the real-pole analysis: an isolated real pole dips to
	// -0.5 and two coincident real poles (zeta = 1) reach exactly -1.
	// Zero or negative disables the filter — every extremum is kept —
	// so the default (0.75) only applies through DefaultOptions, not to
	// an explicitly zeroed Options value.
	MinPeakDepth float64
	// MaxPeaks bounds how many peaks are reported per node (deepest first
	// within each sign). 0 = unlimited.
	MaxPeaks int
}

// DefaultOptions returns the defaults documented in DESIGN.md.
func DefaultOptions() Options {
	return Options{Stencil: 0, MinPeakDepth: 0.75}
}

// PeakType classifies a detected stability-plot peak, mirroring the
// "special cases" notices of the paper's all-nodes report.
type PeakType int

// Peak classifications.
const (
	// PeakNormal is an interior resonance peak.
	PeakNormal PeakType = iota
	// PeakEndOfRange sits at the edge of the analyzed frequency range;
	// the resonance may lie outside the sweep.
	PeakEndOfRange
	// PeakMinMax is a shallow extremum below the real-pole bound; it does
	// not indicate a complex pole pair.
	PeakMinMax
)

// String names the peak type like the tool's report notices.
func (t PeakType) String() string {
	switch t {
	case PeakNormal:
		return "normal"
	case PeakEndOfRange:
		return "end-of-range"
	case PeakMinMax:
		return "min/max"
	}
	return fmt.Sprintf("peaktype(%d)", int(t))
}

// ParsePeakType is the inverse of String: it maps a serialized peak-type
// name (as written by the JSON report) back to its PeakType, so a
// coordinator can reconstruct peaks from per-shard machine-readable
// reports.
func ParsePeakType(s string) (PeakType, error) {
	switch s {
	case "normal":
		return PeakNormal, nil
	case "end-of-range":
		return PeakEndOfRange, nil
	case "min/max":
		return PeakMinMax, nil
	}
	return 0, fmt.Errorf("stab: unknown peak type %q", s)
}

// Peak is one detected stability-plot extremum.
type Peak struct {
	// Freq is the natural frequency in the x unit of the input waveform
	// (Hz throughout this repo), refined by parabolic interpolation.
	Freq float64
	// Value is the stability-plot value at the refined peak: negative for
	// complex poles (the paper's "performance index"), positive for
	// complex zeros.
	Value float64
	Type  PeakType
	// IsZero marks a positive peak (complex zero); zeros do not directly
	// affect stability (paper footnote 2).
	IsZero bool
	// Zeta is the damping ratio implied by Value (NaN for zero peaks).
	Zeta float64
	// PhaseMarginDeg is the estimated phase margin (NaN for zero peaks).
	PhaseMarginDeg float64
	// OvershootPct is the equivalent step overshoot (NaN for zero peaks).
	OvershootPct float64
}

// Result is the stability analysis of one response magnitude.
type Result struct {
	// Plot is P(ω) sampled on the input grid.
	Plot *wave.Wave
	// Peaks holds every detected peak, sorted by frequency.
	Peaks []Peak
	// Dominant points at the deepest negative non-MinMax peak, or nil.
	Dominant *Peak
}

// Plot computes the stability-plot waveform P from a response magnitude
// waveform (|T| versus frequency on a log grid). Non-positive magnitudes
// are clamped to the smallest positive double before taking logs.
func Plot(mag *wave.Wave, opts Options) (*wave.Wave, error) {
	n := mag.Len()
	if n < 5 {
		return nil, fmt.Errorf("stab: need at least 5 frequency points, have %d", n)
	}
	ln := make([]float64, n)
	u := make([]float64, n)
	for i := 0; i < n; i++ {
		m := real(mag.Y[i])
		if m <= 0 {
			m = math.SmallestNonzeroFloat64
		}
		ln[i] = math.Log(m)
		if mag.X[i] <= 0 {
			return nil, fmt.Errorf("stab: non-positive frequency at index %d", i)
		}
		u[i] = math.Log(mag.X[i])
	}
	p := make([]float64, n)
	stencil := opts.Stencil
	if stencil == 0 {
		stencil = 3
		if logUniform(u) && n >= 7 {
			stencil = 5
		}
	}
	switch stencil {
	case 3:
		for i := 1; i < n-1; i++ {
			h0, h1 := u[i]-u[i-1], u[i+1]-u[i]
			p[i] = 2 * (h1*ln[i-1] - (h0+h1)*ln[i] + h0*ln[i+1]) / (h0 * h1 * (h0 + h1))
		}
		p[0], p[n-1] = p[1], p[n-2]
	case 5:
		if !logUniform(u) {
			return nil, fmt.Errorf("stab: 5-point stencil needs a uniform log grid")
		}
		h := u[1] - u[0]
		for i := 2; i < n-2; i++ {
			p[i] = (-ln[i-2] + 16*ln[i-1] - 30*ln[i] + 16*ln[i+1] - ln[i+2]) / (12 * h * h)
		}
		// Fall back to 3-point at the first/last interior points.
		for _, i := range []int{1, n - 2} {
			p[i] = (ln[i-1] - 2*ln[i] + ln[i+1]) / (h * h)
		}
		p[0], p[n-1] = p[1], p[n-2]
	default:
		return nil, fmt.Errorf("stab: unsupported stencil %d (want 3 or 5)", opts.Stencil)
	}
	w := wave.NewReal("stabplot("+mag.Name+")", append([]float64(nil), mag.X...), p)
	w.XUnit = mag.XUnit
	w.YUnit = ""
	w.LogX = true
	return w, nil
}

// Analyze computes the stability plot of a response magnitude and detects
// and classifies its peaks. opts is taken literally: a zero (or negative)
// MinPeakDepth disables the min/max filter rather than being replaced by
// the default — callers wanting defaults start from DefaultOptions.
func Analyze(mag *wave.Wave, opts Options) (*Result, error) {
	switch opts.Stencil {
	case 0, 3, 5:
	default:
		return nil, fmt.Errorf("stab: unsupported stencil %d (want 0, 3 or 5)", opts.Stencil)
	}
	plot, err := Plot(mag, opts)
	if err != nil {
		return nil, err
	}
	res := &Result{Plot: plot}
	n := plot.Len()
	p := plot.Real()
	u := make([]float64, n)
	for i, x := range plot.X {
		u[i] = math.Log(x)
	}

	addPeak := func(i int, isMax bool) {
		val := p[i]
		freq := plot.X[i]
		// Parabolic refinement in (u, P) through the three samples around
		// the extremum, with the actual (possibly non-uniform) spacing:
		// adaptive grids mix coarse and refined intervals right at a peak,
		// where the uniform-step formula would bias both the vertex and its
		// depth. For h0 == h1 the expressions reduce exactly to the
		// classic uniform ones.
		if i > 0 && i < n-1 {
			h0, h1 := u[i]-u[i-1], u[i+1]-u[i]
			dl, dr := p[i-1]-p[i], p[i+1]-p[i]
			den := h0 * h1 * (h0 + h1)
			if den != 0 {
				c := (h0*dr + h1*dl) / den
				if c != 0 {
					b := (h0*h0*dr - h1*h1*dl) / den
					du := num.Clamp(-b/(2*c), -h0, h1)
					freq = math.Exp(u[i] + du)
					val = p[i] - b*b/(4*c)
				}
			}
		}
		pk := Peak{Freq: freq, Value: val, IsZero: isMax}
		switch {
		case i <= 2 || i >= n-3:
			pk.Type = PeakEndOfRange
		case math.Abs(val) < opts.MinPeakDepth:
			pk.Type = PeakMinMax
		default:
			pk.Type = PeakNormal
		}
		if !isMax {
			pk.Zeta = sos.ZetaFromIndex(val)
			pk.PhaseMarginDeg = sos.PhaseMargin(pk.Zeta)
			pk.OvershootPct = sos.Overshoot(pk.Zeta)
		} else {
			pk.Zeta = math.NaN()
			pk.PhaseMarginDeg = math.NaN()
			pk.OvershootPct = math.NaN()
		}
		res.Peaks = append(res.Peaks, pk)
	}

	for i := 1; i < n-1; i++ {
		if p[i] < 0 && p[i] <= p[i-1] && p[i] < p[i+1] {
			addPeak(i, false)
		}
		if p[i] > 0 && p[i] >= p[i-1] && p[i] > p[i+1] {
			addPeak(i, true)
		}
	}
	// High-edge extreme that never turned around inside the range. (The
	// low edge is covered by the main loop: p[0] duplicates p[1], so the
	// "<= previous" test passes at i=1.)
	if n >= 3 && p[n-2] < 0 && p[n-2] < p[n-3] {
		addPeak(n-2, false)
	}
	sort.Slice(res.Peaks, func(a, b int) bool { return res.Peaks[a].Freq < res.Peaks[b].Freq })
	if opts.MaxPeaks > 0 && len(res.Peaks) > opts.MaxPeaks {
		// Keep the deepest |Value| peaks.
		sort.Slice(res.Peaks, func(a, b int) bool {
			return math.Abs(res.Peaks[a].Value) > math.Abs(res.Peaks[b].Value)
		})
		res.Peaks = res.Peaks[:opts.MaxPeaks]
		sort.Slice(res.Peaks, func(a, b int) bool { return res.Peaks[a].Freq < res.Peaks[b].Freq })
	}
	for i := range res.Peaks {
		pk := &res.Peaks[i]
		if pk.IsZero || pk.Type == PeakMinMax {
			continue
		}
		if res.Dominant == nil || pk.Value < res.Dominant.Value {
			res.Dominant = pk
		}
	}
	return res, nil
}

// logUniform reports whether the log-frequency grid u is uniform enough
// for the high-order stencil.
func logUniform(u []float64) bool {
	if len(u) < 3 {
		return false
	}
	h := u[1] - u[0]
	if h <= 0 {
		return false
	}
	for i := 1; i < len(u)-1; i++ {
		if math.Abs((u[i+1]-u[i])-h) > 1e-6*h {
			return false
		}
	}
	return true
}
