package stab

// Adaptive grid refinement: the stability plot only needs dense
// ω-resolution near resonant peaks — P(ω) is flat (|P| well below the
// real-pole bound) away from complex pole/zero pairs — so a sweep can
// start from a coarse log grid and bisect only the intervals the stencil
// signal marks as interesting. RefinePlan is the per-round decision: given
// one node's samples so far, which log-midpoints to solve next.
//
// The decision is a pure function of one node's own samples and the
// options. That property is load-bearing: a sharded all-nodes run splits
// nodes across workers, and per-node refinement guarantees each node's
// final grid — and therefore the merged report — is byte-identical no
// matter how the nodes were partitioned or batched.

import (
	"math"
)

// refineSplit is the interval-width factor above the target spacing at
// which an interval is still worth bisecting: splitting only when
// width > refineSplit*du leaves final spacings in (du/2·refineSplit,
// refineSplit·du], i.e. centered on the requested resolution instead of
// strictly below it.
const refineSplit = 1.5

// RefineOptions configures one refinement round.
type RefineOptions struct {
	// Threshold is the |P| level that marks an interval as resonant.
	// Intervals whose endpoints both stay below it are never refined.
	Threshold float64
	// WideDU is the target log-frequency spacing (natural log) for
	// threshold-selected intervals — dense enough to locate every
	// extremum, coarser than the peak resolution.
	WideDU float64
	// PeakDU is the target spacing for intervals adjacent to a detected
	// extremum, where the parabolic peak fit needs full resolution.
	PeakDU float64
}

// RefinePlan computes the next round of sample points for one node's
// adaptive sweep: the log-midpoints of every interval that is (a) above
// the stability-plot threshold and wider than the wide target, or (b)
// adjacent to a current extremum of P and wider than the peak target.
// freqs must be ascending with positive entries; mags are the response
// magnitudes at those frequencies. The returned frequencies are ascending
// and distinct from the inputs; an empty result means the grid has
// converged. Fewer than 3 samples can't support the stencil and return
// nil.
func RefinePlan(freqs, mags []float64, opt RefineOptions) []float64 {
	n := len(freqs)
	if n < 3 {
		return nil
	}
	u := make([]float64, n)
	ln := make([]float64, n)
	for i := 0; i < n; i++ {
		u[i] = math.Log(freqs[i])
		ln[i] = LogMag(mags[i])
	}
	want, _ := RefinePlanLogs(freqs, u, ln, opt)
	return want
}

// LogMag is ln(m) with non-positive magnitudes clamped to the smallest
// positive float, the sanitization RefinePlan applies before the stencil.
func LogMag(m float64) float64 {
	if m <= 0 {
		m = math.SmallestNonzeroFloat64
	}
	return math.Log(m)
}

// RefinePlanLogs is RefinePlan for callers that carry the log-domain
// samples across rounds: u = ln(freqs) and ln = ln(mags), element for
// element. A multi-round adaptive sweep grows each node's grid by a
// handful of points per round, so recomputing both logarithms over the
// whole grid every round is the dominant cost of the refinement decision;
// this entry point makes the decision O(n) arithmetic with no
// transcendentals except one exp per emitted midpoint. Returns the wanted
// frequencies and their log-frequencies (wantU[i] == the exact midpoint
// value, not Log(wantF[i])).
func RefinePlanLogs(freqs, u, ln []float64, opt RefineOptions) (wantF, wantU []float64) {
	n := len(freqs)
	if n < 3 {
		return nil, nil
	}
	// Same non-uniform 3-point stencil as Plot, endpoints copied.
	p := make([]float64, n)
	for i := 1; i < n-1; i++ {
		h0, h1 := u[i]-u[i-1], u[i+1]-u[i]
		p[i] = 2 * (h1*ln[i-1] - (h0+h1)*ln[i] + h0*ln[i+1]) / (h0 * h1 * (h0 + h1))
	}
	p[0], p[n-1] = p[1], p[n-2]

	split := make([]bool, n-1)
	hot := func(i int) bool { return math.Abs(p[i]) >= opt.Threshold }
	for i := 0; i < n-1; i++ {
		if (hot(i) || hot(i+1)) && u[i+1]-u[i] > refineSplit*opt.WideDU {
			split[i] = true
		}
	}
	// Extremum-adjacent intervals refine all the way to the peak target:
	// those two intervals carry the three samples the parabolic peak fit
	// reads, so their spacing bounds the ωn/ζ accuracy.
	markPeak := func(i int) {
		if i > 0 && u[i]-u[i-1] > refineSplit*opt.PeakDU {
			split[i-1] = true
		}
		if i < n-1 && u[i+1]-u[i] > refineSplit*opt.PeakDU {
			split[i] = true
		}
	}
	for i := 1; i < n-1; i++ {
		if p[i] < 0 && p[i] <= p[i-1] && p[i] < p[i+1] && hot(i) {
			markPeak(i)
		}
		if p[i] > 0 && p[i] >= p[i-1] && p[i] > p[i+1] && hot(i) {
			markPeak(i)
		}
	}
	// High-edge extreme that never turns around in range, mirroring
	// Analyze's end-of-range handling.
	if p[n-2] < 0 && p[n-2] < p[n-3] && hot(n-2) {
		markPeak(n - 2)
	}
	for i, s := range split {
		if !s {
			continue
		}
		midU := (u[i] + u[i+1]) / 2
		mid := math.Exp(midU)
		// Guard against degenerate intervals where the midpoint rounds
		// onto an endpoint; duMin normally keeps spacings far above this.
		if mid > freqs[i] && mid < freqs[i+1] {
			wantF = append(wantF, mid)
			wantU = append(wantU, midU)
		}
	}
	return wantF, wantU
}
