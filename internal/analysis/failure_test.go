package analysis

import (
	"context"
	"errors"
	"strings"
	"testing"

	"acstab/internal/mna"
	"acstab/internal/netlist"
)

// Failure injection: pathological circuits must produce clean errors, not
// panics or silent garbage.

func TestFloatingCurrentSourceFails(t *testing.T) {
	// A current source into a node with no DC path to ground makes the
	// DC system singular.
	c := netlist.NewCircuit("floating")
	c.AddIDC("I1", "0", "x", 1e-3)
	c.AddC("C1", "x", "0", 1e-9) // capacitor is open at DC
	s := compile(t, c)
	_, err := s.OP(context.Background())
	if err == nil {
		t.Fatal("expected failure for a floating DC node")
	}
	if !strings.Contains(err.Error(), "singular") && !errors.Is(err, ErrNoConvergence) {
		t.Errorf("unhelpful error: %v", err)
	}
}

func TestVoltageSourceLoopFails(t *testing.T) {
	// Two ideal voltage sources in parallel with different values: no
	// solution exists.
	c := netlist.NewCircuit("vloop")
	c.AddVDC("V1", "a", "0", 1)
	c.AddVDC("V2", "a", "0", 2)
	c.AddR("R1", "a", "0", 1e3)
	s := compile(t, c)
	if _, err := s.OP(context.Background()); err == nil {
		t.Fatal("conflicting ideal sources should fail")
	}
}

func TestShortedInductorLoopFails(t *testing.T) {
	// Inductor directly across an ideal voltage source: DC current is
	// unbounded (singular branch system).
	c := netlist.NewCircuit("lshort")
	c.AddVDC("V1", "a", "0", 1)
	c.AddL("L1", "a", "0", 1e-3)
	s := compile(t, c)
	if _, err := s.OP(context.Background()); err == nil {
		t.Fatal("ideal V across ideal L should fail at DC")
	}
}

func TestTranBadSpec(t *testing.T) {
	c := netlist.NewCircuit("ok")
	c.AddVDC("V1", "a", "0", 1)
	c.AddR("R1", "a", "0", 1e3)
	s := compile(t, c)
	if _, err := s.Tran(context.Background(), TranSpec{TStop: 0, TStep: 1e-6}); err == nil {
		t.Error("zero TStop should fail")
	}
	if _, err := s.Tran(context.Background(), TranSpec{TStop: 1e-3, TStep: 0}); err == nil {
		t.Error("zero TStep should fail")
	}
}

func TestACOnSingularCircuit(t *testing.T) {
	// Two ideal voltage sources fighting: AC assembly is singular too.
	c := netlist.NewCircuit("acfail")
	c.AddV("V1", "a", "0", netlist.SourceSpec{ACMag: 1})
	c.AddV("V2", "a", "0", netlist.SourceSpec{})
	c.AddR("R1", "a", "0", 1e3)
	flat, _ := netlist.Flatten(c)
	sys, err := mna.Compile(flat)
	if err != nil {
		t.Fatal(err)
	}
	s := New(sys)
	op := sys.Linearize(make([]float64, sys.NumUnknowns()), 0)
	if _, err := s.AC(context.Background(), []float64{1e3}, op); err == nil {
		t.Error("singular AC system should fail")
	}
}

func TestDCSweepBadSource(t *testing.T) {
	c := netlist.NewCircuit("sweep")
	c.AddVDC("V1", "a", "0", 1)
	c.AddR("R1", "a", "0", 1e3)
	s := compile(t, c)
	if _, err := s.DCSweep(context.Background(), "R1", []float64{1, 2}); err == nil {
		t.Error("sweeping a resistor should fail")
	}
	if _, err := s.DCSweep(context.Background(), "nosuch", []float64{1}); err == nil {
		t.Error("unknown source should fail")
	}
}

func TestPolesOnDrivenOnlyCircuit(t *testing.T) {
	// Purely resistive circuit: no finite poles; Poles returns empty.
	c := netlist.NewCircuit("resistive")
	c.AddVDC("V1", "a", "0", 1)
	c.AddR("R1", "a", "b", 1e3)
	c.AddR("R2", "b", "0", 1e3)
	s := compile(t, c)
	op := mustOP(t, s)
	poles, err := s.Poles(context.Background(), op, 1, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if len(poles) != 0 {
		t.Errorf("resistive circuit has no poles, got %+v", poles)
	}
}
