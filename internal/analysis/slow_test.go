package analysis

import (
	"context"
	"math/rand"
	"testing"

	"acstab/internal/obs"
)

// TestACSlowPointCapture: a traced sweep records the worst-K frequency
// points, each tagged with the solver path that produced it; an untraced
// sweep records nothing and pays nothing.
func TestACSlowPointCapture(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := compile(t, randomLadder(rng, 50))
	s.Opt.Matrix = MatrixSparse
	op := mustOP(t, s)
	freqs := sweepFreqs(40)

	run := obs.StartRun("slow-capture")
	s.Trace = run
	if _, err := s.AC(context.Background(), freqs, op); err != nil {
		t.Fatal(err)
	}
	run.Finish()

	tr := run.Trace()
	if len(tr.SlowPoints) == 0 || len(tr.SlowPoints) > obs.MaxSlowPoints+obs.MaxHealthPoints {
		t.Fatalf("slow points = %d, want 1..%d", len(tr.SlowPoints), obs.MaxSlowPoints+obs.MaxHealthPoints)
	}
	valid := map[string]bool{
		"dense": true, "full": true, "refactor": true,
		"refactor_fallback": true, "pattern_drift": true, "diag": true,
	}
	wall, health := 0, 0
	prevWall := int64(0)
	for i, p := range tr.SlowPoints {
		if p.FreqHz < freqs[0] || p.FreqHz > freqs[len(freqs)-1] {
			t.Errorf("slow[%d] frequency %g outside the sweep", i, p.FreqHz)
		}
		if p.Detail == "residual" {
			// Worst-residual health capture rides along with its own quota,
			// sorted after the wall-time points.
			health++
			if p.Residual <= 0 {
				t.Errorf("slow[%d] residual point without residual: %+v", i, p)
			}
			continue
		}
		wall++
		if health > 0 {
			t.Errorf("slow[%d] wall point after a residual point", i)
		}
		if p.WallNS <= 0 {
			t.Errorf("slow[%d] has non-positive wall time: %+v", i, p)
		}
		if !valid[p.Detail] {
			t.Errorf("slow[%d] solver path = %q, not a known kind", i, p.Detail)
		}
		if wall > 1 && p.WallNS > prevWall {
			t.Errorf("slow points not sorted worst-first at %d", i)
		}
		prevWall = p.WallNS
	}
	if wall == 0 || wall > obs.MaxSlowPoints {
		t.Errorf("wall slow points = %d, want 1..%d", wall, obs.MaxSlowPoints)
	}
	if health > obs.MaxHealthPoints {
		t.Errorf("health points = %d, want <=%d", health, obs.MaxHealthPoints)
	}

	// Untraced: the impedance path with no trace attached must stay silent.
	s.Trace = nil
	if _, err := s.ImpedanceMatrixColumns(context.Background(), freqs, op, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
}

// TestImpedanceSlowPointCapture covers the shared-factorization loop.
func TestImpedanceSlowPointCapture(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := compile(t, randomLadder(rng, 30))
	s.Opt.Matrix = MatrixSparse
	op := mustOP(t, s)
	run := obs.StartRun("slow-z")
	s.Trace = run
	if _, err := s.ImpedanceMatrixColumns(context.Background(), sweepFreqs(20), op, []int{0, 3}); err != nil {
		t.Fatal(err)
	}
	run.Finish()
	tr := run.Trace()
	if len(tr.SlowPoints) == 0 || len(tr.SlowPoints) > obs.MaxSlowPoints+obs.MaxHealthPoints {
		t.Fatalf("slow points = %d, want 1..%d", len(tr.SlowPoints), obs.MaxSlowPoints+obs.MaxHealthPoints)
	}
}
