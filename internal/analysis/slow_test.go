package analysis

import (
	"context"
	"math/rand"
	"testing"

	"acstab/internal/obs"
)

// TestACSlowPointCapture: a traced sweep records the worst-K frequency
// points, each tagged with the solver path that produced it; an untraced
// sweep records nothing and pays nothing.
func TestACSlowPointCapture(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := compile(t, randomLadder(rng, 50))
	s.Opt.Matrix = MatrixSparse
	op := mustOP(t, s)
	freqs := sweepFreqs(40)

	run := obs.StartRun("slow-capture")
	s.Trace = run
	if _, err := s.AC(context.Background(), freqs, op); err != nil {
		t.Fatal(err)
	}
	run.Finish()

	tr := run.Trace()
	if len(tr.SlowPoints) == 0 || len(tr.SlowPoints) > obs.MaxSlowPoints {
		t.Fatalf("slow points = %d, want 1..%d", len(tr.SlowPoints), obs.MaxSlowPoints)
	}
	valid := map[string]bool{
		"dense": true, "full": true, "refactor": true,
		"refactor_fallback": true, "pattern_drift": true, "diag": true,
	}
	for i, p := range tr.SlowPoints {
		if p.WallNS <= 0 {
			t.Errorf("slow[%d] has non-positive wall time: %+v", i, p)
		}
		if p.FreqHz < freqs[0] || p.FreqHz > freqs[len(freqs)-1] {
			t.Errorf("slow[%d] frequency %g outside the sweep", i, p.FreqHz)
		}
		if !valid[p.Detail] {
			t.Errorf("slow[%d] solver path = %q, not a known kind", i, p.Detail)
		}
		if i > 0 && p.WallNS > tr.SlowPoints[i-1].WallNS {
			t.Errorf("slow points not sorted worst-first at %d", i)
		}
	}

	// Untraced: the impedance path with no trace attached must stay silent.
	s.Trace = nil
	if _, err := s.ImpedanceMatrixColumns(context.Background(), freqs, op, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
}

// TestImpedanceSlowPointCapture covers the shared-factorization loop.
func TestImpedanceSlowPointCapture(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := compile(t, randomLadder(rng, 30))
	s.Opt.Matrix = MatrixSparse
	op := mustOP(t, s)
	run := obs.StartRun("slow-z")
	s.Trace = run
	if _, err := s.ImpedanceMatrixColumns(context.Background(), sweepFreqs(20), op, []int{0, 3}); err != nil {
		t.Fatal(err)
	}
	run.Finish()
	tr := run.Trace()
	if len(tr.SlowPoints) == 0 || len(tr.SlowPoints) > obs.MaxSlowPoints {
		t.Fatalf("slow points = %d, want 1..%d", len(tr.SlowPoints), obs.MaxSlowPoints)
	}
}
