package analysis

import (
	"context"
	"fmt"
	"math"

	"acstab/internal/acerr"
	"acstab/internal/mna"
	"acstab/internal/wave"
)

// Integrator selects the transient integration method.
type Integrator int

// Integration methods.
const (
	Trapezoidal Integrator = iota
	BackwardEuler
)

// TranSpec configures a transient run.
type TranSpec struct {
	TStop  float64
	TStep  float64 // fixed time step
	Method Integrator
	// RecordEvery thins the stored waveform (1 = every step).
	RecordEvery int
}

// TranResult holds a transient simulation.
type TranResult struct {
	sys *mna.System
	T   []float64
	// X[k] is the solution vector at T[k].
	X [][]float64
}

// NodeWave returns a node's voltage versus time.
func (r *TranResult) NodeWave(node string) (*wave.Wave, error) {
	idx, ok := r.sys.NodeOf(node)
	if !ok {
		return nil, fmt.Errorf("analysis: %w %q", acerr.ErrUnknownNode, node)
	}
	y := make([]float64, len(r.T))
	for k := range r.T {
		if idx >= 0 {
			y[k] = r.X[k][idx]
		}
	}
	w := wave.NewReal("v("+node+")", append([]float64(nil), r.T...), y)
	w.XUnit = "s"
	w.YUnit = "V"
	return w, nil
}

// capState tracks one companion capacitor between steps.
type capState struct {
	entry mna.CapEntry
	vPrev float64
	iPrev float64
}

// Tran runs a fixed-step transient analysis. The initial condition is the
// operating point of the circuit with every transient source held at its
// t=0 value. Device capacitances are linearized at each accepted timestep
// (quasi-static charge model; documented in DESIGN.md). A canceled ctx
// aborts between timesteps (and between Newton iterations within a step).
func (s *Sim) Tran(ctx context.Context, spec TranSpec) (*TranResult, error) {
	if spec.TStep <= 0 || spec.TStop <= 0 {
		return nil, fmt.Errorf("analysis: transient needs positive TStep and TStop")
	}
	if spec.RecordEvery <= 0 {
		spec.RecordEvery = 1
	}
	sys := s.Sys
	// Initial solution at t=0 with transient source values.
	assembleAt := func(t float64) assembleFn {
		return func(a mna.RealAdder, b []float64, x []float64) {
			sys.StampDC(a, b, x, mna.DCOptions{Gmin: s.Opt.Gmin, SrcScale: 0})
			sys.StampTranSources(b, t)
		}
	}
	x0 := make([]float64, sys.NumUnknowns())
	x, err := s.newton(ctx, assembleAt(0), x0)
	if err != nil {
		// Fall back: use the DC OP as the starting guess.
		op, operr := s.OP(ctx)
		if operr != nil {
			return nil, fmt.Errorf("analysis: transient initial point: %w", err)
		}
		x, err = s.newton(ctx, assembleAt(0), op.X)
		if err != nil {
			return nil, fmt.Errorf("analysis: transient initial point: %w", err)
		}
	}

	res := &TranResult{sys: sys}
	res.T = append(res.T, 0)
	res.X = append(res.X, append([]float64(nil), x...))

	h := spec.TStep
	op := sys.Linearize(x, s.Opt.Gmin)
	caps := make([]capState, 0)
	for _, ce := range sys.Capacitances(op) {
		caps = append(caps, capState{entry: ce, vPrev: atv(x, ce.I) - atv(x, ce.J)})
	}
	inds := sys.Inductors()
	type indState struct {
		vPrev float64
		iPrev float64
	}
	ist := make([]indState, len(inds))
	for k, l := range inds {
		ist[k] = indState{vPrev: atv(x, l.I) - atv(x, l.J), iPrev: x[l.Br]}
	}

	trap := spec.Method == Trapezoidal
	steps := int(math.Ceil(spec.TStop / h))
	for n := 1; n <= steps; n++ {
		if err := acerr.Ctx(ctx); err != nil {
			return nil, err
		}
		t := float64(n) * h
		assemble := func(a mna.RealAdder, b []float64, xc []float64) {
			sys.StampDC(a, b, xc, mna.DCOptions{Gmin: s.Opt.Gmin, SrcScale: 0})
			sys.StampTranSources(b, t)
			// Capacitor companions.
			for _, cs := range caps {
				var g, ieq float64
				if trap {
					g = 2 * cs.entry.C / h
					ieq = -(g*cs.vPrev + cs.iPrev)
				} else {
					g = cs.entry.C / h
					ieq = -g * cs.vPrev
				}
				stampG2(a, cs.entry.I, cs.entry.J, g)
				// ieq flows from I to J (companion current source).
				addb(b, cs.entry.I, -ieq)
				addb(b, cs.entry.J, ieq)
			}
			// Inductor companions: StampDC stamped the short; add the
			// resistive term and history RHS.
			for k, l := range inds {
				if trap {
					req := 2 * l.L / h
					a.Add(l.Br, l.Br, -req)
					b[l.Br] += -(req*ist[k].iPrev + ist[k].vPrev)
				} else {
					req := l.L / h
					a.Add(l.Br, l.Br, -req)
					b[l.Br] += -req * ist[k].iPrev
				}
			}
		}
		xn, err := s.newton(ctx, assemble, x)
		if err != nil {
			return nil, fmt.Errorf("analysis: transient step at t=%g: %w", t, err)
		}
		// Update companion history.
		for i := range caps {
			cs := &caps[i]
			v := atv(xn, cs.entry.I) - atv(xn, cs.entry.J)
			if trap {
				g := 2 * cs.entry.C / h
				cs.iPrev = g*(v-cs.vPrev) - cs.iPrev
			} else {
				cs.iPrev = cs.entry.C / h * (v - cs.vPrev)
			}
			cs.vPrev = v
		}
		for k, l := range inds {
			ist[k].vPrev = atv(xn, l.I) - atv(xn, l.J)
			ist[k].iPrev = xn[l.Br]
		}
		x = xn
		// Re-linearize device capacitances at the accepted point.
		if sys.NonlinearCount() > 0 {
			opn := sys.Linearize(x, s.Opt.Gmin)
			newCaps := sys.Capacitances(opn)
			if len(newCaps) == len(caps) {
				for i := range caps {
					caps[i].entry.C = newCaps[i].C
				}
			}
		}
		if n%spec.RecordEvery == 0 || n == steps {
			res.T = append(res.T, t)
			res.X = append(res.X, append([]float64(nil), x...))
		}
	}
	return res, nil
}

func atv(x []float64, i int) float64 {
	if i < 0 {
		return 0
	}
	return x[i]
}

func stampG2(a mna.RealAdder, i, j int, g float64) {
	if i >= 0 {
		a.Add(i, i, g)
	}
	if j >= 0 {
		a.Add(j, j, g)
	}
	if i >= 0 && j >= 0 {
		a.Add(i, j, -g)
		a.Add(j, i, -g)
	}
}

func addb(b []float64, i int, v float64) {
	if i >= 0 {
		b[i] += v
	}
}
