package analysis

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"acstab/internal/acerr"
	"acstab/internal/netlist"
)

// randomLadder builds a randomized RC/RLC ladder of n stages driven by an
// AC voltage source. Component values are log-uniform over realistic
// ranges; each stage flips a coin for an extra series inductor, which adds
// branch unknowns and exercises the non-node rows of the MNA system.
func randomLadder(rng *rand.Rand, stages int) *netlist.Circuit {
	c := netlist.NewCircuit("random ladder")
	c.AddV("V1", "s0", "0", netlist.SourceSpec{ACMag: 1})
	logU := func(lo, hi float64) float64 {
		return math.Exp(math.Log(lo) + rng.Float64()*(math.Log(hi)-math.Log(lo)))
	}
	prev := "s0"
	for i := 1; i <= stages; i++ {
		cur := fmt.Sprintf("s%d", i)
		c.AddR(fmt.Sprintf("R%d", i), prev, cur, logU(10, 1e5))
		if rng.Intn(2) == 0 {
			mid := fmt.Sprintf("m%d", i)
			c.AddL(fmt.Sprintf("L%d", i), cur, mid, logU(1e-9, 1e-3))
			c.AddR(fmt.Sprintf("RL%d", i), mid, "0", logU(10, 1e4))
		}
		c.AddC(fmt.Sprintf("C%d", i), cur, "0", logU(1e-12, 1e-6))
		prev = cur
	}
	return c
}

// sweepFreqs is a multi-decade log sweep, long enough that the sparse
// path settles into the refactor-only steady state.
func sweepFreqs(points int) []float64 {
	f := make([]float64, points)
	for i := range f {
		f[i] = math.Pow(10, float64(i)*9/float64(points-1)) // 1 Hz .. 1 GHz
	}
	return f
}

// TestACSparseDenseProperty: on randomized RC/RLC ladders the sparse
// two-phase path and the dense path must agree within 1e-9 relative
// tolerance for every unknown at every frequency of a multi-decade sweep.
// Ladder sizes land on both sides of the MatrixAuto threshold.
func TestACSparseDenseProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	freqs := sweepFreqs(40)
	for trial := 0; trial < 6; trial++ {
		// Alternate small and large so auto mode picks dense on even
		// trials and sparse on odd ones (threshold is 64 unknowns).
		stages := 4 + rng.Intn(8)
		if trial%2 == 1 {
			stages = 40 + rng.Intn(20)
		}
		s := compile(t, randomLadder(rng, stages))
		op := mustOP(t, s)
		n := s.Sys.NumUnknowns()

		run := func(mode MatrixMode) *ACResult {
			t.Helper()
			s.Opt.Matrix = mode
			r, err := s.AC(context.Background(), freqs, op)
			if err != nil {
				t.Fatalf("trial %d (n=%d) mode %d: %v", trial, n, mode, err)
			}
			return r
		}
		rd := run(MatrixDense)
		rs := run(MatrixSparse)
		ra := run(MatrixAuto)

		for k := range freqs {
			// Scale-relative comparison: each unknown against the largest
			// solution component at this frequency, which keeps the check
			// meaningful when a deep-ladder node underflows.
			scale := 0.0
			for i := 0; i < n; i++ {
				if a := cmplx.Abs(rd.Sol[k][i]); a > scale {
					scale = a
				}
			}
			if scale == 0 {
				scale = 1
			}
			for i := 0; i < n; i++ {
				if d := cmplx.Abs(rd.Sol[k][i] - rs.Sol[k][i]); d > 1e-9*scale {
					t.Fatalf("trial %d (n=%d) f=%g Hz unknown %d: sparse/dense differ by %g (scale %g)",
						trial, n, freqs[k], i, d, scale)
				}
				if d := cmplx.Abs(rd.Sol[k][i] - ra.Sol[k][i]); d > 1e-9*scale {
					t.Fatalf("trial %d (n=%d) f=%g Hz unknown %d: auto deviates by %g",
						trial, n, freqs[k], i, d)
				}
			}
		}
	}
}

// TestImpedanceSparseDenseProperty runs the same agreement check on the
// shared-factorization impedance path, which is the loop the symbolic /
// numeric split actually accelerates.
func TestImpedanceSparseDenseProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	freqs := sweepFreqs(30)
	for trial := 0; trial < 4; trial++ {
		stages := 10 + rng.Intn(30)
		s := compile(t, randomLadder(rng, stages))
		op := mustOP(t, s)
		idx := make([]int, s.Sys.NumNodes())
		for i := range idx {
			idx[i] = i
		}
		s.Opt.Matrix = MatrixDense
		zd, err := s.ImpedanceMatrixColumns(context.Background(), freqs, op, idx)
		if err != nil {
			t.Fatal(err)
		}
		s.Opt.Matrix = MatrixSparse
		zs, err := s.ImpedanceMatrixColumns(context.Background(), freqs, op, idx)
		if err != nil {
			t.Fatal(err)
		}
		for i := range idx {
			for k := range freqs {
				mag := cmplx.Abs(zd[i][k])
				if d := cmplx.Abs(zd[i][k] - zs[i][k]); d > 1e-9*math.Max(mag, 1e-12) {
					t.Fatalf("trial %d node %d f=%g Hz: |dz| = %g vs |z| = %g",
						trial, i, freqs[k], d, mag)
				}
			}
		}
	}
}

// TestImpedanceSteadyStateAllocs: the per-frequency loop of the sparse
// impedance sweep must not allocate — growing the sweep from 8 to 64
// frequencies may not add allocations beyond a small fixed slack (result
// rows grow in size, not in count).
func TestImpedanceSteadyStateAllocs(t *testing.T) {
	c := netlist.NewCircuit("alloc ladder")
	c.AddV("V1", "s0", "0", netlist.SourceSpec{ACMag: 1})
	prev := "s0"
	for i := 1; i <= 40; i++ {
		cur := fmt.Sprintf("s%d", i)
		c.AddR(fmt.Sprintf("R%d", i), prev, cur, 1e3)
		c.AddC(fmt.Sprintf("C%d", i), cur, "0", 1e-12)
		prev = cur
	}
	s := compile(t, c)
	s.Opt.Matrix = MatrixSparse
	op := mustOP(t, s)
	idx := []int{0, 5, 10}

	// Prime the Sim-level symbolic cache so both measurements see the
	// steady state.
	if _, err := s.ImpedanceMatrixColumns(context.Background(), sweepFreqs(8), op, idx); err != nil {
		t.Fatal(err)
	}
	measure := func(points int) float64 {
		freqs := sweepFreqs(points)
		return testing.AllocsPerRun(10, func() {
			if _, err := s.ImpedanceMatrixColumns(context.Background(), freqs, op, idx); err != nil {
				t.Fatal(err)
			}
		})
	}
	small, large := measure(8), measure(64)
	if large > small+8 {
		t.Errorf("allocations scale with sweep length: %v at 8 freqs vs %v at 64 freqs", small, large)
	}
}

// TestDCSweepCanceled: a canceled context aborts the sweep with the
// cancellation sentinel instead of burning a full cold homotopy per point.
func TestDCSweepCanceled(t *testing.T) {
	c := netlist.NewCircuit("cancel sweep")
	c.AddVDC("V1", "a", "0", 1)
	c.AddR("R1", "a", "b", 1e3)
	c.AddR("R2", "b", "0", 1e3)
	s := compile(t, c)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.DCSweep(ctx, "V1", []float64{1, 2, 3})
	if err == nil {
		t.Fatal("canceled sweep returned no error")
	}
	if !errors.Is(err, acerr.ErrCanceled) {
		t.Fatalf("error %v does not wrap ErrCanceled", err)
	}
}

// TestDCSweepCurrentSource: the compile-once path must update isrc
// instances too, not just voltage sources.
func TestDCSweepCurrentSource(t *testing.T) {
	c := netlist.NewCircuit("i sweep")
	c.AddI("I1", "0", "a", netlist.SourceSpec{DC: 1e-3})
	c.AddR("R1", "a", "0", 1e3)
	s := compile(t, c)
	vals := []float64{1e-3, 2e-3, 5e-3}
	res, err := s.DCSweep(context.Background(), "I1", vals)
	if err != nil {
		t.Fatal(err)
	}
	w, err := res.NodeWave("a")
	if err != nil {
		t.Fatal(err)
	}
	for k, iv := range vals {
		want := iv * 1e3
		if math.Abs(real(w.Y[k])-want) > 1e-9 {
			t.Errorf("step %d: v(a) = %g, want %g", k, real(w.Y[k]), want)
		}
	}
}
