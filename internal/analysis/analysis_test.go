package analysis

import (
	"context"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"acstab/internal/device"
	"acstab/internal/linalg"
	"acstab/internal/mna"
	"acstab/internal/netlist"
	"acstab/internal/num"
)

func compile(t *testing.T, c *netlist.Circuit) *Sim {
	t.Helper()
	flat, err := netlist.Flatten(c)
	if err != nil {
		t.Fatalf("Flatten: %v", err)
	}
	sys, err := mna.Compile(flat)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return New(sys)
}

func mustOP(t *testing.T, s *Sim) *mna.OpPoint {
	t.Helper()
	op, err := s.OP(context.Background())
	if err != nil {
		t.Fatalf("OP: %v", err)
	}
	return op
}

func v(t *testing.T, s *Sim, op *mna.OpPoint, node string) float64 {
	t.Helper()
	val, err := s.NodeVoltage(op, node)
	if err != nil {
		t.Fatal(err)
	}
	return val
}

func TestOPVoltageDivider(t *testing.T) {
	c := netlist.NewCircuit("divider")
	c.AddVDC("V1", "in", "0", 10)
	c.AddR("R1", "in", "out", 1e3)
	c.AddR("R2", "out", "0", 3e3)
	s := compile(t, c)
	op := mustOP(t, s)
	if got := v(t, s, op, "out"); math.Abs(got-7.5) > 1e-9 {
		t.Errorf("v(out) = %g, want 7.5", got)
	}
	// Source current = -10/4k (current flows out of + terminal through
	// the circuit; MNA branch current is into the + terminal).
	i, err := s.SourceCurrent(op, "V1")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(i-(-2.5e-3)) > 1e-9 {
		t.Errorf("i(V1) = %g, want -2.5m", i)
	}
}

func TestOPControlledSources(t *testing.T) {
	c := netlist.NewCircuit("ctrl")
	c.AddVDC("V1", "in", "0", 1)
	c.AddR("R1", "in", "0", 1e3)
	c.AddE("E1", "e", "0", "in", "0", 5)
	c.AddR("Re", "e", "0", 1e3)
	c.AddG("G1", "g", "0", "in", "0", 2e-3) // pushes current g->0
	c.AddR("Rg", "g", "0", 1e3)
	c.AddF("F1", "f", "0", "V1", 3)
	c.AddR("Rf", "f", "0", 1e3)
	c.AddH("H1", "h", "0", "V1", 2e3)
	c.AddR("Rh", "h", "0", 1e3)
	s := compile(t, c)
	op := mustOP(t, s)
	if got := v(t, s, op, "e"); math.Abs(got-5) > 1e-9 {
		t.Errorf("VCVS: v(e) = %g, want 5", got)
	}
	// G1: i = 2mA from node g to ground -> v(g) = -2mA * 1k = -2V.
	if got := v(t, s, op, "g"); math.Abs(got-(-2)) > 1e-9 {
		t.Errorf("VCCS: v(g) = %g, want -2", got)
	}
	// i(V1): R1 draws 1mA, E/G/H don't load V1. F injects 3*i(V1) into f.
	// i(V1) = -(1mA) (into + terminal). F1 gain 3 -> current 3*(-1mA) from
	// f to ground -> v(f) = -3*(-1m)*1k? F current = gain * i(V1) = -3mA
	// flowing f->0 through the source: leaves f: v(f) = -(-3m)*1k = 3.
	if got := v(t, s, op, "f"); math.Abs(got-3) > 1e-9 {
		t.Errorf("CCCS: v(f) = %g, want 3", got)
	}
	// H1: v(h) = 2k * i(V1) = 2k * (-1mA) = -2V.
	if got := v(t, s, op, "h"); math.Abs(got-(-2)) > 1e-9 {
		t.Errorf("CCVS: v(h) = %g, want -2", got)
	}
}

func TestOPDiodeResistor(t *testing.T) {
	c := netlist.NewCircuit("diode bias")
	c.AddVDC("V1", "in", "0", 5)
	c.AddR("R1", "in", "d", 1e3)
	c.AddD("D1", "d", "0", "dm")
	c.SetModel("dm", "d", map[string]float64{"is": 1e-14})
	s := compile(t, c)
	op := mustOP(t, s)
	vd := v(t, s, op, "d")
	// Must satisfy (5-vd)/1k = IS*(exp(vd/vt)-1).
	ir := (5 - vd) / 1e3
	vt := device.Vt(27)
	id := 1e-14 * (math.Exp(vd/vt) - 1)
	if math.Abs(ir-id) > 1e-6*ir {
		t.Errorf("KCL violated: iR=%g iD=%g (vd=%g)", ir, id, vd)
	}
	if vd < 0.55 || vd > 0.75 {
		t.Errorf("vd = %g, expected ~0.65", vd)
	}
}

func TestOPBJTCurrentMirror(t *testing.T) {
	c := netlist.NewCircuit("mirror")
	c.AddVDC("VCC", "vcc", "0", 5)
	c.AddR("Rref", "vcc", "ref", 4.3e3) // ~1mA reference
	c.AddQ("Q1", "ref", "ref", "0", "qn")
	c.AddQ("Q2", "out", "ref", "0", "qn")
	c.AddR("Rload", "vcc", "out", 1e3)
	c.SetModel("qn", "npn", map[string]float64{"is": 1e-15, "bf": 100})
	s := compile(t, c)
	op := mustOP(t, s)
	iref := (5 - v(t, s, op, "ref")) / 4.3e3
	iout := (5 - v(t, s, op, "out")) / 1e3
	// Mirror ratio with finite beta: iout/iref = 1/(1+2/beta) ~ 0.98.
	ratio := iout / iref
	if ratio < 0.95 || ratio > 1.0 {
		t.Errorf("mirror ratio = %g (iref=%g iout=%g)", ratio, iref, iout)
	}
}

func TestOPPNPMirror(t *testing.T) {
	c := netlist.NewCircuit("pnp mirror")
	c.AddVDC("VCC", "vcc", "0", 5)
	c.AddR("Rref", "ref", "0", 4.3e3)
	c.AddQ("Q1", "ref", "ref", "vcc", "qp")
	c.AddQ("Q2", "out", "ref", "vcc", "qp")
	c.AddR("Rload", "out", "0", 1e3)
	c.SetModel("qp", "pnp", map[string]float64{"is": 1e-15, "bf": 50})
	s := compile(t, c)
	op := mustOP(t, s)
	iref := v(t, s, op, "ref") / 4.3e3
	iout := v(t, s, op, "out") / 1e3
	if iref < 0.5e-3 || iref > 1.5e-3 {
		t.Fatalf("iref = %g", iref)
	}
	ratio := iout / iref
	if ratio < 0.9 || ratio > 1.05 {
		t.Errorf("pnp mirror ratio = %g", ratio)
	}
}

func TestOPMOSInverter(t *testing.T) {
	c := netlist.NewCircuit("nmos common source")
	c.AddVDC("VDD", "vdd", "0", 5)
	c.AddVDC("VG", "g", "0", 1.2)
	c.AddR("RD", "vdd", "d", 10e3)
	c.AddM("M1", "d", "g", "0", "0", "nch", 10e-6, 1e-6)
	c.SetModel("nch", "nmos", map[string]float64{"vto": 0.7, "kp": 100e-6})
	s := compile(t, c)
	op := mustOP(t, s)
	// Id = 0.5*KP*(W/L)*(vgs-vt)^2 = 0.5*100u*10*0.25 = 125uA.
	// vd = 5 - 10k*125u = 3.75.
	if got := v(t, s, op, "d"); math.Abs(got-3.75) > 0.01 {
		t.Errorf("v(d) = %g, want 3.75", got)
	}
}

func TestOPMOSTriodeAndSwappedTerminals(t *testing.T) {
	// Transmission-gate-like use: drain below source voltage forces the
	// internal D/S swap path.
	c := netlist.NewCircuit("swap")
	c.AddVDC("VDD", "vdd", "0", 5)
	c.AddVDC("VG", "g", "0", 5)
	c.AddVDC("VIN", "a", "0", 2)
	c.AddM("M1", "a", "g", "b", "0", "nch", 10e-6, 1e-6)
	c.AddR("RL", "b", "0", 10e3)
	c.SetModel("nch", "nmos", map[string]float64{"vto": 0.7, "kp": 100e-6})
	s := compile(t, c)
	op := mustOP(t, s)
	vb := v(t, s, op, "b")
	// The pass transistor pulls b close to a (2V) through the 10k load.
	if vb < 1.5 || vb > 2.0 {
		t.Errorf("v(b) = %g, want ~2", vb)
	}
}

func TestACLowpass(t *testing.T) {
	c := netlist.NewCircuit("rc lowpass")
	c.AddV("V1", "in", "0", netlist.SourceSpec{ACMag: 1})
	c.AddR("R1", "in", "out", 1e3)
	c.AddC("C1", "out", "0", 1e-6)
	s := compile(t, c)
	op := mustOP(t, s)
	fc := 1 / (2 * math.Pi * 1e3 * 1e-6)
	res, err := s.AC(context.Background(), []float64{fc / 100, fc, fc * 100}, op)
	if err != nil {
		t.Fatal(err)
	}
	w, err := res.NodeWave("out")
	if err != nil {
		t.Fatal(err)
	}
	// At fc: magnitude 1/sqrt(2), phase -45.
	if got := cmplx.Abs(w.Y[1]); math.Abs(got-1/math.Sqrt2) > 1e-6 {
		t.Errorf("|H(fc)| = %g", got)
	}
	if got := cmplx.Phase(w.Y[1]) * 180 / math.Pi; math.Abs(got-(-45)) > 1e-3 {
		t.Errorf("phase(fc) = %g", got)
	}
	if got := cmplx.Abs(w.Y[0]); math.Abs(got-1) > 1e-3 {
		t.Errorf("|H(DC)| = %g", got)
	}
	// 100x above fc: ~ -40dB relative slope for 1 pole ~ 1/100.
	if got := cmplx.Abs(w.Y[2]); math.Abs(got-0.01) > 2e-3 {
		t.Errorf("|H(100fc)| = %g", got)
	}
}

func TestACInductorAndBranch(t *testing.T) {
	// Series RL: i = V/(R + jwL).
	c := netlist.NewCircuit("rl")
	c.AddV("V1", "in", "0", netlist.SourceSpec{ACMag: 1})
	c.AddR("R1", "in", "m", 100)
	c.AddL("L1", "m", "0", 1e-3)
	s := compile(t, c)
	op := mustOP(t, s)
	f := 100 / (2 * math.Pi * 1e-3) // wL = 100 ohm
	res, err := s.AC(context.Background(), []float64{f}, op)
	if err != nil {
		t.Fatal(err)
	}
	iw, err := res.BranchWave("L1")
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / math.Sqrt(100*100+100*100)
	if got := cmplx.Abs(iw.Y[0]); math.Abs(got-want) > 1e-6 {
		t.Errorf("|i| = %g, want %g", got, want)
	}
}

func TestACCommonEmitterGain(t *testing.T) {
	c := netlist.NewCircuit("ce amp")
	c.AddVDC("VCC", "vcc", "0", 10)
	c.AddV("VIN", "b", "0", netlist.SourceSpec{DC: 0.65, ACMag: 1})
	c.AddR("RC", "vcc", "c", 1e3)
	c.AddQ("Q1", "c", "b", "0", "qn")
	c.SetModel("qn", "npn", map[string]float64{"is": 1e-15, "bf": 100})
	s := compile(t, c)
	op := mustOP(t, s)
	ic := (10 - v(t, s, op, "c")) / 1e3
	gm := ic / 0.02585
	res, err := s.AC(context.Background(), []float64{1e3}, op)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := res.NodeWave("c")
	gain := cmplx.Abs(w.Y[0])
	want := gm * 1e3
	if math.Abs(gain-want) > 0.05*want {
		t.Errorf("CE gain = %g, want ~%g", gain, want)
	}
	// Phase inversion.
	if ph := cmplx.Phase(w.Y[0]); math.Abs(math.Abs(ph)-math.Pi) > 0.05 {
		t.Errorf("CE phase = %g, want ~pi", ph)
	}
}

func TestImpedanceParallelRLC(t *testing.T) {
	// Parallel RLC driving-point impedance: peak R at resonance.
	c := netlist.NewCircuit("tank")
	c.AddR("R1", "t", "0", 1e3)
	c.AddL("L1", "t", "0", 1e-6)
	c.AddC("C1", "t", "0", 1e-9)
	s := compile(t, c)
	op := mustOP(t, s)
	f0 := 1 / (2 * math.Pi * math.Sqrt(1e-6*1e-9))
	zw, err := s.Impedance(context.Background(), []float64{f0 / 10, f0, f0 * 10}, op, "t")
	if err != nil {
		t.Fatal(err)
	}
	if got := cmplx.Abs(zw.Y[1]); math.Abs(got-1e3) > 1 {
		t.Errorf("|Z(f0)| = %g, want 1000", got)
	}
	if cmplx.Abs(zw.Y[0]) > 100 || cmplx.Abs(zw.Y[2]) > 100 {
		t.Errorf("off-resonance |Z| too large: %g %g",
			cmplx.Abs(zw.Y[0]), cmplx.Abs(zw.Y[2]))
	}
}

func TestACSparseMatchesDense(t *testing.T) {
	// RC ladder big enough to trigger sparse in auto mode.
	c := netlist.NewCircuit("ladder")
	c.AddV("V1", "n0", "0", netlist.SourceSpec{ACMag: 1})
	prev := "n0"
	for i := 1; i <= 80; i++ {
		cur := nodeName(i)
		c.AddR("R"+cur, prev, cur, 100)
		c.AddC("C"+cur, cur, "0", 1e-9)
		prev = cur
	}
	s := compile(t, c)
	op := mustOP(t, s)
	freqs := []float64{1e3, 1e5, 1e7}

	s.Opt.Matrix = MatrixDense
	rd, err := s.AC(context.Background(), freqs, op)
	if err != nil {
		t.Fatal(err)
	}
	s.Opt.Matrix = MatrixSparse
	rs, err := s.AC(context.Background(), freqs, op)
	if err != nil {
		t.Fatal(err)
	}
	for _, node := range []string{nodeName(5), nodeName(40), nodeName(80)} {
		wd, _ := rd.NodeWave(node)
		ws, _ := rs.NodeWave(node)
		for k := range freqs {
			mag := cmplx.Abs(wd.Y[k])
			if mag < 1e-30 {
				// Deep in the ladder at high frequency the response
				// underflows; any tiny absolute error dominates. Require
				// only that the sparse result underflows too.
				if cmplx.Abs(ws.Y[k]) > 1e-20 {
					t.Errorf("%s at %g Hz: sparse %g should underflow like dense %g",
						node, freqs[k], cmplx.Abs(ws.Y[k]), mag)
				}
				continue
			}
			if cmplx.Abs(wd.Y[k]-ws.Y[k]) > 1e-6*mag {
				t.Errorf("%s sparse/dense mismatch at %g Hz: %g vs %g",
					node, freqs[k], mag, cmplx.Abs(ws.Y[k]))
			}
		}
	}
}

func nodeName(i int) string {
	return "n" + string(rune('0'+i/10)) + string(rune('0'+i%10))
}

// Property: AC reciprocity. For a reciprocal network (R, C only),
// Z_jk = Z_kj.
func TestACReciprocityQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := netlist.NewCircuit("random rc")
		nodes := []string{"a", "b", "c", "d"}
		// Random RC mesh, every node shunted to ground to avoid floating.
		for i, n := range nodes {
			c.AddR("Rg"+n, n, "0", 1e3*(1+r.Float64()))
			for j := i + 1; j < len(nodes); j++ {
				if r.Intn(2) == 0 {
					c.AddR("R"+n+nodes[j], n, nodes[j], 500*(1+r.Float64()))
				} else {
					c.AddC("C"+n+nodes[j], n, nodes[j], 1e-9*(1+r.Float64()))
				}
			}
		}
		flat, _ := netlist.Flatten(c)
		sys, err := mna.Compile(flat)
		if err != nil {
			return false
		}
		s := New(sys)
		op, err := s.OP(context.Background())
		if err != nil {
			return false
		}
		ia, _ := sys.NodeOf("a")
		ib, _ := sys.NodeOf("b")
		z, err := s.ImpedanceMatrixColumns(context.Background(), []float64{1e5}, op, []int{ia, ib})
		if err != nil {
			return false
		}
		// Solve full columns to read cross terms.
		n := sys.NumUnknowns()
		_ = n
		// Z_ab: inject at b, read a. Reuse ImpedanceMatrixColumns is
		// self-impedance only, so compute manually via AC with an isrc.
		zab := crossImpedance(t, c, "b", "a")
		zba := crossImpedance(t, c, "a", "b")
		_ = z
		return cmplx.Abs(zab-zba) <= 1e-9*(1+cmplx.Abs(zab))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// crossImpedance injects 1A AC at inj and reads the voltage at read.
func crossImpedance(t *testing.T, c *netlist.Circuit, inj, read string) complex128 {
	cc := netlist.NewCircuit(c.Title)
	for _, e := range c.Elems {
		copied := *e
		cc.Add(&copied)
	}
	for k, v := range c.Models {
		cc.Models[k] = v
	}
	cc.AddI("Iprobe", "0", inj, netlist.SourceSpec{ACMag: 1})
	flat, err := netlist.Flatten(cc)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := mna.Compile(flat)
	if err != nil {
		t.Fatal(err)
	}
	s := New(sys)
	op, err := s.OP(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.AC(context.Background(), []float64{1e5}, op)
	if err != nil {
		t.Fatal(err)
	}
	w, err := res.NodeWave(read)
	if err != nil {
		t.Fatal(err)
	}
	return w.Y[0]
}

func TestTranRCCharge(t *testing.T) {
	c := netlist.NewCircuit("rc step")
	c.AddV("V1", "in", "0", netlist.SourceSpec{
		Tran: netlist.PulseFunc{V1: 0, V2: 1, TD: 0, TR: 1e-9, TF: 1e-9, PW: 1, PER: 2},
	})
	c.AddR("R1", "in", "out", 1e3)
	c.AddC("C1", "out", "0", 1e-6)
	s := compile(t, c)
	res, err := s.Tran(context.Background(), TranSpec{TStop: 5e-3, TStep: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	w, err := res.NodeWave("out")
	if err != nil {
		t.Fatal(err)
	}
	// Compare with analytic 1 - exp(-t/tau) at several points.
	tau := 1e-3
	for _, tt := range []float64{0.5e-3, 1e-3, 2e-3, 4e-3} {
		want := 1 - math.Exp(-tt/tau)
		got := w.At(tt)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("v(out) at %g = %g, want %g", tt, got, want)
		}
	}
}

func TestTranRLCStepOvershoot(t *testing.T) {
	// Series RLC: R=20, L=1mH, C=1uF: zeta = R/2*sqrt(C/L) = 0.316.
	c := netlist.NewCircuit("rlc step")
	c.AddV("V1", "in", "0", netlist.SourceSpec{
		Tran: netlist.PulseFunc{V1: 0, V2: 1, TR: 1e-9, TF: 1e-9, PW: 1, PER: 2},
	})
	c.AddR("R1", "in", "a", 20)
	c.AddL("L1", "a", "out", 1e-3)
	c.AddC("C1", "out", "0", 1e-6)
	s := compile(t, c)
	res, err := s.Tran(context.Background(), TranSpec{TStop: 2e-3, TStep: 0.5e-6})
	if err != nil {
		t.Fatal(err)
	}
	w, err := res.NodeWave("out")
	if err != nil {
		t.Fatal(err)
	}
	zeta := 20.0 / 2 * math.Sqrt(1e-6/1e-3)
	wantOS := 100 * math.Exp(-math.Pi*zeta/math.Sqrt(1-zeta*zeta))
	gotOS := w.OvershootPct()
	if math.Abs(gotOS-wantOS) > 2 {
		t.Errorf("overshoot = %g%%, want %g%%", gotOS, wantOS)
	}
}

func TestTranBackwardEulerDamping(t *testing.T) {
	// BE is more dissipative than trapezoidal: overshoot should be lower
	// or equal, and both should finish near the final value.
	c := netlist.NewCircuit("rlc step")
	c.AddV("V1", "in", "0", netlist.SourceSpec{
		Tran: netlist.PulseFunc{V1: 0, V2: 1, TR: 1e-9, TF: 1e-9, PW: 1, PER: 2},
	})
	c.AddR("R1", "in", "a", 20)
	c.AddL("L1", "a", "out", 1e-3)
	c.AddC("C1", "out", "0", 1e-6)
	s := compile(t, c)
	trap, err := s.Tran(context.Background(), TranSpec{TStop: 1.5e-3, TStep: 2e-6, Method: Trapezoidal})
	if err != nil {
		t.Fatal(err)
	}
	be, err := s.Tran(context.Background(), TranSpec{TStop: 1.5e-3, TStep: 2e-6, Method: BackwardEuler})
	if err != nil {
		t.Fatal(err)
	}
	wt, _ := trap.NodeWave("out")
	wb, _ := be.NodeWave("out")
	if wb.OvershootPct() > wt.OvershootPct()+0.5 {
		t.Errorf("BE overshoot %g should not exceed trapezoidal %g",
			wb.OvershootPct(), wt.OvershootPct())
	}
}

func TestTranSinSource(t *testing.T) {
	c := netlist.NewCircuit("sin through buffer")
	c.AddV("V1", "in", "0", netlist.SourceSpec{Tran: netlist.SinFunc{VA: 1, Freq: 1e3}})
	c.AddR("R1", "in", "0", 1e3)
	s := compile(t, c)
	res, err := s.Tran(context.Background(), TranSpec{TStop: 2e-3, TStep: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	w, _ := res.NodeWave("in")
	if got := w.At(0.25e-3); math.Abs(got-1) > 1e-3 {
		t.Errorf("sin peak = %g", got)
	}
	if got := w.At(0.75e-3); math.Abs(got+1) > 1e-3 {
		t.Errorf("sin trough = %g", got)
	}
}

func TestTranNonlinearDiodeClipper(t *testing.T) {
	c := netlist.NewCircuit("clipper")
	c.AddV("V1", "in", "0", netlist.SourceSpec{Tran: netlist.SinFunc{VA: 5, Freq: 1e3}})
	c.AddR("R1", "in", "out", 1e3)
	c.AddD("D1", "out", "0", "dm")
	c.SetModel("dm", "d", map[string]float64{"is": 1e-14})
	s := compile(t, c)
	res, err := s.Tran(context.Background(), TranSpec{TStop: 1e-3, TStep: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	w, _ := res.NodeWave("out")
	// Positive half clipped near 0.7V, negative half follows input.
	maxv := real(w.Y[w.MaxIndex()])
	minv := real(w.Y[w.MinIndex()])
	if maxv > 0.85 {
		t.Errorf("clipped max = %g, want < 0.85", maxv)
	}
	if minv > -4 {
		t.Errorf("negative peak = %g, want ~ -5", minv)
	}
}

func TestDCSweepDiodeIV(t *testing.T) {
	c := netlist.NewCircuit("iv")
	c.AddVDC("V1", "a", "0", 0)
	c.AddD("D1", "a", "0", "dm")
	c.SetModel("dm", "d", map[string]float64{"is": 1e-14})
	s := compile(t, c)
	vals := num.LinSpace(0.4, 0.75, 15)
	res, err := s.DCSweep(context.Background(), "V1", vals)
	if err != nil {
		t.Fatal(err)
	}
	// Monotonic current: check node "a" voltage is the source value and
	// the branch current grows.
	w, err := res.NodeWave("a")
	if err != nil {
		t.Fatal(err)
	}
	for k := range vals {
		if math.Abs(real(w.Y[k])-vals[k]) > 1e-9 {
			t.Fatalf("swept voltage not applied at step %d", k)
		}
	}
}

func TestTempSweepDiodeVf(t *testing.T) {
	c := netlist.NewCircuit("vf vs temp")
	c.AddIDC("I1", "0", "d", 1e-3) // 1mA into the diode
	c.AddD("D1", "d", "0", "dm")
	c.SetModel("dm", "d", map[string]float64{"is": 1e-14})
	ops, sys, err := TempSweep(context.Background(), c, DefaultOptions(), []float64{-40, 27, 125})
	if err != nil {
		t.Fatal(err)
	}
	idx, _ := sys.NodeOf("d")
	vfs := []float64{ops[0].X[idx], ops[1].X[idx], ops[2].X[idx]}
	if !(vfs[0] > vfs[1] && vfs[1] > vfs[2]) {
		t.Errorf("Vf should fall with temperature: %v", vfs)
	}
	// Roughly -2mV/K: from -40 to 125 expect ~0.33V drop.
	drop := vfs[0] - vfs[2]
	if drop < 0.15 || drop > 0.6 {
		t.Errorf("Vf drop over 165K = %g, want ~0.3", drop)
	}
}

func TestKCLAtOPQuick(t *testing.T) {
	// Property: at a converged OP of a random resistive network with
	// sources, KCL holds at every node (residual of G*x - b is zero).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := netlist.NewCircuit("random resistive")
		n := 3 + r.Intn(4)
		names := make([]string, n)
		for i := range names {
			names[i] = "n" + string(rune('a'+i))
		}
		c.AddVDC("V1", names[0], "0", 1+5*r.Float64())
		for i, nm := range names {
			c.AddR("Rg"+nm, nm, "0", 100+1e3*r.Float64())
			if i > 0 {
				c.AddR("Rc"+nm, names[i-1], nm, 100+1e3*r.Float64())
			}
		}
		flat, _ := netlist.Flatten(c)
		sys, err := mna.Compile(flat)
		if err != nil {
			return false
		}
		s := New(sys)
		op, err := s.OP(context.Background())
		if err != nil {
			return false
		}
		// Reassemble at the solution; A*x must equal b.
		nu := sys.NumUnknowns()
		a := linalg.NewMatrix(nu)
		b := make([]float64, nu)
		sys.StampDC(a, b, op.X, mna.DCOptions{Gmin: s.Opt.Gmin, SrcScale: 1})
		ax := a.MulVec(op.X)
		for i := range ax {
			if math.Abs(ax[i]-b[i]) > 1e-9*(1+math.Abs(b[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestOPErrors(t *testing.T) {
	c := netlist.NewCircuit("probe errors")
	c.AddVDC("V1", "a", "0", 1)
	c.AddR("R1", "a", "0", 1e3)
	s := compile(t, c)
	op := mustOP(t, s)
	if _, err := s.NodeVoltage(op, "nosuch"); err == nil {
		t.Error("expected unknown node error")
	}
	if _, err := s.SourceCurrent(op, "R1"); err == nil {
		t.Error("expected no-branch error")
	}
	if got, _ := s.NodeVoltage(op, "0"); got != 0 {
		t.Error("ground voltage must be 0")
	}
}
