package analysis

import (
	"context"
	"errors"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"acstab/internal/acerr"
	"acstab/internal/obs"
	"acstab/internal/sparse"
)

// TestACResidualTelemetry: a healthy sparse sweep verifies every
// frequency point, reports residuals at noise level, observes pivot
// growth and a condition estimate, and flushes the worst points into the
// run trace tagged "residual".
func TestACResidualTelemetry(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	s := compile(t, randomLadder(rng, 25))
	s.Opt.Matrix = MatrixSparse
	op := mustOP(t, s)
	freqs := sweepFreqs(24)
	run := obs.StartRun("numerics-telemetry")
	s.Trace = run
	if _, err := s.AC(context.Background(), freqs, op); err != nil {
		t.Fatal(err)
	}
	run.Finish()
	tr := run.Trace()

	if got := tr.Counters["ac_residual_points"]; got != int64(len(freqs)) {
		t.Errorf("ac_residual_points = %d, want %d (every point verified)", got, len(freqs))
	}
	if got := tr.Counters["ac_residual_breaches"]; got != 0 {
		t.Errorf("ac_residual_breaches = %d on a healthy circuit, want 0", got)
	}
	resMax := tr.Stats["numerics_residual_max"]
	if resMax <= 0 || resMax > 1e-12 {
		t.Errorf("numerics_residual_max = %g, want (0, 1e-12]", resMax)
	}
	if g := tr.Stats["numerics_pivot_growth_max"]; g <= 0 {
		t.Errorf("numerics_pivot_growth_max = %g, want > 0", g)
	}
	if c := tr.Stats["numerics_cond_est_max"]; c < 1 {
		t.Errorf("numerics_cond_est_max = %g, want >= 1", c)
	}
	// The per-decade digest must account for every verified point.
	var digest int64
	for d := obs.ResidualDecadeMin; d <= obs.ResidualDecadeMax; d++ {
		digest += tr.Counters[obs.ResidualDecadeKey(d)]
	}
	if digest != int64(len(freqs)) {
		t.Errorf("decade digest sums to %d, want %d", digest, len(freqs))
	}
	if med, ok := obs.MedianResidual(tr.Counters); !ok || med <= 0 || med > 1e-10 {
		t.Errorf("median residual = %g (ok=%v), want (0, 1e-10]", med, ok)
	}
	var health int
	for _, p := range tr.SlowPoints {
		if p.Detail == "residual" {
			health++
			if p.Residual <= 0 {
				t.Errorf("health point at %g Hz has residual %g, want > 0", p.FreqHz, p.Residual)
			}
		}
	}
	if health == 0 || health > obs.MaxHealthPoints {
		t.Errorf("health points = %d, want 1..%d", health, obs.MaxHealthPoints)
	}
}

// TestACResidualDisabled: a negative threshold turns the observatory off —
// no residual counters, no stats, no health points, no error paths.
func TestACResidualDisabled(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	s := compile(t, randomLadder(rng, 20))
	s.Opt.Matrix = MatrixSparse
	s.Opt.ResidualThreshold = -1
	op := mustOP(t, s)
	run := obs.StartRun("numerics-off")
	s.Trace = run
	if _, err := s.AC(context.Background(), sweepFreqs(16), op); err != nil {
		t.Fatal(err)
	}
	run.Finish()
	tr := run.Trace()
	if got := tr.Counters["ac_residual_points"]; got != 0 {
		t.Errorf("ac_residual_points = %d with the observatory disabled, want 0", got)
	}
	if _, ok := tr.Stats["numerics_residual_max"]; ok {
		t.Error("numerics_residual_max stat present with the observatory disabled")
	}
}

// TestACResidualImpossibleThreshold: a threshold below what double
// precision can deliver walks the whole escalation ladder — refinement,
// refactorization — and then surfaces the typed accuracy error.
func TestACResidualImpossibleThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	s := compile(t, randomLadder(rng, 20))
	s.Opt.Matrix = MatrixSparse
	s.Opt.ResidualThreshold = 1e-30
	op := mustOP(t, s)
	run := obs.StartRun("numerics-impossible")
	s.Trace = run
	_, err := s.AC(context.Background(), sweepFreqs(8), op)
	run.Finish()
	if err == nil {
		t.Fatal("1e-30 threshold produced no error")
	}
	if !errors.Is(err, acerr.ErrAccuracy) {
		t.Fatalf("error %v does not wrap ErrAccuracy", err)
	}
	tr := run.Trace()
	if got := tr.Counters["ac_residual_breaches"]; got < 1 {
		t.Errorf("ac_residual_breaches = %d, want >= 1", got)
	}
	if got := tr.Counters["ac_refinements"]; got < 1 {
		t.Errorf("ac_refinements = %d, want >= 1 (the ladder must try before failing)", got)
	}
}

// marginalPivotSymbolic builds the PR 5 forcing rig with a pivot that is
// bad but not collapsed: the symbolic analysis pivots column zq on the
// (zp, zq) entry, which in the real matrix is a ~1e-18 F capacitor —
// small enough to wreck the elimination's accuracy (multipliers ~1e8),
// large enough to pass the refactor collapsed-pivot guard. Every
// frequency then breaches the residual threshold and must be repaired by
// refinement or escalation, not rejected up front.
func marginalPivotSymbolic(t *testing.T, s *Sim, omega0 float64) (*sparse.Pattern, *sparse.Symbolic) {
	t.Helper()
	op := mustOP(t, s)
	sys := s.Sys
	rec := sparse.NewRecorder(sys.NumUnknowns())
	sys.StampAC(rec, nil, omega0, op)
	pat := rec.Compile()
	v := pat.NewVals()
	v.Begin()
	sys.StampAC(v, nil, omega0, op)
	pIdx, ok := sys.NodeOf("zp")
	if !ok {
		t.Fatal("no zp node")
	}
	qIdx, ok := sys.NodeOf("zq")
	if !ok {
		t.Fatal("no zq node")
	}
	slot := pat.SlotOf(pIdx, qIdx)
	if slot < 0 {
		t.Fatal("no (zp, zq) entry in the pattern")
	}
	doctored := append([]complex128(nil), v.Values()...)
	doctored[slot] = 1e6 // analyze-time pivot bait
	sym, err := pat.Analyze(doctored)
	if err != nil {
		t.Fatal(err)
	}
	return pat, sym
}

// compileMarginalIsland compiles fallbackIslandCircuit with two changes
// that turn the collapse rig into a breach rig: the island capacitor is
// raised to 1e-21 F (its MHz admittance clears the refactor
// collapsed-pivot guard instead of tripping it, so the doctored order
// survives Refactor with pivot growth ~1e11), and the island is coupled
// into several ladder nodes so elimination through the bad pivot builds
// fill chains whose cancellation actually accumulates roundoff — a lone
// coupling cancels exactly and stays backward-stable despite the growth.
func compileMarginalIsland(t *testing.T) *Sim {
	t.Helper()
	c := fallbackIslandCircuit(8)
	c.AddC("CZ2", "zp", "zq", 1e-21)
	c.AddR("RQ2", "zq", "s2", 1e3)
	c.AddR("RQ4", "zq", "s4", 1e3)
	c.AddR("RQ6", "zq", "s6", 1e3)
	c.AddR("RP3", "zp", "s3", 1e3)
	c.AddR("RP5", "zp", "s5", 1e3)
	return compile(t, c)
}

// TestACResidualBreachRepaired forces genuine residual breaches: under
// the doctored marginal-pivot order every frequency's refactor solve is
// inaccurate (pivot growth ~1e8), the verify ladder refines and/or
// escalates to a fresh full factorization, and the sweep must complete
// with every final residual back under the threshold — no typed error.
func TestACResidualBreachRepaired(t *testing.T) {
	freqs := []float64{1e6, 2e6, 5e6, 1e7}
	s := compileMarginalIsland(t)
	op := mustOP(t, s)
	s.Opt.Matrix = MatrixSparse
	pat, sym := marginalPivotSymbolic(t, s, 2*math.Pi*freqs[0])
	installSymbolic(s, pat, sym)

	run := obs.StartRun("numerics-breach")
	s.Trace = run
	res, err := s.AC(context.Background(), freqs, op)
	run.Finish()
	if err != nil {
		t.Fatalf("breached sweep did not recover: %v", err)
	}
	tr := run.Trace()
	if got := tr.Counters["ac_residual_breaches"]; got < 1 {
		t.Fatalf("ac_residual_breaches = %d, want >= 1 (the rig failed to force a breach)", got)
	}
	if got := tr.Counters["ac_refinements"]; got < 1 {
		t.Errorf("ac_refinements = %d, want >= 1", got)
	}
	if resMax := tr.Stats["numerics_residual_max"]; resMax > defResidualThreshold {
		t.Errorf("final numerics_residual_max = %g, want <= %g (repair must restore accuracy)",
			resMax, defResidualThreshold)
	}

	// The repaired solutions must match an independent dense solve. The
	// bound is forward error, κ·η — the rig's island makes the system
	// genuinely nastier than a healthy ladder, so this is loose by design.
	s2 := compileMarginalIsland(t)
	s2.Opt.Matrix = MatrixDense
	rd, err := s2.AC(context.Background(), freqs, mustOP(t, s2))
	if err != nil {
		t.Fatal(err)
	}
	n := s.Sys.NumUnknowns()
	for k := range freqs {
		scale := 0.0
		for i := 0; i < n; i++ {
			if a := cmplx.Abs(rd.Sol[k][i]); a > scale {
				scale = a
			}
		}
		if scale == 0 {
			scale = 1
		}
		for i := 0; i < n; i++ {
			if d := cmplx.Abs(rd.Sol[k][i] - res.Sol[k][i]); d > 1e-5*scale {
				t.Fatalf("f=%g Hz unknown %d: repaired sparse deviates from dense by %g (scale %g)",
					freqs[k], i, d, scale)
			}
		}
	}
}

// TestACResidualBoundsTrueError: the textbook forward-error bound — on
// randomized RC/RLC ladders the sparse solution's true deviation from the
// dense reference must be within a modest factor of (condition estimate ×
// reported residual). The reported health numbers are only useful if they
// actually dominate the real error.
func TestACResidualBoundsTrueError(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	freqs := sweepFreqs(20)
	for trial := 0; trial < 4; trial++ {
		s := compile(t, randomLadder(rng, 12+rng.Intn(20)))
		op := mustOP(t, s)
		n := s.Sys.NumUnknowns()

		s.Opt.Matrix = MatrixSparse
		run := obs.StartRun("numerics-bound")
		s.Trace = run
		rs, err := s.AC(context.Background(), freqs, op)
		if err != nil {
			t.Fatal(err)
		}
		run.Finish()
		s.Trace = nil
		tr := run.Trace()
		resMax := tr.Stats["numerics_residual_max"]
		condMax := tr.Stats["numerics_cond_est_max"]
		if resMax <= 0 || condMax < 1 {
			t.Fatalf("trial %d: missing health stats (resMax %g, condMax %g)", trial, resMax, condMax)
		}

		s.Opt.Matrix = MatrixDense
		rd, err := s.AC(context.Background(), freqs, op)
		if err != nil {
			t.Fatal(err)
		}
		// κ is sampled, not tracked per point, so give the bound two orders
		// of slack plus a floor for the dense reference's own roundoff.
		bound := 100*condMax*resMax + 1e-11
		for k := range freqs {
			scale := 0.0
			for i := 0; i < n; i++ {
				if a := cmplx.Abs(rd.Sol[k][i]); a > scale {
					scale = a
				}
			}
			if scale == 0 {
				scale = 1
			}
			for i := 0; i < n; i++ {
				if d := cmplx.Abs(rd.Sol[k][i] - rs.Sol[k][i]); d > bound*scale {
					t.Fatalf("trial %d f=%g Hz unknown %d: true error %g exceeds health bound %g (κ %g, η %g)",
						trial, freqs[k], i, d/scale, bound, condMax, resMax)
				}
			}
		}
	}
}
