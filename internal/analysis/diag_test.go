package analysis

import (
	"context"
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"acstab/internal/netlist"
	"acstab/internal/obs"
	"acstab/internal/sparse"
)

// allNodeIdx returns every node unknown index of the system.
func allNodeIdx(s *Sim) []int {
	idx := make([]int, s.Sys.NumNodes())
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// TestImpedanceDiagSweepProperty: on randomized RC/RLC ladders the
// reach-restricted diagonal kernel, the full shared-factorization sweep,
// and the dense solver must agree on every Z_kk to 1e-9 scale-relative
// across a multi-decade sweep; the kernel counters must show the diag path
// actually ran with zero fallbacks.
func TestImpedanceDiagSweepProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	freqs := sweepFreqs(30)
	for trial := 0; trial < 4; trial++ {
		stages := 10 + rng.Intn(30)
		s := compile(t, randomLadder(rng, stages))
		op := mustOP(t, s)
		idx := allNodeIdx(s)

		s.Opt.Matrix = MatrixDense
		zd, err := s.ImpedanceMatrixColumns(context.Background(), freqs, op, idx)
		if err != nil {
			t.Fatal(err)
		}
		// Dense mode delegates wholesale — same shape, same numbers.
		zdd, err := s.ImpedanceDiagSweep(context.Background(), freqs, op, idx)
		if err != nil {
			t.Fatal(err)
		}
		s.Opt.Matrix = MatrixSparse
		zf, err := s.ImpedanceMatrixColumns(context.Background(), freqs, op, idx)
		if err != nil {
			t.Fatal(err)
		}
		solves0, falls0 := mACDiagSolves.Value(), mACDiagFallbacks.Value()
		zg, err := s.ImpedanceDiagSweep(context.Background(), freqs, op, idx)
		if err != nil {
			t.Fatal(err)
		}
		if d := mACDiagSolves.Value() - solves0; d != int64(len(freqs)) {
			t.Errorf("trial %d: diag solves delta = %d, want %d", trial, d, len(freqs))
		}
		if d := mACDiagFallbacks.Value() - falls0; d != 0 {
			t.Errorf("trial %d: diag fallbacks delta = %d, want 0", trial, d)
		}
		for i := range idx {
			for k := range freqs {
				mag := math.Max(cmplx.Abs(zd[i][k]), 1e-12)
				for _, got := range []struct {
					name string
					z    complex128
				}{{"dense-diag", zdd[i][k]}, {"sparse-full", zf[i][k]}, {"sparse-diag", zg[i][k]}} {
					if d := cmplx.Abs(zd[i][k] - got.z); d > 1e-9*mag {
						t.Fatalf("trial %d node %d f=%g Hz %s: |dz| = %g vs |z| = %g",
							trial, i, freqs[k], got.name, d, mag)
					}
				}
			}
		}
	}
}

// fallbackIslandCircuit builds a ladder plus a two-node island (zq, zp)
// tied together by a structurally present but numerically negligible
// capacitor. The island registers first so column zq is eliminated while
// row zp is still live — the shape a doctored pivot order needs.
func fallbackIslandCircuit(stages int) *netlist.Circuit {
	c := netlist.NewCircuit("fallback island")
	c.AddR("RQ", "zq", "0", 1e3)
	c.AddR("RP", "zp", "0", 1e3)
	c.AddC("CP", "zp", "0", 1e-12)
	c.AddC("CZ", "zp", "zq", 1e-30)
	c.AddV("V1", "s0", "0", netlist.SourceSpec{ACMag: 1})
	prev := "s0"
	for i := 1; i <= stages; i++ {
		cur := fmt.Sprintf("s%d", i)
		c.AddR(fmt.Sprintf("R%d", i), prev, cur, 1e3)
		c.AddC(fmt.Sprintf("C%d", i), cur, "0", 1e-12)
		prev = cur
	}
	return c
}

// installSymbolic swaps a prebuilt pattern+symbolic into the Sim-shared AC
// cache, the hook the forcing tests use to start a sweep under a doctored
// or stale analysis.
func installSymbolic(s *Sim, pat *sparse.Pattern, sym *sparse.Symbolic) {
	sh := s.acShared()
	sh.mu.Lock()
	sh.pat, sh.sym = pat, sym
	sh.diagSym, sh.diagPlans = nil, nil
	sh.mu.Unlock()
}

// TestImpedanceDiagRefactorFallback forces every frequency of a diag sweep
// onto the refactor-fallback path: the symbolic analysis is built from
// doctored values that pivot column zq on the (zp, zq) entry, which in the
// real matrix is a ~1e-30 capacitor — each Refactor hits the collapsed-
// pivot guard, falls back to a full factorization, and the diag sweep must
// run the full per-node substitutions for that point. Results must still
// match the dense solver to 1e-9.
func TestImpedanceDiagRefactorFallback(t *testing.T) {
	freqs := sweepFreqs(12)
	s := compile(t, fallbackIslandCircuit(8))
	op := mustOP(t, s)
	sys := s.Sys
	n := sys.NumUnknowns()
	omega0 := 2 * math.Pi * freqs[0]
	rec := sparse.NewRecorder(n)
	sys.StampAC(rec, nil, omega0, op)
	pat := rec.Compile()
	v := pat.NewVals()
	v.Begin()
	sys.StampAC(v, nil, omega0, op)
	if v.Drift() {
		t.Fatal("non-deterministic stamp")
	}
	pIdx, ok := sys.NodeOf("zp")
	if !ok {
		t.Fatal("no zp node")
	}
	qIdx, ok := sys.NodeOf("zq")
	if !ok {
		t.Fatal("no zq node")
	}
	slot := pat.SlotOf(pIdx, qIdx)
	if slot < 0 {
		t.Fatalf("no (zp, zq) entry in the pattern")
	}
	doctored := append([]complex128(nil), v.Values()...)
	doctored[slot] = 1e6 // analyze-time pivot bait, ~0 in the real matrix
	sym, err := pat.Analyze(doctored)
	if err != nil {
		t.Fatal(err)
	}
	s.Opt.Matrix = MatrixSparse
	installSymbolic(s, pat, sym)

	idx := allNodeIdx(s)
	solves0, falls0 := mACDiagSolves.Value(), mACDiagFallbacks.Value()
	zg, err := s.ImpedanceDiagSweep(context.Background(), freqs, op, idx)
	if err != nil {
		t.Fatal(err)
	}
	if d := mACDiagFallbacks.Value() - falls0; d != int64(len(freqs)) {
		t.Errorf("diag fallbacks delta = %d, want %d (every frequency collapsed)", d, len(freqs))
	}
	if d := mACDiagSolves.Value() - solves0; d != 0 {
		t.Errorf("diag solves delta = %d, want 0 under forced fallback", d)
	}

	s2 := compile(t, fallbackIslandCircuit(8))
	s2.Opt.Matrix = MatrixDense
	zd, err := s2.ImpedanceMatrixColumns(context.Background(), freqs, mustOP(t, s2), idx)
	if err != nil {
		t.Fatal(err)
	}
	for i := range idx {
		for k := range freqs {
			mag := math.Max(cmplx.Abs(zd[i][k]), 1e-12)
			if d := cmplx.Abs(zd[i][k] - zg[i][k]); d > 1e-9*mag {
				t.Fatalf("node %d f=%g Hz: fallback path |dz| = %g vs |z| = %g",
					i, freqs[k], d, mag)
			}
		}
	}
}

// driftLadder builds the deterministic ladder the pattern-drift test uses;
// withExtra adds one more resistor between existing nodes, which changes
// the stamp stream but not the node set.
func driftLadder(withExtra bool) *netlist.Circuit {
	c := netlist.NewCircuit("drift ladder")
	c.AddV("V1", "s0", "0", netlist.SourceSpec{ACMag: 1})
	prev := "s0"
	for i := 1; i <= 10; i++ {
		cur := fmt.Sprintf("s%d", i)
		c.AddR(fmt.Sprintf("R%d", i), prev, cur, 1e3)
		c.AddC(fmt.Sprintf("C%d", i), cur, "0", 1e-12)
		prev = cur
	}
	if withExtra {
		c.AddR("RX", "s2", "s5", 1e4)
	}
	return c
}

// TestImpedanceDiagPatternDrift forces the pattern-drift path: the sweep
// starts under a symbolic analysis recorded from a different stamp stream
// (same node set, one extra element), so the first stamped frequency
// trips the drift checksum, invalidates the cache, and the whole sweep
// runs full factorizations — every point a diag fallback, results still
// agreeing with dense.
func TestImpedanceDiagPatternDrift(t *testing.T) {
	freqs := sweepFreqs(10)
	s := compile(t, driftLadder(false))
	op := mustOP(t, s)
	other := compile(t, driftLadder(true))
	if other.Sys.NumUnknowns() != s.Sys.NumUnknowns() {
		t.Fatal("drift fixture changed the unknown count")
	}
	opOther := mustOP(t, other)
	omega0 := 2 * math.Pi * freqs[0]
	rec := sparse.NewRecorder(other.Sys.NumUnknowns())
	other.Sys.StampAC(rec, nil, omega0, opOther)
	pat := rec.Compile()
	v := pat.NewVals()
	v.Begin()
	other.Sys.StampAC(v, nil, omega0, opOther)
	sym, err := pat.Analyze(v.Values())
	if err != nil {
		t.Fatal(err)
	}
	s.Opt.Matrix = MatrixSparse
	installSymbolic(s, pat, sym)

	idx := allNodeIdx(s)
	drift0, falls0 := mACPatternDrift.Value(), mACDiagFallbacks.Value()
	zg, err := s.ImpedanceDiagSweep(context.Background(), freqs, op, idx)
	if err != nil {
		t.Fatal(err)
	}
	if d := mACPatternDrift.Value() - drift0; d != 1 {
		t.Errorf("pattern drift delta = %d, want 1", d)
	}
	if d := mACDiagFallbacks.Value() - falls0; d != int64(len(freqs)) {
		t.Errorf("diag fallbacks delta = %d, want %d (drift runs out the sweep on full factorizations)", d, len(freqs))
	}

	s.Opt.Matrix = MatrixDense
	zd, err := s.ImpedanceMatrixColumns(context.Background(), freqs, op, idx)
	if err != nil {
		t.Fatal(err)
	}
	for i := range idx {
		for k := range freqs {
			mag := math.Max(cmplx.Abs(zd[i][k]), 1e-12)
			if d := cmplx.Abs(zd[i][k] - zg[i][k]); d > 1e-9*mag {
				t.Fatalf("node %d f=%g Hz: drift path |dz| = %g vs |z| = %g",
					i, freqs[k], d, mag)
			}
		}
	}
}

// TestImpedanceDiagSweepSteadyStateAllocs: after the symbolic analysis and
// reach plan exist, the per-frequency loop of the diag sweep must not
// allocate — growing the sweep 8x may not add allocations beyond a small
// fixed slack (result rows grow in size, not count).
func TestImpedanceDiagSweepSteadyStateAllocs(t *testing.T) {
	s := compile(t, driftLadder(false))
	s.Opt.Matrix = MatrixSparse
	op := mustOP(t, s)
	idx := allNodeIdx(s)
	if _, err := s.ImpedanceDiagSweep(context.Background(), sweepFreqs(8), op, idx); err != nil {
		t.Fatal(err)
	}
	measure := func(points int) float64 {
		freqs := sweepFreqs(points)
		return testing.AllocsPerRun(10, func() {
			if _, err := s.ImpedanceDiagSweep(context.Background(), freqs, op, idx); err != nil {
				t.Fatal(err)
			}
		})
	}
	small, large := measure(8), measure(64)
	if large > small+8 {
		t.Errorf("allocations scale with sweep length: %v at 8 freqs vs %v at 64 freqs", small, large)
	}
}

// TestImpedanceDiagTrace: a traced diag sweep carries the diag_solve phase
// span, the diag counters, and slow points tagged with the "diag" solver
// path.
func TestImpedanceDiagTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	s := compile(t, randomLadder(rng, 25))
	s.Opt.Matrix = MatrixSparse
	op := mustOP(t, s)
	freqs := sweepFreqs(20)
	run := obs.StartRun("diag-trace")
	s.Trace = run
	if _, err := s.ImpedanceDiagSweep(context.Background(), freqs, op, allNodeIdx(s)); err != nil {
		t.Fatal(err)
	}
	run.Finish()
	tr := run.Trace()
	var sawPhase bool
	for _, p := range tr.Phases {
		if p.Phase == "diag_solve" {
			sawPhase = true
		}
	}
	if !sawPhase {
		t.Error("no diag_solve phase span in the trace")
	}
	if got := tr.Counters["ac_diag_solves"]; got != int64(len(freqs)) {
		t.Errorf("trace ac_diag_solves = %d, want %d", got, len(freqs))
	}
	if tr.Counters["ac_diag_rows_visited"] <= 0 {
		t.Error("trace ac_diag_rows_visited missing")
	}
	if len(tr.SlowPoints) == 0 {
		t.Fatal("no slow points captured")
	}
	for i, p := range tr.SlowPoints {
		if p.Detail != solveKindDiag {
			t.Errorf("slow[%d] solver path = %q, want %q", i, p.Detail, solveKindDiag)
		}
	}
}
