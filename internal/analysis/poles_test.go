package analysis

import (
	"context"
	"math"
	"testing"

	"acstab/internal/netlist"
	"acstab/internal/num"
)

func TestPolesRLCTank(t *testing.T) {
	// Parallel RLC: poles s = -1/(2RC) +/- j sqrt(1/LC - ...), i.e.
	// wn = 1/sqrt(LC), zeta = sqrt(L/C)/(2R). Exact ground truth.
	zeta, fn := 0.25, 1e6
	wn := 2 * math.Pi * fn
	cap := 1e-9
	l := 1 / (wn * wn * cap)
	r := math.Sqrt(l/cap) / (2 * zeta)
	c := netlist.NewCircuit("tank")
	c.AddR("R1", "t", "0", r)
	c.AddL("L1", "t", "0", l)
	c.AddC("C1", "t", "0", cap)
	s := compile(t, c)
	op := mustOP(t, s)
	poles, err := s.Poles(context.Background(), op, 1e3, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	pairs := ComplexPolePairs(poles, 1e-6)
	if len(pairs) != 1 {
		t.Fatalf("pairs = %d (%+v)", len(pairs), poles)
	}
	if !num.ApproxEqual(pairs[0].FreqHz, fn, 1e-6, 0) {
		t.Errorf("fn = %g, want %g", pairs[0].FreqHz, fn)
	}
	if !num.ApproxEqual(pairs[0].Zeta, zeta, 1e-6, 0) {
		t.Errorf("zeta = %g, want %g", pairs[0].Zeta, zeta)
	}
}

func TestPolesRCChain(t *testing.T) {
	// Two isolated RC sections: two real poles at 1/(2 pi RC).
	c := netlist.NewCircuit("rc poles")
	c.AddV("V1", "in", "0", netlist.SourceSpec{DC: 0})
	c.AddR("R1", "in", "a", 1e3)
	c.AddC("C1", "a", "0", 1e-9) // 159 kHz
	c.AddE("E1", "b", "0", "a", "0", 1)
	c.AddR("R2", "b", "m", 1e4)
	c.AddC("C2", "m", "0", 1e-9) // 15.9 kHz
	s := compile(t, c)
	op := mustOP(t, s)
	poles, err := s.Poles(context.Background(), op, 1e2, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if len(poles) != 2 {
		t.Fatalf("poles = %+v", poles)
	}
	want := []float64{1 / (2 * math.Pi * 1e4 * 1e-9), 1 / (2 * math.Pi * 1e3 * 1e-9)}
	for i, w := range want {
		if !num.ApproxEqual(poles[i].FreqHz, w, 1e-6, 0) {
			t.Errorf("pole %d at %g, want %g", i, poles[i].FreqHz, w)
		}
		if math.Abs(poles[i].Zeta-1) > 1e-9 {
			t.Errorf("real pole zeta = %g", poles[i].Zeta)
		}
	}
}

func TestPolesBandFilter(t *testing.T) {
	c := netlist.NewCircuit("band")
	c.AddR("R1", "a", "0", 1e3)
	c.AddC("C1", "a", "0", 1e-9) // 159 kHz pole
	s := compile(t, c)
	op := mustOP(t, s)
	// Band excludes the pole.
	poles, err := s.Poles(context.Background(), op, 1e6, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if len(poles) != 0 {
		t.Errorf("expected no poles in band, got %+v", poles)
	}
}

func TestTransferZerosNotchFilter(t *testing.T) {
	// Twin-T-like: a series LC from input to output creates a transmission
	// zero at 1/(2 pi sqrt(LC)). Simpler: bridged series RLC -> V divider:
	// V1 - R - out, out - L - m, m - C - 0: the L+C branch shorts out at
	// its series resonance, creating a notch (complex zero pair on the jw
	// axis) in v(out)/v(in).
	c := netlist.NewCircuit("notch")
	c.AddV("V1", "in", "0", netlist.SourceSpec{ACMag: 1})
	c.AddR("R1", "in", "out", 1e3)
	c.AddL("L1", "out", "m", 1e-3)
	c.AddC("C1", "m", "0", 1e-9)
	s := compile(t, c)
	op := mustOP(t, s)
	zeros, err := s.TransferZeros(context.Background(), op, "V1", "out", 1e3, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	fz := 1 / (2 * math.Pi * math.Sqrt(1e-3*1e-9))
	found := false
	for _, z := range zeros {
		if num.ApproxEqual(z.FreqHz, fz, 1e-3, 0) && math.Abs(z.Zeta) < 1e-6 {
			found = true
		}
	}
	if !found {
		t.Errorf("notch zero at %g not found: %+v", fz, zeros)
	}
	// Cross-check: AC response really nulls there.
	res, err := s.AC(context.Background(), []float64{fz}, op)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := res.NodeWave("out")
	if mag := real(w.Mag().Y[0]); mag > 1e-6 {
		t.Errorf("|v(out)| at the notch = %g, want ~0", mag)
	}
}

func TestTransferZerosRCHighpassZeroAtDC(t *testing.T) {
	// Series C into R: one zero at s=0 (below any positive band): the
	// band-filtered list in (1 kHz, 1 GHz) is empty, while the pole at
	// 1/(2 pi RC) shows up in Poles.
	c := netlist.NewCircuit("hp")
	c.AddV("V1", "in", "0", netlist.SourceSpec{ACMag: 1})
	c.AddC("C1", "in", "out", 1e-9)
	c.AddR("R1", "out", "0", 1e5)
	s := compile(t, c)
	op := mustOP(t, s)
	zeros, err := s.TransferZeros(context.Background(), op, "V1", "out", 1e3, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if len(zeros) != 0 {
		t.Errorf("highpass has only the s=0 zero, got %+v", zeros)
	}
	poles, err := s.Poles(context.Background(), op, 1e2, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if len(poles) != 1 || !num.ApproxEqual(poles[0].FreqHz, 1/(2*math.Pi*1e5*1e-9), 1e-6, 0) {
		t.Errorf("poles = %+v", poles)
	}
}

func TestTransferZerosErrors(t *testing.T) {
	c := netlist.NewCircuit("z")
	c.AddV("V1", "a", "0", netlist.SourceSpec{ACMag: 1})
	c.AddR("R1", "a", "0", 1e3)
	s := compile(t, c)
	op := mustOP(t, s)
	if _, err := s.TransferZeros(context.Background(), op, "R1", "a", 1, 1e9); err == nil {
		t.Error("non-source should fail")
	}
	if _, err := s.TransferZeros(context.Background(), op, "V1", "nosuch", 1, 1e9); err == nil {
		t.Error("unknown node should fail")
	}
	if _, err := s.TransferZeros(context.Background(), op, "nosuch", "a", 1, 1e9); err == nil {
		t.Error("unknown source should fail")
	}
}
