package analysis

import (
	"context"
	"errors"
	"fmt"

	"acstab/internal/acerr"
	"acstab/internal/mna"
	"acstab/internal/netlist"
	"acstab/internal/wave"
)

// DCSweepResult holds a DC source sweep.
type DCSweepResult struct {
	sys  *mna.System
	Vals []float64
	X    [][]float64
}

// NodeWave returns a node voltage versus the swept value.
func (r *DCSweepResult) NodeWave(node string) (*wave.Wave, error) {
	idx, ok := r.sys.NodeOf(node)
	if !ok {
		return nil, fmt.Errorf("analysis: %w %q", acerr.ErrUnknownNode, node)
	}
	y := make([]float64, len(r.Vals))
	for k := range r.Vals {
		if idx >= 0 {
			y[k] = r.X[k][idx]
		}
	}
	return wave.NewReal("v("+node+")", append([]float64(nil), r.Vals...), y), nil
}

// DCSweep sweeps the DC value of the named independent source, solving the
// operating point at each step with warm starting. The circuit is restored
// afterwards.
func (s *Sim) DCSweep(ctx context.Context, src string, vals []float64) (*DCSweepResult, error) {
	e := s.Sys.Ckt.Element(src)
	if e == nil || (e.Type != netlist.VSource && e.Type != netlist.ISource) {
		return nil, fmt.Errorf("analysis: %q is not an independent source", src)
	}
	if e.Src == nil {
		e.Src = &netlist.SourceSpec{}
	}
	orig := e.Src.DC
	defer func() { e.Src.DC = orig }()

	// Only the swept source's DC value changes between points, so the
	// circuit is compiled exactly once (into a private System, leaving the
	// caller's s.Sys untouched) and each point just updates the source's
	// operating value in the compiled instance tables.
	sys, err := mna.Compile(s.Sys.Ckt)
	if err != nil {
		return nil, err
	}
	sim := &Sim{Sys: sys, Opt: s.Opt, Trace: s.Trace}

	res := &DCSweepResult{sys: s.Sys, Vals: append([]float64(nil), vals...)}
	var warm []float64
	for _, v := range vals {
		if err := acerr.Ctx(ctx); err != nil {
			return nil, err
		}
		e.Src.DC = v
		if !sys.SetSourceDC(src, v) {
			return nil, fmt.Errorf("analysis: %q is not an independent source", src)
		}
		var op *mna.OpPoint
		if warm != nil {
			x, werr := sim.newton(ctx, func(a mna.RealAdder, b []float64, x []float64) {
				sys.StampDC(a, b, x, mna.DCOptions{Gmin: s.Opt.Gmin, SrcScale: 1})
			}, warm)
			switch {
			case werr == nil:
				op = sys.Linearize(x, s.Opt.Gmin)
			case errors.Is(werr, acerr.ErrCanceled):
				// A canceled context is a request to stop, not a hard
				// operating point — don't pay for a cold homotopy retry.
				return nil, werr
			}
			// Genuine non-convergence from the warm start falls through to
			// the cold solve below.
		}
		if op == nil {
			op, err = sim.OP(ctx)
			if err != nil {
				return nil, fmt.Errorf("analysis: sweep %s=%g: %w", src, v, err)
			}
		}
		warm = op.X
		res.X = append(res.X, op.X)
	}
	return res, nil
}

// TempSweep solves the operating point across temperatures (Celsius),
// recompiling the system at each point (resistor tempco and device physics
// are temperature dependent). It returns one OpPoint per temperature along
// with the compiled system used (node indexing is identical across
// temperatures for a fixed circuit).
func TempSweep(ctx context.Context, ckt *netlist.Circuit, opt Options, temps []float64) ([]*mna.OpPoint, *mna.System, error) {
	orig := ckt.Temp
	defer func() { ckt.Temp = orig }()
	var ops []*mna.OpPoint
	var lastSys *mna.System
	for _, t := range temps {
		if err := acerr.Ctx(ctx); err != nil {
			return nil, nil, err
		}
		ckt.Temp = t
		sys, err := mna.Compile(ckt)
		if err != nil {
			return nil, nil, err
		}
		sim := &Sim{Sys: sys, Opt: opt}
		op, err := sim.OP(ctx)
		if err != nil {
			return nil, nil, fmt.Errorf("analysis: temp sweep at %g C: %w", t, err)
		}
		ops = append(ops, op)
		lastSys = sys
	}
	return ops, lastSys, nil
}
