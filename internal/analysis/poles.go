package analysis

import (
	"context"
	"fmt"
	"math"
	"math/cmplx"
	"sort"

	"acstab/internal/acerr"
	"acstab/internal/linalg"
	"acstab/internal/mna"
	"acstab/internal/netlist"
)

// Pole is one natural frequency of the linearized circuit.
type Pole struct {
	// S is the pole location in rad/s (complex frequency).
	S complex128
	// FreqHz is |S|/2π, the natural frequency in Hz.
	FreqHz float64
	// Zeta is the damping ratio -Re(S)/|S| (negative for RHP poles).
	Zeta float64
}

// Poles computes the natural frequencies of the circuit linearized at op —
// the generalized eigenvalues of the MNA pencil (G + sC)x = 0 — via
// shift-invert reduction to a standard eigenproblem:
//
//	M = (G + σC)⁻¹ C,   pole s = σ − 1/μ for each eigenvalue μ of M.
//
// Poles with |s| outside [2π·minHz, 2π·maxHz] are dropped (the pencil's
// infinite eigenvalues from resistive rows land at μ ≈ 0 and are filtered
// the same way). Exact pole locations are the validation ground truth for
// the stability-plot estimates, and the classic "pole-zero analysis" of
// Analog Artist.
//
// The dense reduction is O(n³): appropriate for the circuit sizes of this
// repository's workloads (hundreds of unknowns).
func (s *Sim) Poles(ctx context.Context, op *mna.OpPoint, minHz, maxHz float64) ([]Pole, error) {
	n := s.Sys.NumUnknowns()
	// Recover G and C from the AC stamp: A(ω) = G + jωC is linear in ω.
	g := linalg.NewCMatrix(n)
	s.Sys.StampAC(g, nil, 0, op)
	a1 := linalg.NewCMatrix(n)
	s.Sys.StampAC(a1, nil, 1, op)
	c := linalg.NewCMatrix(n)
	for i := range c.Data {
		c.Data[i] = (a1.Data[i] - g.Data[i]) / complex(0, 1)
	}

	// Shift: real positive, away from LHP poles, scaled to the band.
	sigma := 2 * math.Pi * math.Sqrt(math.Max(minHz, 1)*math.Max(maxHz, 1))
	var m *linalg.CMatrix
	var err error
	for attempt := 0; attempt < 4; attempt++ {
		m, err = shiftInvert(ctx, g, c, complex(sigma, 0))
		if err == nil {
			break
		}
		sigma *= 1.7183 // nudge off an unlucky pole
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: pole analysis: %w", err)
	}
	mu, err := linalg.Eigenvalues(m)
	if err != nil {
		return nil, fmt.Errorf("analysis: pole analysis: %w", err)
	}
	lo, hi := 2*math.Pi*minHz, 2*math.Pi*maxHz
	var out []Pole
	for _, u := range mu {
		if cmplx.Abs(u) < 1e-300 {
			continue // infinite eigenvalue of the pencil
		}
		p := complex(sigma, 0) - 1/u
		mag := cmplx.Abs(p)
		if mag < lo || mag > hi {
			continue
		}
		out = append(out, Pole{S: p, FreqHz: mag / (2 * math.Pi), Zeta: -real(p) / mag})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].FreqHz < out[b].FreqHz })
	return out, nil
}

// shiftInvert computes (G + σC)⁻¹ C column by column; a canceled ctx
// aborts between columns.
func shiftInvert(ctx context.Context, g, c *linalg.CMatrix, sigma complex128) (*linalg.CMatrix, error) {
	n := g.N
	b := linalg.NewCMatrix(n)
	for i := range b.Data {
		b.Data[i] = g.Data[i] + sigma*c.Data[i]
	}
	f, err := linalg.CFactor(b)
	if err != nil {
		return nil, err
	}
	m := linalg.NewCMatrix(n)
	col := make([]complex128, n)
	for j := 0; j < n; j++ {
		if err := acerr.Ctx(ctx); err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			col[i] = c.At(i, j)
		}
		x, err := f.Solve(col)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			m.Set(i, j, x[i])
		}
	}
	return m, nil
}

// ComplexPolePairs filters poles to one representative per conjugate pair
// with meaningful imaginary part (|Im| > tol*|s|), sorted by frequency.
func ComplexPolePairs(poles []Pole, tol float64) []Pole {
	if tol <= 0 {
		tol = 1e-6
	}
	var out []Pole
	for _, p := range poles {
		if imag(p.S) <= 0 {
			continue
		}
		if math.Abs(imag(p.S)) < tol*cmplx.Abs(p.S) {
			continue
		}
		out = append(out, p)
	}
	return out
}

// TransferZeros computes the finite zeros of the transfer function from
// an independent source's excitation to a node voltage: the values of s
// where the output nulls. They are the generalized eigenvalues of the
// augmented pencil
//
//	[ G + sC   b ] [x]   [0]
//	[ e_outᵀ   0 ] [k] = [0]
//
// (b is the source's excitation vector, e_out selects the observed node),
// solved with the same shift-invert + QR machinery as Poles. The paper's
// footnote 2 is about exactly these: a complex zero close to a complex
// pole suppresses the pole's stability-plot peak, so exact zero locations
// are the ground truth for interpreting positive peaks.
func (s *Sim) TransferZeros(ctx context.Context, op *mna.OpPoint, src, outNode string, minHz, maxHz float64) ([]Pole, error) {
	n := s.Sys.NumUnknowns()
	outIdx, ok := s.Sys.NodeOf(outNode)
	if !ok || outIdx < 0 {
		return nil, fmt.Errorf("analysis: cannot observe node %q", outNode)
	}
	// Excitation vector of the named source with unit AC drive.
	bvec, err := s.unitExcitation(src)
	if err != nil {
		return nil, err
	}

	g := linalg.NewCMatrix(n)
	s.Sys.StampAC(g, nil, 0, op)
	a1 := linalg.NewCMatrix(n)
	s.Sys.StampAC(a1, nil, 1, op)
	c := linalg.NewCMatrix(n)
	for i := range c.Data {
		c.Data[i] = (a1.Data[i] - g.Data[i]) / complex(0, 1)
	}

	// Augmented pencil of size n+1.
	m := n + 1
	ga := linalg.NewCMatrix(m)
	ca := linalg.NewCMatrix(m)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			ga.Set(i, j, g.At(i, j))
			ca.Set(i, j, c.At(i, j))
		}
		ga.Set(i, n, bvec[i])
	}
	ga.Set(n, outIdx, 1)

	sigma := 2 * math.Pi * math.Sqrt(math.Max(minHz, 1)*math.Max(maxHz, 1))
	var mm *linalg.CMatrix
	for attempt := 0; attempt < 4; attempt++ {
		mm, err = shiftInvert(ctx, ga, ca, complex(sigma, 0))
		if err == nil {
			break
		}
		sigma *= 1.7183
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: zero analysis: %w", err)
	}
	mu, err := linalg.Eigenvalues(mm)
	if err != nil {
		return nil, fmt.Errorf("analysis: zero analysis: %w", err)
	}
	lo, hi := 2*math.Pi*minHz, 2*math.Pi*maxHz
	var out []Pole
	for _, u := range mu {
		if cmplx.Abs(u) < 1e-300 {
			continue
		}
		z := complex(sigma, 0) - 1/u
		mag := cmplx.Abs(z)
		if mag < lo || mag > hi {
			continue
		}
		out = append(out, Pole{S: z, FreqHz: mag / (2 * math.Pi), Zeta: -real(z) / mag})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].FreqHz < out[b].FreqHz })
	return out, nil
}

// unitExcitation builds the AC RHS vector of the named independent source
// driven with unit magnitude and zero phase.
func (s *Sim) unitExcitation(src string) ([]complex128, error) {
	e := s.Sys.Ckt.Element(src)
	if e == nil {
		return nil, fmt.Errorf("analysis: no source %q", src)
	}
	n := s.Sys.NumUnknowns()
	b := make([]complex128, n)
	switch e.Type {
	case netlist.VSource:
		br, ok := s.Sys.BranchOf(src)
		if !ok {
			return nil, fmt.Errorf("analysis: %q has no branch", src)
		}
		b[br] = 1
	case netlist.ISource:
		ip, _ := s.Sys.NodeOf(e.Nodes[0])
		in, _ := s.Sys.NodeOf(e.Nodes[1])
		if ip >= 0 {
			b[ip] -= 1
		}
		if in >= 0 {
			b[in] += 1
		}
	default:
		return nil, fmt.Errorf("analysis: %q is not an independent source", src)
	}
	return b, nil
}
