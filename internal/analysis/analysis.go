// Package analysis implements the circuit analyses the tool depends on:
// DC operating point (Newton-Raphson with step damping, gmin stepping, and
// source stepping homotopies), DC and temperature sweeps, small-signal AC
// sweeps (with a shared-factorization multi-node fast path used by the
// all-nodes stability run), and transient simulation (trapezoidal or
// backward-Euler companion integration). It is the Spectre substitute the
// reproduction runs on.
package analysis

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"acstab/internal/acerr"
	"acstab/internal/linalg"
	"acstab/internal/mna"
	"acstab/internal/obs"
	"acstab/internal/sparse"
	"acstab/internal/wave"
)

// Solver counters. Increments happen at solve granularity (one atomic add
// per sweep or Newton solve, never per matrix entry), so the
// instrumentation cost is invisible next to a factorization.
var (
	mACFactorizations = obs.GetCounter("acstab_ac_factorizations_total")
	mACSolves         = obs.GetCounter("acstab_ac_solves_total")
	mNewtonIterations = obs.GetCounter("acstab_newton_iterations_total")
	mOPSolves         = obs.GetCounter("acstab_op_solves_total")
	// Two-phase sparse solver telemetry: how often the per-frequency hot
	// path got away with a pivot-free numeric refactorization, how often
	// the symbolic analysis was built versus reused across workers, and
	// how often the guards bounced a sweep back to a full factorization.
	mACRefactorizations  = obs.GetCounter("acstab_ac_refactorizations_total")
	mACSymbolicBuilds    = obs.GetCounter("acstab_ac_symbolic_builds_total")
	mACSymbolicReuses    = obs.GetCounter("acstab_ac_symbolic_reuses_total")
	mACRefactorFallbacks = obs.GetCounter("acstab_ac_refactor_fallbacks_total")
	mACPatternDrift      = obs.GetCounter("acstab_ac_pattern_drift_total")
	// Diagonal-extraction kernel telemetry: batched reach-restricted
	// Z_kk solves taken, rows those solves actually visited (compare
	// against 2·n·nodes·solves for the reach-restriction win), and
	// frequencies that had to fall back to full per-node substitutions
	// (dense mode is not a fallback — it never enters the kernel path).
	mACDiagSolves    = obs.GetCounter("acstab_ac_diag_solves_total")
	mACDiagRows      = obs.GetCounter("acstab_ac_diag_rows_visited_total")
	mACDiagFallbacks = obs.GetCounter("acstab_ac_diag_fallbacks_total")
	// Frequency-batched refactorization: blocks refilled through the
	// K-lane NumericBatch and the frequencies (lanes) those blocks carried.
	// lanes/blocks is the realized batch width — partial tail blocks and
	// serial fallbacks pull it below the configured K.
	mACBatchBlocks = obs.GetCounter("acstab_ac_batch_blocks_total")
	mACBatchLanes  = obs.GetCounter("acstab_ac_batch_lanes_total")
	// Numerical-health observatory: per-point scale-relative residuals and
	// pivot-growth factors land in log-scale histograms (the default obs
	// buckets are duration-oriented, so these carry explicit decade
	// bounds), refinement/breach volume in counters. All of it federates
	// exactly across the fleet — counters sum, histogram buckets merge.
	mACResidual         = obs.Default.HistogramBuckets("acstab_ac_residual", decadeBounds(-18, 0))
	mACPivotGrowth      = obs.Default.HistogramBuckets("acstab_ac_pivot_growth", decadeBounds(-2, 12))
	mACCondEst          = obs.Default.HistogramBuckets("acstab_ac_cond_estimate", decadeBounds(0, 18))
	mACRefinements      = obs.GetCounter("acstab_ac_refinements_total")
	mACResidualBreaches = obs.GetCounter("acstab_ac_residual_breaches_total")
)

// decadeBounds returns per-decade log-scale histogram upper bounds
// 10^lo .. 10^hi inclusive.
func decadeBounds(lo, hi int) []float64 {
	b := make([]float64, 0, hi-lo+1)
	for d := lo; d <= hi; d++ {
		b = append(b, math.Pow(10, float64(d)))
	}
	return b
}

// Numerics defaults: a healthy double-precision solve sits near 1e-15
// scale-relative, so a 1e-9 threshold (matching the CI accuracy gate and
// the solver property tests) never triggers refinement on a well-behaved
// sweep — the observatory is pure telemetry until something actually
// degrades. The diag-kernel probe stride keeps the full-solve residual
// probe under the <5% sweep-overhead budget.
const (
	defResidualThreshold  = 1e-9
	defResidualProbeEvery = 16
	defCondSamples        = 2
	// defFreqBatch is the default diag-sweep refill block width. Eight
	// lanes amortize the symbolic index-array streaming (the refill's
	// memory traffic is dominated by lptr/lsrc/uptr/ucol, read once per
	// block instead of once per frequency) without outgrowing L2 on the
	// value arrays; maxFreqBatch caps explicit requests before the SoA
	// block stops fitting cache and the win inverts.
	defFreqBatch = 8
	maxFreqBatch = 32
)

// Options tunes the solvers.
type Options struct {
	AbsTol  float64 // branch-current tolerance (A)
	VnTol   float64 // node-voltage tolerance (V)
	RelTol  float64 // relative tolerance
	Gmin    float64 // junction shunt conductance
	MaxIter int     // Newton iteration limit per solve
	// MaxStepV damps Newton: no node voltage moves more than this per
	// iteration.
	MaxStepV float64
	// Matrix selects the linear solver for AC sweeps: auto (0), dense (1),
	// sparse (2). DC always uses the dense solver (systems are re-assembled
	// each Newton iteration and stay small in this repo's workloads).
	Matrix MatrixMode
	// SparseThreshold is the system size above which auto mode picks the
	// sparse solver.
	SparseThreshold int
	// ResidualThreshold is the scale-relative backward-error level
	// ‖A·x−b‖∞/(‖A‖∞‖x‖∞+‖b‖∞) above which a frequency point triggers the
	// refinement escalation ladder. 0 selects the built-in default (1e-9);
	// a negative value disables the numerical-health observatory entirely
	// (no residual SpMV, no refinement, no telemetry).
	ResidualThreshold float64
	// ResidualProbeEvery is the diag-kernel probe stride: every Nth
	// frequency point of a diagonal-only sweep runs one full solve so its
	// residual can be measured (the batched kernel produces only Z_kk and
	// has no full solution vector to verify). 0 selects the default (16);
	// negative disables probing.
	ResidualProbeEvery int
	// CondSamples is how many Hager/Higham 1-norm condition estimates to
	// take per sweep, evenly spaced. 0 selects the default (2); negative
	// disables condition sampling.
	CondSamples int
	// FreqBatch is the number of frequency points whose sparse
	// refactorizations are refilled together in one pass over the frozen
	// elimination pattern (diagonal sweeps only). Per lane the batched
	// refill is bitwise identical to the serial one, so this is a pure
	// throughput knob. 0 selects the default (8); 1 or any negative value
	// forces the serial per-frequency path; values above 32 are clamped.
	FreqBatch int
}

// MatrixMode selects the AC linear solver.
type MatrixMode int

// Matrix modes.
const (
	MatrixAuto MatrixMode = iota
	MatrixDense
	MatrixSparse
)

// DefaultOptions returns the solver defaults documented in DESIGN.md.
func DefaultOptions() Options {
	return Options{
		AbsTol:          1e-12,
		VnTol:           1e-9,
		RelTol:          1e-6,
		Gmin:            1e-12,
		MaxIter:         200,
		MaxStepV:        1.0,
		SparseThreshold: 64,
	}
}

// Sim couples a compiled system with solver options.
type Sim struct {
	Sys *mna.System
	Opt Options
	// Trace, when non-nil, accumulates solver counters (factorizations,
	// solves, Newton iterations) for the run-level trace in addition to
	// the process-wide obs registry.
	Trace *obs.Run

	// ac caches the AC matrix's stamp pattern and symbolic factorization
	// analysis, which depend only on the compiled system's structure and
	// so are computed once per Sim and shared read-only by every Fork.
	ac     *acShared
	acInit sync.Once

	// ws caches this Sim's numeric workspaces (Numeric, Vals, the K-lane
	// batch) across sweep calls: an adaptive run issues many small
	// refinement sweeps on the same Sim, and reallocating the lane-strided
	// batch arrays per call would put megabytes per run back on the
	// garbage collector. The busy flag hands the workspace to at most one
	// concurrent sweep; others allocate privately. Forks start empty.
	ws     *acWorkspace
	wsBusy atomic.Bool
}

// acWorkspace is the reusable per-Sim numeric state of the sparse AC
// path. Everything in it is rebuilt when the symbolic analysis changes.
type acWorkspace struct {
	sym   *sparse.Symbolic
	num   *sparse.Numeric
	vals  *sparse.Vals
	nb    *sparse.NumericBatch
	bvals []*sparse.Vals
	lane  [][]complex128 // bvals[j].Values(), cached
	diagB []complex128
}

// acquireWorkspace hands out the Sim's cached workspace for one sweep
// (release via releaseWorkspace), rebuilding it if the symbolic analysis
// moved. Returns nil when another sweep on this Sim holds it.
func (s *Sim) acquireWorkspace(pat *sparse.Pattern, sym *sparse.Symbolic) *acWorkspace {
	if !s.wsBusy.CompareAndSwap(false, true) {
		return nil
	}
	if s.ws == nil || s.ws.sym != sym {
		s.ws = &acWorkspace{sym: sym, num: sym.NewNumeric(), vals: pat.NewVals()}
	}
	return s.ws
}

func (s *Sim) releaseWorkspace() {
	s.wsBusy.Store(false)
}

// New returns a simulator over the compiled system with default options.
func New(sys *mna.System) *Sim {
	return &Sim{Sys: sys, Opt: DefaultOptions()}
}

// Fork returns a Sim sharing the compiled system, options, trace, and the
// cached AC symbolic analysis, for concurrent sweep workers: the shared
// pieces are read-only or internally locked, while per-worker numeric
// workspaces stay private to each ImpedanceMatrixColumns/AC call.
func (s *Sim) Fork() *Sim {
	return &Sim{Sys: s.Sys, Opt: s.Opt, Trace: s.Trace, ac: s.acShared()}
}

// acShared returns the lazily created shared AC solver cache.
func (s *Sim) acShared() *acShared {
	s.acInit.Do(func() {
		if s.ac == nil {
			s.ac = &acShared{}
		}
	})
	return s.ac
}

// acShared holds the per-system symbolic state of the two-phase sparse AC
// solver: the frozen stamp pattern and the pivot-order/fill analysis. One
// instance is shared by all workers of a sweep; the mutex only guards the
// build-once handoff, after which both pointers are immutable.
type acShared struct {
	mu  sync.Mutex
	pat *sparse.Pattern
	sym *sparse.Symbolic

	// Cached diagonal-extraction plans: the reach sets depend only on the
	// symbolic analysis and the injection node list, so one build serves
	// every worker and every frequency of an all-nodes sweep. The cache
	// holds several entries because an adaptive sweep alternates between
	// the full node list (coarse pass) and per-group subsets (refinement
	// rounds); diagSym records which symbolic the plans were derived from
	// (a drift-triggered rebuild must not reuse stale plans).
	diagSym   *sparse.Symbolic
	diagPlans []diagPlanEntry
}

// diagPlanEntry is one cached (node list -> reach plan) binding.
type diagPlanEntry struct {
	nodes []int
	plan  *sparse.DiagPlan
}

// maxDiagPlans bounds the plan cache; an adaptive run cycles through at
// most a few dozen distinct refinement groups, so evictions are rare.
const maxDiagPlans = 64

// invalidate drops the cached analysis after pattern drift so the next
// sweep rebuilds from the current stamp structure.
func (sh *acShared) invalidate() {
	sh.mu.Lock()
	sh.pat, sh.sym = nil, nil
	sh.diagSym, sh.diagPlans = nil, nil
	sh.mu.Unlock()
}

// ensureDiagPlan returns the shared reach-set plan for the given symbolic
// analysis and injection nodes, building it on first use. Workers forked
// from one Sim hit the cache; a different node list or a rebuilt symbolic
// replaces it.
func (sh *acShared) ensureDiagPlan(sym *sparse.Symbolic, nodes []int) (*sparse.DiagPlan, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.diagSym != sym {
		sh.diagSym, sh.diagPlans = sym, sh.diagPlans[:0]
	}
	for i := range sh.diagPlans {
		if equalInts(sh.diagPlans[i].nodes, nodes) {
			return sh.diagPlans[i].plan, nil
		}
	}
	plan, err := sym.DiagPlan(nodes)
	if err != nil {
		return nil, err
	}
	if len(sh.diagPlans) >= maxDiagPlans {
		sh.diagPlans = sh.diagPlans[:0]
	}
	sh.diagPlans = append(sh.diagPlans, diagPlanEntry{
		nodes: append([]int(nil), nodes...),
		plan:  plan,
	})
	return plan, nil
}

// ACChecksum returns the structural checksum of the cached AC stamp
// pattern and whether the symbolic analysis is currently warm. It reports
// (0, false) before the first sparse sweep builds the symbolic state and
// again after pattern drift invalidates it. The farm's compiled-system
// cache compares this fingerprint across requests: a warm entry whose
// checksum moved is not the circuit it was cached as and must be
// recompiled from source.
func (s *Sim) ACChecksum() (uint64, bool) {
	sh := s.acShared()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.pat == nil || sh.sym == nil {
		return 0, false
	}
	return sh.pat.Checksum(), true
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ensureSymbolic returns the shared pattern and symbolic analysis,
// building them on first use from one stamped frequency point (omega, op
// supply the numeric values the pivot-order search runs on).
func (s *Sim) ensureSymbolic(omega float64, op *mna.OpPoint) (*sparse.Pattern, *sparse.Symbolic, error) {
	sh := s.acShared()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.sym != nil {
		mACSymbolicReuses.Inc()
		s.Trace.Add("ac_symbolic_reuses", 1)
		return sh.pat, sh.sym, nil
	}
	rec := sparse.NewRecorder(s.Sys.NumUnknowns())
	s.Sys.StampAC(rec, nil, omega, op)
	pat := rec.Compile()
	vals := pat.NewVals()
	vals.Begin()
	s.Sys.StampAC(vals, nil, omega, op)
	if vals.Drift() {
		// Two back-to-back stamps disagreeing structurally means the
		// stamping is not deterministic; the two-phase path cannot be used.
		mACPatternDrift.Inc()
		return nil, nil, fmt.Errorf("analysis: non-deterministic AC stamp pattern")
	}
	sym, err := pat.Analyze(vals.Values())
	if err != nil {
		return nil, nil, err
	}
	sh.pat, sh.sym = pat, sym
	mACSymbolicBuilds.Inc()
	mACFactorizations.Inc() // the analysis pass is a full factorization
	s.Trace.Add("ac_symbolic_builds", 1)
	s.Trace.Add("ac_factorizations", 1)
	return pat, sym, nil
}

// ErrNoConvergence is returned when every DC homotopy fails. It is the
// same sentinel the public package exposes as acstab.ErrNoConvergence.
var ErrNoConvergence = acerr.ErrNoConvergence

// assembleFn stamps the companion system at candidate x.
type assembleFn func(a mna.RealAdder, b []float64, x []float64)

// newton runs damped Newton iteration with the given assembler, starting
// from x0. It returns the converged solution. A canceled ctx aborts
// between iterations — one assemble+factor+solve at most after the
// cancellation lands.
func (s *Sim) newton(ctx context.Context, assemble assembleFn, x0 []float64) ([]float64, error) {
	n := s.Sys.NumUnknowns()
	nn := s.Sys.NumNodes()
	x := append([]float64(nil), x0...)
	a := linalg.NewMatrix(n)
	b := make([]float64, n)
	iters := 0
	defer func() {
		mNewtonIterations.Add(int64(iters))
		s.Trace.Add("newton_iterations", int64(iters))
	}()
	for iter := 0; iter < s.Opt.MaxIter; iter++ {
		if err := acerr.Ctx(ctx); err != nil {
			return nil, err
		}
		iters++
		a.Zero()
		for i := range b {
			b[i] = 0
		}
		assemble(a, b, x)
		f, err := linalg.Factor(a)
		if err != nil {
			return nil, fmt.Errorf("analysis: singular matrix during Newton: %w", err)
		}
		xn, err := f.Solve(b)
		if err != nil {
			return nil, err
		}
		// Damping: bound the largest node-voltage step.
		maxdv := 0.0
		for i := 0; i < nn; i++ {
			if dv := math.Abs(xn[i] - x[i]); dv > maxdv {
				maxdv = dv
			}
		}
		if s.Opt.MaxStepV > 0 && maxdv > s.Opt.MaxStepV {
			k := s.Opt.MaxStepV / maxdv
			for i := range xn {
				xn[i] = x[i] + k*(xn[i]-x[i])
			}
		}
		converged := true
		for i := range xn {
			tol := s.Opt.AbsTol
			if i < nn {
				tol = s.Opt.VnTol
			}
			lim := tol + s.Opt.RelTol*math.Max(math.Abs(xn[i]), math.Abs(x[i]))
			if math.Abs(xn[i]-x[i]) > lim {
				converged = false
				break
			}
		}
		x = xn
		if converged {
			return x, nil
		}
	}
	return nil, ErrNoConvergence
}

// OP computes the DC operating point. On plain-Newton failure it falls
// back to gmin stepping and then source stepping. A canceled ctx aborts
// the Newton loops between iterations with an error wrapping
// acerr.ErrCanceled.
func (s *Sim) OP(ctx context.Context) (*mna.OpPoint, error) {
	mOPSolves.Inc()
	s.Trace.Add("op_solves", 1)
	// Initial guess: zeros, overridden by any .nodeset hints.
	zero := make([]float64, s.Sys.NumUnknowns())
	for node, v := range s.Sys.Ckt.NodeSet {
		if idx, ok := s.Sys.NodeOf(node); ok && idx >= 0 {
			zero[idx] = v
		}
	}
	stamp := func(gshunt, srcScale float64) assembleFn {
		return func(a mna.RealAdder, b []float64, x []float64) {
			s.Sys.StampDC(a, b, x, mna.DCOptions{
				Gmin:         s.Opt.Gmin,
				SrcScale:     srcScale,
				GminToGround: gshunt,
			})
		}
	}
	// Plain Newton.
	if x, err := s.newton(ctx, stamp(0, 1), zero); err == nil {
		return s.Sys.Linearize(x, s.Opt.Gmin), nil
	} else if cerr := acerr.Ctx(ctx); cerr != nil {
		// Cancellation must not cascade into the homotopies.
		return nil, cerr
	}
	// Gmin stepping: heavy shunt first, relax, warm start each stage.
	x := zero
	ok := true
	for g := 1e-2; g >= 1e-13; g /= 10 {
		xn, err := s.newton(ctx, stamp(g, 1), x)
		if err != nil {
			ok = false
			break
		}
		x = xn
	}
	if cerr := acerr.Ctx(ctx); cerr != nil {
		return nil, cerr
	}
	if ok {
		if xn, err := s.newton(ctx, stamp(0, 1), x); err == nil {
			return s.Sys.Linearize(xn, s.Opt.Gmin), nil
		}
	}
	// Source stepping.
	x = zero
	for scale := 0.05; ; scale += 0.05 {
		if scale > 1 {
			scale = 1
		}
		xn, err := s.newton(ctx, stamp(0, scale), x)
		if err != nil {
			if cerr := acerr.Ctx(ctx); cerr != nil {
				return nil, cerr
			}
			return nil, fmt.Errorf("%w (source stepping failed at scale %.2f)", ErrNoConvergence, scale)
		}
		x = xn
		if scale == 1 {
			return s.Sys.Linearize(x, s.Opt.Gmin), nil
		}
	}
}

// NodeVoltage reads a node voltage from an operating point.
func (s *Sim) NodeVoltage(op *mna.OpPoint, node string) (float64, error) {
	idx, ok := s.Sys.NodeOf(node)
	if !ok {
		return 0, fmt.Errorf("analysis: %w %q", acerr.ErrUnknownNode, node)
	}
	if idx < 0 {
		return 0, nil
	}
	return op.X[idx], nil
}

// SourceCurrent reads the branch current of a voltage-defined element.
func (s *Sim) SourceCurrent(op *mna.OpPoint, elem string) (float64, error) {
	br, ok := s.Sys.BranchOf(elem)
	if !ok {
		return 0, fmt.Errorf("analysis: element %q has no branch current", elem)
	}
	return op.X[br], nil
}

// complexSolverFor builds the AC matrix+solver pair sized for the system.
func (s *Sim) useSparse() bool {
	switch s.Opt.Matrix {
	case MatrixDense:
		return false
	case MatrixSparse:
		return true
	default:
		return s.Sys.NumUnknowns() > s.Opt.SparseThreshold
	}
}

// ACResult holds an AC sweep: per-frequency solution vectors.
type ACResult struct {
	sys   *mna.System
	Freqs []float64
	// Sol[k] is the MNA solution vector at Freqs[k].
	Sol [][]complex128
}

// NodeWave returns the complex node voltage across frequency.
func (r *ACResult) NodeWave(node string) (*wave.Wave, error) {
	idx, ok := r.sys.NodeOf(node)
	if !ok {
		return nil, fmt.Errorf("analysis: %w %q", acerr.ErrUnknownNode, node)
	}
	y := make([]complex128, len(r.Freqs))
	for k := range r.Freqs {
		if idx >= 0 {
			y[k] = r.Sol[k][idx]
		}
	}
	w := wave.New("v("+node+")", append([]float64(nil), r.Freqs...), y)
	w.XUnit = "Hz"
	w.YUnit = "V"
	w.LogX = true
	return w, nil
}

// BranchWave returns the complex branch current of a voltage-defined
// element across frequency.
func (r *ACResult) BranchWave(elem string) (*wave.Wave, error) {
	br, ok := r.sys.BranchOf(elem)
	if !ok {
		return nil, fmt.Errorf("analysis: element %q has no branch current", elem)
	}
	y := make([]complex128, len(r.Freqs))
	for k := range r.Freqs {
		y[k] = r.Sol[k][br]
	}
	w := wave.New("i("+elem+")", append([]float64(nil), r.Freqs...), y)
	w.XUnit = "Hz"
	w.YUnit = "A"
	w.LogX = true
	return w, nil
}

// cSolver is a ready factorization of one frequency point's AC matrix.
// All implementations (sparse.Numeric, sparse.LU, linalg.CLU) solve into
// caller-owned storage without allocating.
type cSolver interface {
	SolveInto(x, b []complex128) error
}

// acFactorizer produces a ready-to-solve factorization of the AC system
// at each frequency of a sweep. In sparse mode it reuses the Sim-shared
// symbolic analysis and owns the per-worker numeric workspaces, so the
// steady-state factorize+solve cycle is pivot-free, map-free, and
// allocation-free; the structural-checksum and collapsed-pivot guards
// fall back to a full map-based factorization for the offending
// frequency. In dense mode the factorization storage is reused across
// frequencies. Counter deltas accumulate locally and are published by
// flush (deferred by the callers), keeping atomics off the inner loop.
type acFactorizer struct {
	s      *Sim
	op     *mna.OpPoint
	sparse bool

	// Sparse two-phase path. curVals aliases the stamped CSR values the
	// current refactor-path factorization was built from (fz.vals for the
	// serial path, one batch lane for extracted probes) — the residual and
	// condition estimators must read the matrix that was actually factored.
	pat     *sparse.Pattern
	sym     *sparse.Symbolic
	num     *sparse.Numeric
	vals    *sparse.Vals
	curVals []complex128
	smat    *sparse.Matrix // full-factorization fallback matrix, lazy

	// Frequency-batched refill state (ImpedanceDiagSweep only), built by
	// ensureBatch: the K-lane numeric workspace, one stamped Vals per lane
	// with its value slice cached, and the lane-strided diagonal output.
	nb    *sparse.NumericBatch
	bvals []*sparse.Vals
	lane  [][]complex128
	diagB []complex128

	// ws is the Sim-cached workspace backing num/vals/nb when this sweep
	// won the CAS handoff; flush releases it. Nil when another sweep held
	// it and this factorizer allocated privately.
	ws *acWorkspace

	// Dense path.
	dm  *linalg.CMatrix
	clu *linalg.CLU

	// Numerical-health observatory state (per sweep). resThreshold <= 0
	// disables the whole residual path (no extra SpMV, no scratch); rmat
	// is the pre-Factor clone of the fallback matrix (Factor consumes its
	// argument, so the residual needs its own copy of the stamped values).
	resThreshold float64
	probeEvery   int
	condSamples  int
	condBudget   int
	rmat         *sparse.Matrix
	r, d         []complex128 // residual + refinement-correction scratch, lazy
	cv, cz       []complex128 // condition-estimate scratch, lazy

	refactors int64
	fulls     int64
	solves    int64

	// Numerics tallies, flushed with the counters: refinement steps taken,
	// threshold breaches, points measured, the per-decade residual digest
	// (decades obs.ResidualDecadeMin..Max), sweep maxima, and the
	// worst-residual health points for slow-point capture.
	refines    int64
	breaches   int64
	resPoints  int64
	resDecades [obs.ResidualDecadeMax - obs.ResidualDecadeMin + 1]int64
	resMax     float64
	growthMax  float64
	condMax    float64
	health     []obs.SlowPoint

	// Diagonal-kernel tallies (ImpedanceDiagSweep only): batched
	// SolveDiagInto calls, rows those calls visited, and frequencies
	// bounced to full per-node substitutions.
	diagSolves    int64
	diagRows      int64
	diagFallbacks int64

	// Frequency-batch tallies: refill blocks executed and lanes they
	// carried (lanes/blocks = achieved mean batch width).
	batchBlocks int64
	batchLanes  int64

	// kind names the solver path the most recent at() call took, the
	// slow-point context tag: "dense", "refactor" (pivot-free numeric
	// refill), "full" (map-based factorization), "refactor_fallback" (the
	// refill hit a collapsed pivot and this point fell back to a full
	// factorization), or "pattern_drift" (the frozen pattern was
	// invalidated mid-sweep).
	kind string
}

// Solver-path tags reported in slow-point captures.
const (
	solveKindDense            = "dense"
	solveKindRefactor         = "refactor"
	solveKindFull             = "full"
	solveKindRefactorFallback = "refactor_fallback"
	solveKindPatternDrift     = "pattern_drift"
	// solveKindDiag tags frequency points whose Z_kk values came from the
	// reach-restricted batched diagonal kernel rather than full
	// substitutions.
	solveKindDiag = "diag"
	// solveKindResidualEscalation tags points where a residual breach
	// escalated past in-place refinement to a fresh full factorization.
	solveKindResidualEscalation = "residual_escalation"
)

// newACFactorizer prepares the per-sweep solver state. A failed symbolic
// build is not fatal: the sweep degrades to one full factorization per
// frequency (the pre-split behavior) and each point reports its own error.
func (s *Sim) newACFactorizer(omega0 float64, op *mna.OpPoint) *acFactorizer {
	fz := &acFactorizer{s: s, op: op, sparse: s.useSparse()}
	switch {
	case s.Opt.ResidualThreshold > 0:
		fz.resThreshold = s.Opt.ResidualThreshold
	case s.Opt.ResidualThreshold == 0:
		fz.resThreshold = defResidualThreshold
	}
	if fz.resThreshold > 0 {
		switch {
		case s.Opt.ResidualProbeEvery > 0:
			fz.probeEvery = s.Opt.ResidualProbeEvery
		case s.Opt.ResidualProbeEvery == 0:
			fz.probeEvery = defResidualProbeEvery
		}
		switch {
		case s.Opt.CondSamples > 0:
			fz.condSamples = s.Opt.CondSamples
		case s.Opt.CondSamples == 0:
			fz.condSamples = defCondSamples
		}
		fz.condBudget = fz.condSamples
		fz.health = make([]obs.SlowPoint, 0, obs.MaxHealthPoints)
	}
	if fz.sparse {
		if pat, sym, err := s.ensureSymbolic(omega0, op); err == nil {
			fz.pat, fz.sym = pat, sym
			if ws := s.acquireWorkspace(pat, sym); ws != nil {
				fz.ws = ws
				fz.num, fz.vals = ws.num, ws.vals
			} else {
				fz.num = sym.NewNumeric()
				fz.vals = pat.NewVals()
			}
		}
	} else {
		fz.dm = linalg.NewCMatrix(s.Sys.NumUnknowns())
	}
	return fz
}

// at stamps and factors the AC system at omega, returning a solver valid
// until the next call. When b is non-nil it is stamped with the RHS
// excitation; the caller must pass it zeroed.
func (fz *acFactorizer) at(omega float64, b []complex128) (cSolver, error) {
	s := fz.s
	if !fz.sparse {
		fz.dm.Zero()
		s.Sys.StampAC(fz.dm, b, omega, fz.op)
		clu, err := linalg.CFactorInto(fz.clu, fz.dm)
		fz.clu = clu
		if err != nil {
			return nil, err
		}
		fz.fulls++
		fz.kind = solveKindDense
		return clu, nil
	}
	fz.kind = solveKindFull
	if fz.sym != nil {
		fz.vals.Begin()
		s.Sys.StampAC(fz.vals, b, omega, fz.op)
		if fz.vals.Drift() {
			// The stamp structure changed under the cached pattern: drop
			// the cache for future sweeps and run out this one on full
			// factorizations.
			mACPatternDrift.Inc()
			s.Trace.Add("ac_pattern_drift", 1)
			s.acShared().invalidate()
			fz.sym = nil
			fz.kind = solveKindPatternDrift
		} else if err := fz.num.Refactor(fz.vals.Values()); err == nil {
			fz.refactors++
			fz.kind = solveKindRefactor
			fz.curVals = fz.vals.Values()
			if fz.resThreshold > 0 {
				g := fz.num.PivotGrowth()
				mACPivotGrowth.Observe(g)
				if g > fz.growthMax {
					fz.growthMax = g
				}
			}
			return fz.num, nil
		} else {
			// Collapsed pivot under the frozen order; retry this single
			// frequency with a fresh pivot search.
			mACRefactorFallbacks.Inc()
			s.Trace.Add("ac_refactor_fallbacks", 1)
			fz.kind = solveKindRefactorFallback
		}
	}
	return fz.fullAt(omega, b)
}

// fullAt stamps the AC system into the map-based fallback matrix and runs
// a full factorization with a fresh pivot search — the path taken when the
// two-phase guards bounce a point and when the residual ladder escalates
// past refinement. When b is non-nil it is re-zeroed and stamped with the
// RHS excitation (the refactor attempt may already have stamped it). With
// the observatory on, the stamped matrix is cloned before sparse.Factor
// consumes it so the point's residual remains computable.
func (fz *acFactorizer) fullAt(omega float64, b []complex128) (cSolver, error) {
	s := fz.s
	if fz.smat == nil {
		fz.smat = sparse.New(s.Sys.NumUnknowns())
	} else {
		fz.smat.Zero()
	}
	if b != nil {
		for i := range b {
			b[i] = 0
		}
	}
	s.Sys.StampAC(fz.smat, b, omega, fz.op)
	if fz.resThreshold > 0 {
		fz.rmat = fz.smat.Clone()
	}
	lu, err := sparse.Factor(fz.smat)
	if err != nil {
		return nil, err
	}
	fz.fulls++
	return lu, nil
}

// pointResidual computes the scale-relative backward error of the solve
// (x, b) the current solver path just produced, leaving the residual
// vector in fz.r for a possible refinement step. ok reports whether a
// matrix snapshot was available for the path (the full-factor fallback
// only keeps one when the observatory is on).
func (fz *acFactorizer) pointResidual(x, b []complex128) (eta float64, ok bool) {
	if fz.r == nil {
		n := fz.s.Sys.NumUnknowns()
		fz.r = make([]complex128, n)
		fz.d = make([]complex128, n)
	}
	var err error
	switch {
	case fz.kind == solveKindDense:
		eta, err = fz.dm.ResidualInf(x, b, fz.r)
	case fz.kind == solveKindRefactor:
		eta, err = fz.pat.ResidualInf(fz.curVals, x, b, fz.r)
	case fz.rmat != nil:
		eta, err = fz.rmat.ResidualInf(x, b, fz.r)
	default:
		return 0, false
	}
	return eta, err == nil
}

// verify runs the residual check and refinement-escalation ladder on one
// representative solve of the current frequency point: slv·x = b with b
// still holding the right-hand side it was solved against. On a breach it
// (1) refines x once reusing the existing factorization, (2) escalates to
// a fresh full factorization plus one more refinement (refactor path
// only; restampRHS selects whether b is re-stamped as the circuit's AC
// excitation or preserved as a caller-managed injection vector), and
// (3) reports an error wrapping acerr.ErrAccuracy if even that leaves the
// residual above threshold. The returned solver is the one that produced
// the final x; callers reuse it for the remaining right-hand sides of the
// same frequency. The point's final residual is recorded either way.
func (fz *acFactorizer) verify(slv cSolver, omega, freqHz float64, x, b []complex128, restampRHS bool) (cSolver, error) {
	if fz.resThreshold <= 0 {
		return slv, nil
	}
	eta, ok := fz.pointResidual(x, b)
	if !ok {
		return slv, nil
	}
	if eta > fz.resThreshold {
		fz.breaches++
		// Step 1: one refinement with the existing factorization (fz.r
		// already holds the residual from pointResidual).
		if err := slv.SolveInto(fz.d, fz.r); err == nil {
			for i := range x {
				x[i] += fz.d[i]
			}
			fz.refines++
			if e, ok := fz.pointResidual(x, b); ok {
				eta = e
			}
		}
		// Step 2: a fresh full factorization with its own pivot search,
		// then refine once more on it. Only the refactor path escalates —
		// the other sparse paths already came from a full factorization
		// and the dense factorization is as good as dense gets.
		if eta > fz.resThreshold && fz.kind == solveKindRefactor {
			var rb []complex128
			if restampRHS {
				rb = b
			}
			if lu, err := fz.fullAt(omega, rb); err == nil {
				fz.kind = solveKindResidualEscalation
				slv = lu
				if err := slv.SolveInto(x, b); err == nil {
					if e, ok := fz.pointResidual(x, b); ok {
						eta = e
					}
					if eta > fz.resThreshold {
						if err := slv.SolveInto(fz.d, fz.r); err == nil {
							for i := range x {
								x[i] += fz.d[i]
							}
							fz.refines++
							if e, ok := fz.pointResidual(x, b); ok {
								eta = e
							}
						}
					}
				}
			}
		}
		if eta > fz.resThreshold {
			fz.observeResidual(eta, freqHz)
			return slv, fmt.Errorf("analysis: residual %.2e above threshold %.2e at %g Hz after refinement and refactorization: %w",
				eta, fz.resThreshold, freqHz, acerr.ErrAccuracy)
		}
	}
	fz.observeResidual(eta, freqHz)
	return slv, nil
}

// observeResidual records one point's final backward error: histogram,
// per-decade digest, sweep max, and the worst-residual health capture.
func (fz *acFactorizer) observeResidual(eta, freqHz float64) {
	fz.resPoints++
	mACResidual.Observe(eta)
	if eta > fz.resMax {
		fz.resMax = eta
	}
	d := obs.ResidualDecadeMin
	switch {
	case math.IsInf(eta, 1):
		d = obs.ResidualDecadeMax
	case eta > 0:
		if l := int(math.Floor(math.Log10(eta))); l > d {
			d = l
		}
		if d > obs.ResidualDecadeMax {
			d = obs.ResidualDecadeMax
		}
	}
	fz.resDecades[d-obs.ResidualDecadeMin]++
	if eta <= 0 {
		return
	}
	// Keep the worst obs.MaxHealthPoints by residual.
	p := obs.SlowPoint{FreqHz: freqHz, Detail: "residual", Residual: eta}
	if len(fz.health) < cap(fz.health) {
		fz.health = append(fz.health, p)
		return
	}
	mi := 0
	for i := 1; i < len(fz.health); i++ {
		if fz.health[i].Residual < fz.health[mi].Residual {
			mi = i
		}
	}
	if len(fz.health) > 0 && eta > fz.health[mi].Residual {
		fz.health[mi] = p
	}
}

// condSampleDue reports whether sweep point k of n is one of the
// condSamples evenly spaced condition-estimate sites and budget remains.
// Split from condSampleAt so the batched sweep can decide *before* paying
// for a lane extraction.
func (fz *acFactorizer) condSampleDue(k, n int) bool {
	if fz.condBudget <= 0 || fz.condSamples <= 0 {
		return false
	}
	stride := n / fz.condSamples
	if stride < 1 {
		stride = 1
	}
	return k%stride == 0
}

// condSampleAt takes one Hager/Higham 1-norm condition estimate when k is
// one of condSamples evenly spaced points of an n-point sweep. Estimates
// need the refactor-path factorization (the CSR values feed ‖A‖₁ and the
// conjugate-transpose solve walks the frozen fill pattern).
func (fz *acFactorizer) condSampleAt(k, n int) {
	if fz.kind != solveKindRefactor || fz.num == nil || !fz.condSampleDue(k, n) {
		return
	}
	fz.condSample()
}

// condSample runs one estimate against the current refactor-path
// factorization (fz.num over fz.curVals); callers have already gated on
// condSampleDue and the solver path.
func (fz *acFactorizer) condSample() {
	fz.condBudget--
	if fz.cv == nil {
		nn := fz.s.Sys.NumUnknowns()
		fz.cv = make([]complex128, nn)
		fz.cz = make([]complex128, nn)
	}
	est, err := fz.num.CondEst1(fz.curVals, fz.cv, fz.cz)
	if err != nil || est <= 0 {
		return
	}
	mACCondEst.Observe(est)
	if est > fz.condMax {
		fz.condMax = est
	}
}

// slowTracker keeps a sweep's worst-K frequency points by factor+solve
// wall time, tagged with the solver path each point took, so "why was this
// sweep slow" is answerable from the run trace alone. It is only allocated
// when the Sim carries a trace — an untraced sweep pays nothing, not even
// the clock reads. K is obs.MaxSlowPoints (8); workers flush their local
// worst-K into the shared run, which keeps the global worst-K.
type slowTracker struct {
	pts []obs.SlowPoint
	min int64 // smallest wall time held once the tracker is full
}

// newSlowTracker returns a tracker when r collects traces, else nil (the
// nil tracker disables capture in the sweep loops).
func newSlowTracker(r *obs.Run) *slowTracker {
	if r == nil {
		return nil
	}
	return &slowTracker{pts: make([]obs.SlowPoint, 0, obs.MaxSlowPoints)}
}

// note records one frequency point's factor+solve wall time.
func (st *slowTracker) note(freqHz float64, wall time.Duration, kind string) {
	w := wall.Nanoseconds()
	if len(st.pts) < obs.MaxSlowPoints {
		st.pts = append(st.pts, obs.SlowPoint{FreqHz: freqHz, WallNS: w, Detail: kind})
		if len(st.pts) == obs.MaxSlowPoints {
			st.refreshMin()
		}
		return
	}
	if w <= st.min {
		return
	}
	for i := range st.pts {
		if st.pts[i].WallNS == st.min {
			st.pts[i] = obs.SlowPoint{FreqHz: freqHz, WallNS: w, Detail: kind}
			break
		}
	}
	st.refreshMin()
}

func (st *slowTracker) refreshMin() {
	st.min = st.pts[0].WallNS
	for _, p := range st.pts[1:] {
		if p.WallNS < st.min {
			st.min = p.WallNS
		}
	}
}

// flush hands the captured points to the run trace (nil-tracker safe, so
// callers can defer it unconditionally).
func (st *slowTracker) flush(r *obs.Run) {
	if st == nil {
		return
	}
	r.AddSlowPoints(st.pts)
	st.pts = st.pts[:0]
	st.min = 0
}

// flush publishes the accumulated counter deltas.
func (fz *acFactorizer) flush() {
	mACFactorizations.Add(fz.fulls)
	mACRefactorizations.Add(fz.refactors)
	mACSolves.Add(fz.solves)
	fz.s.Trace.Add("ac_factorizations", fz.fulls)
	fz.s.Trace.Add("ac_refactorizations", fz.refactors)
	fz.s.Trace.Add("ac_solves", fz.solves)
	if fz.diagSolves != 0 || fz.diagRows != 0 || fz.diagFallbacks != 0 {
		mACDiagSolves.Add(fz.diagSolves)
		mACDiagRows.Add(fz.diagRows)
		mACDiagFallbacks.Add(fz.diagFallbacks)
		fz.s.Trace.Add("ac_diag_solves", fz.diagSolves)
		fz.s.Trace.Add("ac_diag_rows_visited", fz.diagRows)
		fz.s.Trace.Add("ac_diag_fallbacks", fz.diagFallbacks)
	}
	if fz.batchBlocks != 0 {
		mACBatchBlocks.Add(fz.batchBlocks)
		mACBatchLanes.Add(fz.batchLanes)
		fz.s.Trace.Add("ac_batch_blocks", fz.batchBlocks)
		fz.s.Trace.Add("ac_batch_lanes", fz.batchLanes)
	}
	if fz.resPoints != 0 || fz.refines != 0 || fz.breaches != 0 {
		mACRefinements.Add(fz.refines)
		mACResidualBreaches.Add(fz.breaches)
		tr := fz.s.Trace
		tr.Add("ac_residual_points", fz.resPoints)
		tr.Add("ac_refinements", fz.refines)
		tr.Add("ac_residual_breaches", fz.breaches)
		for i, c := range fz.resDecades {
			if c != 0 {
				tr.Add(obs.ResidualDecadeKey(obs.ResidualDecadeMin+i), c)
			}
		}
		tr.StatMax("numerics_residual_max", fz.resMax)
		tr.StatMax("numerics_pivot_growth_max", fz.growthMax)
		tr.StatMax("numerics_cond_est_max", fz.condMax)
		tr.AddSlowPoints(fz.health)
		fz.refines, fz.breaches, fz.resPoints = 0, 0, 0
		fz.resMax, fz.growthMax, fz.condMax = 0, 0, 0
		fz.resDecades = [obs.ResidualDecadeMax - obs.ResidualDecadeMin + 1]int64{}
		fz.health = fz.health[:0]
	}
	fz.fulls, fz.refactors, fz.solves = 0, 0, 0
	fz.diagSolves, fz.diagRows, fz.diagFallbacks = 0, 0, 0
	fz.batchBlocks, fz.batchLanes = 0, 0
	if fz.ws != nil {
		fz.ws = nil
		fz.s.releaseWorkspace()
	}
}

// AC runs a small-signal sweep over the given frequencies (Hz) with the
// circuit's own AC sources as excitation. A canceled ctx aborts between
// frequency points — within one linear solve of the cancellation.
func (s *Sim) AC(ctx context.Context, freqs []float64, op *mna.OpPoint) (*ACResult, error) {
	n := s.Sys.NumUnknowns()
	res := &ACResult{sys: s.Sys, Freqs: append([]float64(nil), freqs...)}
	res.Sol = make([][]complex128, len(freqs))
	if len(freqs) == 0 {
		return res, nil
	}
	fz := s.newACFactorizer(2*math.Pi*freqs[0], op)
	defer fz.flush()
	slow := newSlowTracker(s.Trace)
	defer slow.flush(s.Trace)
	b := make([]complex128, n)
	for k, f := range freqs {
		if err := acerr.Ctx(ctx); err != nil {
			return nil, err
		}
		omega := 2 * math.Pi * f
		for i := range b {
			b[i] = 0
		}
		var t0 time.Time
		if slow != nil {
			t0 = time.Now()
		}
		slv, err := fz.at(omega, b)
		if err != nil {
			return nil, fmt.Errorf("analysis: AC at %g Hz: %w", f, err)
		}
		x := make([]complex128, n)
		if err := slv.SolveInto(x, b); err != nil {
			return nil, fmt.Errorf("analysis: AC at %g Hz: %w", f, err)
		}
		fz.solves++
		if _, err := fz.verify(slv, omega, f, x, b, true); err != nil {
			return nil, err
		}
		fz.condSampleAt(k, len(freqs))
		if slow != nil {
			slow.note(f, time.Since(t0), fz.kind)
		}
		res.Sol[k] = x
	}
	return res, nil
}

// ImpedanceMatrixColumns computes driving-point impedances: for every
// frequency it factors the AC matrix once and back-substitutes one RHS per
// requested node (unit current injection), returning Z[nodeIdxInList][freq].
// This is the shared-factorization fast path of the all-nodes stability
// sweep; the naive alternative (one full AC analysis per node) is kept in
// the tool package for the ablation benchmark. In sparse mode the
// factorization itself is the two-phase kind: the pivot order and fill
// pattern come from the Sim-shared symbolic analysis and each frequency
// only refills preallocated numeric arrays, so the steady-state loop body
// performs no allocations at all. A canceled ctx aborts between frequency
// points — within one factorization of the cancellation.
func (s *Sim) ImpedanceMatrixColumns(ctx context.Context, freqs []float64, op *mna.OpPoint, nodeIdx []int) ([][]complex128, error) {
	n := s.Sys.NumUnknowns()
	out := make([][]complex128, len(nodeIdx))
	for i := range out {
		out[i] = make([]complex128, len(freqs))
	}
	if len(freqs) == 0 {
		return out, nil
	}
	fz := s.newACFactorizer(2*math.Pi*freqs[0], op)
	defer fz.flush()
	slow := newSlowTracker(s.Trace)
	defer slow.flush(s.Trace)
	b := make([]complex128, n)
	x := make([]complex128, n)
	for k, f := range freqs {
		if err := acerr.Ctx(ctx); err != nil {
			return nil, err
		}
		omega := 2 * math.Pi * f
		var t0 time.Time
		if slow != nil {
			t0 = time.Now()
		}
		slv, err := fz.at(omega, nil)
		if err != nil {
			return nil, fmt.Errorf("analysis: impedance at %g Hz: %w", f, err)
		}
		for i, idx := range nodeIdx {
			b[idx] = 1 // 1 A injection into the node
			err := slv.SolveInto(x, b)
			if err != nil {
				b[idx] = 0
				return nil, fmt.Errorf("analysis: impedance at %g Hz: %w", f, err)
			}
			if i == 0 {
				// Verify the frequency's first column while its injection is
				// still stamped into b; an escalated factorization replaces
				// slv for the remaining columns.
				slv2, verr := fz.verify(slv, omega, f, x, b, false)
				if verr != nil {
					b[idx] = 0
					return nil, verr
				}
				slv = slv2
			}
			b[idx] = 0 // b stays all-zero between solves
			out[i][k] = x[idx]
		}
		fz.solves += int64(len(nodeIdx))
		fz.condSampleAt(k, len(freqs))
		if slow != nil {
			slow.note(f, time.Since(t0), fz.kind)
		}
	}
	return out, nil
}

// ImpedanceDiagSweep computes only the driving-point diagonal
// Z_kk(ω) = (A⁻¹)_{kk} for the requested nodes, returning
// Z[nodeIdxInList][freq] with the same shape ImpedanceMatrixColumns
// produces. On the sparse refactor path it uses the reach-restricted
// batched diagonal kernel: the per-node forward solve only walks the
// injection step's reach set in the L elimination DAG and the backward
// solve terminates as soon as component k is determined, so each
// frequency costs O(Σ|reach(k)|) rows instead of N full substitutions.
// The reach sets are computed once per sweep (cached on the Sim-shared
// symbolic state, so forked workers build them once) and the steady-state
// loop body is allocation-free. Frequencies are processed in K-lane
// blocks (Options.FreqBatch): one pass over the frozen symbolic index
// arrays refills K factorizations at once, cutting the refill's dominant
// memory traffic — the index-array streaming — by the batch width while
// keeping each lane's arithmetic bitwise identical to a serial refill.
// Frequencies that leave the refactor path
// — a collapsed pivot falling back to a full factorization, or pattern
// drift invalidating the symbolic analysis mid-sweep — fall back to full
// per-node SolveInto for that point and count against
// acstab_ac_diag_fallbacks_total. Dense mode has no elimination DAG to
// exploit and delegates wholesale to ImpedanceMatrixColumns. Callers that
// need off-diagonal entries (loop-gain extraction) must keep using
// ImpedanceMatrixColumns.
// freqBatchK resolves the Options.FreqBatch knob to the effective diag
// sweep refill block width.
func (s *Sim) freqBatchK() int {
	k := s.Opt.FreqBatch
	switch {
	case k == 0:
		return defFreqBatch
	case k <= 1:
		return 1
	case k > maxFreqBatch:
		return maxFreqBatch
	}
	return k
}

// ensureBatch sizes the K-lane refill workspace for a diagonal sweep over
// `nodes` injection nodes, reusing the Sim-cached arrays when this sweep
// holds the workspace. The reuse matters for adaptive runs: they issue
// dozens of short refinement sweeps per analysis, and rebuilding K Vals
// plus the lane-strided factor block on every one would spend more time
// in the allocator than in the solver.
func (fz *acFactorizer) ensureBatch(K, nodes int) {
	if ws := fz.ws; ws != nil {
		fz.nb, fz.bvals, fz.lane, fz.diagB = ws.nb, ws.bvals, ws.lane, ws.diagB
		defer func() {
			ws.nb, ws.bvals, ws.lane, ws.diagB = fz.nb, fz.bvals, fz.lane, fz.diagB
		}()
	}
	if fz.nb == nil || fz.nb.K() < K {
		fz.nb = fz.sym.NewNumericBatch(K)
	}
	for len(fz.bvals) < K {
		v := fz.pat.NewVals()
		fz.bvals = append(fz.bvals, v)
		fz.lane = append(fz.lane, v.Values())
	}
	if need := nodes * fz.nb.K(); cap(fz.diagB) < need {
		fz.diagB = make([]complex128, need)
	} else {
		fz.diagB = fz.diagB[:need]
	}
}

// diagBatchSweep is the frequency-batched stage of ImpedanceDiagSweep: it
// processes freqs in K-lane blocks — stamp K matrices, refill all K
// factorizations in one pass over the frozen symbolic index arrays, run
// the K-wide reach-restricted diagonal kernel — and fills out[...][k] for
// every frequency it completes. Per lane the arithmetic is bitwise
// identical to the serial path, so results, probes, and the repair ladder
// are unchanged; only the memory-access schedule differs. It returns the
// index of the first unprocessed frequency: len(freqs) normally, or the
// block where pattern drift invalidated the symbolic analysis, in which
// case the caller's serial loop finishes the sweep from there.
func (fz *acFactorizer) diagBatchSweep(ctx context.Context, freqs []float64, op *mna.OpPoint, nodeIdx []int, out [][]complex128, plan *sparse.DiagPlan, slow *slowTracker, K int, b, x []complex128) (int, error) {
	s := fz.s
	fz.ensureBatch(K, len(nodeIdx))
	nb := fz.nb
	KB := nb.K()
	var kinds [maxFreqBatch]string
	for base := 0; base < len(freqs); base += K {
		if err := acerr.Ctx(ctx); err != nil {
			return base, err
		}
		m := len(freqs) - base
		if m > K {
			m = K
		}
		var t0 time.Time
		if slow != nil {
			t0 = time.Now()
		}
		// Stamp the block's lanes. Drift on any lane means the stamp
		// structure no longer matches the frozen pattern: invalidate and
		// hand the rest of the sweep (from this block's first frequency)
		// to the serial full-factorization loop.
		for j := 0; j < m; j++ {
			v := fz.bvals[j]
			v.Begin()
			s.Sys.StampAC(v, nil, 2*math.Pi*freqs[base+j], op)
			if v.Drift() {
				mACPatternDrift.Inc()
				s.Trace.Add("ac_pattern_drift", 1)
				s.acShared().invalidate()
				fz.sym = nil
				fz.kind = solveKindPatternDrift
				return base, nil
			}
		}
		if err := nb.Refactor(fz.lane[:m]); err != nil {
			return base, fmt.Errorf("analysis: impedance batch at %g Hz: %w", freqs[base], err)
		}
		fz.batchBlocks++
		fz.batchLanes += int64(m)
		if err := nb.SolveDiagLanesInto(fz.diagB, plan); err != nil {
			return base, fmt.Errorf("analysis: impedance batch at %g Hz: %w", freqs[base], err)
		}
		for j := 0; j < m; j++ {
			k := base + j
			f := freqs[k]
			omega := 2 * math.Pi * f
			if !nb.LaneOK(j) {
				// Collapsed pivot under the frozen order: retry this one
				// frequency with a fresh pivot search, exactly like the
				// serial refactor fallback.
				mACRefactorFallbacks.Inc()
				s.Trace.Add("ac_refactor_fallbacks", 1)
				fz.kind = solveKindRefactorFallback
				lu, err := fz.fullAt(omega, nil)
				if err != nil {
					return k, fmt.Errorf("analysis: impedance at %g Hz: %w", f, err)
				}
				fz.diagFallbacks++
				slv := cSolver(lu)
				for i, idx := range nodeIdx {
					b[idx] = 1
					serr := slv.SolveInto(x, b)
					if serr != nil {
						b[idx] = 0
						return k, fmt.Errorf("analysis: impedance at %g Hz: %w", f, serr)
					}
					if i == 0 {
						slv2, verr := fz.verify(slv, omega, f, x, b, false)
						if verr != nil {
							b[idx] = 0
							return k, verr
						}
						slv = slv2
					}
					b[idx] = 0
					out[i][k] = x[idx]
				}
				fz.solves += int64(len(nodeIdx))
				kinds[j] = fz.kind
				continue
			}
			for i := range nodeIdx {
				out[i][k] = fz.diagB[i*KB+j]
			}
			fz.refactors++
			fz.diagSolves++
			fz.diagRows += plan.RowsPerSolve()
			kinds[j] = solveKindDiag
			if fz.resThreshold > 0 {
				g := nb.LaneGrowth(j)
				mACPivotGrowth.Observe(g)
				if g > fz.growthMax {
					fz.growthMax = g
				}
			}
			// Sampled residual probe and condition estimates both need this
			// lane's factors in serial layout; one extraction serves both.
			probe := fz.resThreshold > 0 && fz.probeEvery > 0 && k%fz.probeEvery == 0
			cond := fz.condSampleDue(k, len(freqs))
			if probe || cond {
				if err := nb.ExtractLane(fz.num, j); err != nil {
					return k, fmt.Errorf("analysis: impedance at %g Hz: %w", f, err)
				}
				fz.kind = solveKindRefactor
				fz.curVals = fz.lane[j]
				if probe {
					// Same probe as the serial diag loop: one full solve for
					// the first node, verified; the kernel and the full solve
					// perform bitwise-identical arithmetic on this lane's
					// factorization, so overwriting the kernel's value with
					// the probe's is exact.
					idx0 := nodeIdx[0]
					b[idx0] = 1
					perr := fz.num.SolveInto(x, b)
					if perr != nil {
						b[idx0] = 0
						return k, fmt.Errorf("analysis: impedance at %g Hz: %w", f, perr)
					}
					slv2, verr := fz.verify(fz.num, omega, f, x, b, false)
					b[idx0] = 0
					if verr != nil {
						return k, verr
					}
					out[0][k] = x[idx0]
					if slv2 != cSolver(fz.num) {
						// The ladder escalated to a fresh full factorization:
						// redo the whole point on the new solver with full
						// substitutions.
						kinds[j] = fz.kind
						fz.diagFallbacks++
						for i, idx := range nodeIdx {
							b[idx] = 1
							serr := slv2.SolveInto(x, b)
							b[idx] = 0
							if serr != nil {
								return k, fmt.Errorf("analysis: impedance at %g Hz: %w", f, serr)
							}
							out[i][k] = x[idx]
						}
					}
				}
				if cond && fz.kind == solveKindRefactor {
					fz.condSample()
				}
			}
			fz.solves += int64(len(nodeIdx))
		}
		if slow != nil {
			per := time.Since(t0) / time.Duration(m)
			for j := 0; j < m; j++ {
				slow.note(freqs[base+j], per, kinds[j])
			}
		}
	}
	return len(freqs), nil
}

func (s *Sim) ImpedanceDiagSweep(ctx context.Context, freqs []float64, op *mna.OpPoint, nodeIdx []int) ([][]complex128, error) {
	if !s.useSparse() {
		return s.ImpedanceMatrixColumns(ctx, freqs, op, nodeIdx)
	}
	n := s.Sys.NumUnknowns()
	out := make([][]complex128, len(nodeIdx))
	for i := range out {
		out[i] = make([]complex128, len(freqs))
	}
	if len(freqs) == 0 {
		return out, nil
	}
	sp := obs.StartPhase(s.Trace, "diag_solve")
	defer sp.End()
	fz := s.newACFactorizer(2*math.Pi*freqs[0], op)
	defer fz.flush()
	slow := newSlowTracker(s.Trace)
	defer slow.flush(s.Trace)
	var plan *sparse.DiagPlan
	if fz.sym != nil {
		p, err := s.acShared().ensureDiagPlan(fz.sym, nodeIdx)
		if err != nil {
			return nil, fmt.Errorf("analysis: diag sweep plan: %w", err)
		}
		plan = p
	}
	diag := make([]complex128, len(nodeIdx))
	b := make([]complex128, n)
	x := make([]complex128, n)
	start := 0
	if plan != nil {
		if K := s.freqBatchK(); K > 1 {
			k0, err := fz.diagBatchSweep(ctx, freqs, op, nodeIdx, out, plan, slow, K, b, x)
			if err != nil {
				return nil, err
			}
			start = k0
		}
	}
	for k := start; k < len(freqs); k++ {
		f := freqs[k]
		if err := acerr.Ctx(ctx); err != nil {
			return nil, err
		}
		omega := 2 * math.Pi * f
		var t0 time.Time
		if slow != nil {
			t0 = time.Now()
		}
		slv, err := fz.at(omega, nil)
		if err != nil {
			return nil, fmt.Errorf("analysis: impedance at %g Hz: %w", f, err)
		}
		kind := fz.kind
		if num, ok := slv.(*sparse.Numeric); ok && plan != nil {
			// Refactor succeeded under the frozen pivot order, so the plan's
			// reach sets describe exactly this factorization.
			if err := num.SolveDiagInto(diag, plan); err != nil {
				return nil, fmt.Errorf("analysis: impedance at %g Hz: %w", f, err)
			}
			for i := range nodeIdx {
				out[i][k] = diag[i]
			}
			fz.diagSolves++
			fz.diagRows += plan.RowsPerSolve()
			kind = solveKindDiag
			// Sampled residual probe: the batched kernel produces only the
			// Z_kk values, so every probeEvery-th frequency runs one full
			// solve for the first node and verifies it. The kernel and the
			// full solve perform bitwise-identical arithmetic on the shared
			// factorization (both skip zero multipliers), so overwriting the
			// kernel's value with the probe's is exact, not a perturbation.
			if fz.resThreshold > 0 && fz.probeEvery > 0 && k%fz.probeEvery == 0 {
				idx0 := nodeIdx[0]
				b[idx0] = 1
				perr := num.SolveInto(x, b)
				if perr != nil {
					b[idx0] = 0
					return nil, fmt.Errorf("analysis: impedance at %g Hz: %w", f, perr)
				}
				slv2, verr := fz.verify(num, omega, f, x, b, false)
				b[idx0] = 0
				if verr != nil {
					return nil, verr
				}
				out[0][k] = x[idx0]
				if slv2 != cSolver(num) {
					// The ladder escalated to a fresh full factorization:
					// the kernel's values for this frequency came from the
					// degraded one, so redo the whole point on the new
					// solver with full substitutions.
					kind = fz.kind
					fz.diagFallbacks++
					for i, idx := range nodeIdx {
						b[idx] = 1
						serr := slv2.SolveInto(x, b)
						b[idx] = 0
						if serr != nil {
							return nil, fmt.Errorf("analysis: impedance at %g Hz: %w", f, serr)
						}
						out[i][k] = x[idx]
					}
				}
			}
			fz.condSampleAt(k, len(freqs))
		} else {
			// Fallback factorization (collapsed pivot, drift, or a failed
			// symbolic build): its pivot order is its own, so the frozen
			// reach sets do not apply — run the full per-node substitutions.
			fz.diagFallbacks++
			for i, idx := range nodeIdx {
				b[idx] = 1 // 1 A injection into the node
				err := slv.SolveInto(x, b)
				if err != nil {
					b[idx] = 0
					return nil, fmt.Errorf("analysis: impedance at %g Hz: %w", f, err)
				}
				if i == 0 {
					slv2, verr := fz.verify(slv, omega, f, x, b, false)
					if verr != nil {
						b[idx] = 0
						return nil, verr
					}
					slv = slv2
					kind = fz.kind
				}
				b[idx] = 0 // b stays all-zero between solves
				out[i][k] = x[idx]
			}
		}
		fz.solves += int64(len(nodeIdx))
		if slow != nil {
			slow.note(f, time.Since(t0), kind)
		}
	}
	return out, nil
}

// Impedance computes the driving-point impedance of one node across
// frequency (unit AC current injection, reading the same node's voltage).
func (s *Sim) Impedance(ctx context.Context, freqs []float64, op *mna.OpPoint, node string) (*wave.Wave, error) {
	idx, ok := s.Sys.NodeOf(node)
	if !ok || idx < 0 {
		return nil, fmt.Errorf("analysis: cannot probe node %q: %w", node, acerr.ErrUnknownNode)
	}
	z, err := s.ImpedanceMatrixColumns(ctx, freqs, op, []int{idx})
	if err != nil {
		return nil, err
	}
	w := wave.New("z("+node+")", append([]float64(nil), freqs...), z[0])
	w.XUnit = "Hz"
	w.YUnit = "Ohm"
	w.LogX = true
	return w, nil
}
