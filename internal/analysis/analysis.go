// Package analysis implements the circuit analyses the tool depends on:
// DC operating point (Newton-Raphson with step damping, gmin stepping, and
// source stepping homotopies), DC and temperature sweeps, small-signal AC
// sweeps (with a shared-factorization multi-node fast path used by the
// all-nodes stability run), and transient simulation (trapezoidal or
// backward-Euler companion integration). It is the Spectre substitute the
// reproduction runs on.
package analysis

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"acstab/internal/acerr"
	"acstab/internal/linalg"
	"acstab/internal/mna"
	"acstab/internal/obs"
	"acstab/internal/sparse"
	"acstab/internal/wave"
)

// Solver counters. Increments happen at solve granularity (one atomic add
// per sweep or Newton solve, never per matrix entry), so the
// instrumentation cost is invisible next to a factorization.
var (
	mACFactorizations = obs.GetCounter("acstab_ac_factorizations_total")
	mACSolves         = obs.GetCounter("acstab_ac_solves_total")
	mNewtonIterations = obs.GetCounter("acstab_newton_iterations_total")
	mOPSolves         = obs.GetCounter("acstab_op_solves_total")
	// Two-phase sparse solver telemetry: how often the per-frequency hot
	// path got away with a pivot-free numeric refactorization, how often
	// the symbolic analysis was built versus reused across workers, and
	// how often the guards bounced a sweep back to a full factorization.
	mACRefactorizations  = obs.GetCounter("acstab_ac_refactorizations_total")
	mACSymbolicBuilds    = obs.GetCounter("acstab_ac_symbolic_builds_total")
	mACSymbolicReuses    = obs.GetCounter("acstab_ac_symbolic_reuses_total")
	mACRefactorFallbacks = obs.GetCounter("acstab_ac_refactor_fallbacks_total")
	mACPatternDrift      = obs.GetCounter("acstab_ac_pattern_drift_total")
	// Diagonal-extraction kernel telemetry: batched reach-restricted
	// Z_kk solves taken, rows those solves actually visited (compare
	// against 2·n·nodes·solves for the reach-restriction win), and
	// frequencies that had to fall back to full per-node substitutions
	// (dense mode is not a fallback — it never enters the kernel path).
	mACDiagSolves    = obs.GetCounter("acstab_ac_diag_solves_total")
	mACDiagRows      = obs.GetCounter("acstab_ac_diag_rows_visited_total")
	mACDiagFallbacks = obs.GetCounter("acstab_ac_diag_fallbacks_total")
)

// Options tunes the solvers.
type Options struct {
	AbsTol  float64 // branch-current tolerance (A)
	VnTol   float64 // node-voltage tolerance (V)
	RelTol  float64 // relative tolerance
	Gmin    float64 // junction shunt conductance
	MaxIter int     // Newton iteration limit per solve
	// MaxStepV damps Newton: no node voltage moves more than this per
	// iteration.
	MaxStepV float64
	// Matrix selects the linear solver for AC sweeps: auto (0), dense (1),
	// sparse (2). DC always uses the dense solver (systems are re-assembled
	// each Newton iteration and stay small in this repo's workloads).
	Matrix MatrixMode
	// SparseThreshold is the system size above which auto mode picks the
	// sparse solver.
	SparseThreshold int
}

// MatrixMode selects the AC linear solver.
type MatrixMode int

// Matrix modes.
const (
	MatrixAuto MatrixMode = iota
	MatrixDense
	MatrixSparse
)

// DefaultOptions returns the solver defaults documented in DESIGN.md.
func DefaultOptions() Options {
	return Options{
		AbsTol:          1e-12,
		VnTol:           1e-9,
		RelTol:          1e-6,
		Gmin:            1e-12,
		MaxIter:         200,
		MaxStepV:        1.0,
		SparseThreshold: 64,
	}
}

// Sim couples a compiled system with solver options.
type Sim struct {
	Sys *mna.System
	Opt Options
	// Trace, when non-nil, accumulates solver counters (factorizations,
	// solves, Newton iterations) for the run-level trace in addition to
	// the process-wide obs registry.
	Trace *obs.Run

	// ac caches the AC matrix's stamp pattern and symbolic factorization
	// analysis, which depend only on the compiled system's structure and
	// so are computed once per Sim and shared read-only by every Fork.
	ac     *acShared
	acInit sync.Once
}

// New returns a simulator over the compiled system with default options.
func New(sys *mna.System) *Sim {
	return &Sim{Sys: sys, Opt: DefaultOptions()}
}

// Fork returns a Sim sharing the compiled system, options, trace, and the
// cached AC symbolic analysis, for concurrent sweep workers: the shared
// pieces are read-only or internally locked, while per-worker numeric
// workspaces stay private to each ImpedanceMatrixColumns/AC call.
func (s *Sim) Fork() *Sim {
	return &Sim{Sys: s.Sys, Opt: s.Opt, Trace: s.Trace, ac: s.acShared()}
}

// acShared returns the lazily created shared AC solver cache.
func (s *Sim) acShared() *acShared {
	s.acInit.Do(func() {
		if s.ac == nil {
			s.ac = &acShared{}
		}
	})
	return s.ac
}

// acShared holds the per-system symbolic state of the two-phase sparse AC
// solver: the frozen stamp pattern and the pivot-order/fill analysis. One
// instance is shared by all workers of a sweep; the mutex only guards the
// build-once handoff, after which both pointers are immutable.
type acShared struct {
	mu  sync.Mutex
	pat *sparse.Pattern
	sym *sparse.Symbolic

	// Cached diagonal-extraction plan: the reach sets depend only on the
	// symbolic analysis and the injection node list, so one build serves
	// every worker and every frequency of an all-nodes sweep. diagSym
	// records which symbolic the plan was derived from (a drift-triggered
	// rebuild must not reuse a stale plan).
	diag      *sparse.DiagPlan
	diagSym   *sparse.Symbolic
	diagNodes []int
}

// invalidate drops the cached analysis after pattern drift so the next
// sweep rebuilds from the current stamp structure.
func (sh *acShared) invalidate() {
	sh.mu.Lock()
	sh.pat, sh.sym = nil, nil
	sh.diag, sh.diagSym, sh.diagNodes = nil, nil, nil
	sh.mu.Unlock()
}

// ensureDiagPlan returns the shared reach-set plan for the given symbolic
// analysis and injection nodes, building it on first use. Workers forked
// from one Sim hit the cache; a different node list or a rebuilt symbolic
// replaces it.
func (sh *acShared) ensureDiagPlan(sym *sparse.Symbolic, nodes []int) (*sparse.DiagPlan, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.diag != nil && sh.diagSym == sym && equalInts(sh.diagNodes, nodes) {
		return sh.diag, nil
	}
	plan, err := sym.DiagPlan(nodes)
	if err != nil {
		return nil, err
	}
	sh.diag, sh.diagSym = plan, sym
	sh.diagNodes = append([]int(nil), nodes...)
	return plan, nil
}

// ACChecksum returns the structural checksum of the cached AC stamp
// pattern and whether the symbolic analysis is currently warm. It reports
// (0, false) before the first sparse sweep builds the symbolic state and
// again after pattern drift invalidates it. The farm's compiled-system
// cache compares this fingerprint across requests: a warm entry whose
// checksum moved is not the circuit it was cached as and must be
// recompiled from source.
func (s *Sim) ACChecksum() (uint64, bool) {
	sh := s.acShared()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.pat == nil || sh.sym == nil {
		return 0, false
	}
	return sh.pat.Checksum(), true
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ensureSymbolic returns the shared pattern and symbolic analysis,
// building them on first use from one stamped frequency point (omega, op
// supply the numeric values the pivot-order search runs on).
func (s *Sim) ensureSymbolic(omega float64, op *mna.OpPoint) (*sparse.Pattern, *sparse.Symbolic, error) {
	sh := s.acShared()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.sym != nil {
		mACSymbolicReuses.Inc()
		s.Trace.Add("ac_symbolic_reuses", 1)
		return sh.pat, sh.sym, nil
	}
	rec := sparse.NewRecorder(s.Sys.NumUnknowns())
	s.Sys.StampAC(rec, nil, omega, op)
	pat := rec.Compile()
	vals := pat.NewVals()
	vals.Begin()
	s.Sys.StampAC(vals, nil, omega, op)
	if vals.Drift() {
		// Two back-to-back stamps disagreeing structurally means the
		// stamping is not deterministic; the two-phase path cannot be used.
		mACPatternDrift.Inc()
		return nil, nil, fmt.Errorf("analysis: non-deterministic AC stamp pattern")
	}
	sym, err := pat.Analyze(vals.Values())
	if err != nil {
		return nil, nil, err
	}
	sh.pat, sh.sym = pat, sym
	mACSymbolicBuilds.Inc()
	mACFactorizations.Inc() // the analysis pass is a full factorization
	s.Trace.Add("ac_symbolic_builds", 1)
	s.Trace.Add("ac_factorizations", 1)
	return pat, sym, nil
}

// ErrNoConvergence is returned when every DC homotopy fails. It is the
// same sentinel the public package exposes as acstab.ErrNoConvergence.
var ErrNoConvergence = acerr.ErrNoConvergence

// assembleFn stamps the companion system at candidate x.
type assembleFn func(a mna.RealAdder, b []float64, x []float64)

// newton runs damped Newton iteration with the given assembler, starting
// from x0. It returns the converged solution. A canceled ctx aborts
// between iterations — one assemble+factor+solve at most after the
// cancellation lands.
func (s *Sim) newton(ctx context.Context, assemble assembleFn, x0 []float64) ([]float64, error) {
	n := s.Sys.NumUnknowns()
	nn := s.Sys.NumNodes()
	x := append([]float64(nil), x0...)
	a := linalg.NewMatrix(n)
	b := make([]float64, n)
	iters := 0
	defer func() {
		mNewtonIterations.Add(int64(iters))
		s.Trace.Add("newton_iterations", int64(iters))
	}()
	for iter := 0; iter < s.Opt.MaxIter; iter++ {
		if err := acerr.Ctx(ctx); err != nil {
			return nil, err
		}
		iters++
		a.Zero()
		for i := range b {
			b[i] = 0
		}
		assemble(a, b, x)
		f, err := linalg.Factor(a)
		if err != nil {
			return nil, fmt.Errorf("analysis: singular matrix during Newton: %w", err)
		}
		xn, err := f.Solve(b)
		if err != nil {
			return nil, err
		}
		// Damping: bound the largest node-voltage step.
		maxdv := 0.0
		for i := 0; i < nn; i++ {
			if dv := math.Abs(xn[i] - x[i]); dv > maxdv {
				maxdv = dv
			}
		}
		if s.Opt.MaxStepV > 0 && maxdv > s.Opt.MaxStepV {
			k := s.Opt.MaxStepV / maxdv
			for i := range xn {
				xn[i] = x[i] + k*(xn[i]-x[i])
			}
		}
		converged := true
		for i := range xn {
			tol := s.Opt.AbsTol
			if i < nn {
				tol = s.Opt.VnTol
			}
			lim := tol + s.Opt.RelTol*math.Max(math.Abs(xn[i]), math.Abs(x[i]))
			if math.Abs(xn[i]-x[i]) > lim {
				converged = false
				break
			}
		}
		x = xn
		if converged {
			return x, nil
		}
	}
	return nil, ErrNoConvergence
}

// OP computes the DC operating point. On plain-Newton failure it falls
// back to gmin stepping and then source stepping. A canceled ctx aborts
// the Newton loops between iterations with an error wrapping
// acerr.ErrCanceled.
func (s *Sim) OP(ctx context.Context) (*mna.OpPoint, error) {
	mOPSolves.Inc()
	s.Trace.Add("op_solves", 1)
	// Initial guess: zeros, overridden by any .nodeset hints.
	zero := make([]float64, s.Sys.NumUnknowns())
	for node, v := range s.Sys.Ckt.NodeSet {
		if idx, ok := s.Sys.NodeOf(node); ok && idx >= 0 {
			zero[idx] = v
		}
	}
	stamp := func(gshunt, srcScale float64) assembleFn {
		return func(a mna.RealAdder, b []float64, x []float64) {
			s.Sys.StampDC(a, b, x, mna.DCOptions{
				Gmin:         s.Opt.Gmin,
				SrcScale:     srcScale,
				GminToGround: gshunt,
			})
		}
	}
	// Plain Newton.
	if x, err := s.newton(ctx, stamp(0, 1), zero); err == nil {
		return s.Sys.Linearize(x, s.Opt.Gmin), nil
	} else if cerr := acerr.Ctx(ctx); cerr != nil {
		// Cancellation must not cascade into the homotopies.
		return nil, cerr
	}
	// Gmin stepping: heavy shunt first, relax, warm start each stage.
	x := zero
	ok := true
	for g := 1e-2; g >= 1e-13; g /= 10 {
		xn, err := s.newton(ctx, stamp(g, 1), x)
		if err != nil {
			ok = false
			break
		}
		x = xn
	}
	if cerr := acerr.Ctx(ctx); cerr != nil {
		return nil, cerr
	}
	if ok {
		if xn, err := s.newton(ctx, stamp(0, 1), x); err == nil {
			return s.Sys.Linearize(xn, s.Opt.Gmin), nil
		}
	}
	// Source stepping.
	x = zero
	for scale := 0.05; ; scale += 0.05 {
		if scale > 1 {
			scale = 1
		}
		xn, err := s.newton(ctx, stamp(0, scale), x)
		if err != nil {
			if cerr := acerr.Ctx(ctx); cerr != nil {
				return nil, cerr
			}
			return nil, fmt.Errorf("%w (source stepping failed at scale %.2f)", ErrNoConvergence, scale)
		}
		x = xn
		if scale == 1 {
			return s.Sys.Linearize(x, s.Opt.Gmin), nil
		}
	}
}

// NodeVoltage reads a node voltage from an operating point.
func (s *Sim) NodeVoltage(op *mna.OpPoint, node string) (float64, error) {
	idx, ok := s.Sys.NodeOf(node)
	if !ok {
		return 0, fmt.Errorf("analysis: %w %q", acerr.ErrUnknownNode, node)
	}
	if idx < 0 {
		return 0, nil
	}
	return op.X[idx], nil
}

// SourceCurrent reads the branch current of a voltage-defined element.
func (s *Sim) SourceCurrent(op *mna.OpPoint, elem string) (float64, error) {
	br, ok := s.Sys.BranchOf(elem)
	if !ok {
		return 0, fmt.Errorf("analysis: element %q has no branch current", elem)
	}
	return op.X[br], nil
}

// complexSolverFor builds the AC matrix+solver pair sized for the system.
func (s *Sim) useSparse() bool {
	switch s.Opt.Matrix {
	case MatrixDense:
		return false
	case MatrixSparse:
		return true
	default:
		return s.Sys.NumUnknowns() > s.Opt.SparseThreshold
	}
}

// ACResult holds an AC sweep: per-frequency solution vectors.
type ACResult struct {
	sys   *mna.System
	Freqs []float64
	// Sol[k] is the MNA solution vector at Freqs[k].
	Sol [][]complex128
}

// NodeWave returns the complex node voltage across frequency.
func (r *ACResult) NodeWave(node string) (*wave.Wave, error) {
	idx, ok := r.sys.NodeOf(node)
	if !ok {
		return nil, fmt.Errorf("analysis: %w %q", acerr.ErrUnknownNode, node)
	}
	y := make([]complex128, len(r.Freqs))
	for k := range r.Freqs {
		if idx >= 0 {
			y[k] = r.Sol[k][idx]
		}
	}
	w := wave.New("v("+node+")", append([]float64(nil), r.Freqs...), y)
	w.XUnit = "Hz"
	w.YUnit = "V"
	w.LogX = true
	return w, nil
}

// BranchWave returns the complex branch current of a voltage-defined
// element across frequency.
func (r *ACResult) BranchWave(elem string) (*wave.Wave, error) {
	br, ok := r.sys.BranchOf(elem)
	if !ok {
		return nil, fmt.Errorf("analysis: element %q has no branch current", elem)
	}
	y := make([]complex128, len(r.Freqs))
	for k := range r.Freqs {
		y[k] = r.Sol[k][br]
	}
	w := wave.New("i("+elem+")", append([]float64(nil), r.Freqs...), y)
	w.XUnit = "Hz"
	w.YUnit = "A"
	w.LogX = true
	return w, nil
}

// cSolver is a ready factorization of one frequency point's AC matrix.
// All implementations (sparse.Numeric, sparse.LU, linalg.CLU) solve into
// caller-owned storage without allocating.
type cSolver interface {
	SolveInto(x, b []complex128) error
}

// acFactorizer produces a ready-to-solve factorization of the AC system
// at each frequency of a sweep. In sparse mode it reuses the Sim-shared
// symbolic analysis and owns the per-worker numeric workspaces, so the
// steady-state factorize+solve cycle is pivot-free, map-free, and
// allocation-free; the structural-checksum and collapsed-pivot guards
// fall back to a full map-based factorization for the offending
// frequency. In dense mode the factorization storage is reused across
// frequencies. Counter deltas accumulate locally and are published by
// flush (deferred by the callers), keeping atomics off the inner loop.
type acFactorizer struct {
	s      *Sim
	op     *mna.OpPoint
	sparse bool

	// Sparse two-phase path.
	pat  *sparse.Pattern
	sym  *sparse.Symbolic
	num  *sparse.Numeric
	vals *sparse.Vals
	smat *sparse.Matrix // full-factorization fallback matrix, lazy

	// Dense path.
	dm  *linalg.CMatrix
	clu *linalg.CLU

	refactors int64
	fulls     int64
	solves    int64

	// Diagonal-kernel tallies (ImpedanceDiagSweep only): batched
	// SolveDiagInto calls, rows those calls visited, and frequencies
	// bounced to full per-node substitutions.
	diagSolves    int64
	diagRows      int64
	diagFallbacks int64

	// kind names the solver path the most recent at() call took, the
	// slow-point context tag: "dense", "refactor" (pivot-free numeric
	// refill), "full" (map-based factorization), "refactor_fallback" (the
	// refill hit a collapsed pivot and this point fell back to a full
	// factorization), or "pattern_drift" (the frozen pattern was
	// invalidated mid-sweep).
	kind string
}

// Solver-path tags reported in slow-point captures.
const (
	solveKindDense            = "dense"
	solveKindRefactor         = "refactor"
	solveKindFull             = "full"
	solveKindRefactorFallback = "refactor_fallback"
	solveKindPatternDrift     = "pattern_drift"
	// solveKindDiag tags frequency points whose Z_kk values came from the
	// reach-restricted batched diagonal kernel rather than full
	// substitutions.
	solveKindDiag = "diag"
)

// newACFactorizer prepares the per-sweep solver state. A failed symbolic
// build is not fatal: the sweep degrades to one full factorization per
// frequency (the pre-split behavior) and each point reports its own error.
func (s *Sim) newACFactorizer(omega0 float64, op *mna.OpPoint) *acFactorizer {
	fz := &acFactorizer{s: s, op: op, sparse: s.useSparse()}
	if fz.sparse {
		if pat, sym, err := s.ensureSymbolic(omega0, op); err == nil {
			fz.pat, fz.sym = pat, sym
			fz.num = sym.NewNumeric()
			fz.vals = pat.NewVals()
		}
	} else {
		fz.dm = linalg.NewCMatrix(s.Sys.NumUnknowns())
	}
	return fz
}

// at stamps and factors the AC system at omega, returning a solver valid
// until the next call. When b is non-nil it is stamped with the RHS
// excitation; the caller must pass it zeroed.
func (fz *acFactorizer) at(omega float64, b []complex128) (cSolver, error) {
	s := fz.s
	if !fz.sparse {
		fz.dm.Zero()
		s.Sys.StampAC(fz.dm, b, omega, fz.op)
		clu, err := linalg.CFactorInto(fz.clu, fz.dm)
		fz.clu = clu
		if err != nil {
			return nil, err
		}
		fz.fulls++
		fz.kind = solveKindDense
		return clu, nil
	}
	fz.kind = solveKindFull
	if fz.sym != nil {
		fz.vals.Begin()
		s.Sys.StampAC(fz.vals, b, omega, fz.op)
		if fz.vals.Drift() {
			// The stamp structure changed under the cached pattern: drop
			// the cache for future sweeps and run out this one on full
			// factorizations.
			mACPatternDrift.Inc()
			s.Trace.Add("ac_pattern_drift", 1)
			s.acShared().invalidate()
			fz.sym = nil
			fz.kind = solveKindPatternDrift
		} else if err := fz.num.Refactor(fz.vals.Values()); err == nil {
			fz.refactors++
			fz.kind = solveKindRefactor
			return fz.num, nil
		} else {
			// Collapsed pivot under the frozen order; retry this single
			// frequency with a fresh pivot search.
			mACRefactorFallbacks.Inc()
			s.Trace.Add("ac_refactor_fallbacks", 1)
			fz.kind = solveKindRefactorFallback
		}
	}
	if fz.smat == nil {
		fz.smat = sparse.New(s.Sys.NumUnknowns())
	} else {
		fz.smat.Zero()
	}
	if b != nil {
		// The refactor attempt may already have stamped the RHS.
		for i := range b {
			b[i] = 0
		}
	}
	s.Sys.StampAC(fz.smat, b, omega, fz.op)
	lu, err := sparse.Factor(fz.smat)
	if err != nil {
		return nil, err
	}
	fz.fulls++
	return lu, nil
}

// slowTracker keeps a sweep's worst-K frequency points by factor+solve
// wall time, tagged with the solver path each point took, so "why was this
// sweep slow" is answerable from the run trace alone. It is only allocated
// when the Sim carries a trace — an untraced sweep pays nothing, not even
// the clock reads. K is obs.MaxSlowPoints (8); workers flush their local
// worst-K into the shared run, which keeps the global worst-K.
type slowTracker struct {
	pts []obs.SlowPoint
	min int64 // smallest wall time held once the tracker is full
}

// newSlowTracker returns a tracker when r collects traces, else nil (the
// nil tracker disables capture in the sweep loops).
func newSlowTracker(r *obs.Run) *slowTracker {
	if r == nil {
		return nil
	}
	return &slowTracker{pts: make([]obs.SlowPoint, 0, obs.MaxSlowPoints)}
}

// note records one frequency point's factor+solve wall time.
func (st *slowTracker) note(freqHz float64, wall time.Duration, kind string) {
	w := wall.Nanoseconds()
	if len(st.pts) < obs.MaxSlowPoints {
		st.pts = append(st.pts, obs.SlowPoint{FreqHz: freqHz, WallNS: w, Detail: kind})
		if len(st.pts) == obs.MaxSlowPoints {
			st.refreshMin()
		}
		return
	}
	if w <= st.min {
		return
	}
	for i := range st.pts {
		if st.pts[i].WallNS == st.min {
			st.pts[i] = obs.SlowPoint{FreqHz: freqHz, WallNS: w, Detail: kind}
			break
		}
	}
	st.refreshMin()
}

func (st *slowTracker) refreshMin() {
	st.min = st.pts[0].WallNS
	for _, p := range st.pts[1:] {
		if p.WallNS < st.min {
			st.min = p.WallNS
		}
	}
}

// flush hands the captured points to the run trace (nil-tracker safe, so
// callers can defer it unconditionally).
func (st *slowTracker) flush(r *obs.Run) {
	if st == nil {
		return
	}
	r.AddSlowPoints(st.pts)
	st.pts = st.pts[:0]
	st.min = 0
}

// flush publishes the accumulated counter deltas.
func (fz *acFactorizer) flush() {
	mACFactorizations.Add(fz.fulls)
	mACRefactorizations.Add(fz.refactors)
	mACSolves.Add(fz.solves)
	fz.s.Trace.Add("ac_factorizations", fz.fulls)
	fz.s.Trace.Add("ac_refactorizations", fz.refactors)
	fz.s.Trace.Add("ac_solves", fz.solves)
	if fz.diagSolves != 0 || fz.diagRows != 0 || fz.diagFallbacks != 0 {
		mACDiagSolves.Add(fz.diagSolves)
		mACDiagRows.Add(fz.diagRows)
		mACDiagFallbacks.Add(fz.diagFallbacks)
		fz.s.Trace.Add("ac_diag_solves", fz.diagSolves)
		fz.s.Trace.Add("ac_diag_rows_visited", fz.diagRows)
		fz.s.Trace.Add("ac_diag_fallbacks", fz.diagFallbacks)
	}
	fz.fulls, fz.refactors, fz.solves = 0, 0, 0
	fz.diagSolves, fz.diagRows, fz.diagFallbacks = 0, 0, 0
}

// AC runs a small-signal sweep over the given frequencies (Hz) with the
// circuit's own AC sources as excitation. A canceled ctx aborts between
// frequency points — within one linear solve of the cancellation.
func (s *Sim) AC(ctx context.Context, freqs []float64, op *mna.OpPoint) (*ACResult, error) {
	n := s.Sys.NumUnknowns()
	res := &ACResult{sys: s.Sys, Freqs: append([]float64(nil), freqs...)}
	res.Sol = make([][]complex128, len(freqs))
	if len(freqs) == 0 {
		return res, nil
	}
	fz := s.newACFactorizer(2*math.Pi*freqs[0], op)
	defer fz.flush()
	slow := newSlowTracker(s.Trace)
	defer slow.flush(s.Trace)
	b := make([]complex128, n)
	for k, f := range freqs {
		if err := acerr.Ctx(ctx); err != nil {
			return nil, err
		}
		omega := 2 * math.Pi * f
		for i := range b {
			b[i] = 0
		}
		var t0 time.Time
		if slow != nil {
			t0 = time.Now()
		}
		slv, err := fz.at(omega, b)
		if err != nil {
			return nil, fmt.Errorf("analysis: AC at %g Hz: %w", f, err)
		}
		x := make([]complex128, n)
		if err := slv.SolveInto(x, b); err != nil {
			return nil, fmt.Errorf("analysis: AC at %g Hz: %w", f, err)
		}
		fz.solves++
		if slow != nil {
			slow.note(f, time.Since(t0), fz.kind)
		}
		res.Sol[k] = x
	}
	return res, nil
}

// ImpedanceMatrixColumns computes driving-point impedances: for every
// frequency it factors the AC matrix once and back-substitutes one RHS per
// requested node (unit current injection), returning Z[nodeIdxInList][freq].
// This is the shared-factorization fast path of the all-nodes stability
// sweep; the naive alternative (one full AC analysis per node) is kept in
// the tool package for the ablation benchmark. In sparse mode the
// factorization itself is the two-phase kind: the pivot order and fill
// pattern come from the Sim-shared symbolic analysis and each frequency
// only refills preallocated numeric arrays, so the steady-state loop body
// performs no allocations at all. A canceled ctx aborts between frequency
// points — within one factorization of the cancellation.
func (s *Sim) ImpedanceMatrixColumns(ctx context.Context, freqs []float64, op *mna.OpPoint, nodeIdx []int) ([][]complex128, error) {
	n := s.Sys.NumUnknowns()
	out := make([][]complex128, len(nodeIdx))
	for i := range out {
		out[i] = make([]complex128, len(freqs))
	}
	if len(freqs) == 0 {
		return out, nil
	}
	fz := s.newACFactorizer(2*math.Pi*freqs[0], op)
	defer fz.flush()
	slow := newSlowTracker(s.Trace)
	defer slow.flush(s.Trace)
	b := make([]complex128, n)
	x := make([]complex128, n)
	for k, f := range freqs {
		if err := acerr.Ctx(ctx); err != nil {
			return nil, err
		}
		omega := 2 * math.Pi * f
		var t0 time.Time
		if slow != nil {
			t0 = time.Now()
		}
		slv, err := fz.at(omega, nil)
		if err != nil {
			return nil, fmt.Errorf("analysis: impedance at %g Hz: %w", f, err)
		}
		for i, idx := range nodeIdx {
			b[idx] = 1 // 1 A injection into the node
			err := slv.SolveInto(x, b)
			b[idx] = 0 // b stays all-zero between solves
			if err != nil {
				return nil, fmt.Errorf("analysis: impedance at %g Hz: %w", f, err)
			}
			out[i][k] = x[idx]
		}
		fz.solves += int64(len(nodeIdx))
		if slow != nil {
			slow.note(f, time.Since(t0), fz.kind)
		}
	}
	return out, nil
}

// ImpedanceDiagSweep computes only the driving-point diagonal
// Z_kk(ω) = (A⁻¹)_{kk} for the requested nodes, returning
// Z[nodeIdxInList][freq] with the same shape ImpedanceMatrixColumns
// produces. On the sparse refactor path it uses the reach-restricted
// batched diagonal kernel: the per-node forward solve only walks the
// injection step's reach set in the L elimination DAG and the backward
// solve terminates as soon as component k is determined, so each
// frequency costs O(Σ|reach(k)|) rows instead of N full substitutions.
// The reach sets are computed once per sweep (cached on the Sim-shared
// symbolic state, so forked workers build them once) and the steady-state
// loop body is allocation-free. Frequencies that leave the refactor path
// — a collapsed pivot falling back to a full factorization, or pattern
// drift invalidating the symbolic analysis mid-sweep — fall back to full
// per-node SolveInto for that point and count against
// acstab_ac_diag_fallbacks_total. Dense mode has no elimination DAG to
// exploit and delegates wholesale to ImpedanceMatrixColumns. Callers that
// need off-diagonal entries (loop-gain extraction) must keep using
// ImpedanceMatrixColumns.
func (s *Sim) ImpedanceDiagSweep(ctx context.Context, freqs []float64, op *mna.OpPoint, nodeIdx []int) ([][]complex128, error) {
	if !s.useSparse() {
		return s.ImpedanceMatrixColumns(ctx, freqs, op, nodeIdx)
	}
	n := s.Sys.NumUnknowns()
	out := make([][]complex128, len(nodeIdx))
	for i := range out {
		out[i] = make([]complex128, len(freqs))
	}
	if len(freqs) == 0 {
		return out, nil
	}
	sp := obs.StartPhase(s.Trace, "diag_solve")
	defer sp.End()
	fz := s.newACFactorizer(2*math.Pi*freqs[0], op)
	defer fz.flush()
	slow := newSlowTracker(s.Trace)
	defer slow.flush(s.Trace)
	var plan *sparse.DiagPlan
	if fz.sym != nil {
		p, err := s.acShared().ensureDiagPlan(fz.sym, nodeIdx)
		if err != nil {
			return nil, fmt.Errorf("analysis: diag sweep plan: %w", err)
		}
		plan = p
	}
	diag := make([]complex128, len(nodeIdx))
	b := make([]complex128, n)
	x := make([]complex128, n)
	for k, f := range freqs {
		if err := acerr.Ctx(ctx); err != nil {
			return nil, err
		}
		omega := 2 * math.Pi * f
		var t0 time.Time
		if slow != nil {
			t0 = time.Now()
		}
		slv, err := fz.at(omega, nil)
		if err != nil {
			return nil, fmt.Errorf("analysis: impedance at %g Hz: %w", f, err)
		}
		kind := fz.kind
		if num, ok := slv.(*sparse.Numeric); ok && plan != nil {
			// Refactor succeeded under the frozen pivot order, so the plan's
			// reach sets describe exactly this factorization.
			if err := num.SolveDiagInto(diag, plan); err != nil {
				return nil, fmt.Errorf("analysis: impedance at %g Hz: %w", f, err)
			}
			for i := range nodeIdx {
				out[i][k] = diag[i]
			}
			fz.diagSolves++
			fz.diagRows += plan.RowsPerSolve()
			kind = solveKindDiag
		} else {
			// Fallback factorization (collapsed pivot, drift, or a failed
			// symbolic build): its pivot order is its own, so the frozen
			// reach sets do not apply — run the full per-node substitutions.
			fz.diagFallbacks++
			for i, idx := range nodeIdx {
				b[idx] = 1 // 1 A injection into the node
				err := slv.SolveInto(x, b)
				b[idx] = 0 // b stays all-zero between solves
				if err != nil {
					return nil, fmt.Errorf("analysis: impedance at %g Hz: %w", f, err)
				}
				out[i][k] = x[idx]
			}
		}
		fz.solves += int64(len(nodeIdx))
		if slow != nil {
			slow.note(f, time.Since(t0), kind)
		}
	}
	return out, nil
}

// Impedance computes the driving-point impedance of one node across
// frequency (unit AC current injection, reading the same node's voltage).
func (s *Sim) Impedance(ctx context.Context, freqs []float64, op *mna.OpPoint, node string) (*wave.Wave, error) {
	idx, ok := s.Sys.NodeOf(node)
	if !ok || idx < 0 {
		return nil, fmt.Errorf("analysis: cannot probe node %q: %w", node, acerr.ErrUnknownNode)
	}
	z, err := s.ImpedanceMatrixColumns(ctx, freqs, op, []int{idx})
	if err != nil {
		return nil, err
	}
	w := wave.New("z("+node+")", append([]float64(nil), freqs...), z[0])
	w.XUnit = "Hz"
	w.YUnit = "Ohm"
	w.LogX = true
	return w, nil
}
