// Package analysis implements the circuit analyses the tool depends on:
// DC operating point (Newton-Raphson with step damping, gmin stepping, and
// source stepping homotopies), DC and temperature sweeps, small-signal AC
// sweeps (with a shared-factorization multi-node fast path used by the
// all-nodes stability run), and transient simulation (trapezoidal or
// backward-Euler companion integration). It is the Spectre substitute the
// reproduction runs on.
package analysis

import (
	"context"
	"fmt"
	"math"

	"acstab/internal/acerr"
	"acstab/internal/linalg"
	"acstab/internal/mna"
	"acstab/internal/obs"
	"acstab/internal/sparse"
	"acstab/internal/wave"
)

// Solver counters. Increments happen at solve granularity (one atomic add
// per sweep or Newton solve, never per matrix entry), so the
// instrumentation cost is invisible next to a factorization.
var (
	mACFactorizations = obs.GetCounter("acstab_ac_factorizations_total")
	mACSolves         = obs.GetCounter("acstab_ac_solves_total")
	mNewtonIterations = obs.GetCounter("acstab_newton_iterations_total")
	mOPSolves         = obs.GetCounter("acstab_op_solves_total")
)

// Options tunes the solvers.
type Options struct {
	AbsTol  float64 // branch-current tolerance (A)
	VnTol   float64 // node-voltage tolerance (V)
	RelTol  float64 // relative tolerance
	Gmin    float64 // junction shunt conductance
	MaxIter int     // Newton iteration limit per solve
	// MaxStepV damps Newton: no node voltage moves more than this per
	// iteration.
	MaxStepV float64
	// Matrix selects the linear solver for AC sweeps: auto (0), dense (1),
	// sparse (2). DC always uses the dense solver (systems are re-assembled
	// each Newton iteration and stay small in this repo's workloads).
	Matrix MatrixMode
	// SparseThreshold is the system size above which auto mode picks the
	// sparse solver.
	SparseThreshold int
}

// MatrixMode selects the AC linear solver.
type MatrixMode int

// Matrix modes.
const (
	MatrixAuto MatrixMode = iota
	MatrixDense
	MatrixSparse
)

// DefaultOptions returns the solver defaults documented in DESIGN.md.
func DefaultOptions() Options {
	return Options{
		AbsTol:          1e-12,
		VnTol:           1e-9,
		RelTol:          1e-6,
		Gmin:            1e-12,
		MaxIter:         200,
		MaxStepV:        1.0,
		SparseThreshold: 64,
	}
}

// Sim couples a compiled system with solver options.
type Sim struct {
	Sys *mna.System
	Opt Options
	// Trace, when non-nil, accumulates solver counters (factorizations,
	// solves, Newton iterations) for the run-level trace in addition to
	// the process-wide obs registry.
	Trace *obs.Run
}

// New returns a simulator over the compiled system with default options.
func New(sys *mna.System) *Sim {
	return &Sim{Sys: sys, Opt: DefaultOptions()}
}

// ErrNoConvergence is returned when every DC homotopy fails. It is the
// same sentinel the public package exposes as acstab.ErrNoConvergence.
var ErrNoConvergence = acerr.ErrNoConvergence

// assembleFn stamps the companion system at candidate x.
type assembleFn func(a mna.RealAdder, b []float64, x []float64)

// newton runs damped Newton iteration with the given assembler, starting
// from x0. It returns the converged solution. A canceled ctx aborts
// between iterations — one assemble+factor+solve at most after the
// cancellation lands.
func (s *Sim) newton(ctx context.Context, assemble assembleFn, x0 []float64) ([]float64, error) {
	n := s.Sys.NumUnknowns()
	nn := s.Sys.NumNodes()
	x := append([]float64(nil), x0...)
	a := linalg.NewMatrix(n)
	b := make([]float64, n)
	iters := 0
	defer func() {
		mNewtonIterations.Add(int64(iters))
		s.Trace.Add("newton_iterations", int64(iters))
	}()
	for iter := 0; iter < s.Opt.MaxIter; iter++ {
		if err := acerr.Ctx(ctx); err != nil {
			return nil, err
		}
		iters++
		a.Zero()
		for i := range b {
			b[i] = 0
		}
		assemble(a, b, x)
		f, err := linalg.Factor(a)
		if err != nil {
			return nil, fmt.Errorf("analysis: singular matrix during Newton: %w", err)
		}
		xn, err := f.Solve(b)
		if err != nil {
			return nil, err
		}
		// Damping: bound the largest node-voltage step.
		maxdv := 0.0
		for i := 0; i < nn; i++ {
			if dv := math.Abs(xn[i] - x[i]); dv > maxdv {
				maxdv = dv
			}
		}
		if s.Opt.MaxStepV > 0 && maxdv > s.Opt.MaxStepV {
			k := s.Opt.MaxStepV / maxdv
			for i := range xn {
				xn[i] = x[i] + k*(xn[i]-x[i])
			}
		}
		converged := true
		for i := range xn {
			tol := s.Opt.AbsTol
			if i < nn {
				tol = s.Opt.VnTol
			}
			lim := tol + s.Opt.RelTol*math.Max(math.Abs(xn[i]), math.Abs(x[i]))
			if math.Abs(xn[i]-x[i]) > lim {
				converged = false
				break
			}
		}
		x = xn
		if converged {
			return x, nil
		}
	}
	return nil, ErrNoConvergence
}

// OP computes the DC operating point. On plain-Newton failure it falls
// back to gmin stepping and then source stepping. A canceled ctx aborts
// the Newton loops between iterations with an error wrapping
// acerr.ErrCanceled.
func (s *Sim) OP(ctx context.Context) (*mna.OpPoint, error) {
	mOPSolves.Inc()
	s.Trace.Add("op_solves", 1)
	// Initial guess: zeros, overridden by any .nodeset hints.
	zero := make([]float64, s.Sys.NumUnknowns())
	for node, v := range s.Sys.Ckt.NodeSet {
		if idx, ok := s.Sys.NodeOf(node); ok && idx >= 0 {
			zero[idx] = v
		}
	}
	stamp := func(gshunt, srcScale float64) assembleFn {
		return func(a mna.RealAdder, b []float64, x []float64) {
			s.Sys.StampDC(a, b, x, mna.DCOptions{
				Gmin:         s.Opt.Gmin,
				SrcScale:     srcScale,
				GminToGround: gshunt,
			})
		}
	}
	// Plain Newton.
	if x, err := s.newton(ctx, stamp(0, 1), zero); err == nil {
		return s.Sys.Linearize(x, s.Opt.Gmin), nil
	} else if cerr := acerr.Ctx(ctx); cerr != nil {
		// Cancellation must not cascade into the homotopies.
		return nil, cerr
	}
	// Gmin stepping: heavy shunt first, relax, warm start each stage.
	x := zero
	ok := true
	for g := 1e-2; g >= 1e-13; g /= 10 {
		xn, err := s.newton(ctx, stamp(g, 1), x)
		if err != nil {
			ok = false
			break
		}
		x = xn
	}
	if cerr := acerr.Ctx(ctx); cerr != nil {
		return nil, cerr
	}
	if ok {
		if xn, err := s.newton(ctx, stamp(0, 1), x); err == nil {
			return s.Sys.Linearize(xn, s.Opt.Gmin), nil
		}
	}
	// Source stepping.
	x = zero
	for scale := 0.05; ; scale += 0.05 {
		if scale > 1 {
			scale = 1
		}
		xn, err := s.newton(ctx, stamp(0, scale), x)
		if err != nil {
			if cerr := acerr.Ctx(ctx); cerr != nil {
				return nil, cerr
			}
			return nil, fmt.Errorf("%w (source stepping failed at scale %.2f)", ErrNoConvergence, scale)
		}
		x = xn
		if scale == 1 {
			return s.Sys.Linearize(x, s.Opt.Gmin), nil
		}
	}
}

// NodeVoltage reads a node voltage from an operating point.
func (s *Sim) NodeVoltage(op *mna.OpPoint, node string) (float64, error) {
	idx, ok := s.Sys.NodeOf(node)
	if !ok {
		return 0, fmt.Errorf("analysis: %w %q", acerr.ErrUnknownNode, node)
	}
	if idx < 0 {
		return 0, nil
	}
	return op.X[idx], nil
}

// SourceCurrent reads the branch current of a voltage-defined element.
func (s *Sim) SourceCurrent(op *mna.OpPoint, elem string) (float64, error) {
	br, ok := s.Sys.BranchOf(elem)
	if !ok {
		return 0, fmt.Errorf("analysis: element %q has no branch current", elem)
	}
	return op.X[br], nil
}

// complexSolverFor builds the AC matrix+solver pair sized for the system.
func (s *Sim) useSparse() bool {
	switch s.Opt.Matrix {
	case MatrixDense:
		return false
	case MatrixSparse:
		return true
	default:
		return s.Sys.NumUnknowns() > s.Opt.SparseThreshold
	}
}

// ACResult holds an AC sweep: per-frequency solution vectors.
type ACResult struct {
	sys   *mna.System
	Freqs []float64
	// Sol[k] is the MNA solution vector at Freqs[k].
	Sol [][]complex128
}

// NodeWave returns the complex node voltage across frequency.
func (r *ACResult) NodeWave(node string) (*wave.Wave, error) {
	idx, ok := r.sys.NodeOf(node)
	if !ok {
		return nil, fmt.Errorf("analysis: %w %q", acerr.ErrUnknownNode, node)
	}
	y := make([]complex128, len(r.Freqs))
	for k := range r.Freqs {
		if idx >= 0 {
			y[k] = r.Sol[k][idx]
		}
	}
	w := wave.New("v("+node+")", append([]float64(nil), r.Freqs...), y)
	w.XUnit = "Hz"
	w.YUnit = "V"
	w.LogX = true
	return w, nil
}

// BranchWave returns the complex branch current of a voltage-defined
// element across frequency.
func (r *ACResult) BranchWave(elem string) (*wave.Wave, error) {
	br, ok := r.sys.BranchOf(elem)
	if !ok {
		return nil, fmt.Errorf("analysis: element %q has no branch current", elem)
	}
	y := make([]complex128, len(r.Freqs))
	for k := range r.Freqs {
		y[k] = r.Sol[k][br]
	}
	w := wave.New("i("+elem+")", append([]float64(nil), r.Freqs...), y)
	w.XUnit = "Hz"
	w.YUnit = "A"
	w.LogX = true
	return w, nil
}

// AC runs a small-signal sweep over the given frequencies (Hz) with the
// circuit's own AC sources as excitation. A canceled ctx aborts between
// frequency points — within one linear solve of the cancellation.
func (s *Sim) AC(ctx context.Context, freqs []float64, op *mna.OpPoint) (*ACResult, error) {
	n := s.Sys.NumUnknowns()
	res := &ACResult{sys: s.Sys, Freqs: append([]float64(nil), freqs...)}
	res.Sol = make([][]complex128, len(freqs))
	sparseMode := s.useSparse()
	var dm *linalg.CMatrix
	var sm *sparse.Matrix
	if sparseMode {
		sm = sparse.New(n)
	} else {
		dm = linalg.NewCMatrix(n)
	}
	b := make([]complex128, n)
	for k, f := range freqs {
		if err := acerr.Ctx(ctx); err != nil {
			return nil, err
		}
		omega := 2 * math.Pi * f
		for i := range b {
			b[i] = 0
		}
		var x []complex128
		var err error
		if sparseMode {
			sm.Zero()
			s.Sys.StampAC(sm, b, omega, op)
			x, err = sparse.Solve(sm, b)
		} else {
			dm.Zero()
			s.Sys.StampAC(dm, b, omega, op)
			x, err = linalg.CSolveDense(dm, b)
		}
		if err != nil {
			return nil, fmt.Errorf("analysis: AC at %g Hz: %w", f, err)
		}
		res.Sol[k] = x
	}
	mACFactorizations.Add(int64(len(freqs)))
	mACSolves.Add(int64(len(freqs)))
	s.Trace.Add("ac_factorizations", int64(len(freqs)))
	s.Trace.Add("ac_solves", int64(len(freqs)))
	return res, nil
}

// ImpedanceMatrixColumns computes driving-point impedances: for every
// frequency it factors the AC matrix once and back-substitutes one RHS per
// requested node (unit current injection), returning Z[nodeIdxInList][freq].
// This is the shared-factorization fast path of the all-nodes stability
// sweep; the naive alternative (one full AC analysis per node) is kept in
// the tool package for the ablation benchmark. A canceled ctx aborts
// between frequency points — within one factorization of the
// cancellation.
func (s *Sim) ImpedanceMatrixColumns(ctx context.Context, freqs []float64, op *mna.OpPoint, nodeIdx []int) ([][]complex128, error) {
	n := s.Sys.NumUnknowns()
	out := make([][]complex128, len(nodeIdx))
	for i := range out {
		out[i] = make([]complex128, len(freqs))
	}
	sparseMode := s.useSparse()
	var dm *linalg.CMatrix
	var sm *sparse.Matrix
	if sparseMode {
		sm = sparse.New(n)
	} else {
		dm = linalg.NewCMatrix(n)
	}
	b := make([]complex128, n)
	for k, f := range freqs {
		if err := acerr.Ctx(ctx); err != nil {
			return nil, err
		}
		omega := 2 * math.Pi * f
		var solve func([]complex128) ([]complex128, error)
		if sparseMode {
			sm.Zero()
			s.Sys.StampAC(sm, nil, omega, op)
			fac, err := sparse.Factor(sm)
			if err != nil {
				return nil, fmt.Errorf("analysis: impedance at %g Hz: %w", f, err)
			}
			solve = fac.Solve
		} else {
			dm.Zero()
			s.Sys.StampAC(dm, nil, omega, op)
			fac, err := linalg.CFactor(dm)
			if err != nil {
				return nil, fmt.Errorf("analysis: impedance at %g Hz: %w", f, err)
			}
			solve = fac.Solve
		}
		for i, idx := range nodeIdx {
			for j := range b {
				b[j] = 0
			}
			b[idx] = 1 // 1 A injection into the node
			x, err := solve(b)
			if err != nil {
				return nil, err
			}
			out[i][k] = x[idx]
		}
	}
	mACFactorizations.Add(int64(len(freqs)))
	mACSolves.Add(int64(len(freqs) * len(nodeIdx)))
	s.Trace.Add("ac_factorizations", int64(len(freqs)))
	s.Trace.Add("ac_solves", int64(len(freqs)*len(nodeIdx)))
	return out, nil
}

// Impedance computes the driving-point impedance of one node across
// frequency (unit AC current injection, reading the same node's voltage).
func (s *Sim) Impedance(ctx context.Context, freqs []float64, op *mna.OpPoint, node string) (*wave.Wave, error) {
	idx, ok := s.Sys.NodeOf(node)
	if !ok || idx < 0 {
		return nil, fmt.Errorf("analysis: cannot probe node %q: %w", node, acerr.ErrUnknownNode)
	}
	z, err := s.ImpedanceMatrixColumns(ctx, freqs, op, []int{idx})
	if err != nil {
		return nil, err
	}
	w := wave.New("z("+node+")", append([]float64(nil), freqs...), z[0])
	w.XUnit = "Hz"
	w.YUnit = "Ohm"
	w.LogX = true
	return w, nil
}
