package farm

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// postBatch posts a raw body to /batch and returns status, content type,
// and body text.
func postBatch(t *testing.T, srv *httptest.Server, body string) (int, string, string) {
	t.Helper()
	resp, err := srv.Client().Post(srv.URL+"/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(b)
}

// decodeItems parses an NDJSON batch response body.
func decodeItems(t *testing.T, body string) []BatchItem {
	t.Helper()
	var items []BatchItem
	dec := json.NewDecoder(strings.NewReader(body))
	for dec.More() {
		var it BatchItem
		if err := dec.Decode(&it); err != nil {
			t.Fatalf("bad NDJSON line: %v\nbody:\n%s", err, body)
		}
		items = append(items, it)
	}
	return items
}

func TestBatchEndpointStreamsItemsInOrder(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	req, _ := json.Marshal(&BatchRequest{
		V:       WireV2,
		Netlist: tankNetlist,
		Node:    "t",
		Variants: []Variant{
			{Label: "nom"},
			{Label: "hi_r", Variables: map[string]float64{"rq": 1000}},
			{Label: "nom_again"},
		},
	})
	code, ct, body := postBatch(t, srv, string(req))
	if code != http.StatusOK {
		t.Fatalf("status %d body %q", code, body)
	}
	if ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	items := decodeItems(t, body)
	if len(items) != 3 {
		t.Fatalf("got %d items, want 3:\n%s", len(items), body)
	}
	for i, it := range items {
		if it.Index != i {
			t.Errorf("item %d has index %d — answers must stream in submission order", i, it.Index)
		}
		if it.Error != nil {
			t.Errorf("item %d failed: %+v", i, it.Error)
		}
		if len(it.Body) == 0 || it.ContentType != "application/json" {
			t.Errorf("item %d: body %d bytes, content type %q", i, len(it.Body), it.ContentType)
		}
		if it.DurationMS <= 0 {
			t.Errorf("item %d: duration %g", i, it.DurationMS)
		}
	}
	if items[0].Label != "nom" || items[1].Label != "hi_r" || items[2].Label != "nom_again" {
		t.Errorf("labels not echoed: %q %q %q", items[0].Label, items[1].Label, items[2].Label)
	}
	// nom and nom_again share a content address; the third item must have
	// been served from the compile cache.
	if !items[2].CacheHit {
		t.Error("repeated variant should be a cache hit")
	}
	// The two distinct corners really produced different answers.
	if bytes.Equal(items[0].Body, items[1].Body) {
		t.Error("variant variables had no effect on the result")
	}
	if !bytes.Equal(items[0].Body, items[2].Body) {
		t.Error("identical variants should produce identical results")
	}
}

func TestBatchItemErrorDoesNotFailBatch(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	req, _ := json.Marshal(&BatchRequest{
		V:       WireV2,
		Netlist: tankNetlist,
		Variants: []Variant{
			{Label: "bad", Variables: map[string]float64{"nosuch": 1}},
			{Label: "good"},
		},
	})
	code, _, body := postBatch(t, srv, string(req))
	if code != http.StatusOK {
		t.Fatalf("status %d body %q", code, body)
	}
	items := decodeItems(t, body)
	if len(items) != 2 {
		t.Fatalf("got %d items, want 2:\n%s", len(items), body)
	}
	bad := items[0]
	if bad.Error == nil || bad.Error.Code != CodeRunFailed ||
		!strings.Contains(bad.Error.Message, "unknown design variable") {
		t.Errorf("bad corner error = %+v", bad.Error)
	}
	if len(bad.Body) != 0 {
		t.Errorf("failed item carries a body: %q", bad.Body)
	}
	good := items[1]
	if good.Error != nil || len(good.Body) == 0 {
		t.Errorf("good corner after a failed one: err=%+v body=%d bytes", good.Error, len(good.Body))
	}
}

func TestBatchDecodeRejections(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	// GET is not allowed.
	resp, err := srv.Client().Get(srv.URL + "/batch")
	if err != nil || resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /batch: %v %v", resp.Status, err)
	}
	resp.Body.Close()

	for _, tc := range []struct {
		name, body, wantCode, wantField string
	}{
		{"malformed JSON", `{nope`, CodeBadJSON, ""},
		{"v1 on the batch endpoint",
			`{"v": 1, "netlist": "x", "variants": [{}]}`, CodeUnsupportedVersion, ""},
		{"missing version",
			`{"netlist": "x", "variants": [{}]}`, CodeUnsupportedVersion, ""},
		{"no variants",
			`{"v": 2, "netlist": "x", "variants": []}`, CodeBadOption, "variants"},
		{"bad frequency range",
			`{"v": 2, "netlist": "x", "variants": [{}], "options": {"fstart_hz": 10, "fstop_hz": 1}}`,
			CodeBadOption, "fstop_hz"},
		{"unknown format",
			`{"v": 2, "netlist": "x", "format": "yaml", "variants": [{}]}`, CodeBadOption, "format"},
		{"unknown field",
			`{"v": 2, "netlist": "x", "variants": [{}], "bogus": 1}`, CodeBadJSON, ""},
	} {
		code, _, body := postBatch(t, srv, tc.body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d body %q", tc.name, code, body)
			continue
		}
		if !strings.Contains(body, `"code":"`+tc.wantCode+`"`) {
			t.Errorf("%s: want code %s, body %q", tc.name, tc.wantCode, body)
		}
		if tc.wantField != "" && !strings.Contains(body, `"field":"`+tc.wantField+`"`) {
			t.Errorf("%s: want field %s, body %q", tc.name, tc.wantField, body)
		}
	}
}

func TestSubmitBatch(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	c := &Client{BaseURL: srv.URL}
	results, err := c.SubmitBatch(context.Background(), &BatchRequest{
		Netlist: tankNetlist,
		Node:    "t",
		Variants: []Variant{
			{Label: "a"},
			{Label: "b", Variables: map[string]float64{"rq": 1000}},
			{Label: "a2"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	for i, res := range results {
		if res.Index != i || res.Err != nil || len(res.Body) == 0 || res.Attempts != 1 {
			t.Errorf("result %d: %+v", i, res)
		}
	}
	if !results[2].CacheHit {
		t.Error("repeated variant should report a cache hit")
	}

	// A typed per-item error lands in that result's Err without failing
	// the batch call.
	results, err = c.SubmitBatch(context.Background(), &BatchRequest{
		Netlist: tankNetlist,
		Variants: []Variant{
			{Label: "bad", Variables: map[string]float64{"nosuch": 1}},
			{Label: "good"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var ie *ItemError
	if !errors.As(results[0].Err, &ie) || ie.Detail.Code != CodeRunFailed {
		t.Errorf("bad corner: err = %v", results[0].Err)
	}
	if results[1].Err != nil {
		t.Errorf("good corner: err = %v", results[1].Err)
	}
}

// TestSubmitBatchRetriesTruncatedStream simulates a worker that dies
// mid-batch: the first attempt answers only variant 0 and then ends the
// stream. SubmitBatch must re-submit only the unanswered variants, remap
// their indexes, and track per-item attempt counts.
func TestSubmitBatchRetriesTruncatedStream(t *testing.T) {
	var attempts atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		var req BatchRequest
		if err := json.Unmarshal(body, &req); err != nil {
			t.Errorf("server decode: %v", err)
			http.Error(w, "bad", http.StatusBadRequest)
			return
		}
		if req.V != WireV2 {
			t.Errorf("wire version %d on the wire, want %d", req.V, WireV2)
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		if attempts.Add(1) == 1 {
			// First attempt: 3 variants arrive, only the first is answered.
			if len(req.Variants) != 3 {
				t.Errorf("first attempt carries %d variants, want 3", len(req.Variants))
			}
			enc.Encode(BatchItem{Index: 0, Label: req.Variants[0].Label, Body: []byte("first")})
			return // clean end with variants unanswered = truncated batch
		}
		// Retry: only the unanswered variants are re-submitted, re-indexed
		// from zero within the retry request.
		if len(req.Variants) != 2 {
			t.Errorf("retry carries %d variants, want 2", len(req.Variants))
		}
		for i, v := range req.Variants {
			enc.Encode(BatchItem{Index: i, Label: v.Label, Body: []byte(v.Label)})
		}
	}))
	defer srv.Close()

	c := &Client{BaseURL: srv.URL, RetryBaseDelay: time.Millisecond, MaxRetryDelay: 2 * time.Millisecond}
	results, err := c.SubmitBatch(context.Background(), &BatchRequest{
		Netlist:  "n",
		Variants: []Variant{{Label: "a"}, {Label: "b"}, {Label: "c"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempts.Load() != 2 {
		t.Fatalf("server saw %d attempts, want 2", attempts.Load())
	}
	wantBody := []string{"first", "b", "c"}
	wantAttempts := []int{1, 2, 2}
	for i, res := range results {
		if res.Err != nil {
			t.Errorf("result %d: %v", i, res.Err)
		}
		if string(res.Body) != wantBody[i] {
			t.Errorf("result %d body %q, want %q — retry index remapping is broken", i, res.Body, wantBody[i])
		}
		if res.Attempts != wantAttempts[i] {
			t.Errorf("result %d attempts %d, want %d", i, res.Attempts, wantAttempts[i])
		}
	}
}

// TestSubmitBatchGivesUp: a worker that never answers exhausts the retry
// budget; unanswered results carry the batch-level error.
func TestSubmitBatchGivesUp(t *testing.T) {
	var attempts atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		io.Copy(io.Discard, r.Body)
		w.Header().Set("Content-Type", "application/x-ndjson")
		// 200 with an empty stream: every variant unanswered.
	}))
	defer srv.Close()

	c := &Client{BaseURL: srv.URL, MaxRetries: 1, RetryBaseDelay: time.Millisecond, MaxRetryDelay: time.Millisecond}
	results, err := c.SubmitBatch(context.Background(), &BatchRequest{
		Netlist:  "n",
		Variants: []Variant{{Label: "a"}},
	})
	if err == nil || !strings.Contains(err.Error(), "unanswered") {
		t.Fatalf("err = %v", err)
	}
	if attempts.Load() != 2 {
		t.Errorf("server saw %d attempts, want 2 (initial + 1 retry)", attempts.Load())
	}
	if results[0].Err == nil {
		t.Error("unanswered variant should carry the batch-level error")
	}
}

func TestRunBatchLocal(t *testing.T) {
	cache := NewCache(0)
	req := &BatchRequest{
		Netlist: tankNetlist,
		Node:    "t",
		Variants: []Variant{
			{Label: "nom"},
			{Label: "nom2"},
		},
	}
	opts, err := req.Options.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	var got []BatchItem
	if err := RunBatch(context.Background(), cache, req, opts, 0, nil, func(it BatchItem) {
		got = append(got, it)
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].CacheHit || !got[1].CacheHit {
		t.Fatalf("items %+v", got)
	}

	// A dead context aborts the loop with the context error instead of
	// reporting it as a per-item failure.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := RunBatch(ctx, cache, req, opts, 0, nil, func(BatchItem) {
		t.Error("emit called after cancellation")
	}); err != context.Canceled {
		t.Fatalf("canceled RunBatch: %v", err)
	}
}
