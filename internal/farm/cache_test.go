package farm

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"acstab/internal/analysis"
	"acstab/internal/netlist"
	"acstab/internal/obs"
	"acstab/internal/tool"
)

// compileTank returns a compile closure for the tank fixture with the
// given variable overrides, counting its invocations in calls.
func compileTank(calls *atomic.Int32, vars map[string]float64) func() (*tool.Compiled, error) {
	return func() (*tool.Compiled, error) {
		if calls != nil {
			calls.Add(1)
		}
		ckt, err := netlist.Parse(tankNetlist)
		if err != nil {
			return nil, err
		}
		for k, v := range vars {
			ckt.Params[k] = v
		}
		return tool.Compile(ckt, tool.DefaultOptions())
	}
}

func TestKeyFor(t *testing.T) {
	base := KeyFor(tankNetlist, nil)
	if KeyFor(tankNetlist, nil) != base {
		t.Error("same inputs should produce the same key")
	}
	if KeyFor(tankNetlist, map[string]float64{}) != base {
		t.Error("nil and empty variable maps should key identically")
	}
	if KeyFor(tankNetlist+"\n* comment", nil) == base {
		t.Error("different netlists should produce different keys")
	}
	if KeyFor(tankNetlist, map[string]float64{"rq": 1000}) == base {
		t.Error("a variable override must change the key")
	}
	if KeyFor(tankNetlist, map[string]float64{"rq": 1000}) ==
		KeyFor(tankNetlist, map[string]float64{"rq": 1001}) {
		t.Error("different variable values should produce different keys")
	}
	// The variable separator bytes must keep adjacent name/value pairs
	// from gluing together ambiguously.
	if KeyFor(tankNetlist, map[string]float64{"ab": 1, "c": 2}) ==
		KeyFor(tankNetlist, map[string]float64{"a": 1, "bc": 2}) {
		t.Error("variable name boundaries must be unambiguous")
	}
	// Two-variable maps hash in sorted order regardless of insertion order;
	// build them in both orders and spot-check stability over many rounds
	// (map iteration order is randomized per run).
	want := KeyFor(tankNetlist, map[string]float64{"a": 1, "b": 2})
	for i := 0; i < 32; i++ {
		m := map[string]float64{"b": 2, "a": 1}
		if KeyFor(tankNetlist, m) != want {
			t.Fatal("key depends on map iteration order")
		}
	}
}

func TestCacheLRUEvictionOrder(t *testing.T) {
	c := NewCache(2)
	if c.Cap() != 2 {
		t.Fatalf("cap = %d", c.Cap())
	}
	ev0 := mCacheEvictions.Value()
	ctx := context.Background()

	var callsA, callsB, callsC atomic.Int32
	keyA := KeyFor(tankNetlist, nil)
	keyB := KeyFor(tankNetlist, map[string]float64{"rq": 500})
	keyC := KeyFor(tankNetlist, map[string]float64{"rq": 700})

	get := func(key CacheKey, calls *atomic.Int32, vars map[string]float64) bool {
		t.Helper()
		_, hit, err := c.Get(ctx, key, compileTank(calls, vars))
		if err != nil {
			t.Fatal(err)
		}
		return hit
	}

	get(keyA, &callsA, nil)                           // miss: [A]
	get(keyB, &callsB, map[string]float64{"rq": 500}) // miss: [B A]
	if !get(keyA, &callsA, nil) {                     // hit, A becomes MRU: [A B]
		t.Error("A should hit")
	}
	get(keyC, &callsC, map[string]float64{"rq": 700}) // miss, evicts B (LRU): [C A]
	if got := mCacheEvictions.Value() - ev0; got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
	if c.Len() != 2 {
		t.Errorf("len = %d, want 2", c.Len())
	}
	if !get(keyA, &callsA, nil) {
		t.Error("A should still be resident after C's insert evicted B")
	}
	if get(keyB, &callsB, map[string]float64{"rq": 500}) { // recompile: B was the one evicted
		t.Error("B should have been evicted")
	}
	if a, b, cc := callsA.Load(), callsB.Load(), callsC.Load(); a != 1 || b != 2 || cc != 1 {
		t.Errorf("compile calls A=%d B=%d C=%d, want 1, 2, 1", a, b, cc)
	}
}

func TestCacheSingleFlight(t *testing.T) {
	c := NewCache(8)
	key := KeyFor(tankNetlist, nil)
	hits0, miss0 := mCacheHits.Value(), mCacheMisses.Value()

	var calls atomic.Int32
	started := make(chan struct{})
	release := make(chan struct{})
	compile := func() (*tool.Compiled, error) {
		calls.Add(1)
		close(started) // only the single compiler reaches this; a second call double-closes and panics
		<-release
		return compileTank(nil, nil)()
	}

	const workers = 8
	var wg sync.WaitGroup
	var hitCount atomic.Int32
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			comp, hit, err := c.Get(context.Background(), key, compile)
			if err != nil || comp == nil {
				t.Errorf("Get: comp=%v err=%v", comp, err)
				return
			}
			if hit {
				hitCount.Add(1)
			}
		}()
	}
	<-started
	close(release)
	wg.Wait()

	if calls.Load() != 1 {
		t.Errorf("compile ran %d times, want 1", calls.Load())
	}
	if hitCount.Load() != workers-1 {
		t.Errorf("%d hits, want %d (everyone but the compiler)", hitCount.Load(), workers-1)
	}
	if h, m := mCacheHits.Value()-hits0, mCacheMisses.Value()-miss0; h != workers-1 || m != 1 {
		t.Errorf("counter deltas hits=%d misses=%d, want %d, 1", h, m, workers-1)
	}

	// A waiter whose context is already dead gets its ctx error, not a hang.
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	blocked := &cacheEntry{key: 99, ready: make(chan struct{})}
	c.mu.Lock()
	c.byKey[99] = c.ll.PushFront(blocked)
	c.mu.Unlock()
	if _, _, err := c.Get(dead, 99, compileTank(nil, nil)); err != context.Canceled {
		t.Errorf("canceled waiter: err = %v", err)
	}
}

func TestCacheErrorNotCached(t *testing.T) {
	c := NewCache(4)
	key := KeyFor("bogus", nil)
	boom := func() (*tool.Compiled, error) {
		ckt, err := netlist.Parse("broken\nZZ\n")
		if err != nil {
			return nil, err
		}
		return tool.Compile(ckt, tool.DefaultOptions())
	}
	if _, _, err := c.Get(context.Background(), key, boom); err == nil {
		t.Fatal("failing compile should surface its error")
	}
	if c.Len() != 0 {
		t.Fatalf("failed compile left %d cached entries", c.Len())
	}
	// The key is not poisoned: the next Get compiles afresh and succeeds.
	var calls atomic.Int32
	if _, hit, err := c.Get(context.Background(), key, compileTank(&calls, nil)); err != nil || hit {
		t.Fatalf("recovery Get: hit=%v err=%v", hit, err)
	}
	if calls.Load() != 1 {
		t.Fatalf("recovery compile ran %d times", calls.Load())
	}
}

func TestCacheChecksumInvalidation(t *testing.T) {
	c := NewCache(4)
	ctx := context.Background()
	key := KeyFor(tankNetlist, nil)
	var calls atomic.Int32

	// The tank is below the auto sparse threshold; force the sparse solver
	// so the sweep builds the symbolic analysis whose checksum the cache
	// validates.
	aopt := analysis.DefaultOptions()
	aopt.Matrix = analysis.MatrixSparse
	opts := tool.DefaultOptions()
	opts.Analysis = &aopt
	compile := func() (*tool.Compiled, error) {
		calls.Add(1)
		ckt, err := netlist.Parse(tankNetlist)
		if err != nil {
			return nil, err
		}
		return tool.Compile(ckt, opts)
	}

	comp, _, err := c.Get(ctx, key, compile)
	if err != nil {
		t.Fatal(err)
	}
	// Cold entries validate trivially: no sweep has built the symbolic
	// analysis yet, so there is no checksum to compare.
	if _, warm := comp.ACChecksum(); warm {
		t.Fatal("fresh compile should not be warm yet")
	}
	if _, hit, err := c.Get(ctx, key, compileTank(&calls, nil)); err != nil || !hit {
		t.Fatalf("cold revalidation: hit=%v err=%v", hit, err)
	}

	// Warm the symbolic analysis with a real sweep, then hit once so the
	// entry records the observed checksum.
	tl, err := tool.NewFromCompiled(comp, tool.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tl.AllNodes(ctx); err != nil {
		t.Fatal(err)
	}
	if _, warm := comp.ACChecksum(); !warm {
		t.Fatal("sweep should have warmed the symbolic analysis")
	}
	if _, hit, err := c.Get(ctx, key, compileTank(&calls, nil)); err != nil || !hit {
		t.Fatalf("warm hit: hit=%v err=%v", hit, err)
	}

	// Tamper with the recorded signature to simulate pattern drift: the
	// next Get must invalidate the entry and recompile transparently.
	inv0, miss0 := mCacheInvalidations.Value(), mCacheMisses.Value()
	c.mu.Lock()
	ent := c.byKey[key].Value.(*cacheEntry)
	if !ent.sigKnown {
		t.Fatal("warm hit should have recorded the checksum")
	}
	ent.sig ^= 0xdeadbeef
	c.mu.Unlock()

	compilesBefore := calls.Load()
	comp2, hit, err := c.Get(ctx, key, compileTank(&calls, nil))
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("a drifted entry must not be served as a hit")
	}
	if comp2 == comp {
		t.Error("invalidation should have produced a fresh compile")
	}
	if calls.Load() != compilesBefore+1 {
		t.Errorf("compile calls went %d -> %d, want one recompile", compilesBefore, calls.Load())
	}
	if d := mCacheInvalidations.Value() - inv0; d != 1 {
		t.Errorf("invalidations delta = %d, want 1", d)
	}
	if d := mCacheMisses.Value() - miss0; d != 1 {
		t.Errorf("misses delta = %d, want 1 (the recompile)", d)
	}
}

// TestCacheCountersScripted drives the HTTP handler through a scripted
// submission sequence and checks the hit/miss counters move exactly as
// the cache semantics promise.
func TestCacheCountersScripted(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	hits0, miss0 := mCacheHits.Value(), mCacheMisses.Value()
	submit := func(vars string) {
		t.Helper()
		body := `{"netlist": ` + mustQuote(tankNetlist) + vars + `}`
		if code, resp := postJSON(t, srv, body); code != 200 {
			t.Fatalf("run: status %d body %q", code, resp)
		}
	}
	submit(``)                           // miss
	submit(``)                           // hit
	submit(`, "variables": {"rq": 500}`) // miss (new key)
	submit(`, "variables": {"rq": 500}`) // hit
	submit(``)                           // hit (original entry still resident)

	if h, m := mCacheHits.Value()-hits0, mCacheMisses.Value()-miss0; h != 3 || m != 2 {
		t.Errorf("counter deltas hits=%d misses=%d, want 3, 2", h, m)
	}
}

// mustQuote JSON-encodes a string for inline request bodies.
func mustQuote(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

// TestWarmResubmissionSkipsCompile is the acceptance criterion for the
// compile cache: re-submitting an identical circuit must skip the
// flatten/MNA-compile/operating-point work entirely — their phase spans
// are absent from the second run's trace — and count a cache hit.
func TestWarmResubmissionSkipsCompile(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	traced := func() *obs.Trace {
		t.Helper()
		req := `{"netlist": ` + mustQuote(tankNetlist) + `, "collect_trace": true}`
		code, body := postJSON(t, srv, req)
		if code != 200 {
			t.Fatalf("traced run: status %d body %q", code, body)
		}
		var env TracedResponse
		if err := json.Unmarshal([]byte(body), &env); err != nil {
			t.Fatal(err)
		}
		if env.Trace == nil {
			t.Fatal("no trace in envelope")
		}
		return env.Trace
	}
	phases := func(tr *obs.Trace) map[string]bool {
		out := map[string]bool{}
		for _, sp := range tr.Phases {
			out[sp.Phase] = true
		}
		return out
	}

	hits0 := mCacheHits.Value()
	cold := phases(traced())
	for _, want := range []string{"parse", "flatten", "mna_assembly", "op", "sweep"} {
		if !cold[want] {
			t.Errorf("cold run trace missing %q span (got %v)", want, cold)
		}
	}
	warm := phases(traced())
	for _, skipped := range []string{"parse", "flatten", "mna_assembly", "op"} {
		if warm[skipped] {
			t.Errorf("warm run still ran %q — the cache did not shortcut compilation (spans %v)", skipped, warm)
		}
	}
	if !warm["sweep"] {
		t.Errorf("warm run trace missing the sweep span (got %v)", warm)
	}
	if d := mCacheHits.Value() - hits0; d < 1 {
		t.Errorf("cache hits delta = %d, want >= 1", d)
	}
}
