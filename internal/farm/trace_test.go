package farm

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"acstab/internal/obs"
)

// TestTracePropagation: a traced submission returns the report unchanged
// and grafts the worker's phase spans and solver counters into the
// caller's run, with every remote span carrying attempt 1.
func TestTracePropagation(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	run := obs.StartRun("client")
	c := &Client{BaseURL: srv.URL}
	body, err := c.SubmitTraced(context.Background(), &Request{Netlist: tankNetlist}, run)
	if err != nil {
		t.Fatal(err)
	}
	run.Finish()
	if !strings.Contains(string(body), "Loop at 1 MHz") {
		t.Errorf("traced report body:\n%s", body)
	}

	tr := run.Trace()
	phases := map[string]int{}
	for _, sp := range tr.Phases {
		phases[sp.Phase]++
		if sp.Phase != "farm_submit" && sp.Attempt != 1 {
			t.Errorf("remote span %s attempt = %d, want 1", sp.Phase, sp.Attempt)
		}
	}
	for _, want := range []string{"farm_submit", "parse", "op", "sweep", "stability"} {
		if phases[want] == 0 {
			t.Errorf("missing phase %q in merged trace (got %v)", want, phases)
		}
	}
	if tr.Counters["ac_factorizations"] < 1 || tr.Counters["sweep_nodes"] < 1 {
		t.Errorf("solver counters not merged: %v", tr.Counters)
	}
	// Remote spans sit inside the local request window, after run start.
	for _, sp := range tr.Phases {
		if sp.StartNS < 0 || sp.StartNS+sp.DurationNS > tr.DurationNS {
			t.Errorf("span %s [%d, +%d] escapes the local run window %d",
				sp.Phase, sp.StartNS, sp.DurationNS, tr.DurationNS)
		}
	}
}

// TestTracePropagationRetryAttempts: when the first attempts are shed,
// the grafted spans of the successful attempt carry its attempt number.
func TestTracePropagationRetryAttempts(t *testing.T) {
	worker := httptest.NewServer(Handler())
	defer worker.Close()

	// Front door: 429 the first two attempts, then proxy to the worker.
	var tries atomic.Int64
	front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if tries.Add(1) <= 2 {
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		body, _ := io.ReadAll(r.Body)
		resp, err := http.Post(worker.URL+"/run", "application/json", strings.NewReader(string(body)))
		if err != nil {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		for k, vs := range resp.Header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
	}))
	defer front.Close()

	run := obs.StartRun("client")
	c := &Client{BaseURL: front.URL, RetryBaseDelay: time.Millisecond}
	if _, err := c.SubmitTraced(context.Background(), &Request{Netlist: tankNetlist}, run); err != nil {
		t.Fatal(err)
	}
	run.Finish()

	tr := run.Trace()
	submits, remote := 0, 0
	for _, sp := range tr.Phases {
		switch {
		case sp.Phase == "farm_submit":
			submits++
		default:
			remote++
			if sp.Attempt != 3 {
				t.Errorf("span %s attempt = %d, want 3 (two sheds first)", sp.Phase, sp.Attempt)
			}
		}
	}
	if submits != 3 {
		t.Errorf("farm_submit spans = %d, want 3", submits)
	}
	if remote == 0 {
		t.Error("no remote spans grafted")
	}
}

// TestUntracedResponseIsRaw: Submit without a run must not flip the
// envelope on — the body stays the raw rendered report.
func TestUntracedResponseIsRaw(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()
	resp, err := srv.Client().Post(srv.URL+"/run", "application/json",
		strings.NewReader(`{"netlist":"farm tank\nR1 t 0 318\nL1 t 0 25.33u\nC1 t 0 1n\n"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if h := resp.Header.Get(TraceHeader); h != "" {
		t.Errorf("untraced response carries %s=%q", TraceHeader, h)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q, want the raw text report", ct)
	}
}

// TestDebugRunsEndpoints: the flight recorder lists finished runs with
// their outcome, serves full traces by ID, 404s unknown IDs, and rejects
// non-GET methods.
func TestDebugRunsEndpoints(t *testing.T) {
	srv := httptest.NewServer(NewHandler(Config{}))
	defer srv.Close()

	c := &Client{BaseURL: srv.URL}
	if _, err := c.SubmitTraced(context.Background(), &Request{
		Netlist: tankNetlist, TraceID: "trace-xyz",
	}, obs.StartRun("client")); err != nil {
		t.Fatal(err)
	}

	var list struct {
		Runs []obs.RunSummary `json:"runs"`
	}
	resp, err := srv.Client().Get(srv.URL + "/debug/runs")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Runs) != 1 {
		t.Fatalf("runs = %+v, want 1", list.Runs)
	}
	rs := list.Runs[0]
	if rs.Outcome != "ok" || rs.Running || rs.TraceID != "trace-xyz" {
		t.Errorf("run summary = %+v", rs)
	}
	if rs.Nodes < 1 || rs.FreqPoints < 1 {
		t.Errorf("sweep volume missing: %+v", rs)
	}

	// Detail: the full worker-side trace with its phases.
	resp, err = srv.Client().Get(srv.URL + "/debug/runs/" + rs.ID)
	if err != nil {
		t.Fatal(err)
	}
	var det obs.RunDetail
	if err := json.NewDecoder(resp.Body).Decode(&det); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(det.Trace.Phases) == 0 || det.Trace.Counters["ac_factorizations"] < 1 {
		t.Errorf("run detail trace = %+v", det.Trace)
	}

	// Unknown ID.
	resp, err = srv.Client().Get(srv.URL + "/debug/runs/run-999999")
	if err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown run: %v %v", resp.Status, err)
	}
	resp.Body.Close()
	// Method check.
	resp, err = srv.Client().Post(srv.URL+"/debug/runs", "text/plain", strings.NewReader("x"))
	if err != nil || resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /debug/runs: %v %v", resp.Status, err)
	}
	resp.Body.Close()
}

// TestDebugRunsRingBound: the recorder keeps only the configured number
// of records, newest first.
func TestDebugRunsRingBound(t *testing.T) {
	srv := httptest.NewServer(NewHandler(Config{RecentRuns: 2}))
	defer srv.Close()

	c := &Client{BaseURL: srv.URL}
	for i := 0; i < 3; i++ {
		if _, err := c.Submit(context.Background(), &Request{Netlist: tankNetlist, Node: "t"}); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := srv.Client().Get(srv.URL + "/debug/runs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Runs []obs.RunSummary `json:"runs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Runs) != 2 {
		t.Errorf("runs = %d, want 2 (ring bound)", len(list.Runs))
	}
}

// TestDebugRunsDeadlineOutcome: a job killed by its deadline is recorded
// with the "deadline" outcome.
func TestDebugRunsDeadlineOutcome(t *testing.T) {
	srv := httptest.NewServer(NewHandler(Config{}))
	defer srv.Close()

	c := &Client{BaseURL: srv.URL, MaxRetries: -1}
	if _, err := c.Submit(context.Background(), &Request{
		Netlist: ladderNetlist(120), TimeoutMS: 1,
	}); err == nil {
		t.Fatal("1ms deadline should kill the job")
	}
	resp, err := srv.Client().Get(srv.URL + "/debug/runs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Runs []obs.RunSummary `json:"runs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Runs) != 1 || list.Runs[0].Outcome != "deadline" {
		t.Errorf("runs = %+v, want one deadline outcome", list.Runs)
	}
}

// TestStatuszLinksDebugRuns: /statusz advertises the flight recorder.
func TestStatuszLinksDebugRuns(t *testing.T) {
	srv := httptest.NewServer(NewHandler(Config{}))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Statusz
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.DebugRunsURL != "/debug/runs" {
		t.Errorf("debug_runs_url = %q", st.DebugRunsURL)
	}
}
