// cache.go is the worker's content-addressed compile cache — the change
// that turns the worker from a stateless proxy into a service shaped by
// its production traffic. Stability analysis is iterative: designers
// re-submit near-identical netlists (corners, temperature steps, Monte
// Carlo samples, small edits), and without a cache every re-run pays the
// full flatten → MNA compile → symbolic-analysis cost again. Entries are
// keyed by the FNV-1a fingerprint of the netlist text plus the
// design-variable overrides; each holds a tool.Compiled whose shared
// sparse {Pattern, Symbolic} factorization carries the stamp-stream
// checksum from the solver, which the cache re-validates on every warm
// hit — a circuit whose stamping drifted is evicted and recompiled rather
// than served stale. Population is single-flight: concurrent identical
// submissions share one compile, the rest block on its completion.

package farm

import (
	"container/list"
	"context"
	"encoding/binary"
	"hash/fnv"
	"io"
	"math"
	"sort"
	"sync"

	"acstab/internal/obs"
	"acstab/internal/tool"
)

// Cache telemetry: hit/miss volume, LRU evictions, checksum-mismatch
// invalidations, and the current entry count.
var (
	mCacheHits          = obs.GetCounter("acstab_cache_hits_total")
	mCacheMisses        = obs.GetCounter("acstab_cache_misses_total")
	mCacheEvictions     = obs.GetCounter("acstab_cache_evictions_total")
	mCacheInvalidations = obs.GetCounter("acstab_cache_invalidations_total")
	mCacheEntries       = obs.GetGauge("acstab_cache_entries")
)

// DefaultCacheEntries is the compiled-system cache capacity when the
// config does not set one.
const DefaultCacheEntries = 64

// CacheKey is the content address of one compiled circuit: the FNV-1a
// hash of the netlist source and the design-variable overrides. The
// variables are part of the key because netlist.Flatten evaluates
// parameter expressions — two requests differing only in a variable
// produce different compiled systems.
type CacheKey uint64

// KeyFor computes the content address of a (netlist, variables) pair.
// Variables hash in sorted order with separator bytes, so map iteration
// order cannot split one circuit across several cache entries and
// "r=1, q=2" cannot collide with "r=12, q=".
func KeyFor(netlist string, vars map[string]float64) CacheKey {
	h := fnv.New64a()
	io.WriteString(h, netlist)
	h.Write([]byte{0})
	names := make([]string, 0, len(vars))
	for k := range vars {
		names = append(names, k)
	}
	sort.Strings(names)
	var buf [8]byte
	for _, k := range names {
		io.WriteString(h, k)
		h.Write([]byte{'='})
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(vars[k]))
		h.Write(buf[:])
		h.Write([]byte{0})
	}
	return CacheKey(h.Sum64())
}

// cacheEntry is one compiled circuit, possibly still compiling. ready is
// closed when c/err are final; sig records the sparse stamp-stream
// checksum observed on the first warm hit, which later hits are checked
// against.
type cacheEntry struct {
	key   CacheKey
	ready chan struct{}
	c     *tool.Compiled
	err   error

	// sig is the observed stamp-stream checksum; sigKnown marks whether a
	// warm sweep has recorded it yet (the symbolic analysis is built
	// lazily, on the first sweep, not at compile time).
	sig      uint64
	sigKnown bool
}

// Cache is a bounded LRU of compiled circuits keyed by content address,
// with single-flight population. Safe for concurrent use.
type Cache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	byKey map[CacheKey]*list.Element
}

// NewCache returns a cache bounded to capacity entries (<=0 selects
// DefaultCacheEntries).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheEntries
	}
	return &Cache{
		cap:   capacity,
		ll:    list.New(),
		byKey: make(map[CacheKey]*list.Element),
	}
}

// Cap returns the configured capacity.
func (c *Cache) Cap() int { return c.cap }

// Len returns the current entry count (including in-flight compiles).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Get returns the compiled circuit for key, compiling it with compile on
// a miss. Concurrent Gets for the same key share one compile: the first
// caller runs it, the rest block on its completion (or their own ctx).
// The returned bool reports whether this call was served from cache —
// the first compiler and any caller that had to wait for an in-flight
// compile it did not start still counts the latter as a hit, because it
// did not pay for the compile. Failed compiles are not cached; every
// waiter sees the error once and the next Get compiles afresh. A hit
// whose sparse stamp-stream checksum no longer matches the one first
// observed for the entry (pattern drift) invalidates the entry and
// recompiles.
func (c *Cache) Get(ctx context.Context, key CacheKey, compile func() (*tool.Compiled, error)) (*tool.Compiled, bool, error) {
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		ent := el.Value.(*cacheEntry)
		c.ll.MoveToFront(el)
		c.mu.Unlock()
		select {
		case <-ent.ready:
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
		if ent.err != nil {
			// The compiler already removed the entry; report its error
			// without recounting a miss for this caller.
			return nil, false, ent.err
		}
		if stale := c.validate(ent); stale {
			mCacheInvalidations.Inc()
			c.removeEntry(key, ent)
			return c.Get(ctx, key, compile)
		}
		mCacheHits.Inc()
		return ent.c, true, nil
	}

	// Miss: publish the in-flight entry before compiling so concurrent
	// identical requests wait on it instead of compiling again.
	ent := &cacheEntry{key: key, ready: make(chan struct{})}
	el := c.ll.PushFront(ent)
	c.byKey[key] = el
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.removeLocked(back)
		mCacheEvictions.Inc()
	}
	mCacheEntries.Set(float64(c.ll.Len()))
	mCacheMisses.Inc()
	c.mu.Unlock()

	comp, err := compile()
	c.mu.Lock()
	ent.c, ent.err = comp, err
	if err != nil {
		// Do not cache failures: a canceled compile or a transient error
		// must not poison the key for later, healthier requests.
		if cur, ok := c.byKey[key]; ok && cur == el {
			c.removeLocked(cur)
			mCacheEntries.Set(float64(c.ll.Len()))
		}
	}
	c.mu.Unlock()
	close(ent.ready)
	if err != nil {
		return nil, false, err
	}
	return comp, false, nil
}

// validate checks a completed entry's stamp-stream checksum against the
// one first observed for it. It returns true when the entry is stale
// (drift: the checksum changed since first observed). A cold entry (no
// sweep has built the symbolic analysis yet) validates trivially.
func (c *Cache) validate(ent *cacheEntry) (stale bool) {
	sig, warm := ent.c.ACChecksum()
	if !warm {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !ent.sigKnown {
		ent.sig, ent.sigKnown = sig, true
		return false
	}
	return ent.sig != sig
}

// removeEntry drops the entry for key if it is still the one cached
// there (it may have been evicted, or replaced by a fresh compile).
func (c *Cache) removeEntry(key CacheKey, ent *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok && el.Value.(*cacheEntry) == ent {
		c.removeLocked(el)
		mCacheEntries.Set(float64(c.ll.Len()))
	}
}

// removeLocked unlinks an element; the caller holds the lock. Waiters
// already holding the entry pointer still resolve when its compile
// finishes — eviction only stops new lookups from finding it.
func (c *Cache) removeLocked(el *list.Element) {
	c.ll.Remove(el)
	delete(c.byKey, el.Value.(*cacheEntry).key)
}

// Stats is the cache occupancy snapshot served in /statusz.
type CacheStats struct {
	// Entries is the current entry count, Capacity the LRU bound.
	Entries  int `json:"entries"`
	Capacity int `json:"capacity"`
	// Cumulative counter values, mirrored from the acstab_cache_* metrics.
	Hits          int64 `json:"hits_total"`
	Misses        int64 `json:"misses_total"`
	Evictions     int64 `json:"evictions_total"`
	Invalidations int64 `json:"invalidations_total"`
}

// Stats snapshots the cache occupancy and the cache counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		Entries:       c.Len(),
		Capacity:      c.cap,
		Hits:          mCacheHits.Value(),
		Misses:        mCacheMisses.Value(),
		Evictions:     mCacheEvictions.Value(),
		Invalidations: mCacheInvalidations.Value(),
	}
}
