package farm

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// ladderNetlist builds an n-stage RC ladder — a deck whose all-nodes run
// takes long enough that a millisecond deadline always expires mid-solve.
func ladderNetlist(n int) string {
	var b strings.Builder
	b.WriteString("deadline ladder\nV1 n0 0 1\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "R%d n%d n%d 1k\nC%d n%d 0 1n\n", i, i, i+1, i, i+1)
	}
	return b.String()
}

func TestShedWhenSaturated(t *testing.T) {
	s := &server{cfg: Config{MaxConcurrent: 1, RetryAfter: 2 * time.Second}.withDefaults(),
		start: time.Now()}
	s.sem = make(chan struct{}, 1)
	s.sem <- struct{}{} // one job "in flight"

	shed0 := mShed.Value()
	payload, _ := json.Marshal(&Request{V: 1, Netlist: tankNetlist})
	rec := httptest.NewRecorder()
	s.handleRun(rec, httptest.NewRequest(http.MethodPost, "/run", strings.NewReader(string(payload))))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated worker: status %d, want 429", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", ra)
	}
	var eb ErrorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil || eb.Error.Code != CodeOverloaded {
		t.Errorf("shed body = %q (err %v), want code %q", rec.Body.String(), err, CodeOverloaded)
	}
	if got := mShed.Value() - shed0; got != 1 {
		t.Errorf("shed counter moved by %d, want 1", got)
	}

	// Once the in-flight job releases its slot, the same request runs.
	<-s.sem
	rec = httptest.NewRecorder()
	s.handleRun(rec, httptest.NewRequest(http.MethodPost, "/run", strings.NewReader(string(payload))))
	if rec.Code != http.StatusOK {
		t.Fatalf("after drain: status %d, body %s", rec.Code, rec.Body.String())
	}
}

func TestClientRetriesShedThenSucceeds(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			writeErr(w, http.StatusTooManyRequests, CodeOverloaded, "busy")
			return
		}
		w.Write([]byte("ok"))
	}))
	defer srv.Close()

	c := &Client{BaseURL: srv.URL, RetryBaseDelay: time.Millisecond, MaxRetryDelay: 5 * time.Millisecond}
	body, err := c.Submit(context.Background(), &Request{Netlist: tankNetlist})
	if err != nil {
		t.Fatalf("submit after two sheds: %v", err)
	}
	if string(body) != "ok" {
		t.Errorf("body = %q", body)
	}
	if n := hits.Load(); n != 3 {
		t.Errorf("server saw %d attempts, want 3 (two 429s then success)", n)
	}
}

func TestClientDoesNotRetryRejections(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		writeErr(w, http.StatusUnprocessableEntity, CodeRunFailed, "bad deck")
	}))
	defer srv.Close()

	c := &Client{BaseURL: srv.URL, RetryBaseDelay: time.Millisecond}
	_, err := c.Submit(context.Background(), &Request{Netlist: "x"})
	var se *StatusError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *StatusError", err)
	}
	if se.StatusCode != http.StatusUnprocessableEntity || se.Code != CodeRunFailed {
		t.Errorf("StatusError = %+v", se)
	}
	if se.Retryable() {
		t.Error("422 should not be retryable")
	}
	if n := hits.Load(); n != 1 {
		t.Errorf("server saw %d attempts, want 1", n)
	}
}

func TestWireVersionAndUnknownFields(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	code, body := postJSON(t, srv, `{"v": 2, "netlist": "x"}`)
	if code != http.StatusBadRequest || !strings.Contains(body, CodeUnsupportedVersion) {
		t.Errorf("future version: status %d, body %q", code, body)
	}
	code, body = postJSON(t, srv, `{"netlist": "x", "bogus_field": 1}`)
	if code != http.StatusBadRequest || !strings.Contains(body, CodeBadJSON) {
		t.Errorf("unknown field: status %d, body %q", code, body)
	}
}

func TestDeadlineExceededSurfacesInMetrics(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	deadline0, _ := promValue(t, getText(t, srv, "/metrics"), "acstab_farm_deadline_exceeded_total")

	// MaxRetries < 0 disables retries: a job that blew its own deadline
	// would blow it again.
	c := &Client{BaseURL: srv.URL, MaxRetries: -1}
	_, err := c.Submit(context.Background(), &Request{Netlist: ladderNetlist(120), TimeoutMS: 1})
	var se *StatusError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *StatusError", err)
	}
	if se.StatusCode != http.StatusGatewayTimeout || se.Code != CodeDeadlineExceeded {
		t.Fatalf("StatusError = %+v, want 504 %s", se, CodeDeadlineExceeded)
	}

	deadline1, ok := promValue(t, getText(t, srv, "/metrics"), "acstab_farm_deadline_exceeded_total")
	if !ok || deadline1 != deadline0+1 {
		t.Errorf("deadline_exceeded_total = %g (ok=%v), want %g", deadline1, ok, deadline0+1)
	}

	// The counter also shows in the /statusz overload section.
	var st Statusz
	if err := json.Unmarshal([]byte(getText(t, srv, "/statusz")), &st); err != nil {
		t.Fatal(err)
	}
	if st.Overload.DeadlineExceeded < 1 {
		t.Errorf("statusz overload = %+v, want deadline count >= 1", st.Overload)
	}
	if st.Overload.MaxConcurrent < 1 {
		t.Errorf("statusz max_concurrent = %d, want >= 1", st.Overload.MaxConcurrent)
	}
}

func TestClassifyClientDisconnect(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := httptest.NewRequest(http.MethodPost, "/run", nil).WithContext(ctx)
	cancel0 := mCanceled.Value()
	status, code := classifyRunError(r, fmt.Errorf("wrap: %w", context.Canceled))
	if status != 499 || code != CodeClientClosed {
		t.Errorf("classify = %d %s, want 499 %s", status, code, CodeClientClosed)
	}
	if mCanceled.Value() != cancel0+1 {
		t.Error("canceled counter did not move")
	}
}

// getText GETs a path and returns the body.
func getText(t *testing.T, srv *httptest.Server, path string) string {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b strings.Builder
	if _, err := io.Copy(&b, resp.Body); err != nil {
		t.Fatal(err)
	}
	return b.String()
}
