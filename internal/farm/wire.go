// wire.go is the farm's request decode layer, shared by the v1 (/run)
// and v2 (/batch) endpoints. Historically the /run handler grew three
// ad-hoc validation paths — the wire-version check, unknown-field
// rejection, and options defaulting scattered through the run path — so
// the worker's defaults and the CLI's could drift apart. DecodeRequest
// and DecodeBatchRequest now funnel both endpoints through one strict
// decoder and one RequestOptions.Normalize, and every rejection carries a
// typed code (plus the offending field for bad_option) that clients can
// dispatch on.

package farm

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"

	"acstab/internal/tool"
)

// WireV2 is the batch wire-format version: one netlist, N variants,
// streamed NDJSON BatchItem results. BatchRequests must declare it
// explicitly — there is no legacy shorthand to stay compatible with.
const WireV2 = 2

// FieldError is a request-option rejection tied to one wire field. The
// worker maps it to {"error":{code:"bad_option",field:...}} so a client
// can point at the exact knob instead of re-reading a prose message.
type FieldError struct {
	// Field is the JSON field name as it appears on the wire.
	Field string
	// Reason says what is wrong with the value.
	Reason string
}

// Error implements the error interface.
func (e *FieldError) Error() string {
	return fmt.Sprintf("option %s: %s", e.Field, e.Reason)
}

// Normalize maps the wire options to tool.Options: zero values take the
// documented server defaults, set values are validated, and any rejection
// comes back as a *FieldError naming the offending wire field. This is
// the single defaulting path — the v1 and v2 endpoints, the local Run
// helper, and the CLI all agree because they all call it.
func (o RequestOptions) Normalize() (tool.Options, error) {
	opts := tool.DefaultOptions()
	if o.FStartHz < 0 {
		return opts, &FieldError{Field: "fstart_hz", Reason: "must be >= 0 (0 = server default)"}
	}
	if o.FStartHz > 0 {
		opts.FStart = o.FStartHz
	}
	if o.FStopHz < 0 {
		return opts, &FieldError{Field: "fstop_hz", Reason: "must be >= 0 (0 = server default)"}
	}
	if o.FStopHz > 0 {
		opts.FStop = o.FStopHz
	}
	if opts.FStop <= opts.FStart {
		return opts, &FieldError{Field: "fstop_hz",
			Reason: fmt.Sprintf("sweep stop %g Hz not above start %g Hz", opts.FStop, opts.FStart)}
	}
	if o.PointsPerDecade < 0 {
		return opts, &FieldError{Field: "points_per_decade", Reason: "must be >= 0 (0 = server default)"}
	}
	if o.PointsPerDecade > 0 {
		opts.PointsPerDecade = o.PointsPerDecade
	}
	if o.CoarsePointsPerDecade < 0 {
		return opts, &FieldError{Field: "coarse_points_per_decade", Reason: "must be >= 0 (0 = adaptive off)"}
	}
	if o.CoarsePointsPerDecade > 0 {
		opts.CoarsePointsPerDecade = o.CoarsePointsPerDecade
	}
	if o.RefinePointsPerDecade < 0 {
		return opts, &FieldError{Field: "refine_points_per_decade", Reason: "must be >= 0 (0 = server default)"}
	}
	if o.RefinePointsPerDecade > 0 {
		if o.CoarsePointsPerDecade <= 0 {
			return opts, &FieldError{Field: "refine_points_per_decade",
				Reason: "requires coarse_points_per_decade > 0 (adaptive sweeps only)"}
		}
		opts.RefinePointsPerDecade = o.RefinePointsPerDecade
	}
	if o.RefineThreshold < 0 {
		return opts, &FieldError{Field: "refine_threshold", Reason: "must be >= 0 (0 = server default)"}
	}
	if o.RefineThreshold > 0 {
		if o.CoarsePointsPerDecade <= 0 {
			return opts, &FieldError{Field: "refine_threshold",
				Reason: "requires coarse_points_per_decade > 0 (adaptive sweeps only)"}
		}
		opts.RefineThreshold = o.RefineThreshold
	}
	if opts.CoarsePointsPerDecade > 0 {
		if o.Naive {
			return opts, &FieldError{Field: "coarse_points_per_decade",
				Reason: "adaptive sweeps and naive mode are mutually exclusive"}
		}
		if opts.RefinePointsPerDecade > 0 && opts.RefinePointsPerDecade < opts.CoarsePointsPerDecade {
			return opts, &FieldError{Field: "refine_points_per_decade",
				Reason: fmt.Sprintf("must be >= coarse_points_per_decade (%d)", opts.CoarsePointsPerDecade)}
		}
	}
	if o.LoopTol < 0 {
		return opts, &FieldError{Field: "loop_tol", Reason: "must be >= 0 (0 = server default)"}
	}
	if o.LoopTol > 0 {
		opts.LoopTol = o.LoopTol
	}
	if o.Workers < 0 {
		return opts, &FieldError{Field: "workers", Reason: "must be >= 0 (0 = GOMAXPROCS)"}
	}
	opts.Workers = o.Workers
	// The worker count is wire-supplied: without a ceiling a remote caller
	// can demand millions of sweep goroutines per job. Sweep workers are
	// CPU-bound, so anything beyond the CPU count only burns memory; the
	// ask is clamped silently (it is a tuning hint, not a contract).
	if max := MaxWireWorkers(); opts.Workers > max {
		opts.Workers = max
	}
	opts.Naive = o.Naive
	opts.SkipNodes = o.SkipNodes
	opts.OnlyNodes = o.OnlyNodes
	opts.OnlySubckt = o.OnlySubckt
	return opts, nil
}

// MaxWireWorkers is the server-side ceiling on the wire-supplied sweep
// worker count: GOMAXPROCS, the point beyond which additional CPU-bound
// sweep workers stop helping. Normalize clamps larger asks to it.
func MaxWireWorkers() int { return runtime.GOMAXPROCS(0) }

// checkFormat validates the response-format selector shared by Request
// and BatchRequest.
func checkFormat(format string) error {
	switch format {
	case "", "text", "csv", "json", "annotate":
		return nil
	}
	return &FieldError{Field: "format",
		Reason: fmt.Sprintf("unknown format %q (text, csv, json, annotate)", format)}
}

// WireError is a request rejection produced during decode: the HTTP
// status to answer with plus the structured error detail for the body.
type WireError struct {
	Status int
	Detail ErrorDetail
}

// Error implements the error interface.
func (e *WireError) Error() string { return e.Detail.Message }

// wireErrorFrom wraps an options/format validation failure, extracting
// the field name from FieldErrors.
func wireErrorFrom(err error) *WireError {
	we := &WireError{Status: http.StatusBadRequest,
		Detail: ErrorDetail{Code: CodeBadOption, Message: err.Error()}}
	if fe, ok := err.(*FieldError); ok {
		we.Detail.Field = fe.Field
	}
	return we
}

// decodeStrict parses one JSON document rejecting unknown fields, so
// schema drift (a misspelled option, a v3 field) surfaces as a 400
// instead of a silently ignored knob.
func decodeStrict(body []byte, into any) *WireError {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return &WireError{Status: http.StatusBadRequest,
			Detail: ErrorDetail{Code: CodeBadJSON, Message: fmt.Sprintf("bad request JSON: %v", err)}}
	}
	return nil
}

// DecodeRequest parses and validates a v1 job: strict JSON decode,
// wire-version check, format check, and options normalization. It
// returns the request together with the normalized tool options, or a
// WireError carrying the HTTP status and structured error detail.
func DecodeRequest(body []byte) (*Request, tool.Options, *WireError) {
	var req Request
	if we := decodeStrict(body, &req); we != nil {
		return nil, tool.Options{}, we
	}
	if req.V != 0 && req.V != WireVersion {
		return nil, tool.Options{}, &WireError{Status: http.StatusBadRequest,
			Detail: ErrorDetail{Code: CodeUnsupportedVersion,
				Message: fmt.Sprintf("unsupported wire version %d (worker speaks %d and %d)", req.V, WireVersion, WireV2)}}
	}
	if err := checkFormat(req.Format); err != nil {
		return nil, tool.Options{}, wireErrorFrom(err)
	}
	opts, err := req.Options.Normalize()
	if err != nil {
		return nil, tool.Options{}, wireErrorFrom(err)
	}
	return &req, opts, nil
}

// DecodeBatchRequest parses and validates a v2 batch: strict JSON
// decode, explicit wire-version check (batches must say v=2), variant
// count bounds, format check, and options normalization through the same
// Normalize path the v1 endpoint uses.
func DecodeBatchRequest(body []byte) (*BatchRequest, tool.Options, *WireError) {
	var req BatchRequest
	if we := decodeStrict(body, &req); we != nil {
		return nil, tool.Options{}, we
	}
	if req.V != WireV2 {
		return nil, tool.Options{}, &WireError{Status: http.StatusBadRequest,
			Detail: ErrorDetail{Code: CodeUnsupportedVersion,
				Message: fmt.Sprintf("batch requests require wire version %d (got %d)", WireV2, req.V)}}
	}
	if len(req.Variants) == 0 {
		return nil, tool.Options{}, &WireError{Status: http.StatusBadRequest,
			Detail: ErrorDetail{Code: CodeBadOption, Field: "variants",
				Message: "batch carries no variants"}}
	}
	if len(req.Variants) > MaxBatchVariants {
		return nil, tool.Options{}, &WireError{Status: http.StatusBadRequest,
			Detail: ErrorDetail{Code: CodeBadOption, Field: "variants",
				Message: fmt.Sprintf("batch of %d variants exceeds the %d-variant limit", len(req.Variants), MaxBatchVariants)}}
	}
	if err := checkFormat(req.Format); err != nil {
		return nil, tool.Options{}, wireErrorFrom(err)
	}
	opts, err := req.Options.Normalize()
	if err != nil {
		return nil, tool.Options{}, wireErrorFrom(err)
	}
	return &req, opts, nil
}
