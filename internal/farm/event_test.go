package farm

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"acstab/internal/obs"
)

// decodeEvents unmarshals every retained wide event of the logger, keeping
// only events with the given name ("" keeps all).
func decodeEvents(t *testing.T, log *obs.EventLogger, name string) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, se := range log.Events(0, 0) {
		var ev map[string]any
		if err := json.Unmarshal(se.Event, &ev); err != nil {
			t.Fatalf("stored event is not JSON: %v\n%s", err, se.Event)
		}
		if name == "" || ev["event"] == name {
			out = append(out, ev)
		}
	}
	return out
}

// TestRunEmitsExactlyOneWideEvent is the canonical-event contract: one
// /run request produces exactly one "run" event — no separate middleware
// line — carrying the outcome, wall time, sweep volume, and solver-counter
// deltas, correlated with the flight recorder by trace_id.
func TestRunEmitsExactlyOneWideEvent(t *testing.T) {
	log := obs.NewEventLogger(nil)
	srv := httptest.NewServer(NewHandler(Config{Log: log}))
	defer srv.Close()

	code, _ := postJSON(t, srv,
		`{"netlist":"`+strings.ReplaceAll(tankNetlist, "\n", `\n`)+`","trace_id":"tr-wide-1"}`)
	if code != 200 {
		t.Fatalf("run failed with %d", code)
	}

	all := decodeEvents(t, log, "")
	if len(all) != 1 {
		t.Fatalf("one /run request must produce exactly one event, got %d: %v", len(all), all)
	}
	ev := all[0]
	if ev["event"] != "run" {
		t.Fatalf("event name %v, want run", ev["event"])
	}
	if ev["outcome"] != "ok" || ev["status"] != float64(200) {
		t.Errorf("outcome/status = %v/%v", ev["outcome"], ev["status"])
	}
	if ev["trace_id"] != "tr-wide-1" {
		t.Errorf("trace_id = %v", ev["trace_id"])
	}
	if dur, ok := ev["duration_ms"].(float64); !ok || dur <= 0 {
		t.Errorf("duration_ms = %v", ev["duration_ms"])
	}
	// Sweep volume and result shape ride on the event.
	if n, ok := ev["nodes"].(float64); !ok || n < 1 {
		t.Errorf("nodes = %v, want >= 1", ev["nodes"])
	}
	if fp, ok := ev["freq_points"].(float64); !ok || fp <= 0 {
		t.Errorf("freq_points = %v", ev["freq_points"])
	}
	if _, ok := ev["peaks"].(float64); !ok {
		t.Errorf("peaks missing: %v", ev)
	}
	// Solver-counter deltas for this run, nested under "solver".
	solver, ok := ev["solver"].(map[string]any)
	if !ok {
		t.Fatalf("solver deltas missing: %v", ev)
	}
	if v, ok := solver["ac_solves"].(float64); !ok || v <= 0 {
		t.Errorf("solver.ac_solves = %v, want > 0", solver["ac_solves"])
	}

	// Correlation: the event's request_id and trace_id match the flight
	// recorder's entry for the same run.
	resp, err := srv.Client().Get(srv.URL + "/debug/runs")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Runs []obs.RunSummary `json:"runs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(listing.Runs) != 1 {
		t.Fatalf("flight recorder has %d runs, want 1", len(listing.Runs))
	}
	rec := listing.Runs[0]
	if rec.TraceID != "tr-wide-1" || ev["request_id"] != rec.ID {
		t.Errorf("event (request_id=%v trace_id=%v) does not correlate with recorder (%s, %s)",
			ev["request_id"], ev["trace_id"], rec.ID, rec.TraceID)
	}
}

func TestRunWideEventOnErrorPaths(t *testing.T) {
	log := obs.NewEventLogger(nil)
	srv := httptest.NewServer(NewHandler(Config{Log: log}))
	defer srv.Close()

	// Malformed body: still exactly one canonical event, outcome bad_json.
	if code, _ := postJSON(t, srv, "{not json"); code != 400 {
		t.Fatalf("bad JSON should 400, got %d", code)
	}
	// Broken netlist: a run-level failure.
	if code, _ := postJSON(t, srv, `{"netlist":"broken\nZZ\n"}`); code != 422 {
		t.Fatalf("broken netlist should 422, got %d", code)
	}

	runs := decodeEvents(t, log, "run")
	if len(runs) != 2 {
		t.Fatalf("2 requests must produce 2 run events, got %d", len(runs))
	}
	if runs[0]["outcome"] != CodeBadJSON {
		t.Errorf("first outcome = %v, want %s", runs[0]["outcome"], CodeBadJSON)
	}
	if runs[1]["outcome"] == "ok" || runs[1]["error"] == nil {
		t.Errorf("failed run event lacks outcome/error: %v", runs[1])
	}
	for _, ev := range runs {
		if ev["request_id"] == nil || ev["request_id"] == "" {
			t.Errorf("error event lacks request_id: %v", ev)
		}
	}
}

func TestMiddlewareEventsForNonRunRoutes(t *testing.T) {
	log := obs.NewEventLogger(nil)
	srv := httptest.NewServer(NewHandler(Config{Log: log}))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	https := decodeEvents(t, log, "http")
	if len(https) != 1 {
		t.Fatalf("got %d http events, want 1", len(https))
	}
	if https[0]["path"] != "/healthz" || https[0]["status"] != float64(200) {
		t.Errorf("http event = %v", https[0])
	}
}

func TestDebugRunsFilters(t *testing.T) {
	log := obs.NewEventLogger(nil)
	srv := httptest.NewServer(NewHandler(Config{Log: log}))
	defer srv.Close()

	good := `{"netlist":"` + strings.ReplaceAll(tankNetlist, "\n", `\n`) + `"}`
	for i := 0; i < 2; i++ {
		if code, body := postJSON(t, srv, good); code != 200 {
			t.Fatalf("run %d failed: %d %s", i, code, body)
		}
	}
	if code, _ := postJSON(t, srv, `{"netlist":"broken\nZZ\n"}`); code != 422 {
		t.Fatal("broken netlist should 422")
	}

	list := func(query string) []obs.RunSummary {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + "/debug/runs" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var listing struct {
			Runs []obs.RunSummary `json:"runs"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
			t.Fatal(err)
		}
		return listing.Runs
	}

	if runs := list(""); len(runs) != 3 {
		t.Fatalf("unfiltered listing has %d runs, want 3", len(runs))
	}
	oks := list("?outcome=ok")
	if len(oks) != 2 {
		t.Fatalf("outcome=ok returned %d runs, want 2", len(oks))
	}
	for _, r := range oks {
		if r.Outcome != "ok" {
			t.Errorf("outcome=ok returned %q", r.Outcome)
		}
	}
	errs := list("?outcome=error")
	if len(errs) != 1 || errs[0].Outcome == "ok" {
		t.Fatalf("outcome=error = %+v, want the one failed run", errs)
	}
	if runs := list("?n=1"); len(runs) != 1 {
		t.Fatalf("n=1 returned %d runs", len(runs))
	}
	if runs := list("?outcome=ok&n=1"); len(runs) != 1 || runs[0].Outcome != "ok" {
		t.Fatalf("combined filter = %+v", runs)
	}
	if runs := list("?outcome=shed"); len(runs) != 0 {
		t.Fatalf("outcome=shed should match nothing here, got %d", len(runs))
	}
}

func TestDebugEventsPaging(t *testing.T) {
	log := obs.NewEventLogger(nil)
	srv := httptest.NewServer(NewHandler(Config{Log: log}))
	defer srv.Close()

	good := `{"netlist":"` + strings.ReplaceAll(tankNetlist, "\n", `\n`) + `"}`
	for i := 0; i < 3; i++ {
		if code, _ := postJSON(t, srv, good); code != 200 {
			t.Fatal("run failed")
		}
	}

	get := func(query string) EventsPage {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + "/debug/events" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var page EventsPage
		if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
			t.Fatal(err)
		}
		return page
	}

	first := get("")
	if len(first.Events) < 3 {
		t.Fatalf("retained %d events, want >= 3 run events", len(first.Events))
	}
	if first.Next != first.Events[len(first.Events)-1].Seq {
		t.Errorf("next cursor %d != newest seq %d", first.Next, first.Events[len(first.Events)-1].Seq)
	}
	// Resuming from the cursor sees only what happened since (the GET
	// /debug/events above itself logged one http event).
	second := get("?since=" + jsonNum(first.Next))
	for _, se := range second.Events {
		if se.Seq <= first.Next {
			t.Errorf("cursor leak: seq %d <= since %d", se.Seq, first.Next)
		}
	}
	if limited := get("?n=2"); len(limited.Events) != 2 {
		t.Errorf("n=2 returned %d events", len(limited.Events))
	}
}

// jsonNum renders an int64 for a query string.
func jsonNum(v int64) string {
	b, _ := json.Marshal(v)
	return string(b)
}
