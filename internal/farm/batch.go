// batch.go is wire format v2: one netlist submitted with N variant
// entries (design-variable overrides with corner labels), answered as a
// stream of NDJSON BatchItem results. The batch shape matches how the
// compile cache earns its keep — all variants share the netlist, and
// variants repeated across batches (nominal corners, bisection re-runs)
// share compiled systems — while typed per-item errors keep one bad
// corner from failing the rest of the sweep. The whole batch occupies a
// single admission slot: items execute sequentially, each item's sweep
// parallelizes internally, so a 16-variant batch loads the worker like
// one long job instead of 16 competing ones.

package farm

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"acstab/internal/obs"
	"acstab/internal/tool"
)

// MaxBatchVariants bounds the variant count of one batch.
const MaxBatchVariants = 256

// BatchRequest is one wire-v2 batch job: a netlist plus N variants to
// run it under.
type BatchRequest struct {
	// V is the wire-format version and must be WireV2.
	V int `json:"v"`
	// Netlist is the circuit source text shared by every variant.
	Netlist string `json:"netlist"`
	// Format selects the per-item rendering: text (default), csv, json,
	// annotate.
	Format string `json:"format,omitempty"`
	// Node switches every item to single-node mode when non-empty.
	Node string `json:"node,omitempty"`
	// TimeoutMS is the PER-ITEM deadline in milliseconds, capped by the
	// server maximum; 0 means "server default". The batch as a whole is
	// bounded by the client connection, not by a server-side deadline.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Options carries the sweep setup shared by every variant.
	Options RequestOptions `json:"options"`
	// Variables are base design-variable overrides applied to every
	// variant (a variant's own variables win on conflict).
	Variables map[string]float64 `json:"variables,omitempty"`
	// Variants lists the runs to perform, answered in order.
	Variants []Variant `json:"variants"`
	// TraceID is the client's correlation ID for the whole batch.
	TraceID string `json:"trace_id,omitempty"`
}

// Variant is one entry of a batch: a corner label plus the variable
// overrides that distinguish it.
type Variant struct {
	// Label tags the item in responses and logs (e.g. "ss_-40C"); it has
	// no effect on execution.
	Label string `json:"label,omitempty"`
	// Variables override design variables for this variant, on top of the
	// batch-level Variables.
	Variables map[string]float64 `json:"variables,omitempty"`
}

// BatchItem is one streamed result line of a batch response. Exactly one
// of Body and Error is meaningful: a failed item carries its typed error
// and the batch continues with the next variant.
type BatchItem struct {
	// Index is the variant's position in the submitted batch.
	Index int `json:"index"`
	// Label echoes the variant's label.
	Label string `json:"label,omitempty"`
	// ContentType is the media type of Body.
	ContentType string `json:"content_type,omitempty"`
	// Body is the rendered report (base64 in JSON).
	Body []byte `json:"body,omitempty"`
	// Error is the item's typed failure, nil on success.
	Error *ErrorDetail `json:"error,omitempty"`
	// CacheHit reports whether the item was served from the worker's
	// compiled-system cache (no flatten/compile/symbolic work).
	CacheHit bool `json:"cache_hit,omitempty"`
	// DurationMS is the item's wall time on the worker.
	DurationMS float64 `json:"duration_ms"`
}

// mergeVars overlays variant variables on the batch-level base set.
func mergeVars(base, over map[string]float64) map[string]float64 {
	if len(over) == 0 {
		return base
	}
	if len(base) == 0 {
		return over
	}
	out := make(map[string]float64, len(base)+len(over))
	for k, v := range base {
		out[k] = v
	}
	for k, v := range over {
		out[k] = v
	}
	return out
}

// RunBatch executes a batch sequentially, calling emit once per variant
// in submission order — the server streams each item as it finishes, the
// CLI prints it. Item failures are reported inside the emitted item and
// do not stop the batch; only the batch context's own cancellation (the
// client hung up, the process is draining) aborts the loop, returning
// its error. itemTimeout bounds each variant (0 = unbounded beyond ctx);
// cache may be nil to compile every variant from scratch; run (nil ok)
// collects the batch's phase spans and solver counters.
func RunBatch(ctx context.Context, cache *Cache, req *BatchRequest, opts tool.Options, itemTimeout time.Duration, run *obs.Run, emit func(BatchItem)) error {
	if len(req.Netlist) > MaxNetlistBytes {
		return fmt.Errorf("farm: netlist larger than %d bytes", MaxNetlistBytes)
	}
	for i, v := range req.Variants {
		if err := ctx.Err(); err != nil {
			return err
		}
		item := BatchItem{Index: i, Label: v.Label}
		r := &Request{
			Netlist:   req.Netlist,
			Format:    req.Format,
			Node:      req.Node,
			Variables: mergeVars(req.Variables, v.Variables),
		}
		ictx, cancel := ctx, context.CancelFunc(func() {})
		if itemTimeout > 0 {
			ictx, cancel = context.WithTimeout(ctx, itemTimeout)
		}
		start := time.Now()
		body, contentType, hit, err := runCached(ictx, cache, r, opts, run)
		cancel()
		item.DurationMS = float64(time.Since(start)) / float64(time.Millisecond)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			_, code := errorCode(err)
			item.Error = &ErrorDetail{Code: code, Message: err.Error()}
		} else {
			item.Body, item.ContentType, item.CacheHit = body, contentType, hit
		}
		emit(item)
	}
	return nil
}

// handleBatch serves POST /batch: the whole batch takes one admission
// slot, items run sequentially with per-item deadlines, and results
// stream back as NDJSON — one BatchItem per line, flushed as produced,
// so the client renders corner 1 while corner 2 sweeps. Item failures
// are typed per-item errors inline in the stream; once streaming starts
// the HTTP status is committed, so a mid-batch abort surfaces as a
// truncated stream (the client re-submits the missing variants).
func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	ev := &batchEvent{}
	defer func() {
		s.emitBatchEvent(ev, time.Since(start))
	}()
	if r.Method != http.MethodPost {
		ev.outcome, ev.status = CodeMethodNotAllowed, http.StatusMethodNotAllowed
		writeErr(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "POST only")
		return
	}
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	default:
		mShed.Inc()
		rec := s.rec.Begin("batch", "", nil)
		rec.Finish("shed")
		ev.requestID, ev.outcome, ev.status = rec.ID(), "shed", http.StatusTooManyRequests
		// Batch sheds burn the error budget exactly like /run sheds do
		// (farm.go scores them in its deferred outcome hook): a worker
		// shedding every batch must not keep scoring healthy. The served
		// items are scored per-item below, so this is the only batch-level
		// Record call.
		s.slo.Record(false, time.Since(start))
		w.Header().Set("Retry-After",
			strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
		writeErr(w, http.StatusTooManyRequests, CodeOverloaded,
			fmt.Sprintf("worker at capacity (%d jobs in flight)", s.cfg.MaxConcurrent))
		return
	}
	mJobsInflight.Inc()
	defer mJobsInflight.Dec()
	body, we := readBody(r, maxBatchRequestBytes)
	if we != nil {
		rec := s.rec.Begin("batch", "", nil)
		rec.Finish(we.Detail.Code)
		ev.requestID, ev.outcome, ev.status, ev.errMsg = rec.ID(), we.Detail.Code, we.Status, we.Detail.Message
		writeWireErr(w, we)
		return
	}
	req, opts, we := DecodeBatchRequest(body)
	if we != nil {
		rec := s.rec.Begin("batch", "", nil)
		rec.Finish(we.Detail.Code)
		ev.requestID, ev.outcome, ev.status, ev.errMsg = rec.ID(), we.Detail.Code, we.Status, we.Detail.Message
		writeWireErr(w, we)
		return
	}
	ev.req, ev.traceID = req, req.TraceID

	itemTimeout := s.cfg.MaxTimeout
	if req.TimeoutMS > 0 {
		if d := time.Duration(req.TimeoutMS) * time.Millisecond; d < itemTimeout {
			itemTimeout = d
		}
	}

	run := obs.StartRun("farm/batch")
	rec := s.rec.Begin("batch", req.TraceID, run)
	ev.requestID, ev.run = rec.ID(), run

	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	err := RunBatch(r.Context(), s.cache, req, opts, itemTimeout, run, func(it BatchItem) {
		ev.items++
		if it.Error != nil {
			ev.itemErrs++
		}
		if it.CacheHit {
			ev.hits++
		}
		enc.Encode(it)
		if flusher != nil {
			flusher.Flush()
		}
		s.emitBatchItemEvent(rec.ID(), req.TraceID, it)
		// Per-item SLO: a definitively answered item (success or a
		// client-class failure like non-convergence) is good; per-item
		// deadlines burn the error budget like /run deadlines do.
		good := it.Error == nil || (it.Error.Code != CodeDeadlineExceeded && it.Error.Code != CodeClientClosed)
		s.slo.Record(good, time.Duration(it.DurationMS*float64(time.Millisecond)))
	})
	run.Finish()
	if err != nil {
		mCanceled.Inc()
		rec.Finish("canceled")
		ev.outcome, ev.status, ev.errMsg = "canceled", 499, err.Error()
		return
	}
	rec.Finish("ok")
	ev.outcome, ev.status = "ok", http.StatusOK
}

// batchEvent accumulates the one canonical wide event a /batch request
// emits, mirroring runEvent for the batch endpoint.
type batchEvent struct {
	requestID string
	traceID   string
	outcome   string
	status    int
	errMsg    string
	run       *obs.Run
	req       *BatchRequest
	items     int
	itemErrs  int
	hits      int
}

// emitBatchEvent writes the batch's canonical wide event: identity,
// outcome, item/error/cache-hit counts, and the batch-wide solver
// counter deltas.
func (s *server) emitBatchEvent(ev *batchEvent, dur time.Duration) {
	attrs := []slog.Attr{
		slog.String("request_id", ev.requestID),
		slog.String("outcome", ev.outcome),
		slog.Int("status", ev.status),
		slog.Float64("duration_ms", float64(dur)/float64(time.Millisecond)),
		slog.Int("items", ev.items),
		slog.Int("item_errors", ev.itemErrs),
		slog.Int("cache_hits", ev.hits),
	}
	if ev.traceID != "" {
		attrs = append(attrs, slog.String("trace_id", ev.traceID))
	}
	if ev.req != nil {
		attrs = append(attrs,
			slog.Int("netlist_bytes", len(ev.req.Netlist)),
			slog.Int("variants", len(ev.req.Variants)))
	}
	if ev.errMsg != "" {
		attrs = append(attrs, slog.String("error", ev.errMsg))
	}
	if ev.run != nil {
		tc := ev.run.Trace().Counters
		attrs = append(attrs,
			slog.Int64("nodes", tc["sweep_nodes"]),
			slog.Int64("freq_points", tc["sweep_freq_points"]))
	}
	s.log.Event("batch", attrs...)
}

// emitBatchItemEvent writes one per-item wide event so fleet log queries
// can chart per-corner latency and cache effectiveness without parsing
// response streams.
func (s *server) emitBatchItemEvent(requestID, traceID string, it BatchItem) {
	attrs := []slog.Attr{
		slog.String("request_id", requestID),
		slog.Int("index", it.Index),
		slog.Bool("cache_hit", it.CacheHit),
		slog.Float64("duration_ms", it.DurationMS),
	}
	if traceID != "" {
		attrs = append(attrs, slog.String("trace_id", traceID))
	}
	if it.Label != "" {
		attrs = append(attrs, slog.String("label", it.Label))
	}
	if it.Error != nil {
		attrs = append(attrs, slog.String("outcome", it.Error.Code), slog.String("error", it.Error.Message))
	} else {
		attrs = append(attrs, slog.String("outcome", "ok"))
	}
	s.log.Event("batch_item", attrs...)
}

// BatchResult is one variant's outcome as seen by Client.SubmitBatch,
// indexed like the submitted Variants slice.
type BatchResult struct {
	// Index is the variant's position in the submitted batch.
	Index int
	// Label echoes the variant's label.
	Label string
	// ContentType and Body carry the rendered report when Err is nil.
	ContentType string
	Body        []byte
	// CacheHit reports whether the worker served the item from its
	// compiled-system cache.
	CacheHit bool
	// DurationMS is the worker-side wall time of the item.
	DurationMS float64
	// Err is the item's final failure: an *ItemError for a typed per-item
	// error from the worker, or the batch-level error that kept the item
	// from being answered after all retries.
	Err error
	// Attempts counts how many submissions included this item.
	Attempts int
}

// ItemError is a typed per-item failure returned inside a batch stream.
// Per-item errors are definitive — the worker ran (or refused) exactly
// this variant — so SubmitBatch does not retry them.
type ItemError struct {
	Detail ErrorDetail
}

// Error implements the error interface.
func (e *ItemError) Error() string {
	if e.Detail.Field != "" {
		return fmt.Sprintf("farm: item failed: %s (%s): %s", e.Detail.Code, e.Detail.Field, e.Detail.Message)
	}
	return fmt.Sprintf("farm: item failed: %s: %s", e.Detail.Code, e.Detail.Message)
}

// SubmitBatch posts the batch and collects one BatchResult per variant,
// in variant order. Batch-level failures (shed, 5xx, transport errors,
// truncated streams) are retried with the client's backoff settings, and
// only the variants still missing results are re-submitted — items
// already answered, including ones answered with typed per-item errors,
// are never re-run. Each result's Attempts counts the submissions that
// included it. The returned error is the final batch-level failure, nil
// when every variant got an answer (possibly a per-item error: check
// each result's Err).
func (c *Client) SubmitBatch(ctx context.Context, req *BatchRequest) ([]BatchResult, error) {
	hc := c.HTTPClient
	if hc == nil {
		t := c.Timeout
		if t <= 0 {
			t = 5 * time.Minute
		}
		hc = &http.Client{Timeout: t}
	}
	base := c.RetryBaseDelay
	if base <= 0 {
		base = 200 * time.Millisecond
	}
	maxDelay := c.MaxRetryDelay
	if maxDelay <= 0 {
		maxDelay = 5 * time.Second
	}
	retries := c.MaxRetries
	if retries == 0 {
		retries = 3
	}
	if retries < 0 {
		retries = 0
	}

	results := make([]BatchResult, len(req.Variants))
	pending := make([]int, len(req.Variants))
	for i, v := range req.Variants {
		results[i] = BatchResult{Index: i, Label: v.Label}
		pending[i] = i
	}

	var lastErr error
	for attempt := 0; ; attempt++ {
		wire := *req
		wire.V = WireV2
		wire.Variants = make([]Variant, len(pending))
		for wi, orig := range pending {
			wire.Variants[wi] = req.Variants[orig]
			results[orig].Attempts++
		}
		payload, err := json.Marshal(&wire)
		if err != nil {
			return results, err
		}
		items, err := c.submitBatchOnce(ctx, hc, payload)
		// Fold whatever arrived — even a failed attempt may have streamed
		// some items before dying, and those stay answered.
		answered := make([]bool, len(pending))
		for _, it := range items {
			if it.Index < 0 || it.Index >= len(pending) {
				continue
			}
			orig := pending[it.Index]
			res := &results[orig]
			res.ContentType, res.Body = it.ContentType, it.Body
			res.CacheHit, res.DurationMS = it.CacheHit, it.DurationMS
			res.Err = nil
			if it.Error != nil {
				res.Err = &ItemError{Detail: *it.Error}
			}
			answered[it.Index] = true
		}
		rest := pending[:0]
		for wi, orig := range pending {
			if !answered[wi] {
				rest = append(rest, orig)
			}
		}
		pending = rest
		if len(pending) == 0 {
			return results, nil
		}
		if err == nil {
			// The stream ended cleanly but items are missing: the worker
			// aborted mid-batch (drain, client-side hiccup). Treat like a
			// transport failure and re-submit the remainder.
			err = fmt.Errorf("farm: batch response ended with %d variants unanswered", len(pending))
		}
		lastErr = err
		if attempt >= retries || !retryable(err) || ctx.Err() != nil {
			for _, orig := range pending {
				if results[orig].Err == nil {
					results[orig].Err = lastErr
				}
			}
			return results, lastErr
		}
		delay := backoffDelay(base, maxDelay, attempt)
		var se *StatusError
		if errors.As(err, &se) && se.RetryAfter > delay {
			delay = se.RetryAfter
		}
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			err := fmt.Errorf("farm: %w (last attempt: %v)", ctx.Err(), lastErr)
			for _, orig := range pending {
				if results[orig].Err == nil {
					results[orig].Err = err
				}
			}
			return results, err
		}
	}
}

// submitBatchOnce performs one POST /batch attempt, decoding the NDJSON
// stream incrementally. A stream that dies mid-flight returns the items
// decoded so far together with the read error, so the caller can retry
// just the unanswered variants.
func (c *Client) submitBatchOnce(ctx context.Context, hc *http.Client, payload []byte) ([]BatchItem, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/batch",
		bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := hc.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("farm: %w", err)
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		se := &StatusError{StatusCode: resp.StatusCode, Message: string(bytes.TrimSpace(body))}
		var eb ErrorBody
		if json.Unmarshal(body, &eb) == nil && eb.Error.Code != "" {
			se.Code = eb.Error.Code
			se.Message = eb.Error.Message
		}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
				se.RetryAfter = time.Duration(secs) * time.Second
			}
		}
		return nil, se
	}
	var items []BatchItem
	dec := json.NewDecoder(resp.Body)
	for {
		var it BatchItem
		if err := dec.Decode(&it); err != nil {
			if errors.Is(err, io.EOF) {
				return items, nil
			}
			return items, fmt.Errorf("farm: batch stream: %w", err)
		}
		items = append(items, it)
	}
}
