package farm

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

const tankNetlist = `farm tank
.param rq=318
R1 t 0 {rq}
L1 t 0 25.33u
C1 t 0 1n
`

func TestRunAllNodesText(t *testing.T) {
	body, ct, err := Run(context.Background(), &Request{Netlist: tankNetlist})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	if !strings.Contains(string(body), "Loop at 1 MHz") {
		t.Errorf("report:\n%s", body)
	}
}

func TestRunFormats(t *testing.T) {
	for _, f := range []string{"csv", "json", "annotate"} {
		body, _, err := Run(context.Background(), &Request{Netlist: tankNetlist, Format: f})
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if len(body) == 0 {
			t.Errorf("%s: empty body", f)
		}
	}
	if _, _, err := Run(context.Background(), &Request{Netlist: tankNetlist, Format: "bogus"}); err == nil {
		t.Error("bad format should fail")
	}
}

func TestRunSingleNode(t *testing.T) {
	body, ct, err := Run(context.Background(), &Request{Netlist: tankNetlist, Node: "t"})
	if err != nil {
		t.Fatal(err)
	}
	if ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	var res struct {
		Node   string  `json:"node"`
		Peak   float64 `json:"peak"`
		FreqHz float64 `json:"natural_freq_hz"`
		Zeta   float64 `json:"zeta"`
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Node != "t" || math.Abs(res.Zeta-0.25) > 0.02 ||
		math.Abs(res.FreqHz-1e6) > 0.05e6 {
		t.Errorf("result: %+v", res)
	}
}

func TestRunVariables(t *testing.T) {
	a, _, err := Run(context.Background(), &Request{Netlist: tankNetlist, Node: "t"})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Run(context.Background(), &Request{Netlist: tankNetlist, Node: "t",
		Variables: map[string]float64{"rq": 1000}})
	if err != nil {
		t.Fatal(err)
	}
	if string(a) == string(b) {
		t.Error("variable override had no effect")
	}
	if _, _, err := Run(context.Background(), &Request{Netlist: tankNetlist,
		Variables: map[string]float64{"nosuch": 1}}); err == nil {
		t.Error("unknown variable should fail")
	}
}

func TestRunErrors(t *testing.T) {
	if _, _, err := Run(context.Background(), &Request{Netlist: "broken\nZZ\n"}); err == nil {
		t.Error("bad netlist should fail")
	}
	if _, _, err := Run(context.Background(), &Request{Netlist: strings.Repeat("x", MaxNetlistBytes+1)}); err == nil {
		t.Error("oversized netlist should fail")
	}
}

func TestHTTPEndToEnd(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	c := &Client{BaseURL: srv.URL}
	body, err := c.Submit(context.Background(), &Request{Netlist: tankNetlist})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "Loop at 1 MHz") {
		t.Errorf("remote report:\n%s", body)
	}
	// Errors propagate with status text.
	if _, err := c.Submit(context.Background(), &Request{Netlist: "broken\nZZ\n"}); err == nil {
		t.Error("remote error should surface")
	}
	// Health endpoint.
	resp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz: %v %v", resp, err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; charset=utf-8" {
		t.Errorf("healthz content type %q", ct)
	}
	resp.Body.Close()
	// Method checks: /run is POST-only, /healthz is GET-only.
	resp, err = srv.Client().Get(srv.URL + "/run")
	if err != nil || resp.StatusCode != 405 {
		t.Fatalf("GET /run should 405, got %v %v", resp.Status, err)
	}
	resp.Body.Close()
	resp, err = srv.Client().Post(srv.URL+"/healthz", "text/plain", strings.NewReader("x"))
	if err != nil || resp.StatusCode != 405 {
		t.Fatalf("POST /healthz should 405, got %v %v", resp.Status, err)
	}
	resp.Body.Close()
}

// postJSON posts a raw body to /run and returns status and body text.
func postJSON(t *testing.T, srv *httptest.Server, body string) (int, string) {
	t.Helper()
	resp, err := srv.Client().Post(srv.URL+"/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func TestHandlerErrorPaths(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	// Malformed JSON body.
	if code, body := postJSON(t, srv, "{not json"); code != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, body %q", code, body)
	}
	// Unknown format is rejected at decode time with a typed field error.
	req, _ := json.Marshal(&Request{Netlist: tankNetlist, Format: "yaml"})
	if code, body := postJSON(t, srv, string(req)); code != http.StatusBadRequest ||
		!strings.Contains(body, `"code":"bad_option"`) ||
		!strings.Contains(body, `"field":"format"`) {
		t.Errorf("unknown format: status %d, body %q", code, body)
	}
	// Oversized netlist: the declared size exceeds MaxNetlistBytes. The
	// handler's read limit truncates the body first, so the request dies
	// as either a 400 (truncated JSON) or a 422 (size check in Run).
	big, _ := json.Marshal(&Request{Netlist: strings.Repeat("x", MaxNetlistBytes+1)})
	if code, body := postJSON(t, srv, string(big)); code != http.StatusBadRequest &&
		code != http.StatusUnprocessableEntity {
		t.Errorf("oversized netlist: status %d, body %q", code, body)
	}
}

// promValue extracts the value of one exposition line by exact metric name.
func promValue(t *testing.T, text, name string) (float64, bool) {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		rest, ok := strings.CutPrefix(line, name+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			t.Fatalf("bad sample %q: %v", line, err)
		}
		return v, true
	}
	return 0, false
}

func TestMetricsEndpoint(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	read := func(path string) string {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	runs0, _ := promValue(t, read("/metrics"), "acstab_farm_runs_total")
	fact0, _ := promValue(t, read("/metrics"), "acstab_ac_factorizations_total")

	// One real job, then assert the counters moved.
	c := &Client{BaseURL: srv.URL}
	if _, err := c.Submit(context.Background(), &Request{Netlist: tankNetlist}); err != nil {
		t.Fatal(err)
	}
	text := read("/metrics")
	if !strings.Contains(text, "# TYPE acstab_farm_runs_total counter") {
		t.Errorf("missing TYPE header:\n%s", text)
	}
	if runs, ok := promValue(t, text, "acstab_farm_runs_total"); !ok || runs != runs0+1 {
		t.Errorf("farm_runs_total = %g, want %g", runs, runs0+1)
	}
	if fact, ok := promValue(t, text, "acstab_ac_factorizations_total"); !ok || fact <= fact0 {
		t.Errorf("ac_factorizations_total = %g, want > %g", fact, fact0)
	}
	// Request counter and latency histogram for the POST /run we just made.
	if v, ok := promValue(t, text, `acstab_http_requests_total{path="/run",code="200"}`); !ok || v < 1 {
		t.Errorf("run request counter = %g (ok=%v)", v, ok)
	}
	if !strings.Contains(text, `acstab_http_request_duration_seconds_bucket{path="/run",le="+Inf"}`) {
		t.Errorf("missing latency histogram buckets:\n%s", text)
	}
	// Per-phase sweep timings.
	for _, phase := range []string{"parse", "mna_assembly", "op", "sweep", "stability", "loop_clustering"} {
		name := fmt.Sprintf(`acstab_phase_duration_seconds_count{phase=%q}`, phase)
		if v, ok := promValue(t, text, name); !ok || v < 1 {
			t.Errorf("phase %s histogram count = %g (ok=%v)", phase, v, ok)
		}
	}
}

func TestStatuszEndpoint(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	c := &Client{BaseURL: srv.URL}
	if _, err := c.Submit(context.Background(), &Request{Netlist: tankNetlist}); err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Get(srv.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("statusz content type %q", ct)
	}
	var st Statusz
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.JobsInflight != 0 {
		t.Errorf("jobs_inflight = %g, want 0 at rest", st.JobsInflight)
	}
	if st.RunsTotal < 1 {
		t.Errorf("runs_total = %d", st.RunsTotal)
	}
	if st.UptimeSeconds <= 0 {
		t.Errorf("uptime = %g", st.UptimeSeconds)
	}
	sweep, ok := st.Phases["sweep"]
	if !ok || sweep.Count < 1 || sweep.Sum <= 0 {
		t.Errorf("sweep phase histogram = %+v (ok=%v)", sweep, ok)
	}
	if st.Solver["ac_factorizations"] < 1 {
		t.Errorf("solver counters = %v", st.Solver)
	}
	if st.Workers.GOMAXPROCS < 1 {
		t.Errorf("workers = %+v", st.Workers)
	}
	if _, clash := st.Solver["http_request_bytes"]; clash {
		t.Error("HTTP byte counters should not be classified as solver counters")
	}
	// Method check.
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/statusz", nil)
	resp2, err := srv.Client().Do(req)
	if err != nil || resp2.StatusCode != 405 {
		t.Fatalf("POST /statusz should 405, got %v %v", resp2, err)
	}
	resp2.Body.Close()
}
