package farm

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
)

const tankNetlist = `farm tank
.param rq=318
R1 t 0 {rq}
L1 t 0 25.33u
C1 t 0 1n
`

func TestRunAllNodesText(t *testing.T) {
	body, ct, err := Run(&Request{Netlist: tankNetlist})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	if !strings.Contains(string(body), "Loop at 1 MHz") {
		t.Errorf("report:\n%s", body)
	}
}

func TestRunFormats(t *testing.T) {
	for _, f := range []string{"csv", "json", "annotate"} {
		body, _, err := Run(&Request{Netlist: tankNetlist, Format: f})
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if len(body) == 0 {
			t.Errorf("%s: empty body", f)
		}
	}
	if _, _, err := Run(&Request{Netlist: tankNetlist, Format: "bogus"}); err == nil {
		t.Error("bad format should fail")
	}
}

func TestRunSingleNode(t *testing.T) {
	body, ct, err := Run(&Request{Netlist: tankNetlist, Node: "t"})
	if err != nil {
		t.Fatal(err)
	}
	if ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	var res struct {
		Node   string  `json:"node"`
		Peak   float64 `json:"peak"`
		FreqHz float64 `json:"natural_freq_hz"`
		Zeta   float64 `json:"zeta"`
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Node != "t" || math.Abs(res.Zeta-0.25) > 0.02 ||
		math.Abs(res.FreqHz-1e6) > 0.05e6 {
		t.Errorf("result: %+v", res)
	}
}

func TestRunVariables(t *testing.T) {
	a, _, err := Run(&Request{Netlist: tankNetlist, Node: "t"})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Run(&Request{Netlist: tankNetlist, Node: "t",
		Variables: map[string]float64{"rq": 1000}})
	if err != nil {
		t.Fatal(err)
	}
	if string(a) == string(b) {
		t.Error("variable override had no effect")
	}
	if _, _, err := Run(&Request{Netlist: tankNetlist,
		Variables: map[string]float64{"nosuch": 1}}); err == nil {
		t.Error("unknown variable should fail")
	}
}

func TestRunErrors(t *testing.T) {
	if _, _, err := Run(&Request{Netlist: "broken\nZZ\n"}); err == nil {
		t.Error("bad netlist should fail")
	}
	if _, _, err := Run(&Request{Netlist: strings.Repeat("x", MaxNetlistBytes+1)}); err == nil {
		t.Error("oversized netlist should fail")
	}
}

func TestHTTPEndToEnd(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	c := &Client{BaseURL: srv.URL}
	body, err := c.Submit(&Request{Netlist: tankNetlist})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "Loop at 1 MHz") {
		t.Errorf("remote report:\n%s", body)
	}
	// Errors propagate with status text.
	if _, err := c.Submit(&Request{Netlist: "broken\nZZ\n"}); err == nil {
		t.Error("remote error should surface")
	}
	// Health endpoint.
	resp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz: %v %v", resp, err)
	}
	resp.Body.Close()
	// Method check.
	resp, err = srv.Client().Get(srv.URL + "/run")
	if err != nil || resp.StatusCode != 405 {
		t.Fatalf("GET /run should 405, got %v %v", resp.Status, err)
	}
	resp.Body.Close()
}
