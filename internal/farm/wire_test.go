package farm

import (
	"errors"
	"strings"
	"testing"
)

func TestNormalizeDefaults(t *testing.T) {
	opts, err := (RequestOptions{}).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if opts.FStart <= 0 || opts.FStop <= opts.FStart || opts.PointsPerDecade <= 0 {
		t.Errorf("zero options did not take defaults: %+v", opts)
	}
	// Explicit values pass through (Workers: 1 is under the wire cap on
	// any machine).
	opts, err = (RequestOptions{FStartHz: 10, FStopHz: 1e6, PointsPerDecade: 7,
		Workers: 1, Naive: true, SkipNodes: []string{"x"}}).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if opts.FStart != 10 || opts.FStop != 1e6 || opts.PointsPerDecade != 7 ||
		opts.Workers != 1 || !opts.Naive || len(opts.SkipNodes) != 1 {
		t.Errorf("explicit options mangled: %+v", opts)
	}
}

// TestNormalizeWorkerClamp pins the server-side ceiling on wire-supplied
// worker counts: an absurd ask must not size a worker pool.
func TestNormalizeWorkerClamp(t *testing.T) {
	opts, err := (RequestOptions{Workers: 1 << 20}).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if max := MaxWireWorkers(); opts.Workers != max {
		t.Errorf("workers = %d, want clamped to MaxWireWorkers() = %d", opts.Workers, max)
	}
	// An ask at or under the cap passes through untouched.
	opts, err = (RequestOptions{Workers: 1}).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if opts.Workers != 1 {
		t.Errorf("workers = %d, want 1 (under the cap)", opts.Workers)
	}
}

// TestNormalizeRejectionMessages pins the wording of range rejections:
// every knob that accepts 0 as "server default" must say ">= 0" — the
// fstart_hz/fstop_hz messages used to claim "must be > 0" while the
// check only rejected negatives, telling a caller who sent a legal 0
// that their request was invalid.
func TestNormalizeRejectionMessages(t *testing.T) {
	for _, in := range []RequestOptions{
		{FStartHz: -1},
		{FStopHz: -1},
		{PointsPerDecade: -1},
		{LoopTol: -0.1},
	} {
		_, err := in.Normalize()
		if err == nil {
			t.Fatalf("%+v: no error", in)
		}
		var fe *FieldError
		if !errors.As(err, &fe) {
			t.Fatalf("%+v: err = %v, want *FieldError", in, err)
		}
		if !strings.Contains(fe.Reason, "must be >= 0") {
			t.Errorf("%s: message %q does not say \"must be >= 0\"", fe.Field, fe.Reason)
		}
	}
}

func TestNormalizeFieldErrors(t *testing.T) {
	for _, tc := range []struct {
		name  string
		in    RequestOptions
		field string
	}{
		{"negative fstart", RequestOptions{FStartHz: -1}, "fstart_hz"},
		{"negative fstop", RequestOptions{FStopHz: -1}, "fstop_hz"},
		{"inverted range", RequestOptions{FStartHz: 1e6, FStopHz: 10}, "fstop_hz"},
		{"negative ppd", RequestOptions{PointsPerDecade: -1}, "points_per_decade"},
		{"negative loop_tol", RequestOptions{LoopTol: -0.1}, "loop_tol"},
		{"negative workers", RequestOptions{Workers: -1}, "workers"},
	} {
		_, err := tc.in.Normalize()
		var fe *FieldError
		if !errors.As(err, &fe) {
			t.Errorf("%s: err = %v, want *FieldError", tc.name, err)
			continue
		}
		if fe.Field != tc.field {
			t.Errorf("%s: field %q, want %q", tc.name, fe.Field, tc.field)
		}
		// The wire mapping turns the field error into a 400 bad_option with
		// the field attributed.
		we := wireErrorFrom(err)
		if we.Status != 400 || we.Detail.Code != CodeBadOption || we.Detail.Field != tc.field {
			t.Errorf("%s: wire error %+v", tc.name, we)
		}
	}
}
