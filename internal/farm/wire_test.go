package farm

import (
	"errors"
	"testing"
)

func TestNormalizeDefaults(t *testing.T) {
	opts, err := (RequestOptions{}).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if opts.FStart <= 0 || opts.FStop <= opts.FStart || opts.PointsPerDecade <= 0 {
		t.Errorf("zero options did not take defaults: %+v", opts)
	}
	// Explicit values pass through.
	opts, err = (RequestOptions{FStartHz: 10, FStopHz: 1e6, PointsPerDecade: 7,
		Workers: 2, Naive: true, SkipNodes: []string{"x"}}).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if opts.FStart != 10 || opts.FStop != 1e6 || opts.PointsPerDecade != 7 ||
		opts.Workers != 2 || !opts.Naive || len(opts.SkipNodes) != 1 {
		t.Errorf("explicit options mangled: %+v", opts)
	}
}

func TestNormalizeFieldErrors(t *testing.T) {
	for _, tc := range []struct {
		name  string
		in    RequestOptions
		field string
	}{
		{"negative fstart", RequestOptions{FStartHz: -1}, "fstart_hz"},
		{"negative fstop", RequestOptions{FStopHz: -1}, "fstop_hz"},
		{"inverted range", RequestOptions{FStartHz: 1e6, FStopHz: 10}, "fstop_hz"},
		{"negative ppd", RequestOptions{PointsPerDecade: -1}, "points_per_decade"},
		{"negative loop_tol", RequestOptions{LoopTol: -0.1}, "loop_tol"},
		{"negative workers", RequestOptions{Workers: -1}, "workers"},
	} {
		_, err := tc.in.Normalize()
		var fe *FieldError
		if !errors.As(err, &fe) {
			t.Errorf("%s: err = %v, want *FieldError", tc.name, err)
			continue
		}
		if fe.Field != tc.field {
			t.Errorf("%s: field %q, want %q", tc.name, fe.Field, tc.field)
		}
		// The wire mapping turns the field error into a 400 bad_option with
		// the field attributed.
		we := wireErrorFrom(err)
		if we.Status != 400 || we.Detail.Code != CodeBadOption || we.Detail.Field != tc.field {
			t.Errorf("%s: wire error %+v", tc.name, we)
		}
	}
}
