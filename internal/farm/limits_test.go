package farm

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"acstab/internal/obs"
)

// oversizedBody returns a request body just past limit: syntactically it
// would be valid JSON if read whole, so any rejection proves the size
// check fired rather than the JSON decoder.
func oversizedBody(limit int64) string {
	pad := strings.Repeat("x", int(limit))
	b, _ := json.Marshal(map[string]any{"v": 1, "netlist": pad})
	return string(b)
}

// TestRunPayloadTooLarge pins the /run oversize behavior: a body past
// the read budget answers 413 payload_too_large. Before the explicit
// check, io.LimitReader silently truncated the document and the decoder
// blamed the client's JSON (bad_json 400) — pointing at the wrong bug.
func TestRunPayloadTooLarge(t *testing.T) {
	srv := httptest.NewServer(NewHandler(Config{Log: obs.NewEventLogger(nil)}))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/run", "application/json",
		strings.NewReader(oversizedBody(maxRunRequestBytes)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
	var eb ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if eb.Error.Code != CodePayloadTooLarge {
		t.Errorf("code %q, want %q", eb.Error.Code, CodePayloadTooLarge)
	}
}

// TestBatchPayloadTooLarge is the same contract on the v2 endpoint.
func TestBatchPayloadTooLarge(t *testing.T) {
	srv := httptest.NewServer(NewHandler(Config{Log: obs.NewEventLogger(nil)}))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/batch", "application/json",
		strings.NewReader(oversizedBody(maxBatchRequestBytes)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
	var eb ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if eb.Error.Code != CodePayloadTooLarge {
		t.Errorf("code %q, want %q", eb.Error.Code, CodePayloadTooLarge)
	}
}

// TestRunUnderLimitStillServed guards the budget math: a legal netlist
// near MaxNetlistBytes whose JSON escaping inflates it past the old
// MaxNetlistBytes+4k read cap must still decode (and fail on substance,
// not size or truncation).
func TestRunUnderLimitStillServed(t *testing.T) {
	// ~1M of comment lines: every newline escapes to two bytes on the
	// wire, so wire size ≈ 2x netlist size — over the old cap's headroom
	// but far under MaxNetlistBytes itself.
	var sb strings.Builder
	sb.WriteString("escape blowup\n")
	line := "* " + strings.Repeat("c", 6) + "\n"
	for sb.Len() < 1<<20 {
		sb.WriteString(line)
	}
	sb.WriteString("R1 a 0 1k\nC1 a 0 1n\nL1 a 0 1m\n")

	srv := httptest.NewServer(NewHandler(Config{Log: obs.NewEventLogger(nil)}))
	defer srv.Close()
	payload, _ := json.Marshal(&Request{V: 1, Netlist: sb.String()})
	resp, err := http.Post(srv.URL+"/run", "application/json", strings.NewReader(string(payload)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 (escaped body must fit the budget)", resp.StatusCode)
	}
}

// TestBatchShedScoresSLO pins the fix for the unscored batch shed: a
// /batch request shed at admission must burn the SLO error budget
// exactly like a /run shed does. Before the fix the shed path returned
// without recording, so a worker shedding every batch kept scoring
// perfectly healthy.
func TestBatchShedScoresSLO(t *testing.T) {
	s := &server{cfg: Config{MaxConcurrent: 1, RetryAfter: time.Second}.withDefaults(),
		start: time.Now()}
	s.sem = make(chan struct{}, 1)
	s.sem <- struct{}{} // saturate admission
	s.slo = obs.NewSLOTracker(obs.SLOConfig{})
	before := sloTotal(t, s)

	payload, _ := json.Marshal(&BatchRequest{V: WireV2, Netlist: tankNetlist,
		Node: "t", Variants: []Variant{{Label: "a"}}})
	rec := httptest.NewRecorder()
	s.handleBatch(rec, httptest.NewRequest(http.MethodPost, "/batch", strings.NewReader(string(payload))))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", rec.Code)
	}

	after := sloTotal(t, s)
	if after.total != before.total+1 {
		t.Errorf("SLO total moved %d -> %d, want +1 (shed not scored)", before.total, after.total)
	}
	if after.good != before.good {
		t.Errorf("SLO good moved %d -> %d, want unchanged (shed must burn budget)", before.good, after.good)
	}
}

type sloTally struct{ total, good int64 }

// sloTotal sums the tracker's shortest window tallies.
func sloTotal(t *testing.T, s *server) sloTally {
	t.Helper()
	snap := s.slo.Snapshot()
	if len(snap.Windows) == 0 {
		t.Fatal("no SLO windows")
	}
	w := snap.Windows[0]
	return sloTally{total: w.Total, good: w.Good}
}
