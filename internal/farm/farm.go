// Package farm implements the remote-simulation capability the paper
// lists as future work ("remote server simulation and distributed
// computer farm run control"): an HTTP job server that accepts a netlist
// plus run options and returns the rendered all-nodes stability report,
// and the matching client. A fleet of acstabd processes behind any HTTP
// load balancer is the modern equivalent of the compute-farm dispatch the
// authors planned.
package farm

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"time"

	"acstab/internal/netlist"
	"acstab/internal/obs"
	"acstab/internal/report"
	"acstab/internal/tool"
)

// Worker telemetry: job throughput and saturation. Phase latencies and
// solver counters come from the instrumented analysis/tool packages via
// the shared obs registry.
var (
	mJobsInflight = obs.GetGauge("acstab_jobs_inflight")
	mRunsTotal    = obs.GetCounter("acstab_farm_runs_total")
	mRunErrors    = obs.GetCounter("acstab_farm_run_errors_total")
)

// Request is one remote stability job.
type Request struct {
	// Netlist is the circuit source text.
	Netlist string `json:"netlist"`
	// Format selects the response rendering: text (default), csv, json,
	// annotate.
	Format string `json:"format,omitempty"`
	// Node switches to single-node mode when non-empty.
	Node string `json:"node,omitempty"`
	// Options carries the sweep setup (zero values take server defaults).
	Options RequestOptions `json:"options"`
	// Variables override design variables before the run.
	Variables map[string]float64 `json:"variables,omitempty"`
}

// RequestOptions mirrors the CLI sweep flags.
type RequestOptions struct {
	FStartHz        float64  `json:"fstart_hz,omitempty"`
	FStopHz         float64  `json:"fstop_hz,omitempty"`
	PointsPerDecade int      `json:"points_per_decade,omitempty"`
	LoopTol         float64  `json:"loop_tol,omitempty"`
	Workers         int      `json:"workers,omitempty"`
	Naive           bool     `json:"naive,omitempty"`
	SkipNodes       []string `json:"skip_nodes,omitempty"`
	OnlySubckt      string   `json:"only_subckt,omitempty"`
}

// MaxNetlistBytes bounds request size.
const MaxNetlistBytes = 4 << 20

// Handler returns the HTTP handler of a farm worker: POST /run executes a
// job, GET /healthz reports liveness, GET /metrics serves the Prometheus
// exposition of the process registry, and GET /statusz serves a JSON
// status snapshot (jobs in flight, per-phase latency histograms, solver
// counters, worker utilization). Every route is wrapped in the obs
// request-logging middleware.
func Handler() http.Handler {
	start := time.Now()
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", handleHealthz)
	mux.HandleFunc("/run", handleRun)
	mux.Handle("/metrics", obs.MetricsHandler())
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		handleStatusz(w, r, start)
	})
	return obs.Middleware(mux, nil)
}

func handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	mJobsInflight.Inc()
	defer mJobsInflight.Dec()
	body, err := io.ReadAll(io.LimitReader(r.Body, MaxNetlistBytes+4096))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var req Request
	if err := json.Unmarshal(body, &req); err != nil {
		http.Error(w, "bad request JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	out, contentType, err := Run(&req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	w.Header().Set("Content-Type", contentType)
	w.Write(out)
}

// Run executes one job locally (the server calls this; tests can too).
func Run(req *Request) (body []byte, contentType string, err error) {
	mRunsTotal.Inc()
	defer func() {
		if err != nil {
			mRunErrors.Inc()
		}
	}()
	if len(req.Netlist) > MaxNetlistBytes {
		return nil, "", fmt.Errorf("farm: netlist larger than %d bytes", MaxNetlistBytes)
	}
	sp := obs.StartPhase(nil, "parse")
	ckt, err := netlist.Parse(req.Netlist)
	sp.End()
	if err != nil {
		return nil, "", err
	}
	for k, v := range req.Variables {
		if _, ok := ckt.Params[k]; !ok {
			return nil, "", fmt.Errorf("farm: unknown design variable %q", k)
		}
		ckt.Params[k] = v
	}
	opts := tool.DefaultOptions()
	if o := req.Options; true {
		if o.FStartHz > 0 {
			opts.FStart = o.FStartHz
		}
		if o.FStopHz > 0 {
			opts.FStop = o.FStopHz
		}
		if o.PointsPerDecade > 0 {
			opts.PointsPerDecade = o.PointsPerDecade
		}
		if o.LoopTol > 0 {
			opts.LoopTol = o.LoopTol
		}
		opts.Workers = o.Workers
		opts.Naive = o.Naive
		opts.SkipNodes = o.SkipNodes
		opts.OnlySubckt = o.OnlySubckt
	}
	t, err := tool.New(ckt, opts)
	if err != nil {
		return nil, "", err
	}

	var buf bytes.Buffer
	if req.Node != "" {
		nr, err := t.SingleNode(req.Node)
		if err != nil {
			return nil, "", err
		}
		enc := json.NewEncoder(&buf)
		enc.SetIndent("", "  ")
		if err := enc.Encode(singleNodeJSON(nr)); err != nil {
			return nil, "", err
		}
		return buf.Bytes(), "application/json", nil
	}

	rep, err := t.AllNodes()
	if err != nil {
		return nil, "", err
	}
	switch req.Format {
	case "", "text":
		err = report.Text(&buf, rep)
		contentType = "text/plain; charset=utf-8"
	case "csv":
		err = report.CSV(&buf, rep)
		contentType = "text/csv"
	case "json":
		err = report.JSON(&buf, rep)
		contentType = "application/json"
	case "annotate":
		err = report.Annotate(&buf, t.Flat, rep)
		contentType = "text/plain; charset=utf-8"
	default:
		return nil, "", fmt.Errorf("farm: unknown format %q", req.Format)
	}
	if err != nil {
		return nil, "", err
	}
	return buf.Bytes(), contentType, nil
}

// Statusz is the JSON document served at GET /statusz: a human- and
// machine-readable snapshot of what the worker is doing right now.
type Statusz struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	// JobsInflight counts /run jobs currently executing.
	JobsInflight float64 `json:"jobs_inflight"`
	RunsTotal    int64   `json:"runs_total"`
	RunErrors    int64   `json:"run_errors_total"`
	// Requests maps `path="...",code="..."` label sets to request counts.
	Requests map[string]int64 `json:"http_requests_total,omitempty"`
	// Phases maps phase names (parse, mna_assembly, op, sweep, stability,
	// loop_clustering) to latency histogram summaries in seconds.
	Phases map[string]obs.HistogramSnapshot `json:"phase_latency_seconds,omitempty"`
	// Solver holds the cumulative solver counters (AC factorizations and
	// solves, Newton iterations, operating-point solves, MNA compiles).
	Solver  map[string]int64 `json:"solver,omitempty"`
	Workers StatuszWorkers   `json:"workers"`
}

// StatuszWorkers reports sweep-pool saturation.
type StatuszWorkers struct {
	GOMAXPROCS int `json:"gomaxprocs"`
	// SweepBusy is the number of sweep workers executing right now.
	SweepBusy float64 `json:"sweep_busy"`
	// Utilization is SweepBusy / GOMAXPROCS.
	Utilization float64 `json:"utilization"`
}

// statuszFrom assembles the status document from a registry snapshot.
func statuszFrom(snap map[string]any, uptime time.Duration) *Statusz {
	st := &Statusz{
		UptimeSeconds: uptime.Seconds(),
		Requests:      map[string]int64{},
		Phases:        map[string]obs.HistogramSnapshot{},
		Solver:        map[string]int64{},
	}
	st.Workers.GOMAXPROCS = runtime.GOMAXPROCS(0)
	const (
		phasePrefix = `acstab_phase_duration_seconds{phase="`
		reqPrefix   = `acstab_http_requests_total{`
		solverPre   = "acstab_"
	)
	for name, v := range snap {
		switch {
		case strings.HasPrefix(name, phasePrefix):
			phase := strings.TrimSuffix(strings.TrimPrefix(name, phasePrefix), `"}`)
			if hs, ok := v.(obs.HistogramSnapshot); ok {
				st.Phases[phase] = hs
			}
		case strings.HasPrefix(name, reqPrefix):
			labels := strings.TrimSuffix(strings.TrimPrefix(name, reqPrefix), "}")
			if n, ok := v.(int64); ok {
				st.Requests[labels] = n
			}
		case name == "acstab_jobs_inflight":
			st.JobsInflight, _ = v.(float64)
		case name == "acstab_farm_runs_total":
			st.RunsTotal, _ = v.(int64)
		case name == "acstab_farm_run_errors_total":
			st.RunErrors, _ = v.(int64)
		case name == "acstab_sweep_workers_busy":
			st.Workers.SweepBusy, _ = v.(float64)
		case strings.HasPrefix(name, solverPre) && strings.HasSuffix(name, "_total") &&
			!strings.HasPrefix(name, "acstab_http_"):
			// Remaining counters are solver/sweep volume counters.
			if n, ok := v.(int64); ok {
				key := strings.TrimSuffix(strings.TrimPrefix(name, solverPre), "_total")
				st.Solver[key] = n
			}
		}
	}
	if st.Workers.GOMAXPROCS > 0 {
		st.Workers.Utilization = st.Workers.SweepBusy / float64(st.Workers.GOMAXPROCS)
	}
	return st
}

func handleStatusz(w http.ResponseWriter, r *http.Request, start time.Time) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(statuszFrom(obs.Default.Snapshot(), time.Since(start)))
}

type singleNodeResult struct {
	Node       string  `json:"node"`
	Skipped    bool    `json:"skipped,omitempty"`
	SkipReason string  `json:"skip_reason,omitempty"`
	PeakValue  float64 `json:"peak,omitempty"`
	FreqHz     float64 `json:"natural_freq_hz,omitempty"`
	Zeta       float64 `json:"zeta,omitempty"`
	PMDeg      float64 `json:"phase_margin_deg,omitempty"`
	Overshoot  float64 `json:"overshoot_pct,omitempty"`
}

func singleNodeJSON(nr *tool.NodeResult) singleNodeResult {
	out := singleNodeResult{Node: nr.Node, Skipped: nr.Skipped, SkipReason: nr.SkipReason}
	if nr.Best != nil {
		out.PeakValue = nr.Best.Value
		out.FreqHz = nr.Best.Freq
		out.Zeta = nr.Best.Zeta
		out.PMDeg = nr.Best.PhaseMarginDeg
		out.Overshoot = nr.Best.OvershootPct
	}
	return out
}

// Client submits jobs to a farm worker.
type Client struct {
	// BaseURL is the worker address, e.g. "http://farm:8080".
	BaseURL string
	// HTTPClient defaults to a client with a 5-minute timeout.
	HTTPClient *http.Client
}

// Submit posts the job and returns the rendered report body.
func (c *Client) Submit(req *Request) ([]byte, error) {
	hc := c.HTTPClient
	if hc == nil {
		hc = &http.Client{Timeout: 5 * time.Minute}
	}
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := hc.Post(c.BaseURL+"/run", "application/json", bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("farm: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("farm: worker returned %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	return body, nil
}
