// Package farm implements the remote-simulation capability the paper
// lists as future work ("remote server simulation and distributed
// computer farm run control"): an HTTP job server that accepts a netlist
// plus run options and returns the rendered all-nodes stability report,
// and the matching client. A fleet of acstabd processes behind any HTTP
// load balancer is the modern equivalent of the compute-farm dispatch the
// authors planned.
//
// The request path is built to degrade gracefully under overload: a
// server-side concurrency limiter sheds excess jobs with 429 + a
// Retry-After hint while in-flight jobs run to completion, every job
// carries a deadline (the request's timeout_ms capped by the server
// maximum), and a client disconnect cancels the solve mid-sweep through
// the request context. The Client retries shed and transient failures
// with exponential backoff and jitter.
package farm

import (
	"bytes"
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"

	"acstab/internal/acerr"
	"acstab/internal/netlist"
	"acstab/internal/obs"
	"acstab/internal/report"
	"acstab/internal/tool"
)

// Worker telemetry: job throughput, saturation, and shed/abort volume.
// Phase latencies and solver counters come from the instrumented
// analysis/tool packages via the shared obs registry.
var (
	mJobsInflight = obs.GetGauge("acstab_jobs_inflight")
	mRunsTotal    = obs.GetCounter("acstab_farm_runs_total")
	mRunErrors    = obs.GetCounter("acstab_farm_run_errors_total")
	// mShed counts jobs rejected with 429 by the concurrency limiter.
	mShed = obs.GetCounter("acstab_farm_shed_total")
	// mCanceled counts jobs aborted because the client went away.
	mCanceled = obs.GetCounter("acstab_farm_canceled_total")
	// mDeadline counts jobs aborted by their per-request deadline.
	mDeadline = obs.GetCounter("acstab_farm_deadline_exceeded_total")
)

// WireVersion is the farm protocol version this worker speaks. Requests
// may omit the field (legacy clients) or send this value; anything else
// is rejected up front so a future incompatible format fails loudly
// instead of mis-running.
const WireVersion = 1

// Request is one remote stability job.
type Request struct {
	// V is the wire-format version (WireVersion; 0 is accepted as
	// legacy shorthand for version 1).
	V int `json:"v,omitempty"`
	// Netlist is the circuit source text.
	Netlist string `json:"netlist"`
	// Format selects the response rendering: text (default), csv, json,
	// annotate.
	Format string `json:"format,omitempty"`
	// Node switches to single-node mode when non-empty.
	Node string `json:"node,omitempty"`
	// TimeoutMS is the job deadline in milliseconds, measured from the
	// moment the worker admits the job. The server caps it at its
	// -request-timeout; 0 means "server default".
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Options carries the sweep setup (zero values take server defaults).
	Options RequestOptions `json:"options"`
	// Variables override design variables before the run.
	Variables map[string]float64 `json:"variables,omitempty"`
	// TraceID is the client's correlation ID. The worker stores it in its
	// flight-recorder record so a farm-wide search can find this job.
	TraceID string `json:"trace_id,omitempty"`
	// CollectTrace asks the worker to return the job's run trace: the
	// response becomes a TracedResponse envelope (signaled by the
	// TraceHeader response header) instead of the raw rendered report.
	CollectTrace bool `json:"collect_trace,omitempty"`
}

// TraceHeader marks a response whose body is a TracedResponse envelope
// rather than the raw rendered report.
const TraceHeader = "X-Acstab-Trace"

// TracedResponse is the response envelope for CollectTrace jobs: the
// rendered report plus the worker-side run trace, which the client grafts
// into the caller's trace.
type TracedResponse struct {
	V int `json:"v"`
	// RequestID is the worker's flight-recorder ID for this job; quote it
	// when asking "what happened to my run" against GET /debug/runs.
	RequestID string `json:"request_id,omitempty"`
	// ContentType is the media type of Body.
	ContentType string `json:"content_type"`
	// Body is the rendered report (base64 in JSON).
	Body []byte `json:"body"`
	// Trace is the worker's run trace for this job.
	Trace *obs.Trace `json:"trace,omitempty"`
}

// RequestOptions mirrors the CLI sweep flags. Workers is a tuning hint
// clamped server-side to MaxWireWorkers. OnlyNodes is the shard
// coordinator's partitioning handle: it restricts an all-nodes run to
// exactly the named nodes (exact case-insensitive match, unlike the
// substring-matched SkipNodes), so one whole analysis splits into
// node-range shards riding the ordinary v1 wire.
type RequestOptions struct {
	FStartHz        float64 `json:"fstart_hz,omitempty"`
	FStopHz         float64 `json:"fstop_hz,omitempty"`
	PointsPerDecade int     `json:"points_per_decade,omitempty"`
	// CoarsePointsPerDecade > 0 switches the run to the two-level adaptive
	// sweep: a coarse pass at this resolution plus targeted refinement up
	// to RefinePointsPerDecade around detected resonances. The grids are
	// deterministic per node, so sharded runs merge byte-identically.
	CoarsePointsPerDecade int      `json:"coarse_points_per_decade,omitempty"`
	RefinePointsPerDecade int      `json:"refine_points_per_decade,omitempty"`
	RefineThreshold       float64  `json:"refine_threshold,omitempty"`
	LoopTol               float64  `json:"loop_tol,omitempty"`
	Workers               int      `json:"workers,omitempty"`
	Naive                 bool     `json:"naive,omitempty"`
	SkipNodes             []string `json:"skip_nodes,omitempty"`
	OnlyNodes             []string `json:"only_nodes,omitempty"`
	OnlySubckt            string   `json:"only_subckt,omitempty"`
}

// MaxNetlistBytes bounds the decoded netlist size.
const MaxNetlistBytes = 4 << 20

// maxRunRequestBytes and maxBatchRequestBytes bound the raw request
// bodies. JSON string escaping can inflate a netlist to roughly twice its
// size on the wire (every newline becomes \n), so the body budget is
// double the netlist budget plus headroom for options (and, for batches,
// the variant list). A body exceeding its budget is answered 413
// payload_too_large — never silently truncated into a confusing
// bad_json rejection.
const (
	maxRunRequestBytes   = 2*MaxNetlistBytes + 64<<10
	maxBatchRequestBytes = 2*MaxNetlistBytes + 1<<20
)

// Config tunes a farm worker's request path.
type Config struct {
	// MaxConcurrent bounds the number of /run jobs executing at once;
	// excess requests are shed with 429 + Retry-After. 0 selects
	// GOMAXPROCS.
	MaxConcurrent int
	// MaxTimeout caps the per-request deadline and is the default for
	// requests that do not set timeout_ms. 0 selects 5 minutes.
	MaxTimeout time.Duration
	// RetryAfter is the hint returned with 429 responses. 0 selects 1s.
	RetryAfter time.Duration
	// RecentRuns sizes the flight recorder behind GET /debug/runs: the
	// worker keeps the last RecentRuns run records (trace, outcome, wall
	// time). 0 selects obs.DefaultRecentRuns.
	RecentRuns int
	// Log is the wide-event sink: one canonical JSON event per /run
	// request (plus "http" events for the other routes), also served at
	// GET /debug/events for fleet tailing. Nil selects obs.StderrEvents.
	Log *obs.EventLogger
	// SLO sets the worker's objective scoring (zero values select the
	// obs.SLOConfig defaults: 30s latency objective, 99% success target,
	// 95% latency target, 5m/1h windows). Scores are served in /statusz
	// and as acstab_slo_* gauges.
	SLO obs.SLOConfig
	// CacheEntries bounds the content-addressed compiled-system cache. 0
	// selects DefaultCacheEntries; negative disables caching (every
	// request compiles from scratch, the pre-cache behavior).
	CacheEntries int
}

// withDefaults fills zero fields with the documented defaults.
func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.RecentRuns <= 0 {
		c.RecentRuns = obs.DefaultRecentRuns
	}
	if c.Log == nil {
		c.Log = obs.StderrEvents
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = DefaultCacheEntries
	}
	return c
}

// server is one worker's HTTP state: its config, admission semaphore,
// flight recorder, wide-event log, and SLO tracker.
type server struct {
	cfg   Config
	sem   chan struct{}
	rec   *obs.Recorder
	log   *obs.EventLogger
	slo   *obs.SLOTracker
	build obs.BuildInfo
	start time.Time
	// cache is the content-addressed compiled-system cache shared by /run
	// and /batch; nil when caching is disabled.
	cache *Cache
}

// Handler returns a farm worker handler with default Config.
func Handler() http.Handler { return NewHandler(Config{}) }

// NewHandler returns the HTTP handler of a farm worker: POST /run
// executes a job under the concurrency limiter and per-request deadline,
// POST /batch executes a wire-v2 variant batch streaming NDJSON results,
// GET /healthz reports liveness, GET /metrics serves the Prometheus
// exposition of the process registry, and GET /statusz serves a JSON
// status snapshot (jobs in flight, shed/abort counters, per-phase
// latency histograms, solver counters, worker utilization). GET
// /debug/runs lists the flight recorder's recent runs and GET
// /debug/runs/<id> serves one run's full trace. Every route is wrapped
// in the obs request-logging middleware.
func NewHandler(cfg Config) http.Handler {
	s := &server{
		cfg:   cfg.withDefaults(),
		start: time.Now(),
	}
	s.sem = make(chan struct{}, s.cfg.MaxConcurrent)
	s.rec = obs.NewRecorder(s.cfg.RecentRuns)
	s.log = s.cfg.Log
	s.slo = obs.NewSLOTracker(s.cfg.SLO)
	s.build = obs.RegisterBuildInfo()
	if s.cfg.CacheEntries > 0 {
		s.cache = NewCache(s.cfg.CacheEntries)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", handleHealthz)
	mux.HandleFunc("/run", s.handleRun)
	mux.HandleFunc("/batch", s.handleBatch)
	// SLO gauges are recomputed at scrape time so a quiet worker's scores
	// age out instead of freezing at the last request's values.
	mux.Handle("/metrics", s.refreshSLO(obs.MetricsHandler()))
	mux.HandleFunc("/statusz", s.handleStatusz)
	mux.HandleFunc("/debug/runs", s.handleDebugRuns)
	mux.HandleFunc("/debug/runs/", s.handleDebugRuns)
	mux.HandleFunc("/debug/events", s.handleDebugEvents)
	return obs.Middleware(mux, s.log)
}

// refreshSLO republishes the acstab_slo_* gauges before serving next.
func (s *server) refreshSLO(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.slo.Snapshot().PublishGauges()
		next.ServeHTTP(w, r)
	})
}

func handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// ErrorBody is the structured JSON document returned for 4xx/5xx.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail carries the machine-readable failure code and the human
// message. Field names the offending wire field for bad_option
// rejections.
type ErrorDetail struct {
	Code    string `json:"code"`
	Field   string `json:"field,omitempty"`
	Message string `json:"message"`
}

// Error codes returned in ErrorBody.
const (
	CodeBadJSON            = "bad_json"
	CodeBadOption          = "bad_option"
	CodePayloadTooLarge    = "payload_too_large"
	CodeUnsupportedVersion = "unsupported_version"
	CodeMethodNotAllowed   = "method_not_allowed"
	CodeOverloaded         = "overloaded"
	CodeDeadlineExceeded   = "deadline_exceeded"
	CodeClientClosed       = "client_closed_request"
	CodeUnknownNode        = "unknown_node"
	CodeUnknownRun         = "unknown_run"
	CodeNoConvergence      = "no_convergence"
	CodeSingularMatrix     = "singular_matrix"
	CodeAccuracy           = "accuracy"
	CodeRunFailed          = "run_failed"
)

// readBody reads the request body up to limit bytes. A body exceeding
// the limit is rejected as 413 payload_too_large: an io.LimitReader alone
// would silently truncate the JSON document and the decoder would then
// misreport the cut-off as a bad_json 400, pointing the client at its
// (valid) JSON instead of its size.
func readBody(r *http.Request, limit int64) ([]byte, *WireError) {
	body, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
	if err != nil {
		return nil, &WireError{Status: http.StatusBadRequest,
			Detail: ErrorDetail{Code: CodeBadJSON, Message: err.Error()}}
	}
	if int64(len(body)) > limit {
		return nil, &WireError{Status: http.StatusRequestEntityTooLarge,
			Detail: ErrorDetail{Code: CodePayloadTooLarge,
				Message: fmt.Sprintf("request body exceeds %d bytes", limit)}}
	}
	return body, nil
}

// writeErr sends a structured error body with the given status.
func writeErr(w http.ResponseWriter, status int, code, message string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(ErrorBody{Error: ErrorDetail{Code: code, Message: message}})
}

// writeWireErr sends a decode rejection, preserving the field attribution
// of bad_option errors.
func writeWireErr(w http.ResponseWriter, we *WireError) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(we.Status)
	json.NewEncoder(w).Encode(ErrorBody{Error: we.Detail})
}

// runEvent accumulates the fields of the one canonical wide event a /run
// request emits: whatever path the request takes — served, shed, rejected,
// aborted — exactly one "run" event with the full context leaves the
// worker, correlated with the flight recorder by request_id and with the
// caller by trace_id.
type runEvent struct {
	requestID  string
	traceID    string
	outcome    string
	status     int
	errMsg     string
	run        *obs.Run
	req        *Request
	retryAfter time.Duration
	cacheHit   bool
}

func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	ev := &runEvent{}
	defer func() {
		dur := time.Since(start)
		s.emitRunEvent(ev, dur)
		// SLO scoring: a client that hung up (499) is excluded; client
		// errors (4xx: bad JSON, unknown node, non-convergent circuit)
		// count as served — the worker answered definitively — while
		// sheds (429), deadlines (504), and 5xx burn the error budget.
		if ev.status != 499 {
			good := ev.status < 500 && ev.status != http.StatusTooManyRequests
			s.slo.Record(good, dur)
		}
	}()
	if r.Method != http.MethodPost {
		ev.outcome, ev.status = CodeMethodNotAllowed, http.StatusMethodNotAllowed
		writeErr(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "POST only")
		return
	}
	// Admission control: shed instead of queueing so latency stays
	// bounded and the load balancer can route around a busy worker.
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	default:
		mShed.Inc()
		rec := s.rec.Begin("run", "", nil)
		rec.Finish("shed")
		ev.requestID, ev.outcome, ev.status = rec.ID(), "shed", http.StatusTooManyRequests
		ev.retryAfter = s.cfg.RetryAfter
		w.Header().Set("Retry-After",
			strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
		writeErr(w, http.StatusTooManyRequests, CodeOverloaded,
			fmt.Sprintf("worker at capacity (%d jobs in flight)", s.cfg.MaxConcurrent))
		return
	}
	mJobsInflight.Inc()
	defer mJobsInflight.Dec()
	body, we := readBody(r, maxRunRequestBytes)
	if we != nil {
		rec := s.rec.Begin("run", "", nil)
		rec.Finish(we.Detail.Code)
		ev.requestID, ev.outcome, ev.status, ev.errMsg = rec.ID(), we.Detail.Code, we.Status, we.Detail.Message
		writeWireErr(w, we)
		return
	}
	req, opts, we := DecodeRequest(body)
	if we != nil {
		rec := s.rec.Begin("run", "", nil)
		rec.Finish(we.Detail.Code)
		ev.requestID, ev.outcome, ev.status, ev.errMsg = rec.ID(), we.Detail.Code, we.Status, we.Detail.Message
		writeWireErr(w, we)
		return
	}
	ev.req, ev.traceID = req, req.TraceID

	// Per-request deadline: client ask capped by the server maximum;
	// the context also dies when the client disconnects, so an
	// abandoned job stops burning CPU within one linear solve.
	timeout := s.cfg.MaxTimeout
	if req.TimeoutMS > 0 {
		if d := time.Duration(req.TimeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// Every job runs under its own run trace, recorded in the flight
	// recorder while in flight — a hung run is diagnosable from its
	// partial trace at GET /debug/runs/<id>.
	run := obs.StartRun("farm/run")
	rec := s.rec.Begin("run", req.TraceID, run)
	ev.requestID, ev.run = rec.ID(), run
	out, contentType, hit, err := runCached(ctx, s.cache, req, opts, run)
	ev.cacheHit = hit
	run.Finish()
	if err != nil {
		status, code := classifyRunError(r, err)
		rec.Finish(runOutcome(code))
		ev.outcome, ev.status, ev.errMsg = runOutcome(code), status, err.Error()
		writeErr(w, status, code, err.Error())
		return
	}
	rec.Finish("ok")
	ev.outcome, ev.status = "ok", http.StatusOK
	if req.CollectTrace {
		tr := run.Trace()
		w.Header().Set(TraceHeader, "1")
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(TracedResponse{
			V:           WireVersion,
			RequestID:   rec.ID(),
			ContentType: contentType,
			Body:        out,
			Trace:       &tr,
		})
		return
	}
	w.Header().Set("Content-Type", contentType)
	w.Write(out)
}

// emitRunEvent writes the request's canonical wide event: identity
// (request_id, trace_id), outcome and HTTP status, wall time, the sweep
// volume and result shape (nodes, frequency points, peaks, loops), and
// the per-run solver-counter deltas from the run trace (factorizations,
// refactorizations, fallbacks, pattern drift, diag rows visited, ...) so
// fleet-level log queries like "which runs fell off the refactor fast
// path" need no metric join.
func (s *server) emitRunEvent(ev *runEvent, dur time.Duration) {
	attrs := []slog.Attr{
		slog.String("request_id", ev.requestID),
		slog.String("outcome", ev.outcome),
		slog.Int("status", ev.status),
		slog.Float64("duration_ms", float64(dur)/float64(time.Millisecond)),
	}
	if ev.traceID != "" {
		attrs = append(attrs, slog.String("trace_id", ev.traceID))
	}
	if ev.req != nil {
		attrs = append(attrs,
			slog.Int("netlist_bytes", len(ev.req.Netlist)),
			slog.Bool("cache_hit", ev.cacheHit))
		if ev.req.Node != "" {
			attrs = append(attrs, slog.String("node", ev.req.Node))
		}
		if ev.req.Format != "" {
			attrs = append(attrs, slog.String("format", ev.req.Format))
		}
	}
	if ev.retryAfter > 0 {
		attrs = append(attrs,
			slog.Float64("retry_after_s", ev.retryAfter.Seconds()),
			slog.Int("max_concurrent", s.cfg.MaxConcurrent))
	}
	if ev.errMsg != "" {
		attrs = append(attrs, slog.String("error", ev.errMsg))
	}
	if ev.run != nil {
		tr := ev.run.Trace()
		tc := tr.Counters
		attrs = append(attrs,
			slog.Int64("nodes", tc["sweep_nodes"]),
			slog.Int64("freq_points", tc["sweep_freq_points"]),
			slog.Int64("peaks", tc["peaks"]),
			slog.Int64("loops", tc["loops"]))
		solver := map[string]any{}
		for k, v := range tc {
			switch {
			case k == "sweep_nodes" || k == "sweep_freq_points" || k == "peaks" || k == "loops":
			case strings.HasPrefix(k, obs.ResidualDecadePrefix):
				// The per-decade residual digest is summarized by the
				// numerics block below, not listed raw.
			default:
				solver[k] = v
			}
		}
		// Numerical health: one solver.numerics block per run so "which
		// runs were degraded" is a log query, not a metric join.
		if tc["ac_residual_points"] > 0 {
			num := map[string]any{
				"points":       tc["ac_residual_points"],
				"refinements":  tc["ac_refinements"],
				"breaches":     tc["ac_residual_breaches"],
				"max_residual": tr.Stats["numerics_residual_max"],
			}
			if med, ok := obs.MedianResidual(tc); ok {
				num["median_residual"] = med
			}
			if g := tr.Stats["numerics_pivot_growth_max"]; g > 0 {
				num["pivot_growth_max"] = g
			}
			if ce := tr.Stats["numerics_cond_est_max"]; ce > 0 {
				num["cond_estimate"] = ce
			}
			solver["numerics"] = num
		}
		if len(solver) > 0 {
			attrs = append(attrs, slog.Any("solver", solver))
		}
	}
	s.log.Event("run", attrs...)
}

// runOutcome maps an error code to the flight-recorder outcome word.
func runOutcome(code string) string {
	switch code {
	case CodeClientClosed:
		return "canceled"
	case CodeDeadlineExceeded:
		return "deadline"
	}
	return code
}

// handleDebugRuns serves the flight recorder: GET /debug/runs lists
// recent runs (newest first, in-flight runs marked running) and GET
// /debug/runs/<id> returns one run's full record including its trace.
// The listing accepts ?outcome=<ok|error|canceled|deadline|shed> (error
// matches any error-code outcome), ?health=<degraded|ok> (degraded keeps
// runs with at least one residual-threshold breach), and ?n=<limit>.
func (s *server) handleDebugRuns(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET only")
		return
	}
	id := strings.TrimPrefix(strings.TrimPrefix(r.URL.Path, "/debug/runs"), "/")
	if id == "" {
		runs := s.rec.List()
		q := r.URL.Query()
		if outcome := q.Get("outcome"); outcome != "" {
			kept := runs[:0]
			for _, rs := range runs {
				if outcomeMatches(rs.Outcome, outcome) {
					kept = append(kept, rs)
				}
			}
			runs = kept
		}
		if health := q.Get("health"); health != "" {
			kept := runs[:0]
			for _, rs := range runs {
				if rs.Degraded == (health == "degraded") {
					kept = append(kept, rs)
				}
			}
			runs = kept
		}
		if nStr := q.Get("n"); nStr != "" {
			if n, err := strconv.Atoi(nStr); err == nil && n >= 0 && n < len(runs) {
				runs = runs[:n]
			}
		}
		if runs == nil {
			runs = []obs.RunSummary{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Runs []obs.RunSummary `json:"runs"`
		}{runs})
		return
	}
	det, ok := s.rec.Get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, CodeUnknownRun,
			fmt.Sprintf("no recorded run %q (evicted or never ran here)", id))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(det)
}

// outcomeMatches implements the ?outcome= filter vocabulary: the literal
// outcomes pass through, and "error" matches any machine error code (a
// run that failed for a reason other than cancelation, deadline, or
// shedding). In-flight runs only match an explicit "running" filter.
func outcomeMatches(outcome, filter string) bool {
	if filter == "error" {
		switch outcome {
		case "ok", "canceled", "deadline", "shed", "running":
			return false
		}
		return true
	}
	return outcome == filter
}

// EventsPage is the GET /debug/events response: the retained wide events
// after the caller's cursor plus the cursor to resume from. acstabctl
// tail polls this per worker to follow a fleet's events.
type EventsPage struct {
	// Next is the sequence cursor for the follow-up request's ?since=.
	Next int64 `json:"next"`
	// Events are the stored events, oldest first.
	Events []obs.StoredEvent `json:"events"`
}

// handleDebugEvents serves the wide-event ring: GET /debug/events
// returns events with sequence numbers above ?since= (0 = everything
// retained), at most ?n= of them.
func (s *server) handleDebugEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET only")
		return
	}
	q := r.URL.Query()
	since, _ := strconv.ParseInt(q.Get("since"), 10, 64)
	limit, _ := strconv.Atoi(q.Get("n"))
	evs := s.log.Events(since, limit)
	page := EventsPage{Events: evs}
	if len(evs) > 0 {
		page.Next = evs[len(evs)-1].Seq
	} else {
		// Nothing after the cursor: advance past evictions (and clamp a
		// stale cursor from a restarted worker) to the newest sequence.
		page.Next = s.log.Seq()
	}
	if page.Events == nil {
		page.Events = []obs.StoredEvent{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(page)
}

// classifyRunError maps a job failure to its HTTP status and error code,
// counting aborts of the disconnect kind.
func classifyRunError(r *http.Request, err error) (int, string) {
	if errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) && r.Context().Err() != nil {
		// The client hung up; nobody reads this response, but the
		// status keeps the request log and metrics honest. 499 is the
		// de-facto "client closed request" code.
		mCanceled.Inc()
		return 499, CodeClientClosed
	}
	return errorCode(err)
}

// errorCode maps a job failure to its HTTP status and error code without
// reference to the carrying request — the shared classification for /run
// responses and per-item batch errors. Deadline aborts are counted here.
func errorCode(err error) (int, string) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		mDeadline.Inc()
		return http.StatusGatewayTimeout, CodeDeadlineExceeded
	case errors.Is(err, acerr.ErrUnknownNode):
		return http.StatusUnprocessableEntity, CodeUnknownNode
	case errors.Is(err, acerr.ErrNoConvergence):
		return http.StatusUnprocessableEntity, CodeNoConvergence
	case errors.Is(err, acerr.ErrSingularMatrix):
		return http.StatusUnprocessableEntity, CodeSingularMatrix
	case errors.Is(err, acerr.ErrAccuracy):
		return http.StatusUnprocessableEntity, CodeAccuracy
	default:
		return http.StatusUnprocessableEntity, CodeRunFailed
	}
}

// Run executes one job locally (tests and the CLI's local corner driver
// call this; the server goes through runCached with its cache). A
// canceled or deadline-expired ctx aborts the solve within one linear
// solve with an error wrapping acerr.ErrCanceled plus the context's own
// error.
func Run(ctx context.Context, req *Request) (body []byte, contentType string, err error) {
	if err := checkFormat(req.Format); err != nil {
		return nil, "", err
	}
	opts, err := req.Options.Normalize()
	if err != nil {
		return nil, "", err
	}
	body, contentType, _, err = runCached(ctx, nil, req, opts, nil)
	return body, contentType, err
}

// runCached executes one job against the compiled-system cache: the
// (netlist, variables) content address is looked up and only a miss pays
// for parse → flatten → MNA compile (single-flight: concurrent identical
// submissions share one compile). A hit forks the cached artifact and
// goes straight to numeric refactorization and the sweep — the parse,
// flatten, mna_assembly, and op phase spans are absent from the run
// trace, which is how a warm run is recognized in the flight recorder. A
// nil cache compiles every request from scratch. opts must come from the
// request's Options.Normalize (the handler already has it from decode).
func runCached(ctx context.Context, cache *Cache, req *Request, opts tool.Options, run *obs.Run) (body []byte, contentType string, cacheHit bool, err error) {
	mRunsTotal.Inc()
	defer func() {
		if err != nil {
			mRunErrors.Inc()
		}
	}()
	if len(req.Netlist) > MaxNetlistBytes {
		return nil, "", false, fmt.Errorf("farm: netlist larger than %d bytes", MaxNetlistBytes)
	}
	opts.Trace = run

	compile := func() (*tool.Compiled, error) {
		sp := obs.StartPhase(run, "parse")
		ckt, err := netlist.Parse(req.Netlist)
		sp.End()
		if err != nil {
			return nil, err
		}
		for k, v := range req.Variables {
			if _, ok := ckt.Params[k]; !ok {
				return nil, fmt.Errorf("farm: unknown design variable %q", k)
			}
			ckt.Params[k] = v
		}
		return tool.Compile(ckt, opts)
	}

	var c *tool.Compiled
	if cache != nil {
		c, cacheHit, err = cache.Get(ctx, KeyFor(req.Netlist, req.Variables), compile)
	} else {
		c, err = compile()
	}
	if err != nil {
		return nil, "", false, err
	}
	t, err := tool.NewFromCompiled(c, opts)
	if err != nil {
		return nil, "", false, err
	}

	var buf bytes.Buffer
	if req.Node != "" {
		nr, err := t.SingleNode(ctx, req.Node)
		if err != nil {
			return nil, "", cacheHit, err
		}
		enc := json.NewEncoder(&buf)
		enc.SetIndent("", "  ")
		if err := enc.Encode(singleNodeJSON(nr)); err != nil {
			return nil, "", cacheHit, err
		}
		return buf.Bytes(), "application/json", cacheHit, nil
	}

	rep, err := t.AllNodes(ctx)
	if err != nil {
		return nil, "", cacheHit, err
	}
	switch req.Format {
	case "", "text":
		err = report.Text(&buf, rep)
		contentType = "text/plain; charset=utf-8"
	case "csv":
		err = report.CSV(&buf, rep)
		contentType = "text/csv"
	case "json":
		err = report.JSON(&buf, rep)
		contentType = "application/json"
	case "annotate":
		err = report.Annotate(&buf, t.Flat, rep)
		contentType = "text/plain; charset=utf-8"
	default:
		return nil, "", cacheHit, fmt.Errorf("farm: unknown format %q", req.Format)
	}
	if err != nil {
		return nil, "", cacheHit, err
	}
	return buf.Bytes(), contentType, cacheHit, nil
}

// Statusz is the JSON document served at GET /statusz: a human- and
// machine-readable snapshot of what the worker is doing right now.
type Statusz struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	// JobsInflight counts /run jobs currently executing.
	JobsInflight float64 `json:"jobs_inflight"`
	RunsTotal    int64   `json:"runs_total"`
	RunErrors    int64   `json:"run_errors_total"`
	// Overload reports the admission-control state: the concurrency
	// ceiling and the cumulative shed/canceled/deadline counts.
	Overload StatuszOverload `json:"overload"`
	// Requests maps `path="...",code="..."` label sets to request counts.
	Requests map[string]int64 `json:"http_requests_total,omitempty"`
	// Phases maps phase names (parse, mna_assembly, op, sweep, stability,
	// loop_clustering) to latency histogram summaries in seconds.
	Phases map[string]obs.HistogramSnapshot `json:"phase_latency_seconds,omitempty"`
	// Solver holds the cumulative solver counters (AC factorizations and
	// solves, Newton iterations, operating-point solves, MNA compiles).
	Solver  map[string]int64 `json:"solver,omitempty"`
	Workers StatuszWorkers   `json:"workers"`
	// Numerics reports the numerical-health observatory: residual,
	// pivot-growth, and condition-estimate histogram summaries plus the
	// cumulative refinement/breach counts. Nil until the first measured
	// sweep point.
	Numerics *StatuszNumerics `json:"numerics,omitempty"`
	// Cache reports the compiled-system cache: occupancy, capacity, and
	// the cumulative hit/miss/eviction/invalidation counters. Nil when
	// caching is disabled.
	Cache *CacheStats `json:"cache,omitempty"`
	// Build identifies the binary (version, toolchain, VCS revision) so a
	// fleet poller can tell mixed-version fleets apart.
	Build obs.BuildInfo `json:"build"`
	// SLO scores the worker against its availability and latency
	// objectives over the configured rolling windows, with the
	// multi-window burn-rate health verdict.
	SLO obs.SLOSnapshot `json:"slo"`
	// DebugRunsURL points at the worker's flight recorder (GET lists
	// recent runs; append /<id> for one run's full trace).
	DebugRunsURL string `json:"debug_runs_url,omitempty"`
	// DebugEventsURL points at the worker's wide-event ring.
	DebugEventsURL string `json:"debug_events_url,omitempty"`
}

// StatuszOverload reports the request-shedding state of the worker.
type StatuszOverload struct {
	// MaxConcurrent is the admission-control ceiling on parallel jobs.
	MaxConcurrent int `json:"max_concurrent"`
	// Shed counts jobs rejected with 429.
	Shed int64 `json:"shed_total"`
	// Canceled counts jobs aborted by client disconnect.
	Canceled int64 `json:"canceled_total"`
	// DeadlineExceeded counts jobs aborted by their deadline.
	DeadlineExceeded int64 `json:"deadline_exceeded_total"`
}

// StatuszNumerics reports the worker's cumulative numerical health: the
// same histograms /metrics exposes as acstab_ac_residual,
// acstab_ac_pivot_growth, and acstab_ac_cond_estimate, summarized.
type StatuszNumerics struct {
	Residual         obs.HistogramSnapshot `json:"residual"`
	PivotGrowth      obs.HistogramSnapshot `json:"pivot_growth"`
	CondEstimate     obs.HistogramSnapshot `json:"cond_estimate"`
	Refinements      int64                 `json:"refinements_total"`
	ResidualBreaches int64                 `json:"residual_breaches_total"`
}

// StatuszWorkers reports sweep-pool saturation.
type StatuszWorkers struct {
	GOMAXPROCS int `json:"gomaxprocs"`
	// SweepBusy is the number of sweep workers executing right now.
	SweepBusy float64 `json:"sweep_busy"`
	// Utilization is SweepBusy / GOMAXPROCS.
	Utilization float64 `json:"utilization"`
}

// statuszFrom assembles the status document from a registry snapshot.
func statuszFrom(snap map[string]any, uptime time.Duration, cfg Config) *Statusz {
	st := &Statusz{
		UptimeSeconds: uptime.Seconds(),
		Requests:      map[string]int64{},
		Phases:        map[string]obs.HistogramSnapshot{},
		Solver:        map[string]int64{},
	}
	st.Workers.GOMAXPROCS = runtime.GOMAXPROCS(0)
	st.Overload.MaxConcurrent = cfg.MaxConcurrent
	const (
		phasePrefix = `acstab_phase_duration_seconds{phase="`
		reqPrefix   = `acstab_http_requests_total{`
		solverPre   = "acstab_"
	)
	var num StatuszNumerics
	for name, v := range snap {
		switch {
		case name == "acstab_ac_residual":
			num.Residual, _ = v.(obs.HistogramSnapshot)
		case name == "acstab_ac_pivot_growth":
			num.PivotGrowth, _ = v.(obs.HistogramSnapshot)
		case name == "acstab_ac_cond_estimate":
			num.CondEstimate, _ = v.(obs.HistogramSnapshot)
		case strings.HasPrefix(name, phasePrefix):
			phase := strings.TrimSuffix(strings.TrimPrefix(name, phasePrefix), `"}`)
			if hs, ok := v.(obs.HistogramSnapshot); ok {
				st.Phases[phase] = hs
			}
		case strings.HasPrefix(name, reqPrefix):
			labels := strings.TrimSuffix(strings.TrimPrefix(name, reqPrefix), "}")
			if n, ok := v.(int64); ok {
				st.Requests[labels] = n
			}
		case name == "acstab_jobs_inflight":
			st.JobsInflight, _ = v.(float64)
		case name == "acstab_farm_runs_total":
			st.RunsTotal, _ = v.(int64)
		case name == "acstab_farm_run_errors_total":
			st.RunErrors, _ = v.(int64)
		case name == "acstab_farm_shed_total":
			st.Overload.Shed, _ = v.(int64)
		case name == "acstab_farm_canceled_total":
			st.Overload.Canceled, _ = v.(int64)
		case name == "acstab_farm_deadline_exceeded_total":
			st.Overload.DeadlineExceeded, _ = v.(int64)
		case name == "acstab_sweep_workers_busy":
			st.Workers.SweepBusy, _ = v.(float64)
		case strings.HasPrefix(name, solverPre) && strings.HasSuffix(name, "_total") &&
			!strings.HasPrefix(name, "acstab_http_"):
			// Remaining counters are solver/sweep volume counters.
			if n, ok := v.(int64); ok {
				key := strings.TrimSuffix(strings.TrimPrefix(name, solverPre), "_total")
				st.Solver[key] = n
			}
		}
	}
	if st.Workers.GOMAXPROCS > 0 {
		st.Workers.Utilization = st.Workers.SweepBusy / float64(st.Workers.GOMAXPROCS)
	}
	if num.Residual.Count > 0 {
		num.Refinements = st.Solver["ac_refinements"]
		num.ResidualBreaches = st.Solver["ac_residual_breaches"]
		st.Numerics = &num
	}
	return st
}

func (s *server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	st := statuszFrom(obs.Default.Snapshot(), time.Since(s.start), s.cfg)
	if s.cache != nil {
		cs := s.cache.Stats()
		st.Cache = &cs
	}
	st.DebugRunsURL = "/debug/runs"
	st.DebugEventsURL = "/debug/events"
	st.Build = s.build
	st.SLO = s.slo.Snapshot()
	st.SLO.PublishGauges()
	enc.Encode(st)
}

type singleNodeResult struct {
	Node       string  `json:"node"`
	Skipped    bool    `json:"skipped,omitempty"`
	SkipReason string  `json:"skip_reason,omitempty"`
	PeakValue  float64 `json:"peak,omitempty"`
	FreqHz     float64 `json:"natural_freq_hz,omitempty"`
	Zeta       float64 `json:"zeta,omitempty"`
	PMDeg      float64 `json:"phase_margin_deg,omitempty"`
	Overshoot  float64 `json:"overshoot_pct,omitempty"`
}

func singleNodeJSON(nr *tool.NodeResult) singleNodeResult {
	out := singleNodeResult{Node: nr.Node, Skipped: nr.Skipped, SkipReason: nr.SkipReason}
	if nr.Best != nil {
		out.PeakValue = nr.Best.Value
		out.FreqHz = nr.Best.Freq
		out.Zeta = nr.Best.Zeta
		out.PMDeg = nr.Best.PhaseMarginDeg
		out.Overshoot = nr.Best.OvershootPct
	}
	return out
}

// Client submits jobs to a farm worker, retrying shed (429) and
// transient (5xx, transport) failures with exponential backoff and
// jitter.
type Client struct {
	// BaseURL is the worker address, e.g. "http://farm:8080".
	BaseURL string
	// HTTPClient overrides the transport; nil selects a client with
	// Timeout (below) as its per-attempt limit.
	HTTPClient *http.Client
	// Timeout bounds each attempt when HTTPClient is nil (default 5m).
	Timeout time.Duration
	// MaxRetries is the number of re-attempts after the first try on
	// retryable failures (default 3; negative disables retries).
	MaxRetries int
	// RetryBaseDelay seeds the exponential backoff (default 200ms). The
	// delay doubles per attempt with ±50% jitter; a larger Retry-After
	// hint from the worker takes precedence.
	RetryBaseDelay time.Duration
	// MaxRetryDelay caps the backoff (default 5s).
	MaxRetryDelay time.Duration
}

// StatusError is a non-2xx reply from a farm worker, carrying the
// structured error fields when the worker sent them.
type StatusError struct {
	// StatusCode is the HTTP status.
	StatusCode int
	// Code is the machine-readable error code (empty for unstructured
	// bodies).
	Code string
	// Message is the human-readable failure description.
	Message string
	// RetryAfter is the worker's backoff hint (0 if absent).
	RetryAfter time.Duration
}

// Error implements the error interface.
func (e *StatusError) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("farm: worker returned %d %s: %s", e.StatusCode, e.Code, e.Message)
	}
	return fmt.Sprintf("farm: worker returned %d: %s", e.StatusCode, e.Message)
}

// Retryable reports whether a retry may succeed: the worker shed the job
// (429) or failed transiently (5xx).
func (e *StatusError) Retryable() bool {
	return e.StatusCode == http.StatusTooManyRequests || e.StatusCode >= 500
}

// Submit posts the job and returns the rendered report body. Shed and
// transient failures are retried per the client's backoff settings; the
// final failure is returned as a *StatusError (HTTP-level) or transport
// error. ctx bounds the whole call including backoff waits.
func (c *Client) Submit(ctx context.Context, req *Request) ([]byte, error) {
	body, _, err := c.submit(ctx, req, nil, false)
	return body, err
}

// SubmitTraced is Submit with distributed tracing: it asks the worker to
// collect its run trace and grafts the returned remote spans into run,
// anchored inside this client's request window (clock-skew safe) and
// annotated with the attempt number so retried submissions stay
// distinguishable. A nil run behaves exactly like Submit.
func (c *Client) SubmitTraced(ctx context.Context, req *Request, run *obs.Run) ([]byte, error) {
	body, _, err := c.submit(ctx, req, run, false)
	return body, err
}

// SubmitCollect posts the job asking the worker for its run trace and
// returns that trace to the caller instead of grafting it. The shard
// coordinator uses this: it races hedged duplicate submissions of one
// shard, and only the winning attempt's trace may be grafted into the
// run — a submit-time graft would splice the loser in too.
func (c *Client) SubmitCollect(ctx context.Context, req *Request) ([]byte, *obs.Trace, error) {
	return c.submit(ctx, req, nil, true)
}

func (c *Client) submit(ctx context.Context, req *Request, run *obs.Run, collect bool) ([]byte, *obs.Trace, error) {
	hc := c.HTTPClient
	if hc == nil {
		t := c.Timeout
		if t <= 0 {
			t = 5 * time.Minute
		}
		hc = &http.Client{Timeout: t}
	}
	wire := *req
	if wire.V == 0 {
		wire.V = WireVersion
	}
	if run != nil || collect {
		wire.CollectTrace = true
		if wire.TraceID == "" {
			wire.TraceID = newTraceID()
		}
	}
	payload, err := json.Marshal(&wire)
	if err != nil {
		return nil, nil, err
	}
	base := c.RetryBaseDelay
	if base <= 0 {
		base = 200 * time.Millisecond
	}
	maxDelay := c.MaxRetryDelay
	if maxDelay <= 0 {
		maxDelay = 5 * time.Second
	}
	retries := c.MaxRetries
	if retries == 0 {
		retries = 3
	}
	if retries < 0 {
		retries = 0
	}

	var lastErr error
	for attempt := 0; ; attempt++ {
		attemptStart := time.Now()
		sp := obs.StartPhase(run, "farm_submit")
		body, tr, err := c.submitOnce(ctx, hc, payload)
		sp.End()
		if err == nil {
			if run != nil && tr != nil {
				run.GraftRemote(*tr, attemptStart, time.Since(attemptStart), attempt+1)
			}
			return body, tr, nil
		}
		lastErr = err
		if attempt >= retries || !retryable(err) || ctx.Err() != nil {
			return nil, nil, lastErr
		}
		delay := backoffDelay(base, maxDelay, attempt)
		var se *StatusError
		if errors.As(err, &se) && se.RetryAfter > delay {
			delay = se.RetryAfter
		}
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return nil, nil, fmt.Errorf("farm: %w (last attempt: %v)", ctx.Err(), lastErr)
		}
	}
}

// submitOnce performs one POST /run attempt, always draining and closing
// the response body so the underlying connection returns to the pool for
// the next attempt instead of leaking. A TraceHeader-marked response is
// unwrapped: the rendered report and the worker's trace come back
// separately.
func (c *Client) submitOnce(ctx context.Context, hc *http.Client, payload []byte) ([]byte, *obs.Trace, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/run",
		bytes.NewReader(payload))
	if err != nil {
		return nil, nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := hc.Do(hreq)
	if err != nil {
		return nil, nil, fmt.Errorf("farm: %w", err)
	}
	body, readErr := io.ReadAll(resp.Body)
	// Drain whatever ReadAll left behind (e.g. on a limited read error)
	// and close: an undrained body poisons connection reuse.
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if readErr != nil {
		return nil, nil, fmt.Errorf("farm: reading response: %w", readErr)
	}
	if resp.StatusCode != http.StatusOK {
		se := &StatusError{StatusCode: resp.StatusCode, Message: string(bytes.TrimSpace(body))}
		var eb ErrorBody
		if json.Unmarshal(body, &eb) == nil && eb.Error.Code != "" {
			se.Code = eb.Error.Code
			se.Message = eb.Error.Message
		}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
				se.RetryAfter = time.Duration(secs) * time.Second
			}
		}
		return nil, nil, se
	}
	if resp.Header.Get(TraceHeader) != "" {
		var env TracedResponse
		if err := json.Unmarshal(body, &env); err != nil {
			return nil, nil, fmt.Errorf("farm: bad traced-response envelope: %w", err)
		}
		return env.Body, env.Trace, nil
	}
	return body, nil, nil
}

// newTraceID returns a random 64-bit hex correlation ID.
func newTraceID() string {
	var b [8]byte
	crand.Read(b[:])
	return hex.EncodeToString(b[:])
}

// retryable reports whether an attempt failure is worth retrying:
// transport errors and retryable status codes are; 4xx rejections and
// context expiry are not.
func retryable(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var se *StatusError
	if errors.As(err, &se) {
		return se.Retryable()
	}
	return true // transport-level failure
}

// backoffDelay computes the attempt's wait: base·2^attempt with ±50%
// jitter, capped at maxDelay. Jitter decorrelates a thundering herd of
// clients retrying against the same recovering worker.
func backoffDelay(base, maxDelay time.Duration, attempt int) time.Duration {
	d := base << uint(attempt)
	if d > maxDelay || d <= 0 {
		d = maxDelay
	}
	jitter := 0.5 + rand.Float64()
	out := time.Duration(float64(d) * jitter)
	if out > maxDelay {
		out = maxDelay
	}
	return out
}
