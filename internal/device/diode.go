package device

import "math"

// DiodeParams are the model parameters of a junction diode.
type DiodeParams struct {
	IS  float64 // saturation current (A)
	N   float64 // emission coefficient
	CJO float64 // zero-bias junction capacitance (F)
	VJ  float64 // built-in potential (V)
	M   float64 // grading coefficient
	TT  float64 // transit time (s)
	FC  float64 // forward-bias depletion-cap coefficient
	XTI float64 // IS temperature exponent
	EG  float64 // bandgap (eV)
	// Area is the instance area multiplier.
	Area float64
}

// DefaultDiode returns SPICE-default diode parameters.
func DefaultDiode() DiodeParams {
	return DiodeParams{IS: 1e-14, N: 1, VJ: 1, M: 0.5, FC: 0.5, XTI: 3, EG: 1.11, Area: 1}
}

// DiodeOP is the evaluated state of a diode at a candidate bias.
type DiodeOP struct {
	Id float64 // anode->cathode current
	Gd float64 // dId/dVd
	Cd float64 // small-signal capacitance (depletion + diffusion)
}

// ISAtTemp scales a saturation current from TNomC to tempC with the
// standard SPICE temperature law.
func ISAtTemp(is, n, xti, eg, tempC float64) float64 {
	t := CelsiusToKelvin(tempC)
	tnom := CelsiusToKelvin(TNomC)
	vt := BoltzmannK * t / ChargeQ
	ratio := t / tnom
	return is * math.Pow(ratio, xti/n) * math.Exp(eg/(n*vt)*(ratio-1))
}

// Eval evaluates the diode at junction voltage vd and temperature tempC.
// A small conductance gmin is added for convergence robustness.
func (p DiodeParams) Eval(vd, tempC, gmin float64) DiodeOP {
	vt := p.N * Vt(tempC)
	is := ISAtTemp(p.IS, p.N, p.XTI, p.EG, tempC) * p.Area
	e, de := expLim(vd / vt)
	id := is * (e - 1)
	gd := is * de / vt
	op := DiodeOP{
		Id: id + gmin*vd,
		Gd: gd + gmin,
	}
	op.Cd = JunctionCap(p.CJO*p.Area, p.VJ, p.M, p.FC, vd) + p.TT*gd
	return op
}

// VCrit returns the junction-limiting critical voltage at tempC.
func (p DiodeParams) VCrit(tempC float64) float64 {
	return CritVoltage(p.IS*p.Area, p.N*Vt(tempC))
}
