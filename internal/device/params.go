package device

import (
	"fmt"
	"strings"

	"acstab/internal/netlist"
)

// DiodeFromModel builds diode parameters from a .model card and the
// instance area factor.
func DiodeFromModel(m *netlist.Model, area float64) (DiodeParams, error) {
	if !strings.EqualFold(m.Type, "d") {
		return DiodeParams{}, fmt.Errorf("device: model %q is %q, want d", m.Name, m.Type)
	}
	p := DefaultDiode()
	p.IS = m.Param("is", p.IS)
	p.N = m.Param("n", p.N)
	p.CJO = m.Param("cjo", m.Param("cj0", p.CJO))
	p.VJ = m.Param("vj", p.VJ)
	p.M = m.Param("m", p.M)
	p.TT = m.Param("tt", p.TT)
	p.FC = m.Param("fc", p.FC)
	p.XTI = m.Param("xti", p.XTI)
	p.EG = m.Param("eg", p.EG)
	if area > 0 {
		p.Area = area
	}
	return p, nil
}

// BJTFromModel builds BJT parameters from a .model card (type npn or pnp)
// and the instance area factor.
func BJTFromModel(m *netlist.Model, area float64) (BJTParams, error) {
	p := DefaultBJT()
	switch strings.ToLower(m.Type) {
	case "npn":
	case "pnp":
		p.PNP = true
	default:
		return BJTParams{}, fmt.Errorf("device: model %q is %q, want npn/pnp", m.Name, m.Type)
	}
	p.IS = m.Param("is", p.IS)
	p.BF = m.Param("bf", p.BF)
	p.BR = m.Param("br", p.BR)
	p.NF = m.Param("nf", p.NF)
	p.NR = m.Param("nr", p.NR)
	p.VAF = m.Param("vaf", p.VAF)
	p.CJE = m.Param("cje", p.CJE)
	p.VJE = m.Param("vje", p.VJE)
	p.MJE = m.Param("mje", p.MJE)
	p.CJC = m.Param("cjc", p.CJC)
	p.VJC = m.Param("vjc", p.VJC)
	p.MJC = m.Param("mjc", p.MJC)
	p.TF = m.Param("tf", p.TF)
	p.TR = m.Param("tr", p.TR)
	p.FC = m.Param("fc", p.FC)
	p.XTI = m.Param("xti", p.XTI)
	p.EG = m.Param("eg", p.EG)
	if area > 0 {
		p.Area = area
	}
	return p, nil
}

// MOSFromModel builds MOSFET parameters from a .model card (type nmos or
// pmos) and the instance W and L.
func MOSFromModel(m *netlist.Model, w, l float64) (MOSParams, error) {
	p := DefaultMOS()
	switch strings.ToLower(m.Type) {
	case "nmos":
	case "pmos":
		p.PMOS = true
	default:
		return MOSParams{}, fmt.Errorf("device: model %q is %q, want nmos/pmos", m.Name, m.Type)
	}
	p.VTO = m.Param("vto", m.Param("vt0", p.VTO))
	p.KP = m.Param("kp", p.KP)
	p.LAMBDA = m.Param("lambda", p.LAMBDA)
	p.GAMMA = m.Param("gamma", p.GAMMA)
	p.PHI = m.Param("phi", p.PHI)
	p.CGSO = m.Param("cgso", p.CGSO)
	p.CGDO = m.Param("cgdo", p.CGDO)
	p.COX = m.Param("cox", p.COX)
	if tox := m.Param("tox", 0); tox > 0 && p.COX == 0 {
		const eps0 = 8.8541878128e-12
		const epsrSiO2 = 3.9
		p.COX = eps0 * epsrSiO2 / tox
	}
	if w > 0 {
		p.W = w
	}
	if l > 0 {
		p.L = l
	}
	// PMOS models conventionally carry negative VTO; the evaluator works in
	// the NMOS frame where threshold is positive.
	if p.PMOS && p.VTO < 0 {
		p.VTO = -p.VTO
	}
	return p, nil
}

// ResistorAtTemp applies the standard resistor temperature law
// r(T) = r * (1 + tc1*dT + tc2*dT^2) with dT measured from TNomC.
func ResistorAtTemp(r, tc1, tc2, tempC float64) float64 {
	dt := tempC - TNomC
	return r * (1 + tc1*dt + tc2*dt*dt)
}
