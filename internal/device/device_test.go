package device

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"acstab/internal/netlist"
)

func TestVt(t *testing.T) {
	// kT/q at 27C ~ 25.85 mV.
	if v := Vt(27); math.Abs(v-0.02585) > 1e-4 {
		t.Errorf("Vt(27) = %g", v)
	}
	if Vt(127) <= Vt(27) {
		t.Error("Vt must increase with temperature")
	}
}

func TestExpLimContinuity(t *testing.T) {
	// Continuity and monotonicity across the clamp point.
	prev := 0.0
	for x := 75.0; x < 90; x += 0.01 {
		e, de := expLim(x)
		if e <= prev {
			t.Fatalf("expLim not increasing at %g", x)
		}
		if de <= 0 {
			t.Fatalf("derivative non-positive at %g", x)
		}
		prev = e
	}
	// Below the limit it is exp.
	e, de := expLim(1)
	if math.Abs(e-math.E) > 1e-12 || math.Abs(de-math.E) > 1e-12 {
		t.Error("expLim(1) != e")
	}
}

func TestDiodeForward(t *testing.T) {
	p := DefaultDiode()
	// At 0.6V forward, current should be ~ IS*exp(0.6/vt) ~ 1e-14*e^23.2.
	op := p.Eval(0.6, 27, 0)
	want := 1e-14 * (math.Exp(0.6/Vt(27)) - 1)
	if math.Abs(op.Id-want) > 1e-9*want {
		t.Errorf("Id = %g, want %g", op.Id, want)
	}
	// gd = Id/vt approximately.
	if math.Abs(op.Gd-op.Id/Vt(27)) > 1e-3*op.Gd {
		t.Errorf("Gd = %g, Id/vt = %g", op.Gd, op.Id/Vt(27))
	}
}

func TestDiodeReverse(t *testing.T) {
	p := DefaultDiode()
	op := p.Eval(-5, 27, 0)
	if math.Abs(op.Id+p.IS) > 1e-16 {
		t.Errorf("reverse Id = %g, want -IS", op.Id)
	}
	if op.Gd <= 0 {
		t.Error("Gd must stay positive")
	}
}

func TestDiodeDerivativeConsistencyQuick(t *testing.T) {
	p := DefaultDiode()
	f := func(raw float64) bool {
		vd := math.Mod(raw, 0.8) // -0.8..0.8
		if math.IsNaN(vd) {
			return true
		}
		h := 1e-7
		op := p.Eval(vd, 27, 0)
		op1 := p.Eval(vd+h, 27, 0)
		numg := (op1.Id - op.Id) / h
		return math.Abs(numg-op.Gd) <= 1e-3*(math.Abs(numg)+1e-15)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestDiodeTempDependence(t *testing.T) {
	p := DefaultDiode()
	// Forward voltage at constant current drops ~2mV/K: at higher temp,
	// more current at the same voltage.
	i27 := p.Eval(0.6, 27, 0).Id
	i85 := p.Eval(0.6, 85, 0).Id
	if i85 <= i27 {
		t.Error("diode current must increase with temperature at fixed bias")
	}
}

func TestDiodeCaps(t *testing.T) {
	p := DefaultDiode()
	p.CJO = 1e-12
	p.TT = 1e-9
	// Reverse bias: only depletion, less than CJO... at vd<0,
	// cj = CJO/(1-v/VJ)^M < CJO.
	op := p.Eval(-2, 27, 0)
	if op.Cd >= 1e-12 || op.Cd <= 0 {
		t.Errorf("reverse cap = %g", op.Cd)
	}
	// Forward bias: diffusion dominates.
	opf := p.Eval(0.7, 27, 0)
	if opf.Cd < p.TT*opf.Gd {
		t.Errorf("forward cap %g < diffusion %g", opf.Cd, p.TT*opf.Gd)
	}
}

func TestJunctionCapContinuity(t *testing.T) {
	// Continuous across FC*VJ.
	cj0, vj, m, fc := 1e-12, 0.75, 0.33, 0.5
	below := JunctionCap(cj0, vj, m, fc, fc*vj-1e-9)
	above := JunctionCap(cj0, vj, m, fc, fc*vj+1e-9)
	if math.Abs(below-above) > 1e-15*cj0+1e-18 {
		t.Errorf("discontinuity at knee: %g vs %g", below, above)
	}
}

func TestBJTForwardActive(t *testing.T) {
	p := DefaultBJT()
	p.VAF = 100
	op := p.Eval(0.65, -5, 27, 0) // vbe=0.65, vbc=-5 (forward active)
	if op.Ic <= 0 {
		t.Fatalf("Ic = %g", op.Ic)
	}
	beta := op.Ic / op.Ib
	if beta < 90 || beta > 115 {
		t.Errorf("beta = %g, want ~100 (with Early boost)", beta)
	}
	// gm ~ Ic/vt.
	if math.Abs(op.Gm-op.Ic/Vt(27)) > 0.1*op.Gm {
		t.Errorf("gm = %g, Ic/vt = %g", op.Gm, op.Ic/Vt(27))
	}
	// Output conductance ~ Ic/VAF.
	if math.Abs(op.Go-op.Ic/100) > 0.3*op.Go {
		t.Errorf("go = %g, Ic/VAF = %g", op.Go, op.Ic/100)
	}
}

func TestBJTJacobianConsistencyQuick(t *testing.T) {
	p := DefaultBJT()
	p.VAF = 50
	f := func(r1, r2 float64) bool {
		vbe := math.Mod(math.Abs(r1), 0.75)
		vbc := math.Mod(r2, 0.5) - 2 // mostly reverse biased bc
		if math.IsNaN(vbe) || math.IsNaN(vbc) {
			return true
		}
		h := 1e-8
		op := p.Eval(vbe, vbc, 27, 0)
		ope := p.Eval(vbe+h, vbc, 27, 0)
		opc := p.Eval(vbe, vbc+h, 27, 0)
		checks := []struct{ num, ana float64 }{
			{(ope.Ic - op.Ic) / h, op.DIcDVbe},
			{(opc.Ic - op.Ic) / h, op.DIcDVbc},
			{(ope.Ib - op.Ib) / h, op.DIbDVbe},
			{(opc.Ib - op.Ib) / h, op.DIbDVbc},
		}
		for _, c := range checks {
			scale := math.Abs(c.num) + math.Abs(c.ana) + 1e-12
			if math.Abs(c.num-c.ana) > 1e-3*scale {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestBJTSaturationRegion(t *testing.T) {
	p := DefaultBJT()
	// Both junctions forward: Ic should drop versus forward active.
	fwd := p.Eval(0.65, -1, 27, 0)
	sat := p.Eval(0.65, 0.6, 27, 0)
	if sat.Ic >= fwd.Ic {
		t.Error("saturation should reduce Ic")
	}
}

func TestBJTPolarity(t *testing.T) {
	p := DefaultBJT()
	if p.Polarity() != 1 {
		t.Error("NPN polarity")
	}
	p.PNP = true
	if p.Polarity() != -1 {
		t.Error("PNP polarity")
	}
}

func TestMOSRegions(t *testing.T) {
	p := DefaultMOS()
	p.VTO = 0.7
	p.KP = 100e-6
	p.W, p.L = 10e-6, 1e-6
	if op := p.Eval(0.3, 1, 0); op.Region != RegionCutoff || op.Id != 0 {
		t.Errorf("cutoff: %+v", op)
	}
	if op := p.Eval(1.5, 0.2, 0); op.Region != RegionTriode {
		t.Errorf("triode: %+v", op)
	}
	op := p.Eval(1.5, 2, 0)
	if op.Region != RegionSaturation {
		t.Errorf("saturation: %+v", op)
	}
	// Id = beta/2 vov^2 = (100u*10)/2 * 0.64 = 3.2e-4.
	want := 100e-6 * 10 / 2 * 0.8 * 0.8
	if math.Abs(op.Id-want) > 1e-9 {
		t.Errorf("Idsat = %g, want %g", op.Id, want)
	}
	// gm = beta*vov.
	if math.Abs(op.Gm-100e-6*10*0.8) > 1e-9 {
		t.Errorf("gm = %g", op.Gm)
	}
}

func TestMOSContinuityTriodeSat(t *testing.T) {
	p := DefaultMOS()
	p.VTO = 0.7
	p.KP = 100e-6
	p.LAMBDA = 0.02
	p.W, p.L = 10e-6, 1e-6
	vgs := 1.5
	vov := vgs - p.VTO
	below := p.Eval(vgs, vov-1e-9, 0)
	above := p.Eval(vgs, vov+1e-9, 0)
	if math.Abs(below.Id-above.Id) > 1e-9*above.Id {
		t.Errorf("Id discontinuous at vds=vov: %g vs %g", below.Id, above.Id)
	}
	if math.Abs(below.Gm-above.Gm) > 1e-6*above.Gm {
		t.Errorf("Gm discontinuous: %g vs %g", below.Gm, above.Gm)
	}
}

func TestMOSDerivativeConsistencyQuick(t *testing.T) {
	p := DefaultMOS()
	p.VTO = 0.7
	p.KP = 100e-6
	p.LAMBDA = 0.05
	p.GAMMA = 0.4
	p.W, p.L = 10e-6, 1e-6
	f := func(r1, r2, r3 float64) bool {
		vgs := math.Mod(math.Abs(r1), 3)
		vds := math.Mod(math.Abs(r2), 3)
		vbs := -math.Mod(math.Abs(r3), 2)
		if math.IsNaN(vgs) || math.IsNaN(vds) || math.IsNaN(vbs) {
			return true
		}
		// Avoid evaluating straddling the region boundary.
		h := 1e-7
		op := p.Eval(vgs, vds, vbs)
		opg := p.Eval(vgs+h, vds, vbs)
		opd := p.Eval(vgs, vds+h, vbs)
		opb := p.Eval(vgs, vds, vbs+h)
		if op.Region != opg.Region || op.Region != opd.Region || op.Region != opb.Region {
			return true
		}
		checks := []struct{ num, ana float64 }{
			{(opg.Id - op.Id) / h, op.Gm},
			{(opd.Id - op.Id) / h, op.Gds},
			{(opb.Id - op.Id) / h, op.Gmb},
		}
		for _, c := range checks {
			scale := math.Abs(c.num) + math.Abs(c.ana) + 1e-9
			if math.Abs(c.num-c.ana) > 1e-3*scale {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestMOSBodyEffect(t *testing.T) {
	p := DefaultMOS()
	p.VTO = 0.7
	p.KP = 100e-6
	p.GAMMA = 0.5
	p.PHI = 0.7
	p.W, p.L = 10e-6, 1e-6
	// Reverse body bias raises threshold, lowering Id.
	id0 := p.Eval(1.5, 2, 0).Id
	idb := p.Eval(1.5, 2, -1).Id
	if idb >= id0 {
		t.Error("reverse body bias should reduce Id")
	}
}

func TestPNJunctionLimit(t *testing.T) {
	vt := Vt(27)
	vcrit := CritVoltage(1e-14, vt)
	// Small steps pass through unchanged.
	if got := PNJunctionLimit(0.61, 0.6, vt, vcrit); got != 0.61 {
		t.Errorf("small step limited: %g", got)
	}
	// A huge jump is damped.
	got := PNJunctionLimit(5, 0.6, vt, vcrit)
	if got >= 5 || got < 0.6 {
		t.Errorf("big step not damped: %g", got)
	}
}

func TestModelConverters(t *testing.T) {
	c := netlist.NewCircuit("x")
	qm := c.SetModel("qn", "npn", map[string]float64{"is": 1e-15, "bf": 200, "vaf": 80})
	p, err := BJTFromModel(qm, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.IS != 1e-15 || p.BF != 200 || p.VAF != 80 || p.Area != 2 || p.PNP {
		t.Errorf("BJT params = %+v", p)
	}
	pm := c.SetModel("qp", "pnp", nil)
	pp, err := BJTFromModel(pm, 1)
	if err != nil || !pp.PNP {
		t.Errorf("PNP: %+v %v", pp, err)
	}
	if _, err := BJTFromModel(c.SetModel("bad", "nmos", nil), 1); err == nil {
		t.Error("wrong model type should error")
	}

	dm := c.SetModel("dd", "d", map[string]float64{"is": 2e-14, "cjo": 1e-12})
	dp, err := DiodeFromModel(dm, 1)
	if err != nil || dp.IS != 2e-14 || dp.CJO != 1e-12 {
		t.Errorf("diode: %+v %v", dp, err)
	}

	mm := c.SetModel("nch", "nmos", map[string]float64{"vto": 0.7, "kp": 1e-4, "tox": 20e-9})
	mp, err := MOSFromModel(mm, 1e-5, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if mp.VTO != 0.7 || mp.W != 1e-5 {
		t.Errorf("mos: %+v", mp)
	}
	if mp.COX < 1e-3 || mp.COX > 3e-3 {
		t.Errorf("COX from TOX = %g, want ~1.7e-3", mp.COX)
	}
	pmod := c.SetModel("pch", "pmos", map[string]float64{"vto": -0.8})
	ppm, err := MOSFromModel(pmod, 1e-5, 1e-6)
	if err != nil || !ppm.PMOS || ppm.VTO != 0.8 {
		t.Errorf("pmos vto normalization: %+v %v", ppm, err)
	}
}

func TestResistorAtTemp(t *testing.T) {
	r := ResistorAtTemp(1000, 1e-3, 0, 127)
	if math.Abs(r-1100) > 1e-9 {
		t.Errorf("r(127) = %g, want 1100", r)
	}
	if ResistorAtTemp(1000, 0, 0, 127) != 1000 {
		t.Error("no tempco should be identity")
	}
}

func TestISAtTemp(t *testing.T) {
	// IS roughly doubles every ~5K for silicon.
	is27 := ISAtTemp(1e-14, 1, 3, 1.11, 27)
	is37 := ISAtTemp(1e-14, 1, 3, 1.11, 37)
	ratio := is37 / is27
	if ratio < 2 || ratio > 8 {
		t.Errorf("IS(37)/IS(27) = %g, want 2..8", ratio)
	}
}
