package device

// BJTParams are the model parameters of a bipolar transistor (Ebers-Moll
// transport formulation with Early effect).
type BJTParams struct {
	PNP  bool
	IS   float64 // transport saturation current (A)
	BF   float64 // forward beta
	BR   float64 // reverse beta
	NF   float64 // forward emission coefficient
	NR   float64 // reverse emission coefficient
	VAF  float64 // forward Early voltage (V), 0 = infinite
	CJE  float64 // B-E zero-bias depletion capacitance (F)
	VJE  float64
	MJE  float64
	CJC  float64 // B-C zero-bias depletion capacitance (F)
	VJC  float64
	MJC  float64
	TF   float64 // forward transit time (s)
	TR   float64 // reverse transit time (s)
	FC   float64
	XTI  float64
	EG   float64
	Area float64
}

// DefaultBJT returns SPICE-default npn parameters.
func DefaultBJT() BJTParams {
	return BJTParams{
		IS: 1e-16, BF: 100, BR: 1, NF: 1, NR: 1,
		VJE: 0.75, MJE: 0.33, VJC: 0.75, MJC: 0.33,
		FC: 0.5, XTI: 3, EG: 1.11, Area: 1,
	}
}

// BJTOP is the evaluated state of a BJT. Voltages and currents are in the
// NPN reference frame (the caller flips signs for PNP using Polarity).
// The Jacobian is with respect to (vbe, vbc).
type BJTOP struct {
	Ic, Ib float64 // collector and base terminal currents (into device)
	// Jacobian entries.
	DIcDVbe, DIcDVbc float64
	DIbDVbe, DIbDVbc float64
	// Small-signal capacitances.
	Cbe, Cbc float64
	// Informational small-signal parameters.
	Gm, Gpi, Go float64
}

// Polarity returns +1 for NPN, -1 for PNP; terminal voltages are
// multiplied by it before Eval and currents multiplied by it after.
func (p BJTParams) Polarity() float64 {
	if p.PNP {
		return -1
	}
	return 1
}

// Eval evaluates the transistor at junction voltages vbe, vbc (already in
// the NPN frame) and temperature tempC. gmin conductance is added across
// both junctions.
func (p BJTParams) Eval(vbe, vbc, tempC, gmin float64) BJTOP {
	vtf := p.NF * Vt(tempC)
	vtr := p.NR * Vt(tempC)
	is := ISAtTemp(p.IS, 1, p.XTI, p.EG, tempC) * p.Area

	ef, def := expLim(vbe / vtf)
	er, der := expLim(vbc / vtr)
	icc := is * (ef - 1) // forward transport current
	iec := is * (er - 1) // reverse transport current
	gif := is * def / vtf
	gir := is * der / vtr

	// Base-width modulation (Early): transport current scaled by
	// q = 1/(1 - vbc/VAF). Using the common first-order form
	// it = (icc - iec) * (1 - vbc/VAF).
	early := 1.0
	dEarlyDVbc := 0.0
	if p.VAF > 0 {
		early = 1 - vbc/p.VAF
		dEarlyDVbc = -1 / p.VAF
	}
	it := (icc - iec) * early

	ibf := icc / p.BF
	ibr := iec / p.BR

	// gmin conductances across each junction: the B-C leg carries
	// gmin*vbc from base to collector (so it leaves the device at C), and
	// the B-E leg gmin*vbe from base to emitter.
	op := BJTOP{}
	op.Ic = it - ibr - gmin*vbc
	op.Ib = ibf + ibr + gmin*vbe + gmin*vbc
	// Collector current partials.
	op.DIcDVbe = gif*early + 0
	op.DIcDVbc = -gir*early + (icc-iec)*dEarlyDVbc - gir/p.BR - gmin
	// Base current partials.
	op.DIbDVbe = gif/p.BF + gmin
	op.DIbDVbc = gir/p.BR + gmin

	// Capacitances: depletion + diffusion.
	gmF := gif * early
	op.Cbe = JunctionCap(p.CJE*p.Area, p.VJE, p.MJE, p.FC, vbe) + p.TF*gif
	op.Cbc = JunctionCap(p.CJC*p.Area, p.VJC, p.MJC, p.FC, vbc) + p.TR*gir

	// Small-signal summary (forward active convention).
	op.Gm = gmF
	op.Gpi = op.DIbDVbe
	// go = dIc/dVce at fixed vbe: vbc = vbe - vce so dIc/dVce = -dIc/dVbc.
	op.Go = -op.DIcDVbc
	return op
}

// VCritBE and VCritBC return the junction-limiting critical voltages.
func (p BJTParams) VCritBE(tempC float64) float64 {
	return CritVoltage(p.IS*p.Area, p.NF*Vt(tempC))
}

// VCritBC returns the base-collector critical voltage.
func (p BJTParams) VCritBC(tempC float64) float64 {
	return CritVoltage(p.IS*p.Area, p.NR*Vt(tempC))
}
