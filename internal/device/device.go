// Package device implements the device physics of the simulator: junction
// diode, bipolar transistor (Ebers-Moll with Early effect and junction /
// diffusion capacitances), and MOSFET level-1 (square law with channel-
// length modulation, body effect, and Meyer capacitances). Each evaluator
// returns terminal currents, the Jacobian entries Newton iteration needs,
// and the small-signal capacitances the AC analysis stamps. The same
// Jacobian doubles as the AC small-signal conductance set, which is what
// guarantees the AC linearization is consistent with the converged
// operating point.
package device

import "math"

// Physical constants (SI).
const (
	BoltzmannK = 1.380649e-23
	ChargeQ    = 1.602176634e-19
	TNomC      = 27 // nominal model temperature, Celsius
)

// CelsiusToKelvin converts a Celsius temperature.
func CelsiusToKelvin(c float64) float64 { return c + 273.15 }

// Vt returns the thermal voltage kT/q at the given temperature in Celsius.
func Vt(tempC float64) float64 {
	return BoltzmannK * CelsiusToKelvin(tempC) / ChargeQ
}

// expLim is a linearized exponential: above vmax/vt the exponential
// continues linearly, preventing overflow during Newton iteration while
// keeping C1 continuity.
func expLim(x float64) (e, de float64) {
	const xmax = 80 // e^80 ~ 5e34, still representable with headroom
	if x < xmax {
		e = math.Exp(x)
		return e, e
	}
	em := math.Exp(xmax)
	return em * (1 + (x - xmax)), em
}

// PNJunctionLimit implements the classic SPICE junction voltage limiting:
// given the previous iterate vold and the Newton proposal vnew, it returns
// a damped update that avoids overshooting the exponential.
func PNJunctionLimit(vnew, vold, vt, vcrit float64) float64 {
	if vnew <= vcrit || math.Abs(vnew-vold) <= 2*vt {
		return vnew
	}
	if vold > 0 {
		arg := 1 + (vnew-vold)/vt
		if arg > 0 {
			return vold + vt*math.Log(arg)
		}
		return vcrit
	}
	return vt * math.Log(vnew/vt)
}

// CritVoltage returns the critical voltage used by PNJunctionLimit for a
// junction with saturation current is at thermal voltage vt.
func CritVoltage(is, vt float64) float64 {
	return vt * math.Log(vt/(math.Sqrt2*is))
}

// JunctionCap returns the depletion capacitance of a junction with zero-
// bias capacitance cj0, built-in potential vj, grading m, at bias v. Above
// fc*vj the standard linear extrapolation avoids the singularity.
func JunctionCap(cj0, vj, m, fc, v float64) float64 {
	if cj0 == 0 {
		return 0
	}
	if v < fc*vj {
		return cj0 / math.Pow(1-v/vj, m)
	}
	// Linearized beyond forward-bias knee.
	f1 := math.Pow(1-fc, -m)
	return cj0 * f1 * (1 + m*(v-fc*vj)/(vj*(1-fc)))
}
