package device

import "math"

// MOSParams are the model parameters of a level-1 MOSFET.
type MOSParams struct {
	PMOS   bool
	VTO    float64 // zero-bias threshold voltage (V, positive for NMOS)
	KP     float64 // transconductance parameter (A/V^2)
	LAMBDA float64 // channel-length modulation (1/V)
	GAMMA  float64 // body-effect coefficient (sqrt(V))
	PHI    float64 // surface potential (V)
	CGSO   float64 // G-S overlap capacitance per meter width (F/m)
	CGDO   float64 // G-D overlap capacitance per meter width (F/m)
	COX    float64 // gate-oxide capacitance per area (F/m^2)
	W, L   float64 // channel width and length (m)
}

// DefaultMOS returns SPICE-default level-1 parameters (dimensions must be
// set from the instance).
func DefaultMOS() MOSParams {
	return MOSParams{VTO: 0, KP: 2e-5, PHI: 0.6, W: 1e-4, L: 1e-4}
}

// MOSOP is the evaluated state of a MOSFET. Voltages are in the NMOS frame
// (the caller flips signs for PMOS using Polarity). Source and drain refer
// to the terminals as connected, with vds >= 0 handled by the caller
// swapping terminals when needed (this evaluator requires vds >= 0).
type MOSOP struct {
	Id  float64 // drain->source channel current
	Gm  float64 // dId/dVgs
	Gds float64 // dId/dVds
	Gmb float64 // dId/dVbs
	// Meyer capacitances plus overlaps.
	Cgs, Cgd, Cgb float64
	Region        int // 0=cutoff, 1=triode, 2=saturation
}

// Region names.
const (
	RegionCutoff = iota
	RegionTriode
	RegionSaturation
)

// Polarity returns +1 for NMOS, -1 for PMOS.
func (p MOSParams) Polarity() float64 {
	if p.PMOS {
		return -1
	}
	return 1
}

// Eval evaluates the transistor at vgs, vds (>= 0), vbs in the NMOS frame.
func (p MOSParams) Eval(vgs, vds, vbs float64) MOSOP {
	beta := p.KP * p.W / p.L
	// Threshold with body effect.
	vth := p.VTO
	dVthDVbs := 0.0
	if p.GAMMA != 0 {
		phi := p.PHI
		if phi <= 0 {
			phi = 0.6
		}
		arg := phi - vbs
		if arg < 1e-3 {
			arg = 1e-3
		}
		sq := math.Sqrt(arg)
		vth = p.VTO + p.GAMMA*(sq-math.Sqrt(phi))
		dVthDVbs = -p.GAMMA / (2 * sq)
	}
	vov := vgs - vth
	op := MOSOP{}
	lam := 1 + p.LAMBDA*vds
	switch {
	case vov <= 0:
		op.Region = RegionCutoff
	case vds < vov:
		op.Region = RegionTriode
		op.Id = beta * (vov - vds/2) * vds * lam
		op.Gm = beta * vds * lam
		op.Gds = beta*(vov-vds)*lam + beta*(vov-vds/2)*vds*p.LAMBDA
		op.Gmb = -dVthDVbs * op.Gm
	default:
		op.Region = RegionSaturation
		op.Id = beta / 2 * vov * vov * lam
		op.Gm = beta * vov * lam
		op.Gds = beta / 2 * vov * vov * p.LAMBDA
		op.Gmb = -dVthDVbs * op.Gm
	}

	// Meyer capacitance model (simplified piecewise) plus overlaps.
	cox := p.COX * p.W * p.L
	switch op.Region {
	case RegionCutoff:
		op.Cgb = cox
	case RegionTriode:
		op.Cgs = cox / 2
		op.Cgd = cox / 2
	default:
		op.Cgs = 2.0 / 3.0 * cox
	}
	op.Cgs += p.CGSO * p.W
	op.Cgd += p.CGDO * p.W
	return op
}
