package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one entry of the Trace Event Format's traceEvents array
// (the JSON-object form understood by Perfetto and chrome://tracing).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds since trace start
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeDoc is the top-level Trace Event Format document.
type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes the trace in the Chrome Trace Event Format, so
// it opens directly in Perfetto or chrome://tracing. Layout: the local
// process is pid 1 and each grafted remote attempt its own pid (1+attempt),
// every pid named by a process_name metadata event; within a pid,
// overlapping spans (parallel sweep workers) are packed greedily into
// thread lanes, tid 0 holding the whole-run root span. Solver counters and
// slow points ride along as args of the root event.
func (t Trace) WriteChromeTrace(w io.Writer) error {
	procName := func(pid int) string {
		if pid == 1 {
			if t.Name != "" {
				return t.Name
			}
			return "acstab"
		}
		return fmt.Sprintf("farm worker (attempt %d)", pid-1)
	}
	byPid := map[int][]PhaseSpan{}
	for _, sp := range t.Phases {
		pid := 1
		if sp.Attempt > 0 {
			pid = 1 + sp.Attempt
		}
		byPid[pid] = append(byPid[pid], sp)
	}
	pids := make([]int, 0, len(byPid)+1)
	pids = append(pids, 1)
	for pid := range byPid {
		if pid != 1 {
			pids = append(pids, pid)
		}
	}
	sort.Ints(pids)

	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	var events []chromeEvent
	for _, pid := range pids {
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]any{"name": procName(pid)},
		})
	}
	// Root span: the whole run on pid 1, lane 0, carrying the counters and
	// slow points so the aggregate context survives into the viewer.
	rootDur := us(t.DurationNS)
	rootArgs := map[string]any{}
	if len(t.Counters) > 0 {
		rootArgs["counters"] = t.Counters
	}
	if len(t.SlowPoints) > 0 {
		rootArgs["slow_points"] = t.SlowPoints
	}
	if t.DroppedSpans > 0 {
		rootArgs["dropped_spans"] = t.DroppedSpans
	}
	if len(rootArgs) == 0 {
		rootArgs = nil
	}
	events = append(events, chromeEvent{
		Name: procName(1), Ph: "X", Ts: 0, Dur: &rootDur, Pid: 1, Tid: 0,
		Cat: "run", Args: rootArgs,
	})

	for _, pid := range pids {
		spans := append([]PhaseSpan(nil), byPid[pid]...)
		sort.SliceStable(spans, func(i, j int) bool { return spans[i].StartNS < spans[j].StartNS })
		// Greedy lane packing: each span takes the first lane that is free
		// at its start time, so concurrent worker phases render side by
		// side instead of overlapping in one row.
		var laneEnd []int64
		for _, sp := range spans {
			lane := -1
			for i, end := range laneEnd {
				if end <= sp.StartNS {
					lane = i
					break
				}
			}
			if lane < 0 {
				lane = len(laneEnd)
				laneEnd = append(laneEnd, 0)
			}
			laneEnd[lane] = sp.StartNS + sp.DurationNS
			dur := us(sp.DurationNS)
			ev := chromeEvent{
				Name: sp.Phase, Ph: "X", Ts: us(sp.StartNS), Dur: &dur,
				Pid: pid, Tid: lane + 1, Cat: "phase",
			}
			if sp.Attempt > 0 {
				ev.Args = map[string]any{"attempt": sp.Attempt}
			}
			events = append(events, ev)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(chromeDoc{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// WriteChromeTrace snapshots the run and writes it in the Chrome Trace
// Event Format (nil-safe; a nil run writes an empty but valid document).
func (r *Run) WriteChromeTrace(w io.Writer) error {
	return r.Trace().WriteChromeTrace(w)
}
