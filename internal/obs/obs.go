// Package obs is the zero-dependency observability layer of the stability
// farm: counters, gauges, and log-scale histograms collected in a registry
// with Prometheus text exposition and a JSON snapshot, plus a run-trace
// API (StartRun / StartPhase) that times the phases of a stability run
// (parse, MNA assembly, operating point, sweep, stability post-processing,
// loop clustering) for the CLI's -stats/-trace-json flags and the farm
// worker's /statusz endpoint.
//
// Metric names follow the Prometheus convention and may carry a literal
// label set, e.g. `acstab_phase_duration_seconds{phase="sweep"}`; the
// registry treats the full string as the metric identity and groups
// metrics of one family under a single # TYPE header on exposition.
//
// Everything is safe for concurrent use. Hot-path cost is one atomic add
// per event; metric lookup (the mutex-protected map) is meant for
// package-level vars, not per-event calls.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored to keep the counter monotonic).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add offsets the gauge by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// metric is anything the registry can expose.
type metric interface {
	// writeProm writes the exposition lines for the full metric name.
	writeProm(w io.Writer, name string) error
	// promType is the # TYPE keyword.
	promType() string
	// snapshotValue is the JSON value reported by Registry.Snapshot.
	snapshotValue() any
}

func (c *Counter) writeProm(w io.Writer, name string) error {
	_, err := fmt.Fprintf(w, "%s %d\n", name, c.Value())
	return err
}
func (c *Counter) promType() string   { return "counter" }
func (c *Counter) snapshotValue() any { return c.Value() }

func (g *Gauge) writeProm(w io.Writer, name string) error {
	_, err := fmt.Fprintf(w, "%s %g\n", name, g.Value())
	return err
}
func (g *Gauge) promType() string   { return "gauge" }
func (g *Gauge) snapshotValue() any { return g.Value() }

// Registry holds named metrics. The zero value is not usable; call
// NewRegistry. Most code uses the package-level Default registry through
// GetCounter / GetGauge / GetHistogram.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: map[string]metric{}}
}

// Default is the process-wide registry every instrumented package reports
// into; acstabd exposes it at /metrics and /statusz.
var Default = NewRegistry()

// getOrCreate returns the metric registered under name, creating it with
// mk on first use. A name already registered as a different kind panics
// with a message naming the existing kind: that is a programming error,
// not a runtime condition, and the opaque alternative (a failed type
// assertion at the call site) hides which registration collided.
func (r *Registry) getOrCreate(name, kind string, mk func() metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.promType() != kind {
			panic("obs: metric " + name + " already registered as " + m.promType())
		}
		return m
	}
	m := mk()
	r.metrics[name] = m
	return m
}

// Counter returns the counter registered under name, creating it on first
// use.
func (r *Registry) Counter(name string) *Counter {
	return r.getOrCreate(name, "counter", func() metric { return &Counter{} }).(*Counter)
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	return r.getOrCreate(name, "gauge", func() metric { return &Gauge{} }).(*Gauge)
}

// Histogram returns the histogram registered under name, creating it with
// the default log-scale duration buckets (1µs .. 1000s) on first use.
func (r *Registry) Histogram(name string) *Histogram {
	return r.HistogramBuckets(name, nil)
}

// HistogramBuckets returns the histogram registered under name, creating
// it with the given upper bounds (ascending) on first use; nil bounds
// select the default duration buckets.
func (r *Registry) HistogramBuckets(name string, bounds []float64) *Histogram {
	return r.getOrCreate(name, "histogram", func() metric { return newHistogram(bounds) }).(*Histogram)
}

// GetCounter returns a counter from the Default registry.
func GetCounter(name string) *Counter { return Default.Counter(name) }

// GetGauge returns a gauge from the Default registry.
func GetGauge(name string) *Gauge { return Default.Gauge(name) }

// GetHistogram returns a histogram from the Default registry.
func GetHistogram(name string) *Histogram { return Default.Histogram(name) }

// splitName separates a full metric name into its family and label part:
// `x_total{path="/run"}` -> (`x_total`, `{path="/run"}`).
func splitName(name string) (family, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

// WritePrometheus writes every metric in the Prometheus text exposition
// format, sorted by name, with one # TYPE header per metric family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		names = append(names, name)
	}
	ms := make(map[string]metric, len(r.metrics))
	for name, m := range r.metrics {
		ms[name] = m
	}
	r.mu.Unlock()

	sort.Strings(names)
	lastFamily := ""
	for _, name := range names {
		m := ms[name]
		family, _ := splitName(name)
		if family != lastFamily {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", family, m.promType()); err != nil {
				return err
			}
			lastFamily = family
		}
		if err := m.writeProm(w, name); err != nil {
			return err
		}
	}
	return nil
}

// Snapshot returns every metric as a JSON-friendly value keyed by full
// metric name: counters as int64, gauges as float64, histograms as
// HistogramSnapshot.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any, len(r.metrics))
	for name, m := range r.metrics {
		out[name] = m.snapshotValue()
	}
	return out
}

// Export is the full-fidelity JSON form of a registry, served at
// `/metrics?format=json` and consumed by fleet federation. Unlike
// Snapshot it keeps raw histogram buckets, so N workers' exports can be
// merged into exact fleet-level counts, sums, and quantiles.
type Export struct {
	Counters   map[string]int64         `json:"counters,omitempty"`
	Gauges     map[string]float64       `json:"gauges,omitempty"`
	Histograms map[string]HistogramData `json:"histograms,omitempty"`
}

// Export snapshots the registry in full fidelity.
func (r *Registry) Export() Export {
	r.mu.Lock()
	ms := make(map[string]metric, len(r.metrics))
	for name, m := range r.metrics {
		ms[name] = m
	}
	r.mu.Unlock()
	ex := Export{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramData{},
	}
	for name, m := range ms {
		switch v := m.(type) {
		case *Counter:
			ex.Counters[name] = v.Value()
		case *Gauge:
			ex.Gauges[name] = v.Value()
		case *Histogram:
			ex.Histograms[name] = v.Data()
		}
	}
	return ex
}
