package obs

import (
	"testing"
	"time"
)

// sloClock is a settable fake clock for driving window arithmetic.
type sloClock struct{ t time.Time }

func (c *sloClock) now() time.Time { return c.t }

func newTestTracker(windows ...time.Duration) (*SLOTracker, *sloClock) {
	clk := &sloClock{t: time.Unix(1_000_000, 0)}
	cfg := SLOConfig{
		LatencyObjective: time.Second,
		SuccessTarget:    0.99,
		LatencyTarget:    0.95,
		Windows:          windows,
		now:              clk.now,
	}
	return NewSLOTracker(cfg), clk
}

func TestSLOWindowCountsAndRatios(t *testing.T) {
	tr, clk := newTestTracker(time.Minute, 10*time.Minute)
	// 90 good-and-fast, 5 good-but-slow, 5 bad.
	for i := 0; i < 90; i++ {
		tr.Record(true, 10*time.Millisecond)
	}
	for i := 0; i < 5; i++ {
		tr.Record(true, 2*time.Second)
	}
	for i := 0; i < 5; i++ {
		tr.Record(false, 10*time.Millisecond)
	}
	snap := tr.Snapshot()
	if len(snap.Windows) != 2 {
		t.Fatalf("want 2 windows, got %d", len(snap.Windows))
	}
	for _, w := range snap.Windows {
		if w.Total != 100 || w.Good != 95 || w.Fast != 90 {
			t.Errorf("window %gs counts = %d/%d/%d, want 100/95/90",
				w.Window, w.Total, w.Good, w.Fast)
		}
		if w.SuccessRatio != 0.95 || w.LatencyOKRatio != 0.90 {
			t.Errorf("window %gs ratios = %g/%g, want 0.95/0.90",
				w.Window, w.SuccessRatio, w.LatencyOKRatio)
		}
		// burn = (1-0.95)/(1-0.99) = 5; latency burn = (1-0.90)/(1-0.95) = 2.
		if diff := w.ErrorBurnRate - 5; diff < -1e-9 || diff > 1e-9 {
			t.Errorf("error burn = %g, want 5", w.ErrorBurnRate)
		}
		if diff := w.LatencyBurnRate - 2; diff < -1e-9 || diff > 1e-9 {
			t.Errorf("latency burn = %g, want 2", w.LatencyBurnRate)
		}
	}
	// 5x error burn: above warn (2x), below critical (10x).
	if snap.Health != "warn" {
		t.Errorf("health = %q, want warn", snap.Health)
	}
	_ = clk
}

func TestSLOWindowExpiry(t *testing.T) {
	tr, clk := newTestTracker(time.Minute, 10*time.Minute)
	for i := 0; i < 10; i++ {
		tr.Record(false, time.Millisecond)
	}
	// Two minutes later the failures have left the 1m window but remain in
	// the 10m window.
	clk.t = clk.t.Add(2 * time.Minute)
	snap := tr.Snapshot()
	short, long := snap.Windows[0], snap.Windows[1]
	if short.Total != 0 {
		t.Errorf("short window should have expired the burst, has total %d", short.Total)
	}
	if short.SuccessRatio != 1 {
		t.Errorf("idle window ratio = %g, want 1 (no traffic burns nothing)", short.SuccessRatio)
	}
	if long.Total != 10 || long.Good != 0 {
		t.Errorf("long window = %d/%d, want 10/0", long.Total, long.Good)
	}
	// Past the long window everything is forgotten, including ring reuse:
	// the bucket indices are absolute, so revisiting a slot detects staleness.
	clk.t = clk.t.Add(15 * time.Minute)
	snap = tr.Snapshot()
	if snap.Windows[1].Total != 0 {
		t.Errorf("stale buckets leaked into the long window: %+v", snap.Windows[1])
	}
	if snap.Health != "idle" {
		t.Errorf("health with no traffic = %q, want idle", snap.Health)
	}
}

func TestSLOHealthThresholds(t *testing.T) {
	cases := []struct {
		name        string
		good, bad   int
		wantHealth  string
		shortWindow bool
	}{
		{"all good", 100, 0, "ok", true},
		{"full outage", 0, 50, "critical", true},
		{"moderate burn", 96, 4, "warn", true}, // burn = 4 => warn
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr, _ := newTestTracker(time.Minute, 10*time.Minute)
			for i := 0; i < tc.good; i++ {
				tr.Record(true, time.Millisecond)
			}
			for i := 0; i < tc.bad; i++ {
				tr.Record(false, time.Millisecond)
			}
			if got := tr.Snapshot().Health; got != tc.wantHealth {
				t.Errorf("health = %q, want %q", got, tc.wantHealth)
			}
		})
	}
}

func TestSLOLatencyScoredOnlyOnGoodRequests(t *testing.T) {
	tr, _ := newTestTracker(time.Minute)
	tr.Record(false, time.Microsecond) // fast failure is not a latency win
	tr.Record(true, 10*time.Millisecond)
	w := tr.Snapshot().Windows[0]
	if w.Fast != 1 {
		t.Errorf("fast = %d, want 1 (failures must not count as fast)", w.Fast)
	}
}

func TestScoreWindowAndHealthFromWindows(t *testing.T) {
	// The fleet merger sums counts and recomputes: verify the exported
	// helpers give exact merged ratios.
	w := SLOWindow{Window: 300, Total: 200, Good: 198, Fast: 190}
	ScoreWindow(&w, 0.99, 0.95)
	if w.SuccessRatio != 0.99 || w.LatencyOKRatio != 0.95 {
		t.Errorf("merged ratios = %g/%g, want 0.99/0.95", w.SuccessRatio, w.LatencyOKRatio)
	}
	if got := HealthFromWindows([]SLOWindow{w}); got != "ok" {
		t.Errorf("health = %q, want ok", got)
	}
	if got := HealthFromWindows(nil); got != "idle" {
		t.Errorf("health of no windows = %q, want idle", got)
	}
	crit := SLOWindow{Window: 300, Total: 100, Good: 50}
	ScoreWindow(&crit, 0.99, 0.95)
	if got := HealthFromWindows([]SLOWindow{crit, w}); got != "critical" {
		t.Errorf("shortest-window fast burn should be critical, got %q", got)
	}
}

func TestNilSLOTracker(t *testing.T) {
	var tr *SLOTracker
	tr.Record(true, time.Second) // must not panic
	if got := tr.Snapshot().Health; got != "idle" {
		t.Errorf("nil tracker health = %q, want idle", got)
	}
}

func TestSLOPublishGauges(t *testing.T) {
	snap := SLOSnapshot{
		Windows: []SLOWindow{{Window: 300, Total: 10, Good: 10, Fast: 10, SuccessRatio: 1, LatencyOKRatio: 1}},
		Health:  "ok",
	}
	snap.PublishGauges()
	if got := GetGauge(`acstab_slo_success_ratio{window="5m"}`).Value(); got != 1 {
		t.Errorf("published success ratio = %g, want 1", got)
	}
	if got := GetGauge("acstab_slo_health_score").Value(); got != 1 {
		t.Errorf("health score = %g, want 1", got)
	}
}
