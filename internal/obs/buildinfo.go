package obs

import (
	"fmt"
	"runtime/debug"
	"sync"
)

// BuildInfo identifies the running binary: the module version, the Go
// toolchain, and the VCS revision baked in by the Go linker. Federation
// uses it to tell mixed-version fleets apart — a worker misbehaving after
// a partial rollout is findable by revision, not just by address.
type BuildInfo struct {
	// Version is the main module version ("(devel)" for plain builds).
	Version string `json:"version"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// Revision is the VCS commit (empty when built outside a checkout).
	Revision string `json:"revision,omitempty"`
	// Modified marks builds from a dirty working tree.
	Modified bool `json:"modified,omitempty"`
}

var (
	buildInfoOnce sync.Once
	buildInfo     BuildInfo
)

// ReadBuildInfo returns the binary's build identity, reading the embedded
// runtime/debug info once.
func ReadBuildInfo() BuildInfo {
	buildInfoOnce.Do(func() {
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			buildInfo = BuildInfo{Version: "unknown", GoVersion: "unknown"}
			return
		}
		buildInfo = BuildInfo{Version: bi.Main.Version, GoVersion: bi.GoVersion}
		if buildInfo.Version == "" {
			buildInfo.Version = "(devel)"
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				buildInfo.Revision = s.Value
			case "vcs.modified":
				buildInfo.Modified = s.Value == "true"
			}
		}
	})
	return buildInfo
}

// RegisterBuildInfo publishes the `acstab_build_info` gauge (constant 1,
// identity in the labels — the Prometheus build-info idiom) in the
// Default registry and returns the info. Safe to call repeatedly.
func RegisterBuildInfo() BuildInfo {
	bi := ReadBuildInfo()
	rev := bi.Revision
	if len(rev) > 12 {
		rev = rev[:12]
	}
	GetGauge(fmt.Sprintf("acstab_build_info{version=%q,go_version=%q,revision=%q}",
		bi.Version, bi.GoVersion, rev)).Set(1)
	return bi
}
