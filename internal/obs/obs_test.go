package obs

import (
	"bytes"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters are monotonic
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("c_total") != c {
		t.Error("second lookup should return the same counter")
	}
	g := r.Gauge("g")
	g.Set(2.5)
	g.Inc()
	g.Dec()
	g.Add(0.5)
	if v := g.Value(); math.Abs(v-3.0) > 1e-12 {
		t.Fatalf("gauge = %g, want 3", v)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Error("gauge lookup of a counter name should panic")
		}
	}()
	r.Gauge("m")
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramBuckets("h", []float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1.5, 1.6, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-106.6) > 1e-9 {
		t.Fatalf("sum = %g", h.Sum())
	}
	// p50 (rank 2.5) falls in the (1,2] bucket.
	if q := h.Quantile(0.5); q < 1 || q > 2 {
		t.Errorf("p50 = %g, want in (1,2]", q)
	}
	// p99 lands in the overflow bucket, clamped to the last bound.
	if q := h.Quantile(0.99); q != 8 {
		t.Errorf("p99 = %g, want 8", q)
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	h := newHistogram(nil)
	if q := h.Quantile(0.5); q != 0 {
		t.Errorf("empty histogram quantile = %g, want 0", q)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter(`req_total{path="/run",code="200"}`).Add(3)
	r.Counter(`req_total{path="/healthz",code="200"}`).Add(1)
	r.Gauge("inflight").Set(2)
	h := r.HistogramBuckets(`lat_seconds{path="/run"}`, []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE req_total counter",
		`req_total{path="/run",code="200"} 3`,
		"# TYPE inflight gauge",
		"inflight 2",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{path="/run",le="0.1"} 1`,
		`lat_seconds_bucket{path="/run",le="1"} 2`,
		`lat_seconds_bucket{path="/run",le="+Inf"} 3`,
		`lat_seconds_sum{path="/run"} 5.55`,
		`lat_seconds_count{path="/run"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "# TYPE req_total") != 1 {
		t.Error("family header should appear once per family")
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(7)
	r.Gauge("g").Set(1.5)
	h := r.HistogramBuckets("h", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)

	snap := r.Snapshot()
	if snap["c"].(int64) != 7 {
		t.Errorf("counter snapshot = %v", snap["c"])
	}
	if snap["g"].(float64) != 1.5 {
		t.Errorf("gauge snapshot = %v", snap["g"])
	}
	hs := snap["h"].(HistogramSnapshot)
	if hs.Count != 2 || math.Abs(hs.Sum-5.5) > 1e-12 || hs.Avg != 2.75 {
		t.Errorf("histogram snapshot = %+v", hs)
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h").Observe(float64(j) * 1e-6)
			}
		}()
	}
	wg.Wait()
	if r.Counter("c").Value() != 8000 {
		t.Errorf("counter = %d", r.Counter("c").Value())
	}
	if r.Histogram("h").Count() != 8000 {
		t.Errorf("histogram count = %d", r.Histogram("h").Count())
	}
	if math.Abs(r.Gauge("g").Value()-8000) > 1e-9 {
		t.Errorf("gauge = %g", r.Gauge("g").Value())
	}
}

func TestMiddleware(t *testing.T) {
	log := NewEventLogger(nil)
	h := Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/boom" {
			http.Error(w, "no", http.StatusTeapot)
			return
		}
		w.Write([]byte("hello"))
	}), log)
	srv := httptest.NewServer(h)
	defer srv.Close()

	before := GetCounter(`acstab_http_requests_total{path="other",code="200"}`).Value()
	resp, err := srv.Client().Post(srv.URL+"/x", "text/plain", strings.NewReader("body"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := GetCounter(`acstab_http_requests_total{path="other",code="200"}`).Value(); got != before+1 {
		t.Errorf("request counter delta = %d, want 1", got-before)
	}
	resp, err = srv.Client().Get(srv.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := GetCounter(`acstab_http_requests_total{path="other",code="418"}`).Value(); got < 1 {
		t.Error("error status should be counted under its code")
	}
	if GetHistogram(`acstab_http_request_duration_seconds{path="other"}`).Count() < 2 {
		t.Error("latency histogram should have observations")
	}
	events := log.Events(0, 0)
	if len(events) != 2 {
		t.Errorf("expected 2 http events, got %d", len(events))
	}
	for _, se := range events {
		if !strings.Contains(string(se.Event), `"event":"http"`) {
			t.Errorf("http event missing event name: %s", se.Event)
		}
	}
}

func TestMetricsHandler(t *testing.T) {
	GetCounter("metrics_handler_test_total").Inc()
	srv := httptest.NewServer(MetricsHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if !strings.Contains(buf.String(), "metrics_handler_test_total 1") {
		t.Errorf("exposition missing test counter:\n%s", buf.String())
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	req, _ := http.NewRequest(http.MethodPost, srv.URL, nil)
	resp2, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics = %d, want 405", resp2.StatusCode)
	}
}

func TestKindMismatchPanicMessage(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_metric")
	defer func() {
		got, _ := recover().(string)
		const want = "obs: metric dup_metric already registered as counter"
		if got != want {
			t.Errorf("panic = %q, want %q", got, want)
		}
	}()
	r.Gauge("dup_metric")
}

func TestHistogramQuantileEdges(t *testing.T) {
	// Empty histogram: every quantile is 0.
	h := newHistogram([]float64{1, 2, 4})
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%g) = %g, want 0", q, got)
		}
	}
	// Single observation inside a bucket: q=0 returns the bucket's lower
	// bound, q=1 its upper bound.
	h = newHistogram([]float64{1, 2, 4})
	h.Observe(1.5)
	if got := h.Quantile(0); got != 1 {
		t.Errorf("single-obs Quantile(0) = %g, want 1", got)
	}
	if got := h.Quantile(1); got != 2 {
		t.Errorf("single-obs Quantile(1) = %g, want 2", got)
	}
	// Values beyond the last bound land in the overflow bucket, which
	// clamps to the last bound (the histogram cannot know how far above).
	h = newHistogram([]float64{1, 2, 4})
	h.Observe(100)
	h.Observe(200)
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); got != 4 {
			t.Errorf("overflow Quantile(%g) = %g, want 4", q, got)
		}
	}
}

func TestMiddlewareFlush(t *testing.T) {
	log := NewEventLogger(nil)
	h := Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f, ok := w.(http.Flusher)
		if !ok {
			t.Fatal("middleware hides http.Flusher from the wrapped handler")
		}
		w.Write([]byte("chunk"))
		f.Flush()
	}), log)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stream", nil))
	if !rec.Flushed {
		t.Error("Flush did not reach the underlying ResponseWriter")
	}

	// A non-flushing underlying writer must not panic.
	h = Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.(http.Flusher).Flush() // no-op
		w.WriteHeader(http.StatusNoContent)
	}), log)
	h.ServeHTTP(noFlushWriter{httptest.NewRecorder()}, httptest.NewRequest(http.MethodGet, "/x", nil))
}

// noFlushWriter hides ResponseRecorder's Flush method.
type noFlushWriter struct{ rec *httptest.ResponseRecorder }

func (w noFlushWriter) Header() http.Header         { return w.rec.Header() }
func (w noFlushWriter) Write(p []byte) (int, error) { return w.rec.Write(p) }
func (w noFlushWriter) WriteHeader(code int)        { w.rec.WriteHeader(code) }

func TestLabelPath(t *testing.T) {
	cases := map[string]string{
		"/run":                   "/run",
		"/healthz":               "/healthz",
		"/metrics":               "/metrics",
		"/statusz":               "/statusz",
		"/debug/runs":            "/debug/runs",
		"/debug/runs/run-000042": "/debug/runs",
		"/debug/pprof":           "/debug/pprof",
		"/debug/pprof/profile":   "/debug/pprof",
		"/debug/runsX":           "other",
		"/debug":                 "other",
		"/":                      "other",
		"/run/extra":             "other",
		"/%2e%2e/etc/passwd":     "other",
		"/totally/made/up/route": "other",
	}
	for path, want := range cases {
		if got := labelPath(path); got != want {
			t.Errorf("labelPath(%q) = %q, want %q", path, got, want)
		}
	}
}
