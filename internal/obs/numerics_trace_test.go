package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

func TestStatMaxKeepsMaximum(t *testing.T) {
	r := StartRun("stats")
	r.StatMax("numerics_residual_max", 1e-14)
	r.StatMax("numerics_residual_max", 1e-10)
	r.StatMax("numerics_residual_max", 1e-12) // lower, must not win
	r.StatMax("ignored", 0)                   // non-positive observations are dropped
	r.StatMax("ignored", -3)
	r.Finish()
	tr := r.Trace()
	if got := tr.Stats["numerics_residual_max"]; got != 1e-10 {
		t.Errorf("stat = %g, want 1e-10", got)
	}
	if _, ok := tr.Stats["ignored"]; ok {
		t.Error("non-positive observations must not create a stat")
	}
	var nilRun *Run
	nilRun.StatMax("x", 1) // must not panic
}

func TestMedianResidualFromDigest(t *testing.T) {
	counters := map[string]int64{
		ResidualDecadeKey(-16): 3,
		ResidualDecadeKey(-15): 2,
		ResidualDecadeKey(-10): 1,
		"ac_solves":            99, // unrelated counters are ignored
	}
	med, ok := MedianResidual(counters)
	if !ok {
		t.Fatal("digest present but ok=false")
	}
	// 6 points, median lands in decade -16 (3rd of 6): 10^(-16+0.5).
	if want := math.Pow(10, -15.5); math.Abs(med-want)/want > 1e-12 {
		t.Errorf("median = %g, want %g", med, want)
	}
	if _, ok := MedianResidual(map[string]int64{"ac_solves": 5}); ok {
		t.Error("no digest must report ok=false")
	}
}

func TestResidualDecadeKeyClamps(t *testing.T) {
	if got, want := ResidualDecadeKey(-40), ResidualDecadeKey(ResidualDecadeMin); got != want {
		t.Errorf("below-range decade = %q, want %q", got, want)
	}
	if got, want := ResidualDecadeKey(7), ResidualDecadeKey(ResidualDecadeMax); got != want {
		t.Errorf("above-range decade = %q, want %q", got, want)
	}
}

// TestSlowPointHealthQuota: wall-time points and residual health points
// keep separate quotas in the merge, so a sick-but-fast point always
// survives, and health points sort after wall points, worst residual
// first.
func TestSlowPointHealthQuota(t *testing.T) {
	r := StartRun("quota")
	var wall []SlowPoint
	for i := 0; i < 2*MaxSlowPoints; i++ {
		wall = append(wall, SlowPoint{FreqHz: float64(i), WallNS: int64(i + 1), Detail: "full"})
	}
	r.AddSlowPoints(wall)
	var health []SlowPoint
	for i := 0; i < 2*MaxHealthPoints; i++ {
		health = append(health, SlowPoint{FreqHz: float64(i), Detail: "residual", Residual: float64(i+1) * 1e-12})
	}
	r.AddSlowPoints(health)
	tr := r.Trace()
	if len(tr.SlowPoints) != MaxSlowPoints+MaxHealthPoints {
		t.Fatalf("slow points = %d, want %d wall + %d health",
			len(tr.SlowPoints), MaxSlowPoints, MaxHealthPoints)
	}
	for i := 0; i < MaxSlowPoints; i++ {
		p := tr.SlowPoints[i]
		if p.Residual != 0 {
			t.Fatalf("slow[%d] is a health point; wall points must sort first", i)
		}
		if want := int64(2*MaxSlowPoints - i); p.WallNS != want {
			t.Errorf("wall[%d].WallNS = %d, want %d", i, p.WallNS, want)
		}
	}
	for i := 0; i < MaxHealthPoints; i++ {
		p := tr.SlowPoints[MaxSlowPoints+i]
		if p.Detail != "residual" {
			t.Fatalf("tail[%d].Detail = %q, want residual", i, p.Detail)
		}
		if want := float64(2*MaxHealthPoints-i) * 1e-12; p.Residual != want {
			t.Errorf("health[%d].Residual = %g, want %g", i, p.Residual, want)
		}
	}
}

// TestGraftRemoteNumerics: grafting merges "_max" stats by maximum,
// other stats by sum, the residual decade digest by counter addition, and
// health points under their own quota.
func TestGraftRemoteNumerics(t *testing.T) {
	r := StartRun("graft-numerics")
	r.StatMax("numerics_residual_max", 1e-13)
	r.StatMax("numerics_cond_est_max", 1e9)
	r.Add(ResidualDecadeKey(-14), 2)

	remote := Trace{
		Name:       "farm/run",
		DurationNS: int64(time.Millisecond),
		Counters: map[string]int64{
			ResidualDecadeKey(-14): 3,
			ResidualDecadeKey(-11): 1,
			"ac_refinements":       2,
		},
		Stats: map[string]float64{
			"numerics_residual_max": 1e-11, // larger: wins the max merge
			"numerics_cond_est_max": 1e6,   // smaller: loses
			"numerics_points":       5,     // no _max suffix: sums
		},
		SlowPoints: []SlowPoint{
			{FreqHz: 1e6, Detail: "residual", Residual: 1e-11},
			{FreqHz: 2e6, WallNS: 100, Detail: "full"},
		},
	}
	r.GraftRemote(remote, time.Now(), time.Millisecond, 1)
	r.GraftRemote(Trace{
		Stats: map[string]float64{"numerics_points": 7},
	}, time.Now(), time.Millisecond, 1)
	r.Finish()

	tr := r.Trace()
	if got := tr.Stats["numerics_residual_max"]; got != 1e-11 {
		t.Errorf("residual max merged to %g, want 1e-11", got)
	}
	if got := tr.Stats["numerics_cond_est_max"]; got != 1e9 {
		t.Errorf("cond max merged to %g, want 1e9 (local value must survive)", got)
	}
	if got := tr.Stats["numerics_points"]; got != 12 {
		t.Errorf("non-max stat merged to %g, want 12 (sum)", got)
	}
	if got := tr.Counters[ResidualDecadeKey(-14)]; got != 5 {
		t.Errorf("decade -14 = %d, want 5 (counter sum)", got)
	}
	if got := tr.Counters[ResidualDecadeKey(-11)]; got != 1 {
		t.Errorf("decade -11 = %d, want 1", got)
	}
	var sawHealth, sawWall bool
	for _, p := range tr.SlowPoints {
		if p.Detail == "residual" && p.Residual == 1e-11 {
			sawHealth = true
		}
		if p.Detail == "full" && p.WallNS == 100 {
			sawWall = true
		}
	}
	if !sawHealth || !sawWall {
		t.Errorf("grafted slow points lost (health %v, wall %v): %+v", sawHealth, sawWall, tr.SlowPoints)
	}
}

// TestWriteSummaryNumerics: a run with residual telemetry prints the
// numerical-health block and keeps the decade digest out of the raw
// counter listing; a run without telemetry prints neither.
func TestWriteSummaryNumerics(t *testing.T) {
	r := StartRun("summary-numerics")
	r.Add("ac_residual_points", 40)
	r.Add("ac_refinements", 2)
	r.Add("ac_residual_breaches", 1)
	r.Add(ResidualDecadeKey(-15), 39)
	r.Add(ResidualDecadeKey(-8), 1)
	r.StatMax("numerics_residual_max", 3.2e-8)
	r.StatMax("numerics_pivot_growth_max", 42)
	r.StatMax("numerics_cond_est_max", 5e7)
	r.Finish()

	var buf bytes.Buffer
	if err := r.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"numerical health:",
		"residual max",
		"3.20e-08",
		"residual median",
		"refinements",
		"residual breaches",
		"pivot growth max",
		"condition estimate",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, ResidualDecadePrefix) {
		t.Errorf("raw decade digest leaked into the summary:\n%s", out)
	}

	r2 := StartRun("no-numerics")
	r2.Add("ac_solves", 3)
	r2.Finish()
	buf.Reset()
	if err := r2.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "numerical health:") {
		t.Errorf("health block printed without telemetry:\n%s", buf.String())
	}
}
