package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRunTrace(t *testing.T) {
	r := StartRun("test-run")
	sp := r.StartPhase("parse")
	time.Sleep(time.Millisecond)
	sp.End()
	sp = r.StartPhase("sweep")
	time.Sleep(time.Millisecond)
	sp.End()
	r.Add("ac_factorizations", 40)
	r.Add("ac_solves", 400)
	r.Add("noop", 0)
	r.Finish()

	tr := r.Trace()
	if tr.Name != "test-run" {
		t.Errorf("name = %q", tr.Name)
	}
	if len(tr.Phases) != 2 || tr.Phases[0].Phase != "parse" || tr.Phases[1].Phase != "sweep" {
		t.Fatalf("phases = %+v", tr.Phases)
	}
	for _, p := range tr.Phases {
		if p.DurationNS <= 0 {
			t.Errorf("phase %s has non-positive duration", p.Phase)
		}
	}
	if tr.Phases[1].StartNS < tr.Phases[0].StartNS {
		t.Error("span offsets out of order")
	}
	if tr.DurationNS <= 0 {
		t.Error("run duration should be positive")
	}
	if tr.Counters["ac_factorizations"] != 40 || tr.Counters["ac_solves"] != 400 {
		t.Errorf("counters = %v", tr.Counters)
	}
	if _, ok := tr.Counters["noop"]; ok {
		t.Error("zero adds should not create counters")
	}
}

func TestTraceJSONRoundTrip(t *testing.T) {
	r := StartRun("roundtrip")
	sp := r.StartPhase("op")
	sp.End()
	r.Add("newton_iterations", 17)
	r.Finish()

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var tr Trace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("trace JSON does not round-trip: %v", err)
	}
	if tr.Name != "roundtrip" || len(tr.Phases) != 1 || tr.Counters["newton_iterations"] != 17 {
		t.Errorf("round-tripped trace = %+v", tr)
	}
}

func TestWriteSummary(t *testing.T) {
	r := StartRun("summary")
	for i := 0; i < 3; i++ {
		sp := r.StartPhase("sweep")
		time.Sleep(200 * time.Microsecond)
		sp.End()
	}
	r.Add("ac_factorizations", 7)
	r.Finish()

	var buf bytes.Buffer
	if err := r.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "run summary:") {
		t.Errorf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "phase sweep") || !strings.Contains(out, "(x3)") {
		t.Errorf("missing aggregated phase row:\n%s", out)
	}
	if !strings.Contains(out, "ac_factorizations") || !strings.Contains(out, "7") {
		t.Errorf("missing counter row:\n%s", out)
	}
}

func TestNilRunSafety(t *testing.T) {
	var r *Run
	r.Finish()
	r.Add("x", 1)
	sp := r.StartPhase("p")
	sp.End()
	var nilSpan *Span
	nilSpan.End()
	if tr := r.Trace(); tr.Name != "" || len(tr.Phases) != 0 {
		t.Errorf("nil run trace = %+v", tr)
	}
	if err := r.WriteSummary(&bytes.Buffer{}); err != nil {
		t.Errorf("nil summary: %v", err)
	}
	// The phase histogram still records even without a run.
	h := GetHistogram(`acstab_phase_duration_seconds{phase="p"}`)
	if h.Count() < 1 {
		t.Error("nil-run span should still feed the registry histogram")
	}
}

func TestSpanCap(t *testing.T) {
	r := StartRun("cap")
	for i := 0; i < maxSpans+10; i++ {
		r.StartPhase("loop").End()
	}
	tr := r.Trace()
	if len(tr.Phases) != maxSpans {
		t.Errorf("spans = %d, want %d", len(tr.Phases), maxSpans)
	}
	if tr.DroppedSpans != 10 {
		t.Errorf("dropped = %d, want 10", tr.DroppedSpans)
	}
}

func TestRunConcurrentSpans(t *testing.T) {
	r := StartRun("parallel")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				sp := r.StartPhase("worker")
				sp.End()
				r.Add("items", 1)
			}
		}()
	}
	wg.Wait()
	r.Finish()
	tr := r.Trace()
	if len(tr.Phases) != 400 {
		t.Errorf("phases = %d, want 400", len(tr.Phases))
	}
	if tr.Counters["items"] != 400 {
		t.Errorf("items = %d", tr.Counters["items"])
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	r := StartRun("idem")
	h := GetHistogram(`acstab_phase_duration_seconds{phase="idem_phase"}`)
	before := h.Count()
	sp := r.StartPhase("idem_phase")
	sp.End()
	sp.End() // defensive double-End must not double-count
	if got := h.Count() - before; got != 1 {
		t.Errorf("histogram observed %d times, want 1", got)
	}
	if tr := r.Trace(); len(tr.Phases) != 1 {
		t.Errorf("trace has %d spans, want 1", len(tr.Phases))
	}
}

func TestAddSlowPointsWorstK(t *testing.T) {
	r := StartRun("slow")
	for i := 0; i < 3*MaxSlowPoints; i++ {
		r.AddSlowPoints([]SlowPoint{{FreqHz: float64(i), WallNS: int64(i + 1), Detail: "full"}})
	}
	tr := r.Trace()
	if len(tr.SlowPoints) != MaxSlowPoints {
		t.Fatalf("slow points = %d, want %d", len(tr.SlowPoints), MaxSlowPoints)
	}
	// Worst first, and only the globally worst K survive.
	for i, p := range tr.SlowPoints {
		want := int64(3*MaxSlowPoints - i)
		if p.WallNS != want {
			t.Errorf("slow[%d].WallNS = %d, want %d", i, p.WallNS, want)
		}
	}
	var nilRun *Run
	nilRun.AddSlowPoints([]SlowPoint{{WallNS: 1}}) // must not panic
}

func TestGraftRemote(t *testing.T) {
	r := StartRun("client")
	time.Sleep(time.Millisecond)
	reqStart := time.Now()
	reqDur := 100 * time.Millisecond

	remote := Trace{
		Name:       "farm/run",
		DurationNS: (40 * time.Millisecond).Nanoseconds(),
		Phases: []PhaseSpan{
			{Phase: "op", StartNS: 0, DurationNS: 1e6},
			{Phase: "sweep", StartNS: 2e6, DurationNS: 30e6},
		},
		Counters:     map[string]int64{"ac_solves": 12},
		DroppedSpans: 3,
		SlowPoints:   []SlowPoint{{FreqHz: 1e6, WallNS: 5e6, Detail: "refactor_fallback"}},
	}
	r.GraftRemote(remote, reqStart, reqDur, 2)
	r.Finish()

	tr := r.Trace()
	if len(tr.Phases) != 2 {
		t.Fatalf("phases = %+v", tr.Phases)
	}
	for _, sp := range tr.Phases {
		if sp.Attempt != 2 {
			t.Errorf("span %s attempt = %d, want 2", sp.Phase, sp.Attempt)
		}
		if sp.StartNS < 0 || sp.StartNS+sp.DurationNS > tr.DurationNS+reqDur.Nanoseconds() {
			t.Errorf("span %s [%d, +%d] escapes the plausible window", sp.Phase, sp.StartNS, sp.DurationNS)
		}
	}
	// The remote timeline is anchored inside the request window: the first
	// remote span starts at or after the request start, and the whole
	// remote duration fits before the request end.
	minStart := tr.Phases[0].StartNS
	if minStart < time.Millisecond.Nanoseconds() {
		t.Errorf("grafted span starts at %dns, before the request began", minStart)
	}
	if tr.Counters["ac_solves"] != 12 {
		t.Errorf("counters not merged: %v", tr.Counters)
	}
	if tr.DroppedSpans != 3 {
		t.Errorf("dropped = %d, want 3", tr.DroppedSpans)
	}
	if len(tr.SlowPoints) != 1 || tr.SlowPoints[0].Detail != "refactor_fallback" {
		t.Errorf("slow points not merged: %+v", tr.SlowPoints)
	}

	var nilRun *Run
	nilRun.GraftRemote(remote, reqStart, reqDur, 1) // must not panic
}

func TestGraftRemoteClockSkew(t *testing.T) {
	// A remote trace claiming to be LONGER than the request window (gross
	// clock skew or drift) must still anchor without negative offsets.
	r := StartRun("skew")
	remote := Trace{
		DurationNS: (10 * time.Second).Nanoseconds(),
		Phases:     []PhaseSpan{{Phase: "sweep", StartNS: 0, DurationNS: 9e9}},
	}
	r.GraftRemote(remote, time.Now(), time.Millisecond, 1)
	tr := r.Trace()
	if len(tr.Phases) != 1 || tr.Phases[0].StartNS < 0 {
		t.Errorf("skewed graft = %+v", tr.Phases)
	}
}
