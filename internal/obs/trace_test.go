package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRunTrace(t *testing.T) {
	r := StartRun("test-run")
	sp := r.StartPhase("parse")
	time.Sleep(time.Millisecond)
	sp.End()
	sp = r.StartPhase("sweep")
	time.Sleep(time.Millisecond)
	sp.End()
	r.Add("ac_factorizations", 40)
	r.Add("ac_solves", 400)
	r.Add("noop", 0)
	r.Finish()

	tr := r.Trace()
	if tr.Name != "test-run" {
		t.Errorf("name = %q", tr.Name)
	}
	if len(tr.Phases) != 2 || tr.Phases[0].Phase != "parse" || tr.Phases[1].Phase != "sweep" {
		t.Fatalf("phases = %+v", tr.Phases)
	}
	for _, p := range tr.Phases {
		if p.DurationNS <= 0 {
			t.Errorf("phase %s has non-positive duration", p.Phase)
		}
	}
	if tr.Phases[1].StartNS < tr.Phases[0].StartNS {
		t.Error("span offsets out of order")
	}
	if tr.DurationNS <= 0 {
		t.Error("run duration should be positive")
	}
	if tr.Counters["ac_factorizations"] != 40 || tr.Counters["ac_solves"] != 400 {
		t.Errorf("counters = %v", tr.Counters)
	}
	if _, ok := tr.Counters["noop"]; ok {
		t.Error("zero adds should not create counters")
	}
}

func TestTraceJSONRoundTrip(t *testing.T) {
	r := StartRun("roundtrip")
	sp := r.StartPhase("op")
	sp.End()
	r.Add("newton_iterations", 17)
	r.Finish()

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var tr Trace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("trace JSON does not round-trip: %v", err)
	}
	if tr.Name != "roundtrip" || len(tr.Phases) != 1 || tr.Counters["newton_iterations"] != 17 {
		t.Errorf("round-tripped trace = %+v", tr)
	}
}

func TestWriteSummary(t *testing.T) {
	r := StartRun("summary")
	for i := 0; i < 3; i++ {
		sp := r.StartPhase("sweep")
		time.Sleep(200 * time.Microsecond)
		sp.End()
	}
	r.Add("ac_factorizations", 7)
	r.Finish()

	var buf bytes.Buffer
	if err := r.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "run summary:") {
		t.Errorf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "phase sweep") || !strings.Contains(out, "(x3)") {
		t.Errorf("missing aggregated phase row:\n%s", out)
	}
	if !strings.Contains(out, "ac_factorizations") || !strings.Contains(out, "7") {
		t.Errorf("missing counter row:\n%s", out)
	}
}

func TestNilRunSafety(t *testing.T) {
	var r *Run
	r.Finish()
	r.Add("x", 1)
	sp := r.StartPhase("p")
	sp.End()
	var nilSpan *Span
	nilSpan.End()
	if tr := r.Trace(); tr.Name != "" || len(tr.Phases) != 0 {
		t.Errorf("nil run trace = %+v", tr)
	}
	if err := r.WriteSummary(&bytes.Buffer{}); err != nil {
		t.Errorf("nil summary: %v", err)
	}
	// The phase histogram still records even without a run.
	h := GetHistogram(`acstab_phase_duration_seconds{phase="p"}`)
	if h.Count() < 1 {
		t.Error("nil-run span should still feed the registry histogram")
	}
}

func TestSpanCap(t *testing.T) {
	r := StartRun("cap")
	for i := 0; i < maxSpans+10; i++ {
		r.StartPhase("loop").End()
	}
	tr := r.Trace()
	if len(tr.Phases) != maxSpans {
		t.Errorf("spans = %d, want %d", len(tr.Phases), maxSpans)
	}
	if tr.DroppedSpans != 10 {
		t.Errorf("dropped = %d, want 10", tr.DroppedSpans)
	}
}

func TestRunConcurrentSpans(t *testing.T) {
	r := StartRun("parallel")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				sp := r.StartPhase("worker")
				sp.End()
				r.Add("items", 1)
			}
		}()
	}
	wg.Wait()
	r.Finish()
	tr := r.Trace()
	if len(tr.Phases) != 400 {
		t.Errorf("phases = %d, want 400", len(tr.Phases))
	}
	if tr.Counters["items"] != 400 {
		t.Errorf("items = %d", tr.Counters["items"])
	}
}
