package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"testing"
)

func TestEventLoggerRendersWideEvents(t *testing.T) {
	var buf bytes.Buffer
	l := NewEventLogger(&buf)
	l.Event("run",
		slog.String("request_id", "r-1"),
		slog.Int64("nodes", 42),
		slog.Any("solver", map[string]int64{"ac_solves": 7}),
	)

	line := strings.TrimSpace(buf.String())
	var ev map[string]any
	if err := json.Unmarshal([]byte(line), &ev); err != nil {
		t.Fatalf("event is not one JSON object: %v\n%s", err, line)
	}
	if ev["event"] != "run" {
		t.Errorf("message key should be renamed to event=run, got %v", ev["event"])
	}
	if _, hasLevel := ev["level"]; hasLevel {
		t.Error("level key should be dropped from wide events")
	}
	if _, hasMsg := ev["msg"]; hasMsg {
		t.Error("msg key should be renamed, not duplicated")
	}
	if ev["request_id"] != "r-1" || ev["nodes"] != float64(42) {
		t.Errorf("attrs not preserved: %v", ev)
	}
	if solver, ok := ev["solver"].(map[string]any); !ok || solver["ac_solves"] != float64(7) {
		t.Errorf("nested attr not preserved: %v", ev["solver"])
	}
	if _, hasTime := ev["time"]; !hasTime {
		t.Error("events should be timestamped")
	}
}

func TestEventLoggerRingAndCursor(t *testing.T) {
	l := NewEventLogger(nil) // nil sink: the ring still records
	for i := 0; i < 5; i++ {
		l.Event("e", slog.Int("i", i))
	}
	if got := l.Seq(); got != 5 {
		t.Fatalf("Seq = %d, want 5", got)
	}

	all := l.Events(0, 0)
	if len(all) != 5 {
		t.Fatalf("Events(0,0) returned %d events, want 5", len(all))
	}
	for i, se := range all {
		if se.Seq != int64(i+1) {
			t.Errorf("event %d has seq %d, want %d (oldest first)", i, se.Seq, i+1)
		}
		if !json.Valid(se.Event) {
			t.Errorf("stored event %d is not valid JSON: %s", i, se.Event)
		}
	}

	// Cursor semantics: seq > since only.
	tail := l.Events(3, 0)
	if len(tail) != 2 || tail[0].Seq != 4 || tail[1].Seq != 5 {
		t.Errorf("Events(3,0) = %+v, want seqs 4,5", tail)
	}
	if got := l.Events(5, 0); len(got) != 0 {
		t.Errorf("Events(at head) should be empty, got %d", len(got))
	}
	if got := l.Events(0, 2); len(got) != 2 || got[0].Seq != 1 {
		t.Errorf("limit should cap from the oldest side: %+v", got)
	}
}

func TestEventLoggerRingEviction(t *testing.T) {
	l := NewEventLogger(nil)
	total := DefaultRecentEvents + 10
	for i := 0; i < total; i++ {
		l.Event("e", slog.Int("i", i))
	}
	got := l.Events(0, 0)
	if len(got) != DefaultRecentEvents {
		t.Fatalf("ring retained %d events, want %d", len(got), DefaultRecentEvents)
	}
	if got[0].Seq != int64(total-DefaultRecentEvents+1) {
		t.Errorf("oldest retained seq = %d, want %d (oldest evicted first)",
			got[0].Seq, total-DefaultRecentEvents+1)
	}
	if got[len(got)-1].Seq != int64(total) {
		t.Errorf("newest retained seq = %d, want %d", got[len(got)-1].Seq, total)
	}
}

func TestEventLoggerConcurrentLinesDoNotInterleave(t *testing.T) {
	var buf bytes.Buffer
	l := NewEventLogger(&buf)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				l.Event("e", slog.String("who", fmt.Sprintf("g%d-%d", g, i)))
			}
		}(g)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 8*50 {
		t.Fatalf("got %d lines, want %d", len(lines), 8*50)
	}
	for _, line := range lines {
		if !json.Valid([]byte(line)) {
			t.Fatalf("interleaved/corrupt line: %q", line)
		}
	}
}

func TestEventLoggerNilReceiver(t *testing.T) {
	var l *EventLogger
	l.Event("e") // must not panic
	if l.Seq() != 0 || l.Events(0, 0) != nil {
		t.Error("nil logger should report no events")
	}
}
