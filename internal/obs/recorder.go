package obs

import (
	"fmt"
	"sync"
	"time"
)

// Recorder is a worker's flight recorder: a bounded ring buffer of recent
// run records (trace, outcome, wall time), oldest evicted first. It backs
// the farm worker's GET /debug/runs endpoints so "what did this worker
// just run" and "why is this run hung" are answerable without logs. A nil
// *Recorder is valid everywhere — Begin returns a nil record whose methods
// are no-ops — so recording can be threaded unconditionally.
type Recorder struct {
	mu   sync.Mutex
	max  int
	seq  int64
	recs []*RunRecord // circular: head is the oldest of n live records
	head int
	n    int
}

// DefaultRecentRuns is the record capacity NewRecorder(0) selects.
const DefaultRecentRuns = 64

// NewRecorder returns a recorder keeping the last max runs (<=0 selects
// DefaultRecentRuns).
func NewRecorder(max int) *Recorder {
	if max <= 0 {
		max = DefaultRecentRuns
	}
	return &Recorder{max: max, recs: make([]*RunRecord, max)}
}

// RunRecord is one recorded run. It stays live while the run executes —
// List and Get see in-flight records with a running marker — and is
// finalized by Finish.
type RunRecord struct {
	mu      sync.Mutex
	id      string
	name    string
	traceID string
	start   time.Time
	end     time.Time
	outcome string
	run     *Run
}

// Begin records the start of a run: name labels the kind of work, traceID
// carries the client's correlation ID (may be empty), and run is the run's
// trace (may be nil for work rejected before a trace exists, e.g. shed
// jobs). The returned record must be finalized with Finish.
func (rc *Recorder) Begin(name, traceID string, run *Run) *RunRecord {
	if rc == nil {
		return nil
	}
	rc.mu.Lock()
	rc.seq++
	rec := &RunRecord{
		id:      fmt.Sprintf("run-%06d", rc.seq),
		name:    name,
		traceID: traceID,
		start:   time.Now(),
		run:     run,
	}
	if rc.n < rc.max {
		rc.recs[(rc.head+rc.n)%rc.max] = rec
		rc.n++
	} else {
		rc.recs[rc.head] = rec
		rc.head = (rc.head + 1) % rc.max
	}
	rc.mu.Unlock()
	return rec
}

// ID returns the record's process-unique ID (empty on a nil record).
func (rec *RunRecord) ID() string {
	if rec == nil {
		return ""
	}
	return rec.id
}

// Finish stamps the record's end time and outcome: "ok", "canceled",
// "deadline", "shed", or a machine-readable error code. Only the first
// call takes effect.
func (rec *RunRecord) Finish(outcome string) {
	if rec == nil {
		return
	}
	rec.mu.Lock()
	if rec.end.IsZero() {
		rec.end = time.Now()
		rec.outcome = outcome
	}
	rec.mu.Unlock()
}

// RunSummary is one row of the GET /debug/runs listing.
type RunSummary struct {
	ID      string `json:"id"`
	Name    string `json:"name"`
	TraceID string `json:"trace_id,omitempty"`
	// Outcome is "running" while the run is in flight, then the Finish
	// outcome (ok / canceled / deadline / shed / error code).
	Outcome string    `json:"outcome"`
	Running bool      `json:"running,omitempty"`
	Start   time.Time `json:"start"`
	// DurationNS is the run's wall time; for an in-flight run, the time
	// spent so far.
	DurationNS int64 `json:"duration_ns"`
	// Nodes and FreqPoints report the sweep volume (from the run trace's
	// sweep_nodes / sweep_freq_points counters).
	Nodes      int64 `json:"nodes,omitempty"`
	FreqPoints int64 `json:"freq_points,omitempty"`
	// Numerical health: the run's worst scale-relative residual, how many
	// refinement steps the escalation ladder took, and whether any point
	// breached the residual threshold ("degraded" — what the
	// /debug/runs?health=degraded filter selects).
	MaxResidual float64 `json:"max_residual,omitempty"`
	Refinements int64   `json:"refinements,omitempty"`
	Degraded    bool    `json:"degraded,omitempty"`
}

// RunDetail is the full GET /debug/runs/<id> document: the summary plus a
// snapshot of the run's trace (live for in-flight runs, so a hung run can
// be diagnosed from its partial trace).
type RunDetail struct {
	RunSummary
	Trace Trace `json:"trace"`
}

// summary snapshots the record's listing row.
func (rec *RunRecord) summary() RunSummary {
	rec.mu.Lock()
	s := RunSummary{
		ID:      rec.id,
		Name:    rec.name,
		TraceID: rec.traceID,
		Outcome: rec.outcome,
		Start:   rec.start,
	}
	end := rec.end
	rec.mu.Unlock()
	if end.IsZero() {
		s.Running = true
		s.Outcome = "running"
		s.DurationNS = time.Since(s.Start).Nanoseconds()
	} else {
		s.DurationNS = end.Sub(s.Start).Nanoseconds()
	}
	tr := rec.run.Trace()
	if c := tr.Counters; c != nil {
		s.Nodes = c["sweep_nodes"]
		s.FreqPoints = c["sweep_freq_points"]
		s.Refinements = c["ac_refinements"]
		s.Degraded = c["ac_residual_breaches"] > 0
	}
	if tr.Stats != nil {
		s.MaxResidual = tr.Stats["numerics_residual_max"]
	}
	return s
}

// snapshot returns the live records, newest first.
func (rc *Recorder) snapshot() []*RunRecord {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	out := make([]*RunRecord, 0, rc.n)
	for i := rc.n - 1; i >= 0; i-- {
		out = append(out, rc.recs[(rc.head+i)%rc.max])
	}
	return out
}

// List returns summaries of the recorded runs, newest first. A nil
// recorder lists nothing.
func (rc *Recorder) List() []RunSummary {
	if rc == nil {
		return nil
	}
	recs := rc.snapshot()
	out := make([]RunSummary, len(recs))
	for i, rec := range recs {
		out[i] = rec.summary()
	}
	return out
}

// Get returns the full record (summary + trace snapshot) by ID. Records
// evicted from the ring are gone: ok is false.
func (rc *Recorder) Get(id string) (RunDetail, bool) {
	if rc == nil {
		return RunDetail{}, false
	}
	for _, rec := range rc.snapshot() {
		if rec.id == id {
			return RunDetail{RunSummary: rec.summary(), Trace: rec.run.Trace()}, true
		}
	}
	return RunDetail{}, false
}
