package obs

import (
	"sync"
	"testing"
)

func TestRecorderBasics(t *testing.T) {
	rc := NewRecorder(4)
	run := StartRun("job")
	run.Add("sweep_nodes", 9)
	run.Add("sweep_freq_points", 241)
	rec := rc.Begin("run", "trace-abc", run)
	if rec.ID() == "" {
		t.Fatal("record has no ID")
	}

	// In flight: visible with the running marker.
	list := rc.List()
	if len(list) != 1 || !list[0].Running || list[0].Outcome != "running" {
		t.Fatalf("in-flight list = %+v", list)
	}
	if list[0].Nodes != 9 || list[0].FreqPoints != 241 {
		t.Errorf("sweep volume = %d nodes / %d points", list[0].Nodes, list[0].FreqPoints)
	}
	if list[0].DurationNS <= 0 {
		t.Error("in-flight duration should be the time so far")
	}

	run.Finish()
	rec.Finish("ok")
	rec.Finish("error") // second Finish is a no-op
	list = rc.List()
	if list[0].Running || list[0].Outcome != "ok" {
		t.Errorf("finished list = %+v", list[0])
	}

	det, ok := rc.Get(rec.ID())
	if !ok {
		t.Fatal("Get lost the record")
	}
	if det.Outcome != "ok" || det.Trace.Counters["sweep_nodes"] != 9 {
		t.Errorf("detail = %+v", det)
	}
	if _, ok := rc.Get("run-999999"); ok {
		t.Error("unknown ID should miss")
	}
}

func TestRecorderRingBound(t *testing.T) {
	const capacity = 8
	rc := NewRecorder(capacity)
	var ids []string
	for i := 0; i < 3*capacity; i++ {
		rec := rc.Begin("run", "", nil)
		rec.Finish("ok")
		ids = append(ids, rec.ID())
	}
	list := rc.List()
	if len(list) != capacity {
		t.Fatalf("list length = %d, want %d (bounded)", len(list), capacity)
	}
	// Newest first, oldest evicted.
	if list[0].ID != ids[len(ids)-1] {
		t.Errorf("newest = %s, want %s", list[0].ID, ids[len(ids)-1])
	}
	if _, ok := rc.Get(ids[0]); ok {
		t.Error("evicted record still retrievable")
	}
	if _, ok := rc.Get(ids[len(ids)-1]); !ok {
		t.Error("latest record missing")
	}
}

func TestRecorderNilSafety(t *testing.T) {
	var rc *Recorder
	rec := rc.Begin("run", "", nil)
	if rec != nil {
		t.Error("nil recorder should hand out nil records")
	}
	rec.Finish("ok")
	if rec.ID() != "" {
		t.Error("nil record ID should be empty")
	}
	if got := rc.List(); got != nil {
		t.Errorf("nil recorder list = %v", got)
	}
	if _, ok := rc.Get("x"); ok {
		t.Error("nil recorder Get should miss")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	rc := NewRecorder(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				run := StartRun("job")
				rec := rc.Begin("run", "", run)
				run.StartPhase("sweep").End()
				rc.List()
				rc.Get(rec.ID())
				run.Finish()
				rec.Finish("ok")
			}
		}()
	}
	wg.Wait()
	if got := len(rc.List()); got != 16 {
		t.Errorf("list length = %d, want 16", got)
	}
}
