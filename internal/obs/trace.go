package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// maxSpans bounds the per-run span list so sweep drivers (Monte Carlo,
// corners) cannot grow a trace without limit; once hit, further spans are
// counted in DroppedSpans but still feed the registry histograms.
const maxSpans = 4096

// MaxSlowPoints bounds the slow_points section of a trace: the run keeps
// only the worst K frequency points by solve wall time.
const MaxSlowPoints = 8

// MaxHealthPoints bounds the residual-tagged entries of the slow-point
// capture: points carrying a Residual compete on backward error among
// themselves (worst residual first) in a separate quota, so a numerically
// sick point is never crowded out by merely slow ones.
const MaxHealthPoints = 4

// Run is one traced stability run: an ordered list of phase spans plus
// named solver counters. A nil *Run is valid everywhere — every method is
// a no-op on nil — so instrumented code can thread an optional trace
// without branching.
type Run struct {
	mu       sync.Mutex
	name     string
	start    time.Time
	end      time.Time
	spans    []PhaseSpan
	counters map[string]int64
	stats    map[string]float64
	dropped  int64
	slow     []SlowPoint
}

// PhaseSpan is one timed phase inside a run.
type PhaseSpan struct {
	// Phase is the phase name (parse, flatten, mna_assembly, op, sweep,
	// stability, loop_clustering, ...).
	Phase string `json:"phase"`
	// StartNS is the offset from the run start in nanoseconds.
	StartNS int64 `json:"start_ns"`
	// DurationNS is the span length in nanoseconds.
	DurationNS int64 `json:"duration_ns"`
	// Attempt marks spans grafted from a remote worker's trace with the
	// 1-based submission attempt that produced them; 0 means a local span.
	// Retried farm jobs stay distinguishable in the merged trace.
	Attempt int `json:"attempt,omitempty"`
}

// SlowPoint is one slow frequency point of a sweep: the wall time its
// factor+solve step took plus the solver-path context (pivot-free
// refactorization, full factorization, fallback after a collapsed pivot).
type SlowPoint struct {
	// FreqHz is the sweep frequency of the point.
	FreqHz float64 `json:"freq_hz"`
	// WallNS is the wall time of the point's factor+solve step.
	WallNS int64 `json:"wall_ns"`
	// Detail names the solver path the point took (e.g. "refactor",
	// "refactor_fallback": this point fell back to a full factorization),
	// or "residual" for worst-residual health points.
	Detail string `json:"detail,omitempty"`
	// Residual is the scale-relative backward error of the point, set only
	// on worst-residual health points. Such points are ranked by Residual
	// in their own MaxHealthPoints quota of the capture.
	Residual float64 `json:"residual,omitempty"`
}

// Trace is the machine-readable snapshot of a finished (or in-flight) run,
// the payload of acstab -trace-json.
type Trace struct {
	Name         string           `json:"name"`
	DurationNS   int64            `json:"duration_ns"`
	Phases       []PhaseSpan      `json:"phases"`
	Counters     map[string]int64 `json:"counters,omitempty"`
	DroppedSpans int64            `json:"dropped_spans,omitempty"`
	// SlowPoints lists the worst MaxSlowPoints frequency points of the
	// run's sweeps by linear-solve wall time, worst first, followed by up
	// to MaxHealthPoints worst-residual points (Residual set).
	SlowPoints []SlowPoint `json:"slow_points,omitempty"`
	// Stats holds named float-valued numerics statistics (max residual,
	// pivot growth, condition estimate). Keys ending in "_max" merge by
	// maximum across grafted remote traces; all others merge by sum.
	Stats map[string]float64 `json:"stats,omitempty"`
}

// StartRun begins a trace.
func StartRun(name string) *Run {
	return &Run{name: name, start: time.Now(), counters: map[string]int64{}}
}

// Finish stamps the run end time. Calling it again is a no-op.
func (r *Run) Finish() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.end.IsZero() {
		r.end = time.Now()
	}
}

// Add accumulates a named counter (factorizations, solves, nodes, ...).
func (r *Run) Add(name string, n int64) {
	if r == nil || n == 0 {
		return
	}
	r.mu.Lock()
	r.counters[name] += n
	r.mu.Unlock()
}

// StatMax records a float-valued statistic, keeping the maximum of all
// observations (use keys ending in "_max" so remote grafts merge the same
// way). Non-positive values are ignored — every numerics statistic this
// repo tracks is positive when meaningful.
func (r *Run) StatMax(name string, v float64) {
	if r == nil || v <= 0 {
		return
	}
	r.mu.Lock()
	if r.stats == nil {
		r.stats = map[string]float64{}
	}
	if v > r.stats[name] {
		r.stats[name] = v
	}
	r.mu.Unlock()
}

// ResidualDecadePrefix prefixes the trace-counter keys of the per-run
// residual digest: ResidualDecadeKey(d) counts the frequency points whose
// scale-relative backward error landed in [10^d, 10^(d+1)). The digest
// rides the ordinary int64 counter map, so remote grafting and shard
// merging sum it exactly; display layers filter the prefix out of plain
// counter listings and reconstruct a median from it (MedianResidual).
const ResidualDecadePrefix = "ac_residual_decade_"

// ResidualDecadeBuckets spans decades [-18, 0]; errors outside clamp in.
const (
	ResidualDecadeMin = -18
	ResidualDecadeMax = 0
)

// ResidualDecadeKey returns the digest counter key for decade d (clamped
// to [ResidualDecadeMin, ResidualDecadeMax]).
func ResidualDecadeKey(d int) string {
	if d < ResidualDecadeMin {
		d = ResidualDecadeMin
	}
	if d > ResidualDecadeMax {
		d = ResidualDecadeMax
	}
	return fmt.Sprintf("%s%d", ResidualDecadePrefix, d)
}

// MedianResidual estimates the median scale-relative residual from a
// counter map carrying the per-decade digest. The estimate is the
// geometric midpoint of the decade holding the median observation —
// decade resolution, which is exactly the granularity a health readout
// needs. ok is false when the map holds no digest.
func MedianResidual(counters map[string]int64) (med float64, ok bool) {
	var total int64
	counts := make(map[int]int64)
	for k, v := range counters {
		if !strings.HasPrefix(k, ResidualDecadePrefix) {
			continue
		}
		d, err := strconv.Atoi(k[len(ResidualDecadePrefix):])
		if err != nil {
			continue
		}
		counts[d] += v
		total += v
	}
	if total == 0 {
		return 0, false
	}
	var seen int64
	for d := ResidualDecadeMin; d <= ResidualDecadeMax; d++ {
		seen += counts[d]
		if 2*seen >= total {
			return math.Pow(10, float64(d)+0.5), true
		}
	}
	return 0, false
}

// Span is an open phase; End closes it. A nil *Span is valid and End is a
// no-op; so is a second End on the same span.
type Span struct {
	run   *Run
	phase string
	start time.Time
	done  atomic.Bool
}

// StartPhase opens a phase span attached to r. The span always records its
// duration into the Default registry histogram
// `acstab_phase_duration_seconds{phase="<name>"}` on End; when r is non-nil
// it is also appended to the run's trace.
func StartPhase(r *Run, phase string) *Span {
	return &Span{run: r, phase: phase, start: time.Now()}
}

// StartPhase opens a phase span on the run (nil-safe; equivalent to the
// package-level StartPhase).
func (r *Run) StartPhase(phase string) *Span { return StartPhase(r, phase) }

// End closes the span: the duration feeds the registry phase histogram
// and, if the span belongs to a run, the run's trace. End is idempotent —
// only the first call observes the histogram and appends to the trace, so
// a defensive double-End (e.g. a deferred End after an explicit one on an
// error path) does not double-count.
func (s *Span) End() {
	if s == nil || !s.done.CompareAndSwap(false, true) {
		return
	}
	dur := time.Since(s.start)
	GetHistogram(`acstab_phase_duration_seconds{phase="` + s.phase + `"}`).Observe(dur.Seconds())
	r := s.run
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.spans) >= maxSpans {
		r.dropped++
		return
	}
	r.spans = append(r.spans, PhaseSpan{
		Phase:      s.phase,
		StartNS:    s.start.Sub(r.start).Nanoseconds(),
		DurationNS: dur.Nanoseconds(),
	})
}

// Trace snapshots the run. It can be called before Finish; the duration
// then reflects "so far".
func (r *Run) Trace() Trace {
	if r == nil {
		return Trace{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	end := r.end
	if end.IsZero() {
		end = time.Now()
	}
	t := Trace{
		Name:         r.name,
		DurationNS:   end.Sub(r.start).Nanoseconds(),
		Phases:       append([]PhaseSpan(nil), r.spans...),
		DroppedSpans: r.dropped,
		SlowPoints:   append([]SlowPoint(nil), r.slow...),
	}
	if len(r.counters) > 0 {
		t.Counters = make(map[string]int64, len(r.counters))
		for k, v := range r.counters {
			t.Counters[k] = v
		}
	}
	if len(r.stats) > 0 {
		t.Stats = make(map[string]float64, len(r.stats))
		for k, v := range r.stats {
			t.Stats[k] = v
		}
	}
	return t
}

// AddSlowPoints merges candidate slow points into the run, keeping only
// the worst MaxSlowPoints by wall time (worst first). Sweep workers each
// track a local worst-K and flush it here, so the run holds the global
// worst-K across workers.
func (r *Run) AddSlowPoints(pts []SlowPoint) {
	if r == nil || len(pts) == 0 {
		return
	}
	r.mu.Lock()
	r.mergeSlowPointsLocked(pts)
	r.mu.Unlock()
}

func (r *Run) mergeSlowPointsLocked(pts []SlowPoint) {
	r.slow = append(r.slow, pts...)
	// Wall-time points and residual-tagged health points keep separate
	// quotas: wall points rank by WallNS (worst MaxSlowPoints), health
	// points (Residual > 0) rank by Residual (worst MaxHealthPoints) and
	// sort after the wall points. A sick-but-fast point therefore always
	// survives the merge.
	wall := r.slow[:0]
	var health []SlowPoint
	for _, p := range r.slow {
		if p.Residual > 0 {
			health = append(health, p)
		} else {
			wall = append(wall, p)
		}
	}
	sort.SliceStable(wall, func(i, j int) bool { return wall[i].WallNS > wall[j].WallNS })
	if len(wall) > MaxSlowPoints {
		wall = wall[:MaxSlowPoints]
	}
	sort.SliceStable(health, func(i, j int) bool { return health[i].Residual > health[j].Residual })
	if len(health) > MaxHealthPoints {
		health = health[:MaxHealthPoints]
	}
	r.slow = append(wall, health...)
}

// GraftRemote merges a remote worker's trace into the run as a subtree of
// the request that fetched it: every remote span is annotated with the
// 1-based submission attempt and re-anchored inside the local request
// window [reqStart, reqStart+reqDur). Remote span offsets are relative to
// the remote run's own start, so absolute clocks never mix — the remote
// timeline is placed at reqStart plus half the window slack (splitting the
// network round-trip symmetrically), which keeps grafted spans inside the
// request span even under arbitrary clock skew. Remote counters, dropped
// spans, and slow points merge into the run's own.
func (r *Run) GraftRemote(t Trace, reqStart time.Time, reqDur time.Duration, attempt int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	anchor := reqStart.Sub(r.start).Nanoseconds()
	if slack := reqDur.Nanoseconds() - t.DurationNS; slack > 0 {
		anchor += slack / 2
	}
	if anchor < 0 {
		anchor = 0
	}
	for _, sp := range t.Phases {
		if len(r.spans) >= maxSpans {
			r.dropped++
			continue
		}
		r.spans = append(r.spans, PhaseSpan{
			Phase:      sp.Phase,
			StartNS:    anchor + sp.StartNS,
			DurationNS: sp.DurationNS,
			Attempt:    attempt,
		})
	}
	for k, v := range t.Counters {
		r.counters[k] += v
	}
	// Float stats: "_max" keys keep the fleet-wide maximum, everything
	// else sums — the same semantics the per-decade residual digest gets
	// for free from the counter merge above.
	if len(t.Stats) > 0 {
		if r.stats == nil {
			r.stats = make(map[string]float64, len(t.Stats))
		}
		for k, v := range t.Stats {
			if strings.HasSuffix(k, "_max") {
				if v > r.stats[k] {
					r.stats[k] = v
				}
			} else {
				r.stats[k] += v
			}
		}
	}
	r.dropped += t.DroppedSpans
	r.mergeSlowPointsLocked(t.SlowPoints)
}

// WriteJSON writes the trace as indented JSON (the -trace-json payload).
func (r *Run) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Trace())
}

// phaseAgg is one row of the human summary.
type phaseAgg struct {
	name  string
	count int
	total time.Duration
}

// WriteSummary prints the human-readable run summary behind acstab -stats:
// per-phase wall time (aggregated over repeated phases), the share of the
// run each phase took, and the solver counters.
func (r *Run) WriteSummary(w io.Writer) error {
	if r == nil {
		return nil
	}
	t := r.Trace()
	total := time.Duration(t.DurationNS)
	agg := map[string]*phaseAgg{}
	var order []string
	for _, sp := range t.Phases {
		a, ok := agg[sp.Phase]
		if !ok {
			a = &phaseAgg{name: sp.Phase}
			agg[sp.Phase] = a
			order = append(order, sp.Phase)
		}
		a.count++
		a.total += time.Duration(sp.DurationNS)
	}
	if _, err := fmt.Fprintf(w, "run %s: %s total\n", t.Name, total.Round(time.Microsecond)); err != nil {
		return err
	}
	for _, name := range order {
		a := agg[name]
		share := 0.0
		if total > 0 {
			share = 100 * float64(a.total) / float64(total)
		}
		if _, err := fmt.Fprintf(w, "  phase %-16s %12s  %5.1f%%  (x%d)\n",
			a.name, a.total.Round(time.Microsecond), share, a.count); err != nil {
			return err
		}
	}
	if t.DroppedSpans > 0 {
		if _, err := fmt.Fprintf(w, "  (%d spans dropped beyond the %d-span trace cap)\n", t.DroppedSpans, maxSpans); err != nil {
			return err
		}
	}
	if len(t.Counters) > 0 {
		names := make([]string, 0, len(t.Counters))
		for k := range t.Counters {
			// The residual digest feeds the numerics block below, not the
			// raw counter listing.
			if !strings.HasPrefix(k, ResidualDecadePrefix) {
				names = append(names, k)
			}
		}
		sort.Strings(names)
		if len(names) > 0 {
			if _, err := fmt.Fprintln(w, "solver counters:"); err != nil {
				return err
			}
			for _, k := range names {
				if _, err := fmt.Fprintf(w, "  %-24s %d\n", k, t.Counters[k]); err != nil {
					return err
				}
			}
		}
	}
	if err := writeNumericsSummary(w, t); err != nil {
		return err
	}
	if len(t.SlowPoints) > 0 {
		if _, err := fmt.Fprintln(w, "slowest frequency points:"); err != nil {
			return err
		}
		for _, p := range t.SlowPoints {
			detail := p.Detail
			if p.Residual > 0 {
				detail = fmt.Sprintf("%s (residual %.2e)", p.Detail, p.Residual)
			}
			if _, err := fmt.Fprintf(w, "  %12.4g Hz  %12s  %s\n",
				p.FreqHz, time.Duration(p.WallNS).Round(time.Microsecond), detail); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeNumericsSummary prints the numerical-health block of a run summary:
// max/median scale-relative residual, refinement/breach/fallback counts,
// pivot growth, and the sampled condition estimate. Silent when the run
// carried no residual telemetry (numerics disabled or no AC sweep).
func writeNumericsSummary(w io.Writer, t Trace) error {
	points := t.Counters["ac_residual_points"]
	if points == 0 {
		return nil
	}
	if _, err := fmt.Fprintln(w, "numerical health:"); err != nil {
		return err
	}
	if max := t.Stats["numerics_residual_max"]; max > 0 {
		if _, err := fmt.Fprintf(w, "  %-24s %.2e\n", "residual max", max); err != nil {
			return err
		}
	}
	if med, ok := MedianResidual(t.Counters); ok {
		if _, err := fmt.Fprintf(w, "  %-24s %.2e (over %d points)\n", "residual median", med, points); err != nil {
			return err
		}
	}
	for _, row := range []struct {
		label string
		key   string
	}{
		{"refinements", "ac_refinements"},
		{"residual breaches", "ac_residual_breaches"},
		{"refactor fallbacks", "ac_refactor_fallbacks"},
	} {
		if _, err := fmt.Fprintf(w, "  %-24s %d\n", row.label, t.Counters[row.key]); err != nil {
			return err
		}
	}
	if g := t.Stats["numerics_pivot_growth_max"]; g > 0 {
		if _, err := fmt.Fprintf(w, "  %-24s %.3g\n", "pivot growth max", g); err != nil {
			return err
		}
	}
	if c := t.Stats["numerics_cond_est_max"]; c > 0 {
		if _, err := fmt.Fprintf(w, "  %-24s %.3g\n", "condition estimate", c); err != nil {
			return err
		}
	}
	return nil
}
