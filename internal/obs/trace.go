package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// maxSpans bounds the per-run span list so sweep drivers (Monte Carlo,
// corners) cannot grow a trace without limit; once hit, further spans are
// counted in DroppedSpans but still feed the registry histograms.
const maxSpans = 4096

// Run is one traced stability run: an ordered list of phase spans plus
// named solver counters. A nil *Run is valid everywhere — every method is
// a no-op on nil — so instrumented code can thread an optional trace
// without branching.
type Run struct {
	mu       sync.Mutex
	name     string
	start    time.Time
	end      time.Time
	spans    []PhaseSpan
	counters map[string]int64
	dropped  int64
}

// PhaseSpan is one timed phase inside a run.
type PhaseSpan struct {
	// Phase is the phase name (parse, flatten, mna_assembly, op, sweep,
	// stability, loop_clustering, ...).
	Phase string `json:"phase"`
	// StartNS is the offset from the run start in nanoseconds.
	StartNS int64 `json:"start_ns"`
	// DurationNS is the span length in nanoseconds.
	DurationNS int64 `json:"duration_ns"`
}

// Trace is the machine-readable snapshot of a finished (or in-flight) run,
// the payload of acstab -trace-json.
type Trace struct {
	Name         string           `json:"name"`
	DurationNS   int64            `json:"duration_ns"`
	Phases       []PhaseSpan      `json:"phases"`
	Counters     map[string]int64 `json:"counters,omitempty"`
	DroppedSpans int64            `json:"dropped_spans,omitempty"`
}

// StartRun begins a trace.
func StartRun(name string) *Run {
	return &Run{name: name, start: time.Now(), counters: map[string]int64{}}
}

// Finish stamps the run end time. Calling it again is a no-op.
func (r *Run) Finish() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.end.IsZero() {
		r.end = time.Now()
	}
}

// Add accumulates a named counter (factorizations, solves, nodes, ...).
func (r *Run) Add(name string, n int64) {
	if r == nil || n == 0 {
		return
	}
	r.mu.Lock()
	r.counters[name] += n
	r.mu.Unlock()
}

// Span is an open phase; End closes it. A nil *Span is valid and End is a
// no-op.
type Span struct {
	run   *Run
	phase string
	start time.Time
}

// StartPhase opens a phase span attached to r. The span always records its
// duration into the Default registry histogram
// `acstab_phase_duration_seconds{phase="<name>"}` on End; when r is non-nil
// it is also appended to the run's trace.
func StartPhase(r *Run, phase string) *Span {
	return &Span{run: r, phase: phase, start: time.Now()}
}

// StartPhase opens a phase span on the run (nil-safe; equivalent to the
// package-level StartPhase).
func (r *Run) StartPhase(phase string) *Span { return StartPhase(r, phase) }

// End closes the span: the duration feeds the registry phase histogram
// and, if the span belongs to a run, the run's trace.
func (s *Span) End() {
	if s == nil {
		return
	}
	dur := time.Since(s.start)
	GetHistogram(`acstab_phase_duration_seconds{phase="` + s.phase + `"}`).Observe(dur.Seconds())
	r := s.run
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.spans) >= maxSpans {
		r.dropped++
		return
	}
	r.spans = append(r.spans, PhaseSpan{
		Phase:      s.phase,
		StartNS:    s.start.Sub(r.start).Nanoseconds(),
		DurationNS: dur.Nanoseconds(),
	})
}

// Trace snapshots the run. It can be called before Finish; the duration
// then reflects "so far".
func (r *Run) Trace() Trace {
	if r == nil {
		return Trace{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	end := r.end
	if end.IsZero() {
		end = time.Now()
	}
	t := Trace{
		Name:         r.name,
		DurationNS:   end.Sub(r.start).Nanoseconds(),
		Phases:       append([]PhaseSpan(nil), r.spans...),
		DroppedSpans: r.dropped,
	}
	if len(r.counters) > 0 {
		t.Counters = make(map[string]int64, len(r.counters))
		for k, v := range r.counters {
			t.Counters[k] = v
		}
	}
	return t
}

// WriteJSON writes the trace as indented JSON (the -trace-json payload).
func (r *Run) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Trace())
}

// phaseAgg is one row of the human summary.
type phaseAgg struct {
	name  string
	count int
	total time.Duration
}

// WriteSummary prints the human-readable run summary behind acstab -stats:
// per-phase wall time (aggregated over repeated phases), the share of the
// run each phase took, and the solver counters.
func (r *Run) WriteSummary(w io.Writer) error {
	if r == nil {
		return nil
	}
	t := r.Trace()
	total := time.Duration(t.DurationNS)
	agg := map[string]*phaseAgg{}
	var order []string
	for _, sp := range t.Phases {
		a, ok := agg[sp.Phase]
		if !ok {
			a = &phaseAgg{name: sp.Phase}
			agg[sp.Phase] = a
			order = append(order, sp.Phase)
		}
		a.count++
		a.total += time.Duration(sp.DurationNS)
	}
	if _, err := fmt.Fprintf(w, "run %s: %s total\n", t.Name, total.Round(time.Microsecond)); err != nil {
		return err
	}
	for _, name := range order {
		a := agg[name]
		share := 0.0
		if total > 0 {
			share = 100 * float64(a.total) / float64(total)
		}
		if _, err := fmt.Fprintf(w, "  phase %-16s %12s  %5.1f%%  (x%d)\n",
			a.name, a.total.Round(time.Microsecond), share, a.count); err != nil {
			return err
		}
	}
	if t.DroppedSpans > 0 {
		if _, err := fmt.Fprintf(w, "  (%d spans dropped beyond the %d-span trace cap)\n", t.DroppedSpans, maxSpans); err != nil {
			return err
		}
	}
	if len(t.Counters) > 0 {
		names := make([]string, 0, len(t.Counters))
		for k := range t.Counters {
			names = append(names, k)
		}
		sort.Strings(names)
		if _, err := fmt.Fprintln(w, "solver counters:"); err != nil {
			return err
		}
		for _, k := range names {
			if _, err := fmt.Fprintf(w, "  %-24s %d\n", k, t.Counters[k]); err != nil {
				return err
			}
		}
	}
	return nil
}
