package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// maxSpans bounds the per-run span list so sweep drivers (Monte Carlo,
// corners) cannot grow a trace without limit; once hit, further spans are
// counted in DroppedSpans but still feed the registry histograms.
const maxSpans = 4096

// MaxSlowPoints bounds the slow_points section of a trace: the run keeps
// only the worst K frequency points by solve wall time.
const MaxSlowPoints = 8

// Run is one traced stability run: an ordered list of phase spans plus
// named solver counters. A nil *Run is valid everywhere — every method is
// a no-op on nil — so instrumented code can thread an optional trace
// without branching.
type Run struct {
	mu       sync.Mutex
	name     string
	start    time.Time
	end      time.Time
	spans    []PhaseSpan
	counters map[string]int64
	dropped  int64
	slow     []SlowPoint
}

// PhaseSpan is one timed phase inside a run.
type PhaseSpan struct {
	// Phase is the phase name (parse, flatten, mna_assembly, op, sweep,
	// stability, loop_clustering, ...).
	Phase string `json:"phase"`
	// StartNS is the offset from the run start in nanoseconds.
	StartNS int64 `json:"start_ns"`
	// DurationNS is the span length in nanoseconds.
	DurationNS int64 `json:"duration_ns"`
	// Attempt marks spans grafted from a remote worker's trace with the
	// 1-based submission attempt that produced them; 0 means a local span.
	// Retried farm jobs stay distinguishable in the merged trace.
	Attempt int `json:"attempt,omitempty"`
}

// SlowPoint is one slow frequency point of a sweep: the wall time its
// factor+solve step took plus the solver-path context (pivot-free
// refactorization, full factorization, fallback after a collapsed pivot).
type SlowPoint struct {
	// FreqHz is the sweep frequency of the point.
	FreqHz float64 `json:"freq_hz"`
	// WallNS is the wall time of the point's factor+solve step.
	WallNS int64 `json:"wall_ns"`
	// Detail names the solver path the point took (e.g. "refactor",
	// "refactor_fallback": this point fell back to a full factorization).
	Detail string `json:"detail,omitempty"`
}

// Trace is the machine-readable snapshot of a finished (or in-flight) run,
// the payload of acstab -trace-json.
type Trace struct {
	Name         string           `json:"name"`
	DurationNS   int64            `json:"duration_ns"`
	Phases       []PhaseSpan      `json:"phases"`
	Counters     map[string]int64 `json:"counters,omitempty"`
	DroppedSpans int64            `json:"dropped_spans,omitempty"`
	// SlowPoints lists the worst MaxSlowPoints frequency points of the
	// run's sweeps by linear-solve wall time, worst first.
	SlowPoints []SlowPoint `json:"slow_points,omitempty"`
}

// StartRun begins a trace.
func StartRun(name string) *Run {
	return &Run{name: name, start: time.Now(), counters: map[string]int64{}}
}

// Finish stamps the run end time. Calling it again is a no-op.
func (r *Run) Finish() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.end.IsZero() {
		r.end = time.Now()
	}
}

// Add accumulates a named counter (factorizations, solves, nodes, ...).
func (r *Run) Add(name string, n int64) {
	if r == nil || n == 0 {
		return
	}
	r.mu.Lock()
	r.counters[name] += n
	r.mu.Unlock()
}

// Span is an open phase; End closes it. A nil *Span is valid and End is a
// no-op; so is a second End on the same span.
type Span struct {
	run   *Run
	phase string
	start time.Time
	done  atomic.Bool
}

// StartPhase opens a phase span attached to r. The span always records its
// duration into the Default registry histogram
// `acstab_phase_duration_seconds{phase="<name>"}` on End; when r is non-nil
// it is also appended to the run's trace.
func StartPhase(r *Run, phase string) *Span {
	return &Span{run: r, phase: phase, start: time.Now()}
}

// StartPhase opens a phase span on the run (nil-safe; equivalent to the
// package-level StartPhase).
func (r *Run) StartPhase(phase string) *Span { return StartPhase(r, phase) }

// End closes the span: the duration feeds the registry phase histogram
// and, if the span belongs to a run, the run's trace. End is idempotent —
// only the first call observes the histogram and appends to the trace, so
// a defensive double-End (e.g. a deferred End after an explicit one on an
// error path) does not double-count.
func (s *Span) End() {
	if s == nil || !s.done.CompareAndSwap(false, true) {
		return
	}
	dur := time.Since(s.start)
	GetHistogram(`acstab_phase_duration_seconds{phase="` + s.phase + `"}`).Observe(dur.Seconds())
	r := s.run
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.spans) >= maxSpans {
		r.dropped++
		return
	}
	r.spans = append(r.spans, PhaseSpan{
		Phase:      s.phase,
		StartNS:    s.start.Sub(r.start).Nanoseconds(),
		DurationNS: dur.Nanoseconds(),
	})
}

// Trace snapshots the run. It can be called before Finish; the duration
// then reflects "so far".
func (r *Run) Trace() Trace {
	if r == nil {
		return Trace{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	end := r.end
	if end.IsZero() {
		end = time.Now()
	}
	t := Trace{
		Name:         r.name,
		DurationNS:   end.Sub(r.start).Nanoseconds(),
		Phases:       append([]PhaseSpan(nil), r.spans...),
		DroppedSpans: r.dropped,
		SlowPoints:   append([]SlowPoint(nil), r.slow...),
	}
	if len(r.counters) > 0 {
		t.Counters = make(map[string]int64, len(r.counters))
		for k, v := range r.counters {
			t.Counters[k] = v
		}
	}
	return t
}

// AddSlowPoints merges candidate slow points into the run, keeping only
// the worst MaxSlowPoints by wall time (worst first). Sweep workers each
// track a local worst-K and flush it here, so the run holds the global
// worst-K across workers.
func (r *Run) AddSlowPoints(pts []SlowPoint) {
	if r == nil || len(pts) == 0 {
		return
	}
	r.mu.Lock()
	r.mergeSlowPointsLocked(pts)
	r.mu.Unlock()
}

func (r *Run) mergeSlowPointsLocked(pts []SlowPoint) {
	r.slow = append(r.slow, pts...)
	sort.SliceStable(r.slow, func(i, j int) bool { return r.slow[i].WallNS > r.slow[j].WallNS })
	if len(r.slow) > MaxSlowPoints {
		r.slow = r.slow[:MaxSlowPoints]
	}
}

// GraftRemote merges a remote worker's trace into the run as a subtree of
// the request that fetched it: every remote span is annotated with the
// 1-based submission attempt and re-anchored inside the local request
// window [reqStart, reqStart+reqDur). Remote span offsets are relative to
// the remote run's own start, so absolute clocks never mix — the remote
// timeline is placed at reqStart plus half the window slack (splitting the
// network round-trip symmetrically), which keeps grafted spans inside the
// request span even under arbitrary clock skew. Remote counters, dropped
// spans, and slow points merge into the run's own.
func (r *Run) GraftRemote(t Trace, reqStart time.Time, reqDur time.Duration, attempt int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	anchor := reqStart.Sub(r.start).Nanoseconds()
	if slack := reqDur.Nanoseconds() - t.DurationNS; slack > 0 {
		anchor += slack / 2
	}
	if anchor < 0 {
		anchor = 0
	}
	for _, sp := range t.Phases {
		if len(r.spans) >= maxSpans {
			r.dropped++
			continue
		}
		r.spans = append(r.spans, PhaseSpan{
			Phase:      sp.Phase,
			StartNS:    anchor + sp.StartNS,
			DurationNS: sp.DurationNS,
			Attempt:    attempt,
		})
	}
	for k, v := range t.Counters {
		r.counters[k] += v
	}
	r.dropped += t.DroppedSpans
	r.mergeSlowPointsLocked(t.SlowPoints)
}

// WriteJSON writes the trace as indented JSON (the -trace-json payload).
func (r *Run) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Trace())
}

// phaseAgg is one row of the human summary.
type phaseAgg struct {
	name  string
	count int
	total time.Duration
}

// WriteSummary prints the human-readable run summary behind acstab -stats:
// per-phase wall time (aggregated over repeated phases), the share of the
// run each phase took, and the solver counters.
func (r *Run) WriteSummary(w io.Writer) error {
	if r == nil {
		return nil
	}
	t := r.Trace()
	total := time.Duration(t.DurationNS)
	agg := map[string]*phaseAgg{}
	var order []string
	for _, sp := range t.Phases {
		a, ok := agg[sp.Phase]
		if !ok {
			a = &phaseAgg{name: sp.Phase}
			agg[sp.Phase] = a
			order = append(order, sp.Phase)
		}
		a.count++
		a.total += time.Duration(sp.DurationNS)
	}
	if _, err := fmt.Fprintf(w, "run %s: %s total\n", t.Name, total.Round(time.Microsecond)); err != nil {
		return err
	}
	for _, name := range order {
		a := agg[name]
		share := 0.0
		if total > 0 {
			share = 100 * float64(a.total) / float64(total)
		}
		if _, err := fmt.Fprintf(w, "  phase %-16s %12s  %5.1f%%  (x%d)\n",
			a.name, a.total.Round(time.Microsecond), share, a.count); err != nil {
			return err
		}
	}
	if t.DroppedSpans > 0 {
		if _, err := fmt.Fprintf(w, "  (%d spans dropped beyond the %d-span trace cap)\n", t.DroppedSpans, maxSpans); err != nil {
			return err
		}
	}
	if len(t.Counters) > 0 {
		names := make([]string, 0, len(t.Counters))
		for k := range t.Counters {
			names = append(names, k)
		}
		sort.Strings(names)
		if _, err := fmt.Fprintln(w, "solver counters:"); err != nil {
			return err
		}
		for _, k := range names {
			if _, err := fmt.Fprintf(w, "  %-24s %d\n", k, t.Counters[k]); err != nil {
				return err
			}
		}
	}
	if len(t.SlowPoints) > 0 {
		if _, err := fmt.Fprintln(w, "slowest frequency points:"); err != nil {
			return err
		}
		for _, p := range t.SlowPoints {
			if _, err := fmt.Fprintf(w, "  %12.4g Hz  %12s  %s\n",
				p.FreqHz, time.Duration(p.WallNS).Round(time.Microsecond), p.Detail); err != nil {
				return err
			}
		}
	}
	return nil
}
