package obs

import (
	"fmt"
	"io"
	"math"
	"sync/atomic"
	"time"
)

// defBuckets are the default upper bounds: log-scale from 1µs to 1000s
// with three buckets per decade (1, 2.5, 5 sub-divisions). Stability-run
// phases span microseconds (parsing a tank netlist) to minutes (all-nodes
// sweeps of large transistor circuits), which is exactly what a log grid
// covers with a bounded bucket count.
var defBuckets = func() []float64 {
	var b []float64
	for exp := -6; exp <= 2; exp++ {
		scale := math.Pow(10, float64(exp))
		b = append(b, 1*scale, 2.5*scale, 5*scale)
	}
	return append(b, 1000)
}()

// Histogram is a fixed-bucket histogram with atomic counters. Buckets hold
// upper bounds; one extra overflow bucket catches everything above the
// last bound.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64
	count  atomic.Int64
	sumU   atomic.Uint64 // float64 bits of the running sum
}

func newHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = defBuckets
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search: bounds are ascending and short, but O(log n) keeps
	// large custom bucket sets cheap too.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sumU.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumU.CompareAndSwap(old, nv) {
			return
		}
	}
}

// ObserveDuration records the seconds elapsed since start.
func (h *Histogram) ObserveDuration(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumU.Load()) }

// Quantile estimates the q-quantile (0..1) from the bucket counts by
// linear interpolation inside the selected bucket. It returns 0 with no
// observations.
func (h *Histogram) Quantile(q float64) float64 {
	counts := make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return bucketQuantile(h.bounds, counts, h.count.Load(), q)
}

// bucketQuantile is the shared quantile estimator over a bucket-count
// vector: Histogram.Quantile on a live histogram and
// HistogramData.Quantile on a snapshot (possibly merged across workers)
// must agree by construction.
func bucketQuantile(bounds []float64, counts []int64, total int64, q float64) float64 {
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var seen float64
	for i := range counts {
		n := float64(counts[i])
		if n == 0 {
			continue
		}
		if seen+n >= rank {
			lo := 0.0
			if i > 0 {
				lo = bounds[i-1]
			}
			hi := lo
			if i < len(bounds) {
				hi = bounds[i]
			}
			frac := (rank - seen) / n
			return lo + frac*(hi-lo)
		}
		seen += n
	}
	return bounds[len(bounds)-1]
}

// HistogramSnapshot is the JSON form of a histogram in Registry.Snapshot
// and /statusz.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Avg   float64 `json:"avg"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

func (h *Histogram) snapshotValue() any {
	s := HistogramSnapshot{Count: h.Count(), Sum: h.Sum()}
	if s.Count > 0 {
		s.Avg = s.Sum / float64(s.Count)
		s.P50 = h.Quantile(0.50)
		s.P90 = h.Quantile(0.90)
		s.P99 = h.Quantile(0.99)
	}
	return s
}

// HistogramData is the full-fidelity wire form of a histogram: the raw
// bucket layout and counts, not just summary quantiles. It is what
// `/metrics?format=json` exports and what fleet federation merges —
// summed bucket vectors reproduce exact counts and sums, and quantiles
// of the merged data are computed from the merged buckets rather than
// averaged from per-worker estimates.
type HistogramData struct {
	// Bounds are the ascending bucket upper bounds.
	Bounds []float64 `json:"bounds"`
	// Counts has len(Bounds)+1 entries; the last is the overflow bucket.
	Counts []int64 `json:"counts"`
	Count  int64   `json:"count"`
	Sum    float64 `json:"sum"`
}

// Data snapshots the histogram's raw buckets. Counts are read
// individually while observations may be in flight, so under concurrent
// recording the vector is a near-point-in-time view (each bucket is
// individually exact and monotone).
func (h *Histogram) Data() HistogramData {
	d := HistogramData{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.Sum(),
	}
	for i := range h.counts {
		d.Counts[i] = h.counts[i].Load()
	}
	return d
}

// Merge adds o's buckets, count, and sum into d. It reports false —
// leaving d untouched — when the bucket layouts differ; federation
// surfaces those as unmergeable instead of producing silently wrong
// quantiles.
func (d *HistogramData) Merge(o HistogramData) bool {
	if len(d.Bounds) != len(o.Bounds) || len(d.Counts) != len(o.Counts) {
		return false
	}
	for i := range d.Bounds {
		if d.Bounds[i] != o.Bounds[i] {
			return false
		}
	}
	for i := range d.Counts {
		d.Counts[i] += o.Counts[i]
	}
	d.Count += o.Count
	d.Sum += o.Sum
	return true
}

// Quantile estimates the q-quantile from the snapshot's buckets with the
// same interpolation as Histogram.Quantile.
func (d HistogramData) Quantile(q float64) float64 {
	return bucketQuantile(d.Bounds, d.Counts, d.Count, q)
}

// Summary condenses the data into the /statusz snapshot form.
func (d HistogramData) Summary() HistogramSnapshot {
	s := HistogramSnapshot{Count: d.Count, Sum: d.Sum}
	if s.Count > 0 {
		s.Avg = s.Sum / float64(s.Count)
		s.P50 = d.Quantile(0.50)
		s.P90 = d.Quantile(0.90)
		s.P99 = d.Quantile(0.99)
	}
	return s
}

func (h *Histogram) promType() string { return "histogram" }

// writeProm emits the cumulative `le` bucket series plus _sum and _count,
// merging any labels present in the metric name into the bucket label set.
func (h *Histogram) writeProm(w io.Writer, name string) error {
	family, labels := splitName(name)
	inner := ""
	if labels != "" {
		inner = labels[1:len(labels)-1] + ","
	}
	cum := int64(0)
	for i, ub := range h.bounds {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", family, inner, trimFloat(ub), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", family, inner, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", family, labels, h.Sum()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", family, labels, h.Count())
	return err
}

// trimFloat renders a bucket bound compactly (0.0025, 1, 250).
func trimFloat(v float64) string {
	return fmt.Sprintf("%g", v)
}
