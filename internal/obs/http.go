package obs

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"strings"
	"sync/atomic"
	"time"
)

// StderrEvents is the fallback wide-event sink: JSON events on standard
// error, the conventional destination for daemon logs. Middleware and the
// farm worker use it when no logger is configured.
var StderrEvents = NewEventLogger(os.Stderr)

// reqSeq numbers requests process-wide for the request-ID log field.
var reqSeq atomic.Int64

// statusWriter captures the response code and byte count.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards http.Flusher to the wrapped writer so a streaming handler
// behind the middleware keeps flushing; it is a no-op when the underlying
// writer does not support it. Without this the wrapper would hide the
// Flusher interface and streaming endpoints would silently buffer.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		if w.status == 0 {
			w.status = http.StatusOK
		}
		f.Flush()
	}
}

// labelPath normalizes the metric path label: known routes pass through,
// everything else collapses to "other" so hostile or random URLs cannot
// grow the metric space without bound.
func labelPath(p string) string {
	switch {
	case p == "/run", p == "/batch", p == "/healthz", p == "/metrics", p == "/statusz":
		return p
	case p == "/debug/runs" || strings.HasPrefix(p, "/debug/runs/"):
		return "/debug/runs"
	case p == "/debug/events":
		return "/debug/events"
	case strings.HasPrefix(p, "/debug/pprof"):
		return "/debug/pprof"
	default:
		return "other"
	}
}

// Middleware wraps an HTTP handler with request observability: a request
// counter and latency histogram per (path, status), request/response byte
// counters, an in-flight gauge, and one "http" wide event per request
// carrying a process-unique request ID. Requests to /run and /batch are
// metered but not logged here — those handlers emit the single canonical
// "run"/"batch" wide event for them, and one request must produce exactly
// one event. A nil log selects StderrEvents.
func Middleware(next http.Handler, log *EventLogger) http.Handler {
	if log == nil {
		log = StderrEvents
	}
	inflight := GetGauge("acstab_http_requests_inflight")
	bytesIn := GetCounter("acstab_http_request_bytes_total")
	bytesOut := GetCounter("acstab_http_response_bytes_total")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := fmt.Sprintf("req-%06d", reqSeq.Add(1))
		start := time.Now()
		inflight.Inc()
		defer inflight.Dec()
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		dur := time.Since(start)
		path := labelPath(r.URL.Path)
		GetCounter(fmt.Sprintf("acstab_http_requests_total{path=%q,code=\"%d\"}", path, sw.status)).Inc()
		GetHistogram(fmt.Sprintf("acstab_http_request_duration_seconds{path=%q}", path)).Observe(dur.Seconds())
		if r.ContentLength > 0 {
			bytesIn.Add(r.ContentLength)
		}
		bytesOut.Add(sw.bytes)
		if path == "/run" || path == "/batch" {
			return
		}
		log.Event("http",
			slog.String("req_id", id),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.status),
			slog.Int64("bytes_in", max(r.ContentLength, 0)),
			slog.Int64("bytes_out", sw.bytes),
			slog.Float64("duration_ms", float64(dur)/float64(time.Millisecond)),
			slog.String("remote", r.RemoteAddr))
	})
}

// MetricsHandler serves the Default registry (GET only): Prometheus text
// format by default, the full-fidelity JSON Export (raw histogram
// buckets, the form fleet federation merges) with ?format=json.
func MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(Default.Export())
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		Default.WritePrometheus(w)
	})
}
