package obs

import (
	"fmt"
	"sync"
	"time"
)

// SLO tracking: multi-window rolling success-rate and latency objectives
// in the burn-rate style. Each served request is recorded as good or bad
// for the availability objective and fast or slow for the latency
// objective; the tracker keeps per-bucket tallies in a ring covering the
// longest window and answers "what fraction of the last 5 minutes / hour
// met the objective, and how fast is the error budget burning" — the
// signal a scheduler sheds a worker on and an operator pages on.
//
// Burn rate is (1 - observed ratio) / (1 - target): 1.0 means the budget
// is being spent exactly at the sustainable rate, N means N times too
// fast. The multi-window health rule follows SRE practice: a fast burn
// on the short window is critical (budget gone in hours), a sustained
// moderate burn on the long window is a warning.

// sloBucketDur is the tally granularity. 10s buckets give 30 points on a
// 5-minute window — fine-grained enough for burn detection, coarse
// enough that a 1h window is only 360 buckets.
const sloBucketDur = 10 * time.Second

// SLOConfig sets the objectives an SLOTracker scores against.
type SLOConfig struct {
	// LatencyObjective is the per-request latency target: a request
	// completing within it counts as fast. 0 selects 30s.
	LatencyObjective time.Duration
	// SuccessTarget is the availability objective (fraction of requests
	// that must succeed). 0 selects 0.99.
	SuccessTarget float64
	// LatencyTarget is the fraction of requests that must meet the
	// latency objective. 0 selects 0.95.
	LatencyTarget float64
	// Windows are the rolling evaluation windows, ascending. Empty
	// selects {5m, 1h}.
	Windows []time.Duration

	// now overrides the clock in tests.
	now func() time.Time
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.LatencyObjective <= 0 {
		c.LatencyObjective = 30 * time.Second
	}
	if c.SuccessTarget <= 0 || c.SuccessTarget >= 1 {
		c.SuccessTarget = 0.99
	}
	if c.LatencyTarget <= 0 || c.LatencyTarget >= 1 {
		c.LatencyTarget = 0.95
	}
	if len(c.Windows) == 0 {
		c.Windows = []time.Duration{5 * time.Minute, time.Hour}
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// sloBucket tallies one bucket-duration slice of traffic.
type sloBucket struct {
	idx               int64 // absolute bucket index since the epoch
	total, good, fast int64
}

// SLOTracker scores requests against availability and latency objectives
// over multiple rolling windows. Safe for concurrent use. A nil tracker
// is valid: Record is a no-op and Snapshot returns a zero snapshot.
type SLOTracker struct {
	cfg SLOConfig
	mu  sync.Mutex
	// ring holds per-bucket tallies covering the longest window plus one
	// bucket of slack; stale entries are recognized by their absolute
	// index, so no background sweeper is needed.
	ring []sloBucket
}

// NewSLOTracker returns a tracker with the given objectives.
func NewSLOTracker(cfg SLOConfig) *SLOTracker {
	cfg = cfg.withDefaults()
	longest := cfg.Windows[len(cfg.Windows)-1]
	n := int(longest/sloBucketDur) + 2
	return &SLOTracker{cfg: cfg, ring: make([]sloBucket, n)}
}

// Record scores one request: good marks the availability outcome and dur
// is the request latency (scored against the latency objective only when
// the request was good — a fast failure is not a latency win).
func (t *SLOTracker) Record(good bool, dur time.Duration) {
	if t == nil {
		return
	}
	idx := t.cfg.now().UnixNano() / int64(sloBucketDur)
	t.mu.Lock()
	b := &t.ring[int(idx)%len(t.ring)]
	if b.idx != idx {
		*b = sloBucket{idx: idx}
	}
	b.total++
	if good {
		b.good++
		if dur <= t.cfg.LatencyObjective {
			b.fast++
		}
	}
	t.mu.Unlock()
}

// SLOWindow is one rolling window's score. Raw counts are included so a
// fleet view can merge N workers' windows exactly (sum the counts,
// recompute the ratios) instead of averaging ratios.
type SLOWindow struct {
	// Window is the window length in seconds.
	Window float64 `json:"window_seconds"`
	// Total / Good / Fast are the raw request tallies in the window.
	Total int64 `json:"total"`
	Good  int64 `json:"good"`
	Fast  int64 `json:"fast"`
	// SuccessRatio is Good/Total (1 when idle: no traffic burns nothing).
	SuccessRatio float64 `json:"success_ratio"`
	// LatencyOKRatio is Fast/Total.
	LatencyOKRatio float64 `json:"latency_ok_ratio"`
	// ErrorBurnRate is (1-SuccessRatio)/(1-SuccessTarget).
	ErrorBurnRate float64 `json:"error_burn_rate"`
	// LatencyBurnRate is (1-LatencyOKRatio)/(1-LatencyTarget).
	LatencyBurnRate float64 `json:"latency_burn_rate"`
}

// SLOSnapshot is the JSON form of the tracker's current scores, served in
// /statusz and merged by fleet federation.
type SLOSnapshot struct {
	LatencyObjectiveSeconds float64     `json:"latency_objective_seconds"`
	SuccessTarget           float64     `json:"success_target"`
	LatencyTarget           float64     `json:"latency_target"`
	Windows                 []SLOWindow `json:"windows"`
	// Health is the multi-window verdict: "ok", "warn", "critical", or
	// "idle" (no traffic in any window).
	Health string `json:"health"`
}

// Health thresholds: burning the budget >10x too fast on the shortest
// window pages (the monthly budget would be gone within hours); >2x on
// any window warns.
const (
	criticalBurn = 10.0
	warnBurn     = 2.0
)

// Snapshot scores every configured window as of now.
func (t *SLOTracker) Snapshot() SLOSnapshot {
	if t == nil {
		return SLOSnapshot{Health: "idle"}
	}
	now := t.cfg.now()
	nowIdx := now.UnixNano() / int64(sloBucketDur)
	t.mu.Lock()
	buckets := make([]sloBucket, len(t.ring))
	copy(buckets, t.ring)
	t.mu.Unlock()

	snap := SLOSnapshot{
		LatencyObjectiveSeconds: t.cfg.LatencyObjective.Seconds(),
		SuccessTarget:           t.cfg.SuccessTarget,
		LatencyTarget:           t.cfg.LatencyTarget,
	}
	for _, w := range t.cfg.Windows {
		nBuckets := int64(w / sloBucketDur)
		win := SLOWindow{Window: w.Seconds()}
		for _, b := range buckets {
			if b.idx > nowIdx-nBuckets && b.idx <= nowIdx {
				win.Total += b.total
				win.Good += b.good
				win.Fast += b.fast
			}
		}
		scoreWindow(&win, t.cfg.SuccessTarget, t.cfg.LatencyTarget)
		snap.Windows = append(snap.Windows, win)
	}
	snap.Health = HealthFromWindows(snap.Windows)
	return snap
}

// scoreWindow fills a window's derived ratios and burn rates from its raw
// counts. Exported via ScoreWindow for the fleet merger.
func scoreWindow(w *SLOWindow, successTarget, latencyTarget float64) {
	if w.Total == 0 {
		w.SuccessRatio, w.LatencyOKRatio = 1, 1
		return
	}
	w.SuccessRatio = float64(w.Good) / float64(w.Total)
	w.LatencyOKRatio = float64(w.Fast) / float64(w.Total)
	w.ErrorBurnRate = (1 - w.SuccessRatio) / (1 - successTarget)
	w.LatencyBurnRate = (1 - w.LatencyOKRatio) / (1 - latencyTarget)
}

// ScoreWindow recomputes a window's ratios and burn rates from its raw
// counts against the given targets — the fleet merger sums per-worker
// counts and calls this, so fleet ratios are exact, not ratio averages.
func ScoreWindow(w *SLOWindow, successTarget, latencyTarget float64) {
	scoreWindow(w, successTarget, latencyTarget)
}

// HealthFromWindows applies the multi-window burn-rate rule: critical
// when the shortest window burns >criticalBurn (error or latency), warn
// when any window burns >warnBurn, idle with no traffic anywhere.
func HealthFromWindows(ws []SLOWindow) string {
	idle := true
	health := "ok"
	for i, w := range ws {
		if w.Total > 0 {
			idle = false
		}
		burn := max(w.ErrorBurnRate, w.LatencyBurnRate)
		if i == 0 && burn > criticalBurn {
			return "critical"
		}
		if burn > warnBurn {
			health = "warn"
		}
	}
	if idle {
		return "idle"
	}
	return health
}

// PublishGauges refreshes the `acstab_slo_*` gauges in the Default
// registry from the snapshot, so scrapers see the same scores /statusz
// reports: per-window success/latency ratios and burn rates plus a
// numeric health score (1 ok, 0.5 warn, 0 critical, -1 idle).
func (s SLOSnapshot) PublishGauges() {
	for _, w := range s.Windows {
		win := formatWindow(time.Duration(w.Window * float64(time.Second)))
		GetGauge(fmt.Sprintf("acstab_slo_success_ratio{window=%q}", win)).Set(w.SuccessRatio)
		GetGauge(fmt.Sprintf("acstab_slo_latency_ok_ratio{window=%q}", win)).Set(w.LatencyOKRatio)
		GetGauge(fmt.Sprintf("acstab_slo_error_burn_rate{window=%q}", win)).Set(w.ErrorBurnRate)
		GetGauge(fmt.Sprintf("acstab_slo_latency_burn_rate{window=%q}", win)).Set(w.LatencyBurnRate)
	}
	score := map[string]float64{"ok": 1, "warn": 0.5, "critical": 0, "idle": -1}[s.Health]
	GetGauge("acstab_slo_health_score").Set(score)
}

// formatWindow renders a window length the way operators say it ("5m",
// "1h", "90s").
func formatWindow(d time.Duration) string {
	switch {
	case d%time.Hour == 0:
		return fmt.Sprintf("%dh", d/time.Hour)
	case d%time.Minute == 0:
		return fmt.Sprintf("%dm", d/time.Minute)
	default:
		return fmt.Sprintf("%ds", d/time.Second)
	}
}
