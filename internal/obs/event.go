package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"sync"
	"time"
)

// EventLogger emits wide events: one self-contained structured JSON
// object per notable occurrence (a /run request, a drain, a final
// metrics snapshot) instead of many small free-form log lines. The
// canonical-event discipline is what makes fleet-level log analysis
// possible — every field a question might need is on the one event, so
// "show me slow shed-heavy workers" is a filter, not a join.
//
// Events are rendered by the stdlib log/slog JSON handler (zero
// dependencies) and written as one line to the sink. The logger also
// keeps a bounded ring of recent events with monotonically increasing
// sequence numbers, which the farm worker serves at GET /debug/events so
// `acstabctl tail` can follow a fleet's wide events without log shipping.
//
// A nil *EventLogger is valid everywhere: Event is a no-op and Events
// returns nothing, so event emission can be threaded unconditionally.
type EventLogger struct {
	mu   sync.Mutex
	buf  bytes.Buffer
	h    slog.Handler
	out  io.Writer
	seq  int64
	max  int
	ring []StoredEvent // circular: head is the oldest of n live events
	head int
	n    int
}

// DefaultRecentEvents is the ring capacity NewEventLogger selects.
const DefaultRecentEvents = 256

// StoredEvent is one ring entry: the event's sequence number plus the
// rendered JSON object (without the trailing newline).
type StoredEvent struct {
	Seq   int64           `json:"seq"`
	Event json.RawMessage `json:"event"`
}

// NewEventLogger returns a logger writing JSON events to out (nil
// discards; the ring still records). The JSON schema is the slog JSON
// handler's with the message key renamed to "event" and the level key
// dropped: {"time":...,"event":"run","request_id":...,...}.
func NewEventLogger(out io.Writer) *EventLogger {
	l := &EventLogger{out: out, max: DefaultRecentEvents}
	l.ring = make([]StoredEvent, l.max)
	l.h = slog.NewJSONHandler(&l.buf, &slog.HandlerOptions{
		ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
			if len(groups) == 0 {
				switch a.Key {
				case slog.MessageKey:
					a.Key = "event"
				case slog.LevelKey:
					return slog.Attr{}
				}
			}
			return a
		},
	})
	return l
}

// Event emits one wide event named event with the given attributes. The
// rendered line goes to the sink and the ring atomically; concurrent
// callers never interleave bytes.
func (l *EventLogger) Event(event string, attrs ...slog.Attr) {
	if l == nil {
		return
	}
	rec := slog.NewRecord(time.Now(), slog.LevelInfo, event, 0)
	rec.AddAttrs(attrs...)
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buf.Reset()
	if err := l.h.Handle(context.Background(), rec); err != nil {
		return
	}
	line := l.buf.Bytes()
	l.seq++
	se := StoredEvent{Seq: l.seq, Event: json.RawMessage(bytes.TrimRight(append([]byte(nil), line...), "\n"))}
	if l.n < l.max {
		l.ring[(l.head+l.n)%l.max] = se
		l.n++
	} else {
		l.ring[l.head] = se
		l.head = (l.head + 1) % l.max
	}
	if l.out != nil {
		l.out.Write(line)
	}
}

// Seq returns the sequence number of the newest event (0 before any).
func (l *EventLogger) Seq() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Events returns up to limit events with sequence numbers greater than
// since, oldest first (limit <= 0 selects everything retained). Events
// evicted from the ring are gone; a caller whose cursor fell behind the
// ring simply resumes from the oldest retained event.
func (l *EventLogger) Events(since int64, limit int) []StoredEvent {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]StoredEvent, 0, l.n)
	for i := 0; i < l.n; i++ {
		se := l.ring[(l.head+i)%l.max]
		if se.Seq <= since {
			continue
		}
		out = append(out, se)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}
