package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// decodeChrome unmarshals and schema-checks a Trace Event Format document.
func decodeChrome(t *testing.T, b []byte) []map[string]any {
	t.Helper()
	var doc struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if doc.TraceEvents == nil {
		t.Fatal("missing traceEvents array")
	}
	for i, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		if ph != "X" && ph != "M" {
			t.Errorf("event %d: ph = %q, want X or M", i, ph)
		}
		if _, ok := ev["name"].(string); !ok {
			t.Errorf("event %d: missing name", i)
		}
		if _, ok := ev["pid"].(float64); !ok {
			t.Errorf("event %d: missing pid", i)
		}
		if _, ok := ev["tid"].(float64); !ok {
			t.Errorf("event %d: missing tid", i)
		}
		if ph == "X" {
			ts, ok := ev["ts"].(float64)
			if !ok || ts < 0 {
				t.Errorf("event %d: ts = %v", i, ev["ts"])
			}
			dur, ok := ev["dur"].(float64)
			if !ok || dur < 0 {
				t.Errorf("event %d: dur = %v", i, ev["dur"])
			}
		}
	}
	return doc.TraceEvents
}

func TestWriteChromeTrace(t *testing.T) {
	r := StartRun("chrome-run")
	sp := r.StartPhase("op")
	time.Sleep(time.Millisecond)
	sp.End()
	sp = r.StartPhase("sweep")
	time.Sleep(time.Millisecond)
	sp.End()
	r.Add("ac_solves", 7)
	r.AddSlowPoints([]SlowPoint{{FreqHz: 1e6, WallNS: 100, Detail: "full"}})
	r.GraftRemote(Trace{
		DurationNS: time.Millisecond.Nanoseconds(),
		Phases:     []PhaseSpan{{Phase: "stability", StartNS: 0, DurationNS: 5e5}},
	}, time.Now(), 2*time.Millisecond, 3)
	r.Finish()

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	events := decodeChrome(t, buf.Bytes())

	names := map[string]bool{}
	pids := map[float64]bool{}
	var remotePid float64
	for _, ev := range events {
		names[ev["name"].(string)] = true
		pids[ev["pid"].(float64)] = true
		if ev["name"] == "stability" {
			remotePid = ev["pid"].(float64)
			args, _ := ev["args"].(map[string]any)
			if att, _ := args["attempt"].(float64); att != 3 {
				t.Errorf("remote span attempt = %v, want 3", args["attempt"])
			}
		}
	}
	for _, want := range []string{"process_name", "chrome-run", "op", "sweep", "stability"} {
		if !names[want] {
			t.Errorf("missing event %q (got %v)", want, names)
		}
	}
	if !pids[1] {
		t.Error("local process pid 1 missing")
	}
	if remotePid != 4 {
		t.Errorf("remote attempt-3 spans under pid %g, want 4 (1+attempt)", remotePid)
	}
}

func TestWriteChromeTraceLanePacking(t *testing.T) {
	// Two overlapping spans must land in different lanes; a third that
	// starts after the first ends may reuse lane 1.
	tr := Trace{
		Name:       "lanes",
		DurationNS: 100,
		Phases: []PhaseSpan{
			{Phase: "a", StartNS: 0, DurationNS: 50},
			{Phase: "b", StartNS: 10, DurationNS: 50},
			{Phase: "c", StartNS: 60, DurationNS: 10},
		},
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	tid := map[string]float64{}
	for _, ev := range decodeChrome(t, buf.Bytes()) {
		if ev["ph"] == "X" {
			tid[ev["name"].(string)] = ev["tid"].(float64)
		}
	}
	if tid["a"] == tid["b"] {
		t.Errorf("overlapping spans share lane %g", tid["a"])
	}
	if tid["c"] != tid["a"] {
		t.Errorf("non-overlapping span should reuse lane: c=%g a=%g", tid["c"], tid["a"])
	}
}

func TestWriteChromeTraceNilRun(t *testing.T) {
	var r *Run
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	decodeChrome(t, buf.Bytes())
}
