package obs

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

// TestHistogramMergeProperty is the federation correctness property: for K
// workers each recording its own observations, merging the K exported
// bucket vectors must preserve the exact total count and sum, and the
// merged quantile must lie within [min, max] of the per-worker quantiles
// (a merged population cannot be more extreme than its most extreme part,
// up to one bucket of interpolation slack).
func TestHistogramMergeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		k := 2 + rng.Intn(4)
		workers := make([]*Histogram, k)
		var wantCount int64
		var wantSum float64
		for i := range workers {
			workers[i] = newHistogram(nil)
			n := 1 + rng.Intn(500)
			for j := 0; j < n; j++ {
				// Log-uniform over the bucket range, like real phase latencies.
				v := math.Pow(10, -6+8*rng.Float64())
				workers[i].Observe(v)
				wantCount++
				wantSum += v
			}
		}

		merged := workers[0].Data()
		merged.Counts = append([]int64(nil), merged.Counts...)
		for _, w := range workers[1:] {
			if !merged.Merge(w.Data()) {
				t.Fatalf("trial %d: identical layouts reported unmergeable", trial)
			}
		}
		if merged.Count != wantCount {
			t.Fatalf("trial %d: merged count %d, want %d", trial, merged.Count, wantCount)
		}
		if math.Abs(merged.Sum-wantSum) > 1e-9*math.Abs(wantSum) {
			t.Fatalf("trial %d: merged sum %g, want %g", trial, merged.Sum, wantSum)
		}
		var bucketTotal int64
		for _, c := range merged.Counts {
			bucketTotal += c
		}
		if bucketTotal != wantCount {
			t.Fatalf("trial %d: bucket vector sums to %d, want %d", trial, bucketTotal, wantCount)
		}

		for _, q := range []float64{0.5, 0.9, 0.99} {
			lo, hi := math.Inf(1), math.Inf(-1)
			for _, w := range workers {
				v := w.Quantile(q)
				lo, hi = math.Min(lo, v), math.Max(hi, v)
			}
			got := merged.Quantile(q)
			// Interpolation positions within a bucket differ between the
			// merged and per-worker estimates, so allow one bucket of slack
			// on each side (buckets are 2.5x apart on the log grid).
			if got < lo/2.5-1e-12 || got > hi*2.5+1e-12 {
				t.Errorf("trial %d: merged q%g = %g outside per-worker range [%g, %g]",
					trial, q, got, lo, hi)
			}
		}
	}
}

func TestHistogramMergeRejectsLayoutMismatch(t *testing.T) {
	a := newHistogram([]float64{1, 2, 4}).Data()
	a.Counts = append([]int64(nil), a.Counts...)
	before := a

	if a.Merge(newHistogram([]float64{1, 2, 8}).Data()) {
		t.Error("different bounds should be unmergeable")
	}
	if a.Merge(newHistogram([]float64{1, 2}).Data()) {
		t.Error("different bucket counts should be unmergeable")
	}
	if a.Count != before.Count || a.Sum != before.Sum {
		t.Error("failed merge must leave the target untouched")
	}
}

// TestHistogramDataDuringRecord exercises Data() while observations are in
// flight, under -race: the snapshot must be internally coherent enough to
// merge (every bucket count individually valid, no torn reads) and
// monotone between snapshots.
func TestHistogramDataDuringRecord(t *testing.T) {
	h := newHistogram(nil)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for {
				select {
				case <-stop:
					return
				default:
					h.Observe(math.Pow(10, -6+8*rng.Float64()))
				}
			}
		}(g)
	}

	var prevBucketTotal int64
	for i := 0; i < 200; i++ {
		if i == 100 {
			// Guarantee the observers have actually run before the later
			// snapshots, so the quiescent checks see real traffic.
			for h.Count() < 1000 {
				runtime.Gosched()
			}
		}
		d := h.Data()
		var bucketTotal int64
		for _, c := range d.Counts {
			if c < 0 {
				t.Fatalf("negative bucket count: %v", d.Counts)
			}
			bucketTotal += c
		}
		if bucketTotal < prevBucketTotal {
			t.Fatalf("bucket totals went backwards: %d after %d", bucketTotal, prevBucketTotal)
		}
		prevBucketTotal = bucketTotal
		if d.Sum < 0 {
			t.Fatalf("negative sum %g", d.Sum)
		}
	}
	close(stop)
	wg.Wait()

	// Quiescent: the final snapshot is exact.
	d := h.Data()
	var bucketTotal int64
	for _, c := range d.Counts {
		bucketTotal += c
	}
	if bucketTotal != d.Count || d.Count != h.Count() {
		t.Errorf("final snapshot inconsistent: buckets %d, count %d, live %d",
			bucketTotal, d.Count, h.Count())
	}
	if d.Quantile(0.5) <= 0 {
		t.Errorf("median of recorded data should be positive, got %g", d.Quantile(0.5))
	}
}
