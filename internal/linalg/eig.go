package linalg

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Eigenvalues computes all eigenvalues of a dense complex matrix using
// Hessenberg reduction followed by the implicitly shifted QR iteration
// (Wilkinson shifts, with deflation). The input matrix is not modified.
//
// It backs the simulator's pole analysis: circuit poles are eigenvalues of
// a shift-inverted MNA pencil (see analysis.Poles), giving exact natural
// frequencies and damping ratios to validate the stability-plot estimates
// against.
func Eigenvalues(m *CMatrix) ([]complex128, error) {
	n := m.N
	if n == 0 {
		return nil, nil
	}
	a := make([]complex128, n*n)
	copy(a, m.Data)
	hessenberg(a, n)
	return qrEigen(a, n)
}

// hessenberg reduces a (row-major n*n) to upper Hessenberg form in place
// using Householder reflections.
func hessenberg(a []complex128, n int) {
	at := func(i, j int) complex128 { return a[i*n+j] }
	set := func(i, j int, v complex128) { a[i*n+j] = v }
	for k := 0; k < n-2; k++ {
		norm := 0.0
		for i := k + 1; i < n; i++ {
			norm = math.Hypot(norm, cmplx.Abs(at(i, k)))
		}
		if norm == 0 {
			continue
		}
		alpha := at(k+1, k)
		var phase complex128 = 1
		if alpha != 0 {
			phase = alpha / complex(cmplx.Abs(alpha), 0)
		}
		beta := -phase * complex(norm, 0)
		v := make([]complex128, n)
		v[k+1] = alpha - beta
		for i := k + 2; i < n; i++ {
			v[i] = at(i, k)
		}
		vnorm2 := 0.0
		for i := k + 1; i < n; i++ {
			vnorm2 += real(v[i])*real(v[i]) + imag(v[i])*imag(v[i])
		}
		if vnorm2 == 0 {
			continue
		}
		// A = H A with H = I - 2 v v^H / (v^H v).
		for j := k; j < n; j++ {
			var s complex128
			for i := k + 1; i < n; i++ {
				s += cmplx.Conj(v[i]) * at(i, j)
			}
			s *= complex(2/vnorm2, 0)
			for i := k + 1; i < n; i++ {
				set(i, j, at(i, j)-v[i]*s)
			}
		}
		// A = A H.
		for i := 0; i < n; i++ {
			var s complex128
			for j := k + 1; j < n; j++ {
				s += at(i, j) * v[j]
			}
			s *= complex(2/vnorm2, 0)
			for j := k + 1; j < n; j++ {
				set(i, j, at(i, j)-s*cmplx.Conj(v[j]))
			}
		}
		set(k+1, k, beta)
		for i := k + 2; i < n; i++ {
			set(i, k, 0)
		}
	}
}

// givens returns c (real, >= 0) and s with c^2 + |s|^2 = 1 such that
//
//	[ c   s  ] [x]   [r]
//	[-s~  c  ] [y] = [0]
//
// (s~ denotes the conjugate of s).
func givens(x, y complex128) (c float64, s complex128) {
	ay := cmplx.Abs(y)
	if ay == 0 {
		return 1, 0
	}
	ax := cmplx.Abs(x)
	if ax == 0 {
		// Pure swap with phase: c=0, s chosen so -s~ x + c y = 0 trivially
		// and row 1 becomes s*y with |s|=1.
		return 0, cmplx.Conj(y) / complex(ay, 0)
	}
	r := math.Hypot(ax, ay)
	c = ax / r
	s = complex(ax/r, 0) * cmplx.Conj(y) / cmplx.Conj(x)
	// Normalize |s| exactly: |s| should be ay/r.
	return c, s
}

// qrEigen runs the implicitly single-shifted QR iteration on an upper
// Hessenberg matrix (row-major n*n), returning its eigenvalues.
func qrEigen(h []complex128, n int) ([]complex128, error) {
	at := func(i, j int) complex128 { return h[i*n+j] }
	set := func(i, j int, v complex128) { h[i*n+j] = v }

	// applyLeft rotates rows r1=k, r2=k+1 over columns jlo..jhi.
	applyLeft := func(k, jlo, jhi int, c float64, s complex128) {
		for j := jlo; j <= jhi; j++ {
			t1 := at(k, j)
			t2 := at(k+1, j)
			set(k, j, complex(c, 0)*t1+s*t2)
			set(k+1, j, -cmplx.Conj(s)*t1+complex(c, 0)*t2)
		}
	}
	// applyRight rotates columns k, k+1 over rows ilo..ihi with G^H.
	applyRight := func(k, ilo, ihi int, c float64, s complex128) {
		for i := ilo; i <= ihi; i++ {
			t1 := at(i, k)
			t2 := at(i, k+1)
			set(i, k, t1*complex(c, 0)+t2*cmplx.Conj(s))
			set(i, k+1, -t1*s+t2*complex(c, 0))
		}
	}

	eig := make([]complex128, 0, n)
	hi := n - 1
	iter := 0
	const maxIter = 200
	for hi >= 0 {
		if hi == 0 {
			eig = append(eig, at(0, 0))
			break
		}
		// Deflation scan.
		lo := hi
		for lo > 0 {
			sum := cmplx.Abs(at(lo-1, lo-1)) + cmplx.Abs(at(lo, lo))
			if sum == 0 {
				sum = 1
			}
			if cmplx.Abs(at(lo, lo-1)) <= 1e-15*sum {
				set(lo, lo-1, 0)
				break
			}
			lo--
		}
		if lo == hi {
			eig = append(eig, at(hi, hi))
			hi--
			iter = 0
			continue
		}
		if hi-lo == 1 {
			// Solve the 2x2 block directly.
			a11, a12 := at(lo, lo), at(lo, hi)
			a21, a22 := at(hi, lo), at(hi, hi)
			tr := a11 + a22
			det := a11*a22 - a12*a21
			disc := cmplx.Sqrt(tr*tr - 4*det)
			eig = append(eig, (tr+disc)/2, (tr-disc)/2)
			hi = lo - 1
			iter = 0
			continue
		}
		if iter >= maxIter {
			return nil, fmt.Errorf("linalg: QR iteration failed to converge")
		}
		iter++

		// Wilkinson shift from the trailing 2x2.
		a11 := at(hi-1, hi-1)
		a12 := at(hi-1, hi)
		a21 := at(hi, hi-1)
		a22 := at(hi, hi)
		tr := a11 + a22
		det := a11*a22 - a12*a21
		disc := cmplx.Sqrt(tr*tr - 4*det)
		l1 := (tr + disc) / 2
		l2 := (tr - disc) / 2
		shift := l1
		if cmplx.Abs(l2-a22) < cmplx.Abs(l1-a22) {
			shift = l2
		}
		if iter%40 == 0 {
			// Exceptional shift to escape rare stalls.
			shift = complex(cmplx.Abs(at(hi, hi-1))+cmplx.Abs(at(hi-1, hi-2)), 0)
		}

		// Implicit shift: chase the bulge down the Hessenberg band.
		x := at(lo, lo) - shift
		y := at(lo+1, lo)
		for k := lo; k < hi; k++ {
			c, s := givens(x, y)
			jlo := k - 1
			if jlo < lo {
				jlo = lo
			}
			applyLeft(k, jlo, hi, c, s)
			ihi := k + 2
			if ihi > hi {
				ihi = hi
			}
			applyRight(k, lo, ihi, c, s)
			if k+2 <= hi {
				x = at(k+1, k)
				y = at(k+2, k)
			}
		}
	}
	return eig, nil
}
