package linalg

import (
	"errors"
	"math"
	"testing"

	"acstab/internal/acerr"
)

// TestNearSingularReal: a rank-deficient-to-working-precision matrix must
// be reported singular instead of silently producing a garbage solution.
// The third row is the sum of the first two plus a perturbation far below
// the scale of the entries, so elimination collapses the last pivot to
// ~1e-15 of the matrix scale.
func TestNearSingularReal(t *testing.T) {
	m := NewMatrix(3)
	r0 := []float64{1, 2, 3}
	r1 := []float64{4, 5, 6}
	for j := 0; j < 3; j++ {
		m.Set(0, j, r0[j])
		m.Set(1, j, r1[j])
		m.Set(2, j, r0[j]+r1[j])
	}
	m.Add(2, 2, 1e-14) // nearly, but not exactly, dependent
	_, err := Factor(m)
	if err == nil {
		t.Fatal("near-singular matrix factored without error")
	}
	if !errors.Is(err, ErrSingular) || !errors.Is(err, acerr.ErrSingularMatrix) {
		t.Fatalf("error %v does not wrap ErrSingular/acerr.ErrSingularMatrix", err)
	}
}

// TestNearSingularComplex mirrors the real-valued regression on CFactor.
func TestNearSingularComplex(t *testing.T) {
	m := NewCMatrix(3)
	r0 := []complex128{1 + 1i, 2, 3 - 1i}
	r1 := []complex128{4, 5 + 2i, 6}
	for j := 0; j < 3; j++ {
		m.Set(0, j, r0[j])
		m.Set(1, j, r1[j])
		m.Set(2, j, r0[j]+r1[j])
	}
	m.Add(2, 2, complex(1e-14, 0))
	if _, err := CFactor(m); err == nil {
		t.Fatal("near-singular complex matrix factored without error")
	} else if !errors.Is(err, acerr.ErrSingularMatrix) {
		t.Fatalf("error %v does not wrap acerr.ErrSingularMatrix", err)
	}
}

// TestIllScaledNotSingular: a gigantic entry sharing a column with a ±1
// voltage-source pivot (the overflowing-transistor shape that shows up
// mid-Newton) must NOT be misclassified as singular — the pivot is
// full-size within its own row.
func TestIllScaledNotSingular(t *testing.T) {
	m := NewMatrix(3)
	m.Set(0, 0, 5e16) // huge conductances from an overflowed exponential
	m.Set(0, 1, 1)
	m.Set(0, 2, 5e16)
	m.Set(1, 0, 1) // voltage-source rows: honest ±1 entries
	m.Set(2, 1, 1)
	m.Set(2, 2, 1)
	f, err := Factor(m)
	if err != nil {
		t.Fatalf("ill-scaled but regular matrix rejected: %v", err)
	}
	// b = A * [1 1 1]: the ±1 pivots must survive the 5e16 column scale.
	x, err := f.Solve([]float64{5e16 + 1 + 5e16, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{1, 1, 1} {
		if math.Abs(x[i]-want) > 1e-6 {
			t.Errorf("x[%d] = %g, want %g", i, x[i], want)
		}
	}
}

// TestFactorIntoReuse: repeated factorizations into the same LU reuse
// storage and keep producing correct solutions, including right after a
// singular failure.
func TestFactorIntoReuse(t *testing.T) {
	m := NewCMatrix(2)
	var f *CLU
	for k := 1; k <= 4; k++ {
		m.Zero()
		m.Set(0, 0, complex(float64(k), 1))
		m.Set(0, 1, 1)
		m.Set(1, 0, 1)
		m.Set(1, 1, complex(0, float64(k)))
		var err error
		f, err = CFactorInto(f, m)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		b := []complex128{complex(float64(k), 0), 1i}
		x, err := f.Solve(b)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		// Verify residual instead of a closed form.
		r := m.MulVec(x)
		for i := range b {
			if d := r[i] - b[i]; real(d)*real(d)+imag(d)*imag(d) > 1e-20 {
				t.Errorf("k=%d: residual %v at %d", k, d, i)
			}
		}
	}
	// Singular input: the error must not poison the reused storage.
	m.Zero()
	m.Set(0, 0, 1)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, 1)
	if _, err := CFactorInto(f, m); err == nil {
		t.Fatal("singular matrix accepted")
	}
	m.Zero()
	m.Set(0, 0, 2)
	m.Set(1, 1, 2)
	f, err := CFactorInto(f, m)
	if err != nil {
		t.Fatal(err)
	}
	x, err := f.Solve([]complex128{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 1 || x[1] != 2 {
		t.Errorf("x = %v, want [1 2]", x)
	}
}

// TestSolveIntoAllocationFree: the in-place solve paths, real and
// complex, must not allocate — they run per node per frequency in the
// all-nodes sweep.
func TestSolveIntoAllocationFree(t *testing.T) {
	n := 16
	rm := NewMatrix(n)
	cm := NewCMatrix(n)
	for i := 0; i < n; i++ {
		rm.Set(i, i, 2)
		cm.Set(i, i, complex(2, 1))
		if i > 0 {
			rm.Set(i, i-1, -1)
			rm.Set(i-1, i, -1)
			cm.Set(i, i-1, -1)
			cm.Set(i-1, i, -1)
		}
	}
	rf, err := Factor(rm)
	if err != nil {
		t.Fatal(err)
	}
	cf, err := CFactor(cm)
	if err != nil {
		t.Fatal(err)
	}
	rb, rx := make([]float64, n), make([]float64, n)
	cb, cx := make([]complex128, n), make([]complex128, n)
	rb[0], cb[0] = 1, 1
	if a := testing.AllocsPerRun(50, func() {
		if err := rf.SolveInto(rx, rb); err != nil {
			t.Fatal(err)
		}
	}); a != 0 {
		t.Errorf("real SolveInto allocated %v times per run, want 0", a)
	}
	if a := testing.AllocsPerRun(50, func() {
		if err := cf.SolveInto(cx, cb); err != nil {
			t.Fatal(err)
		}
	}); a != 0 {
		t.Errorf("complex SolveInto allocated %v times per run, want 0", a)
	}
}
