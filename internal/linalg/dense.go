// Package linalg implements the dense linear solvers used by the MNA
// engine: LU factorization with partial pivoting for real and complex
// square systems, with reusable factorizations for multiple right-hand
// sides (the fast path of the all-nodes stability sweep).
package linalg

import (
	"fmt"
	"math"
	"math/cmplx"

	"acstab/internal/acerr"
)

// ErrSingular is returned when factorization encounters an (effectively)
// singular matrix. It wraps acerr.ErrSingularMatrix so the condition is
// recognizable across the public API boundary via errors.Is.
var ErrSingular = fmt.Errorf("linalg: %w", acerr.ErrSingularMatrix)

// singularTol is the relative pivot threshold for declaring a matrix
// numerically singular: a pivot whose magnitude falls below this fraction
// of its scale carries no meaningful solution digits in float64, so
// factoring through it would only launder Inf/NaN into downstream
// analyses. The scale is min(column max, pivot row max) over the
// *original* matrix: a pivot must be collapsed relative to both its own
// column and its own row to count as singular. Either test alone misfires
// on honestly ill-scaled MNA systems — a ±1 voltage-source pivot is
// perfectly usable even when an overflowing transistor conductance
// (~1e16) elsewhere in the column dwarfs it, and a lone gmin conductance
// is fine despite being tiny in absolute terms.
const singularTol = 1e-13

// Matrix is a dense real matrix in row-major order.
type Matrix struct {
	N    int
	Data []float64 // len N*N
}

// NewMatrix returns an n-by-n zero matrix.
func NewMatrix(n int) *Matrix {
	return &Matrix{N: n, Data: make([]float64, n*n)}
}

// At returns element (i,j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.N+j] }

// Set assigns element (i,j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.N+j] = v }

// Add accumulates into element (i,j). This is the MNA "stamp" primitive.
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.N+j] += v }

// Zero clears all entries, preserving storage.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.N)
	copy(c.Data, m.Data)
	return c
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	s := ""
	for i := 0; i < m.N; i++ {
		for j := 0; j < m.N; j++ {
			s += fmt.Sprintf("%12.4g ", m.At(i, j))
		}
		s += "\n"
	}
	return s
}

// LU holds an LU factorization with partial pivoting of a real matrix.
type LU struct {
	n        int
	lu       []float64
	piv      []int
	sign     int
	colScale []float64 // original per-column max magnitude (singularity test)
	rowScale []float64 // original per-row max magnitude, indexed by original row
}

// Factor computes the LU factorization of m (m is not modified).
func Factor(m *Matrix) (*LU, error) {
	f, err := FactorInto(nil, m)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// FactorInto computes the LU factorization of m, reusing f's storage when
// it matches m's size; pass nil (or a differently sized f) to allocate.
// On error the returned factorization's storage remains reusable but its
// contents are invalid. m is not modified.
func FactorInto(f *LU, m *Matrix) (*LU, error) {
	n := m.N
	if f == nil || f.n != n {
		f = &LU{n: n, lu: make([]float64, n*n), piv: make([]int, n),
			colScale: make([]float64, n), rowScale: make([]float64, n)}
	}
	f.sign = 1
	copy(f.lu, m.Data)
	lu := f.lu
	for i := range f.piv {
		f.piv[i] = i
	}
	for j := range f.colScale {
		f.colScale[j] = 0
		f.rowScale[j] = 0
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a := math.Abs(lu[i*n+j])
			if a > f.colScale[j] {
				f.colScale[j] = a
			}
			if a > f.rowScale[i] {
				f.rowScale[i] = a
			}
		}
	}
	for k := 0; k < n; k++ {
		// Partial pivoting: find largest magnitude in column k at/below row k.
		p, pmax := k, math.Abs(lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu[i*n+k]); a > pmax {
				p, pmax = i, a
			}
		}
		// A numerically collapsed pivot — not just an exactly zero one — is
		// singular; NaN input is caught here too (comparisons with NaN are
		// false, so !(pmax > x) fires).
		scale := f.colScale[k]
		if rs := f.rowScale[f.piv[p]]; rs < scale {
			scale = rs
		}
		if !(pmax > singularTol*scale) {
			return f, fmt.Errorf("%w (column %d)", ErrSingular, k)
		}
		if p != k {
			rk, rp := lu[k*n:k*n+n], lu[p*n:p*n+n]
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			f.piv[k], f.piv[p] = f.piv[p], f.piv[k]
			f.sign = -f.sign
		}
		d := lu[k*n+k]
		for i := k + 1; i < n; i++ {
			l := lu[i*n+k] / d
			lu[i*n+k] = l
			if l != 0 {
				ri, rk := lu[i*n:i*n+n], lu[k*n:k*n+n]
				for j := k + 1; j < n; j++ {
					ri[j] -= l * rk[j]
				}
			}
		}
	}
	return f, nil
}

// Solve solves A x = b using the factorization; b is unchanged.
func (f *LU) Solve(b []float64) ([]float64, error) {
	x := make([]float64, f.n)
	if err := f.SolveInto(x, b); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveInto solves A x = b into the caller's x without allocating. The
// substitution runs in place on x; b is unchanged and must not alias x.
func (f *LU) SolveInto(x, b []float64) error {
	if len(b) != f.n || len(x) != f.n {
		return fmt.Errorf("linalg: rhs/solution length %d/%d, want %d", len(b), len(x), f.n)
	}
	n, lu := f.n, f.lu
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution (unit lower triangular).
	for i := 1; i < n; i++ {
		s := x[i]
		for j := 0; j < i; j++ {
			s -= lu[i*n+j] * x[j]
		}
		x[i] = s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= lu[i*n+j] * x[j]
		}
		x[i] = s / lu[i*n+i]
	}
	// Guard: a factorization that slipped past the pivot test must not
	// hand non-finite "solutions" to Newton or the sweep. v-v is 0 for
	// finite v and NaN otherwise, so the all-finite case is branch-free.
	acc := 0.0
	for i := 0; i < n; i++ {
		acc += x[i] - x[i]
	}
	if acc != 0 {
		for i := 0; i < n; i++ {
			if math.IsNaN(x[i]) || math.IsInf(x[i], 0) {
				return fmt.Errorf("%w (non-finite solution component %d)", ErrSingular, i)
			}
		}
	}
	return nil
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.n; i++ {
		d *= f.lu[i*f.n+i]
	}
	return d
}

// SolveDense factors m and solves m x = b in one call.
func SolveDense(m *Matrix, b []float64) ([]float64, error) {
	f, err := Factor(m)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// CMatrix is a dense complex matrix in row-major order.
type CMatrix struct {
	N    int
	Data []complex128
}

// NewCMatrix returns an n-by-n zero complex matrix.
func NewCMatrix(n int) *CMatrix {
	return &CMatrix{N: n, Data: make([]complex128, n*n)}
}

// At returns element (i,j).
func (m *CMatrix) At(i, j int) complex128 { return m.Data[i*m.N+j] }

// Set assigns element (i,j).
func (m *CMatrix) Set(i, j int, v complex128) { m.Data[i*m.N+j] = v }

// Add accumulates into element (i,j).
func (m *CMatrix) Add(i, j int, v complex128) { m.Data[i*m.N+j] += v }

// Zero clears all entries, preserving storage.
func (m *CMatrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Clone returns a deep copy.
func (m *CMatrix) Clone() *CMatrix {
	c := NewCMatrix(m.N)
	copy(c.Data, m.Data)
	return c
}

// ResidualInf fills r = b − A·x and returns the scale-relative backward
// error ‖r‖∞ / (‖A‖∞·‖x‖∞ + ‖b‖∞) — the dense counterpart of the sparse
// pattern's residual, using the same ℓ1 modulus |re|+|im| so dense and
// sparse points quote comparable health numbers. One fused pass, no
// allocations.
func (m *CMatrix) ResidualInf(x, b, r []complex128) (float64, error) {
	n := m.N
	if len(x) != n || len(b) != n || len(r) != n {
		return 0, fmt.Errorf("linalg: residual vector lengths %d/%d/%d, want %d", len(x), len(b), len(r), n)
	}
	var anorm, xnorm, bnorm, rnorm float64
	for i := 0; i < n; i++ {
		acc := b[i]
		rowSum := 0.0
		row := m.Data[i*n : i*n+n]
		for j, v := range row {
			acc -= v * x[j]
			rowSum += math.Abs(real(v)) + math.Abs(imag(v))
		}
		r[i] = acc
		if rowSum > anorm {
			anorm = rowSum
		}
		if a := math.Abs(real(acc)) + math.Abs(imag(acc)); a > rnorm {
			rnorm = a
		}
		if a := math.Abs(real(b[i])) + math.Abs(imag(b[i])); a > bnorm {
			bnorm = a
		}
		if a := math.Abs(real(x[i])) + math.Abs(imag(x[i])); a > xnorm {
			xnorm = a
		}
	}
	den := anorm*xnorm + bnorm
	if den == 0 {
		if rnorm == 0 {
			return 0, nil
		}
		return math.Inf(1), nil
	}
	return rnorm / den, nil
}

// CLU holds an LU factorization with partial pivoting of a complex matrix.
type CLU struct {
	n        int
	lu       []complex128
	piv      []int
	colScale []float64 // original per-column max magnitude (singularity test)
	rowScale []float64 // original per-row max magnitude, indexed by original row
}

// CFactor computes the complex LU factorization of m (m is not modified).
func CFactor(m *CMatrix) (*CLU, error) {
	f, err := CFactorInto(nil, m)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// CFactorInto computes the complex LU factorization of m, reusing f's
// storage when it matches m's size; pass nil (or a differently sized f)
// to allocate. This is the dense counterpart of the sparse refactor path:
// an AC sweep factors a same-size matrix at every frequency, so the
// factorization storage is paid for once. On error the returned
// factorization's storage remains reusable but its contents are invalid.
// m is not modified.
func CFactorInto(f *CLU, m *CMatrix) (*CLU, error) {
	n := m.N
	if f == nil || f.n != n {
		f = &CLU{n: n, lu: make([]complex128, n*n), piv: make([]int, n),
			colScale: make([]float64, n), rowScale: make([]float64, n)}
	}
	copy(f.lu, m.Data)
	lu := f.lu
	for i := range f.piv {
		f.piv[i] = i
	}
	for j := range f.colScale {
		f.colScale[j] = 0
		f.rowScale[j] = 0
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a := cmplx.Abs(lu[i*n+j])
			if a > f.colScale[j] {
				f.colScale[j] = a
			}
			if a > f.rowScale[i] {
				f.rowScale[i] = a
			}
		}
	}
	for k := 0; k < n; k++ {
		p, pmax := k, cmplx.Abs(lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if a := cmplx.Abs(lu[i*n+k]); a > pmax {
				p, pmax = i, a
			}
		}
		// Collapsed or NaN pivots are singular, not just exactly zero ones
		// (!(x > y) is also true when x is NaN).
		scale := f.colScale[k]
		if rs := f.rowScale[f.piv[p]]; rs < scale {
			scale = rs
		}
		if !(pmax > singularTol*scale) {
			return f, fmt.Errorf("%w (column %d)", ErrSingular, k)
		}
		if p != k {
			rk, rp := lu[k*n:k*n+n], lu[p*n:p*n+n]
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			f.piv[k], f.piv[p] = f.piv[p], f.piv[k]
		}
		d := lu[k*n+k]
		for i := k + 1; i < n; i++ {
			l := lu[i*n+k] / d
			lu[i*n+k] = l
			if l != 0 {
				ri, rk := lu[i*n:i*n+n], lu[k*n:k*n+n]
				for j := k + 1; j < n; j++ {
					ri[j] -= l * rk[j]
				}
			}
		}
	}
	return f, nil
}

// Solve solves A x = b using the factorization; b is unchanged.
// A single factorization may be reused for many right-hand sides, which is
// the key optimization of the all-nodes stability sweep (one LU per
// frequency point serves current injection at every node).
func (f *CLU) Solve(b []complex128) ([]complex128, error) {
	x := make([]complex128, f.n)
	if err := f.SolveInto(x, b); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveInto solves A x = b into the caller's x without allocating: the
// substitution runs in place on x. b is unchanged and must not alias x.
// This is the per-node inner step of the all-nodes sweep, so it must stay
// off the allocator.
func (f *CLU) SolveInto(x, b []complex128) error {
	if len(b) != f.n || len(x) != f.n {
		return fmt.Errorf("linalg: rhs/solution length %d/%d, want %d", len(b), len(x), f.n)
	}
	n, lu := f.n, f.lu
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	for i := 1; i < n; i++ {
		s := x[i]
		for j := 0; j < i; j++ {
			s -= lu[i*n+j] * x[j]
		}
		x[i] = s
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= lu[i*n+j] * x[j]
		}
		x[i] = s / lu[i*n+i]
	}
	// Same branch-free finiteness guard as the real SolveInto.
	acc := 0.0
	for i := 0; i < n; i++ {
		re, im := real(x[i]), imag(x[i])
		acc += (re - re) + (im - im)
	}
	if acc != 0 {
		for i := 0; i < n; i++ {
			if cmplx.IsNaN(x[i]) || cmplx.IsInf(x[i]) {
				return fmt.Errorf("%w (non-finite solution component %d)", ErrSingular, i)
			}
		}
	}
	return nil
}

// SolveColumn solves A x = e_k (unit vector excitation at index k) and
// returns only component idx of the solution. It avoids allocating the RHS.
func (f *CLU) SolveColumn(k, idx int) (complex128, error) {
	b := make([]complex128, f.n)
	b[k] = 1
	x, err := f.Solve(b)
	if err != nil {
		return 0, err
	}
	return x[idx], nil
}

// CSolveDense factors m and solves m x = b in one call.
func CSolveDense(m *CMatrix, b []complex128) ([]complex128, error) {
	f, err := CFactor(m)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// MulVec computes y = m * x for a real matrix.
func (m *Matrix) MulVec(x []float64) []float64 {
	y := make([]float64, m.N)
	for i := 0; i < m.N; i++ {
		s := 0.0
		row := m.Data[i*m.N : i*m.N+m.N]
		for j, a := range row {
			s += a * x[j]
		}
		y[i] = s
	}
	return y
}

// MulVec computes y = m * x for a complex matrix.
func (m *CMatrix) MulVec(x []complex128) []complex128 {
	y := make([]complex128, m.N)
	for i := 0; i < m.N; i++ {
		s := complex(0, 0)
		row := m.Data[i*m.N : i*m.N+m.N]
		for j, a := range row {
			s += a * x[j]
		}
		y[i] = s
	}
	return y
}
