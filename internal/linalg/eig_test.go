package linalg

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// matchEigs checks that got and want agree as multisets within tol.
func matchEigs(t *testing.T, got, want []complex128, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d eigenvalues, want %d", len(got), len(want))
	}
	used := make([]bool, len(got))
	for _, w := range want {
		best, bi := math.Inf(1), -1
		for i, g := range got {
			if used[i] {
				continue
			}
			if d := cmplx.Abs(g - w); d < best {
				best, bi = d, i
			}
		}
		if bi < 0 || best > tol*(1+cmplx.Abs(w)) {
			t.Errorf("eigenvalue %v not found (closest %g away); got %v", w, best, got)
			return
		}
		used[bi] = true
	}
}

func TestEigDiagonal(t *testing.T) {
	m := NewCMatrix(4)
	want := []complex128{1, complex(2, 3), -5, complex(0, -1)}
	for i, v := range want {
		m.Set(i, i, v)
	}
	got, err := Eigenvalues(m)
	if err != nil {
		t.Fatal(err)
	}
	matchEigs(t, got, want, 1e-12)
}

func TestEigUpperTriangular(t *testing.T) {
	m := NewCMatrix(3)
	want := []complex128{complex(1, 1), 2, complex(-3, 0.5)}
	for i, v := range want {
		m.Set(i, i, v)
	}
	m.Set(0, 1, 7)
	m.Set(0, 2, -2)
	m.Set(1, 2, complex(0, 4))
	got, err := Eigenvalues(m)
	if err != nil {
		t.Fatal(err)
	}
	matchEigs(t, got, want, 1e-10)
}

func TestEig2x2Complex(t *testing.T) {
	// [[0, -1],[1, 0]]: eigenvalues +/- i.
	m := NewCMatrix(2)
	m.Set(0, 1, -1)
	m.Set(1, 0, 1)
	got, err := Eigenvalues(m)
	if err != nil {
		t.Fatal(err)
	}
	matchEigs(t, got, []complex128{complex(0, 1), complex(0, -1)}, 1e-12)
}

// companion builds the companion matrix of a monic polynomial with the
// given roots.
func companion(roots []complex128) *CMatrix {
	n := len(roots)
	// poly[i] is the coefficient of x^i in prod (x - r).
	poly := []complex128{1}
	for _, r := range roots {
		next := make([]complex128, len(poly)+1)
		for i, c := range poly {
			next[i+1] += c
			next[i] -= r * c
		}
		poly = next
	}
	m := NewCMatrix(n)
	for i := 1; i < n; i++ {
		m.Set(i, i-1, 1)
	}
	for i := 0; i < n; i++ {
		m.Set(i, n-1, -poly[i])
	}
	return m
}

func TestEigCompanion(t *testing.T) {
	want := []complex128{
		complex(-1, 2), complex(-1, -2),
		complex(-3, 0), complex(-0.2, 5), complex(-0.2, -5),
	}
	got, err := Eigenvalues(companion(want))
	if err != nil {
		t.Fatal(err)
	}
	matchEigs(t, got, want, 1e-6)
}

func TestEigTraceAndDet(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 8
	m := NewCMatrix(n)
	var trace complex128
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, complex(rng.NormFloat64(), rng.NormFloat64()))
		}
		trace += m.At(i, i)
	}
	got, err := Eigenvalues(m)
	if err != nil {
		t.Fatal(err)
	}
	var sum complex128
	for _, e := range got {
		sum += e
	}
	if cmplx.Abs(sum-trace) > 1e-8*(1+cmplx.Abs(trace)) {
		t.Errorf("eigenvalue sum %v vs trace %v", sum, trace)
	}
}

// Property: for A = P D P^-1 with random diagonal D and a random
// well-conditioned P, the eigenvalues recover D.
func TestEigSimilarityQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7)
		d := make([]complex128, n)
		for i := range d {
			// Separated eigenvalues for a well-posed comparison.
			d[i] = complex(float64(i)+rng.Float64()*0.3, rng.NormFloat64())
		}
		// P = I + 0.3*R keeps conditioning mild.
		p := NewCMatrix(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				v := complex(0.3*rng.NormFloat64(), 0.3*rng.NormFloat64())
				if i == j {
					v += 1
				}
				p.Set(i, j, v)
			}
		}
		// A = P D P^-1: solve P X = (D P^-1)... build via columns:
		// A P = P D -> A = (P D) P^-1: solve A from A P = PD -> transpose
		// trick: solve P^T A^T = (P D)^T.
		pd := NewCMatrix(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				pd.Set(i, j, p.At(i, j)*d[j])
			}
		}
		pt := NewCMatrix(n)
		pdt := NewCMatrix(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				pt.Set(i, j, p.At(j, i))
				pdt.Set(i, j, pd.At(j, i))
			}
		}
		f, err := CFactor(pt)
		if err != nil {
			return true // skip ill-conditioned draw
		}
		at := NewCMatrix(n)
		for j := 0; j < n; j++ {
			col := make([]complex128, n)
			for i := 0; i < n; i++ {
				col[i] = pdt.At(i, j)
			}
			x, err := f.Solve(col)
			if err != nil {
				return true
			}
			for i := 0; i < n; i++ {
				at.Set(i, j, x[i])
			}
		}
		a := NewCMatrix(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, at.At(j, i))
			}
		}
		got, err := Eigenvalues(a)
		if err != nil {
			return false
		}
		// Multiset match within loose tolerance.
		sort.Slice(got, func(x, y int) bool { return real(got[x]) < real(got[y]) })
		sort.Slice(d, func(x, y int) bool { return real(d[x]) < real(d[y]) })
		for i := range d {
			if cmplx.Abs(got[i]-d[i]) > 1e-6*(1+cmplx.Abs(d[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestEigEmpty(t *testing.T) {
	got, err := Eigenvalues(NewCMatrix(0))
	if err != nil || got != nil {
		t.Errorf("empty: %v %v", got, err)
	}
	one := NewCMatrix(1)
	one.Set(0, 0, complex(3, -4))
	got, err = Eigenvalues(one)
	if err != nil || len(got) != 1 || got[0] != complex(3, -4) {
		t.Errorf("1x1: %v %v", got, err)
	}
}
