package linalg

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveIdentity(t *testing.T) {
	n := 5
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	b := []float64{1, 2, 3, 4, 5}
	x, err := SolveDense(m, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b {
		if math.Abs(x[i]-b[i]) > 1e-14 {
			t.Errorf("x[%d] = %g, want %g", i, x[i], b[i])
		}
	}
}

func TestSolveKnown(t *testing.T) {
	// [2 1; 1 3] x = [3; 5] -> x = [4/5, 7/5]
	m := NewMatrix(2)
	m.Set(0, 0, 2)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, 3)
	x, err := SolveDense(m, []float64{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-0.8) > 1e-12 || math.Abs(x[1]-1.4) > 1e-12 {
		t.Errorf("x = %v, want [0.8 1.4]", x)
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Zero on the diagonal forces a row swap.
	m := NewMatrix(2)
	m.Set(0, 0, 0)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, 0)
	x, err := SolveDense(m, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-3) > 1e-14 || math.Abs(x[1]-2) > 1e-14 {
		t.Errorf("x = %v, want [3 2]", x)
	}
}

func TestSingular(t *testing.T) {
	m := NewMatrix(2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 2)
	m.Set(1, 1, 4)
	if _, err := SolveDense(m, []float64{1, 1}); err == nil {
		t.Fatal("expected singular error")
	}
}

func TestDet(t *testing.T) {
	m := NewMatrix(2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 3)
	m.Set(1, 1, 4)
	f, err := Factor(m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Det()-(-2)) > 1e-12 {
		t.Errorf("det = %g, want -2", f.Det())
	}
}

func randomDiagDominant(rng *rand.Rand, n int) *Matrix {
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		sum := 0.0
		for j := 0; j < n; j++ {
			if i != j {
				v := rng.NormFloat64()
				m.Set(i, j, v)
				sum += math.Abs(v)
			}
		}
		m.Set(i, i, sum+1+rng.Float64())
	}
	return m
}

// Property: for random diagonally dominant A and random x, solving A y = A x
// recovers x.
func TestSolveRoundTripQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(15)
		m := randomDiagDominant(r, n)
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		b := m.MulVec(x)
		y, err := SolveDense(m, b)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(y[i]-x[i]) > 1e-8*(1+math.Abs(x[i])) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestCSolveKnown(t *testing.T) {
	// (1+j) x = 2 -> x = 1-j
	m := NewCMatrix(1)
	m.Set(0, 0, complex(1, 1))
	x, err := CSolveDense(m, []complex128{2})
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(x[0]-complex(1, -1)) > 1e-14 {
		t.Errorf("x = %v, want 1-1i", x[0])
	}
}

func TestCSolvePivot(t *testing.T) {
	m := NewCMatrix(2)
	m.Set(0, 0, 0)
	m.Set(0, 1, complex(0, 1))
	m.Set(1, 0, 1)
	m.Set(1, 1, 0)
	x, err := CSolveDense(m, []complex128{complex(0, 2), 5})
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(x[0]-5) > 1e-14 || cmplx.Abs(x[1]-2) > 1e-14 {
		t.Errorf("x = %v", x)
	}
}

func TestCSolveRoundTripQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(12)
		m := NewCMatrix(n)
		for i := 0; i < n; i++ {
			sum := 0.0
			for j := 0; j < n; j++ {
				if i != j {
					v := complex(r.NormFloat64(), r.NormFloat64())
					m.Set(i, j, v)
					sum += cmplx.Abs(v)
				}
			}
			m.Set(i, i, complex(sum+1, r.NormFloat64()))
		}
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(r.NormFloat64(), r.NormFloat64())
		}
		b := m.MulVec(x)
		y, err := CSolveDense(m, b)
		if err != nil {
			return false
		}
		for i := range x {
			if cmplx.Abs(y[i]-x[i]) > 1e-8*(1+cmplx.Abs(x[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestCLUReuseMultiRHS(t *testing.T) {
	n := 6
	rng := rand.New(rand.NewSource(3))
	m := NewCMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, complex(rng.NormFloat64(), rng.NormFloat64()))
		}
		m.Add(i, i, complex(10, 0))
	}
	f, err := CFactor(m)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < n; k++ {
		b := make([]complex128, n)
		b[k] = 1
		x, err := f.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		// Check A x = e_k.
		ax := m.MulVec(x)
		for i := range ax {
			want := complex(0, 0)
			if i == k {
				want = 1
			}
			if cmplx.Abs(ax[i]-want) > 1e-10 {
				t.Fatalf("column %d residual %g", k, cmplx.Abs(ax[i]-want))
			}
		}
		// SolveColumn agrees.
		v, err := f.SolveColumn(k, k)
		if err != nil {
			t.Fatal(err)
		}
		if cmplx.Abs(v-x[k]) > 1e-12 {
			t.Fatalf("SolveColumn mismatch at %d", k)
		}
	}
}

func TestSolveRHSLengthMismatch(t *testing.T) {
	m := NewMatrix(2)
	m.Set(0, 0, 1)
	m.Set(1, 1, 1)
	f, _ := Factor(m)
	if _, err := f.Solve([]float64{1}); err == nil {
		t.Error("expected length error")
	}
	cm := NewCMatrix(2)
	cm.Set(0, 0, 1)
	cm.Set(1, 1, 1)
	cf, _ := CFactor(cm)
	if _, err := cf.Solve([]complex128{1}); err == nil {
		t.Error("expected length error")
	}
}

func TestMatrixStampAccumulate(t *testing.T) {
	m := NewMatrix(2)
	m.Add(0, 0, 1)
	m.Add(0, 0, 2)
	if m.At(0, 0) != 3 {
		t.Error("Add should accumulate")
	}
	m.Zero()
	if m.At(0, 0) != 0 {
		t.Error("Zero should clear")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 0 {
		t.Error("Clone should be independent")
	}
}
