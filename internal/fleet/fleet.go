// Package fleet federates the observability surfaces of N acstabd
// workers into one view: it polls each worker's full-fidelity metrics
// export (GET /metrics?format=json) and status snapshot (GET /statusz),
// merges counters and log-scale histograms exactly (bucket vectors are
// summed, so fleet quantiles come from merged buckets rather than
// averaged estimates), tracks per-worker up/down/stale state, and scores
// fleet-wide SLOs by summing the per-worker window tallies. It is the
// fleet map a shard coordinator schedules on and the data source of the
// acstabctl status/top/tail subcommands.
package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"acstab/internal/farm"
	"acstab/internal/obs"
)

// Config tunes a fleet poller.
type Config struct {
	// Workers are the worker base URLs, e.g. "http://farm-3:8080".
	Workers []string
	// HTTPClient overrides the transport (nil selects a client with
	// Timeout as its per-request limit).
	HTTPClient *http.Client
	// Timeout bounds each poll request when HTTPClient is nil. 0 selects 5s.
	Timeout time.Duration
	// StaleAfter marks a worker stale when its last successful poll is
	// older than this. 0 selects 30s.
	StaleAfter time.Duration
	// Interval is the Run loop's poll period. 0 selects 5s.
	Interval time.Duration

	// now overrides the clock in tests.
	now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Second
	}
	if c.StaleAfter <= 0 {
		c.StaleAfter = 30 * time.Second
	}
	if c.Interval <= 0 {
		c.Interval = 5 * time.Second
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// workerState is the poller's record of one worker.
type workerState struct {
	url      string
	up       bool
	lastOK   time.Time
	lastErr  string
	failures int
	export   obs.Export
	statusz  farm.Statusz
	// eventCursor is the /debug/events sequence the next PollEvents
	// resumes from.
	eventCursor int64
}

// Fleet polls a set of workers and serves the merged view. Safe for
// concurrent use: Poll/PollEvents mutate under the lock, Snapshot reads.
type Fleet struct {
	cfg Config
	hc  *http.Client

	mu      sync.Mutex
	workers []*workerState
}

// New returns a fleet poller over the configured workers. No polling has
// happened yet: every worker starts down until the first Poll.
func New(cfg Config) *Fleet {
	cfg = cfg.withDefaults()
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{Timeout: cfg.Timeout}
	}
	f := &Fleet{cfg: cfg, hc: hc}
	for _, u := range cfg.Workers {
		f.workers = append(f.workers, &workerState{url: strings.TrimRight(u, "/")})
	}
	return f
}

// getJSON fetches url and decodes the JSON body into out.
func (f *Fleet) getJSON(ctx context.Context, url string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := f.hc.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s returned %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Poll runs one federation round: every worker's /metrics?format=json and
// /statusz are fetched concurrently and the per-worker states updated. A
// worker that fails either fetch is marked down with the error retained;
// its last good data is kept so a transient blip does not blank the view.
func (f *Fleet) Poll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, w := range f.workers {
		wg.Add(1)
		go func(w *workerState) {
			defer wg.Done()
			var ex obs.Export
			var st farm.Statusz
			err := f.getJSON(ctx, w.url+"/metrics?format=json", &ex)
			if err == nil {
				err = f.getJSON(ctx, w.url+"/statusz", &st)
			}
			f.mu.Lock()
			defer f.mu.Unlock()
			if err != nil {
				w.up = false
				w.failures++
				w.lastErr = err.Error()
				return
			}
			w.up = true
			w.failures = 0
			w.lastErr = ""
			w.lastOK = f.cfg.now()
			w.export = ex
			w.statusz = st
		}(w)
	}
	wg.Wait()
}

// Run polls at the configured interval until ctx is done.
func (f *Fleet) Run(ctx context.Context) {
	t := time.NewTicker(f.cfg.Interval)
	defer t.Stop()
	for {
		f.Poll(ctx)
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// WorkerView is one worker's row in the fleet view.
type WorkerView struct {
	URL string `json:"url"`
	// Up reports whether the last poll succeeded.
	Up bool `json:"up"`
	// Stale marks an up-worker whose last successful poll is older than
	// the configured staleness bound (the poller itself fell behind, or
	// the worker stopped answering between rounds).
	Stale bool `json:"stale,omitempty"`
	// LastSeenAgoSeconds is the age of the last successful poll (-1 if
	// never seen).
	LastSeenAgoSeconds float64 `json:"last_seen_ago_seconds"`
	// Err is the last poll error (empty when up).
	Err string `json:"err,omitempty"`
	// UptimeSeconds / JobsInflight / RunsTotal / RunErrors / SweepBusy
	// mirror the worker's /statusz.
	UptimeSeconds float64 `json:"uptime_seconds,omitempty"`
	JobsInflight  float64 `json:"jobs_inflight,omitempty"`
	RunsTotal     int64   `json:"runs_total,omitempty"`
	RunErrors     int64   `json:"run_errors_total,omitempty"`
	Shed          int64   `json:"shed_total,omitempty"`
	// CacheHits/CacheMisses/CacheEntries mirror the worker's
	// compiled-system cache stats (zero when the worker runs cacheless).
	CacheHits    int64 `json:"cache_hits_total,omitempty"`
	CacheMisses  int64 `json:"cache_misses_total,omitempty"`
	CacheEntries int   `json:"cache_entries,omitempty"`
	// Build identifies the worker's binary; a fleet of mixed revisions is
	// visible here.
	Build obs.BuildInfo `json:"build"`
	// SLOHealth is the worker's own multi-window verdict.
	SLOHealth string `json:"slo_health,omitempty"`
	// Numerics mirrors the worker's /statusz numerical-health block (nil
	// until the worker has measured at least one sweep point). Fleet-wide
	// residual quantiles come from the merged acstab_ac_residual histogram
	// in Merged, not from these per-worker summaries.
	Numerics *farm.StatuszNumerics `json:"numerics,omitempty"`
}

// View is the merged fleet snapshot.
type View struct {
	// Workers lists every configured worker's state, in configuration
	// order.
	Workers []WorkerView `json:"workers"`
	// UpCount counts workers whose last poll succeeded.
	UpCount int `json:"up_count"`
	// Merged holds the fleet-wide metric totals: counters and gauges
	// summed, histograms bucket-merged, across the workers currently up.
	Merged obs.Export `json:"merged"`
	// UnmergeableHistograms names histograms whose bucket layouts differ
	// across workers; their merged entries hold only the first-seen
	// layout's data.
	UnmergeableHistograms []string `json:"unmergeable_histograms,omitempty"`
	// SLO is the fleet-wide score: per-window tallies summed across
	// workers, ratios and burn rates recomputed from the sums, health
	// from the merged windows.
	SLO obs.SLOSnapshot `json:"slo"`
}

// Snapshot assembles the merged fleet view from the latest polled state.
func (f *Fleet) Snapshot() View {
	f.mu.Lock()
	defer f.mu.Unlock()
	now := f.cfg.now()
	view := View{
		Merged: obs.Export{
			Counters:   map[string]int64{},
			Gauges:     map[string]float64{},
			Histograms: map[string]obs.HistogramData{},
		},
	}
	unmergeable := map[string]bool{}
	sloWindows := map[float64]*obs.SLOWindow{}
	var sloOrder []float64
	var successTarget, latencyTarget float64

	for _, w := range f.workers {
		wv := WorkerView{URL: w.url, Up: w.up, Err: w.lastErr, LastSeenAgoSeconds: -1}
		if !w.lastOK.IsZero() {
			age := now.Sub(w.lastOK)
			wv.LastSeenAgoSeconds = age.Seconds()
			wv.Stale = age > f.cfg.StaleAfter
		}
		if w.up {
			view.UpCount++
			st := w.statusz
			wv.UptimeSeconds = st.UptimeSeconds
			wv.JobsInflight = st.JobsInflight
			wv.RunsTotal = st.RunsTotal
			wv.RunErrors = st.RunErrors
			wv.Shed = st.Overload.Shed
			wv.Build = st.Build
			wv.SLOHealth = st.SLO.Health
			if st.Cache != nil {
				wv.CacheHits = st.Cache.Hits
				wv.CacheMisses = st.Cache.Misses
				wv.CacheEntries = st.Cache.Entries
			}
			if st.Numerics != nil {
				n := *st.Numerics
				wv.Numerics = &n
			}

			for name, v := range w.export.Counters {
				view.Merged.Counters[name] += v
			}
			for name, v := range w.export.Gauges {
				view.Merged.Gauges[name] += v
			}
			for name, h := range w.export.Histograms {
				have, ok := view.Merged.Histograms[name]
				if !ok {
					cp := h
					cp.Counts = append([]int64(nil), h.Counts...)
					view.Merged.Histograms[name] = cp
					continue
				}
				if !have.Merge(h) {
					unmergeable[name] = true
				} else {
					view.Merged.Histograms[name] = have
				}
			}

			if successTarget == 0 && st.SLO.SuccessTarget > 0 {
				successTarget, latencyTarget = st.SLO.SuccessTarget, st.SLO.LatencyTarget
				view.SLO.LatencyObjectiveSeconds = st.SLO.LatencyObjectiveSeconds
			}
			for _, win := range st.SLO.Windows {
				agg, ok := sloWindows[win.Window]
				if !ok {
					agg = &obs.SLOWindow{Window: win.Window}
					sloWindows[win.Window] = agg
					sloOrder = append(sloOrder, win.Window)
				}
				agg.Total += win.Total
				agg.Good += win.Good
				agg.Fast += win.Fast
			}
		}
		view.Workers = append(view.Workers, wv)
	}

	sort.Float64s(sloOrder)
	view.SLO.SuccessTarget, view.SLO.LatencyTarget = successTarget, latencyTarget
	for _, key := range sloOrder {
		win := *sloWindows[key]
		obs.ScoreWindow(&win, successTarget, latencyTarget)
		view.SLO.Windows = append(view.SLO.Windows, win)
	}
	view.SLO.Health = obs.HealthFromWindows(view.SLO.Windows)
	if view.UpCount == 0 {
		view.SLO.Health = "down"
	}
	for name := range unmergeable {
		view.UnmergeableHistograms = append(view.UnmergeableHistograms, name)
	}
	sort.Strings(view.UnmergeableHistograms)
	return view
}

// WorkerEvent is one wide event attributed to the worker that emitted it.
type WorkerEvent struct {
	Worker string          `json:"worker"`
	Seq    int64           `json:"seq"`
	Event  json.RawMessage `json:"event"`
}

// PollEvents fetches each worker's wide events since the fleet's
// per-worker cursors (GET /debug/events?since=...), advances the cursors,
// and returns the new events grouped by worker in configuration order.
// The first call returns each worker's whole retained ring; subsequent
// calls return only what is new — tail -f over the fleet.
func (f *Fleet) PollEvents(ctx context.Context) []WorkerEvent {
	type result struct {
		idx  int
		page farm.EventsPage
		err  error
	}
	f.mu.Lock()
	cursors := make([]int64, len(f.workers))
	urls := make([]string, len(f.workers))
	for i, w := range f.workers {
		cursors[i], urls[i] = w.eventCursor, w.url
	}
	f.mu.Unlock()

	results := make([]result, len(urls))
	var wg sync.WaitGroup
	for i := range urls {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var page farm.EventsPage
			err := f.getJSON(ctx, fmt.Sprintf("%s/debug/events?since=%d", urls[i], cursors[i]), &page)
			results[i] = result{idx: i, page: page, err: err}
		}(i)
	}
	wg.Wait()

	var out []WorkerEvent
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, res := range results {
		if res.err != nil {
			continue
		}
		w := f.workers[res.idx]
		w.eventCursor = res.page.Next
		for _, se := range res.page.Events {
			out = append(out, WorkerEvent{Worker: w.url, Seq: se.Seq, Event: se.Event})
		}
	}
	return out
}
