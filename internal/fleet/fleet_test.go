package fleet

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"acstab/internal/farm"
	"acstab/internal/obs"
)

const tankNetlist = `fleet tank
.param rq=318
R1 t 0 {rq}
L1 t 0 25.33u
C1 t 0 1n
`

// worker spins up one httptest-backed farm worker with its own wide-event
// log. NOTE: obs metrics live in the process-global Default registry, so
// two in-process workers serve the same counters — federation assertions
// therefore compare the merged view against the sum of the actual
// per-worker scrapes, which is exactly the contract.
func worker(t *testing.T) (*httptest.Server, *obs.EventLogger) {
	t.Helper()
	log := obs.NewEventLogger(nil)
	srv := httptest.NewServer(farm.NewHandler(farm.Config{Log: log}))
	t.Cleanup(srv.Close)
	return srv, log
}

func runOn(t *testing.T, srv *httptest.Server, traceID string) {
	t.Helper()
	body := `{"netlist":"` + strings.ReplaceAll(tankNetlist, "\n", `\n`) + `","trace_id":"` + traceID + `"}`
	resp, err := srv.Client().Post(srv.URL+"/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run on %s: status %d", srv.URL, resp.StatusCode)
	}
}

func scrape(t *testing.T, srv *httptest.Server) obs.Export {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ex obs.Export
	if err := json.NewDecoder(resp.Body).Decode(&ex); err != nil {
		t.Fatal(err)
	}
	return ex
}

// TestFederationEndToEnd is the acceptance e2e: two httptest-backed
// workers, each serving /run jobs, federated by a Fleet — merged counters
// equal the sum of the per-worker scrapes, merged histogram count/sum are
// exact, per-worker up/stale state is reported, and each /run produced
// exactly one wide event whose trace_id matches that worker's /debug/runs.
func TestFederationEndToEnd(t *testing.T) {
	srvA, logA := worker(t)
	srvB, logB := worker(t)

	runOn(t, srvA, "tr-fleet-a1")
	runOn(t, srvA, "tr-fleet-a2")
	runOn(t, srvB, "tr-fleet-b1")

	clk := time.Unix(2_000_000, 0)
	fl := New(Config{
		Workers: []string{srvA.URL, srvB.URL},
		now:     func() time.Time { return clk },
	})
	fl.Poll(context.Background())
	view := fl.Snapshot()

	if view.UpCount != 2 {
		t.Fatalf("up count %d, want 2", view.UpCount)
	}
	for _, wk := range view.Workers {
		if !wk.Up || wk.Stale || wk.Err != "" {
			t.Errorf("worker %s should be up and fresh: %+v", wk.URL, wk)
		}
		if wk.Build.GoVersion == "" {
			t.Errorf("worker %s is missing build identity", wk.URL)
		}
		if wk.SLOHealth == "" {
			t.Errorf("worker %s is missing an SLO verdict", wk.URL)
		}
	}

	// Merged counters = sum of per-worker scrapes, checked on counters that
	// do not move while scraping (runs, not http request totals).
	exA, exB := scrape(t, srvA), scrape(t, srvB)
	for _, name := range []string{"acstab_farm_runs_total", "acstab_op_solves_total"} {
		want := exA.Counters[name] + exB.Counters[name]
		if got := view.Merged.Counters[name]; got != want {
			t.Errorf("merged %s = %d, want %d (sum of scrapes)", name, got, want)
		}
	}
	if view.Merged.Counters["acstab_farm_runs_total"] < 2*3 {
		t.Errorf("runs counter too small: %d (3 runs seen by both in-process workers)",
			view.Merged.Counters["acstab_farm_runs_total"])
	}

	// Merged histogram count and sum are exact bucket sums.
	const phase = `acstab_phase_duration_seconds{phase="sweep"}`
	hA, okA := exA.Histograms[phase]
	hB, okB := exB.Histograms[phase]
	if !okA || !okB {
		t.Fatalf("phase histogram %s missing from scrape", phase)
	}
	merged, ok := view.Merged.Histograms[phase]
	if !ok {
		t.Fatalf("phase histogram missing from merged view")
	}
	if merged.Count != hA.Count+hB.Count {
		t.Errorf("merged count %d, want %d", merged.Count, hA.Count+hB.Count)
	}
	if want := hA.Sum + hB.Sum; merged.Sum < want*0.999 || merged.Sum > want*1.001 {
		t.Errorf("merged sum %g, want %g", merged.Sum, want)
	}
	var bucketTotal int64
	for _, c := range merged.Counts {
		bucketTotal += c
	}
	if bucketTotal != merged.Count {
		t.Errorf("merged buckets sum to %d, count says %d", bucketTotal, merged.Count)
	}
	if len(view.UnmergeableHistograms) != 0 {
		t.Errorf("same-binary workers reported unmergeable: %v", view.UnmergeableHistograms)
	}

	// Fleet SLO: per-window totals are the sum of worker totals.
	if len(view.SLO.Windows) == 0 {
		t.Fatal("fleet SLO has no windows")
	}
	// Unlike the shared metric registry, each handler has its own SLO
	// tracker: A scored 2 requests, B scored 1, so the fleet sum is 3.
	if view.SLO.Windows[0].Total != 3 {
		t.Errorf("fleet SLO window total %d, want 3 (2 from A + 1 from B)", view.SLO.Windows[0].Total)
	}
	if view.SLO.Windows[0].Good != 3 {
		t.Errorf("fleet SLO window good %d, want 3", view.SLO.Windows[0].Good)
	}
	if view.SLO.Health == "" || view.SLO.Health == "down" {
		t.Errorf("fleet SLO health = %q", view.SLO.Health)
	}

	// Exactly one wide event per /run, trace-correlated with the worker's
	// own flight recorder.
	for _, wc := range []struct {
		srv    *httptest.Server
		log    *obs.EventLogger
		traces []string
	}{
		{srvA, logA, []string{"tr-fleet-a1", "tr-fleet-a2"}},
		{srvB, logB, []string{"tr-fleet-b1"}},
	} {
		var runEvents []map[string]any
		for _, se := range wc.log.Events(0, 0) {
			var ev map[string]any
			if err := json.Unmarshal(se.Event, &ev); err != nil {
				t.Fatal(err)
			}
			if ev["event"] == "run" {
				runEvents = append(runEvents, ev)
			}
		}
		if len(runEvents) != len(wc.traces) {
			t.Fatalf("worker %s: %d run events for %d runs", wc.srv.URL, len(runEvents), len(wc.traces))
		}
		resp, err := wc.srv.Client().Get(wc.srv.URL + "/debug/runs")
		if err != nil {
			t.Fatal(err)
		}
		var listing struct {
			Runs []obs.RunSummary `json:"runs"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		recorded := map[string]bool{}
		for _, r := range listing.Runs {
			recorded[r.TraceID] = true
		}
		for i, want := range wc.traces {
			got, _ := runEvents[i]["trace_id"].(string)
			if got != want {
				t.Errorf("worker %s event %d: trace_id %q, want %q", wc.srv.URL, i, got, want)
			}
			if !recorded[want] {
				t.Errorf("worker %s: trace %q not in /debug/runs", wc.srv.URL, want)
			}
		}
	}
}

func TestFleetDownAndStaleWorkers(t *testing.T) {
	srvA, _ := worker(t)
	srvB, _ := worker(t)

	clk := time.Unix(3_000_000, 0)
	fl := New(Config{
		Workers:    []string{srvA.URL, srvB.URL},
		StaleAfter: 10 * time.Second,
		now:        func() time.Time { return clk },
	})
	fl.Poll(context.Background())
	if view := fl.Snapshot(); view.UpCount != 2 {
		t.Fatalf("up count %d, want 2", view.UpCount)
	}

	// Worker B dies: next poll marks it down with the error retained,
	// and the merged view covers only A.
	srvB.Close()
	fl.Poll(context.Background())
	view := fl.Snapshot()
	if view.UpCount != 1 {
		t.Fatalf("up count after death %d, want 1", view.UpCount)
	}
	if wb := view.Workers[1]; wb.Up || wb.Err == "" {
		t.Errorf("dead worker should be down with an error: %+v", wb)
	}
	if wa := view.Workers[0]; !wa.Up || wa.Stale {
		t.Errorf("live worker misreported: %+v", wa)
	}

	// Time passes with no successful poll of A either: A turns stale.
	clk = clk.Add(time.Minute)
	view = fl.Snapshot()
	if wa := view.Workers[0]; !wa.Stale {
		t.Errorf("worker unpolled for 1m should be stale (StaleAfter=10s): %+v", wa)
	}
	if view.Workers[0].LastSeenAgoSeconds < 59 {
		t.Errorf("last seen age = %g, want ~60s", view.Workers[0].LastSeenAgoSeconds)
	}
}

func TestFleetAllDown(t *testing.T) {
	fl := New(Config{Workers: []string{"http://127.0.0.1:1"}, Timeout: 200 * time.Millisecond})
	fl.Poll(context.Background())
	view := fl.Snapshot()
	if view.UpCount != 0 {
		t.Fatalf("up count %d, want 0", view.UpCount)
	}
	if view.SLO.Health != "down" {
		t.Errorf("fleet health with nobody up = %q, want down", view.SLO.Health)
	}
	if view.Workers[0].LastSeenAgoSeconds != -1 {
		t.Errorf("never-seen worker age = %g, want -1", view.Workers[0].LastSeenAgoSeconds)
	}
}

func TestPollEventsCursors(t *testing.T) {
	srvA, _ := worker(t)
	srvB, _ := worker(t)
	fl := New(Config{Workers: []string{srvA.URL, srvB.URL}})

	runOn(t, srvA, "tr-tail-1")
	runOn(t, srvB, "tr-tail-2")

	first := fl.PollEvents(context.Background())
	var runs int
	for _, ev := range first {
		var m map[string]any
		if err := json.Unmarshal(ev.Event, &m); err != nil {
			t.Fatalf("fleet event is not JSON: %v", err)
		}
		if m["event"] == "run" {
			runs++
		}
		if ev.Worker != srvA.URL && ev.Worker != srvB.URL {
			t.Errorf("event attributed to unknown worker %q", ev.Worker)
		}
	}
	if runs != 2 {
		t.Fatalf("first poll saw %d run events, want 2", runs)
	}

	// Nothing new (beyond the /debug/events http events the previous poll
	// itself caused): a fresh run shows up exactly once.
	fl.PollEvents(context.Background())
	runOn(t, srvA, "tr-tail-3")
	third := fl.PollEvents(context.Background())
	runs = 0
	for _, ev := range third {
		var m map[string]any
		json.Unmarshal(ev.Event, &m)
		if m["event"] == "run" {
			runs++
			if m["trace_id"] != "tr-tail-3" {
				t.Errorf("stale run event replayed: %v", m["trace_id"])
			}
		}
	}
	if runs != 1 {
		t.Errorf("incremental poll saw %d run events, want exactly 1", runs)
	}
}

// TestFederationNumericsSameNumbers is the numerics acceptance e2e: one
// run on worker A must quote the SAME health numbers from every surface —
// the run's wide event, the worker's /statusz, the /debug/runs flight
// recorder, and the federated fleet view. Metrics are process-global in
// this test (see worker), so /statusz comparisons are deltas around the
// run and the merged fleet histogram is checked against the sum of the
// actual per-worker scrapes.
func TestFederationNumericsSameNumbers(t *testing.T) {
	srvA, logA := worker(t)
	srvB, _ := worker(t)

	statusz := func(srv *httptest.Server) farm.Statusz {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + "/statusz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st farm.Statusz
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st
	}
	numCount := func(st farm.Statusz) (points, refinements int64) {
		if st.Numerics == nil {
			return 0, 0
		}
		return st.Numerics.Residual.Count, st.Numerics.Refinements
	}

	before := statusz(srvA)
	pointsBefore, refineBefore := numCount(before)
	runOn(t, srvA, "tr-numerics-1")
	after := statusz(srvA)
	pointsAfter, refineAfter := numCount(after)
	if after.Numerics == nil {
		t.Fatal("/statusz has no numerics block after a run")
	}
	deltaPoints := pointsAfter - pointsBefore
	deltaRefine := refineAfter - refineBefore
	if deltaPoints <= 0 {
		t.Fatalf("statusz residual count delta = %d, want > 0", deltaPoints)
	}

	// Surface 1: the run's wide event.
	var numerics map[string]any
	for _, se := range logA.Events(0, 0) {
		var ev map[string]any
		if err := json.Unmarshal(se.Event, &ev); err != nil {
			t.Fatal(err)
		}
		if ev["event"] != "run" || ev["trace_id"] != "tr-numerics-1" {
			continue
		}
		solver, _ := ev["solver"].(map[string]any)
		numerics, _ = solver["numerics"].(map[string]any)
	}
	if numerics == nil {
		t.Fatal("run wide event carries no solver.numerics block")
	}
	evPoints := int64(numerics["points"].(float64))
	evRefine := int64(numerics["refinements"].(float64))
	evBreaches := int64(numerics["breaches"].(float64))
	evMaxRes, _ := numerics["max_residual"].(float64)
	if evPoints != deltaPoints {
		t.Errorf("event points = %d, statusz delta = %d — surfaces disagree", evPoints, deltaPoints)
	}
	if evRefine != deltaRefine {
		t.Errorf("event refinements = %d, statusz delta = %d", evRefine, deltaRefine)
	}
	if evBreaches != 0 {
		t.Errorf("healthy tank reported %d breaches", evBreaches)
	}
	if evMaxRes <= 0 || evMaxRes > 1e-9 {
		t.Errorf("event max_residual = %g, want (0, 1e-9]", evMaxRes)
	}

	// Surface 2: the flight recorder, including the degraded filter.
	var listing struct {
		Runs []obs.RunSummary `json:"runs"`
	}
	resp, err := srvA.Client().Get(srvA.URL + "/debug/runs")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	var rec *obs.RunSummary
	for i := range listing.Runs {
		if listing.Runs[i].TraceID == "tr-numerics-1" {
			rec = &listing.Runs[i]
		}
	}
	if rec == nil {
		t.Fatal("run missing from /debug/runs")
	}
	if rec.MaxResidual != evMaxRes {
		t.Errorf("recorder max_residual = %g, event says %g", rec.MaxResidual, evMaxRes)
	}
	if rec.Refinements != evRefine {
		t.Errorf("recorder refinements = %d, event says %d", rec.Refinements, evRefine)
	}
	if rec.Degraded {
		t.Error("healthy run marked degraded")
	}
	resp, err = srvA.Client().Get(srvA.URL + "/debug/runs?health=degraded")
	if err != nil {
		t.Fatal(err)
	}
	var degradedListing struct {
		Runs []obs.RunSummary `json:"runs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&degradedListing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, r := range degradedListing.Runs {
		if r.TraceID == "tr-numerics-1" {
			t.Error("healthy run returned by ?health=degraded")
		}
	}

	// Surface 3: the federated fleet view. Per-worker numerics mirror the
	// worker's own /statusz; the merged residual histogram is the exact
	// bucket sum of the per-worker scrapes.
	fl := New(Config{Workers: []string{srvA.URL, srvB.URL}})
	fl.Poll(context.Background())
	view := fl.Snapshot()
	if view.UpCount != 2 {
		t.Fatalf("up count %d, want 2", view.UpCount)
	}
	for _, wk := range view.Workers {
		if wk.Numerics == nil {
			t.Fatalf("worker %s has no numerics in the fleet view", wk.URL)
		}
		if wk.Numerics.Residual.Count != pointsAfter {
			t.Errorf("fleet view of %s: residual count %d, statusz says %d",
				wk.URL, wk.Numerics.Residual.Count, pointsAfter)
		}
		if wk.Numerics.Refinements != refineAfter {
			t.Errorf("fleet view of %s: refinements %d, statusz says %d",
				wk.URL, wk.Numerics.Refinements, refineAfter)
		}
	}
	exA, exB := scrape(t, srvA), scrape(t, srvB)
	hA, okA := exA.Histograms["acstab_ac_residual"]
	hB, okB := exB.Histograms["acstab_ac_residual"]
	if !okA || !okB {
		t.Fatal("acstab_ac_residual missing from a worker scrape")
	}
	merged, ok := view.Merged.Histograms["acstab_ac_residual"]
	if !ok {
		t.Fatal("acstab_ac_residual missing from the merged fleet view")
	}
	if merged.Count != hA.Count+hB.Count {
		t.Errorf("merged residual count %d, want %d (exact bucket federation)",
			merged.Count, hA.Count+hB.Count)
	}
	wantRefine := exA.Counters["acstab_ac_refinements_total"] + exB.Counters["acstab_ac_refinements_total"]
	if got := view.Merged.Counters["acstab_ac_refinements_total"]; got != wantRefine {
		t.Errorf("merged refinements counter %d, want %d", got, wantRefine)
	}
}
