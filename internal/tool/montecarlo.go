package tool

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"acstab/internal/netlist"
)

// MCSpec configures a Monte Carlo stability run: each design variable in
// Sigma varies log-normally around its nominal value with the given
// relative standard deviation (e.g. 0.05 = 5 %). Deterministic for a
// fixed Seed.
type MCSpec struct {
	Runs int
	Seed int64
	// Sigma maps design-variable names to relative standard deviations.
	Sigma map[string]float64
}

// MCSample is the outcome of one Monte Carlo draw.
type MCSample struct {
	Variables map[string]float64
	// WorstPeak / Freq / PM of the most dangerous loop (0 if none).
	WorstPeak float64
	FreqHz    float64
	PMDeg     float64
	Err       error
}

// MCResult aggregates a Monte Carlo run.
type MCResult struct {
	Samples []MCSample
	// Failed counts samples whose analysis errored.
	Failed int
}

// MonteCarlo runs repeated all-nodes analyses with randomized design
// variables — mismatch/tolerance analysis for loop stability, the natural
// extension of the paper's planned corner support. The source circuit is
// not modified.
func MonteCarlo(ctx context.Context, ckt *netlist.Circuit, opts Options, spec MCSpec) (*MCResult, error) {
	if spec.Runs <= 0 {
		return nil, fmt.Errorf("tool: MonteCarlo needs Runs > 0")
	}
	if len(spec.Sigma) == 0 {
		return nil, fmt.Errorf("tool: MonteCarlo needs at least one Sigma entry")
	}
	for name := range spec.Sigma {
		if _, ok := ckt.Params[name]; !ok {
			return nil, fmt.Errorf("tool: unknown design variable %q", name)
		}
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	res := &MCResult{}
	for k := 0; k < spec.Runs; k++ {
		vars := map[string]float64{}
		for name, sigma := range spec.Sigma {
			nominal := ckt.Params[name]
			vars[name] = nominal * math.Exp(sigma*rng.NormFloat64())
		}
		sample := MCSample{Variables: vars}
		rep, err := runOneCorner(ctx, ckt, opts, Corner{
			Name:   fmt.Sprintf("mc-%d", k),
			Params: vars,
		})
		if err != nil {
			sample.Err = err
			res.Failed++
		} else if w := WorstLoop(rep); w != nil {
			sample.WorstPeak = w.WorstPeak
			sample.FreqHz = w.Freq
			sample.PMDeg = w.PhaseMarginDeg
		}
		res.Samples = append(res.Samples, sample)
	}
	return res, nil
}

// PMQuantile returns the q-quantile (0..1) of the phase margin across
// successful samples with a resonant loop — e.g. PMQuantile(0.05) is the
// 5th-percentile ("worst plausible") phase margin.
func (r *MCResult) PMQuantile(q float64) (float64, bool) {
	var pms []float64
	for _, s := range r.Samples {
		if s.Err == nil && s.FreqHz > 0 {
			pms = append(pms, s.PMDeg)
		}
	}
	if len(pms) == 0 {
		return 0, false
	}
	sort.Float64s(pms)
	idx := int(q * float64(len(pms)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(pms) {
		idx = len(pms) - 1
	}
	return pms[idx], true
}
