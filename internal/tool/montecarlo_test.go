package tool

import (
	"context"
	"math"
	"testing"

	"acstab/internal/netlist"
)

func mcCircuit(t *testing.T) *netlist.Circuit {
	t.Helper()
	c, err := netlist.Parse(`mc tank
.param rq=400 cq=1n
R1 t 0 {rq}
L1 t 0 25.33u
C1 t 0 {cq}
`)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestMonteCarloBasics(t *testing.T) {
	c := mcCircuit(t)
	opts := DefaultOptions()
	opts.FStart, opts.FStop = 1e4, 1e8
	res, err := MonteCarlo(context.Background(), c, opts, MCSpec{
		Runs: 20, Seed: 42,
		Sigma: map[string]float64{"rq": 0.2, "cq": 0.05},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 20 || res.Failed != 0 {
		t.Fatalf("samples=%d failed=%d", len(res.Samples), res.Failed)
	}
	// Every draw finds the loop; frequencies spread around 1 MHz.
	var minF, maxF = math.Inf(1), math.Inf(-1)
	var minPM, maxPM = math.Inf(1), math.Inf(-1)
	for _, s := range res.Samples {
		if s.FreqHz == 0 {
			t.Fatalf("sample missed the loop: %+v", s)
		}
		minF = math.Min(minF, s.FreqHz)
		maxF = math.Max(maxF, s.FreqHz)
		minPM = math.Min(minPM, s.PMDeg)
		maxPM = math.Max(maxPM, s.PMDeg)
	}
	if minF < 0.8e6 || maxF > 1.25e6 {
		t.Errorf("frequency spread [%g, %g] implausible", minF, maxF)
	}
	if maxPM-minPM < 2 {
		t.Errorf("20%% resistor sigma should spread PM; got [%g, %g]", minPM, maxPM)
	}
	// Quantiles ordered.
	p5, ok5 := res.PMQuantile(0.05)
	p95, ok95 := res.PMQuantile(0.95)
	if !ok5 || !ok95 || p5 > p95 {
		t.Errorf("quantiles: %g (%v) vs %g (%v)", p5, ok5, p95, ok95)
	}
	// Nominal untouched.
	if c.Params["rq"] != 400 {
		t.Error("MonteCarlo mutated the circuit")
	}
}

func TestMonteCarloDeterministic(t *testing.T) {
	c := mcCircuit(t)
	opts := DefaultOptions()
	opts.FStart, opts.FStop = 1e4, 1e8
	spec := MCSpec{Runs: 5, Seed: 7, Sigma: map[string]float64{"rq": 0.1}}
	a, err := MonteCarlo(context.Background(), c, opts, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MonteCarlo(context.Background(), mcCircuit(t), opts, spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Samples {
		if a.Samples[i].WorstPeak != b.Samples[i].WorstPeak {
			t.Fatalf("run %d differs: %g vs %g", i,
				a.Samples[i].WorstPeak, b.Samples[i].WorstPeak)
		}
	}
}

func TestMonteCarloErrors(t *testing.T) {
	c := mcCircuit(t)
	opts := DefaultOptions()
	if _, err := MonteCarlo(context.Background(), c, opts, MCSpec{Runs: 0, Sigma: map[string]float64{"rq": 0.1}}); err == nil {
		t.Error("zero runs should fail")
	}
	if _, err := MonteCarlo(context.Background(), c, opts, MCSpec{Runs: 1}); err == nil {
		t.Error("empty sigma should fail")
	}
	if _, err := MonteCarlo(context.Background(), c, opts, MCSpec{Runs: 1, Sigma: map[string]float64{"zz": 0.1}}); err == nil {
		t.Error("unknown variable should fail")
	}
	empty := &MCResult{}
	if _, ok := empty.PMQuantile(0.5); ok {
		t.Error("empty result has no quantile")
	}
}
