package tool

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"acstab/internal/analysis"
	"acstab/internal/mna"
	"acstab/internal/netlist"
	"acstab/internal/num"
)

// Property: on randomly generated resonant circuits, the zeta and natural
// frequency the stability-plot method reads off a node response match the
// exact dominant eigenvalues of the linearized MNA system. This is the
// method's core claim validated against ground truth, not against itself.
func TestMethodVsExactPolesQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Restrict to the range where loops are dangerous enough to matter
		// (the paper's use case): above ~zeta 0.5 the peak grows broad and
		// nearby real poles bias the read-off by >8 %.
		zeta := 0.12 + 0.33*rng.Float64()
		fn := math.Pow(10, 5+3*rng.Float64()) // 100 kHz .. 100 MHz

		// Random two-pole gm loop, plus one or two bystander RC sections
		// to add real poles the method must reject.
		c := netlist.NewCircuit("random loop")
		k := 1/(zeta*zeta) - 1
		r := 5e3 + 10e3*rng.Float64()
		rc := math.Sqrt(1+k) / (2 * math.Pi * fn)
		c.AddR("RA", "a", "0", r)
		c.AddC("CA", "a", "0", rc/r)
		c.AddR("RB", "b", "0", r)
		c.AddC("CB", "b", "0", rc/r)
		gm := math.Sqrt(k) / r
		c.AddG("GF", "0", "b", "a", "0", gm)
		c.AddG("GR", "a", "0", "b", "0", gm)
		for i := 0; i < 1+rng.Intn(2); i++ {
			name := string(rune('p' + i))
			fp := fn * math.Pow(10, 1.0+rng.Float64())
			rp := 1e3
			c.AddR("RP"+name, "a", name, rp)
			c.AddC("CP"+name, name, "0", 1/(2*math.Pi*fp*rp))
		}

		// Exact poles.
		flat, err := netlist.Flatten(c)
		if err != nil {
			return false
		}
		sys, err := mna.Compile(flat)
		if err != nil {
			return false
		}
		sim := analysis.New(sys)
		op, err := sim.OP(context.Background())
		if err != nil {
			return false
		}
		poles, err := sim.Poles(context.Background(), op, fn/100, fn*100)
		if err != nil {
			return false
		}
		var exact *analysis.Pole
		for _, p := range analysis.ComplexPolePairs(poles, 1e-6) {
			pp := p
			if exact == nil || pp.Zeta < exact.Zeta {
				exact = &pp
			}
		}
		if exact == nil {
			return false
		}

		// Method estimate at a loop node.
		opts := DefaultOptions()
		opts.FStart, opts.FStop = fn/300, fn*300
		tl, err := New(c, opts)
		if err != nil {
			return false
		}
		nr, err := tl.SingleNode(context.Background(), "a")
		if err != nil || nr.Best == nil {
			return false
		}
		return num.ApproxEqual(nr.Best.Freq, exact.FreqHz, 0.03, 0) &&
			num.ApproxEqual(nr.Best.Zeta, exact.Zeta, 0.08, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}
