package tool

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"acstab/internal/netlist"
	"acstab/internal/num"
	"acstab/internal/obs"
)

// randomTankLadder builds an RLC ladder of k parallel resonant tanks with
// randomized natural frequencies and dampings, chained through coupling
// resistors so the whole thing is one connected circuit. Each tank
// resonates at its own fn with zeta = sqrt(L/C)/(2R).
func randomTankLadder(rng *rand.Rand, k int) (*netlist.Circuit, []float64, []float64) {
	c := netlist.NewCircuit("random tank ladder")
	fns := make([]float64, k)
	zetas := make([]float64, k)
	prev := ""
	for i := 0; i < k; i++ {
		// Keep the resonances at least a half-decade apart so loop
		// clustering cannot merge neighbors.
		fns[i] = math.Pow(10, 4.5+1.2*float64(i)+0.5*rng.Float64())
		zetas[i] = 0.12 + 0.3*rng.Float64()
		node := "t" + string(rune('a'+i))
		wn := 2 * math.Pi * fns[i]
		l := 1e-6 * math.Pow(10, rng.Float64())
		cf := 1 / (wn * wn * l)
		r := math.Sqrt(l/cf) / (2 * zetas[i])
		c.AddR("R"+node, node, "0", r)
		c.AddL("L"+node, node, "0", l)
		c.AddC("C"+node, node, "0", cf)
		if prev != "" {
			// Weak coupling: high enough not to move the poles, present so
			// the matrix is one connected system.
			c.AddR("RX"+node, prev, node, 1e9)
		}
		prev = node
	}
	return c, fns, zetas
}

// TestAdaptiveMatchesDenseQuick is the tentpole property test: on
// randomized RLC ladders, an adaptive run must (a) find the same loops as
// the dense uniform sweep, (b) land each loop's fn and zeta within the
// method's own tolerance, and (c) solve strictly fewer (node, frequency)
// pairs than the dense grid would.
func TestAdaptiveMatchesDenseQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(2)
		ckt, _, _ := randomTankLadder(rng, k)

		dense := DefaultOptions()
		dense.FStart, dense.FStop = 1e3, 1e9
		dense.Workers = 1
		dt, err := New(ckt, dense)
		if err != nil {
			return false
		}
		drep, err := dt.AllNodes(context.Background())
		if err != nil {
			return false
		}

		adaptive := dense
		adaptive.CoarsePointsPerDecade = 8
		adaptive.Trace = obs.StartRun("adaptive-quick")
		at, err := New(ckt, adaptive)
		if err != nil {
			return false
		}
		arep, err := at.AllNodes(context.Background())
		if err != nil {
			return false
		}

		if len(arep.Loops) != len(drep.Loops) {
			t.Logf("seed %d: adaptive found %d loops, dense %d", seed, len(arep.Loops), len(drep.Loops))
			return false
		}
		for i := range drep.Loops {
			dl, al := drep.Loops[i], arep.Loops[i]
			if !num.ApproxEqual(al.Freq, dl.Freq, 0.05, 0) {
				t.Logf("seed %d loop %d: adaptive fn %g vs dense %g", seed, i, al.Freq, dl.Freq)
				return false
			}
			if !num.ApproxEqual(al.Zeta, dl.Zeta, 0.2, 0) {
				t.Logf("seed %d loop %d: adaptive zeta %g vs dense %g", seed, i, al.Zeta, dl.Zeta)
				return false
			}
		}
		tr := adaptive.Trace.Trace()
		pairs := tr.Counters["adaptive_solve_pairs"]
		densePairs := tr.Counters["adaptive_dense_pairs"]
		if pairs <= 0 || densePairs <= 0 || pairs >= densePairs {
			t.Logf("seed %d: adaptive solved %d pairs, dense grid is %d — no win", seed, pairs, densePairs)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Error(err)
	}
}

// TestAdaptiveSingleNode covers the single-node adaptive path: same
// circuit, the adaptive estimate must match the dense one and the node's
// grid must be denser near the resonance than far from it.
func TestAdaptiveSingleNode(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ckt, fns, zetas := randomTankLadder(rng, 2)

	dense := DefaultOptions()
	dense.FStart, dense.FStop = 1e3, 1e9
	dt, err := New(ckt, dense)
	if err != nil {
		t.Fatal(err)
	}
	dn, err := dt.SingleNode(context.Background(), "ta")
	if err != nil {
		t.Fatal(err)
	}

	adaptive := dense
	adaptive.CoarsePointsPerDecade = 8
	at, err := New(ckt, adaptive)
	if err != nil {
		t.Fatal(err)
	}
	an, err := at.SingleNode(context.Background(), "ta")
	if err != nil {
		t.Fatal(err)
	}
	if an.Best == nil || dn.Best == nil {
		t.Fatal("missing dominant peak")
	}
	if !num.ApproxEqual(an.Best.Freq, fns[0], 0.05, 0) {
		t.Errorf("adaptive fn = %g, want %g", an.Best.Freq, fns[0])
	}
	if !num.ApproxEqual(an.Best.Zeta, zetas[0], 0.25, 0) {
		t.Errorf("adaptive zeta = %g, want %g", an.Best.Zeta, zetas[0])
	}
	if !num.ApproxEqual(an.Best.Freq, dn.Best.Freq, 0.05, 0) {
		t.Errorf("adaptive fn %g vs dense %g", an.Best.Freq, dn.Best.Freq)
	}
	aw, dw := an.Impedance, dn.Impedance
	if aw.Len() >= dw.Len() {
		t.Errorf("adaptive grid has %d points, dense %d — no reduction", aw.Len(), dw.Len())
	}
	// Spacing near the resonance must reach the dense resolution while the
	// flat regions stay coarse.
	duNear, duFar := math.Inf(1), 0.0
	for i := 1; i < aw.Len(); i++ {
		du := math.Log(aw.X[i] / aw.X[i-1])
		mid := math.Sqrt(aw.X[i] * aw.X[i-1])
		if mid > fns[0]/1.3 && mid < fns[0]*1.3 {
			if du < duNear {
				duNear = du
			}
		} else if mid > fns[0]*100 || mid < fns[0]/100 {
			if du > duFar {
				duFar = du
			}
		}
	}
	if duNear > 1.5*math.Ln10/40 {
		t.Errorf("near-peak spacing %g never reached the dense target %g", duNear, math.Ln10/40)
	}
	if duFar < 2*duNear {
		t.Errorf("far-field spacing %g not meaningfully coarser than near-peak %g", duFar, duNear)
	}
}

// TestAdaptiveOptionValidation pins the satellite flag-validation
// contract: negative grid knobs, refine caps below the coarse resolution
// or above the unbounded-refinement guard, and naive+adaptive are all
// rejected at Tool construction.
func TestAdaptiveOptionValidation(t *testing.T) {
	base := DefaultOptions()
	cases := []struct {
		name string
		mut  func(*Options)
	}{
		{"negative coarse", func(o *Options) { o.CoarsePointsPerDecade = -1 }},
		{"negative refine", func(o *Options) { o.RefinePointsPerDecade = -4 }},
		{"negative threshold", func(o *Options) { o.RefineThreshold = -0.5 }},
		{"refine below coarse", func(o *Options) {
			o.CoarsePointsPerDecade = 8
			o.RefinePointsPerDecade = 4
		}},
		{"unbounded refine", func(o *Options) {
			o.CoarsePointsPerDecade = 8
			o.RefinePointsPerDecade = 20000
		}},
		{"naive adaptive", func(o *Options) {
			o.CoarsePointsPerDecade = 8
			o.Naive = true
		}},
	}
	ckt, _, _ := randomTankLadder(rand.New(rand.NewSource(1)), 1)
	for _, tc := range cases {
		opts := base
		tc.mut(&opts)
		if _, err := New(ckt, opts); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// The happy path fills the documented defaults.
	opts := base
	opts.CoarsePointsPerDecade = 8
	tl, err := New(ckt, opts)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Opts.RefinePointsPerDecade != tl.Opts.PointsPerDecade {
		t.Errorf("refine cap defaulted to %d, want PointsPerDecade %d",
			tl.Opts.RefinePointsPerDecade, tl.Opts.PointsPerDecade)
	}
	if tl.Opts.RefineThreshold != defRefineThreshold {
		t.Errorf("threshold defaulted to %g, want %g", tl.Opts.RefineThreshold, defRefineThreshold)
	}
}
