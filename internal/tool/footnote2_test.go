package tool

import (
	"context"
	"math"
	"testing"

	"acstab/internal/analysis"
	"acstab/internal/mna"
	"acstab/internal/netlist"
	"acstab/internal/num"
)

// TestZeroNearPoleSuppression demonstrates the paper's footnote 2: a
// complex zero close to a complex pole suppresses the pole's stability-
// plot peak, so the peak value alone understates the danger. The test
// builds the situation deliberately, verifies the exact pole/zero
// locations with the eigensolvers, and checks both the suppression and
// the tell-tale positive (zero) peak next to the negative one.
func TestZeroNearPoleSuppression(t *testing.T) {
	// A resonant tank at ~1 MHz observed at node t, with a series-LC
	// notch branch from t to ground tuned slightly higher: the
	// driving-point impedance at t acquires a complex zero pair near the
	// pole pair.
	c := netlist.NewCircuit("footnote 2")
	c.AddR("R1", "t", "0", 2e3)
	c.AddL("L1", "t", "0", 25.33e-6)
	c.AddC("C1", "t", "0", 1e-9)
	// Lightly coupled series L2-C2 branch resonant at ~1.05 MHz: it plants
	// a lightly damped zero pair between the two split pole pairs of the
	// combined network (driving-point impedances interlace poles and
	// zeros along the jw axis).
	c.AddR("R2", "t", "n1", 100)
	c.AddL("L2", "n1", "n2", 460e-6)
	c.AddC("C2", "n2", "0", 0.05e-9)
	// Probe source for the exact zero analysis of Z(t).
	c.AddI("IPROBE", "0", "t", netlist.SourceSpec{})

	flat, err := netlist.Flatten(c)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := mna.Compile(flat)
	if err != nil {
		t.Fatal(err)
	}
	sim := analysis.New(sys)
	op, err := sim.OP(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	poles, err := sim.Poles(context.Background(), op, 1e5, 1e8)
	if err != nil {
		t.Fatal(err)
	}
	zeros, err := sim.TransferZeros(context.Background(), op, "IPROBE", "t", 1e5, 1e8)
	if err != nil {
		t.Fatal(err)
	}
	pPairs := analysis.ComplexPolePairs(poles, 1e-6)
	zPairs := analysis.ComplexPolePairs(zeros, 1e-6)
	if len(pPairs) == 0 || len(zPairs) == 0 {
		t.Fatalf("pole/zero pairs missing: %+v / %+v", poles, zeros)
	}
	// Find the pole with the zero closest (ratio-wise) to it.
	var pw, zw *analysis.Pole
	best := math.Inf(1)
	for i := range pPairs {
		for j := range zPairs {
			r := math.Abs(math.Log(pPairs[i].FreqHz / zPairs[j].FreqHz))
			if r < best {
				best = r
				pw, zw = &pPairs[i], &zPairs[j]
			}
		}
	}
	t.Logf("suppressed pole: fn=%.4g zeta=%.4g; nearby zero: fz=%.4g zeta=%.4g",
		pw.FreqHz, pw.Zeta, zw.FreqHz, zw.Zeta)
	if best > math.Log(1.6) {
		t.Fatalf("test setup: zero not near pole (ratio %.2f)", math.Exp(best))
	}

	// Stability run at the node with the notch.
	tl, err := New(c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	nr, err := tl.SingleNode(context.Background(), "t")
	if err != nil {
		t.Fatal(err)
	}
	fullDepth := 1 / (pw.Zeta * pw.Zeta)
	var measured float64
	var positive bool
	for _, p := range nr.Stab.Peaks {
		if !p.IsZero && num.ApproxEqual(p.Freq, pw.FreqHz, 0.25, 0) {
			measured = -p.Value
		}
		if p.IsZero && num.ApproxEqual(p.Freq, zw.FreqHz, 0.25, 0) {
			positive = true
		}
	}
	t.Logf("stability peak at t: %.2f vs unsuppressed -1/zeta^2 = %.2f", -measured, -fullDepth)
	if measured == 0 {
		t.Fatal("pole peak not detected at all")
	}
	// Footnote 2's caveat: the nearby zero suppresses the peak well below
	// the true -1/zeta^2 of the pole...
	if measured > 0.6*fullDepth {
		t.Errorf("peak %.2f not suppressed (full depth %.2f)", measured, fullDepth)
	}
	// ...and the positive peak right next to it is the tell-tale the
	// paper says to look for.
	if !positive {
		t.Error("no positive (zero) peak found near the pole")
	}
}
