package tool

import (
	"context"
	"testing"

	"acstab/internal/circuits"
	"acstab/internal/num"
)

func TestNodePulseRecoversTank(t *testing.T) {
	// Lightly damped tank: ringing is clean and the log decrement exact.
	zeta, fn := 0.1, 1e6
	pr, err := NodePulse(context.Background(), circuits.SecondOrder(zeta, fn), "t", 1.3e6)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Rings < 5 {
		t.Fatalf("rings = %d, want >= 5", pr.Rings)
	}
	t.Logf("node pulsing: fn=%.4g zeta=%.4g (true %g / %g)", pr.FreqHz, pr.Zeta, fn, zeta)
	if !num.ApproxEqual(pr.FreqHz, fn, 0.05, 0) {
		t.Errorf("fn = %g, want %g", pr.FreqHz, fn)
	}
	if !num.ApproxEqual(pr.Zeta, zeta, 0.15, 0) {
		t.Errorf("zeta = %g, want %g", pr.Zeta, zeta)
	}
}

func TestNodePulseAgreesWithStabilityPlot(t *testing.T) {
	// Both methods on the paper's op-amp buffer: the time-domain baseline
	// confirms the AC method's numbers (the paper's section 1.1 claim
	// that the AC technique carries the same information).
	ckt := circuits.OpAmpBuffer(circuits.OpAmpDefaults())
	pr, err := NodePulse(context.Background(), ckt, "output", 3e6)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Rings < 2 {
		t.Fatalf("no ringing observed")
	}
	tl, err := New(circuits.OpAmpBuffer(circuits.OpAmpDefaults()), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	nr, err := tl.SingleNode(context.Background(), "output")
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("pulsing: fn=%.4g zeta=%.3g; stability plot: fn=%.4g zeta=%.3g",
		pr.FreqHz, pr.Zeta, nr.Best.Freq, nr.Best.Zeta)
	if !num.ApproxEqual(pr.FreqHz, nr.Best.Freq, 0.08, 0) {
		t.Errorf("fn: pulsing %g vs plot %g", pr.FreqHz, nr.Best.Freq)
	}
	if !num.ApproxEqual(pr.Zeta, nr.Best.Zeta, 0.25, 0) {
		t.Errorf("zeta: pulsing %g vs plot %g", pr.Zeta, nr.Best.Zeta)
	}
}

func TestNodePulseMissesOutOfBandResonance(t *testing.T) {
	// The documented limitation: with a frequency guess two decades off,
	// the pulse window never resolves the ringing — the coverage gap the
	// paper's AC method closes.
	pr, err := NodePulse(context.Background(), circuits.SecondOrder(0.2, 1e6), "t", 1e4)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Rings >= 2 && num.ApproxEqual(pr.FreqHz, 1e6, 0.05, 0) {
		t.Errorf("out-of-band pulse should not resolve the resonance: %+v", pr)
	}
}

func TestNodePulseErrors(t *testing.T) {
	if _, err := NodePulse(context.Background(), circuits.SecondOrder(0.2, 1e6), "t", 0); err == nil {
		t.Error("zero guess should fail")
	}
	if _, err := NodePulse(context.Background(), circuits.SecondOrder(0.2, 1e6), "nosuch", 1e6); err == nil {
		t.Error("unknown node should fail")
	}
}
