package tool

import (
	"context"
	"fmt"
	"sort"

	"acstab/internal/acerr"
	"acstab/internal/netlist"
	"acstab/internal/stab"
)

// Corner is a named set of design-variable overrides (the "in-tool corners
// setup" feature from the paper's in-development list). Overrides apply to
// the circuit's .param design variables before flattening.
type Corner struct {
	Name string
	// Params overrides design variables by name.
	Params map[string]float64
	// Temp, if non-zero, overrides the simulation temperature (Celsius;
	// use TempSet for an explicit 0C corner).
	Temp    float64
	TempSet bool
}

// CornerResult pairs a corner with its all-nodes report.
type CornerResult struct {
	Corner Corner
	Report *Report
	Err    error
}

// RunCorners executes an all-nodes analysis per corner, rebuilding the
// circuit with the corner's design variables. Corners run independently;
// a corner that fails carries its error rather than aborting the set.
func RunCorners(ctx context.Context, ckt *netlist.Circuit, opts Options, corners []Corner) []CornerResult {
	out := make([]CornerResult, len(corners))
	for i, c := range corners {
		out[i].Corner = c
		rep, err := runOneCorner(ctx, ckt, opts, c)
		out[i].Report = rep
		out[i].Err = err
	}
	return out
}

func runOneCorner(ctx context.Context, ckt *netlist.Circuit, opts Options, c Corner) (*Report, error) {
	if err := acerr.Ctx(ctx); err != nil {
		return nil, err
	}
	mod := cloneForOverride(ckt)
	for k, v := range c.Params {
		if _, ok := mod.Params[k]; !ok {
			return nil, fmt.Errorf("tool: corner %q: unknown design variable %q", c.Name, k)
		}
		mod.Params[k] = v
	}
	if c.TempSet || c.Temp != 0 {
		mod.Temp = c.Temp
	}
	// Re-evaluate element values that reference design variables.
	for _, e := range mod.Elems {
		if err := reevaluate(e, mod.Params); err != nil {
			return nil, fmt.Errorf("tool: corner %q: %v", c.Name, err)
		}
	}
	t, err := New(mod, opts)
	if err != nil {
		return nil, err
	}
	return t.AllNodes(ctx)
}

// cloneForOverride shallow-copies the circuit with fresh params/elements
// so overrides don't mutate the caller's netlist.
func cloneForOverride(ckt *netlist.Circuit) *netlist.Circuit {
	c := netlist.NewCircuit(ckt.Title)
	c.Temp = ckt.Temp
	for k, v := range ckt.Params {
		c.Params[k] = v
	}
	for k, v := range ckt.Options {
		c.Options[k] = v
	}
	for k, v := range ckt.Models {
		c.Models[k] = v
	}
	for k, v := range ckt.Subckts {
		c.Subckts[k] = v
	}
	for _, e := range ckt.Elems {
		ne := *e
		if e.Params != nil {
			ne.Params = map[string]float64{}
			for k, v := range e.Params {
				ne.Params[k] = v
			}
		}
		c.Add(&ne)
	}
	return c
}

// reevaluate re-computes an element value from its stored expression with
// the (possibly overridden) design variables.
func reevaluate(e *netlist.Element, params map[string]float64) error {
	if e.ValueExpr == "" {
		return nil
	}
	v, err := netlist.EvalExpr(e.ValueExpr, params)
	if err != nil {
		return err
	}
	e.Value = v
	return nil
}

// TempResult pairs a temperature with its all-nodes report.
type TempResult struct {
	Temp   float64
	Report *Report
	Err    error
}

// RunTemps executes an all-nodes analysis at each temperature (the
// "in-tool sweeps (TEMP etc)" feature from the paper's in-development
// list).
func RunTemps(ctx context.Context, ckt *netlist.Circuit, opts Options, temps []float64) []TempResult {
	sorted := append([]float64(nil), temps...)
	sort.Float64s(sorted)
	out := make([]TempResult, len(sorted))
	for i, temp := range sorted {
		out[i].Temp = temp
		rep, err := runOneCorner(ctx, ckt, opts, Corner{Name: fmt.Sprintf("%gC", temp), Temp: temp, TempSet: true})
		out[i].Report = rep
		out[i].Err = err
	}
	return out
}

// WorstLoop returns the loop with the deepest peak in a report, or nil.
func WorstLoop(rep *Report) *stab.Loop {
	var worst *stab.Loop
	for i := range rep.Loops {
		l := &rep.Loops[i]
		if worst == nil || l.WorstPeak < worst.WorstPeak {
			worst = l
		}
	}
	return worst
}
