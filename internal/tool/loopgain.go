package tool

import (
	"context"
	"fmt"
	"strings"

	"acstab/internal/acerr"
	"acstab/internal/analysis"
	"acstab/internal/linalg"
	"acstab/internal/mna"
	"acstab/internal/netlist"
	"acstab/internal/num"
	"acstab/internal/sparse"
	"acstab/internal/wave"
)

// ReturnRatio computes Blackman's return ratio of a controlled source —
// the rigorous loop gain of the feedback loop that closes through it,
// measured without opening the loop or disturbing the bias. It is the
// modern counterpart (Spectre's stb analysis) of the paper's traditional
// broken-loop Bode baseline, included here as an exact cross-check for
// the stability-plot method.
//
// The element must be a VCCS (G element) whose transconductance carries
// the loop; its output is replaced by a unit AC current and the voltage
// returned at its control terminals is measured:
//
//	T(ω) = -gm * v_ctrl(ω)
//
// The returned waveform is the complex loop gain T; feed it to
// LoopGainMargins for the crossover and phase margin.
//
// The circuit's own AC stimuli are zeroed; the operating point is solved
// with the source removed, so the method as implemented applies to
// circuits whose bias does not depend on the probed source (behavioral
// macromodels; for transistor circuits the loop transconductance lives
// inside device models and is not individually removable).
func ReturnRatio(ctx context.Context, ckt *netlist.Circuit, elem string, freqs []float64) (*wave.Wave, error) {
	flat, err := netlist.Flatten(ckt)
	if err != nil {
		return nil, err
	}
	flat.ZeroACSources()
	target := flat.Element(elem)
	if target == nil {
		return nil, fmt.Errorf("tool: no element %q", elem)
	}
	if target.Type != netlist.VCCS {
		return nil, fmt.Errorf("tool: return ratio needs a VCCS (G element), %q is a %s",
			elem, target.Type)
	}
	gm := target.Value
	nodes := target.Nodes

	// Remove the probed source.
	pruned := netlist.NewCircuit(flat.Title)
	pruned.Temp = flat.Temp
	for k, v := range flat.Params {
		pruned.Params[k] = v
	}
	for k, v := range flat.Models {
		pruned.Models[k] = v
	}
	for k, v := range flat.NodeSet {
		pruned.NodeSet[k] = v
	}
	ln := strings.ToLower(elem)
	for _, e := range flat.Elems {
		if strings.ToLower(e.Name) == ln {
			continue
		}
		pruned.Add(e)
	}
	sys, err := mna.Compile(pruned)
	if err != nil {
		return nil, err
	}
	sim := analysis.New(sys)
	op, err := sim.OP(ctx)
	if err != nil {
		return nil, err
	}
	idx := make([]int, 4)
	for i, n := range nodes {
		j, ok := sys.NodeOf(n)
		if !ok {
			return nil, fmt.Errorf("tool: probe node %q vanished", n)
		}
		idx[i] = j
	}
	np, nn, cp, cn := idx[0], idx[1], idx[2], idx[3]

	n := sys.NumUnknowns()
	y := make([]complex128, len(freqs))
	useSparse := n > 64
	var dm *linalg.CMatrix
	var sm *sparse.Matrix
	if useSparse {
		sm = sparse.New(n)
	} else {
		dm = linalg.NewCMatrix(n)
	}
	b := make([]complex128, n)
	for k, f := range freqs {
		if err := acerr.Ctx(ctx); err != nil {
			return nil, err
		}
		omega := 2 * 3.141592653589793 * f
		for i := range b {
			b[i] = 0
		}
		// Unit replacement current: what the VCCS output would drive.
		if np >= 0 {
			b[np] -= 1
		}
		if nn >= 0 {
			b[nn] += 1
		}
		var x []complex128
		var err error
		if useSparse {
			sm.Zero()
			sys.StampAC(sm, nil, omega, op)
			x, err = sparse.Solve(sm, b)
		} else {
			dm.Zero()
			sys.StampAC(dm, nil, omega, op)
			x, err = linalg.CSolveDense(dm, b)
		}
		if err != nil {
			return nil, fmt.Errorf("tool: return ratio at %g Hz: %w", f, err)
		}
		var vc complex128
		if cp >= 0 {
			vc += x[cp]
		}
		if cn >= 0 {
			vc -= x[cn]
		}
		y[k] = -complex(gm, 0) * vc
	}
	w := wave.New("T("+strings.ToLower(elem)+")", append([]float64(nil), freqs...), y)
	w.XUnit = "Hz"
	w.LogX = true
	return w, nil
}

// LoopGainMargins reads the classic margins off a complex loop-gain
// waveform: unity-gain crossover frequency, phase margin
// (180° + phase at crossover, with the phase referenced so T(DC) sits at
// 0°), and the frequency of 180° total phase lag.
func LoopGainMargins(t *wave.Wave) (fcHz, pmDeg, f180Hz float64, err error) {
	gain := t.DB20()
	phase := t.PhaseDeg()
	cross := gain.Cross(0)
	if len(cross) == 0 {
		return 0, 0, 0, fmt.Errorf("tool: loop gain never crosses 0 dB")
	}
	fcHz = cross[0]
	ref := 180 * roundTo(phase.At(t.X[0])/180)
	pmDeg = 180 + (phase.At(fcHz) - ref)
	if c := phase.Cross(ref - 180); len(c) > 0 {
		f180Hz = c[0]
	}
	return fcHz, pmDeg, f180Hz, nil
}

func roundTo(x float64) float64 {
	if x >= 0 {
		return float64(int(x + 0.5))
	}
	return float64(int(x - 0.5))
}

// LoopGainGrid is a convenience wrapper running ReturnRatio on a log grid.
func LoopGainGrid(ctx context.Context, ckt *netlist.Circuit, elem string, fstart, fstop float64, ppd int) (*wave.Wave, error) {
	return ReturnRatio(ctx, ckt, elem, num.LogGridPPD(fstart, fstop, ppd))
}
