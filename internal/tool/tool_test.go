package tool

import (
	"context"
	"math"
	"math/cmplx"
	"testing"

	"acstab/internal/circuits"
	"acstab/internal/netlist"
	"acstab/internal/num"
)

func TestSingleNodeSecondOrder(t *testing.T) {
	tl, err := New(circuits.SecondOrder(0.3, 1e6), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	nr, err := tl.SingleNode(context.Background(), "t")
	if err != nil {
		t.Fatal(err)
	}
	if nr.Skipped || nr.Best == nil {
		t.Fatalf("result: %+v", nr)
	}
	if !num.ApproxEqual(nr.Best.Freq, 1e6, 0.03, 0) ||
		!num.ApproxEqual(nr.Best.Zeta, 0.3, 0.05, 0) {
		t.Errorf("peak %+v", nr.Best)
	}
	if nr.Impedance == nil || nr.Stab == nil {
		t.Error("missing waveforms")
	}
}

func TestSingleNodeErrors(t *testing.T) {
	tl, err := New(circuits.SecondOrder(0.3, 1e6), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tl.SingleNode(context.Background(), "nosuch"); err == nil {
		t.Error("expected unknown-node error")
	}
	if _, err := tl.SingleNode(context.Background(), "0"); err == nil {
		t.Error("expected ground error")
	}
	if _, err := New(circuits.SecondOrder(0.3, 1e6), Options{FStart: -1, FStop: 1}); err == nil {
		t.Error("expected bad-range error")
	}
}

func TestAutoZeroAC(t *testing.T) {
	c := circuits.SecondOrder(0.3, 1e6)
	c.AddI("Istim", "0", "t", netlist.SourceSpec{ACMag: 5})
	tl, err := New(c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// The flattened copy must have the stimulus zeroed; the original kept.
	if tl.Flat.Element("istim").Src.ACMag != 0 {
		t.Error("AC stimulus not auto-zeroed in the run copy")
	}
	if c.Element("istim").Src.ACMag != 5 {
		t.Error("original circuit must not be modified")
	}
	nr, err := tl.SingleNode(context.Background(), "t")
	if err != nil {
		t.Fatal(err)
	}
	if !num.ApproxEqual(nr.Best.Zeta, 0.3, 0.05, 0) {
		t.Errorf("stimulus corrupted the analysis: %+v", nr.Best)
	}
}

func TestAllNodesDrivenNodeSkipped(t *testing.T) {
	c := circuits.SecondOrder(0.3, 1e6)
	c.AddVDC("VS", "drv", "0", 1)
	c.AddR("RD", "drv", "t", 1e6)
	tl, err := New(c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := tl.AllNodes(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var drv *NodeResult
	for i := range rep.Nodes {
		if rep.Nodes[i].Node == "drv" {
			drv = &rep.Nodes[i]
		}
	}
	if drv == nil || !drv.Skipped {
		t.Errorf("driven node not skipped: %+v", drv)
	}
}

func TestAllNodesTable2(t *testing.T) {
	tl, err := New(circuits.FullCircuit(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := tl.AllNodes(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Loops) < 2 {
		t.Fatalf("found %d loops, want >= 2 (main + bias)", len(rep.Loops))
	}
	// Loop 1: main loop near 3 MHz containing the five paper nodes.
	main := rep.Loops[0]
	if !num.ApproxEqual(main.Freq, 3.1e6, 0.12, 0) {
		t.Errorf("main loop at %g, want ~3.1 MHz", main.Freq)
	}
	members := map[string]bool{}
	for _, np := range main.Nodes {
		members[np.Node] = true
	}
	for _, want := range []string{"output", "net052", "net136", "net138", "net99"} {
		if !members[want] {
			t.Errorf("main loop missing node %s (has %v)", want, main.Nodes)
		}
	}
	if main.WorstPeak > -24 || main.WorstPeak < -34 {
		t.Errorf("main loop worst peak = %g", main.WorstPeak)
	}
	// Bias loops in the tens of MHz.
	foundBias := false
	for _, l := range rep.Loops[1:] {
		if l.Freq > 30e6 && l.Freq < 70e6 {
			foundBias = true
		}
	}
	if !foundBias {
		t.Errorf("no bias loop in the 30-70 MHz band: %+v", rep.Loops)
	}
	// Main loop is the most dangerous one.
	if w := WorstLoop(rep); w == nil || !num.ApproxEqual(w.Freq, main.Freq, 1e-9, 0) {
		t.Errorf("worst loop = %+v", w)
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	mk := func(workers int) *Report {
		opts := DefaultOptions()
		opts.Workers = workers
		tl, err := New(circuits.FullCircuit(), opts)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := tl.AllNodes(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	serial := mk(1)
	parallel := mk(4)
	if len(serial.Nodes) != len(parallel.Nodes) {
		t.Fatal("node count differs")
	}
	for i := range serial.Nodes {
		a, b := serial.Nodes[i], parallel.Nodes[i]
		if a.Node != b.Node || a.Skipped != b.Skipped {
			t.Fatalf("node %d differs: %v vs %v", i, a.Node, b.Node)
		}
		if a.Best == nil != (b.Best == nil) {
			t.Fatalf("node %s best mismatch", a.Node)
		}
		if a.Best != nil && (math.Abs(a.Best.Freq-b.Best.Freq) > 1e-6*a.Best.Freq ||
			math.Abs(a.Best.Value-b.Best.Value) > 1e-9*math.Abs(a.Best.Value)) {
			t.Fatalf("node %s peaks differ: %+v vs %+v", a.Node, a.Best, b.Best)
		}
	}
}

func TestNaiveMatchesShared(t *testing.T) {
	mk := func(naive bool) *Report {
		opts := DefaultOptions()
		opts.Naive = naive
		opts.PointsPerDecade = 20 // keep the naive run quick
		tl, err := New(circuits.BiasCircuit(circuits.BiasDefaults()), opts)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := tl.AllNodes(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	shared := mk(false)
	naive := mk(true)
	for i := range shared.Nodes {
		a, b := shared.Nodes[i], naive.Nodes[i]
		if a.Best == nil != (b.Best == nil) {
			t.Fatalf("node %s best mismatch", a.Node)
		}
		if a.Best != nil && cmplx.Abs(complex(a.Best.Value-b.Best.Value, 0)) > 1e-9 {
			t.Fatalf("node %s: %g vs %g", a.Node, a.Best.Value, b.Best.Value)
		}
	}
}

func TestSkipNodesFilter(t *testing.T) {
	opts := DefaultOptions()
	opts.SkipNodes = []string{"net066x"}
	tl, err := New(circuits.BiasCircuit(circuits.BiasDefaults()), opts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := tl.AllNodes(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range rep.Nodes {
		if n.Node == "net066x" {
			t.Error("filtered node still present")
		}
	}
}

func TestRunCorners(t *testing.T) {
	// Parameterized tank: rval controls damping.
	src := `param tank
.param rval=500
R1 t 0 {rval}
L1 t 0 25.33u
C1 t 0 1n
`
	c, err := netlist.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.FStart, opts.FStop = 1e4, 1e8
	res := RunCorners(context.Background(), c, opts, []Corner{
		{Name: "nom"},
		{Name: "light", Params: map[string]float64{"rval": 2000}},
		{Name: "bad", Params: map[string]float64{"nosuch": 1}},
	})
	if res[0].Err != nil || res[1].Err != nil {
		t.Fatalf("corner errors: %v %v", res[0].Err, res[1].Err)
	}
	if res[2].Err == nil {
		t.Error("unknown design variable should fail")
	}
	// Higher R means lighter damping: deeper peak.
	w0 := WorstLoop(res[0].Report)
	w1 := WorstLoop(res[1].Report)
	if w0 == nil || w1 == nil {
		t.Fatal("missing loops")
	}
	if !(w1.WorstPeak < w0.WorstPeak) {
		t.Errorf("light corner peak %g should be deeper than nominal %g",
			w1.WorstPeak, w0.WorstPeak)
	}
	// Original circuit untouched.
	if c.Params["rval"] != 500 {
		t.Error("corner run mutated the source circuit")
	}
}

func TestRunTemps(t *testing.T) {
	// Tank with a strong positive resistor tempco: hotter -> more R ->
	// lighter damping (deeper peak).
	c := circuits.SecondOrder(0.4, 1e6)
	c.Element("r1").Params = map[string]float64{"tc1": 5e-3}
	opts := DefaultOptions()
	opts.FStart, opts.FStop = 1e4, 1e8
	res := RunTemps(context.Background(), c, opts, []float64{125, -40, 27})
	for _, r := range res {
		if r.Err != nil {
			t.Fatalf("temp %g: %v", r.Temp, r.Err)
		}
	}
	// Results sorted by temperature.
	if res[0].Temp != -40 || res[2].Temp != 125 {
		t.Fatalf("temps not sorted: %v %v %v", res[0].Temp, res[1].Temp, res[2].Temp)
	}
	cold := WorstLoop(res[0].Report)
	hot := WorstLoop(res[2].Report)
	if cold == nil || hot == nil {
		t.Fatal("missing loops")
	}
	if !(hot.WorstPeak < cold.WorstPeak) {
		t.Errorf("hot peak %g should be deeper than cold %g", hot.WorstPeak, cold.WorstPeak)
	}
}

func TestReportLoopStructure(t *testing.T) {
	tl, err := New(circuits.ResonatorField(3, 1e6, 0.3), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := tl.AllNodes(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Three independent resonators at 1, 2, 4 MHz: three loops of 2 nodes.
	if len(rep.Loops) != 3 {
		t.Fatalf("loops = %d, want 3", len(rep.Loops))
	}
	for i, l := range rep.Loops {
		want := 1e6 * math.Pow(2, float64(i))
		if !num.ApproxEqual(l.Freq, want, 0.05, 0) {
			t.Errorf("loop %d at %g, want %g", i, l.Freq, want)
		}
		if len(l.Nodes) != 2 {
			t.Errorf("loop %d has %d nodes, want 2", i, len(l.Nodes))
		}
		if !num.ApproxEqual(l.Zeta, 0.3, 0.08, 0) {
			t.Errorf("loop %d zeta = %g", i, l.Zeta)
		}
	}
}

func TestOnlySubcktScope(t *testing.T) {
	c, err := netlist.Parse(`scoped
.subckt tank t
R1 t 0 318
L1 t 0 25.33u
C1 t 0 1n
.ends
X1 a tank
X2 b tank
R9 a b 1e6
Rg a 0 1e6
`)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.OnlySubckt = "x1"
	tl, err := New(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := tl.AllNodes(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Only node "a" (X1's port) is in scope; "b" is not.
	seen := map[string]bool{}
	for _, n := range rep.Nodes {
		seen[n.Node] = true
	}
	if !seen["a"] || seen["b"] {
		t.Errorf("scope wrong: %v", seen)
	}
	// The scoped run still finds X1's resonance.
	if len(rep.Loops) != 1 || !num.ApproxEqual(rep.Loops[0].Freq, 1e6, 0.05, 0) {
		t.Errorf("loops = %+v", rep.Loops)
	}
}
