package tool

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"acstab/internal/netlist"
)

// State is a saved tool configuration — the offline substitute for loading
// a saved Analog Artist "state" that the paper lists as planned work. It
// captures the sweep setup and the design-variable values so a run can be
// reproduced later or shared.
type State struct {
	Version         int                `json:"version"`
	FStart          float64            `json:"fstart_hz"`
	FStop           float64            `json:"fstop_hz"`
	PointsPerDecade int                `json:"points_per_decade"`
	LoopTol         float64            `json:"loop_tol"`
	Workers         int                `json:"workers"`
	Naive           bool               `json:"naive,omitempty"`
	SkipNodes       []string           `json:"skip_nodes,omitempty"`
	TempC           *float64           `json:"temp_c,omitempty"`
	Variables       map[string]float64 `json:"variables,omitempty"`
}

// stateVersion is bumped on incompatible changes.
const stateVersion = 1

// CaptureState snapshots the run options and the circuit's design
// variables.
func CaptureState(ckt *netlist.Circuit, opts Options) *State {
	s := &State{
		Version:         stateVersion,
		FStart:          opts.FStart,
		FStop:           opts.FStop,
		PointsPerDecade: opts.PointsPerDecade,
		LoopTol:         opts.LoopTol,
		Workers:         opts.Workers,
		Naive:           opts.Naive,
		SkipNodes:       append([]string(nil), opts.SkipNodes...),
	}
	if ckt != nil {
		t := ckt.Temp
		s.TempC = &t
		if len(ckt.Params) > 0 {
			s.Variables = map[string]float64{}
			for k, v := range ckt.Params {
				s.Variables[k] = v
			}
		}
	}
	return s
}

// Save writes the state as JSON.
func (s *State) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// LoadState reads a saved state.
func LoadState(r io.Reader) (*State, error) {
	var s State
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("tool: bad state file: %w", err)
	}
	if s.Version != stateVersion {
		return nil, fmt.Errorf("tool: state version %d, want %d", s.Version, stateVersion)
	}
	return &s, nil
}

// Apply merges the state into run options and (when vars is true) the
// circuit's design variables, re-evaluating dependent element values.
func (s *State) Apply(ckt *netlist.Circuit, opts *Options, vars bool) error {
	if s.FStart > 0 {
		opts.FStart = s.FStart
	}
	if s.FStop > 0 {
		opts.FStop = s.FStop
	}
	if s.PointsPerDecade > 0 {
		opts.PointsPerDecade = s.PointsPerDecade
	}
	if s.LoopTol > 0 {
		opts.LoopTol = s.LoopTol
	}
	opts.Workers = s.Workers
	opts.Naive = s.Naive
	if len(s.SkipNodes) > 0 {
		opts.SkipNodes = append([]string(nil), s.SkipNodes...)
	}
	if ckt == nil || !vars {
		return nil
	}
	if s.TempC != nil {
		ckt.Temp = *s.TempC
	}
	for k, v := range s.Variables {
		if _, ok := ckt.Params[k]; !ok {
			return fmt.Errorf("tool: state variable %q not in circuit", k)
		}
		ckt.Params[k] = v
	}
	for _, e := range ckt.Elems {
		if err := reevaluate(e, ckt.Params); err != nil {
			return err
		}
	}
	return nil
}

// ParamSweepPoint is one step of a design-variable sweep.
type ParamSweepPoint struct {
	Value  float64
	Report *Report
	Err    error
}

// RunParamSweep sweeps one design variable across the given values,
// running an all-nodes analysis at each point (the paper's "in-tool
// sweeps" feature generalized beyond temperature). The source circuit is
// not modified.
func RunParamSweep(ctx context.Context, ckt *netlist.Circuit, opts Options, param string, values []float64) ([]ParamSweepPoint, error) {
	if _, ok := ckt.Params[param]; !ok {
		return nil, fmt.Errorf("tool: unknown design variable %q", param)
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	out := make([]ParamSweepPoint, len(sorted))
	for i, v := range sorted {
		out[i].Value = v
		rep, err := runOneCorner(ctx, ckt, opts, Corner{
			Name:   fmt.Sprintf("%s=%g", param, v),
			Params: map[string]float64{param: v},
		})
		out[i].Report = rep
		out[i].Err = err
	}
	return out, nil
}
