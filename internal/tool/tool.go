// Package tool orchestrates the stability analysis the way the paper's
// DFII tool does: "Single Node" and "All Nodes" run modes, auto-zeroing of
// pre-existing AC stimuli, skipped-node detection, loop clustering,
// parallel sweep execution (the "compute farm" substitute), corner and
// temperature sweep drivers, and design-variable overrides.
package tool

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"

	"acstab/internal/acerr"
	"acstab/internal/analysis"
	"acstab/internal/mna"
	"acstab/internal/netlist"
	"acstab/internal/num"
	"acstab/internal/obs"
	"acstab/internal/stab"
	"acstab/internal/wave"
)

// Run-mode telemetry. Phase timings flow through obs.StartPhase into
// `acstab_phase_duration_seconds{phase=...}` histograms; these counters
// and the worker gauge cover the sweep volume and utilization.
var (
	mAllNodesRuns    = obs.GetCounter("acstab_allnodes_runs_total")
	mSingleNodeRuns  = obs.GetCounter("acstab_singlenode_runs_total")
	mSweepNodes      = obs.GetCounter("acstab_sweep_nodes_total")
	mSweepPoints     = obs.GetCounter("acstab_sweep_freq_points_total")
	mWorkersBusy     = obs.GetGauge("acstab_sweep_workers_busy")
	mAdaptiveRounds  = obs.GetCounter("acstab_adaptive_rounds_total")
	mAdaptiveRefined = obs.GetCounter("acstab_adaptive_refined_points_total")
)

// Options configures a stability run.
type Options struct {
	FStart, FStop   float64 // sweep range in Hz
	PointsPerDecade int
	// CoarsePointsPerDecade enables the two-level adaptive sweep: a coarse
	// uniform pass at this resolution, then recursive bisection of the
	// intervals whose stability-plot signal exceeds RefineThreshold, down
	// to RefinePointsPerDecade near detected peaks. 0 disables adaptivity
	// (every node is swept on the dense PointsPerDecade grid). Refinement
	// decisions are a pure function of each node's own samples, so sharded
	// all-nodes runs merge byte-identically regardless of partitioning.
	CoarsePointsPerDecade int
	// RefinePointsPerDecade caps the adaptive refinement resolution. 0
	// selects PointsPerDecade; values below CoarsePointsPerDecade or above
	// maxRefinePPD are rejected.
	RefinePointsPerDecade int
	// RefineThreshold is the |P| level above which an interval counts as
	// resonant and is refined. 0 selects the default (0.5, the single-
	// real-pole bound); negative is rejected.
	RefineThreshold float64
	Stab            stab.Options
	// LoopTol is the relative frequency tolerance for loop clustering.
	LoopTol float64
	// Workers sets the parallel worker count for the all-nodes sweep
	// (0 = GOMAXPROCS, 1 = serial).
	Workers int
	// Naive forces one independent AC sweep per node (the paper's
	// original flow) instead of sharing one factorization per frequency
	// across all injection nodes. Kept for the ablation benchmark.
	Naive bool
	// AutoZeroAC disables pre-existing AC stimuli before the run
	// (default true, matching the tool's feature list).
	AutoZeroAC bool
	// SkipNodes lists node-name substrings to exclude from all-nodes runs
	// (e.g. supply rails).
	SkipNodes []string
	// OnlyNodes restricts an all-nodes run to exactly these node names
	// (case-insensitive exact match, applied after SkipNodes/OnlySubckt).
	// This is the shard coordinator's partitioning handle: a coordinator
	// plans the full node list once, then ships each worker one slice of
	// it, so the union of shard runs probes exactly the nodes one
	// unsharded run would. Empty = no restriction.
	OnlyNodes []string
	// OnlySubckt restricts the all-nodes run to the nodes of one
	// subcircuit instance (the paper's "all nodes in a circuit/
	// sub-circuit" mode): give the instance path prefix, e.g. "x1" or
	// "x1.x2". Ports shared with the parent are included.
	OnlySubckt string
	// Analysis overrides the solver options.
	Analysis *analysis.Options
	// Trace, when non-nil, collects per-phase spans and solver counters
	// for this run (acstab -stats / -trace-json, farm run traces). It is
	// excluded from serialized reports and never mutated structurally by
	// the tool, so one trace may span several Tool instances (corner and
	// temperature sweeps).
	Trace *obs.Run `json:"-"`
}

// DefaultOptions returns the defaults documented in DESIGN.md.
func DefaultOptions() Options {
	return Options{
		FStart:          1e3,
		FStop:           1e9,
		PointsPerDecade: 40,
		Stab:            stab.DefaultOptions(),
		LoopTol:         0.12,
		AutoZeroAC:      true,
	}
}

// NodeResult is the stability analysis of one node.
type NodeResult struct {
	Node string
	// Impedance is |Z| versus frequency (nil if skipped).
	Impedance *wave.Wave
	// Stab is the full stability-plot analysis (nil if skipped).
	Stab *stab.Result
	// Best is the deepest negative peak including special cases, the row
	// the all-nodes report prints; nil when the node shows no resonant
	// behaviour at all.
	Best *stab.Peak
	// Skipped marks nodes that cannot be probed (zero driving-point
	// impedance, i.e. driven by an ideal source).
	Skipped    bool
	SkipReason string
}

// Report is the outcome of an all-nodes run.
type Report struct {
	CircuitTitle string
	Temp         float64
	Options      Options
	Nodes        []NodeResult
	// Loops groups the nodes with resonant peaks by natural frequency.
	Loops []stab.Loop
}

// Tool runs stability analyses over one circuit.
type Tool struct {
	Ckt  *netlist.Circuit // original (hierarchical) circuit
	Flat *netlist.Circuit
	Sys  *mna.System
	Sim  *analysis.Sim
	Opts Options
	op   *mna.OpPoint
	// shared is the compiled artifact this Tool was built from (nil for
	// tools compiled directly by New). When set, the operating point is
	// computed once on the artifact and reused by every Tool sharing it.
	shared *Compiled
}

// New flattens and compiles the circuit and prepares the solver. The
// original circuit is not modified: auto-zeroing operates on the
// flattened copy.
func New(ckt *netlist.Circuit, opts Options) (*Tool, error) {
	opts, err := withRunDefaults(opts)
	if err != nil {
		return nil, err
	}
	c, err := Compile(ckt, opts)
	if err != nil {
		return nil, err
	}
	sim := c.base.Fork()
	sim.Trace = opts.Trace
	return &Tool{Ckt: ckt, Flat: c.Flat, Sys: c.Sys, Sim: sim, Opts: opts, shared: c}, nil
}

// ensureOP computes and caches the operating point. Tools built over a
// shared compiled artifact store the point on the artifact, so corners
// and batch variants of one circuit pay for Newton once.
func (t *Tool) ensureOP(ctx context.Context) (*mna.OpPoint, error) {
	if t.op != nil {
		return t.op, nil
	}
	if t.shared != nil {
		op, err := t.shared.ensureOP(ctx, t.Sim, t.Opts.Trace)
		if err != nil {
			return nil, err
		}
		t.op = op
		return t.op, nil
	}
	sp := obs.StartPhase(t.Opts.Trace, "op")
	op, err := t.Sim.OP(ctx)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("tool: operating point: %w", err)
	}
	t.op = op
	return t.op, nil
}

// Grid returns the frequency grid of this run.
func (t *Tool) Grid() []float64 {
	return num.LogGridPPD(t.Opts.FStart, t.Opts.FStop, t.Opts.PointsPerDecade)
}

// drivenThreshold is the |Z| below which a node counts as driven by an
// ideal source and is skipped.
const drivenThreshold = 1e-9

// SingleNode runs the "Single Node" mode: inject at the named node,
// compute the stability plot, peaks, and phase-margin estimate. A node
// the circuit does not have yields an error wrapping
// acerr.ErrUnknownNode; a canceled ctx aborts the sweep within one
// linear solve with an error wrapping acerr.ErrCanceled.
func (t *Tool) SingleNode(ctx context.Context, node string) (*NodeResult, error) {
	idx, ok := t.Sys.NodeOf(strings.ToLower(node))
	if !ok {
		return nil, fmt.Errorf("tool: %w %q", acerr.ErrUnknownNode, node)
	}
	if idx < 0 {
		return nil, fmt.Errorf("tool: cannot probe the ground node")
	}
	op, err := t.ensureOP(ctx)
	if err != nil {
		return nil, err
	}
	mSingleNodeRuns.Inc()
	if t.adaptive() {
		// The adaptive engine produces the same driving-point values the
		// full-column sweep would (the diag kernel is bitwise-identical to
		// full substitutions on the shared factorization), on a per-node
		// grid focused around this node's resonances.
		perNode, cols, aerr := t.adaptiveColumns(ctx, op, []int{idx})
		if aerr != nil {
			return nil, aerr
		}
		mSweepNodes.Inc()
		mSweepPoints.Add(int64(len(perNode[0])))
		sp := obs.StartPhase(t.Opts.Trace, "stability")
		defer sp.End()
		return t.analyzeColumn(strings.ToLower(node), perNode[0], cols[0])
	}
	freqs := t.Grid()
	sp := obs.StartPhase(t.Opts.Trace, "sweep")
	cols, err := t.Sim.ImpedanceMatrixColumns(ctx, freqs, op, []int{idx})
	sp.End()
	if err != nil {
		return nil, err
	}
	mSweepNodes.Inc()
	mSweepPoints.Add(int64(len(freqs)))
	sp = obs.StartPhase(t.Opts.Trace, "stability")
	defer sp.End()
	return t.analyzeColumn(strings.ToLower(node), freqs, cols[0])
}

// analyzeColumn converts one impedance column into a NodeResult.
func (t *Tool) analyzeColumn(node string, freqs []float64, col []complex128) (*NodeResult, error) {
	res := &NodeResult{Node: node}
	maxMag := 0.0
	mags := make([]float64, len(col))
	for i, z := range col {
		m := math.Hypot(real(z), imag(z))
		mags[i] = m
		if m > maxMag {
			maxMag = m
		}
	}
	if maxMag < drivenThreshold {
		res.Skipped = true
		res.SkipReason = "driven node (zero driving-point impedance)"
		return res, nil
	}
	zw := wave.NewReal("z("+node+")", append([]float64(nil), freqs...), mags)
	zw.XUnit = "Hz"
	zw.YUnit = "Ohm"
	zw.LogX = true
	res.Impedance = zw
	sr, err := stab.Analyze(zw, t.Opts.Stab)
	if err != nil {
		return nil, fmt.Errorf("tool: node %s: %w", node, err)
	}
	res.Stab = sr
	for i := range sr.Peaks {
		p := &sr.Peaks[i]
		if p.IsZero {
			continue
		}
		if res.Best == nil || p.Value < res.Best.Value {
			res.Best = p
		}
	}
	return res, nil
}

// nodeList returns the node indices and names included in an all-nodes
// run after applying the OnlySubckt and SkipNodes filters.
func (t *Tool) nodeList() (idx []int, names []string) {
	var scope map[string]bool
	if t.Opts.OnlySubckt != "" {
		scope = t.subcktNodes(strings.ToLower(t.Opts.OnlySubckt))
	}
	var only map[string]bool
	if len(t.Opts.OnlyNodes) > 0 {
		only = make(map[string]bool, len(t.Opts.OnlyNodes))
		for _, n := range t.Opts.OnlyNodes {
			only[strings.ToLower(n)] = true
		}
	}
	for i, name := range t.Sys.NodeNames {
		if scope != nil && !scope[name] {
			continue
		}
		if only != nil && !only[name] {
			continue
		}
		skip := false
		for _, pat := range t.Opts.SkipNodes {
			if strings.Contains(name, strings.ToLower(pat)) {
				skip = true
				break
			}
		}
		if !skip {
			idx = append(idx, i)
			names = append(names, name)
		}
	}
	return idx, names
}

// PlanNodes returns the node names an all-nodes run with this Tool's
// options would probe, in sweep order, without running anything. The
// shard coordinator calls it to partition one all-nodes run into
// node-range shards whose OnlyNodes lists union back to exactly this
// plan.
func (t *Tool) PlanNodes() []string {
	_, names := t.nodeList()
	return names
}

// subcktNodes collects every node touched by elements of the given
// subcircuit instance (flattened names carry the instance path prefix),
// including the ports it shares with its parent.
func (t *Tool) subcktNodes(prefix string) map[string]bool {
	out := map[string]bool{}
	p := prefix + "."
	for _, e := range t.Flat.Elems {
		if !strings.HasPrefix(e.Name, p) {
			continue
		}
		for _, n := range e.Nodes {
			if !netlist.IsGround(n) {
				out[n] = true
			}
		}
	}
	return out
}

// AllNodes runs the "All Nodes" mode: every non-ground node is probed and
// the results clustered into loops. The sweep shares one matrix
// factorization per frequency across all nodes and distributes frequency
// points over a worker pool unless Options.Naive is set.
//
// A canceled (or deadline-expired) ctx aborts the run within one linear
// solve: the operating-point Newton loop, every sweep worker, and the
// per-node post-processing all check the context between units of work.
// The returned error wraps acerr.ErrCanceled.
func (t *Tool) AllNodes(ctx context.Context) (*Report, error) {
	op, err := t.ensureOP(ctx)
	if err != nil {
		return nil, err
	}
	mAllNodesRuns.Inc()
	idx, names := t.nodeList()
	mSweepNodes.Add(int64(len(idx)))
	t.Opts.Trace.Add("sweep_nodes", int64(len(idx)))

	// nodeFreqs returns node i's frequency grid: per-node on the adaptive
	// path, the shared dense grid otherwise.
	var cols [][]complex128
	var nodeFreqs func(i int) []float64
	if t.adaptive() {
		var perNode [][]float64
		perNode, cols, err = t.adaptiveColumns(ctx, op, idx)
		if err != nil {
			return nil, err
		}
		var pts int64
		for _, f := range perNode {
			pts += int64(len(f))
		}
		mSweepPoints.Add(pts)
		t.Opts.Trace.Add("sweep_freq_points", pts)
		nodeFreqs = func(i int) []float64 { return perNode[i] }
	} else {
		freqs := t.Grid()
		mSweepPoints.Add(int64(len(freqs)))
		t.Opts.Trace.Add("sweep_freq_points", int64(len(freqs)))
		sp := obs.StartPhase(t.Opts.Trace, "sweep")
		if t.Opts.Naive {
			cols, err = t.naiveColumns(ctx, freqs, op, idx)
		} else {
			cols, err = t.parallelColumns(ctx, freqs, op, idx)
		}
		sp.End()
		if err != nil {
			return nil, err
		}
		nodeFreqs = func(int) []float64 { return freqs }
	}

	rep := &Report{
		CircuitTitle: t.Flat.Title,
		Temp:         t.Flat.Temp,
		Options:      t.Opts,
	}
	sp := obs.StartPhase(t.Opts.Trace, "stability")
	var peaks []stab.NodePeak
	for i, name := range names {
		if err := acerr.Ctx(ctx); err != nil {
			sp.End()
			return nil, err
		}
		nr, err := t.analyzeColumn(name, nodeFreqs(i), cols[i])
		if err != nil {
			sp.End()
			return nil, err
		}
		rep.Nodes = append(rep.Nodes, *nr)
		if !nr.Skipped && nr.Best != nil {
			peaks = append(peaks, stab.NodePeak{Node: name, Peak: *nr.Best})
		}
	}
	sort.Slice(rep.Nodes, func(a, b int) bool { return rep.Nodes[a].Node < rep.Nodes[b].Node })
	sp.End()
	sp = obs.StartPhase(t.Opts.Trace, "loop_clustering")
	rep.Loops = stab.ClusterLoops(peaks, t.Opts.LoopTol)
	sp.End()
	t.Opts.Trace.Add("peaks", int64(len(peaks)))
	t.Opts.Trace.Add("loops", int64(len(rep.Loops)))
	return rep, nil
}

// parallelColumns computes impedance columns with frequency points
// distributed across workers; within each frequency one factorization
// serves every injection node. The first worker failure cancels the
// remaining workers so a dying run releases its CPUs promptly.
func (t *Tool) parallelColumns(ctx context.Context, freqs []float64, op *mna.OpPoint, idx []int) ([][]complex128, error) {
	workers := t.Opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(freqs) {
		workers = len(freqs)
	}
	cols := make([][]complex128, len(idx))
	for i := range cols {
		cols[i] = make([]complex128, len(freqs))
	}
	if workers <= 1 {
		mWorkersBusy.Inc()
		got, err := t.Sim.ImpedanceDiagSweep(ctx, freqs, op, idx)
		mWorkersBusy.Dec()
		if err != nil {
			return nil, err
		}
		return got, nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	chunk := (len(freqs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(freqs) {
			hi = len(freqs)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			mWorkersBusy.Inc()
			defer mWorkersBusy.Dec()
			// Each worker needs its own Sim wrapper: the impedance sweep
			// owns per-sweep numeric workspaces, and the shared System is
			// read-only during AC stamping. Fork shares the symbolic
			// analysis cache — and with it the diag-kernel reach sets — so
			// the pivot order, fill pattern, and plan are computed once and
			// reused read-only by every worker. The trace is shared:
			// obs.Run is concurrency-safe. Only driving-point entries are
			// consumed here, so the diagonal sweep applies.
			sim := t.Sim.Fork()
			sub, err := sim.ImpedanceDiagSweep(ctx, freqs[lo:hi], op, idx)
			if err != nil {
				errCh <- err
				cancel()
				return
			}
			for i := range idx {
				copy(cols[i][lo:hi], sub[i])
			}
		}(lo, hi)
	}
	wg.Wait()
	close(errCh)
	// Report the root cause: a real solver failure beats the secondary
	// cancellation errors it induced in sibling workers.
	var firstErr error
	for err := range errCh {
		if firstErr == nil || (errors.Is(firstErr, acerr.ErrCanceled) && !errors.Is(err, acerr.ErrCanceled)) {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return cols, nil
}

// naiveColumns mimics the paper's original flow: one complete AC sweep per
// node, each refactoring the matrix at every frequency. The single worker
// toggles the busy gauge just like the parallel path, so -naive runs
// report their activity in /statusz instead of a constant zero.
func (t *Tool) naiveColumns(ctx context.Context, freqs []float64, op *mna.OpPoint, idx []int) ([][]complex128, error) {
	mWorkersBusy.Inc()
	defer mWorkersBusy.Dec()
	cols := make([][]complex128, len(idx))
	for i, nodeIdx := range idx {
		got, err := t.Sim.ImpedanceDiagSweep(ctx, freqs, op, []int{nodeIdx})
		if err != nil {
			return nil, err
		}
		cols[i] = got[0]
	}
	return cols, nil
}
