package tool

import (
	"context"
	"math"
	"math/cmplx"
	"testing"

	"acstab/internal/circuits"
	"acstab/internal/netlist"
	"acstab/internal/num"
)

func TestReturnRatioSimpleLoop(t *testing.T) {
	// Single-pole loop: G feedback around an RC with known loop gain
	// T(s) = gmr / (1 + sRC): gm = 2m, R = 1k -> T(0) = 2.
	c := netlist.NewCircuit("one pole loop")
	c.AddR("R1", "a", "0", 1e3)
	c.AddC("C1", "a", "0", 1e-9)
	// Negative feedback: current pulled out of a proportional to v(a).
	c.AddG("GLOOP", "a", "0", "a", "0", 2e-3)
	freqs := num.LogGridPPD(1e3, 1e9, 20)
	tw, err := ReturnRatio(context.Background(), c, "GLOOP", freqs)
	if err != nil {
		t.Fatal(err)
	}
	// T at the lowest frequency (1 kHz, two decades below the pole) is
	// ~+2: negative feedback gives a positive return ratio.
	if got := tw.Y[0]; cmplx.Abs(got-2) > 0.05 {
		t.Errorf("T(low f) = %v, want ~2", got)
	}
	// Pole at 1/(2 pi RC) = 159 kHz: at that frequency |T| = 2/sqrt(2).
	fp := 1 / (2 * math.Pi * 1e3 * 1e-9)
	mag := tw.Mag()
	if got := mag.At(fp); math.Abs(got-2/math.Sqrt2) > 0.02 {
		t.Errorf("|T(fp)| = %g, want %g", got, 2/math.Sqrt2)
	}
}

func TestReturnRatioOpAmpMatchesBrokenLoop(t *testing.T) {
	// The rigorous return ratio of the op-amp's input stage must agree
	// with the broken-loop Bode measurement (Fig. 3): same crossover,
	// same phase margin, same 180-degree frequency. (G1 is the right
	// probe: the main loop is the only loop through it. G2 also sits
	// inside the local Miller loop, so RR(G2) mixes both loops.)
	ckt := circuits.OpAmpBuffer(circuits.OpAmpDefaults())
	tw, err := LoopGainGrid(context.Background(), ckt, "g1", 100, 1e9, 40)
	if err != nil {
		t.Fatal(err)
	}
	fc, pm, f180, err := LoopGainMargins(tw)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("return ratio: fc=%.4g pm=%.3g f180=%.4g", fc, pm, f180)
	if !num.ApproxEqual(fc, 2.64e6, 0.03, 0) {
		t.Errorf("fc = %g, want ~2.64 MHz (broken-loop value)", fc)
	}
	if math.Abs(pm-21.8) > 1.5 {
		t.Errorf("pm = %g, want ~21.8", pm)
	}
	if !num.ApproxEqual(f180, 4.0e6, 0.05, 0) {
		t.Errorf("f180 = %g, want ~4.0 MHz", f180)
	}
	// DC loop gain is the full two-stage gain.
	if db := tw.DB20().At(100); db < 60 {
		t.Errorf("T(DC) = %g dB, want > 60", db)
	}
}

func TestReturnRatioAgreesWithStabilityPlot(t *testing.T) {
	// Three methods, one circuit: return ratio, stability plot. The PM
	// estimates agree within a few degrees (the stability plot's estimate
	// is the second-order equivalent).
	ckt := circuits.OpAmpBuffer(circuits.OpAmpDefaults())
	tw, err := LoopGainGrid(context.Background(), ckt, "g1", 100, 1e9, 40)
	if err != nil {
		t.Fatal(err)
	}
	_, pmRR, _, err := LoopGainMargins(tw)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := New(circuits.OpAmpBuffer(circuits.OpAmpDefaults()), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	nr, err := tl.SingleNode(context.Background(), "output")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pmRR-nr.Best.PhaseMarginDeg) > 5 {
		t.Errorf("return-ratio PM %g vs stability-plot PM %g", pmRR, nr.Best.PhaseMarginDeg)
	}
}

func TestReturnRatioErrors(t *testing.T) {
	c := circuits.SecondOrder(0.3, 1e6)
	if _, err := ReturnRatio(context.Background(), c, "nosuch", []float64{1e3}); err == nil {
		t.Error("unknown element should fail")
	}
	if _, err := ReturnRatio(context.Background(), c, "R1", []float64{1e3}); err == nil {
		t.Error("non-VCCS should fail")
	}
}
