package tool

// Compiled is the immutable, shareable half of a Tool: the flattened
// circuit, the compiled MNA system, the solver's shared symbolic state
// (stamp pattern, pivot order, reach-set plans), and the cached DC
// operating point. It is what the farm worker's content-addressed cache
// stores — production traffic re-submits near-identical netlists
// (corners, Monte Carlo samples, small edits), and everything in here
// depends only on the netlist text and the design-variable overrides, so
// one compile serves every subsequent request with the same fingerprint.
//
// A Compiled is safe for concurrent use by many Tools: the circuit and
// system are read-only after Compile, the symbolic cache inside the base
// Sim is internally locked, and the operating point is built at most once
// under the Compiled's own lock.

import (
	"context"
	"fmt"
	"sync"

	"acstab/internal/analysis"
	"acstab/internal/mna"
	"acstab/internal/netlist"
	"acstab/internal/obs"
)

// Compiled is a flattened and compiled circuit plus the solver state that
// outlives any single run. Build one with Compile, then stamp out cheap
// Tools with NewFromCompiled.
type Compiled struct {
	// Flat is the flattened circuit (auto-zeroed when the compile options
	// asked for it). Read-only.
	Flat *netlist.Circuit
	// Sys is the compiled MNA system. Read-only during AC analysis.
	Sys *mna.System

	// base owns the shared AC symbolic cache; every Tool built from this
	// artifact forks it, so the pattern analysis and reach-set plans are
	// computed once and reused read-only across requests and workers.
	base *analysis.Sim

	// op is the cached DC operating point, built on first use. opErr
	// caches a deterministic solve failure (non-convergence) so a known-bad
	// circuit fails fast on re-submission; context-induced failures are
	// never cached.
	mu    sync.Mutex
	op    *mna.OpPoint
	opErr error
}

// Compile flattens and compiles the circuit once. Only the
// compile-relevant options are consulted: AutoZeroAC (whether pre-existing
// AC stimuli are zeroed on the flattened copy), Analysis (solver options
// baked into the shared base Sim), and Trace (the flatten/mna_assembly
// phase spans land in it). The sweep options play no role here — the same
// Compiled serves runs with any frequency grid.
func Compile(ckt *netlist.Circuit, opts Options) (*Compiled, error) {
	sp := obs.StartPhase(opts.Trace, "flatten")
	flat, err := netlist.Flatten(ckt)
	sp.End()
	if err != nil {
		return nil, err
	}
	if opts.AutoZeroAC {
		flat.ZeroACSources()
	}
	sp = obs.StartPhase(opts.Trace, "mna_assembly")
	sys, err := mna.Compile(flat)
	sp.End()
	if err != nil {
		return nil, err
	}
	base := analysis.New(sys)
	if opts.Analysis != nil {
		base.Opt = *opts.Analysis
	}
	return &Compiled{Flat: flat, Sys: sys, base: base}, nil
}

// ACChecksum returns the structural checksum of the shared AC stamp
// pattern and whether the symbolic analysis is warm — (0, false) until the
// first sparse sweep, or after pattern drift invalidated it. Cache layers
// use it to verify a reused artifact still describes the same circuit.
func (c *Compiled) ACChecksum() (uint64, bool) { return c.base.ACChecksum() }

// ensureOP returns the shared operating point, computing it on first use
// with the given per-request Sim (so Newton counters and the "op" phase
// span land in that request's trace). The lock doubles as single-flight:
// concurrent first requests serialize here and all but one get the cached
// point. A deterministic failure is cached; cancellation is not.
func (c *Compiled) ensureOP(ctx context.Context, sim *analysis.Sim, trace *obs.Run) (*mna.OpPoint, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.op != nil {
		return c.op, nil
	}
	if c.opErr != nil {
		return nil, c.opErr
	}
	sp := obs.StartPhase(trace, "op")
	op, err := sim.OP(ctx)
	sp.End()
	if err != nil {
		if ctx.Err() == nil {
			c.opErr = err
		}
		return nil, fmt.Errorf("tool: operating point: %w", err)
	}
	c.op = op
	return op, nil
}

// NewFromCompiled returns a Tool over the shared compiled artifact:
// flatten, MNA assembly, the symbolic analysis, and the operating point
// are all reused, so a run goes straight to numeric refactorization and
// the sweep. The sweep options (frequency grid, workers, clustering) are
// the caller's own; the compile-relevant options (AutoZeroAC, Analysis)
// must match the ones the artifact was compiled with — a Tool that needs
// different solver options computes its own operating point instead of
// reusing the shared one.
func NewFromCompiled(c *Compiled, opts Options) (*Tool, error) {
	opts, err := withRunDefaults(opts)
	if err != nil {
		return nil, err
	}
	sim := c.base.Fork()
	sim.Trace = opts.Trace
	t := &Tool{Ckt: c.Flat, Flat: c.Flat, Sys: c.Sys, Sim: sim, Opts: opts, shared: c}
	if opts.Analysis != nil {
		sim.Opt = *opts.Analysis
		// Different solver options may converge to a different operating
		// point; do not share the cached one.
		t.shared = nil
	}
	return t, nil
}

// withRunDefaults validates the per-run options and fills the documented
// defaults, the shared gate of New and NewFromCompiled.
func withRunDefaults(opts Options) (Options, error) {
	if opts.FStart <= 0 || opts.FStop <= opts.FStart {
		return opts, fmt.Errorf("tool: bad frequency range [%g, %g]", opts.FStart, opts.FStop)
	}
	if opts.PointsPerDecade <= 0 {
		opts.PointsPerDecade = 40
	}
	if opts.LoopTol <= 0 {
		opts.LoopTol = 0.12
	}
	if opts.CoarsePointsPerDecade < 0 {
		return opts, fmt.Errorf("tool: coarse points per decade must be >= 0 (0 = adaptive off), got %d", opts.CoarsePointsPerDecade)
	}
	if opts.RefinePointsPerDecade < 0 {
		return opts, fmt.Errorf("tool: refine points per decade must be >= 0 (0 = points per decade), got %d", opts.RefinePointsPerDecade)
	}
	if opts.RefineThreshold < 0 {
		return opts, fmt.Errorf("tool: refine threshold must be >= 0 (0 = default %g), got %g", defRefineThreshold, opts.RefineThreshold)
	}
	if opts.CoarsePointsPerDecade > 0 {
		if opts.Naive {
			return opts, fmt.Errorf("tool: adaptive grids and -naive are mutually exclusive (the naive ablation sweeps the dense uniform grid)")
		}
		if opts.RefinePointsPerDecade == 0 {
			opts.RefinePointsPerDecade = opts.PointsPerDecade
		}
		if opts.RefinePointsPerDecade < opts.CoarsePointsPerDecade {
			return opts, fmt.Errorf("tool: refine points per decade (%d) below the coarse resolution (%d)",
				opts.RefinePointsPerDecade, opts.CoarsePointsPerDecade)
		}
		if opts.RefinePointsPerDecade > maxRefinePPD {
			return opts, fmt.Errorf("tool: refine points per decade %d exceeds the cap %d (unbounded refinement is rejected)",
				opts.RefinePointsPerDecade, maxRefinePPD)
		}
		if opts.RefineThreshold == 0 {
			opts.RefineThreshold = defRefineThreshold
		}
	}
	return opts, nil
}
