package tool

import (
	"context"
	"fmt"
	"math"
	"strings"

	"acstab/internal/analysis"
	"acstab/internal/mna"
	"acstab/internal/netlist"
	"acstab/internal/wave"
)

// PulseResult is the outcome of the time-domain "node pulsing" analysis.
type PulseResult struct {
	Node string
	// Response is the node voltage after the pulse.
	Response *wave.Wave
	// FreqHz is the ringing frequency (natural frequency estimate).
	FreqHz float64
	// Zeta is the damping estimate from the logarithmic decrement.
	Zeta float64
	// Rings counts the ringing periods observed; low counts mean heavy
	// damping and an unreliable estimate.
	Rings int
}

// NodePulse implements the traditional time-domain technique the paper's
// introduction names "node pulsing" (its footnote 1): inject a short
// current pulse at the node, simulate the transient, and read the loop's
// natural frequency and damping from the ringing (period from zero
// crossings, damping from the logarithmic decrement of successive peaks).
//
// The method needs a frequency guess to size the time step and window —
// exactly the limitation the paper's AC technique removes ("broadens the
// range of frequency coverage"): fGuess sets the analysis band, and a
// resonance far from it is simply missed. Kept as the comparison baseline
// for the paper's speed and coverage claims (see
// BenchmarkAblationPulsingVsAC).
func NodePulse(ctx context.Context, ckt *netlist.Circuit, node string, fGuess float64) (*PulseResult, error) {
	if fGuess <= 0 {
		return nil, fmt.Errorf("tool: node pulsing needs a frequency guess")
	}
	flat, err := netlist.Flatten(ckt)
	if err != nil {
		return nil, err
	}
	flat.ZeroACSources()
	node = strings.ToLower(node)

	// Inject a one-period current pulse of small amplitude.
	period := 1 / fGuess
	flat.AddI("ipulse", "0", node, netlist.SourceSpec{
		Tran: netlist.PulseFunc{
			V1: 0, V2: 1e-6,
			TD: period, TR: period / 50, TF: period / 50, PW: period / 2,
			PER: 1e9 * period, // single shot
		},
	})
	sys, err := mna.Compile(flat)
	if err != nil {
		return nil, err
	}
	sim := analysis.New(sys)
	// 24 periods of window after the pulse, 200 steps per period.
	spec := analysis.TranSpec{
		TStop: 26 * period,
		TStep: period / 200,
	}
	res, err := sim.Tran(ctx, spec)
	if err != nil {
		return nil, err
	}
	w, err := res.NodeWave(node)
	if err != nil {
		return nil, err
	}
	out := &PulseResult{Node: node, Response: w}

	// Analyze the tail after the pulse ends.
	tail := clipAfter(w, 2*period)
	final := real(tail.Y[len(tail.Y)-1])
	dev := tail.Offset(-final)

	// Successive positive peaks of the deviation.
	type pk struct{ t, v float64 }
	var peaks []pk
	y := dev.Real()
	for i := 1; i < len(y)-1; i++ {
		if y[i] > 0 && y[i] >= y[i-1] && y[i] > y[i+1] {
			peaks = append(peaks, pk{dev.X[i], y[i]})
		}
	}
	if len(peaks) < 2 {
		return out, nil // no usable ringing
	}
	out.Rings = len(peaks)
	// Period from the mean spacing of the first few peaks; decrement from
	// the first pair with meaningful amplitude.
	nUse := len(peaks)
	if nUse > 6 {
		nUse = 6
	}
	tSpan := peaks[nUse-1].t - peaks[0].t
	if tSpan <= 0 {
		return out, nil
	}
	fd := float64(nUse-1) / tSpan
	delta := math.Log(peaks[0].v / peaks[1].v)
	if nUse >= 3 && peaks[2].v > 0 {
		// Average two decrements for robustness.
		delta = 0.5 * (delta + math.Log(peaks[1].v/peaks[2].v))
	}
	if delta <= 0 {
		return out, nil
	}
	zeta := delta / math.Sqrt(4*math.Pi*math.Pi+delta*delta)
	out.Zeta = zeta
	out.FreqHz = fd / math.Sqrt(1-zeta*zeta)
	return out, nil
}

// clipAfter returns the waveform restricted to x >= x0.
func clipAfter(w *wave.Wave, x0 float64) *wave.Wave {
	i := 0
	for i < len(w.X) && w.X[i] < x0 {
		i++
	}
	if i >= len(w.X)-2 {
		i = 0
	}
	c := wave.New(w.Name, append([]float64(nil), w.X[i:]...), append([]complex128(nil), w.Y[i:]...))
	c.XUnit = w.XUnit
	c.YUnit = w.YUnit
	return c
}
