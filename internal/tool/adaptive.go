package tool

// The two-level adaptive sweep engine. The stability plot P(ω) is flat
// away from complex pole/zero pairs, so most of a dense uniform grid's
// solver work confirms nothing: a coarse pass at a few points per decade
// finds every candidate resonance, and recursive bisection of only the
// intervals the stencil signal marks as interesting (stab.RefinePlan)
// recovers full peak resolution at a fraction of the solve count.
//
// Refinement is decided per node from that node's own samples, which is
// what keeps sharded all-nodes runs byte-identical: no matter how the
// node list is partitioned or how nodes are grouped into sweep calls, a
// node's final grid — and the diag-kernel values on it, which are
// per-node independent — depends only on the node itself. Each round, all
// nodes that want more resolution are swept together over the union of
// their wanted frequencies, so every new frequency is stamped and
// refactored once per round (K lanes at a time underneath) and the fixed
// per-sweep cost — reach-plan construction, workspace setup — is paid per
// round, not per distinct want-list. A node may get solved at a few
// frequencies it did not ask for; those values are dropped, which is safe
// because solutions are per-(node, frequency) independent.

import (
	"context"
	"errors"
	"math"
	"runtime"
	"sort"
	"sync"

	"acstab/internal/acerr"
	"acstab/internal/analysis"
	"acstab/internal/mna"
	"acstab/internal/num"
	"acstab/internal/obs"
	"acstab/internal/stab"
)

const (
	// defRefineThreshold is the default |P| refinement trigger: the
	// single-real-pole dip bottoms out at 0.5, so anything deeper hints at
	// a complex pair worth resolving.
	defRefineThreshold = 0.5
	// maxRefinePPD rejects effectively unbounded refinement caps; the
	// paper's workflows run 20-100 points per decade.
	maxRefinePPD = 10000
	// maxRefineRoundsCap bounds the bisection rounds regardless of the
	// coarse/fine ratio (each round halves interval widths, so 20 rounds
	// cover a 10^6 resolution ratio with room to spare).
	maxRefineRoundsCap = 20
)

// adaptive reports whether this run uses the two-level sweep.
func (t *Tool) adaptive() bool { return t.Opts.CoarsePointsPerDecade > 0 }

// refineOptions maps the run options onto the stab refinement knobs: the
// threshold tier targets twice the coarse density (enough to bracket
// every extremum) and the peak tier the full refinement cap.
func (t *Tool) refineOptions() stab.RefineOptions {
	wide := 2 * t.Opts.CoarsePointsPerDecade
	if wide > t.Opts.RefinePointsPerDecade {
		wide = t.Opts.RefinePointsPerDecade
	}
	return stab.RefineOptions{
		Threshold: t.Opts.RefineThreshold,
		WideDU:    math.Ln10 / float64(wide),
		PeakDU:    math.Ln10 / float64(t.Opts.RefinePointsPerDecade),
	}
}

// maxRefineRounds is how many bisection rounds the coarse-to-cap ratio
// can need: log2(cap/coarse) halvings plus slack for the threshold tier
// discovering new hot intervals as peaks sharpen.
func (t *Tool) maxRefineRounds() int {
	r := 2
	for ppd := t.Opts.CoarsePointsPerDecade; ppd < t.Opts.RefinePointsPerDecade; ppd *= 2 {
		r++
	}
	if r > maxRefineRoundsCap {
		r = maxRefineRoundsCap
	}
	return r
}

// refiner is one node's refinement ask for the current round.
type refiner struct {
	i     int       // index into the sweep's node list
	want  []float64 // ascending new frequencies this node needs
	wantU []float64 // ln(want), the exact midpoint values from the plan
}

// unionFreqs merges the rounds' ascending want-lists into one ascending
// deduplicated frequency list. Wanted midpoints are exact IEEE values
// computed from grid endpoints, so nodes that bisect the same interval
// produce bit-identical frequencies and dedup by equality is exact.
func unionFreqs(refiners []refiner) []float64 {
	n := 0
	for _, r := range refiners {
		n += len(r.want)
	}
	all := make([]float64, 0, n)
	for _, r := range refiners {
		all = append(all, r.want...)
	}
	sort.Float64s(all)
	out := all[:0]
	for _, f := range all {
		if len(out) == 0 || out[len(out)-1] != f {
			out = append(out, f)
		}
	}
	return out
}

// subsetVals extracts a node's wanted values from the union sweep's
// column: want is an ascending subsequence of union, so one two-pointer
// pass matches every entry.
func subsetVals(union []float64, col []complex128, want []float64) []complex128 {
	vals := make([]complex128, len(want))
	u := 0
	for j, f := range want {
		for union[u] != f {
			u++
		}
		vals[j] = col[u]
		u++
	}
	return vals
}

// nodeGrid is one node's accumulated adaptive samples: the frequency grid
// and impedance column plus the log-domain shadows (u = ln f, lnm =
// ln|z|) the refinement stencil reads, carried across rounds so only new
// points ever pay a logarithm.
type nodeGrid struct {
	freqs []float64
	zs    []complex128
	u     []float64
	lnm   []float64
}

// merge splices the newly solved (r.want, vals) points into the node's
// ascending arrays. want is ascending and strictly interior to freqs'
// span, so a single merge pass suffices.
func (g *nodeGrid) merge(r refiner, vals []complex128) {
	n := len(g.freqs) + len(r.want)
	outF := make([]float64, 0, n)
	outZ := make([]complex128, 0, n)
	outU := make([]float64, 0, n)
	outL := make([]float64, 0, n)
	i, j := 0, 0
	for i < len(g.freqs) || j < len(r.want) {
		if j >= len(r.want) || (i < len(g.freqs) && g.freqs[i] <= r.want[j]) {
			outF = append(outF, g.freqs[i])
			outZ = append(outZ, g.zs[i])
			outU = append(outU, g.u[i])
			outL = append(outL, g.lnm[i])
			i++
		} else {
			z := vals[j]
			outF = append(outF, r.want[j])
			outZ = append(outZ, z)
			outU = append(outU, r.wantU[j])
			outL = append(outL, stab.LogMag(math.Hypot(real(z), imag(z))))
			j++
		}
	}
	g.freqs, g.zs, g.u, g.lnm = outF, outZ, outU, outL
}

// adaptiveColumns runs the two-level sweep for the given node indices and
// returns each node's final frequency grid and impedance column. It also
// publishes the adaptive trace counters:
//
//	adaptive_rounds         refinement rounds executed
//	adaptive_refined_points (node, frequency) points added by refinement
//	adaptive_solve_pairs    total (node, frequency) points solved
//	adaptive_dense_pairs    what the dense uniform sweep would have solved
func (t *Tool) adaptiveColumns(ctx context.Context, op *mna.OpPoint, idx []int) ([][]float64, [][]complex128, error) {
	coarse := num.LogGridPPD(t.Opts.FStart, t.Opts.FStop, t.Opts.CoarsePointsPerDecade)
	sp := obs.StartPhase(t.Opts.Trace, "coarse_sweep")
	cols, err := t.parallelColumns(ctx, coarse, op, idx)
	sp.End()
	if err != nil {
		return nil, nil, err
	}
	coarseU := make([]float64, len(coarse))
	for i, f := range coarse {
		coarseU[i] = math.Log(f)
	}
	grids := make([]nodeGrid, len(idx))
	for i := range idx {
		lnm := make([]float64, len(coarse))
		for j, z := range cols[i] {
			lnm[j] = stab.LogMag(math.Hypot(real(z), imag(z)))
		}
		grids[i] = nodeGrid{
			freqs: append([]float64(nil), coarse...),
			zs:    cols[i],
			u:     coarseU,
			lnm:   lnm,
		}
	}
	solvePairs := int64(len(coarse)) * int64(len(idx))
	var rounds, refined int64

	ropt := t.refineOptions()
	maxRounds := t.maxRefineRounds()
	sp = obs.StartPhase(t.Opts.Trace, "refine_sweep")
	defer sp.End()
	for round := 0; round < maxRounds; round++ {
		if err := acerr.Ctx(ctx); err != nil {
			return nil, nil, err
		}
		// Per-node refinement decisions; every node that wants more
		// resolution joins this round's union sweep.
		var refiners []refiner
		for i := range grids {
			g := &grids[i]
			want, wantU := stab.RefinePlanLogs(g.freqs, g.u, g.lnm, ropt)
			if len(want) == 0 {
				continue
			}
			refiners = append(refiners, refiner{i: i, want: want, wantU: wantU})
			refined += int64(len(want))
		}
		if len(refiners) == 0 {
			break
		}
		rounds++
		union := unionFreqs(refiners)
		solvePairs += int64(len(union)) * int64(len(refiners))
		if err := t.solveRound(ctx, op, idx, refiners, union, grids); err != nil {
			return nil, nil, err
		}
	}
	freqs := make([][]float64, len(idx))
	for i := range grids {
		freqs[i] = grids[i].freqs
		cols[i] = grids[i].zs
	}

	tr := t.Opts.Trace
	tr.Add("adaptive_rounds", rounds)
	tr.Add("adaptive_refined_points", refined)
	tr.Add("adaptive_solve_pairs", solvePairs)
	densePairs := int64(len(num.LogGridPPD(t.Opts.FStart, t.Opts.FStop, t.Opts.PointsPerDecade))) * int64(len(idx))
	tr.Add("adaptive_dense_pairs", densePairs)
	mAdaptiveRounds.Add(rounds)
	mAdaptiveRefined.Add(refined)
	return freqs, cols, nil
}

// solveRound sweeps one refinement round: all refining nodes over the
// union frequency list, chunked across the worker pool by node the same
// way the dense sweep is, then each node's wanted subset merged into its
// arrays. One sweep per worker-chunk means the reach plan and the K-lane
// batch workspace are built once per round per worker, not once per
// distinct want-list.
func (t *Tool) solveRound(ctx context.Context, op *mna.OpPoint, idx []int, refiners []refiner, union []float64, grids []nodeGrid) error {
	solve := func(sim *analysis.Sim, chunk []refiner) error {
		nodes := make([]int, len(chunk))
		for ci, r := range chunk {
			nodes[ci] = idx[r.i]
		}
		sub, err := sim.ImpedanceDiagSweep(ctx, union, op, nodes)
		if err != nil {
			return err
		}
		for ci, r := range chunk {
			grids[r.i].merge(r, subsetVals(union, sub[ci], r.want))
		}
		return nil
	}
	workers := t.Opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(refiners) {
		workers = len(refiners)
	}
	if workers <= 1 {
		mWorkersBusy.Inc()
		defer mWorkersBusy.Dec()
		return solve(t.Sim, refiners)
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errCh := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*len(refiners)/workers, (w+1)*len(refiners)/workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(chunk []refiner) {
			defer wg.Done()
			mWorkersBusy.Inc()
			defer mWorkersBusy.Dec()
			if err := acerr.Ctx(ctx); err != nil {
				return
			}
			if err := solve(t.Sim.Fork(), chunk); err != nil {
				errCh <- err
				cancel()
			}
		}(refiners[lo:hi])
	}
	wg.Wait()
	close(errCh)
	var firstErr error
	for err := range errCh {
		if firstErr == nil || (errors.Is(firstErr, acerr.ErrCanceled) && !errors.Is(err, acerr.ErrCanceled)) {
			firstErr = err
		}
	}
	return firstErr
}
