package tool

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"acstab/internal/netlist"
)

const paramTank = `param tank
.param rval=500
R1 t 0 {rval}
L1 t 0 25.33u
C1 t 0 1n
`

func TestStateRoundTrip(t *testing.T) {
	c, err := netlist.Parse(paramTank)
	if err != nil {
		t.Fatal(err)
	}
	c.Temp = 85
	opts := DefaultOptions()
	opts.FStart, opts.FStop = 1e4, 1e8
	opts.PointsPerDecade = 25
	opts.Workers = 3
	opts.SkipNodes = []string{"vdd"}

	st := CaptureState(c, opts)
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadState(&buf)
	if err != nil {
		t.Fatal(err)
	}

	c2, _ := netlist.Parse(paramTank)
	opts2 := DefaultOptions()
	if err := loaded.Apply(c2, &opts2, true); err != nil {
		t.Fatal(err)
	}
	if opts2.FStart != 1e4 || opts2.FStop != 1e8 || opts2.PointsPerDecade != 25 ||
		opts2.Workers != 3 || len(opts2.SkipNodes) != 1 {
		t.Errorf("options not restored: %+v", opts2)
	}
	if c2.Temp != 85 {
		t.Errorf("temp not restored: %g", c2.Temp)
	}
	if c2.Params["rval"] != 500 {
		t.Errorf("variables not restored: %v", c2.Params)
	}
}

func TestStateVariableOverrideReevaluates(t *testing.T) {
	c, _ := netlist.Parse(paramTank)
	st := CaptureState(c, DefaultOptions())
	st.Variables["rval"] = 2000
	opts := DefaultOptions()
	if err := st.Apply(c, &opts, true); err != nil {
		t.Fatal(err)
	}
	if c.Element("r1").Value != 2000 {
		t.Errorf("element not re-evaluated: %g", c.Element("r1").Value)
	}
}

func TestStateErrors(t *testing.T) {
	if _, err := LoadState(strings.NewReader("not json")); err == nil {
		t.Error("bad json should fail")
	}
	if _, err := LoadState(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Error("wrong version should fail")
	}
	c, _ := netlist.Parse(paramTank)
	st := CaptureState(c, DefaultOptions())
	st.Variables["bogus"] = 1
	opts := DefaultOptions()
	if err := st.Apply(c, &opts, true); err == nil {
		t.Error("unknown variable should fail")
	}
}

func TestRunParamSweep(t *testing.T) {
	c, err := netlist.Parse(paramTank)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.FStart, opts.FStop = 1e4, 1e8
	points, err := RunParamSweep(context.Background(), c, opts, "rval", []float64{2000, 500, 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 || points[0].Value != 500 || points[2].Value != 2000 {
		t.Fatalf("points not sorted: %+v", points)
	}
	var peaks []float64
	for _, p := range points {
		if p.Err != nil {
			t.Fatalf("%g: %v", p.Value, p.Err)
		}
		w := WorstLoop(p.Report)
		if w == nil {
			t.Fatalf("%g: no loop", p.Value)
		}
		peaks = append(peaks, w.WorstPeak)
	}
	// Larger R -> lighter damping -> deeper peak: strictly decreasing.
	if !(peaks[0] > peaks[1] && peaks[1] > peaks[2]) {
		t.Errorf("peaks not monotone with rval: %v", peaks)
	}
	if _, err := RunParamSweep(context.Background(), c, opts, "nosuch", []float64{1}); err == nil {
		t.Error("unknown param should fail")
	}
	if c.Params["rval"] != 500 {
		t.Error("sweep mutated source circuit")
	}
}
