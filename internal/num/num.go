// Package num provides small numeric helpers shared across the simulator:
// SPICE engineering-notation parsing and formatting, logarithmic grids,
// approximate comparison, and safe math utilities.
package num

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ParseValue parses a SPICE-style numeric literal with an optional
// engineering suffix and optional trailing unit letters, e.g. "1k", "2.2u",
// "10MEG", "1.5pF", "3.3V". Suffix matching is case-insensitive. The
// recognized suffixes are:
//
//	T = 1e12, G = 1e9, MEG = 1e6, K = 1e3,
//	M = 1e-3, U = 1e-6, N = 1e-9, P = 1e-12, F = 1e-15
//
// Note the SPICE convention that a bare "m" means milli; mega must be
// written "meg". Any letters following a recognized suffix are ignored as
// units (so "1kOhm" parses as 1000).
func ParseValue(s string) (float64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("num: empty value")
	}
	// Split the leading numeric part from the suffix.
	i := 0
	seenDigit := false
	for i < len(s) {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			seenDigit = true
			i++
		case c == '+' || c == '-':
			if i == 0 {
				i++
			} else if c := s[i-1]; c == 'e' || c == 'E' {
				i++
			} else {
				goto done
			}
		case c == '.':
			i++
		case c == 'e' || c == 'E':
			// Exponent only if followed by digit or sign+digit.
			if i+1 < len(s) && (isDigit(s[i+1]) ||
				((s[i+1] == '+' || s[i+1] == '-') && i+2 < len(s) && isDigit(s[i+2]))) {
				i++
			} else {
				goto done
			}
		default:
			goto done
		}
	}
done:
	if !seenDigit {
		return 0, fmt.Errorf("num: %q is not a number", s)
	}
	base, err := strconv.ParseFloat(s[:i], 64)
	if err != nil {
		return 0, fmt.Errorf("num: %q: %v", s, err)
	}
	suffix := strings.ToLower(s[i:])
	mult := 1.0
	switch {
	case suffix == "":
		mult = 1
	case strings.HasPrefix(suffix, "meg"):
		mult = 1e6
	case strings.HasPrefix(suffix, "mil"):
		mult = 25.4e-6
	case suffix[0] == 't':
		mult = 1e12
	case suffix[0] == 'g':
		mult = 1e9
	case suffix[0] == 'k':
		mult = 1e3
	case suffix[0] == 'm':
		mult = 1e-3
	case suffix[0] == 'u':
		mult = 1e-6
	case suffix[0] == 'n':
		mult = 1e-9
	case suffix[0] == 'p':
		mult = 1e-12
	case suffix[0] == 'f':
		mult = 1e-15
	case suffix[0] == 'a':
		mult = 1e-18
	default:
		// Unknown letters (e.g. "V", "Hz") are treated as units.
		mult = 1
	}
	return base * mult, nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// FormatValue renders v with an engineering suffix, e.g. 2.2e-6 -> "2.2u".
// It is the inverse convention of ParseValue (mega rendered as "meg").
func FormatValue(v float64) string {
	if v == 0 {
		return "0"
	}
	av := math.Abs(v)
	type step struct {
		mult   float64
		suffix string
	}
	steps := []step{
		{1e12, "t"}, {1e9, "g"}, {1e6, "meg"}, {1e3, "k"},
		{1, ""}, {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"},
		{1e-12, "p"}, {1e-15, "f"},
	}
	for _, st := range steps {
		if av >= st.mult*0.99999999 {
			return trimFloat(v/st.mult) + st.suffix
		}
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func trimFloat(v float64) string {
	s := strconv.FormatFloat(v, 'g', 6, 64)
	return s
}

// LogSpace returns n points logarithmically spaced from a to b inclusive.
// It panics if a or b is non-positive or n < 2.
func LogSpace(a, b float64, n int) []float64 {
	if a <= 0 || b <= 0 {
		panic("num: LogSpace requires positive endpoints")
	}
	if n < 2 {
		panic("num: LogSpace requires n >= 2")
	}
	la, lb := math.Log(a), math.Log(b)
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Exp(la + (lb-la)*float64(i)/float64(n-1))
	}
	out[0], out[n-1] = a, b
	return out
}

// LogGridPPD returns a log grid from fstart to fstop with approximately
// ppd points per decade (always including both endpoints, minimum 2 points).
func LogGridPPD(fstart, fstop float64, ppd int) []float64 {
	if ppd < 1 {
		ppd = 1
	}
	decades := math.Log10(fstop / fstart)
	n := int(math.Ceil(decades*float64(ppd))) + 1
	if n < 2 {
		n = 2
	}
	return LogSpace(fstart, fstop, n)
}

// LinSpace returns n points linearly spaced from a to b inclusive.
func LinSpace(a, b float64, n int) []float64 {
	if n < 2 {
		panic("num: LinSpace requires n >= 2")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = a + (b-a)*float64(i)/float64(n-1)
	}
	out[n-1] = b
	return out
}

// ApproxEqual reports whether a and b agree within relative tolerance rel
// (measured against the larger magnitude) or absolute tolerance abs.
func ApproxEqual(a, b, rel, abs float64) bool {
	d := math.Abs(a - b)
	if d <= abs {
		return true
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= rel*m
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// DB20 converts a magnitude to decibels (20*log10). Zero or negative
// magnitudes map to -inf.
func DB20(mag float64) float64 {
	if mag <= 0 {
		return math.Inf(-1)
	}
	return 20 * math.Log10(mag)
}

// FromDB20 converts decibels to magnitude.
func FromDB20(db float64) float64 { return math.Pow(10, db/20) }

// Deg converts radians to degrees.
func Deg(rad float64) float64 { return rad * 180 / math.Pi }

// Rad converts degrees to radians.
func Rad(deg float64) float64 { return deg * math.Pi / 180 }
