package num

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseValue(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{"1", 1},
		{"1.5", 1.5},
		{"-2.5", -2.5},
		{"1k", 1e3},
		{"1K", 1e3},
		{"2.2u", 2.2e-6},
		{"10MEG", 10e6},
		{"10meg", 10e6},
		{"3m", 3e-3},
		{"4n", 4e-9},
		{"5p", 5e-12},
		{"6f", 6e-15},
		{"7g", 7e9},
		{"8t", 8e12},
		{"1.5pF", 1.5e-12},
		{"1kOhm", 1e3},
		{"3.3V", 3.3},
		{"1e6", 1e6},
		{"1e-3", 1e-3},
		{"2.5e3k", 2.5e6},
		{"1E3", 1e3},
		{"100Hz", 100}, // H is not a suffix letter we scale
		{"0", 0},
		{"+4", 4},
	}
	for _, c := range cases {
		got, err := ParseValue(c.in)
		if err != nil {
			t.Errorf("ParseValue(%q): unexpected error %v", c.in, err)
			continue
		}
		if !ApproxEqual(got, c.want, 1e-12, 0) {
			t.Errorf("ParseValue(%q) = %g, want %g", c.in, got, c.want)
		}
	}
}

func TestParseValueErrors(t *testing.T) {
	for _, in := range []string{"", "abc", "k", "--1", "."} {
		if _, err := ParseValue(in); err == nil {
			t.Errorf("ParseValue(%q): expected error", in)
		}
	}
}

func TestParseValueHzSuffix(t *testing.T) {
	// "100Hz": 'h' is unknown, treated as a unit, so multiplier 1.
	got, err := ParseValue("100Hz")
	if err != nil || got != 100 {
		t.Fatalf("ParseValue(100Hz) = %v, %v", got, err)
	}
}

func TestFormatValueRoundTrip(t *testing.T) {
	vals := []float64{1, 1e3, 2.2e-6, 10e6, 3e-3, 4e-9, 5e-12, 6e-15, 7e9, 8e12, 0, -4.7e3}
	for _, v := range vals {
		s := FormatValue(v)
		got, err := ParseValue(s)
		if err != nil {
			t.Fatalf("round trip %g -> %q: %v", v, s, err)
		}
		if !ApproxEqual(got, v, 1e-5, 1e-30) {
			t.Errorf("round trip %g -> %q -> %g", v, s, got)
		}
	}
}

func TestFormatValueRoundTripQuick(t *testing.T) {
	f := func(mantissa float64, exp10 int8) bool {
		e := int(exp10)%12 - 6
		v := mantissa * math.Pow(10, float64(e))
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		s := FormatValue(v)
		got, err := ParseValue(s)
		if err != nil {
			return false
		}
		return ApproxEqual(got, v, 1e-4, 1e-25)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestLogSpace(t *testing.T) {
	g := LogSpace(1, 1000, 4)
	want := []float64{1, 10, 100, 1000}
	for i := range want {
		if !ApproxEqual(g[i], want[i], 1e-12, 0) {
			t.Errorf("LogSpace[%d] = %g, want %g", i, g[i], want[i])
		}
	}
}

func TestLogSpaceEndpoints(t *testing.T) {
	g := LogSpace(2.5, 7.7e9, 123)
	if g[0] != 2.5 || g[len(g)-1] != 7.7e9 {
		t.Errorf("endpoints not exact: %g, %g", g[0], g[len(g)-1])
	}
	for i := 1; i < len(g); i++ {
		if g[i] <= g[i-1] {
			t.Fatalf("not strictly increasing at %d", i)
		}
	}
}

func TestLogGridPPD(t *testing.T) {
	g := LogGridPPD(1e3, 1e9, 10)
	if g[0] != 1e3 || g[len(g)-1] != 1e9 {
		t.Errorf("endpoints: %g %g", g[0], g[len(g)-1])
	}
	// 6 decades * 10 ppd + 1 = 61 points.
	if len(g) != 61 {
		t.Errorf("len = %d, want 61", len(g))
	}
	// Uniform in log: ratio constant.
	r := g[1] / g[0]
	for i := 2; i < len(g); i++ {
		if !ApproxEqual(g[i]/g[i-1], r, 1e-9, 0) {
			t.Fatalf("ratio not constant at %d", i)
		}
	}
}

func TestLogSpacePanics(t *testing.T) {
	for _, f := range []func(){
		func() { LogSpace(0, 1, 3) },
		func() { LogSpace(1, -1, 3) },
		func() { LogSpace(1, 2, 1) },
		func() { LinSpace(1, 2, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestLinSpace(t *testing.T) {
	g := LinSpace(0, 10, 11)
	for i := range g {
		if !ApproxEqual(g[i], float64(i), 1e-12, 1e-12) {
			t.Errorf("LinSpace[%d] = %g", i, g[i])
		}
	}
}

func TestApproxEqual(t *testing.T) {
	if !ApproxEqual(1.0, 1.0+1e-9, 1e-6, 0) {
		t.Error("relative tolerance failed")
	}
	if ApproxEqual(1.0, 1.1, 1e-6, 0) {
		t.Error("should not be equal")
	}
	if !ApproxEqual(0, 1e-15, 0, 1e-12) {
		t.Error("absolute tolerance failed")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp wrong")
	}
}

func TestDB20(t *testing.T) {
	if !ApproxEqual(DB20(10), 20, 1e-12, 0) {
		t.Error("DB20(10) != 20")
	}
	if !math.IsInf(DB20(0), -1) {
		t.Error("DB20(0) should be -inf")
	}
	if !ApproxEqual(FromDB20(40), 100, 1e-12, 0) {
		t.Error("FromDB20(40) != 100")
	}
}

func TestDegRad(t *testing.T) {
	if !ApproxEqual(Deg(math.Pi), 180, 1e-12, 0) || !ApproxEqual(Rad(180), math.Pi, 1e-12, 0) {
		t.Error("Deg/Rad wrong")
	}
}
