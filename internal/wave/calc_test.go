package wave

import (
	"math"
	"strings"
	"testing"

	"acstab/internal/num"
)

func testEnv() MapEnv {
	x := []float64{1, 10, 100}
	out := New("v(out)", x, []complex128{complex(10, 0), complex(0, 10), complex(1, 0)})
	in := New("v(in)", x, []complex128{1, 1, 1})
	ib := New("i(r1)", x, []complex128{complex(2, 0), complex(2, 0), complex(2, 0)})
	return MapEnv{
		V: map[string]*Wave{"out": out, "in": in},
		I: map[string]*Wave{"r1": ib},
	}
}

func TestEvalSignalAccess(t *testing.T) {
	env := testEnv()
	v, err := Eval("v(out)", env)
	if err != nil {
		t.Fatal(err)
	}
	if !v.IsWave || v.Wave.Len() != 3 {
		t.Fatal("expected waveform")
	}
	v, err = Eval("i(r1)", env)
	if err != nil || !v.IsWave {
		t.Fatalf("i(): %v %v", v, err)
	}
}

func TestEvalDB20(t *testing.T) {
	env := testEnv()
	v, err := Eval("db20(v(out))", env)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(real(v.Wave.Y[0])-20) > 1e-12 {
		t.Errorf("db20 = %g", real(v.Wave.Y[0]))
	}
}

func TestEvalRatioAndPhase(t *testing.T) {
	env := testEnv()
	v, err := Eval("phase(v(out) / v(in))", env)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(real(v.Wave.Y[1])-90) > 1e-9 {
		t.Errorf("phase = %g, want 90", real(v.Wave.Y[1]))
	}
}

func TestEvalArithmetic(t *testing.T) {
	cases := []struct {
		expr string
		want float64
	}{
		{"1+2*3", 7},
		{"(1+2)*3", 9},
		{"-4/2", -2},
		{"2*3 - 1", 5},
		{"1e3 + 0.5", 1000.5},
		{"+5", 5},
	}
	for _, c := range cases {
		v, err := Eval(c.expr, nil)
		if err != nil {
			t.Errorf("%q: %v", c.expr, err)
			continue
		}
		if v.IsWave || math.Abs(v.Scalar-c.want) > 1e-12 {
			t.Errorf("%q = %v, want %g", c.expr, v, c.want)
		}
	}
}

func TestEvalWaveScalarOps(t *testing.T) {
	env := testEnv()
	v, err := Eval("mag(v(out)) * 2 + 1", env)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(real(v.Wave.Y[0])-21) > 1e-12 {
		t.Errorf("got %g, want 21", real(v.Wave.Y[0]))
	}
	v, err = Eval("1 / mag(v(in))", env)
	if err != nil || math.Abs(real(v.Wave.Y[0])-1) > 1e-12 {
		t.Fatalf("reciprocal: %v %v", v, err)
	}
}

func TestEvalMinMaxAt(t *testing.T) {
	env := testEnv()
	v, err := Eval("max(mag(v(out)))", env)
	if err != nil || v.Scalar != 10 {
		t.Fatalf("max: %v %v", v, err)
	}
	v, err = Eval("xmax(mag(v(out)))", env)
	if err != nil || v.Scalar != 1 {
		t.Fatalf("xmax: %v %v", v, err)
	}
	v, err = Eval("at(mag(v(in)), 5)", env)
	if err != nil || v.Scalar != 1 {
		t.Fatalf("at: %v %v", v, err)
	}
}

func TestEvalCross(t *testing.T) {
	env := testEnv()
	// mag(v(out)) goes 10 -> 10 -> 1; crossing 5 happens between x=10..100.
	v, err := Eval("cross(mag(v(out)), 5)", env)
	if err != nil {
		t.Fatal(err)
	}
	if v.Scalar <= 10 || v.Scalar >= 100 {
		t.Errorf("cross at %g", v.Scalar)
	}
}

func TestEvalErrors(t *testing.T) {
	env := testEnv()
	for _, expr := range []string{
		"",
		"v(nosuch)",
		"bogus(v(out))",
		"db20(1)",
		"1 +",
		"(1",
		"v(out",
		"cross(v(out))",
		"at(1, 2)",
		"1 2",
	} {
		if _, err := Eval(expr, env); err == nil {
			t.Errorf("%q: expected error", expr)
		}
	}
}

func TestEvalNoEnv(t *testing.T) {
	if _, err := Eval("v(out)", nil); err == nil {
		t.Error("expected error with nil env")
	}
}

func TestEnvFunc(t *testing.T) {
	env := EnvFunc(func(kind, name string) (*Wave, error) {
		return NewReal(kind+"("+name+")", []float64{1, 2}, []float64{7, 7}), nil
	})
	v, err := Eval("v(x) + i(y)", env)
	if err != nil || real(v.Wave.Y[0]) != 14 {
		t.Fatalf("EnvFunc: %v %v", v, err)
	}
}

func TestPlotBasic(t *testing.T) {
	var sb strings.Builder
	x := num.LogSpace(1, 1e6, 50)
	y := make([]float64, len(x))
	for i := range x {
		y[i] = 20 - 20*math.Log10(x[i])
	}
	w := NewReal("gain", x, y)
	w.LogX = true
	err := Plot(&sb, PlotOptions{Title: "Bode", LogX: true, XLabel: "Hz", YLabel: "dB"}, w)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Bode") || !strings.Contains(out, "Hz") {
		t.Error("plot missing labels")
	}
	if !strings.Contains(out, "*") {
		t.Error("plot missing data marks")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 20 {
		t.Errorf("plot too short: %d lines", len(lines))
	}
}

func TestPlotMultiSeriesLegend(t *testing.T) {
	var sb strings.Builder
	x := []float64{1, 2, 3}
	a := NewReal("a", x, []float64{1, 2, 3})
	b := NewReal("b", x, []float64{3, 2, 1})
	if err := Plot(&sb, PlotOptions{}, a, b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "legend") {
		t.Error("legend missing for multi-series plot")
	}
}

func TestPlotEmpty(t *testing.T) {
	var sb strings.Builder
	if err := Plot(&sb, PlotOptions{}); err == nil {
		t.Error("expected error for no waves")
	}
}
