package wave

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// PlotOptions configures the ASCII renderer.
type PlotOptions struct {
	Width  int  // total character columns (default 78)
	Height int  // plot rows (default 20)
	LogX   bool // logarithmic x axis
	Title  string
	XLabel string
	YLabel string
}

var plotMarks = []byte{'*', '+', 'o', 'x', '#', '@'}

// Plot renders one or more waveforms (real parts) as an ASCII chart. All
// series are drawn on a shared y scale. This is the terminal substitute for
// the paper's DFII waveform windows (Figs. 2-4).
func Plot(out io.Writer, opts PlotOptions, waves ...*Wave) error {
	if len(waves) == 0 {
		return fmt.Errorf("wave: nothing to plot")
	}
	if opts.Width <= 0 {
		opts.Width = 78
	}
	if opts.Height <= 0 {
		opts.Height = 20
	}
	const margin = 12 // y-axis label width
	cols := opts.Width - margin
	if cols < 10 {
		cols = 10
	}
	// Ranges.
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, w := range waves {
		for i := range w.X {
			x, y := w.X[i], real(w.Y[i])
			if math.IsInf(y, 0) || math.IsNaN(y) {
				continue
			}
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
		}
	}
	if !(xmax > xmin) {
		xmax = xmin + 1
	}
	if !(ymax > ymin) {
		ymax = ymin + 1
	}
	// A touch of headroom.
	pad := (ymax - ymin) * 0.05
	ymin -= pad
	ymax += pad

	xpos := func(x float64) int {
		var t float64
		if opts.LogX && xmin > 0 {
			t = (math.Log(x) - math.Log(xmin)) / (math.Log(xmax) - math.Log(xmin))
		} else {
			t = (x - xmin) / (xmax - xmin)
		}
		c := int(math.Round(t * float64(cols-1)))
		if c < 0 {
			c = 0
		}
		if c >= cols {
			c = cols - 1
		}
		return c
	}
	ypos := func(y float64) int {
		t := (y - ymin) / (ymax - ymin)
		r := int(math.Round((1 - t) * float64(opts.Height-1)))
		if r < 0 {
			r = 0
		}
		if r >= opts.Height {
			r = opts.Height - 1
		}
		return r
	}

	grid := make([][]byte, opts.Height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", cols))
	}
	for wi, w := range waves {
		mark := plotMarks[wi%len(plotMarks)]
		prevR, prevC := -1, -1
		for i := range w.X {
			y := real(w.Y[i])
			if math.IsInf(y, 0) || math.IsNaN(y) {
				prevR, prevC = -1, -1
				continue
			}
			c, r := xpos(w.X[i]), ypos(y)
			grid[r][c] = mark
			// Simple vertical fill between consecutive points for continuity.
			if prevC >= 0 && c-prevC <= 1 && prevR != r {
				step := 1
				if prevR > r {
					step = -1
				}
				for rr := prevR + step; rr != r; rr += step {
					if grid[rr][c] == ' ' {
						grid[rr][c] = '.'
					}
				}
			}
			prevR, prevC = r, c
		}
	}

	if opts.Title != "" {
		fmt.Fprintf(out, "%s\n", opts.Title)
	}
	if opts.YLabel != "" {
		fmt.Fprintf(out, "%s\n", opts.YLabel)
	}
	for r := 0; r < opts.Height; r++ {
		yv := ymax - (ymax-ymin)*float64(r)/float64(opts.Height-1)
		fmt.Fprintf(out, "%10.3g |%s\n", yv, string(grid[r]))
	}
	fmt.Fprintf(out, "%10s +%s\n", "", strings.Repeat("-", cols))
	// X axis annotation: min, mid, max.
	var xmid float64
	if opts.LogX && xmin > 0 {
		xmid = math.Exp((math.Log(xmin) + math.Log(xmax)) / 2)
	} else {
		xmid = (xmin + xmax) / 2
	}
	lbl := fmt.Sprintf("%-12.4g%s%12.4g%s%12.4g", xmin,
		strings.Repeat(" ", max(0, cols/2-18)), xmid,
		strings.Repeat(" ", max(0, cols/2-18)), xmax)
	fmt.Fprintf(out, "%10s  %s\n", "", lbl)
	if opts.XLabel != "" {
		fmt.Fprintf(out, "%10s  %s\n", "", opts.XLabel)
	}
	// Legend.
	if len(waves) > 1 {
		var parts []string
		for wi, w := range waves {
			parts = append(parts, fmt.Sprintf("%c = %s", plotMarks[wi%len(plotMarks)], w.Name))
		}
		fmt.Fprintf(out, "%10s  legend: %s\n", "", strings.Join(parts, ", "))
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
