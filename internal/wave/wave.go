// Package wave implements the waveform toolkit the tool depends on — the
// equivalent of the DFII Waveform Calculator the paper lists as a
// requirement. It provides sampled waveforms (frequency- or time-domain),
// the measurement operations the stability methodology needs (magnitude,
// dB, unwrapped phase, log-domain derivatives, level crossings, peak
// search), a small expression calculator, and an ASCII plot renderer used
// to regenerate the paper's figures in a terminal.
package wave

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Wave is a sampled waveform y(x) with complex samples (real waveforms
// simply carry zero imaginary parts). X must be strictly increasing.
type Wave struct {
	Name  string
	XUnit string // e.g. "Hz", "s"
	YUnit string // e.g. "V", "dB", "deg"
	LogX  bool   // hint: sampled on a log-x grid
	X     []float64
	Y     []complex128
}

// New creates a waveform from x and complex y samples (slices are taken
// over, not copied). It panics if lengths differ or x is not increasing.
func New(name string, x []float64, y []complex128) *Wave {
	if len(x) != len(y) {
		panic("wave: x/y length mismatch")
	}
	for i := 1; i < len(x); i++ {
		if x[i] <= x[i-1] {
			panic(fmt.Sprintf("wave: x not strictly increasing at %d", i))
		}
	}
	return &Wave{Name: name, X: x, Y: y}
}

// NewReal creates a real-valued waveform.
func NewReal(name string, x, y []float64) *Wave {
	cy := make([]complex128, len(y))
	for i, v := range y {
		cy[i] = complex(v, 0)
	}
	return New(name, x, cy)
}

// Len returns the number of samples.
func (w *Wave) Len() int { return len(w.X) }

// Clone returns a deep copy.
func (w *Wave) Clone() *Wave {
	c := *w
	c.X = append([]float64(nil), w.X...)
	c.Y = append([]complex128(nil), w.Y...)
	return &c
}

// Real returns the real parts of the samples.
func (w *Wave) Real() []float64 {
	out := make([]float64, len(w.Y))
	for i, v := range w.Y {
		out[i] = real(v)
	}
	return out
}

// Mag returns |y(x)| as a new waveform.
func (w *Wave) Mag() *Wave {
	y := make([]complex128, len(w.Y))
	for i, v := range w.Y {
		y[i] = complex(cmplx.Abs(v), 0)
	}
	out := w.withY(y)
	out.Name = "mag(" + w.Name + ")"
	return out
}

// DB20 returns 20*log10|y| as a new waveform.
func (w *Wave) DB20() *Wave {
	y := make([]complex128, len(w.Y))
	for i, v := range w.Y {
		a := cmplx.Abs(v)
		if a <= 0 {
			y[i] = complex(math.Inf(-1), 0)
		} else {
			y[i] = complex(20*math.Log10(a), 0)
		}
	}
	out := w.withY(y)
	out.Name = "dB20(" + w.Name + ")"
	out.YUnit = "dB"
	return out
}

// PhaseDeg returns the unwrapped phase in degrees as a new waveform.
func (w *Wave) PhaseDeg() *Wave {
	y := make([]complex128, len(w.Y))
	prev := 0.0
	offset := 0.0
	for i, v := range w.Y {
		p := cmplx.Phase(v)
		if i > 0 {
			for p+offset-prev > math.Pi {
				offset -= 2 * math.Pi
			}
			for p+offset-prev < -math.Pi {
				offset += 2 * math.Pi
			}
		}
		up := p + offset
		prev = up
		y[i] = complex(up*180/math.Pi, 0)
	}
	out := w.withY(y)
	out.Name = "phase(" + w.Name + ")"
	out.YUnit = "deg"
	return out
}

func (w *Wave) withY(y []complex128) *Wave {
	return &Wave{Name: w.Name, XUnit: w.XUnit, YUnit: w.YUnit, LogX: w.LogX,
		X: append([]float64(nil), w.X...), Y: y}
}

// At returns y(x) by linear interpolation of the real parts (log-x aware if
// LogX is set). It clamps outside the domain.
func (w *Wave) At(x float64) float64 {
	n := len(w.X)
	if n == 0 {
		return math.NaN()
	}
	if x <= w.X[0] {
		return real(w.Y[0])
	}
	if x >= w.X[n-1] {
		return real(w.Y[n-1])
	}
	// Binary search.
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if w.X[mid] <= x {
			lo = mid
		} else {
			hi = mid
		}
	}
	x0, x1 := w.X[lo], w.X[hi]
	y0, y1 := real(w.Y[lo]), real(w.Y[hi])
	var t float64
	if w.LogX && x0 > 0 {
		t = (math.Log(x) - math.Log(x0)) / (math.Log(x1) - math.Log(x0))
	} else {
		t = (x - x0) / (x1 - x0)
	}
	return y0 + t*(y1-y0)
}

// Cross returns all x where the real part crosses the given level, using
// linear interpolation between adjacent samples.
func (w *Wave) Cross(level float64) []float64 {
	var out []float64
	for i := 1; i < len(w.X); i++ {
		y0, y1 := real(w.Y[i-1])-level, real(w.Y[i])-level
		if y0 == 0 {
			out = append(out, w.X[i-1])
			continue
		}
		if y0*y1 < 0 {
			t := y0 / (y0 - y1)
			var x float64
			if w.LogX && w.X[i-1] > 0 {
				lx := math.Log(w.X[i-1]) + t*(math.Log(w.X[i])-math.Log(w.X[i-1]))
				x = math.Exp(lx)
			} else {
				x = w.X[i-1] + t*(w.X[i]-w.X[i-1])
			}
			out = append(out, x)
		}
	}
	if n := len(w.X); n > 0 && real(w.Y[n-1]) == level {
		out = append(out, w.X[n-1])
	}
	return out
}

// MinIndex returns the index of the minimum real sample.
func (w *Wave) MinIndex() int {
	best, bi := math.Inf(1), -1
	for i, v := range w.Y {
		if r := real(v); r < best {
			best, bi = r, i
		}
	}
	return bi
}

// MaxIndex returns the index of the maximum real sample.
func (w *Wave) MaxIndex() int {
	best, bi := math.Inf(-1), -1
	for i, v := range w.Y {
		if r := real(v); r > best {
			best, bi = r, i
		}
	}
	return bi
}

// DerivLogX returns d Re(y) / d ln(x), computed with central differences on
// the (possibly non-uniform) log-x grid; one-sided at the ends.
func (w *Wave) DerivLogX() *Wave {
	n := len(w.X)
	y := make([]complex128, n)
	u := make([]float64, n)
	for i, x := range w.X {
		u[i] = math.Log(x)
	}
	for i := 0; i < n; i++ {
		switch {
		case n == 1:
			y[i] = 0
		case i == 0:
			y[i] = complex((real(w.Y[1])-real(w.Y[0]))/(u[1]-u[0]), 0)
		case i == n-1:
			y[i] = complex((real(w.Y[n-1])-real(w.Y[n-2]))/(u[n-1]-u[n-2]), 0)
		default:
			// Three-point formula valid on non-uniform grids.
			h0, h1 := u[i]-u[i-1], u[i+1]-u[i]
			ym, y0, yp := real(w.Y[i-1]), real(w.Y[i]), real(w.Y[i+1])
			y[i] = complex((-h1/(h0*(h0+h1)))*ym+((h1-h0)/(h0*h1))*y0+(h0/(h1*(h0+h1)))*yp, 0)
		}
	}
	out := w.withY(y)
	out.Name = "dlnx(" + w.Name + ")"
	return out
}

// SecondDerivLogX returns d^2 Re(y) / d ln(x)^2 using a three-point stencil
// valid on non-uniform grids; the endpoint values copy their neighbors.
func (w *Wave) SecondDerivLogX() *Wave {
	n := len(w.X)
	y := make([]complex128, n)
	u := make([]float64, n)
	for i, x := range w.X {
		u[i] = math.Log(x)
	}
	for i := 1; i < n-1; i++ {
		h0, h1 := u[i]-u[i-1], u[i+1]-u[i]
		ym, y0, yp := real(w.Y[i-1]), real(w.Y[i]), real(w.Y[i+1])
		y[i] = complex(2*(h1*ym-(h0+h1)*y0+h0*yp)/(h0*h1*(h0+h1)), 0)
	}
	if n > 2 {
		y[0] = y[1]
		y[n-1] = y[n-2]
	}
	out := w.withY(y)
	out.Name = "d2lnx(" + w.Name + ")"
	return out
}

// binop applies f elementwise; both waves must share the same X grid.
func binop(name string, a, b *Wave, f func(x, y complex128) complex128) (*Wave, error) {
	if len(a.X) != len(b.X) {
		return nil, fmt.Errorf("wave: grids differ in length (%d vs %d)", len(a.X), len(b.X))
	}
	for i := range a.X {
		if a.X[i] != b.X[i] {
			return nil, fmt.Errorf("wave: grids differ at index %d", i)
		}
	}
	y := make([]complex128, len(a.Y))
	for i := range y {
		y[i] = f(a.Y[i], b.Y[i])
	}
	out := a.withY(y)
	out.Name = "(" + a.Name + name + b.Name + ")"
	return out, nil
}

// Add returns a+b on a shared grid.
func Add(a, b *Wave) (*Wave, error) {
	return binop("+", a, b, func(x, y complex128) complex128 { return x + y })
}

// Sub returns a-b on a shared grid.
func Sub(a, b *Wave) (*Wave, error) {
	return binop("-", a, b, func(x, y complex128) complex128 { return x - y })
}

// Mul returns a*b on a shared grid.
func Mul(a, b *Wave) (*Wave, error) {
	return binop("*", a, b, func(x, y complex128) complex128 { return x * y })
}

// Div returns a/b on a shared grid.
func Div(a, b *Wave) (*Wave, error) {
	return binop("/", a, b, func(x, y complex128) complex128 { return x / y })
}

// Scale returns w scaled by the complex constant k.
func (w *Wave) Scale(k complex128) *Wave {
	y := make([]complex128, len(w.Y))
	for i, v := range w.Y {
		y[i] = k * v
	}
	return w.withY(y)
}

// Offset returns w with the real constant k added to every sample.
func (w *Wave) Offset(k float64) *Wave {
	y := make([]complex128, len(w.Y))
	for i, v := range w.Y {
		y[i] = v + complex(k, 0)
	}
	return w.withY(y)
}

// OvershootPct measures the percent overshoot of a step-like time-domain
// waveform: 100*(max - final)/(final - initial). Returns 0 when the step
// size is degenerate.
func (w *Wave) OvershootPct() float64 {
	if len(w.Y) < 2 {
		return 0
	}
	initial := real(w.Y[0])
	final := real(w.Y[len(w.Y)-1])
	step := final - initial
	if math.Abs(step) < 1e-300 {
		return 0
	}
	peak := initial
	if step > 0 {
		for _, v := range w.Y {
			if r := real(v); r > peak {
				peak = r
			}
		}
		if peak <= final {
			return 0
		}
		return 100 * (peak - final) / step
	}
	for _, v := range w.Y {
		if r := real(v); r < peak {
			peak = r
		}
	}
	if peak >= final {
		return 0
	}
	return 100 * (peak - final) / step
}

// SettleTime returns the first time after which the waveform stays within
// band (fraction, e.g. 0.02) of its final value. Returns the last x if it
// never settles earlier.
func (w *Wave) SettleTime(band float64) float64 {
	n := len(w.Y)
	if n == 0 {
		return math.NaN()
	}
	final := real(w.Y[n-1])
	initial := real(w.Y[0])
	tol := math.Abs(final-initial) * band
	if tol == 0 {
		tol = band * math.Max(math.Abs(final), 1e-30)
	}
	last := w.X[n-1]
	for i := n - 1; i >= 0; i-- {
		if math.Abs(real(w.Y[i])-final) > tol {
			if i == n-1 {
				return w.X[n-1]
			}
			return w.X[i+1]
		}
		last = w.X[i]
	}
	return last
}
