package wave

import (
	"math"
	"math/cmplx"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"acstab/internal/num"
)

func sineWave() *Wave {
	x := num.LinSpace(0, 10, 101)
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = math.Sin(v)
	}
	return NewReal("sin", x, y)
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-increasing x")
		}
	}()
	New("bad", []float64{1, 1}, []complex128{0, 0})
}

func TestNewLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for length mismatch")
		}
	}()
	New("bad", []float64{1}, []complex128{0, 0})
}

func TestMagAndDB20(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []complex128{complex(3, 4), complex(0, 10), 1}
	w := New("w", x, y)
	m := w.Mag()
	if real(m.Y[0]) != 5 || real(m.Y[1]) != 10 || real(m.Y[2]) != 1 {
		t.Errorf("mag = %v", m.Y)
	}
	db := w.DB20()
	if math.Abs(real(db.Y[1])-20) > 1e-12 {
		t.Errorf("dB = %v", db.Y[1])
	}
	if real(db.Y[2]) != 0 {
		t.Errorf("dB of 1 should be 0")
	}
}

func TestDB20OfZero(t *testing.T) {
	w := New("w", []float64{1}, []complex128{0})
	if !math.IsInf(real(w.DB20().Y[0]), -1) {
		t.Error("dB of 0 should be -Inf")
	}
}

func TestPhaseUnwrap(t *testing.T) {
	// A phase that rotates steadily through several full turns must unwrap
	// monotonically.
	n := 100
	x := num.LinSpace(1, 10, n)
	y := make([]complex128, n)
	for i := range y {
		ang := -4 * math.Pi * float64(i) / float64(n-1) // two full negative turns
		y[i] = cmplx.Rect(1, ang)
	}
	ph := New("w", x, y).PhaseDeg()
	for i := 1; i < n; i++ {
		if real(ph.Y[i]) > real(ph.Y[i-1])+1e-9 {
			t.Fatalf("phase not monotonic at %d: %g -> %g", i, real(ph.Y[i-1]), real(ph.Y[i]))
		}
	}
	if math.Abs(real(ph.Y[n-1])-(-720)) > 1 {
		t.Errorf("final phase = %g, want -720", real(ph.Y[n-1]))
	}
}

func TestAtInterpolation(t *testing.T) {
	w := NewReal("w", []float64{0, 1, 2}, []float64{0, 10, 20})
	if got := w.At(0.5); math.Abs(got-5) > 1e-12 {
		t.Errorf("At(0.5) = %g", got)
	}
	if got := w.At(-1); got != 0 {
		t.Errorf("clamp low = %g", got)
	}
	if got := w.At(5); got != 20 {
		t.Errorf("clamp high = %g", got)
	}
}

func TestAtLogInterpolation(t *testing.T) {
	w := NewReal("w", []float64{1, 100}, []float64{0, 2})
	w.LogX = true
	// At x=10 (geometric midpoint) expect 1.
	if got := w.At(10); math.Abs(got-1) > 1e-12 {
		t.Errorf("log At(10) = %g", got)
	}
}

func TestCross(t *testing.T) {
	w := sineWave()
	xs := w.Cross(0)
	// sin crosses zero at pi, 2pi, 3pi within (0,10] -> pi ~3.14, 6.28, 9.42.
	// The first sample is exactly 0 at x=0, also reported.
	if len(xs) < 3 {
		t.Fatalf("crossings = %v", xs)
	}
	found := 0
	for _, want := range []float64{math.Pi, 2 * math.Pi, 3 * math.Pi} {
		for _, x := range xs {
			if math.Abs(x-want) < 0.05 {
				found++
				break
			}
		}
	}
	if found != 3 {
		t.Errorf("missing zero crossings: %v", xs)
	}
}

func TestMinMaxIndex(t *testing.T) {
	w := sineWave()
	mi, ma := w.MinIndex(), w.MaxIndex()
	if math.Abs(w.X[ma]-math.Pi/2) > 0.1 {
		t.Errorf("max at %g, want pi/2", w.X[ma])
	}
	if math.Abs(w.X[mi]-3*math.Pi/2) > 0.1 {
		t.Errorf("min at %g, want 3pi/2", w.X[mi])
	}
}

func TestDerivLogX(t *testing.T) {
	// y = ln(x)^2 -> dy/dlnx = 2 ln x.
	x := num.LogSpace(1, 100, 200)
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = math.Log(v) * math.Log(v)
	}
	d := NewReal("w", x, y).DerivLogX()
	for i := 5; i < len(x)-5; i++ {
		want := 2 * math.Log(x[i])
		if math.Abs(real(d.Y[i])-want) > 1e-3*(1+math.Abs(want)) {
			t.Fatalf("deriv at x=%g: %g want %g", x[i], real(d.Y[i]), want)
		}
	}
}

func TestSecondDerivLogX(t *testing.T) {
	// y = (ln x)^2 -> d2y/dlnx2 = 2 everywhere.
	x := num.LogSpace(1, 100, 100)
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = math.Log(v) * math.Log(v)
	}
	d := NewReal("w", x, y).SecondDerivLogX()
	for i := 1; i < len(x)-1; i++ {
		if math.Abs(real(d.Y[i])-2) > 1e-6 {
			t.Fatalf("second deriv at %d = %g, want 2", i, real(d.Y[i]))
		}
	}
}

func TestSecondDerivLogXNonUniform(t *testing.T) {
	// Quadratic in u must be differentiated exactly even on a non-uniform
	// grid (three-point formula is exact for quadratics).
	x := []float64{1, 2, 5, 7, 20, 90, 100}
	y := make([]float64, len(x))
	for i, v := range x {
		u := math.Log(v)
		y[i] = 3*u*u - u + 1
	}
	d := NewReal("w", x, y).SecondDerivLogX()
	for i := 1; i < len(x)-1; i++ {
		if math.Abs(real(d.Y[i])-6) > 1e-9 {
			t.Fatalf("non-uniform second deriv at %d = %g, want 6", i, real(d.Y[i]))
		}
	}
}

func TestOvershoot(t *testing.T) {
	// Step response of 2nd-order system, zeta=0.2 -> overshoot ~53%.
	zeta, wn := 0.2, 1.0
	x := num.LinSpace(0, 50, 5000)
	y := make([]float64, len(x))
	wd := wn * math.Sqrt(1-zeta*zeta)
	for i, tt := range x {
		y[i] = 1 - math.Exp(-zeta*wn*tt)*(math.Cos(wd*tt)+zeta/math.Sqrt(1-zeta*zeta)*math.Sin(wd*tt))
	}
	w := NewReal("step", x, y)
	os := w.OvershootPct()
	want := 100 * math.Exp(-math.Pi*zeta/math.Sqrt(1-zeta*zeta))
	if math.Abs(os-want) > 1 {
		t.Errorf("overshoot = %g, want %g", os, want)
	}
}

func TestOvershootNegativeStep(t *testing.T) {
	x := num.LinSpace(0, 10, 100)
	y := make([]float64, len(x))
	for i, tt := range x {
		y[i] = -1 + math.Exp(-tt)*(1+0.3*math.Sin(5*tt))
	}
	w := NewReal("negstep", x, y)
	if w.OvershootPct() <= 0 {
		t.Error("negative-going step overshoot should be positive")
	}
}

func TestOvershootFlat(t *testing.T) {
	w := NewReal("flat", []float64{0, 1}, []float64{1, 1})
	if w.OvershootPct() != 0 {
		t.Error("flat wave has no overshoot")
	}
}

func TestBinops(t *testing.T) {
	x := []float64{1, 2}
	a := NewReal("a", x, []float64{1, 2})
	b := NewReal("b", x, []float64{3, 4})
	sum, err := Add(a, b)
	if err != nil || real(sum.Y[0]) != 4 || real(sum.Y[1]) != 6 {
		t.Errorf("Add: %v %v", sum, err)
	}
	d, err := Div(b, a)
	if err != nil || real(d.Y[1]) != 2 {
		t.Errorf("Div: %v %v", d, err)
	}
	c := NewReal("c", []float64{1, 3}, []float64{0, 0})
	if _, err := Add(a, c); err == nil {
		t.Error("mismatched grids should error")
	}
}

// Property: Cross finds a crossing between any two samples that bracket the
// level.
func TestCrossBracketQuick(t *testing.T) {
	f := func(y0, y1 float64) bool {
		if math.IsNaN(y0) || math.IsNaN(y1) || y0 == y1 {
			return true
		}
		w := NewReal("w", []float64{1, 2}, []float64{y0, y1})
		level := (y0 + y1) / 2
		if math.IsInf(level, 0) {
			return true
		}
		xs := w.Cross(level)
		return len(xs) == 1 && xs[0] >= 1 && xs[0] <= 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestSettleTime(t *testing.T) {
	x := num.LinSpace(0, 10, 1001)
	y := make([]float64, len(x))
	for i, tt := range x {
		y[i] = 1 - math.Exp(-tt)
	}
	w := NewReal("rc", x, y)
	ts := w.SettleTime(0.02)
	// 2% of final ~ 1: settles when exp(-t) < 0.02*(1-e^-10) => t ~ 3.9
	if ts < 3 || ts > 5 {
		t.Errorf("settle = %g, want ~3.9", ts)
	}
}

func TestPlotHandlesInfAndNaN(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{1, math.Inf(-1), math.NaN(), 2, 3}
	w := NewReal("bad", x, y)
	var sb strings.Builder
	if err := Plot(&sb, PlotOptions{}, w); err != nil {
		t.Fatalf("plot with inf/nan: %v", err)
	}
	if !strings.Contains(sb.String(), "*") {
		t.Error("finite samples should still render")
	}
}

func TestPlotSingleValueRange(t *testing.T) {
	w := NewReal("flat", []float64{1, 2, 3}, []float64{5, 5, 5})
	var sb strings.Builder
	if err := Plot(&sb, PlotOptions{Height: 5, Width: 40}, w); err != nil {
		t.Fatalf("flat plot: %v", err)
	}
}

func TestScaleAndOffset(t *testing.T) {
	w := NewReal("w", []float64{1, 2}, []float64{1, 2})
	s := w.Scale(complex(3, 0)).Offset(1)
	if real(s.Y[0]) != 4 || real(s.Y[1]) != 7 {
		t.Errorf("scale/offset: %v", s.Y)
	}
}

func TestCloneIndependence(t *testing.T) {
	w := NewReal("w", []float64{1, 2}, []float64{1, 2})
	c := w.Clone()
	c.Y[0] = 99
	if real(w.Y[0]) != 1 {
		t.Error("clone shares storage")
	}
}
