package wave

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Value is a calculator result: either a waveform or a scalar.
type Value struct {
	Wave   *Wave
	Scalar float64
	IsWave bool
}

// ScalarValue wraps a float as a Value.
func ScalarValue(v float64) Value { return Value{Scalar: v} }

// WaveValue wraps a waveform as a Value.
func WaveValue(w *Wave) Value { return Value{Wave: w, IsWave: true} }

// Env resolves signal references for the calculator. Lookup receives the
// access function name ("v" or "i") and its argument (node or branch name).
type Env interface {
	Lookup(kind, name string) (*Wave, error)
}

// EnvFunc adapts a function to the Env interface.
type EnvFunc func(kind, name string) (*Wave, error)

// Lookup implements Env.
func (f EnvFunc) Lookup(kind, name string) (*Wave, error) { return f(kind, name) }

// MapEnv is an Env backed by maps of node voltages and branch currents.
type MapEnv struct {
	V map[string]*Wave
	I map[string]*Wave
}

// Lookup implements Env.
func (m MapEnv) Lookup(kind, name string) (*Wave, error) {
	var w *Wave
	var ok bool
	switch strings.ToLower(kind) {
	case "v":
		w, ok = m.V[name]
	case "i":
		w, ok = m.I[name]
	default:
		return nil, fmt.Errorf("wave: unknown access %q", kind)
	}
	if !ok {
		return nil, fmt.Errorf("wave: no signal %s(%s)", kind, name)
	}
	return w, nil
}

// Eval evaluates a calculator expression such as
//
//	db20(v(out))
//	phase(v(out) / v(in))
//	cross(db20(v(out)), 0)
//	peakmin(d2lnx(db(v(out))))
//
// Supported: + - * / parentheses, numeric literals (SPICE suffixes not
// supported here; use plain or scientific notation), v(name), i(name), and
// the functions mag, db20 (alias db), phase (alias ph), re, im, dlnx,
// d2lnx, deriv (alias of dlnx), cross(w, level), at(w, x), min, max,
// xmin, xmax, overshoot.
func Eval(expr string, env Env) (Value, error) {
	p := &parser{src: expr, env: env}
	v, err := p.parseExpr()
	if err != nil {
		return Value{}, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return Value{}, fmt.Errorf("wave: trailing input at %q", p.src[p.pos:])
	}
	return v, nil
}

type parser struct {
	src string
	pos int
	env Env
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *parser) peek() byte {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

func (p *parser) parseExpr() (Value, error) {
	v, err := p.parseTerm()
	if err != nil {
		return v, err
	}
	for {
		p.skipSpace()
		op := p.peek()
		if op != '+' && op != '-' {
			return v, nil
		}
		p.pos++
		rhs, err := p.parseTerm()
		if err != nil {
			return Value{}, err
		}
		v, err = apply(op, v, rhs)
		if err != nil {
			return Value{}, err
		}
	}
}

func (p *parser) parseTerm() (Value, error) {
	v, err := p.parseUnary()
	if err != nil {
		return v, err
	}
	for {
		p.skipSpace()
		op := p.peek()
		if op != '*' && op != '/' {
			return v, nil
		}
		p.pos++
		rhs, err := p.parseUnary()
		if err != nil {
			return Value{}, err
		}
		v, err = apply(op, v, rhs)
		if err != nil {
			return Value{}, err
		}
	}
}

func (p *parser) parseUnary() (Value, error) {
	p.skipSpace()
	if p.peek() == '-' {
		p.pos++
		v, err := p.parseUnary()
		if err != nil {
			return v, err
		}
		if v.IsWave {
			return WaveValue(v.Wave.Scale(-1)), nil
		}
		return ScalarValue(-v.Scalar), nil
	}
	if p.peek() == '+' {
		p.pos++
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Value, error) {
	p.skipSpace()
	c := p.peek()
	switch {
	case c == '(':
		p.pos++
		v, err := p.parseExpr()
		if err != nil {
			return v, err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return Value{}, fmt.Errorf("wave: expected ')' at %d", p.pos)
		}
		p.pos++
		return v, nil
	case c >= '0' && c <= '9' || c == '.':
		return p.parseNumber()
	case isIdentChar(c):
		return p.parseCall()
	default:
		return Value{}, fmt.Errorf("wave: unexpected %q at %d", string(c), p.pos)
	}
}

func isIdentChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' ||
		c >= '0' && c <= '9'
}

func (p *parser) parseNumber() (Value, error) {
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c >= '0' && c <= '9' || c == '.' || c == 'e' || c == 'E' {
			p.pos++
			continue
		}
		if (c == '+' || c == '-') && p.pos > start &&
			(p.src[p.pos-1] == 'e' || p.src[p.pos-1] == 'E') {
			p.pos++
			continue
		}
		break
	}
	f, err := strconv.ParseFloat(p.src[start:p.pos], 64)
	if err != nil {
		return Value{}, fmt.Errorf("wave: bad number %q", p.src[start:p.pos])
	}
	return ScalarValue(f), nil
}

func (p *parser) parseCall() (Value, error) {
	start := p.pos
	for p.pos < len(p.src) && isIdentChar(p.src[p.pos]) {
		p.pos++
	}
	name := strings.ToLower(p.src[start:p.pos])
	p.skipSpace()
	if p.peek() != '(' {
		return Value{}, fmt.Errorf("wave: expected '(' after %q", name)
	}
	p.pos++

	// Signal access: v(node) / i(branch) take a raw identifier argument.
	if name == "v" || name == "i" {
		argStart := p.pos
		depth := 1
		for p.pos < len(p.src) && depth > 0 {
			switch p.src[p.pos] {
			case '(':
				depth++
			case ')':
				depth--
			}
			if depth > 0 {
				p.pos++
			}
		}
		if depth != 0 {
			return Value{}, fmt.Errorf("wave: unbalanced parens in %s()", name)
		}
		arg := strings.TrimSpace(p.src[argStart:p.pos])
		p.pos++ // consume ')'
		if p.env == nil {
			return Value{}, fmt.Errorf("wave: no environment for %s(%s)", name, arg)
		}
		w, err := p.env.Lookup(name, arg)
		if err != nil {
			return Value{}, err
		}
		return WaveValue(w), nil
	}

	// Regular function: parse comma-separated expression arguments.
	var args []Value
	p.skipSpace()
	if p.peek() != ')' {
		for {
			a, err := p.parseExpr()
			if err != nil {
				return Value{}, err
			}
			args = append(args, a)
			p.skipSpace()
			if p.peek() == ',' {
				p.pos++
				continue
			}
			break
		}
	}
	if p.peek() != ')' {
		return Value{}, fmt.Errorf("wave: expected ')' closing %s()", name)
	}
	p.pos++
	return callFunc(name, args)
}

func callFunc(name string, args []Value) (Value, error) {
	wantWave := func() (*Wave, error) {
		if len(args) != 1 || !args[0].IsWave {
			return nil, fmt.Errorf("wave: %s() wants one waveform argument", name)
		}
		return args[0].Wave, nil
	}
	switch name {
	case "mag", "abs":
		w, err := wantWave()
		if err != nil {
			return Value{}, err
		}
		return WaveValue(w.Mag()), nil
	case "db20", "db":
		w, err := wantWave()
		if err != nil {
			return Value{}, err
		}
		return WaveValue(w.DB20()), nil
	case "phase", "ph":
		w, err := wantWave()
		if err != nil {
			return Value{}, err
		}
		return WaveValue(w.PhaseDeg()), nil
	case "re", "real":
		w, err := wantWave()
		if err != nil {
			return Value{}, err
		}
		y := make([]complex128, w.Len())
		for i, v := range w.Y {
			y[i] = complex(real(v), 0)
		}
		out := w.Clone()
		out.Y = y
		return WaveValue(out), nil
	case "im", "imag":
		w, err := wantWave()
		if err != nil {
			return Value{}, err
		}
		y := make([]complex128, w.Len())
		for i, v := range w.Y {
			y[i] = complex(imag(v), 0)
		}
		out := w.Clone()
		out.Y = y
		return WaveValue(out), nil
	case "dlnx", "deriv":
		w, err := wantWave()
		if err != nil {
			return Value{}, err
		}
		return WaveValue(w.DerivLogX()), nil
	case "d2lnx":
		w, err := wantWave()
		if err != nil {
			return Value{}, err
		}
		return WaveValue(w.SecondDerivLogX()), nil
	case "min":
		w, err := wantWave()
		if err != nil {
			return Value{}, err
		}
		i := w.MinIndex()
		return ScalarValue(real(w.Y[i])), nil
	case "max":
		w, err := wantWave()
		if err != nil {
			return Value{}, err
		}
		i := w.MaxIndex()
		return ScalarValue(real(w.Y[i])), nil
	case "xmin":
		w, err := wantWave()
		if err != nil {
			return Value{}, err
		}
		return ScalarValue(w.X[w.MinIndex()]), nil
	case "xmax":
		w, err := wantWave()
		if err != nil {
			return Value{}, err
		}
		return ScalarValue(w.X[w.MaxIndex()]), nil
	case "overshoot":
		w, err := wantWave()
		if err != nil {
			return Value{}, err
		}
		return ScalarValue(w.OvershootPct()), nil
	case "cross":
		if len(args) != 2 || !args[0].IsWave || args[1].IsWave {
			return Value{}, fmt.Errorf("wave: cross(wave, level)")
		}
		xs := args[0].Wave.Cross(args[1].Scalar)
		if len(xs) == 0 {
			return ScalarValue(math.NaN()), nil
		}
		return ScalarValue(xs[0]), nil
	case "at":
		if len(args) != 2 || !args[0].IsWave || args[1].IsWave {
			return Value{}, fmt.Errorf("wave: at(wave, x)")
		}
		return ScalarValue(args[0].Wave.At(args[1].Scalar)), nil
	default:
		return Value{}, fmt.Errorf("wave: unknown function %q", name)
	}
}

func apply(op byte, a, b Value) (Value, error) {
	switch {
	case a.IsWave && b.IsWave:
		var f func(x, y *Wave) (*Wave, error)
		switch op {
		case '+':
			f = Add
		case '-':
			f = Sub
		case '*':
			f = Mul
		case '/':
			f = Div
		}
		w, err := f(a.Wave, b.Wave)
		if err != nil {
			return Value{}, err
		}
		return WaveValue(w), nil
	case a.IsWave:
		switch op {
		case '+':
			return WaveValue(a.Wave.Offset(b.Scalar)), nil
		case '-':
			return WaveValue(a.Wave.Offset(-b.Scalar)), nil
		case '*':
			return WaveValue(a.Wave.Scale(complex(b.Scalar, 0))), nil
		case '/':
			return WaveValue(a.Wave.Scale(complex(1/b.Scalar, 0))), nil
		}
	case b.IsWave:
		switch op {
		case '+':
			return WaveValue(b.Wave.Offset(a.Scalar)), nil
		case '-':
			return WaveValue(b.Wave.Scale(-1).Offset(a.Scalar)), nil
		case '*':
			return WaveValue(b.Wave.Scale(complex(a.Scalar, 0))), nil
		case '/':
			y := make([]complex128, b.Wave.Len())
			for i, v := range b.Wave.Y {
				y[i] = complex(a.Scalar, 0) / v
			}
			out := b.Wave.Clone()
			out.Y = y
			return WaveValue(out), nil
		}
	default:
		switch op {
		case '+':
			return ScalarValue(a.Scalar + b.Scalar), nil
		case '-':
			return ScalarValue(a.Scalar - b.Scalar), nil
		case '*':
			return ScalarValue(a.Scalar * b.Scalar), nil
		case '/':
			return ScalarValue(a.Scalar / b.Scalar), nil
		}
	}
	return Value{}, fmt.Errorf("wave: bad operation %q", string(op))
}
