// Package mna compiles a flattened netlist into a Modified Nodal Analysis
// system and stamps the real (DC/transient companion) and complex (AC)
// matrices. Node voltages occupy indices 0..NumNodes-1; branch currents of
// voltage-defined elements (V, E, H, L) follow. Ground is index -1 and is
// never stamped.
//
// Sign conventions follow SPICE: independent current sources push positive
// current from their first node through the source into the second;
// nonlinear device stamps are written as Newton companion models
// (conductance + equivalent current source), so a converged solution of
// the stamped linear system is a solution of the nonlinear circuit.
package mna

import (
	"fmt"
	"math"
	"math/cmplx"
	"strings"

	"acstab/internal/device"
	"acstab/internal/netlist"
	"acstab/internal/obs"
)

// Compile telemetry: how many systems this process assembled and the shape
// of the most recent one. The gauges make /statusz show what the worker is
// currently chewing on.
var (
	mCompiles      = obs.GetCounter("acstab_mna_compiles_total")
	mLastUnknowns  = obs.GetGauge("acstab_mna_last_unknowns")
	mLastNonlinear = obs.GetGauge("acstab_mna_last_nonlinear_devices")
)

// RealAdder accumulates real matrix entries.
type RealAdder interface {
	Add(i, j int, v float64)
}

// ComplexAdder accumulates complex matrix entries.
type ComplexAdder interface {
	Add(i, j int, v complex128)
}

// System is a compiled circuit ready for stamping.
type System struct {
	Ckt       *netlist.Circuit
	NodeNames []string       // index -> node name
	nodeIndex map[string]int // node name -> index
	branchOf  map[string]int // element name -> branch index (absolute)
	numNodes  int
	numBranch int

	res  []resInst
	caps []capInst
	inds []indInst
	vsrc []srcInst
	isrc []srcInst
	vcvs []ctrlInst
	vccs []ctrlInst
	cccs []ccInst
	ccvs []ccInst
	dios []diodeInst
	bjts []bjtInst
	moss []mosInst
}

type resInst struct {
	name string
	i, j int
	g    float64 // conductance at circuit temperature
}

type capInst struct {
	name string
	i, j int
	c    float64
}

type indInst struct {
	name string
	i, j int
	br   int
	l    float64
}

type srcInst struct {
	name string
	i, j int
	br   int // -1 for current sources
	src  netlist.SourceSpec
}

type ctrlInst struct {
	name         string
	i, j, ci, cj int
	br           int // branch for VCVS, -1 for VCCS
	gain         float64
}

type ccInst struct {
	name   string
	i, j   int
	br     int // own branch (CCVS) or -1 (CCCS)
	ctrlBr int // controlling source's branch
	gain   float64
}

type diodeInst struct {
	name string
	a, k int
	p    device.DiodeParams
}

type bjtInst struct {
	name    string
	c, b, e int
	p       device.BJTParams
}

type mosInst struct {
	name       string
	d, g, s, b int
	p          device.MOSParams
}

// Compile builds the MNA system from a flattened circuit. The circuit must
// contain no subcircuit calls (use netlist.Flatten first).
func Compile(c *netlist.Circuit) (*System, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	s := &System{
		Ckt:       c,
		nodeIndex: map[string]int{},
		branchOf:  map[string]int{},
	}
	node := func(name string) int {
		if netlist.IsGround(name) {
			return -1
		}
		if idx, ok := s.nodeIndex[name]; ok {
			return idx
		}
		idx := s.numNodes
		s.nodeIndex[name] = idx
		s.NodeNames = append(s.NodeNames, name)
		s.numNodes++
		return idx
	}
	// First pass: assign node indices in element order for determinism.
	for _, e := range c.Elems {
		if e.Type == netlist.Subcall {
			return nil, fmt.Errorf("mna: circuit not flattened: %q", e.Name)
		}
		for _, n := range e.Nodes {
			node(n)
		}
	}
	// Second pass: assign branch indices.
	nextBranch := func(name string) int {
		br := s.numNodes + s.numBranch
		s.branchOf[strings.ToLower(name)] = br
		s.numBranch++
		return br
	}
	for _, e := range c.Elems {
		switch e.Type {
		case netlist.VSource, netlist.VCVS, netlist.CCVS, netlist.Inductor:
			nextBranch(e.Name)
		}
	}
	// Third pass: build instances.
	for _, e := range c.Elems {
		n := make([]int, len(e.Nodes))
		for k, nm := range e.Nodes {
			n[k] = node(nm)
		}
		switch e.Type {
		case netlist.Resistor:
			r := device.ResistorAtTemp(e.Value, e.Param("tc1", 0), e.Param("tc2", 0), c.Temp)
			if r == 0 {
				return nil, fmt.Errorf("mna: zero-value resistor %q", e.Name)
			}
			s.res = append(s.res, resInst{e.Name, n[0], n[1], 1 / r})
		case netlist.Capacitor:
			s.caps = append(s.caps, capInst{e.Name, n[0], n[1], e.Value})
		case netlist.Inductor:
			s.inds = append(s.inds, indInst{e.Name, n[0], n[1], s.branchOf[e.Name], e.Value})
		case netlist.VSource:
			spec := netlist.SourceSpec{}
			if e.Src != nil {
				spec = *e.Src
			}
			s.vsrc = append(s.vsrc, srcInst{e.Name, n[0], n[1], s.branchOf[e.Name], spec})
		case netlist.ISource:
			spec := netlist.SourceSpec{}
			if e.Src != nil {
				spec = *e.Src
			}
			s.isrc = append(s.isrc, srcInst{e.Name, n[0], n[1], -1, spec})
		case netlist.VCVS:
			s.vcvs = append(s.vcvs, ctrlInst{e.Name, n[0], n[1], n[2], n[3], s.branchOf[e.Name], e.Value})
		case netlist.VCCS:
			s.vccs = append(s.vccs, ctrlInst{e.Name, n[0], n[1], n[2], n[3], -1, e.Value})
		case netlist.CCCS, netlist.CCVS:
			ctrlBr, ok := s.branchOf[strings.ToLower(e.Ctrl)]
			if !ok {
				return nil, fmt.Errorf("mna: %q: controlling source %q has no branch", e.Name, e.Ctrl)
			}
			inst := ccInst{name: e.Name, i: n[0], j: n[1], br: -1, ctrlBr: ctrlBr, gain: e.Value}
			if e.Type == netlist.CCVS {
				inst.br = s.branchOf[strings.ToLower(e.Name)]
				s.ccvs = append(s.ccvs, inst)
			} else {
				s.cccs = append(s.cccs, inst)
			}
		case netlist.Diode:
			m := c.Models[strings.ToLower(e.Model)]
			p, err := device.DiodeFromModel(m, e.Param("area", 1))
			if err != nil {
				return nil, fmt.Errorf("mna: %s: %v", e.Name, err)
			}
			s.dios = append(s.dios, diodeInst{e.Name, n[0], n[1], p})
		case netlist.BJT:
			m := c.Models[strings.ToLower(e.Model)]
			p, err := device.BJTFromModel(m, e.Param("area", 1))
			if err != nil {
				return nil, fmt.Errorf("mna: %s: %v", e.Name, err)
			}
			s.bjts = append(s.bjts, bjtInst{e.Name, n[0], n[1], n[2], p})
		case netlist.MOSFET:
			m := c.Models[strings.ToLower(e.Model)]
			p, err := device.MOSFromModel(m, e.Param("w", 0), e.Param("l", 0))
			if err != nil {
				return nil, fmt.Errorf("mna: %s: %v", e.Name, err)
			}
			s.moss = append(s.moss, mosInst{e.Name, n[0], n[1], n[2], n[3], p})
		}
	}
	if s.numNodes == 0 {
		return nil, fmt.Errorf("mna: circuit has no non-ground nodes")
	}
	mCompiles.Inc()
	mLastUnknowns.Set(float64(s.NumUnknowns()))
	mLastNonlinear.Set(float64(s.NonlinearCount()))
	return s, nil
}

// NumNodes returns the number of non-ground nodes.
func (s *System) NumNodes() int { return s.numNodes }

// NumUnknowns returns the total MNA system size.
func (s *System) NumUnknowns() int { return s.numNodes + s.numBranch }

// NodeOf returns the matrix index of the named node.
func (s *System) NodeOf(name string) (int, bool) {
	if netlist.IsGround(name) {
		return -1, true
	}
	idx, ok := s.nodeIndex[strings.ToLower(name)]
	return idx, ok
}

// BranchOf returns the branch-current index of a voltage-defined element.
func (s *System) BranchOf(elem string) (int, bool) {
	br, ok := s.branchOf[strings.ToLower(elem)]
	return br, ok
}

// SetSourceDC updates the DC value of the named independent V or I source
// in the compiled instance tables, reporting whether the source was found.
// Only the DC operating value changes — the stamp structure is untouched —
// so DC sweeps can reuse one compiled System across every sweep point
// instead of recompiling the whole circuit per point.
func (s *System) SetSourceDC(name string, v float64) bool {
	name = strings.ToLower(name)
	for i := range s.vsrc {
		if s.vsrc[i].name == name {
			s.vsrc[i].src.DC = v
			return true
		}
	}
	for i := range s.isrc {
		if s.isrc[i].name == name {
			s.isrc[i].src.DC = v
			return true
		}
	}
	return false
}

// HasBJTOrMOS reports whether the circuit contains any transistor.
func (s *System) HasBJTOrMOS() bool {
	return len(s.bjts) > 0 || len(s.moss) > 0
}

// NonlinearCount returns the number of nonlinear devices.
func (s *System) NonlinearCount() int {
	return len(s.dios) + len(s.bjts) + len(s.moss)
}

// at reads x[i] treating ground (-1) as zero volts.
func at(x []float64, i int) float64 {
	if i < 0 {
		return 0
	}
	return x[i]
}

// add2 stamps the classic two-terminal conductance pattern.
func add2(a RealAdder, i, j int, g float64) {
	if i >= 0 {
		a.Add(i, i, g)
	}
	if j >= 0 {
		a.Add(j, j, g)
	}
	if i >= 0 && j >= 0 {
		a.Add(i, j, -g)
		a.Add(j, i, -g)
	}
}

// cadd2 is the complex counterpart of add2.
func cadd2(a ComplexAdder, i, j int, g complex128) {
	if i >= 0 {
		a.Add(i, i, g)
	}
	if j >= 0 {
		a.Add(j, j, g)
	}
	if i >= 0 && j >= 0 {
		a.Add(i, j, -g)
		a.Add(j, i, -g)
	}
}

// addRHS accumulates into the RHS vector treating ground as absent.
func addRHS(b []float64, i int, v float64) {
	if i >= 0 {
		b[i] += v
	}
}

func caddRHS(b []complex128, i int, v complex128) {
	if i >= 0 {
		b[i] += v
	}
}

// acPhasor converts an AC magnitude/phase(deg) pair into a phasor.
func acPhasor(mag, phaseDeg float64) complex128 {
	if mag == 0 {
		return 0
	}
	return cmplx.Rect(mag, phaseDeg*math.Pi/180)
}
