package mna

// DCOptions tunes the DC companion assembly.
type DCOptions struct {
	Gmin     float64 // junction shunt conductance
	SrcScale float64 // 0..1 scaling of independent sources (source stepping)
	// GminToGround adds Gmin from every node to ground (gmin stepping).
	GminToGround float64
}

// StampDC assembles the Newton companion system A x = b at candidate
// solution x. The caller zeroes A and b first.
func (s *System) StampDC(a RealAdder, b []float64, x []float64, opt DCOptions) {
	scale := opt.SrcScale
	for _, r := range s.res {
		add2(a, r.i, r.j, r.g)
	}
	// Capacitors are open at DC. Inductors are shorts via their branch.
	for _, l := range s.inds {
		stampShortBranch(a, l.i, l.j, l.br)
	}
	for _, v := range s.vsrc {
		stampShortBranch(a, v.i, v.j, v.br)
		b[v.br] += v.src.DC * scale
	}
	for _, c := range s.isrc {
		i := c.src.DC * scale
		addRHS(b, c.i, -i)
		addRHS(b, c.j, i)
	}
	for _, e := range s.vcvs {
		stampShortBranch(a, e.i, e.j, e.br)
		if e.ci >= 0 {
			a.Add(e.br, e.ci, -e.gain)
		}
		if e.cj >= 0 {
			a.Add(e.br, e.cj, e.gain)
		}
	}
	for _, g := range s.vccs {
		stampVCCS(a, g.i, g.j, g.ci, g.cj, g.gain)
	}
	for _, f := range s.cccs {
		if f.i >= 0 {
			a.Add(f.i, f.ctrlBr, f.gain)
		}
		if f.j >= 0 {
			a.Add(f.j, f.ctrlBr, -f.gain)
		}
	}
	for _, h := range s.ccvs {
		stampShortBranch(a, h.i, h.j, h.br)
		a.Add(h.br, h.ctrlBr, -h.gain)
	}
	temp := s.Ckt.Temp
	for _, d := range s.dios {
		vd := at(x, d.a) - at(x, d.k)
		op := d.p.Eval(vd, temp, opt.Gmin)
		add2(a, d.a, d.k, op.Gd)
		ieq := op.Id - op.Gd*vd
		addRHS(b, d.a, -ieq)
		addRHS(b, d.k, ieq)
	}
	for _, q := range s.bjts {
		s.stampBJTDC(a, b, x, q, opt.Gmin)
	}
	for _, m := range s.moss {
		s.stampMOSDC(a, b, x, m, opt.Gmin)
	}
	if opt.GminToGround > 0 {
		for i := 0; i < s.numNodes; i++ {
			a.Add(i, i, opt.GminToGround)
		}
	}
}

// stampShortBranch stamps a voltage-defined branch v(i)-v(j) = rhs with the
// branch current appearing in both node equations.
func stampShortBranch(a RealAdder, i, j, br int) {
	if i >= 0 {
		a.Add(i, br, 1)
		a.Add(br, i, 1)
	}
	if j >= 0 {
		a.Add(j, br, -1)
		a.Add(br, j, -1)
	}
}

func stampVCCS(a RealAdder, i, j, ci, cj int, gm float64) {
	if i >= 0 && ci >= 0 {
		a.Add(i, ci, gm)
	}
	if i >= 0 && cj >= 0 {
		a.Add(i, cj, -gm)
	}
	if j >= 0 && ci >= 0 {
		a.Add(j, ci, -gm)
	}
	if j >= 0 && cj >= 0 {
		a.Add(j, cj, gm)
	}
}

// stampBJTDC stamps the Newton companion of one BJT.
func (s *System) stampBJTDC(a RealAdder, b []float64, x []float64, q bjtInst, gmin float64) {
	pol := q.p.Polarity()
	vb, vc, ve := at(x, q.b), at(x, q.c), at(x, q.e)
	vbe := pol * (vb - ve)
	vbc := pol * (vb - vc)
	op := q.p.Eval(vbe, vbc, s.Ckt.Temp, gmin)

	// Currents into terminals in the external frame.
	ic := pol * op.Ic
	ib := pol * op.Ib
	ie := -(ic + ib)

	// Jacobian in the external frame: dI_ext/dV_ext. The polarity factors
	// cancel (pol^2 = 1) for voltage derivatives.
	// dIc/d(vb,vc,ve):
	gcb := op.DIcDVbe + op.DIcDVbc
	gcc := -op.DIcDVbc
	gce := -op.DIcDVbe
	// dIb/d(vb,vc,ve):
	gbb := op.DIbDVbe + op.DIbDVbc
	gbc := -op.DIbDVbc
	gbe := -op.DIbDVbe
	// dIe = -(dIc + dIb).
	geb := -(gcb + gbb)
	gec := -(gcc + gbc)
	gee := -(gce + gbe)

	terms := [3]int{q.c, q.b, q.e}
	jac := [3][3]float64{
		{gcc, gcb, gce},
		{gbc, gbb, gbe},
		{gec, geb, gee},
	}
	cur := [3]float64{ic, ib, ie}
	volt := [3]float64{vc, vb, ve}
	for t := 0; t < 3; t++ {
		if terms[t] < 0 {
			continue
		}
		ieq := cur[t]
		for u := 0; u < 3; u++ {
			if terms[u] >= 0 {
				a.Add(terms[t], terms[u], jac[t][u])
			}
			ieq -= jac[t][u] * volt[u]
		}
		b[terms[t]] -= ieq
	}
}

// stampMOSDC stamps the Newton companion of one MOSFET.
func (s *System) stampMOSDC(a RealAdder, b []float64, x []float64, m mosInst, gmin float64) {
	pol := m.p.Polarity()
	vd, vg, vs, vb := at(x, m.d), at(x, m.g), at(x, m.s), at(x, m.b)
	// Work in the NMOS frame; swap D/S when vds < 0 so Eval sees vds >= 0.
	nd, ns := m.d, m.s
	vdd, vss := vd, vs
	if pol*(vd-vs) < 0 {
		nd, ns = m.s, m.d
		vdd, vss = vs, vd
	}
	vgs := pol * (vg - vss)
	vds := pol * (vdd - vss)
	vbs := pol * (vb - vss)
	op := m.p.Eval(vgs, vds, vbs)

	// Channel current from nd to ns in the external frame.
	id := pol * op.Id
	// Companion: I(nd->ns) = Gm*vgs + Gds*vds + Gmb*vbs + Ieq.
	// Stamp as a VCCS set between nd/ns controlled by (g,ns), (nd,ns), (b,ns).
	stampVCCS(a, nd, ns, m.g, ns, op.Gm)
	stampVCCS(a, nd, ns, nd, ns, op.Gds)
	stampVCCS(a, nd, ns, m.b, ns, op.Gmb)
	// External linear current from nd to ns under the stamps above is
	// pol*(Gm*vgs + Gds*vds + Gmb*vbs); the equivalent source carries the
	// remainder of the true current.
	ieq := id - pol*(op.Gm*vgs+op.Gds*vds+op.Gmb*vbs)
	addRHS(b, nd, -ieq)
	addRHS(b, ns, ieq)
	// A small drain-source leak keeps cutoff devices from floating nodes.
	if gmin > 0 {
		add2(a, m.d, m.s, gmin)
	}
}

// OpPoint carries a converged DC solution and the small-signal model of
// every device evaluated at it.
type OpPoint struct {
	X []float64 // node voltages then branch currents

	dio []dioSS
	bjt []bjtSS
	mos []mosSS
}

type dioSS struct {
	a, k int
	g, c float64
}

type bjtSS struct {
	c, b, e       int
	gcc, gcb, gce float64
	gbc, gbb, gbe float64
	cbe, cbc      float64
}

type mosSS struct {
	d, g, s, b    int // d/s possibly swapped to operating orientation
	gm, gds, gmb  float64
	cgs, cgd, cgb float64
}

// Linearize evaluates all devices at the converged solution x and captures
// their small-signal parameters for AC analysis.
func (s *System) Linearize(x []float64, gmin float64) *OpPoint {
	op := &OpPoint{X: append([]float64(nil), x...)}
	temp := s.Ckt.Temp
	for _, d := range s.dios {
		vd := at(x, d.a) - at(x, d.k)
		e := d.p.Eval(vd, temp, gmin)
		op.dio = append(op.dio, dioSS{d.a, d.k, e.Gd, e.Cd})
	}
	for _, q := range s.bjts {
		pol := q.p.Polarity()
		vb, vc, ve := at(x, q.b), at(x, q.c), at(x, q.e)
		e := q.p.Eval(pol*(vb-ve), pol*(vb-vc), temp, gmin)
		ss := bjtSS{c: q.c, b: q.b, e: q.e}
		ss.gcb = e.DIcDVbe + e.DIcDVbc
		ss.gcc = -e.DIcDVbc
		ss.gce = -e.DIcDVbe
		ss.gbb = e.DIbDVbe + e.DIbDVbc
		ss.gbc = -e.DIbDVbc
		ss.gbe = -e.DIbDVbe
		ss.cbe = e.Cbe
		ss.cbc = e.Cbc
		op.bjt = append(op.bjt, ss)
	}
	for _, m := range s.moss {
		pol := m.p.Polarity()
		vd, vg, vs, vb := at(x, m.d), at(x, m.g), at(x, m.s), at(x, m.b)
		nd, ns := m.d, m.s
		vdd, vss := vd, vs
		if pol*(vd-vs) < 0 {
			nd, ns = m.s, m.d
			vdd, vss = vs, vd
		}
		e := m.p.Eval(pol*(vg-vss), pol*(vdd-vss), pol*(vb-vss))
		op.mos = append(op.mos, mosSS{
			d: nd, g: m.g, s: ns, b: m.b,
			gm: e.Gm, gds: e.Gds, gmb: e.Gmb,
			cgs: e.Cgs, cgd: e.Cgd, cgb: e.Cgb,
		})
	}
	return op
}

// StampAC assembles the complex small-signal system at angular frequency
// omega using the device linearization in op. RHS excitation comes from
// the independent sources' AC specs.
func (s *System) StampAC(a ComplexAdder, b []complex128, omega float64, op *OpPoint) {
	jw := complex(0, omega)
	for _, r := range s.res {
		cadd2(a, r.i, r.j, complex(r.g, 0))
	}
	for _, c := range s.caps {
		cadd2(a, c.i, c.j, jw*complex(c.c, 0))
	}
	for _, l := range s.inds {
		cstampShortBranch(a, l.i, l.j, l.br)
		a.Add(l.br, l.br, -jw*complex(l.l, 0))
	}
	for _, v := range s.vsrc {
		cstampShortBranch(a, v.i, v.j, v.br)
		if b != nil {
			b[v.br] += acPhasor(v.src.ACMag, v.src.ACPhase)
		}
	}
	for _, c := range s.isrc {
		if b != nil {
			ph := acPhasor(c.src.ACMag, c.src.ACPhase)
			caddRHS(b, c.i, -ph)
			caddRHS(b, c.j, ph)
		}
	}
	for _, e := range s.vcvs {
		cstampShortBranch(a, e.i, e.j, e.br)
		if e.ci >= 0 {
			a.Add(e.br, e.ci, complex(-e.gain, 0))
		}
		if e.cj >= 0 {
			a.Add(e.br, e.cj, complex(e.gain, 0))
		}
	}
	for _, g := range s.vccs {
		cstampVCCS(a, g.i, g.j, g.ci, g.cj, complex(g.gain, 0))
	}
	for _, f := range s.cccs {
		if f.i >= 0 {
			a.Add(f.i, f.ctrlBr, complex(f.gain, 0))
		}
		if f.j >= 0 {
			a.Add(f.j, f.ctrlBr, complex(-f.gain, 0))
		}
	}
	for _, h := range s.ccvs {
		cstampShortBranch(a, h.i, h.j, h.br)
		a.Add(h.br, h.ctrlBr, complex(-h.gain, 0))
	}
	// Device small-signal stamps.
	for _, d := range op.dio {
		cadd2(a, d.a, d.k, complex(d.g, 0)+jw*complex(d.c, 0))
	}
	for _, q := range op.bjt {
		terms := [3]int{q.c, q.b, q.e}
		jac := [3][3]float64{
			{q.gcc, q.gcb, q.gce},
			{q.gbc, q.gbb, q.gbe},
			{-(q.gcc + q.gbc), -(q.gcb + q.gbb), -(q.gce + q.gbe)},
		}
		for t := 0; t < 3; t++ {
			if terms[t] < 0 {
				continue
			}
			for u := 0; u < 3; u++ {
				if terms[u] >= 0 {
					a.Add(terms[t], terms[u], complex(jac[t][u], 0))
				}
			}
		}
		cadd2(a, q.b, q.e, jw*complex(q.cbe, 0))
		cadd2(a, q.b, q.c, jw*complex(q.cbc, 0))
	}
	for _, m := range op.mos {
		cstampVCCS(a, m.d, m.s, m.g, m.s, complex(m.gm, 0))
		cstampVCCS(a, m.d, m.s, m.d, m.s, complex(m.gds, 0))
		cstampVCCS(a, m.d, m.s, m.b, m.s, complex(m.gmb, 0))
		cadd2(a, m.g, m.s, jw*complex(m.cgs, 0))
		cadd2(a, m.g, m.d, jw*complex(m.cgd, 0))
		cadd2(a, m.g, m.b, jw*complex(m.cgb, 0))
	}
}

func cstampShortBranch(a ComplexAdder, i, j, br int) {
	if i >= 0 {
		a.Add(i, br, 1)
		a.Add(br, i, 1)
	}
	if j >= 0 {
		a.Add(j, br, -1)
		a.Add(br, j, -1)
	}
}

func cstampVCCS(a ComplexAdder, i, j, ci, cj int, gm complex128) {
	if i >= 0 && ci >= 0 {
		a.Add(i, ci, gm)
	}
	if i >= 0 && cj >= 0 {
		a.Add(i, cj, -gm)
	}
	if j >= 0 && ci >= 0 {
		a.Add(j, ci, -gm)
	}
	if j >= 0 && cj >= 0 {
		a.Add(j, cj, gm)
	}
}

// CapEntry is a linearized capacitance between two nodes, used by the
// transient integrator's companion models.
type CapEntry struct {
	I, J int
	C    float64
}

// Capacitances returns every capacitance in the circuit linearized at op:
// explicit C elements plus device junction/Meyer capacitances.
func (s *System) Capacitances(op *OpPoint) []CapEntry {
	var out []CapEntry
	for _, c := range s.caps {
		out = append(out, CapEntry{c.i, c.j, c.c})
	}
	// Zero-valued device capacitances are included so the entry list keeps
	// a stable length and order across re-linearizations during transient.
	for _, d := range op.dio {
		out = append(out, CapEntry{d.a, d.k, d.c})
	}
	for _, q := range op.bjt {
		out = append(out, CapEntry{q.b, q.e, q.cbe})
		out = append(out, CapEntry{q.b, q.c, q.cbc})
	}
	for _, m := range op.mos {
		out = append(out, CapEntry{m.g, m.s, m.cgs})
		out = append(out, CapEntry{m.g, m.d, m.cgd})
		out = append(out, CapEntry{m.g, m.b, m.cgb})
	}
	return out
}

// Inductors returns the inductor branches for transient companion models.
func (s *System) Inductors() []struct {
	I, J, Br int
	L        float64
} {
	out := make([]struct {
		I, J, Br int
		L        float64
	}, len(s.inds))
	for k, l := range s.inds {
		out[k].I, out[k].J, out[k].Br, out[k].L = l.i, l.j, l.br, l.l
	}
	return out
}

// StampTranSources stamps time-dependent source values at time t into the
// DC-companion RHS (after StampDC was called with SrcScale=0 to suppress
// the DC values... see analysis.Tran for the exact protocol).
func (s *System) StampTranSources(b []float64, t float64) {
	for _, v := range s.vsrc {
		val := v.src.DC
		if v.src.Tran != nil {
			val = v.src.Tran.Eval(t)
		}
		b[v.br] += val
	}
	for _, c := range s.isrc {
		val := c.src.DC
		if c.src.Tran != nil {
			val = c.src.Tran.Eval(t)
		}
		addRHS(b, c.i, -val)
		addRHS(b, c.j, val)
	}
}

// MOSOpInfo describes a MOSFET's operating region for reports.
type MOSOpInfo struct {
	Name   string
	Region int
	Id     float64
	Gm     float64
}

// MOSOperatingInfo reports every MOSFET's region and small-signal data at
// solution x, useful for OP reports and debugging bias problems.
func (s *System) MOSOperatingInfo(x []float64) []MOSOpInfo {
	var out []MOSOpInfo
	for _, m := range s.moss {
		pol := m.p.Polarity()
		vd, vg, vs, vb := at(x, m.d), at(x, m.g), at(x, m.s), at(x, m.b)
		vdd, vss := vd, vs
		if pol*(vd-vs) < 0 {
			vdd, vss = vs, vd
		}
		e := m.p.Eval(pol*(vg-vss), pol*(vdd-vss), pol*(vb-vss))
		out = append(out, MOSOpInfo{m.name, e.Region, pol * e.Id, e.Gm})
	}
	return out
}
