package mna

import (
	"math"
	"math/cmplx"
	"testing"

	"acstab/internal/linalg"
	"acstab/internal/netlist"
)

func compile(t *testing.T, c *netlist.Circuit) *System {
	t.Helper()
	flat, err := netlist.Flatten(c)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := Compile(flat)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestCompileIndexing(t *testing.T) {
	c := netlist.NewCircuit("idx")
	c.AddVDC("V1", "a", "0", 1)
	c.AddR("R1", "a", "b", 1e3)
	c.AddL("L1", "b", "0", 1e-3)
	sys := compile(t, c)
	if sys.NumNodes() != 2 {
		t.Errorf("nodes = %d", sys.NumNodes())
	}
	// V and L each get a branch.
	if sys.NumUnknowns() != 4 {
		t.Errorf("unknowns = %d", sys.NumUnknowns())
	}
	if _, ok := sys.BranchOf("v1"); !ok {
		t.Error("V1 branch missing")
	}
	if _, ok := sys.BranchOf("l1"); !ok {
		t.Error("L1 branch missing")
	}
	if _, ok := sys.BranchOf("r1"); ok {
		t.Error("R1 must not have a branch")
	}
	if idx, ok := sys.NodeOf("0"); !ok || idx != -1 {
		t.Error("ground must map to -1")
	}
	if _, ok := sys.NodeOf("zz"); ok {
		t.Error("unknown node should not resolve")
	}
}

func TestCompileErrors(t *testing.T) {
	// Unflattened circuit rejected.
	c := netlist.NewCircuit("x")
	c.AddX("X1", []string{"a"}, "cell", nil)
	c.Subckts["cell"] = &netlist.Subckt{Name: "cell", Ports: []string{"p"}}
	if _, err := Compile(c); err == nil {
		t.Error("unflattened circuit should fail")
	}
	// Zero-value resistor rejected.
	c2 := netlist.NewCircuit("zr")
	c2.AddR("R1", "a", "0", 0)
	if _, err := Compile(c2); err == nil {
		t.Error("zero resistor should fail")
	}
	// Ground-only circuit rejected.
	c3 := netlist.NewCircuit("g")
	c3.AddR("R1", "0", "gnd", 1)
	if _, err := Compile(c3); err == nil {
		t.Error("no-node circuit should fail")
	}
}

// solveDC assembles and solves the linear DC system directly.
func solveDC(t *testing.T, sys *System) []float64 {
	t.Helper()
	n := sys.NumUnknowns()
	a := linalg.NewMatrix(n)
	b := make([]float64, n)
	x := make([]float64, n)
	sys.StampDC(a, b, x, DCOptions{SrcScale: 1})
	sol, err := linalg.SolveDense(a, b)
	if err != nil {
		t.Fatal(err)
	}
	return sol
}

func TestStampDCDivider(t *testing.T) {
	c := netlist.NewCircuit("div")
	c.AddVDC("V1", "a", "0", 6)
	c.AddR("R1", "a", "b", 1e3)
	c.AddR("R2", "b", "0", 2e3)
	sys := compile(t, c)
	x := solveDC(t, sys)
	ib, _ := sys.NodeOf("b")
	if math.Abs(x[ib]-4) > 1e-12 {
		t.Errorf("v(b) = %g, want 4", x[ib])
	}
	br, _ := sys.BranchOf("v1")
	if math.Abs(x[br]-(-2e-3)) > 1e-12 {
		t.Errorf("i(V1) = %g, want -2mA", x[br])
	}
}

func TestStampDCInductorShort(t *testing.T) {
	c := netlist.NewCircuit("rl")
	c.AddVDC("V1", "a", "0", 1)
	c.AddR("R1", "a", "b", 1e3)
	c.AddL("L1", "b", "0", 1)
	sys := compile(t, c)
	x := solveDC(t, sys)
	ib, _ := sys.NodeOf("b")
	if math.Abs(x[ib]) > 1e-12 {
		t.Errorf("inductor must be a DC short: v(b) = %g", x[ib])
	}
	br, _ := sys.BranchOf("l1")
	if math.Abs(x[br]-1e-3) > 1e-12 {
		t.Errorf("i(L1) = %g, want 1mA", x[br])
	}
}

func TestStampDCSourceScale(t *testing.T) {
	c := netlist.NewCircuit("scale")
	c.AddVDC("V1", "a", "0", 10)
	c.AddR("R1", "a", "0", 1e3)
	sys := compile(t, c)
	n := sys.NumUnknowns()
	a := linalg.NewMatrix(n)
	b := make([]float64, n)
	sys.StampDC(a, b, make([]float64, n), DCOptions{SrcScale: 0.5})
	x, err := linalg.SolveDense(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ia, _ := sys.NodeOf("a")
	if math.Abs(x[ia]-5) > 1e-12 {
		t.Errorf("half-scale source: v(a) = %g, want 5", x[ia])
	}
}

func TestStampACCapacitor(t *testing.T) {
	// Series R-C driven by AC source: check phasor solution.
	c := netlist.NewCircuit("rc")
	c.AddV("V1", "a", "0", netlist.SourceSpec{ACMag: 1})
	c.AddR("R1", "a", "b", 1e3)
	c.AddC("C1", "b", "0", 1e-6)
	sys := compile(t, c)
	n := sys.NumUnknowns()
	op := sys.Linearize(make([]float64, n), 0)
	m := linalg.NewCMatrix(n)
	b := make([]complex128, n)
	omega := 1000.0 // 1/(RC) = 1000 rad/s
	sys.StampAC(m, b, omega, op)
	x, err := linalg.CSolveDense(m, b)
	if err != nil {
		t.Fatal(err)
	}
	ib, _ := sys.NodeOf("b")
	// |H| = 1/sqrt(2) at omega = 1/RC.
	if math.Abs(cmplx.Abs(x[ib])-1/math.Sqrt2) > 1e-9 {
		t.Errorf("|v(b)| = %g", cmplx.Abs(x[ib]))
	}
}

func TestStampACPhasorSource(t *testing.T) {
	c := netlist.NewCircuit("ph")
	c.AddV("V1", "a", "0", netlist.SourceSpec{ACMag: 2, ACPhase: 90})
	c.AddR("R1", "a", "0", 1e3)
	sys := compile(t, c)
	n := sys.NumUnknowns()
	op := sys.Linearize(make([]float64, n), 0)
	m := linalg.NewCMatrix(n)
	b := make([]complex128, n)
	sys.StampAC(m, b, 1e3, op)
	x, err := linalg.CSolveDense(m, b)
	if err != nil {
		t.Fatal(err)
	}
	ia, _ := sys.NodeOf("a")
	if cmplx.Abs(x[ia]-complex(0, 2)) > 1e-12 {
		t.Errorf("v(a) = %v, want 2j", x[ia])
	}
}

func TestLinearizeBJTConsistency(t *testing.T) {
	// The AC stamp at omega=0 must equal the DC Jacobian around the OP:
	// perturb the base voltage and compare the predicted collector-current
	// change against a finite difference of the companion model.
	c := netlist.NewCircuit("bjt")
	c.AddVDC("VC", "c", "0", 3)
	c.AddVDC("VB", "b", "0", 0.65)
	c.AddQ("Q1", "c", "b", "0", "qn")
	c.SetModel("qn", "npn", map[string]float64{"is": 1e-15, "bf": 100, "vaf": 50})
	sys := compile(t, c)
	n := sys.NumUnknowns()

	// Solve DC by fixed-point: the sources pin both nodes, so one stamp
	// evaluated at the pinned voltages is exact.
	x := make([]float64, n)
	ibIdx, _ := sys.NodeOf("b")
	icIdx, _ := sys.NodeOf("c")
	x[ibIdx] = 0.65
	x[icIdx] = 3
	op := sys.Linearize(x, 0)

	// AC gain at low frequency: d i(VC) / d v(VB) should equal gm.
	m := linalg.NewCMatrix(n)
	bb := make([]complex128, n)
	sys.StampAC(m, bb, 1e-3, op)
	// Excite VB with 1V AC: set its RHS.
	// VB is an ideal source with no AC spec, so emulate: solve with branch
	// rhs on VB's row.
	brB, _ := sys.BranchOf("vb")
	brC, _ := sys.BranchOf("vc")
	bb[brB] = 1
	sol, err := linalg.CSolveDense(m, bb)
	if err != nil {
		t.Fatal(err)
	}
	// Branch current of VC is the collector small-signal current (into +).
	gmEff := cmplx.Abs(sol[brC])
	// Expected gm ~ Ic/vt with Ic = IS*exp(0.65/vt)*(1+vcb/vaf).
	vt := 0.025852
	ic := 1e-15 * math.Exp(0.65/vt) * (1 + (3-0.65)/50)
	if math.Abs(gmEff-ic/vt) > 0.05*ic/vt {
		t.Errorf("gm from AC = %g, want ~%g", gmEff, ic/vt)
	}
}

func TestCapacitancesStableOrder(t *testing.T) {
	c := netlist.NewCircuit("caps")
	c.AddVDC("V1", "a", "0", 1)
	c.AddC("C1", "a", "0", 1e-12)
	c.AddD("D1", "a", "0", "dm")
	c.SetModel("dm", "d", map[string]float64{"is": 1e-14, "cjo": 1e-12})
	sys := compile(t, c)
	n := sys.NumUnknowns()
	x := make([]float64, n)
	op1 := sys.Linearize(x, 0)
	x2 := make([]float64, n)
	ia, _ := sys.NodeOf("a")
	x2[ia] = 0.6
	op2 := sys.Linearize(x2, 0)
	c1 := sys.Capacitances(op1)
	c2 := sys.Capacitances(op2)
	if len(c1) != len(c2) {
		t.Fatalf("cap list length changed: %d vs %d", len(c1), len(c2))
	}
	for i := range c1 {
		if c1[i].I != c2[i].I || c1[i].J != c2[i].J {
			t.Errorf("cap %d moved", i)
		}
	}
	// Diode cap must change with bias.
	if c1[1].C == c2[1].C {
		t.Error("junction capacitance should be bias dependent")
	}
}

func TestMOSOperatingInfo(t *testing.T) {
	c := netlist.NewCircuit("m")
	c.AddVDC("VD", "d", "0", 2)
	c.AddVDC("VG", "g", "0", 1.5)
	c.AddM("M1", "d", "g", "0", "0", "nch", 10e-6, 1e-6)
	c.SetModel("nch", "nmos", map[string]float64{"vto": 0.7, "kp": 100e-6})
	sys := compile(t, c)
	n := sys.NumUnknowns()
	x := make([]float64, n)
	id, _ := sys.NodeOf("d")
	ig, _ := sys.NodeOf("g")
	x[id], x[ig] = 2, 1.5
	info := sys.MOSOperatingInfo(x)
	if len(info) != 1 || info[0].Region != 2 {
		t.Errorf("info = %+v", info)
	}
	want := 0.5 * 100e-6 * 10 * 0.8 * 0.8
	if math.Abs(info[0].Id-want) > 1e-9 {
		t.Errorf("Id = %g, want %g", info[0].Id, want)
	}
}

// newtonSolve runs a tiny Newton loop directly against the stamps, for
// covering the nonlinear stamping paths without the analysis package.
func newtonSolve(t *testing.T, sys *System, iters int) []float64 {
	t.Helper()
	n := sys.NumUnknowns()
	x := make([]float64, n)
	for it := 0; it < iters; it++ {
		a := linalg.NewMatrix(n)
		b := make([]float64, n)
		sys.StampDC(a, b, x, DCOptions{Gmin: 1e-12, SrcScale: 1})
		xn, err := linalg.SolveDense(a, b)
		if err != nil {
			t.Fatal(err)
		}
		// Damp towards the solution to keep junctions sane.
		for i := range x {
			dv := xn[i] - x[i]
			if dv > 0.5 {
				dv = 0.5
			}
			if dv < -0.5 {
				dv = -0.5
			}
			x[i] += dv
		}
	}
	return x
}

func TestStampBJTNewtonDirect(t *testing.T) {
	c := netlist.NewCircuit("bjt direct")
	c.AddVDC("VCC", "vcc", "0", 5)
	c.AddR("RC", "vcc", "c", 10e3)
	c.AddVDC("VB", "b", "0", 0.65)
	c.AddQ("Q1", "c", "b", "0", "qn")
	c.SetModel("qn", "npn", map[string]float64{"is": 1e-15, "bf": 100})
	sys := compile(t, c)
	x := newtonSolve(t, sys, 80)
	ic, _ := sys.NodeOf("c")
	vcc, _ := sys.NodeOf("vcc")
	if x[vcc] != 5 {
		t.Fatalf("vcc = %g", x[vcc])
	}
	// Collector pulled down by conduction but not saturated to 0.
	if x[ic] >= 5 || x[ic] < 0.05 {
		t.Errorf("v(c) = %g", x[ic])
	}
	if !sys.HasBJTOrMOS() || sys.NonlinearCount() != 1 {
		t.Error("device bookkeeping wrong")
	}
}

func TestStampMOSNewtonDirect(t *testing.T) {
	c := netlist.NewCircuit("mos direct")
	c.AddVDC("VDD", "vdd", "0", 3)
	c.AddVDC("VG", "g", "0", 1.5)
	c.AddR("RD", "vdd", "d", 10e3)
	c.AddM("M1", "d", "g", "0", "0", "nch", 10e-6, 1e-6)
	c.SetModel("nch", "nmos", map[string]float64{"vto": 0.7, "kp": 100e-6})
	sys := compile(t, c)
	x := newtonSolve(t, sys, 60)
	id, _ := sys.NodeOf("d")
	// Id = 0.5*1e-3*(0.8)^2 = 320uA -> v(d) = 3 - 3.2 -> triode; Newton
	// settles somewhere between 0 and 3 with the device conducting.
	if x[id] <= 0.01 || x[id] >= 2.9 {
		t.Errorf("v(d) = %g", x[id])
	}
}

func TestStampDiodeNewtonDirect(t *testing.T) {
	c := netlist.NewCircuit("diode direct")
	c.AddVDC("V1", "a", "0", 2)
	c.AddR("R1", "a", "d", 1e3)
	c.AddD("D1", "d", "0", "dm")
	c.SetModel("dm", "d", map[string]float64{"is": 1e-14})
	sys := compile(t, c)
	x := newtonSolve(t, sys, 80)
	id, _ := sys.NodeOf("d")
	if x[id] < 0.5 || x[id] > 0.8 {
		t.Errorf("vd = %g, want ~0.65", x[id])
	}
}

func TestStampCCCSAndCCVS(t *testing.T) {
	c := netlist.NewCircuit("cc")
	c.AddVDC("V1", "in", "0", 1)
	c.AddR("R1", "in", "0", 1e3) // i(V1) = -1mA
	c.AddF("F1", "f", "0", "V1", 2)
	c.AddR("RF", "f", "0", 1e3)
	c.AddH("H1", "h", "0", "V1", 5e3)
	c.AddR("RH", "h", "0", 1e3)
	sys := compile(t, c)
	x := solveDC(t, sys)
	fi, _ := sys.NodeOf("f")
	hi, _ := sys.NodeOf("h")
	// F: current 2*i(V1) = -2mA from f through source to ground: v(f) = 2V.
	if math.Abs(x[fi]-2) > 1e-9 {
		t.Errorf("v(f) = %g, want 2", x[fi])
	}
	// H: v(h) = 5k * i(V1) = -5V.
	if math.Abs(x[hi]-(-5)) > 1e-9 {
		t.Errorf("v(h) = %g, want -5", x[hi])
	}
}

func TestStampACControlledSourcesAndDevices(t *testing.T) {
	// Cover AC stamps for E, F, H, diode, BJT, and MOSFET in one netlist.
	c := netlist.NewCircuit("ac all")
	c.AddV("V1", "in", "0", netlist.SourceSpec{DC: 1, ACMag: 1})
	c.AddR("R1", "in", "0", 1e3)
	c.AddE("E1", "e", "0", "in", "0", 3)
	c.AddR("RE", "e", "0", 1e3)
	c.AddF("F1", "f", "0", "V1", 2)
	c.AddR("RF", "f", "0", 1e3)
	c.AddH("H1", "h", "0", "V1", 1e3)
	c.AddR("RH", "h", "0", 1e3)
	c.AddD("D1", "in", "dk", "dm")
	c.AddR("RD", "dk", "0", 1e3)
	c.AddQ("Q1", "qc", "in", "0", "qn")
	c.AddR("RQ", "qc", "0", 1e3)
	c.AddM("M1", "md", "in", "0", "0", "nch", 10e-6, 1e-6)
	c.AddR("RM", "md", "0", 1e3)
	c.SetModel("dm", "d", map[string]float64{"is": 1e-14, "cjo": 1e-12})
	c.SetModel("qn", "npn", map[string]float64{"is": 1e-15, "bf": 100, "cje": 1e-12, "cjc": 0.5e-12})
	c.SetModel("nch", "nmos", map[string]float64{"vto": 0.7, "kp": 1e-4, "cgso": 1e-10, "cgdo": 1e-10, "tox": 2e-8})
	sys := compile(t, c)
	x := newtonSolve(t, sys, 60)
	op := sys.Linearize(x, 1e-12)
	n := sys.NumUnknowns()
	m := linalg.NewCMatrix(n)
	b := make([]complex128, n)
	sys.StampAC(m, b, 2*math.Pi*1e6, op)
	sol, err := linalg.CSolveDense(m, b)
	if err != nil {
		t.Fatal(err)
	}
	ei, _ := sys.NodeOf("e")
	if cmplx.Abs(sol[ei]-3) > 1e-9 {
		t.Errorf("AC VCVS: v(e) = %v, want 3", sol[ei])
	}
	// Capacitance list includes every device cap with stable order.
	caps := sys.Capacitances(op)
	if len(caps) < 6 {
		t.Errorf("caps = %d, want >= 6", len(caps))
	}
	// Inductors list is empty here.
	if len(sys.Inductors()) != 0 {
		t.Error("no inductors expected")
	}
}

func TestStampTranSources(t *testing.T) {
	c := netlist.NewCircuit("tran src")
	c.AddV("V1", "a", "0", netlist.SourceSpec{
		DC:   7,
		Tran: netlist.PulseFunc{V1: 0, V2: 1, TR: 1e-9, TF: 1e-9, PW: 1, PER: 2},
	})
	c.AddI("I1", "0", "b", netlist.SourceSpec{DC: 3e-3})
	c.AddR("R1", "a", "0", 1e3)
	c.AddR("R2", "b", "0", 1e3)
	sys := compile(t, c)
	n := sys.NumUnknowns()
	b := make([]float64, n)
	sys.StampTranSources(b, 0.5) // mid-pulse
	br, _ := sys.BranchOf("v1")
	if b[br] != 1 {
		t.Errorf("pulse value = %g, want 1 (high)", b[br])
	}
	ib, _ := sys.NodeOf("b")
	// I source without Tran uses DC: 3mA into b.
	if math.Abs(b[ib]-3e-3) > 1e-15 {
		t.Errorf("b rhs = %g", b[ib])
	}
}

func TestStampPNPAndPMOSDirect(t *testing.T) {
	c := netlist.NewCircuit("pnp pmos")
	c.AddVDC("VCC", "vcc", "0", 5)
	c.AddR("RB", "pb", "0", 100e3)
	c.AddQ("Q1", "qc", "pb", "vcc", "qp")
	c.AddR("RQ", "qc", "0", 10e3)
	c.AddM("M1", "md", "mg", "vcc", "vcc", "pch", 10e-6, 1e-6)
	c.AddVDC("VG", "mg", "0", 3.5) // VSG = 1.5
	c.AddR("RM", "md", "0", 10e3)
	c.SetModel("qp", "pnp", map[string]float64{"is": 1e-15, "bf": 50})
	c.SetModel("pch", "pmos", map[string]float64{"vto": -0.8, "kp": 5e-5})
	sys := compile(t, c)
	x := newtonSolve(t, sys, 80)
	md, _ := sys.NodeOf("md")
	// PMOS: Id = 0.5*50u*10*(0.7)^2 = 122uA -> v(md) ~ 1.2 (saturated).
	if x[md] < 0.5 || x[md] > 2.5 {
		t.Errorf("v(md) = %g", x[md])
	}
	qc, _ := sys.NodeOf("qc")
	// PNP conducts: collector pulled up from ground.
	if x[qc] <= 0.1 {
		t.Errorf("v(qc) = %g, PNP should conduct", x[qc])
	}
}

func TestSetSourceDC(t *testing.T) {
	c := netlist.NewCircuit("set dc")
	c.AddVDC("V1", "a", "0", 1)
	c.AddI("I1", "0", "b", netlist.SourceSpec{DC: 1e-3})
	c.AddR("R1", "a", "b", 1e3)
	c.AddR("R2", "b", "0", 1e3)
	sys, err := Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	if !sys.SetSourceDC("V1", 2) {
		t.Error("V1 not found")
	}
	if !sys.SetSourceDC("i1", 2e-3) {
		t.Error("I1 not found (case-insensitive lookup)")
	}
	if sys.SetSourceDC("R1", 1) {
		t.Error("resistor accepted as source")
	}
	if sys.SetSourceDC("nosuch", 1) {
		t.Error("unknown element accepted")
	}
	// The updated values must flow into the DC stamp: solve the 2x2
	// resistive system and check superposition of both updated sources.
	n := sys.NumUnknowns()
	a := linalg.NewMatrix(n)
	b := make([]float64, n)
	x := make([]float64, n)
	sys.StampDC(a, b, x, DCOptions{SrcScale: 1})
	got, err := linalg.SolveDense(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ia, _ := sys.NodeOf("a")
	ib, _ := sys.NodeOf("b")
	if math.Abs(got[ia]-2) > 1e-9 {
		t.Errorf("v(a) = %g, want 2", got[ia])
	}
	// v(b): source 2V through 1k into 1k||(2mA injection): node equation
	// gives v(b) = (2/1e3 + 2e-3) / (1/1e3 + 1/1e3) = 2.
	if math.Abs(got[ib]-2) > 1e-9 {
		t.Errorf("v(b) = %g, want 2", got[ib])
	}
}
