// Package report renders the outputs of the stability tool: the sorted
// all-nodes text report (the paper's Table 2 format, including the
// "special cases" notices), CSV and JSON exports, netlist annotation (the
// schematic-annotation substitute for Fig. 5), and the diagnostic report
// file that stands in for the tool's auto-generated support e-mails.
package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"acstab/internal/netlist"
	"acstab/internal/stab"
	"acstab/internal/tool"
)

// Text writes the all-nodes report in the paper's Table 2 layout: loops
// sorted by natural frequency, nodes within each loop, stability peak
// magnitude and natural frequency per node, with special-case notices and
// the loop-level damping/phase-margin/overshoot estimate.
func Text(w io.Writer, rep *tool.Report) error {
	fmt.Fprintf(w, "AC-Stability All-Nodes Report\n")
	fmt.Fprintf(w, "circuit: %s\n", rep.CircuitTitle)
	fmt.Fprintf(w, "temperature: %g C, sweep %s .. %s, %d pts/dec\n",
		rep.Temp, hz(rep.Options.FStart), hz(rep.Options.FStop), rep.Options.PointsPerDecade)
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-12s %-14s %-18s %s\n", "Node", "Stability Peak", "Natural Frequency", "Notes")
	fmt.Fprintln(w, strings.Repeat("-", 64))

	inLoop := map[string]bool{}
	for _, l := range rep.Loops {
		fmt.Fprintf(w, "Loop at %s   (zeta %.2f, phase margin %.0f deg, overshoot %.0f%%)\n",
			hz(l.Freq), l.Zeta, l.PhaseMarginDeg, l.OvershootPct)
		for _, np := range l.Nodes {
			inLoop[np.Node] = true
			fmt.Fprintf(w, "%-12s %-14.6f %-18s %s\n",
				np.Node, math.Abs(np.Peak.Value), sci(np.Peak.Freq), notice(np.Peak))
		}
	}
	// Nodes without a resonant peak or skipped.
	var rest []tool.NodeResult
	for _, n := range rep.Nodes {
		if !inLoop[n.Node] {
			rest = append(rest, n)
		}
	}
	if len(rest) > 0 {
		fmt.Fprintln(w, "Nodes without resonant peaks")
		for _, n := range rest {
			switch {
			case n.Skipped:
				fmt.Fprintf(w, "%-12s %-14s %-18s skipped: %s\n", n.Node, "-", "-", n.SkipReason)
			case n.Best == nil:
				fmt.Fprintf(w, "%-12s %-14s %-18s no negative peak\n", n.Node, "-", "-")
			default:
				fmt.Fprintf(w, "%-12s %-14.6f %-18s %s\n",
					n.Node, math.Abs(n.Best.Value), sci(n.Best.Freq), notice(*n.Best))
			}
		}
	}
	return nil
}

// notice renders the special-case annotation of a peak, mirroring the
// "end-of-range" and "min/max" notices of the original tool.
func notice(p stab.Peak) string {
	switch p.Type {
	case stab.PeakEndOfRange:
		return "notice: end-of-range peak"
	case stab.PeakMinMax:
		return "notice: min/max peak (no resonance)"
	}
	return ""
}

// sci formats a frequency like the paper's Table 2 ("3.16E+06").
func sci(f float64) string {
	return strings.ToUpper(strconv.FormatFloat(f, 'E', 2, 64))
}

// hz formats a frequency with engineering units for headers.
func hz(f float64) string {
	switch {
	case f >= 1e9:
		return fmt.Sprintf("%.3g GHz", f/1e9)
	case f >= 1e6:
		return fmt.Sprintf("%.3g MHz", f/1e6)
	case f >= 1e3:
		return fmt.Sprintf("%.3g kHz", f/1e3)
	}
	return fmt.Sprintf("%.3g Hz", f)
}

// CSV writes one row per node with loop assignment.
func CSV(w io.Writer, rep *tool.Report) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{
		"node", "loop_id", "loop_freq_hz", "peak", "natural_freq_hz",
		"zeta", "phase_margin_deg", "overshoot_pct", "peak_type", "skipped",
	}); err != nil {
		return err
	}
	loopOf := map[string]*stab.Loop{}
	for i := range rep.Loops {
		for _, np := range rep.Loops[i].Nodes {
			loopOf[np.Node] = &rep.Loops[i]
		}
	}
	for _, n := range rep.Nodes {
		row := []string{n.Node, "", "", "", "", "", "", "", "", strconv.FormatBool(n.Skipped)}
		if l := loopOf[n.Node]; l != nil {
			row[1] = strconv.Itoa(l.ID)
			row[2] = fmt.Sprintf("%g", l.Freq)
		}
		if n.Best != nil {
			row[3] = fmt.Sprintf("%g", n.Best.Value)
			row[4] = fmt.Sprintf("%g", n.Best.Freq)
			if !math.IsNaN(n.Best.Zeta) {
				row[5] = fmt.Sprintf("%g", n.Best.Zeta)
				row[6] = fmt.Sprintf("%g", n.Best.PhaseMarginDeg)
				row[7] = fmt.Sprintf("%g", n.Best.OvershootPct)
			}
			row[8] = n.Best.Type.String()
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	return cw.Error()
}

// jsonPeak is the JSON shape of a peak.
type jsonPeak struct {
	FreqHz         float64 `json:"freq_hz"`
	Value          float64 `json:"value"`
	Type           string  `json:"type"`
	IsZero         bool    `json:"is_zero"`
	Zeta           float64 `json:"zeta,omitempty"`
	PhaseMarginDeg float64 `json:"phase_margin_deg,omitempty"`
	OvershootPct   float64 `json:"overshoot_pct,omitempty"`
}

type jsonNode struct {
	Node       string     `json:"node"`
	Skipped    bool       `json:"skipped,omitempty"`
	SkipReason string     `json:"skip_reason,omitempty"`
	Best       *jsonPeak  `json:"best,omitempty"`
	Peaks      []jsonPeak `json:"peaks,omitempty"`
}

type jsonLoop struct {
	ID             int      `json:"id"`
	FreqHz         float64  `json:"freq_hz"`
	WorstPeak      float64  `json:"worst_peak"`
	Zeta           float64  `json:"zeta"`
	PhaseMarginDeg float64  `json:"phase_margin_deg"`
	OvershootPct   float64  `json:"overshoot_pct"`
	Nodes          []string `json:"nodes"`
}

type jsonReport struct {
	Circuit string     `json:"circuit"`
	TempC   float64    `json:"temp_c"`
	Loops   []jsonLoop `json:"loops"`
	Nodes   []jsonNode `json:"nodes"`
}

// JSON writes the report as a machine-readable document.
func JSON(w io.Writer, rep *tool.Report) error {
	out := jsonReport{Circuit: rep.CircuitTitle, TempC: rep.Temp}
	for _, l := range rep.Loops {
		jl := jsonLoop{
			ID: l.ID, FreqHz: l.Freq, WorstPeak: l.WorstPeak,
			Zeta: l.Zeta, PhaseMarginDeg: l.PhaseMarginDeg, OvershootPct: l.OvershootPct,
		}
		for _, np := range l.Nodes {
			jl.Nodes = append(jl.Nodes, np.Node)
		}
		out.Loops = append(out.Loops, jl)
	}
	for _, n := range rep.Nodes {
		jn := jsonNode{Node: n.Node, Skipped: n.Skipped, SkipReason: n.SkipReason}
		if n.Best != nil {
			jn.Best = toJSONPeak(*n.Best)
		}
		if n.Stab != nil {
			for _, p := range n.Stab.Peaks {
				jn.Peaks = append(jn.Peaks, *toJSONPeak(p))
			}
		}
		out.Nodes = append(out.Nodes, jn)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func toJSONPeak(p stab.Peak) *jsonPeak {
	jp := &jsonPeak{FreqHz: p.Freq, Value: p.Value, Type: p.Type.String(), IsZero: p.IsZero}
	if !math.IsNaN(p.Zeta) {
		jp.Zeta = p.Zeta
		jp.PhaseMarginDeg = p.PhaseMarginDeg
		jp.OvershootPct = p.OvershootPct
	}
	return jp
}

// fromJSONPeak inverts toJSONPeak. The damping trio is omitted from the
// wire when it is NaN (zero peaks, paper footnote 2); a genuine zeta of
// exactly 0 cannot occur for a finite peak value (depth is -1/zeta², so
// zeta→0 means an infinite peak, and a zero zeta would print a 100%
// overshoot, not 0), so an all-zero trio decodes back to NaN.
func fromJSONPeak(jp jsonPeak) (stab.Peak, error) {
	typ, err := stab.ParsePeakType(jp.Type)
	if err != nil {
		return stab.Peak{}, err
	}
	p := stab.Peak{
		Freq: jp.FreqHz, Value: jp.Value, Type: typ, IsZero: jp.IsZero,
		Zeta: jp.Zeta, PhaseMarginDeg: jp.PhaseMarginDeg, OvershootPct: jp.OvershootPct,
	}
	if jp.Zeta == 0 && jp.PhaseMarginDeg == 0 && jp.OvershootPct == 0 {
		p.Zeta, p.PhaseMarginDeg, p.OvershootPct = math.NaN(), math.NaN(), math.NaN()
	}
	return p, nil
}

// ParseJSON reads a report previously written by JSON back into a
// tool.Report — the shard coordinator's merge input: each worker answers
// its node-range shard in `format: "json"` and the coordinator
// reconstructs the partial reports before re-clustering the union of
// peaks. Waveforms (per-node impedance and stability plots) are not part
// of the JSON schema, so the parsed report carries peaks and loop
// structure only — exactly what the text, CSV, JSON, and annotate
// renderers consume. Loop membership is rebuilt by joining the loop's
// node names against the nodes' dominant peaks; float values round-trip
// exactly (encoding/json emits shortest-round-trip representations).
func ParseJSON(r io.Reader) (*tool.Report, error) {
	var in jsonReport
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("report: parse json: %w", err)
	}
	rep := &tool.Report{CircuitTitle: in.Circuit, Temp: in.TempC}
	best := map[string]*stab.Peak{}
	for _, jn := range in.Nodes {
		nr := tool.NodeResult{Node: jn.Node, Skipped: jn.Skipped, SkipReason: jn.SkipReason}
		if jn.Best != nil {
			p, err := fromJSONPeak(*jn.Best)
			if err != nil {
				return nil, fmt.Errorf("report: node %s: %w", jn.Node, err)
			}
			nr.Best = &p
			best[jn.Node] = &p
		}
		if len(jn.Peaks) > 0 {
			res := &stab.Result{}
			for _, jp := range jn.Peaks {
				p, err := fromJSONPeak(jp)
				if err != nil {
					return nil, fmt.Errorf("report: node %s: %w", jn.Node, err)
				}
				res.Peaks = append(res.Peaks, p)
			}
			nr.Stab = res
		}
		rep.Nodes = append(rep.Nodes, nr)
	}
	for _, jl := range in.Loops {
		l := stab.Loop{
			ID: jl.ID, Freq: jl.FreqHz, WorstPeak: jl.WorstPeak,
			Zeta: jl.Zeta, PhaseMarginDeg: jl.PhaseMarginDeg, OvershootPct: jl.OvershootPct,
		}
		for _, name := range jl.Nodes {
			p, ok := best[name]
			if !ok {
				return nil, fmt.Errorf("report: loop %d references node %q with no dominant peak", jl.ID, name)
			}
			l.Nodes = append(l.Nodes, stab.NodePeak{Node: name, Peak: *p})
		}
		rep.Loops = append(rep.Loops, l)
	}
	return rep, nil
}

// Annotate writes the flattened netlist with per-node stability results as
// comments next to each element — the text substitute for annotating
// results onto the schematic (paper Fig. 5).
func Annotate(w io.Writer, ckt *netlist.Circuit, rep *tool.Report) error {
	best := map[string]*stab.Peak{}
	for i := range rep.Nodes {
		n := &rep.Nodes[i]
		if n.Best != nil {
			best[n.Node] = n.Best
		}
	}
	fmt.Fprintf(w, "* %s\n", ckt.Title)
	fmt.Fprintf(w, "* annotated with stability peaks (|peak| @ natural frequency)\n")
	seen := map[string]bool{}
	var nodes []string
	for _, e := range ckt.Elems {
		for _, n := range e.Nodes {
			if !seen[n] && !netlist.IsGround(n) {
				seen[n] = true
				nodes = append(nodes, n)
			}
		}
	}
	sort.Strings(nodes)
	for _, n := range nodes {
		if p, ok := best[n]; ok {
			fmt.Fprintf(w, "* node %-12s peak %8.3f @ %s %s\n",
				n, math.Abs(p.Value), sci(p.Freq), notice(*p))
		} else {
			fmt.Fprintf(w, "* node %-12s (no resonant peak)\n", n)
		}
	}
	fmt.Fprintln(w, "*")
	fmt.Fprint(w, netlist.Format(ckt))
	return nil
}

// Diagnostic writes a support-report file describing a failed (or
// successful) run — the offline substitute for the original tool's
// automatic error-reporting e-mails.
func Diagnostic(w io.Writer, circuitTitle string, opts tool.Options, runErr error) error {
	fmt.Fprintln(w, "acstab diagnostic report")
	fmt.Fprintf(w, "circuit: %s\n", circuitTitle)
	fmt.Fprintf(w, "sweep: %s .. %s, %d pts/dec, workers=%d naive=%v\n",
		hz(opts.FStart), hz(opts.FStop), opts.PointsPerDecade, opts.Workers, opts.Naive)
	if runErr != nil {
		fmt.Fprintf(w, "status: FAILED\nerror: %v\n", runErr)
	} else {
		fmt.Fprintln(w, "status: ok")
	}
	fmt.Fprintln(w, "attach this file when reporting tool issues.")
	return nil
}
