package report

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"acstab/internal/circuits"
	"acstab/internal/tool"
)

func table2Report(t *testing.T) (*tool.Tool, *tool.Report) {
	t.Helper()
	tl, err := tool.New(circuits.FullCircuit(), tool.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := tl.AllNodes(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return tl, rep
}

func TestTextReportShape(t *testing.T) {
	_, rep := table2Report(t)
	var buf bytes.Buffer
	if err := Text(&buf, rep); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Loop headers sorted by frequency with the main loop first.
	first := strings.Index(out, "Loop at ")
	if first < 0 {
		t.Fatal("no loop headers")
	}
	for _, want := range []string{"output", "net052", "net136", "net138", "net99",
		"net81", "net056", "net013", "net75", "net066"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing node %s", want)
		}
	}
	if !strings.Contains(out, "phase margin") {
		t.Error("report missing phase margin estimate")
	}
	// The paper's E-notation frequencies.
	if !strings.Contains(out, "E+06") {
		t.Errorf("frequencies not in E notation:\n%s", out)
	}
	t.Logf("\n%s", out)
}

func TestTextReportNotices(t *testing.T) {
	// net17/net16 style shallow peaks must carry the min/max notice
	// somewhere in the bias report.
	tl, err := tool.New(circuits.BiasCircuit(circuits.BiasDefaults()), tool.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := tl.AllNodes(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Text(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "notice:") {
		t.Errorf("expected special-case notices in:\n%s", buf.String())
	}
}

func TestCSVReport(t *testing.T) {
	_, rep := table2Report(t)
	var buf bytes.Buffer
	if err := CSV(&buf, rep); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(rep.Nodes)+1 {
		t.Errorf("rows = %d, want %d", len(rows), len(rep.Nodes)+1)
	}
	if rows[0][0] != "node" || len(rows[0]) != 10 {
		t.Errorf("header = %v", rows[0])
	}
	// Find the output row: it must carry a loop id and negative peak.
	found := false
	for _, r := range rows[1:] {
		if r[0] == "output" {
			found = true
			if r[1] == "" || !strings.HasPrefix(r[3], "-") {
				t.Errorf("output row = %v", r)
			}
		}
	}
	if !found {
		t.Error("output row missing")
	}
}

func TestJSONReport(t *testing.T) {
	_, rep := table2Report(t)
	var buf bytes.Buffer
	if err := JSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Circuit string `json:"circuit"`
		Loops   []struct {
			FreqHz float64  `json:"freq_hz"`
			Nodes  []string `json:"nodes"`
		} `json:"loops"`
		Nodes []struct {
			Node string `json:"node"`
		} `json:"nodes"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("bad json: %v", err)
	}
	if len(doc.Loops) < 2 || len(doc.Nodes) == 0 {
		t.Errorf("loops=%d nodes=%d", len(doc.Loops), len(doc.Nodes))
	}
	if doc.Loops[0].FreqHz > doc.Loops[len(doc.Loops)-1].FreqHz {
		t.Error("loops not sorted")
	}
}

func TestAnnotate(t *testing.T) {
	tl, rep := table2Report(t)
	var buf bytes.Buffer
	if err := Annotate(&buf, tl.Flat, rep); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "* node output") {
		t.Errorf("missing annotation for output:\n%s", out)
	}
	if !strings.Contains(out, ".end") {
		t.Error("netlist body missing")
	}
}

func TestDiagnostic(t *testing.T) {
	var buf bytes.Buffer
	if err := Diagnostic(&buf, "test ckt", tool.DefaultOptions(), errors.New("boom")); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "FAILED") || !strings.Contains(out, "boom") {
		t.Errorf("diagnostic:\n%s", out)
	}
	buf.Reset()
	if err := Diagnostic(&buf, "test ckt", tool.DefaultOptions(), nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "status: ok") {
		t.Error("success diagnostic wrong")
	}
}
