package report

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"

	"acstab/internal/circuits"
	"acstab/internal/tool"
)

func table2Report(t *testing.T) (*tool.Tool, *tool.Report) {
	t.Helper()
	tl, err := tool.New(circuits.FullCircuit(), tool.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := tl.AllNodes(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return tl, rep
}

func TestTextReportShape(t *testing.T) {
	_, rep := table2Report(t)
	var buf bytes.Buffer
	if err := Text(&buf, rep); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Loop headers sorted by frequency with the main loop first.
	first := strings.Index(out, "Loop at ")
	if first < 0 {
		t.Fatal("no loop headers")
	}
	for _, want := range []string{"output", "net052", "net136", "net138", "net99",
		"net81", "net056", "net013", "net75", "net066"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing node %s", want)
		}
	}
	if !strings.Contains(out, "phase margin") {
		t.Error("report missing phase margin estimate")
	}
	// The paper's E-notation frequencies.
	if !strings.Contains(out, "E+06") {
		t.Errorf("frequencies not in E notation:\n%s", out)
	}
	t.Logf("\n%s", out)
}

func TestTextReportNotices(t *testing.T) {
	// net17/net16 style shallow peaks must carry the min/max notice
	// somewhere in the bias report.
	tl, err := tool.New(circuits.BiasCircuit(circuits.BiasDefaults()), tool.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := tl.AllNodes(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Text(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "notice:") {
		t.Errorf("expected special-case notices in:\n%s", buf.String())
	}
}

func TestCSVReport(t *testing.T) {
	_, rep := table2Report(t)
	var buf bytes.Buffer
	if err := CSV(&buf, rep); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(rep.Nodes)+1 {
		t.Errorf("rows = %d, want %d", len(rows), len(rep.Nodes)+1)
	}
	if rows[0][0] != "node" || len(rows[0]) != 10 {
		t.Errorf("header = %v", rows[0])
	}
	// Find the output row: it must carry a loop id and negative peak.
	found := false
	for _, r := range rows[1:] {
		if r[0] == "output" {
			found = true
			if r[1] == "" || !strings.HasPrefix(r[3], "-") {
				t.Errorf("output row = %v", r)
			}
		}
	}
	if !found {
		t.Error("output row missing")
	}
}

func TestJSONReport(t *testing.T) {
	_, rep := table2Report(t)
	var buf bytes.Buffer
	if err := JSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Circuit string `json:"circuit"`
		Loops   []struct {
			FreqHz float64  `json:"freq_hz"`
			Nodes  []string `json:"nodes"`
		} `json:"loops"`
		Nodes []struct {
			Node string `json:"node"`
		} `json:"nodes"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("bad json: %v", err)
	}
	if len(doc.Loops) < 2 || len(doc.Nodes) == 0 {
		t.Errorf("loops=%d nodes=%d", len(doc.Loops), len(doc.Nodes))
	}
	if doc.Loops[0].FreqHz > doc.Loops[len(doc.Loops)-1].FreqHz {
		t.Error("loops not sorted")
	}
}

func TestAnnotate(t *testing.T) {
	tl, rep := table2Report(t)
	var buf bytes.Buffer
	if err := Annotate(&buf, tl.Flat, rep); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "* node output") {
		t.Errorf("missing annotation for output:\n%s", out)
	}
	if !strings.Contains(out, ".end") {
		t.Error("netlist body missing")
	}
}

func TestDiagnostic(t *testing.T) {
	var buf bytes.Buffer
	if err := Diagnostic(&buf, "test ckt", tool.DefaultOptions(), errors.New("boom")); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "FAILED") || !strings.Contains(out, "boom") {
		t.Errorf("diagnostic:\n%s", out)
	}
	buf.Reset()
	if err := Diagnostic(&buf, "test ckt", tool.DefaultOptions(), nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "status: ok") {
		t.Error("success diagnostic wrong")
	}
}

// TestParseJSONRoundTrip pins the shard coordinator's merge input
// contract: a report rendered with JSON and read back with ParseJSON
// must re-render to the identical JSON document. Go's encoding/json
// emits shortest-round-trip float representations, so equality here is
// exact byte equality, not approximate.
func TestParseJSONRoundTrip(t *testing.T) {
	_, rep := table2Report(t)
	var first bytes.Buffer
	if err := JSON(&first, rep); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseJSON(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := JSON(&second, parsed); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Errorf("JSON round-trip not stable:\n--- first ---\n%s\n--- second ---\n%s",
			first.String(), second.String())
	}
	// Zero peaks ship without the damping trio; the parse must restore
	// NaN (not 0) so downstream rendering keeps omitting it.
	for _, n := range parsed.Nodes {
		if n.Stab == nil {
			continue
		}
		for _, p := range n.Stab.Peaks {
			if p.IsZero && !math.IsNaN(p.Zeta) {
				t.Errorf("node %s: zero peak parsed with zeta %v, want NaN", n.Node, p.Zeta)
			}
		}
	}
}

// TestParseJSONRejectsGarbage covers the error paths a coordinator can
// hit on worker-version skew.
func TestParseJSONRejectsGarbage(t *testing.T) {
	if _, err := ParseJSON(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ParseJSON(strings.NewReader(
		`{"nodes":[{"node":"a","best":{"freq_hz":1,"value":-2,"type":"martian"}}]}`)); err == nil {
		t.Error("unknown peak type accepted")
	}
	if _, err := ParseJSON(strings.NewReader(
		`{"loops":[{"id":1,"freq_hz":1,"nodes":["ghost"]}]}`)); err == nil {
		t.Error("loop referencing unknown node accepted")
	}
}
