// Package shard turns the one-CLI-one-worker farm into a distributed
// all-nodes service: a coordinator splits an all-nodes stability run into
// node-range shards, fans the shards out over a fleet of acstabd workers,
// and merges the per-shard machine-readable reports back into the exact
// report an unsharded run would produce — same loop clustering, same loop
// IDs, same worst-peak numbers.
//
// The shard spec rides the ordinary v1 wire: each shard is a plain /run
// request whose options carry an explicit node list (only_nodes), so
// workers need no new endpoint and no notion of "being a shard". The
// coordinator plans the node list once (applying skip/subckt filters
// locally), ships each worker one contiguous slice, asks for
// format:"json", and re-clusters the union of dominant peaks with the
// same tolerance an unsharded run uses. Because OnlyNodes does not enter
// the compiled-system cache key, every shard of one netlist shares one
// compiled artifact on a worker.
//
// Stragglers are first-class: after a cutoff derived from the completed
// shards' duration quantile (or a fixed Config.HedgeAfter), a slow shard
// is hedged to a second worker and the first response wins (the loser is
// canceled). Shed (429), timed-out, and transport-failed attempts are
// re-dispatched to the next worker with backoff that honors Retry-After.
// Winning attempts' worker traces are grafted into the run trace with the
// attempt ordinal, so -stats and -trace-chrome show the whole fleet.
package shard

import (
	"bytes"
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"strings"
	"sync"
	"time"

	"acstab/internal/farm"
	"acstab/internal/netlist"
	"acstab/internal/obs"
	"acstab/internal/report"
	"acstab/internal/stab"
	"acstab/internal/tool"
)

// Shard-coordinator telemetry: launches by kind, plus shards merged into
// final reports. dispatched counts primary launches only, so
// dispatched == shards per healthy run; hedged and redispatched measure
// straggler and failure recovery work on top.
var (
	mDispatched   = obs.GetCounter("acstab_shard_dispatched_total")
	mHedged       = obs.GetCounter("acstab_shard_hedged_total")
	mRedispatched = obs.GetCounter("acstab_shard_redispatched_total")
	mMerged       = obs.GetCounter("acstab_shard_merged_total")
)

// Config tunes a Coordinator.
type Config struct {
	// Workers lists the acstabd base URLs to fan out over (required).
	Workers []string
	// Shards is the number of node-range shards to split the run into.
	// 0 selects one shard per worker; the count is always capped at the
	// planned node count (no empty shards).
	Shards int
	// MaxAttempts caps launches (primary + hedge + re-dispatches) per
	// shard. 0 selects max(3, len(Workers)+1) so every worker gets a
	// chance before the shard is declared failed.
	MaxAttempts int
	// Timeout is the per-attempt job deadline, forwarded as the wire
	// timeout_ms and used as the HTTP client timeout (0 = the farm
	// client's 5m default). A hung worker surfaces as a timed-out
	// attempt, which re-dispatches like any transport failure.
	Timeout time.Duration
	// HedgeQuantile picks the hedge cutoff from completed attempt
	// durations: a shard still running past this quantile gets a
	// duplicate launch on another worker. 0 selects 0.9; negative
	// disables hedging. Ignored when HedgeAfter is set.
	HedgeQuantile float64
	// HedgeAfter, when positive, is a fixed hedge cutoff replacing the
	// quantile estimate (useful early in a run and in tests).
	HedgeAfter time.Duration
	// RetryBase seeds the re-dispatch backoff (0 = 100ms); the delay
	// doubles per launch, capped at 2s, and a larger worker Retry-After
	// hint takes precedence.
	RetryBase time.Duration
	// Log is the wide-event sink for shard lifecycle events
	// (shard_dispatch/hedge/redispatch/win/merge). Nil discards.
	Log *obs.EventLogger
}

// Coordinator fans an all-nodes run out over a worker fleet.
type Coordinator struct {
	cfg     Config
	clients []*farm.Client

	mu   sync.Mutex
	durs []time.Duration // completed winning-attempt durations
}

// New validates cfg and builds a Coordinator. The farm clients are
// created with retries disabled: the coordinator owns the retry policy
// (hedging and cross-worker re-dispatch beat same-worker retry loops).
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, errors.New("shard: no workers configured")
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = len(cfg.Workers) + 1
		if cfg.MaxAttempts < 3 {
			cfg.MaxAttempts = 3
		}
	}
	if cfg.HedgeQuantile == 0 {
		cfg.HedgeQuantile = 0.9
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 100 * time.Millisecond
	}
	c := &Coordinator{cfg: cfg}
	for _, w := range cfg.Workers {
		c.clients = append(c.clients, &farm.Client{
			BaseURL:    strings.TrimRight(w, "/"),
			Timeout:    cfg.Timeout,
			MaxRetries: -1,
		})
	}
	return c, nil
}

// AllNodes runs the all-nodes analysis for the netlist source sharded
// across the fleet and returns the merged report. opts is interpreted
// exactly like a local run: SkipNodes/OnlySubckt are applied during
// planning (the shards receive the resolved node lists, not the
// filters), and opts.Trace receives the plan/fanout/merge phases plus
// each winning attempt's grafted worker trace.
func (c *Coordinator) AllNodes(ctx context.Context, src string, opts tool.Options) (*tool.Report, error) {
	run := opts.Trace

	// Plan: compile locally once to resolve the probe-able node list in
	// sweep order, then slice it into contiguous ranges.
	sp := obs.StartPhase(run, "shard_plan")
	ckt, err := netlist.Parse(src)
	if err != nil {
		sp.End()
		return nil, err
	}
	planOpts := opts
	planOpts.Trace = nil
	t, err := tool.New(ckt, planOpts)
	if err != nil {
		sp.End()
		return nil, err
	}
	nodes := t.PlanNodes()
	shards := partition(nodes, c.shardCount(len(nodes)))
	sp.End()

	repOpts := t.Opts
	repOpts.Trace = run
	merged := &tool.Report{
		CircuitTitle: t.Flat.Title,
		Temp:         t.Flat.Temp,
		Options:      repOpts,
	}
	if len(shards) == 0 {
		return merged, nil
	}

	traceID := newTraceID()
	c.cfg.Log.Event("shard_plan",
		slog.String("trace_id", traceID),
		slog.Int("nodes", len(nodes)),
		slog.Int("shards", len(shards)),
		slog.Int("workers", len(c.clients)))

	// Fan out: one goroutine per shard, primaries admitted through a
	// fleet-sized semaphore so K shards over N workers queue instead of
	// stampeding every worker's shedder at once. Hedge and re-dispatch
	// launches happen inside a shard's slot — that extra load is the
	// point of them. The first shard failure cancels the rest.
	sp = obs.StartPhase(run, "shard_fanout")
	fctx, cancel := context.WithCancel(ctx)
	defer cancel()
	sem := make(chan struct{}, len(c.clients))
	reports := make([]*tool.Report, len(shards))
	var (
		wg      sync.WaitGroup
		errOnce sync.Once
		fanErr  error
	)
	for i, sh := range shards {
		wg.Add(1)
		go func(i int, shardNodes []string) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-fctx.Done():
				return
			}
			rep, err := c.runShard(fctx, run, src, traceID, opts, i, shardNodes)
			if err != nil {
				errOnce.Do(func() { fanErr = err; cancel() })
				return
			}
			reports[i] = rep
		}(i, sh)
	}
	wg.Wait()
	sp.End()
	if fanErr != nil {
		return nil, fanErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Merge: union the shard reports' node rows, re-cluster the union of
	// dominant peaks with the run's own tolerance. MergePeaks sorts the
	// union, so loop membership and IDs are independent of shard arrival
	// order and match the unsharded run exactly.
	sp = obs.StartPhase(run, "shard_merge")
	defer sp.End()
	planned := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		planned[n] = true
	}
	var peakSets [][]stab.NodePeak
	seen := make(map[string]bool, len(nodes))
	for i, rep := range reports {
		var peaks []stab.NodePeak
		for j := range rep.Nodes {
			nr := rep.Nodes[j]
			if !planned[nr.Node] {
				return nil, fmt.Errorf("shard %d: worker returned unplanned node %q", i, nr.Node)
			}
			if seen[nr.Node] {
				return nil, fmt.Errorf("shard merge: node %q returned by two shards", nr.Node)
			}
			seen[nr.Node] = true
			merged.Nodes = append(merged.Nodes, nr)
			if !nr.Skipped && nr.Best != nil {
				peaks = append(peaks, stab.NodePeak{Node: nr.Node, Peak: *nr.Best})
			}
		}
		peakSets = append(peakSets, peaks)
		mMerged.Inc()
	}
	if len(seen) != len(nodes) {
		return nil, fmt.Errorf("shard merge: %d of %d planned nodes missing from shard reports",
			len(nodes)-len(seen), len(nodes))
	}
	sort.Slice(merged.Nodes, func(a, b int) bool { return merged.Nodes[a].Node < merged.Nodes[b].Node })
	union := stab.MergePeaks(peakSets...)
	merged.Loops = stab.ClusterLoops(union, t.Opts.LoopTol)
	run.Add("shard_peaks", int64(len(union)))
	run.Add("shard_loops", int64(len(merged.Loops)))
	mergeAttrs := []slog.Attr{
		slog.String("trace_id", traceID),
		slog.Int("shards", len(shards)),
		slog.Int("nodes", len(merged.Nodes)),
		slog.Int("peaks", len(union)),
		slog.Int("loops", len(merged.Loops)),
	}
	// Numerical health across the shards: each winning attempt's trace was
	// grafted into the run, so the counters (and the per-decade residual
	// digest) are sums over shards and the stats are maxima — the same
	// numbers an unsharded run of the whole node set would report.
	if tr := run.Trace(); tr.Counters["ac_residual_points"] > 0 {
		num := map[string]any{
			"points":       tr.Counters["ac_residual_points"],
			"refinements":  tr.Counters["ac_refinements"],
			"breaches":     tr.Counters["ac_residual_breaches"],
			"max_residual": tr.Stats["numerics_residual_max"],
		}
		if med, ok := obs.MedianResidual(tr.Counters); ok {
			num["median_residual"] = med
		}
		mergeAttrs = append(mergeAttrs, slog.Any("numerics", num))
	}
	c.cfg.Log.Event("shard_merge", mergeAttrs...)
	return merged, nil
}

// attemptOutcome is one launch's result.
type attemptOutcome struct {
	body   []byte
	tr     *obs.Trace
	err    error
	worker string
	launch int // 1-based launch ordinal within the shard
	start  time.Time
	dur    time.Duration
}

// runShard drives one shard to completion: primary launch, optional
// hedge past the straggler cutoff, re-dispatch with backoff on
// retryable failure. The first successful response wins; every other
// in-flight attempt is canceled. Only the winner's worker trace is
// grafted into the run (a submit-time graft would splice losers in).
func (c *Coordinator) runShard(ctx context.Context, run *obs.Run, src, traceID string,
	opts tool.Options, idx int, nodes []string) (*tool.Report, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make(chan attemptOutcome, c.cfg.MaxAttempts)
	launches, inflight := 0, 0
	hedged := false
	var curStart time.Time

	launch := func(kind string) {
		wi := (idx + launches) % len(c.clients)
		ord := launches + 1
		launches++
		inflight++
		curStart = time.Now()
		switch kind {
		case "dispatch":
			mDispatched.Inc()
		case "hedge":
			mHedged.Inc()
		case "redispatch":
			mRedispatched.Inc()
		}
		c.cfg.Log.Event("shard_"+kind,
			slog.String("trace_id", traceID),
			slog.Int("shard", idx),
			slog.Int("attempt", ord),
			slog.String("worker", c.cfg.Workers[wi]),
			slog.Int("nodes", len(nodes)))
		cl := c.clients[wi]
		req := c.shardRequest(src, traceID, opts, nodes)
		start := curStart
		go func() {
			body, tr, err := cl.SubmitCollect(ctx, req)
			results <- attemptOutcome{body, tr, err, c.cfg.Workers[wi], ord, start, time.Since(start)}
		}()
	}
	launch("dispatch")

	for {
		// Arm the hedge only while exactly one attempt runs and another
		// launch is still allowed. With no cutoff available yet (no
		// fixed HedgeAfter, too few completed durations), poll shortly:
		// other shards' completions feed the quantile as the run
		// progresses.
		var hedgeC <-chan time.Time
		if !hedged && inflight == 1 && launches < c.cfg.MaxAttempts &&
			len(c.clients) > 1 && c.cfg.HedgeQuantile >= 0 {
			wait := 50 * time.Millisecond
			if cutoff := c.hedgeCutoff(); cutoff > 0 {
				wait = time.Until(curStart.Add(cutoff))
				if wait < 0 {
					wait = 0
				}
			}
			hedgeC = time.After(wait)
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case out := <-results:
			inflight--
			if out.err == nil {
				cancel() // first response wins; abandon the racer
				c.recordDuration(out.dur)
				if run != nil && out.tr != nil {
					run.GraftRemote(*out.tr, out.start, out.dur, out.launch)
				}
				c.cfg.Log.Event("shard_win",
					slog.String("trace_id", traceID),
					slog.Int("shard", idx),
					slog.Int("attempt", out.launch),
					slog.String("worker", out.worker),
					slog.Duration("dur", out.dur))
				rep, err := report.ParseJSON(bytes.NewReader(out.body))
				if err != nil {
					return nil, fmt.Errorf("shard %d (worker %s): %w", idx, out.worker, err)
				}
				return rep, nil
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if !retryableAttempt(out.err) {
				return nil, fmt.Errorf("shard %d (worker %s): %w", idx, out.worker, out.err)
			}
			if inflight > 0 {
				continue // the racing attempt may still win
			}
			if launches >= c.cfg.MaxAttempts {
				return nil, fmt.Errorf("shard %d: %d attempts exhausted, last (worker %s): %w",
					idx, launches, out.worker, out.err)
			}
			delay := c.cfg.RetryBase << uint(launches-1)
			if delay > 2*time.Second {
				delay = 2 * time.Second
			}
			var se *farm.StatusError
			if errors.As(out.err, &se) && se.RetryAfter > delay {
				delay = se.RetryAfter
			}
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(delay):
			}
			launch("redispatch")
		case <-hedgeC:
			if cutoff := c.hedgeCutoff(); cutoff > 0 && time.Since(curStart) >= cutoff {
				hedged = true
				launch("hedge")
			}
		}
	}
}

// shardRequest builds the v1 wire request for one shard. Skip and
// subckt filters are intentionally absent: planning already applied
// them, and the explicit exact-match node list is the shard spec.
func (c *Coordinator) shardRequest(src, traceID string, opts tool.Options, nodes []string) *farm.Request {
	return &farm.Request{
		Netlist:   src,
		Format:    "json",
		TimeoutMS: c.cfg.Timeout.Milliseconds(),
		TraceID:   traceID,
		Options: farm.RequestOptions{
			FStartHz:              opts.FStart,
			FStopHz:               opts.FStop,
			PointsPerDecade:       opts.PointsPerDecade,
			CoarsePointsPerDecade: opts.CoarsePointsPerDecade,
			RefinePointsPerDecade: opts.RefinePointsPerDecade,
			RefineThreshold:       opts.RefineThreshold,
			LoopTol:               opts.LoopTol,
			Workers:               opts.Workers,
			Naive:                 opts.Naive,
			OnlyNodes:             nodes,
		},
	}
}

// retryableAttempt classifies an attempt failure. Unlike the farm
// client's own policy, a deadline error here is retryable: the
// per-attempt timeout belongs to the attempt (a hung worker), not the
// run — the caller checks the run context separately before retrying.
func retryableAttempt(err error) bool {
	var se *farm.StatusError
	if errors.As(err, &se) {
		return se.Retryable()
	}
	return true // transport failure or per-attempt timeout
}

// hedgeCutoff returns the straggler cutoff: the fixed HedgeAfter when
// set, else the HedgeQuantile of completed winning-attempt durations
// (0 until at least two have completed — one duration is no
// distribution).
func (c *Coordinator) hedgeCutoff() time.Duration {
	if c.cfg.HedgeAfter > 0 {
		return c.cfg.HedgeAfter
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.durs) < 2 {
		return 0
	}
	ds := append([]time.Duration(nil), c.durs...)
	sort.Slice(ds, func(a, b int) bool { return ds[a] < ds[b] })
	i := int(c.cfg.HedgeQuantile * float64(len(ds)))
	if i >= len(ds) {
		i = len(ds) - 1
	}
	return ds[i]
}

// recordDuration feeds a completed attempt into the hedge quantile.
func (c *Coordinator) recordDuration(d time.Duration) {
	c.mu.Lock()
	c.durs = append(c.durs, d)
	c.mu.Unlock()
}

// shardCount resolves the configured shard count against the node
// count: default one shard per worker, never more shards than nodes.
func (c *Coordinator) shardCount(nodes int) int {
	k := c.cfg.Shards
	if k <= 0 {
		k = len(c.cfg.Workers)
	}
	if k > nodes {
		k = nodes
	}
	return k
}

// partition slices nodes into k contiguous near-equal ranges, keeping
// the planner's sweep order inside each shard.
func partition(nodes []string, k int) [][]string {
	if k <= 0 || len(nodes) == 0 {
		return nil
	}
	out := make([][]string, 0, k)
	base, rem := len(nodes)/k, len(nodes)%k
	at := 0
	for i := 0; i < k; i++ {
		n := base
		if i < rem {
			n++
		}
		out = append(out, nodes[at:at+n])
		at += n
	}
	return out
}

// newTraceID returns a random 64-bit hex correlation ID shared by every
// shard of one run, so a fleet-wide /debug/runs search finds them all.
func newTraceID() string {
	var b [8]byte
	crand.Read(b[:])
	return hex.EncodeToString(b[:])
}
