package shard

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"acstab/internal/circuits"
	"acstab/internal/farm"
	"acstab/internal/netlist"
	"acstab/internal/obs"
	"acstab/internal/report"
	"acstab/internal/tool"
)

// startWorkers spins up n real farm workers (quiet logs).
func startWorkers(t *testing.T, n int) []string {
	t.Helper()
	var urls []string
	for i := 0; i < n; i++ {
		srv := httptest.NewServer(farm.NewHandler(farm.Config{Log: obs.NewEventLogger(nil)}))
		t.Cleanup(srv.Close)
		urls = append(urls, srv.URL)
	}
	return urls
}

// localReport runs the unsharded all-nodes analysis for src.
func localReport(t *testing.T, src string, opts tool.Options) *tool.Report {
	t.Helper()
	ckt, err := netlist.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := tool.New(ckt, opts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := tl.AllNodes(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// renderAll renders a report in every machine-comparable format.
func renderAll(t *testing.T, rep *tool.Report) (text, csv, js string) {
	t.Helper()
	var tb, cb, jb bytes.Buffer
	if err := report.Text(&tb, rep); err != nil {
		t.Fatal(err)
	}
	if err := report.CSV(&cb, rep); err != nil {
		t.Fatal(err)
	}
	if err := report.JSON(&jb, rep); err != nil {
		t.Fatal(err)
	}
	return tb.String(), cb.String(), jb.String()
}

func testOpts() tool.Options {
	opts := tool.DefaultOptions()
	opts.FStart = 1e4
	opts.FStop = 1e8
	opts.PointsPerDecade = 20
	return opts
}

// TestShardedMatchesUnsharded is the merge-equivalence property test: a
// run split into K node-range shards over N workers must reproduce the
// unsharded report byte-for-byte — same node rows, same loop clustering,
// same loop IDs, same worst-peak numbers — for every format.
func TestShardedMatchesUnsharded(t *testing.T) {
	for _, tc := range []struct {
		loops, workers, shards int
	}{
		{2, 2, 0},  // one shard per worker
		{3, 2, 5},  // more shards than workers (queueing)
		{4, 3, 2},  // fewer shards than workers
		{1, 4, 99}, // shard count capped at node count
	} {
		src := netlist.Format(circuits.ResonatorField(tc.loops, 1e6, 0.25))
		opts := testOpts()
		want := localReport(t, src, opts)

		coord, err := New(Config{
			Workers: startWorkers(t, tc.workers),
			Shards:  tc.shards,
			Log:     obs.NewEventLogger(nil),
		})
		if err != nil {
			t.Fatal(err)
		}
		got, err := coord.AllNodes(context.Background(), src, opts)
		if err != nil {
			t.Fatalf("loops=%d workers=%d shards=%d: %v", tc.loops, tc.workers, tc.shards, err)
		}

		wt, wc, wj := renderAll(t, want)
		gt, gc, gj := renderAll(t, got)
		if gt != wt {
			t.Errorf("loops=%d workers=%d shards=%d: text report differs\n--- sharded ---\n%s\n--- local ---\n%s",
				tc.loops, tc.workers, tc.shards, gt, wt)
		}
		if gc != wc {
			t.Errorf("loops=%d workers=%d shards=%d: csv report differs", tc.loops, tc.workers, tc.shards)
		}
		if gj != wj {
			t.Errorf("loops=%d workers=%d shards=%d: json report differs\n--- sharded ---\n%s\n--- local ---\n%s",
				tc.loops, tc.workers, tc.shards, gj, wj)
		}
	}
}

// TestShardedAdaptiveMatchesUnsharded extends the merge-equivalence
// property to adaptive grids: refinement decisions are per-node, so a
// sharded adaptive run must still reproduce the unsharded report
// byte-for-byte even though each shard refines its own node subset
// independently.
func TestShardedAdaptiveMatchesUnsharded(t *testing.T) {
	for _, tc := range []struct {
		loops, workers, shards int
	}{
		{2, 2, 0}, // one shard per worker
		{3, 2, 5}, // more shards than workers (queueing)
	} {
		src := netlist.Format(circuits.ResonatorField(tc.loops, 1e6, 0.25))
		opts := testOpts()
		opts.CoarsePointsPerDecade = 8
		want := localReport(t, src, opts)

		coord, err := New(Config{
			Workers: startWorkers(t, tc.workers),
			Shards:  tc.shards,
			Log:     obs.NewEventLogger(nil),
		})
		if err != nil {
			t.Fatal(err)
		}
		got, err := coord.AllNodes(context.Background(), src, opts)
		if err != nil {
			t.Fatalf("loops=%d workers=%d shards=%d: %v", tc.loops, tc.workers, tc.shards, err)
		}

		wt, wc, wj := renderAll(t, want)
		gt, gc, gj := renderAll(t, got)
		if gt != wt {
			t.Errorf("loops=%d workers=%d shards=%d: adaptive text report differs\n--- sharded ---\n%s\n--- local ---\n%s",
				tc.loops, tc.workers, tc.shards, gt, wt)
		}
		if gc != wc {
			t.Errorf("loops=%d workers=%d shards=%d: adaptive csv report differs", tc.loops, tc.workers, tc.shards)
		}
		if gj != wj {
			t.Errorf("loops=%d workers=%d shards=%d: adaptive json report differs\n--- sharded ---\n%s\n--- local ---\n%s",
				tc.loops, tc.workers, tc.shards, gj, wj)
		}
	}
}

// countEvents tallies ring events by name.
func countEvents(log *obs.EventLogger) map[string]int {
	out := map[string]int{}
	for _, se := range log.Events(0, 10000) {
		s := string(se.Event)
		if i := strings.Index(s, `"event":"`); i >= 0 {
			s = s[i+len(`"event":"`):]
			if j := strings.Index(s, `"`); j >= 0 {
				out[s[:j]]++
			}
		}
	}
	return out
}

// TestShardRedispatchOnShed injects a worker that sheds every job with
// 429: shards landing on it must be re-dispatched to the healthy worker
// and the merged report must still match the unsharded run.
func TestShardRedispatchOnShed(t *testing.T) {
	shedder := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "0")
		http.Error(w, `{"error":{"code":"overloaded","message":"always full"}}`,
			http.StatusTooManyRequests)
	}))
	defer shedder.Close()
	good := startWorkers(t, 1)

	src := netlist.Format(circuits.ResonatorField(3, 1e6, 0.3))
	opts := testOpts()
	want := localReport(t, src, opts)

	log := obs.NewEventLogger(nil)
	coord, err := New(Config{
		Workers:   []string{shedder.URL, good[0]},
		Shards:    2,
		RetryBase: time.Millisecond,
		Log:       log,
	})
	if err != nil {
		t.Fatal(err)
	}
	run := obs.StartRun("test")
	opts.Trace = run
	got, err := coord.AllNodes(context.Background(), src, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Trace = nil
	run.Finish()

	wt, _, _ := renderAll(t, want)
	gt, _, _ := renderAll(t, got)
	if gt != wt {
		t.Errorf("report with shedding worker differs from local:\n--- sharded ---\n%s\n--- local ---\n%s", gt, wt)
	}
	ev := countEvents(log)
	if ev["shard_redispatch"] == 0 {
		t.Errorf("no shard_redispatch events despite a shedding worker: %v", ev)
	}
	// Shard 0's primary hit the shedder; its win must come from a later
	// launch, tagged with that attempt ordinal in the grafted trace.
	tr := run.Trace()
	attempts := map[int]bool{}
	for _, sp := range tr.Phases {
		if sp.Attempt > 0 {
			attempts[sp.Attempt] = true
		}
	}
	if !attempts[2] {
		t.Errorf("no grafted span with attempt 2 after a re-dispatch; attempts seen: %v", attempts)
	}
}

// TestShardHedgeOnHang injects a worker that accepts /run and then hangs
// until the request is canceled: the hedge must fire after HedgeAfter,
// win on the healthy worker, and the run must complete with a coherent
// grafted trace (the loser contributes nothing).
func TestShardHedgeOnHang(t *testing.T) {
	hung := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body so the server starts its background read and
		// notices the hedge winner canceling this request; without it the
		// context never fires and Close would wait on this handler forever.
		io.Copy(io.Discard, r.Body)
		<-r.Context().Done()
	}))
	defer hung.Close()
	good := startWorkers(t, 1)

	src := netlist.Format(circuits.ResonatorField(2, 1e6, 0.3))
	opts := testOpts()
	want := localReport(t, src, opts)

	log := obs.NewEventLogger(nil)
	coord, err := New(Config{
		Workers:    []string{hung.URL, good[0]},
		Shards:     1, // single shard: its primary lands on the hung worker
		HedgeAfter: 20 * time.Millisecond,
		Log:        log,
	})
	if err != nil {
		t.Fatal(err)
	}
	run := obs.StartRun("test")
	opts.Trace = run
	done := make(chan struct{})
	var got *tool.Report
	go func() {
		defer close(done)
		got, err = coord.AllNodes(context.Background(), src, opts)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("sharded run hung: hedge never rescued the stalled shard")
	}
	if err != nil {
		t.Fatal(err)
	}
	opts.Trace = nil
	run.Finish()

	wt, _, wj := renderAll(t, want)
	gt, _, gj := renderAll(t, got)
	if gt != wt || gj != wj {
		t.Errorf("report with hung worker differs from local:\n--- sharded ---\n%s\n--- local ---\n%s", gt, wt)
	}
	ev := countEvents(log)
	if ev["shard_hedge"] != 1 {
		t.Errorf("shard_hedge events = %d, want 1: %v", ev["shard_hedge"], ev)
	}
	// Exactly one worker trace was grafted (the winner's): its
	// sweep_nodes counter equals the full node count once, not twice.
	tr := run.Trace()
	ckt, _ := netlist.Parse(src)
	tl, _ := tool.New(ckt, testOpts())
	if n := int64(len(tl.PlanNodes())); tr.Counters["sweep_nodes"] != n {
		t.Errorf("grafted sweep_nodes = %d, want %d (winner only)", tr.Counters["sweep_nodes"], n)
	}
	// The winning spans carry the hedge's launch ordinal.
	seen := map[int]bool{}
	for _, sp := range tr.Phases {
		if sp.Attempt > 0 {
			seen[sp.Attempt] = true
		}
	}
	if !seen[2] || seen[1] {
		t.Errorf("grafted attempts = %v, want only the hedge (attempt 2)", seen)
	}
}

// TestShardGraftedCounters checks the healthy-path trace merge: the
// grafted worker traces' sweep_nodes must sum to the full node count
// (every node swept exactly once across shards).
func TestShardGraftedCounters(t *testing.T) {
	src := netlist.Format(circuits.ResonatorField(3, 1e6, 0.3))
	opts := testOpts()
	coord, err := New(Config{Workers: startWorkers(t, 2), Log: obs.NewEventLogger(nil)})
	if err != nil {
		t.Fatal(err)
	}
	run := obs.StartRun("test")
	opts.Trace = run
	if _, err := coord.AllNodes(context.Background(), src, opts); err != nil {
		t.Fatal(err)
	}
	run.Finish()

	ckt, _ := netlist.Parse(src)
	tl, _ := tool.New(ckt, testOpts())
	want := int64(len(tl.PlanNodes()))
	if got := run.Trace().Counters["sweep_nodes"]; got != want {
		t.Errorf("summed grafted sweep_nodes = %d, want %d", got, want)
	}
}

// TestShardNonRetryableFails pins fail-fast semantics: a 4xx rejection
// (here: a netlist the workers refuse) must fail the run, not spin
// through re-dispatches.
func TestShardNonRetryableFails(t *testing.T) {
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":{"code":"bad_option","message":"no"}}`, http.StatusBadRequest)
	}))
	defer bad.Close()

	src := netlist.Format(circuits.ResonatorField(2, 1e6, 0.3))
	coord, err := New(Config{Workers: []string{bad.URL, bad.URL}, Log: obs.NewEventLogger(nil)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.AllNodes(context.Background(), src, testOpts()); err == nil {
		t.Fatal("run against 400-answering workers succeeded, want error")
	}
}

func TestPartition(t *testing.T) {
	nodes := []string{"a", "b", "c", "d", "e"}
	parts := partition(nodes, 3)
	if len(parts) != 3 {
		t.Fatalf("partition count = %d, want 3", len(parts))
	}
	var flat []string
	for _, p := range parts {
		if len(p) == 0 {
			t.Error("empty shard")
		}
		flat = append(flat, p...)
	}
	if strings.Join(flat, ",") != strings.Join(nodes, ",") {
		t.Errorf("partition reorders or drops nodes: %v", parts)
	}
	if len(parts[0]) != 2 || len(parts[1]) != 2 || len(parts[2]) != 1 {
		t.Errorf("unbalanced partition: %v", parts)
	}
}
