package circuits

import (
	"context"
	"math"
	"testing"

	"acstab/internal/analysis"
	"acstab/internal/num"
	"acstab/internal/stab"
)

func TestTransistorOpAmpBias(t *testing.T) {
	s := sim(t, TransistorOpAmp())
	op, err := s.OP(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// The buffer regulates its output to the input common mode.
	vout, _ := s.NodeVoltage(op, "vout")
	if math.Abs(vout-1.5) > 0.01 {
		t.Errorf("v(vout) = %g, want 1.5 (buffer)", vout)
	}
	// Balanced pair: every transistor saturated.
	for _, info := range s.Sys.MOSOperatingInfo(op.X) {
		if info.Region != 2 {
			t.Errorf("%s not saturated (region %d, id %g)", info.Name, info.Region, info.Id)
		}
	}
	// Tail splits evenly.
	var ids []float64
	for _, info := range s.Sys.MOSOperatingInfo(op.X) {
		if info.Name == "m1" || info.Name == "m2" {
			ids = append(ids, math.Abs(info.Id))
		}
	}
	if len(ids) != 2 || math.Abs(ids[0]-ids[1]) > 0.02*ids[0] {
		t.Errorf("pair imbalance: %v", ids)
	}
}

func TestTransistorOpAmpStabilityPeak(t *testing.T) {
	c := TransistorOpAmp()
	c.ZeroACSources()
	s := sim(t, c)
	p := nodePeak(t, s, "vout", 1e4, 1e10)
	if p == nil {
		t.Fatal("no peak at vout")
	}
	t.Logf("transistor buffer: peak %.2f at %.4g Hz (zeta %.3f, PM %.1f)",
		p.Value, p.Freq, p.Zeta, p.PhaseMarginDeg)
	// Deliberately under-compensated: a deep peak in the tens of MHz.
	if p.Value > -10 || p.Value < -60 {
		t.Errorf("peak = %g, want a clearly underdamped loop", p.Value)
	}
	if p.Freq < 1e7 || p.Freq > 2e8 {
		t.Errorf("peak frequency = %g", p.Freq)
	}
	if p.Type != stab.PeakNormal {
		t.Errorf("type = %v", p.Type)
	}
}

func TestTransistorOpAmpStepMatchesPrediction(t *testing.T) {
	// Cross-method check on a full transistor circuit: transient overshoot
	// tracks the stability-plot prediction.
	c := TransistorOpAmp()
	c.ZeroACSources()
	s := sim(t, c)
	p := nodePeak(t, s, "vout", 1e4, 1e10)
	if p == nil {
		t.Fatal("no peak")
	}
	s2 := sim(t, TransistorOpAmp())
	res, err := s2.Tran(context.Background(), analysis.TranSpec{TStop: 1e-6, TStep: 0.2e-9, RecordEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	w, err := res.NodeWave("vout")
	if err != nil {
		t.Fatal(err)
	}
	got := w.OvershootPct()
	t.Logf("transient overshoot %.1f%%, stability-plot prediction %.1f%%", got, p.OvershootPct)
	if math.Abs(got-p.OvershootPct) > 15 {
		t.Errorf("overshoot mismatch: %g vs %g", got, p.OvershootPct)
	}
}

func TestTransistorOpAmpCompensationAblation(t *testing.T) {
	// Increasing the Miller capacitor must deepen damping (shallower peak).
	peakWithCC := func(cc float64) float64 {
		c := TransistorOpAmp()
		c.Element("cc").Value = cc
		c.ZeroACSources()
		s := sim(t, c)
		p := nodePeak(t, s, "vout", 1e4, 1e10)
		if p == nil {
			t.Fatalf("no peak with cc=%g", cc)
		}
		return p.Value
	}
	weak := peakWithCC(0.5e-12)
	strong := peakWithCC(4e-12)
	t.Logf("peak with 0.5pF: %.2f; with 4pF: %.2f", weak, strong)
	if !(strong > weak) {
		t.Errorf("more compensation should damp the loop: %g vs %g", weak, strong)
	}
	if num.ApproxEqual(weak, strong, 0.05, 0) {
		t.Error("compensation had no effect")
	}
}

func TestTransistorBiasLocalLoop(t *testing.T) {
	// The beta-helper mirror: an honest transistor-level reproduction of
	// the paper's hidden bias-circuit loop. The all-nodes run must find a
	// clearly under-damped local loop in the tens of MHz at both loop
	// nodes, with no main loop anywhere in sight.
	s := sim(t, TransistorBias())
	op, err := s.OP(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Mirror regulates: output current ~ IREF.
	iout, _ := s.NodeVoltage(op, "out")
	if iout < 2 || iout > 4 {
		t.Fatalf("v(out) = %g, mirror not biased", iout)
	}
	for _, node := range []string{"x", "nb"} {
		p := nodePeak(t, s, node, 1e5, 1e10)
		if p == nil {
			t.Fatalf("%s: no peak", node)
		}
		t.Logf("%s: peak %.2f at %.4g MHz (zeta %.2f)", node, p.Value, p.Freq/1e6, p.Zeta)
		if p.Value > -2.5 || p.Value < -9 {
			t.Errorf("%s: peak %g outside the under-damped band", node, p.Value)
		}
		if p.Freq < 10e6 || p.Freq > 150e6 {
			t.Errorf("%s: loop at %g, want tens of MHz", node, p.Freq)
		}
	}
}

func TestTransistorBiasCompensation(t *testing.T) {
	// The paper's find-then-fix workflow on a transistor bias cell: the
	// all-nodes run flags the follower-driven rail loop; a series-RC
	// snubber on the rail damps it. Before/after stability peaks at the
	// rail node.
	before := nodePeak(t, sim(t, TransistorBias()), "nb", 1e5, 1e10)
	after := nodePeak(t, sim(t, SnubbedBias(1e3, 10e-12)), "nb", 1e5, 1e10)
	if before == nil || after == nil {
		t.Fatal("missing peaks")
	}
	t.Logf("uncompensated peak %.2f (zeta %.2f) -> snubbed %.2f (zeta %.2f)",
		before.Value, before.Zeta, after.Value, after.Zeta)
	if !(after.Value > before.Value+1) {
		t.Errorf("snubber did not damp the loop: %g -> %g", before.Value, after.Value)
	}
	if after.Zeta < before.Zeta+0.05 {
		t.Errorf("zeta should improve: %g -> %g", before.Zeta, after.Zeta)
	}
}

func TestTransistorBiasMatchesExactPoles(t *testing.T) {
	s := sim(t, TransistorBias())
	dom := dominantPair(t, s, 1e6, 1e10)
	if dom == nil {
		t.Fatal("no complex pair")
	}
	est := nodePeak(t, s, "x", 1e5, 1e10)
	if est == nil {
		t.Fatal("no peak")
	}
	t.Logf("exact: fn=%.4g zeta=%.4g; plot: fn=%.4g zeta=%.4g",
		dom.FreqHz, dom.Zeta, est.Freq, est.Zeta)
	if !num.ApproxEqual(est.Freq, dom.FreqHz, 0.05, 0) ||
		!num.ApproxEqual(est.Zeta, dom.Zeta, 0.10, 0) {
		t.Errorf("estimate vs exact mismatch")
	}
}
