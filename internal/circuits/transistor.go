package circuits

import "acstab/internal/netlist"

// TransistorOpAmp builds a transistor-level two-stage Miller op-amp
// connected as a unity-gain buffer: a PMOS input pair with NMOS mirror
// load, an NMOS common-source second stage with PMOS current-source load,
// Miller compensation with a series zero resistor, and a current-mirror
// bias chain. Unlike the behavioral macro of OpAmpBuffer, every pole here
// comes from real device small-signal capacitances, so the circuit
// exercises the full device-model path of the simulator (DC bias with
// Newton, junction/Meyer capacitances, AC linearization at the operating
// point).
//
// With the default element values the buffer is deliberately
// under-compensated (small Miller cap against a large load), giving the
// stability tool a clear main-loop peak to find.
func TransistorOpAmp() *netlist.Circuit {
	c := netlist.NewCircuit("transistor-level two-stage Miller op-amp buffer")
	c.SetModel("nch", "nmos", map[string]float64{
		"vto": 0.7, "kp": 100e-6, "lambda": 0.04, "gamma": 0.4, "phi": 0.7,
		"tox": 20e-9, "cgso": 0.3e-9, "cgdo": 0.3e-9,
	})
	c.SetModel("pch", "pmos", map[string]float64{
		"vto": -0.8, "kp": 50e-6, "lambda": 0.05, "gamma": 0.5, "phi": 0.7,
		"tox": 20e-9, "cgso": 0.3e-9, "cgdo": 0.3e-9,
	})

	c.AddVDC("VDD", "vdd", "0", 3.3)
	// Input: 1.5 V common mode with an AC probe and a small step.
	c.AddV("VIN", "inp", "0", netlist.SourceSpec{
		DC:    1.5,
		ACMag: 1,
		Tran:  netlist.PulseFunc{V1: 1.5, V2: 1.55, TD: 2e-7, TR: 1e-9, TF: 1e-9, PW: 1, PER: 2},
	})

	// Bias chain: 20 uA reference into a diode-connected PMOS, mirrored
	// to the tail source and the output-stage load.
	c.AddIDC("IB", "pb", "0", 20e-6)
	c.AddM("M8", "pb", "pb", "vdd", "vdd", "pch", 20e-6, 1e-6)
	c.AddM("M9", "tail", "pb", "vdd", "vdd", "pch", 40e-6, 1e-6) // 40 uA tail
	c.AddM("M6", "vout", "pb", "vdd", "vdd", "pch", 100e-6, 1e-6)

	// Input pair (PMOS) with NMOS mirror load. The diode-side input (M1)
	// is the inverting one once the second stage's inversion is counted,
	// so the buffer feedback drives M1's gate.
	c.AddM("M1", "n1m", "vout", "tail", "vdd", "pch", 50e-6, 1e-6)
	c.AddM("M2", "n1", "inp", "tail", "vdd", "pch", 50e-6, 1e-6)
	c.AddM("M3", "n1m", "n1m", "0", "0", "nch", 25e-6, 1e-6)
	c.AddM("M4", "n1", "n1m", "0", "0", "nch", 25e-6, 1e-6)

	// Second stage with Miller compensation.
	c.AddM("M5", "vout", "n1", "0", "0", "nch", 100e-6, 1e-6)
	c.AddC("CC", "n1", "nz", 0.5e-12)
	c.AddR("RZ", "nz", "vout", 1e3)
	c.AddC("CL", "vout", "0", 10e-12)

	// The buffer has a second, latched DC equilibrium (M2 cut off with the
	// output railed high); nodeset hints steer Newton to the intended
	// operating point, exactly as SPICE users do for multi-stable loops.
	for node, v := range map[string]float64{
		"vout": 1.5, "n1": 0.9, "n1m": 0.9, "nz": 1.5, "tail": 2.5, "pb": 2.3,
	} {
		c.NodeSet[node] = v
	}
	return c
}

// TransistorBias builds a transistor-level bias current mirror with a
// beta-helper — the circuit family of the paper's Fig. 5 zero-TC bias,
// and the textbook hidden-oscillator of bias design: the helper follower
// (Q5) closes a local negative-feedback loop from the mirror input node
// (the collector of Q3) through the shared base rail back to Q3. Two
// high-impedance nodes with parasitic capacitance put two poles inside
// that loop, and with the default values it rings in the tens of MHz —
// invisible to any main-loop analysis, found immediately by the
// all-nodes stability run.
//
// SnubbedBias applies the damping remedy and the loop's stability peak
// shrinks (TestTransistorBiasCompensation) — the same find-then-fix
// workflow the paper walks through on its Fig. 5 circuit.
func TransistorBias() *netlist.Circuit {
	c := netlist.NewCircuit("bias mirror with beta helper (Fig. 5 family)")
	c.SetModel("qn", "npn", map[string]float64{
		"is": 1e-15, "bf": 150, "vaf": 80,
		"cje": 0.3e-12, "cjc": 0.2e-12, "tf": 0.3e-9,
	})
	c.AddVDC("VCC", "vcc", "0", 5)
	// Reference current into the mirror input (Q3's collector). RX loads
	// the node, setting a moderate loop gain (~20) so the collector pole
	// dominates the local loop.
	c.AddIDC("IREF", "vcc", "x", 75e-6)
	c.AddR("RX", "x", "0", 50e3)
	// NPN mirror with shared base rail nb; Q3 is the input device.
	c.AddQ("Q3", "x", "nb", "0", "qn")
	c.AddQ("Q2", "out", "nb", "0", "qn")
	c.AddR("RL", "vcc", "out", 40e3)
	// Beta helper: follower from the input node onto the base rail.
	c.AddQ("Q5", "vcc", "x", "nb", "qn")
	// Base-rail pulldown sets the helper's standing current.
	c.AddR("RB", "nb", "0", 30e3)
	// Wiring parasitics at the loop's two high-impedance nodes.
	c.AddC("CX", "x", "0", 0.4e-12)
	c.AddC("CNB", "nb", "0", 6e-12)
	for node, v := range map[string]float64{"x": 1.3, "nb": 0.65, "out": 3} {
		c.NodeSet[node] = v
	}
	return c
}

// SnubbedBias returns the bias cell with a series-RC snubber on the base
// rail — the standard damping fix for a follower-driven rail. (The paper
// tames its own Fig. 5 loop with a plain 1 pF at the collector of Q3;
// which remedy applies depends on which node's pole dominates, and the
// all-nodes report is exactly the tool that tells you.)
func SnubbedBias(r, cap float64) *netlist.Circuit {
	c := TransistorBias()
	c.AddR("RSNUB", "nb", "snub", r)
	c.AddC("CSNUB", "snub", "0", cap)
	return c
}
