// Package circuits builds the circuits of the paper's evaluation — the
// 2 MHz op-amp of Fig. 1 connected as a buffer, the zero-TC bias cell of
// Fig. 5 with its under-compensated local loops, the normalized
// second-order reference used to regenerate Table 1 — plus synthetic
// workload generators for the benchmarks.
//
// The TI production circuits are proprietary; these are behavioral
// equivalents tuned so the published figures hold: the buffer shows an
// open-loop 0 dB crossover near 2.4 MHz with ~20° phase margin and 180°
// lag near 3.5 MHz (Fig. 3), ~55 % step overshoot (Fig. 2), a stability
// peak of ~-28.9 at ~3.16 MHz on the output node (Fig. 4), and the bias
// cell contributes local loops in the tens of MHz with shallow peaks
// (Table 2). DESIGN.md documents the substitution.
package circuits

import (
	"math"

	"acstab/internal/netlist"
)

// SecondOrder returns a circuit whose driving-point impedance at node
// "t" is a second-order resonance with the given damping ratio and
// natural frequency: a parallel RLC tank. Used to regenerate Table 1 by
// simulation.
//
//	Z(s) = (s/C) / (s^2 + s/(RC) + 1/(LC))
//
// so wn = 1/sqrt(LC) and zeta = sqrt(L/C)/(2R). The s=0 zero is real and
// is cancelled by the stability plot's double log differentiation.
func SecondOrder(zeta, fn float64) *netlist.Circuit {
	c := netlist.NewCircuit("normalized second-order tank")
	wn := 2 * math.Pi * fn
	cap := 1e-9
	l := 1 / (wn * wn * cap)
	r := math.Sqrt(l/cap) / (2 * zeta)
	c.AddR("R1", "t", "0", r)
	c.AddL("L1", "t", "0", l)
	c.AddC("C1", "t", "0", cap)
	return c
}

// OpAmpParams are the tunable elements of the behavioral Fig. 1 op-amp.
// Defaults (from OpAmpDefaults) hit the paper's published numbers.
type OpAmpParams struct {
	Gm1   float64 // input-stage transconductance
	R1    float64 // first-stage output resistance
	C1    float64 // Miller compensation capacitor (paper's "C1")
	RZero float64 // series zero resistor in the Miller branch ("rzero")
	Gm2   float64 // second-stage transconductance
	R2    float64 // second-stage output resistance
	C2    float64 // second-stage output capacitance
	ROut  float64 // output buffer series resistance
	CLoad float64 // load capacitance ("cload")
	RFb   float64 // feedback sense resistance
	CFb   float64 // feedback sense parasitic capacitance
}

// OpAmpDefaults returns the tuned nominal values. Derivation: a loop
// model GBW/s * (1 - s/z)/((1+s/p2)(1+s/p3)) fitted to the paper's six
// published measurements (0 dB at 2.4 MHz, PM 20 deg, 180 deg at 3.5 MHz,
// closed-loop peak -28.9 at 3.16 MHz, step overshoot ~55 %) solves to
// GBW = 3.0 MHz, p2 = 4.07 MHz, p3 = 9.3 MHz, RHP zero z = 7.6 MHz; the
// element values below were then refined against the simulated circuit
// itself, landing at fc 2.64 MHz, PM 21.8 deg, f180 4.02 MHz, stability
// peak -28.8 at 2.91 MHz, overshoot 60 % — every Fig. 2/3/4 observable
// within ~15 % of the paper's reading.
func OpAmpDefaults() OpAmpParams {
	return OpAmpParams{
		Gm1:   175.3e-6,
		R1:    10e6,
		C1:    8e-12,
		RZero: 503,
		Gm2:   280.5e-6,
		R2:    1e6,
		C2:    2.41e-12,
		ROut:  547,
		CLoad: 12.9e-12,
		RFb:   10,
		CFb:   1e-12,
	}
}

// OpAmpBuffer builds the Fig. 1 op-amp connected as a unity-gain buffer.
// Node names follow the paper's Table 2: the main loop is visible at
// Output, net052 (inside the Miller branch), net136 (first-stage output),
// net138 (second-stage output), and net99 (feedback sense node). The
// input source V1 carries both an AC magnitude (for the Fig. 3 response)
// and a small step (for Fig. 2).
func OpAmpBuffer(p OpAmpParams) *netlist.Circuit {
	c := netlist.NewCircuit("2 MHz op-amp as unity-gain buffer (Fig. 1)")
	// Input step: 100 mV to keep the macro linear region meaningless (the
	// macro is linear; amplitude is arbitrary) while matching Fig. 2's
	// small-signal character.
	c.AddV("V1", "inp", "0", netlist.SourceSpec{
		ACMag: 1,
		Tran:  netlist.PulseFunc{V1: 0, V2: 0.1, TD: 1e-7, TR: 1e-9, TF: 1e-9, PW: 1, PER: 2},
	})
	// First stage (inverting): net136 = -gm1*R1*(inp - net99); combined
	// with the inverting second stage the forward gain A is positive, so
	// the net99 subtraction closes a negative feedback loop.
	c.AddG("G1", "net136", "0", "inp", "net99", p.Gm1)
	c.AddR("R1", "net136", "0", p.R1)
	// Miller branch with the paper's rzero and C1: net136 -C1- net052
	// -rzero- net138.
	c.AddC("C1", "net136", "net052", p.C1)
	c.AddR("RZERO", "net052", "net138", p.RZero)
	// Second stage (inverting): gm2 * v(net136) into net138.
	c.AddG("G2", "net138", "0", "net136", "0", p.Gm2)
	c.AddR("R2", "net138", "0", p.R2)
	c.AddC("C2", "net138", "0", p.C2)
	// Output buffer resistance and load.
	c.AddR("ROUT", "net138", "output", p.ROut)
	c.AddC("CLOAD", "output", "0", p.CLoad)
	// Feedback sense path: output -> net99 (inverting input).
	c.AddR("RFB", "output", "net99", p.RFb)
	c.AddC("CFB", "net99", "0", p.CFb)
	return c
}

// OpAmpOpenLoop builds the same op-amp with the main feedback loop broken
// for the traditional Fig. 3 gain/phase analysis: the inverting input is
// driven by the AC source (through the same sense network) and the output
// is left loaded. This is the "black-box" baseline the paper compares
// against, and is only possible because the macro circuit has no biasing
// to disturb — the very limitation the methodology removes.
func OpAmpOpenLoop(p OpAmpParams) *netlist.Circuit {
	c := netlist.NewCircuit("2 MHz op-amp, loop opened for Bode analysis (Fig. 3)")
	c.AddV("V1", "inp", "0", netlist.SourceSpec{ACMag: 1})
	// Drive the inverting input directly; positive input grounded.
	// Loop gain observed at "output" is -A(s) * (sense transfer).
	c.AddR("RFB", "inp", "net99", p.RFb)
	c.AddC("CFB", "net99", "0", p.CFb)
	c.AddG("G1", "net136", "0", "0", "net99", p.Gm1)
	c.AddR("R1", "net136", "0", p.R1)
	c.AddC("C1", "net136", "net052", p.C1)
	c.AddR("RZERO", "net052", "net138", p.RZero)
	c.AddG("G2", "net138", "0", "net136", "0", p.Gm2)
	c.AddR("R2", "net138", "0", p.R2)
	c.AddC("C2", "net138", "0", p.C2)
	c.AddR("ROUT", "net138", "output", p.ROut)
	c.AddC("CLOAD", "output", "0", p.CLoad)
	return c
}

// BiasParams tune the zero-TC bias cell's local loops.
type BiasParams struct {
	// Loop A: the 47.9 MHz loop (nodes net81, net056 deep; net17 shallow).
	FnA, ZetaA float64
	// Loop B: the 51.3 MHz loop (net013, net75 deep; net57 medium;
	// net16, net019 shallow).
	FnB, ZetaB float64
	// Loop C: the 36.3 MHz borderline loop (net066).
	FnC float64
}

// BiasDefaults places the loops at the paper's Table 2 frequencies with
// damping matching the published peak depths (4.5-5.3 -> zeta ~ 0.44,
// i.e. 16-25 % equivalent overshoot as the paper reads from Table 1).
func BiasDefaults() BiasParams {
	// Values are pre-compensated for spectator loading (which detunes and
	// damps the cores): loop A lands at ~47.9 MHz with peak ~ -5.3, loop B
	// at ~51.3 MHz with peak ~ -5.1, loop C at ~36.3 MHz with peak ~ -0.95.
	return BiasParams{
		FnA: 48.3e6, ZetaA: 0.405,
		FnB: 54.5e6, ZetaB: 0.345,
		FnC: 35.2e6,
	}
}

// twoPoleLoop adds a two-stage gm loop (one inverting, one non-inverting:
// net negative feedback) between nodes a and b with equal R/C at both.
// Closed-loop poles satisfy (1+sRC)^2 + K = 0, so
//
//	wn = sqrt(1+K)/(RC),  zeta = 1/sqrt(1+K),  K = (gm R)^2.
func twoPoleLoop(c *netlist.Circuit, tag, a, b string, fn, zeta float64) {
	k := 1/(zeta*zeta) - 1
	gmr := math.Sqrt(k)
	r := 10e3
	rc := math.Sqrt(1+k) / (2 * math.Pi * fn)
	cap := rc / r
	gm := gmr / r
	c.AddR("RA"+tag, a, "0", r)
	c.AddC("CA"+tag, a, "0", cap)
	c.AddR("RB"+tag, b, "0", r)
	c.AddC("CB"+tag, b, "0", cap)
	// a -> b non-inverting, b -> a inverting: loop sign negative.
	c.AddG("GF"+tag, "0", b, a, "0", gm)
	c.AddG("GR"+tag, a, "0", b, "0", gm)
}

// spectator couples a lightly loaded node to a loop node through a large
// resistance, producing the shallow "participating" peaks of Table 2.
func spectator(c *netlist.Circuit, tag, node, loopNode string, r, cap float64) {
	c.AddR("RS"+tag, loopNode, node, r)
	c.AddC("CS"+tag, node, "0", cap)
}

// BiasCircuit builds the zero-TC bias cell equivalent (Fig. 5): three
// local feedback loops with the paper's node names.
func BiasCircuit(p BiasParams) *netlist.Circuit {
	c := netlist.NewCircuit("zero-TC bias cell with local loops (Fig. 5)")
	addBias(c, p)
	return c
}

func addBias(c *netlist.Circuit, p BiasParams) {
	// Loop A at ~47.9 MHz: resonator core net81 <-> net056, spectator net17.
	twoPoleLoop(c, "a", "net81", "net056", p.FnA, p.ZetaA)
	spectator(c, "a17", "net17", "net81", 100e3, 0.03e-12)

	// Loop B at ~51.3 MHz: core net013 <-> net75; net57 taps the coupling
	// path; net16 and net019 are weakly coupled spectators.
	twoPoleLoop(c, "b", "net013", "net75", p.FnB, p.ZetaB)
	spectator(c, "b57", "net57", "net013", 15e3, 0.15e-12)
	spectator(c, "b16", "net16", "net75", 80e3, 0.04e-12)
	spectator(c, "b19", "net019", "net57", 80e3, 0.04e-12)

	// Loop C at ~36.3 MHz: barely-resonant single visible node net066:
	// a low-gain loop whose poles sit near coincidence (peak ~ -1).
	twoPoleLoop(c, "c", "net066", "net066x", p.FnC, 0.82)
}

// FullCircuit builds the complete Table 2 workload: the buffer op-amp and
// the bias cell in one netlist (the bias cell rails the op-amp in the real
// product; the macro keeps them electrically separate, which leaves the
// per-node stability signatures unchanged).
func FullCircuit() *netlist.Circuit {
	c := OpAmpBuffer(OpAmpDefaults())
	c.Title = "2 MHz op-amp buffer + zero-TC bias cell (Table 2 workload)"
	addBias(c, BiasDefaults())
	return c
}

// Table2Nodes lists the report nodes of the paper's Table 2 in paper
// order.
func Table2Nodes() []string {
	return []string{
		"output", "net052", "net136", "net138", "net99",
		"net066",
		"net81", "net17", "net056",
		"net013", "net57", "net16", "net75", "net019",
	}
}

// RCLadder builds an n-stage RC ladder driven by a source, used by the
// solver benchmarks.
func RCLadder(n int) *netlist.Circuit {
	c := netlist.NewCircuit("rc ladder")
	c.AddV("V1", "n000", "0", netlist.SourceSpec{ACMag: 1})
	prev := "n000"
	for i := 1; i <= n; i++ {
		cur := ladderName(i)
		c.AddR("R"+cur, prev, cur, 1e3)
		c.AddC("C"+cur, cur, "0", 1e-12)
		prev = cur
	}
	return c
}

func ladderName(i int) string {
	digits := []byte{'0' + byte(i/100%10), '0' + byte(i/10%10), '0' + byte(i%10)}
	return "n" + string(digits)
}

// ResonatorField builds a circuit with k independent two-pole loops at
// geometrically spaced frequencies — a synthetic all-nodes workload with a
// known answer, used for scaling benchmarks and property tests.
func ResonatorField(k int, f0 float64, zeta float64) *netlist.Circuit {
	c := netlist.NewCircuit("resonator field")
	for i := 0; i < k; i++ {
		fn := f0 * math.Pow(2, float64(i))
		a := "ra" + ladderName(i)[1:]
		b := "rb" + ladderName(i)[1:]
		twoPoleLoop(c, "f"+ladderName(i)[1:], a, b, fn, zeta)
	}
	return c
}
