package circuits

import (
	"context"
	"math"
	"testing"

	"acstab/internal/analysis"
	"acstab/internal/num"
)

// dominantPair returns the least-damped complex pole pair in band.
func dominantPair(t *testing.T, s *analysis.Sim, minHz, maxHz float64) *analysis.Pole {
	t.Helper()
	op, err := s.OP(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	poles, err := s.Poles(context.Background(), op, minHz, maxHz)
	if err != nil {
		t.Fatal(err)
	}
	pairs := analysis.ComplexPolePairs(poles, 1e-6)
	var dom *analysis.Pole
	for i := range pairs {
		if dom == nil || pairs[i].Zeta < dom.Zeta {
			dom = &pairs[i]
		}
	}
	return dom
}

// TestStabilityPlotMatchesExactPolesMacro is the repo's strongest
// validation of the paper's method: the zeta and natural frequency the
// stability plot reads off the node response must match the exact
// dominant eigenvalues of the linearized MNA system.
func TestStabilityPlotMatchesExactPolesMacro(t *testing.T) {
	c := OpAmpBuffer(OpAmpDefaults())
	c.ZeroACSources()
	s := sim(t, c)
	dom := dominantPair(t, s, 1e4, 1e9)
	if dom == nil {
		t.Fatal("no complex poles found")
	}
	est := nodePeak(t, s, "output", 1e3, 1e9)
	if est == nil {
		t.Fatal("no stability peak")
	}
	t.Logf("exact pole: fn=%.5g zeta=%.5g; stability plot: fn=%.5g zeta=%.5g",
		dom.FreqHz, dom.Zeta, est.Freq, est.Zeta)
	if !num.ApproxEqual(est.Freq, dom.FreqHz, 0.02, 0) {
		t.Errorf("fn: plot %g vs exact %g", est.Freq, dom.FreqHz)
	}
	if !num.ApproxEqual(est.Zeta, dom.Zeta, 0.05, 0) {
		t.Errorf("zeta: plot %g vs exact %g", est.Zeta, dom.Zeta)
	}
}

// TestStabilityPlotMatchesExactPolesTransistor repeats the cross-check on
// the transistor-level op-amp, where the poles come from real device
// capacitances.
func TestStabilityPlotMatchesExactPolesTransistor(t *testing.T) {
	c := TransistorOpAmp()
	c.ZeroACSources()
	s := sim(t, c)
	dom := dominantPair(t, s, 1e6, 1e10)
	if dom == nil {
		t.Fatal("no complex poles found")
	}
	est := nodePeak(t, s, "vout", 1e4, 1e10)
	if est == nil {
		t.Fatal("no stability peak")
	}
	t.Logf("exact pole: fn=%.5g zeta=%.5g; stability plot: fn=%.5g zeta=%.5g",
		dom.FreqHz, dom.Zeta, est.Freq, est.Zeta)
	if !num.ApproxEqual(est.Freq, dom.FreqHz, 0.03, 0) {
		t.Errorf("fn: plot %g vs exact %g", est.Freq, dom.FreqHz)
	}
	if !num.ApproxEqual(est.Zeta, dom.Zeta, 0.08, 0) {
		t.Errorf("zeta: plot %g vs exact %g", est.Zeta, dom.Zeta)
	}
}

// TestBiasLoopsMatchExactPoles validates the local-loop findings (the
// Table 2 content) against the exact pole set.
func TestBiasLoopsMatchExactPoles(t *testing.T) {
	s := sim(t, BiasCircuit(BiasDefaults()))
	op, err := s.OP(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	poles, err := s.Poles(context.Background(), op, 1e6, 1e10)
	if err != nil {
		t.Fatal(err)
	}
	pairs := analysis.ComplexPolePairs(poles, 1e-6)
	if len(pairs) < 3 {
		t.Fatalf("expected >= 3 complex pairs, got %+v", pairs)
	}
	// The deep loops found by the tool at ~47.9 and ~51.2 MHz must be
	// genuine eigenvalues.
	foundA, foundB := false, false
	for _, p := range pairs {
		if num.ApproxEqual(p.FreqHz, 47.9e6, 0.03, 0) && math.Abs(p.Zeta-0.42) < 0.05 {
			foundA = true
		}
		if num.ApproxEqual(p.FreqHz, 51.2e6, 0.03, 0) && math.Abs(p.Zeta-0.43) < 0.05 {
			foundB = true
		}
	}
	if !foundA || !foundB {
		t.Errorf("bias loop poles not found exactly: %+v", pairs)
	}
}
