package circuits

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"acstab/internal/analysis"
	"acstab/internal/num"
	"acstab/internal/stab"
)

func measureAll(t *testing.T, p OpAmpParams) (fc, pm, f180, fn, peak, os float64) {
	t.Helper()
	s := sim(t, OpAmpOpenLoop(p))
	op, err := s.OP(context.Background())
	if err != nil {
		return
	}
	freqs := num.LogGridPPD(1e2, 1e9, 60)
	res, err := s.AC(context.Background(), freqs, op)
	if err != nil {
		return
	}
	w, _ := res.NodeWave("output")
	g := w.DB20()
	ph := w.PhaseDeg()
	if cr := g.Cross(0); len(cr) > 0 {
		fc = cr[0]
		pm = ph.At(fc)
	}
	if c0 := ph.Cross(0); len(c0) > 0 {
		f180 = c0[0]
	}
	cb := OpAmpBuffer(p)
	cb.ZeroACSources()
	s2 := sim(t, cb)
	op2, err := s2.OP(context.Background())
	if err != nil {
		return
	}
	zw, err := s2.Impedance(context.Background(), num.LogGridPPD(1e4, 1e8, 60), op2, "output")
	if err != nil {
		return
	}
	r2, err := stab.Analyze(zw.Mag(), stab.DefaultOptions())
	if err != nil || r2.Dominant == nil {
		return
	}
	fn = r2.Dominant.Freq
	peak = r2.Dominant.Value
	s3 := sim(t, OpAmpBuffer(p))
	tr, err := s3.Tran(context.Background(), analysis.TranSpec{TStop: 3e-6, TStep: 2e-9})
	if err != nil {
		return
	}
	wt, _ := tr.NodeWave("output")
	os = wt.OvershootPct()
	return
}

func costAll(t *testing.T, p OpAmpParams) float64 {
	fc, pm, f180, fn, peak, os := measureAll(t, p)
	if fn == 0 || fc == 0 || os == 0 {
		return math.Inf(1)
	}
	sq := func(x float64) float64 { return x * x }
	c := sq((fc-2.4e6)/2.4e6) + sq((pm-20)/20*0.7) + sq((f180-3.5e6)/3.5e6)
	c += 8*sq((fn-3.16e6)/3.16e6) + 4*sq((peak+28.9)/28.9) + 2*sq((os-55)/55)
	return c
}

func TestTuneOpamp(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	best := OpAmpDefaults()
	bc := costAll(t, best)
	fc, pm, f180, fn, peak, os := measureAll(t, best)
	t.Logf("start: cost=%.4g fc=%.4g pm=%.4g f180=%.4g fn=%.4g peak=%.4g os=%.4g", bc, fc, pm, f180, fn, peak, os)
	r := rand.New(rand.NewSource(23))
	for it := 0; it < 800; it++ {
		c := best
		scale := math.Pow(10, -0.7-1.3*r.Float64())
		switch r.Intn(6) {
		case 0:
			c.Gm1 *= 1 + scale*r.NormFloat64()
		case 1:
			c.Gm2 *= 1 + scale*r.NormFloat64()
		case 2:
			c.C2 *= 1 + scale*r.NormFloat64()
		case 3:
			c.CLoad *= 1 + scale*r.NormFloat64()
		case 4:
			c.ROut *= 1 + scale*r.NormFloat64()
		case 5:
			c.RZero *= 1 + scale*r.NormFloat64()
		}
		if c.ROut < 30 {
			c.ROut = 30
		}
		if cc := costAll(t, c); cc < bc {
			best, bc = c, cc
		}
	}
	fc, pm, f180, fn, peak, os = measureAll(t, best)
	t.Logf("best: cost=%.4g fc=%.4g pm=%.4g f180=%.4g fn=%.4g peak=%.4g os=%.4g", bc, fc, pm, f180, fn, peak, os)
	t.Logf("params: %+v", best)
}
