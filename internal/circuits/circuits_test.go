package circuits

import (
	"context"
	"math"
	"testing"

	"acstab/internal/analysis"
	"acstab/internal/mna"
	"acstab/internal/netlist"
	"acstab/internal/num"
	"acstab/internal/stab"
)

func sim(t *testing.T, c *netlist.Circuit) *analysis.Sim {
	t.Helper()
	flat, err := netlist.Flatten(c)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := mna.Compile(flat)
	if err != nil {
		t.Fatal(err)
	}
	return analysis.New(sys)
}

// nodePeak runs the stability analysis at one node and returns the
// deepest negative peak (any classification).
func nodePeak(t *testing.T, s *analysis.Sim, node string, fstart, fstop float64) *stab.Peak {
	t.Helper()
	op, err := s.OP(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	zw, err := s.Impedance(context.Background(), num.LogGridPPD(fstart, fstop, 40), op, node)
	if err != nil {
		t.Fatal(err)
	}
	res, err := stab.Analyze(zw.Mag(), stab.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var best *stab.Peak
	for i := range res.Peaks {
		p := &res.Peaks[i]
		if p.IsZero {
			continue
		}
		if best == nil || p.Value < best.Value {
			best = p
		}
	}
	return best
}

func TestFig3OpenLoopShape(t *testing.T) {
	s := sim(t, OpAmpOpenLoop(OpAmpDefaults()))
	op, err := s.OP(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	freqs := num.LogGridPPD(1e2, 1e9, 60)
	res, err := s.AC(context.Background(), freqs, op)
	if err != nil {
		t.Fatal(err)
	}
	w, err := res.NodeWave("output")
	if err != nil {
		t.Fatal(err)
	}
	gain := w.DB20()
	phase := w.PhaseDeg()
	cross := gain.Cross(0)
	if len(cross) == 0 {
		t.Fatal("no 0 dB crossover")
	}
	fc := cross[0]
	// The measured output phase equals the loop's phase margin at fc (the
	// loop is non-inverted in this observation), and the loop hits -180
	// where the measured phase crosses zero.
	pm := phase.At(fc)
	var f180 float64
	if c0 := phase.Cross(0); len(c0) > 0 {
		f180 = c0[0]
	}
	t.Logf("Fig 3: fc=%.4g pm=%.3g f180=%.4g", fc, pm, f180)
	if !num.ApproxEqual(fc, 2.4e6, 0.13, 0) {
		t.Errorf("0 dB crossover = %g, want ~2.4 MHz", fc)
	}
	if pm < 15 || pm > 26 {
		t.Errorf("phase margin = %g, want ~20 degrees", pm)
	}
	if !num.ApproxEqual(f180, 3.5e6, 0.17, 0) {
		t.Errorf("180-degree frequency = %g, want ~3.5 MHz", f180)
	}
	// DC loop gain is large (the paper circuit is a precision op-amp).
	if g0 := gain.At(freqs[0]); g0 < 60 {
		t.Errorf("DC loop gain = %g dB, want > 60", g0)
	}
}

func TestFig4StabilityPeak(t *testing.T) {
	c := OpAmpBuffer(OpAmpDefaults())
	c.ZeroACSources()
	s := sim(t, c)
	p := nodePeak(t, s, "output", 1e3, 1e9)
	if p == nil {
		t.Fatal("no peak at output")
	}
	t.Logf("Fig 4: peak=%.4g at %.4g (zeta=%.4g pm=%.3g os=%.3g)",
		p.Value, p.Freq, p.Zeta, p.PhaseMarginDeg, p.OvershootPct)
	if !num.ApproxEqual(p.Freq, 3.16e6, 0.09, 0) {
		t.Errorf("peak frequency = %g, want ~3.16 MHz", p.Freq)
	}
	if p.Value < -34 || p.Value > -24 {
		t.Errorf("peak value = %g, want ~-28.9", p.Value)
	}
	if p.Type != stab.PeakNormal {
		t.Errorf("peak type = %v", p.Type)
	}
	// The paper's chain of inference: peak -> zeta ~0.19 -> PM just under
	// 20 -> overshoot ~53%.
	if p.PhaseMarginDeg < 16 || p.PhaseMarginDeg > 23 {
		t.Errorf("estimated PM = %g", p.PhaseMarginDeg)
	}
	if p.OvershootPct < 48 || p.OvershootPct > 62 {
		t.Errorf("estimated overshoot = %g", p.OvershootPct)
	}
}

func TestFig2StepOvershoot(t *testing.T) {
	s := sim(t, OpAmpBuffer(OpAmpDefaults()))
	res, err := s.Tran(context.Background(), analysis.TranSpec{TStop: 3e-6, TStep: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	w, err := res.NodeWave("output")
	if err != nil {
		t.Fatal(err)
	}
	os := w.OvershootPct()
	t.Logf("Fig 2: step overshoot = %.3g%%", os)
	if os < 45 || os > 65 {
		t.Errorf("overshoot = %g%%, want ~55%%", os)
	}
}

func TestFig2ConsistentWithFig4(t *testing.T) {
	// The methodology's headline consistency check: overshoot measured in
	// transient matches the overshoot inferred from the stability peak.
	c := OpAmpBuffer(OpAmpDefaults())
	c.ZeroACSources()
	s := sim(t, c)
	p := nodePeak(t, s, "output", 1e3, 1e9)
	if p == nil {
		t.Fatal("no peak")
	}
	s2 := sim(t, OpAmpBuffer(OpAmpDefaults()))
	res, err := s2.Tran(context.Background(), analysis.TranSpec{TStop: 3e-6, TStep: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	w, _ := res.NodeWave("output")
	measured := w.OvershootPct()
	if math.Abs(measured-p.OvershootPct) > 8 {
		t.Errorf("transient overshoot %g%% vs stability-plot prediction %g%%",
			measured, p.OvershootPct)
	}
}

func TestBiasLoopsTable2Shape(t *testing.T) {
	s := sim(t, BiasCircuit(BiasDefaults()))
	cases := []struct {
		node       string
		fn         float64 // paper natural frequency
		minV, maxV float64 // acceptable peak band (negative values)
		fnTol      float64
	}{
		{"net81", 47.9e6, -6.5, -4.5, 0.05},
		{"net056", 47.9e6, -6.5, -4.0, 0.05},
		{"net17", 46.8e6, -1.5, -0.3, 0.15},
		{"net013", 51.3e6, -6.5, -4.0, 0.05},
		{"net75", 51.3e6, -6.5, -4.0, 0.05},
		{"net57", 50.1e6, -4.6, -1.0, 0.12},
		{"net16", 50.1e6, -1.5, -0.2, 0.15},
		{"net066", 36.3e6, -1.5, -0.6, 0.05},
	}
	for _, c := range cases {
		p := nodePeak(t, s, c.node, 1e5, 1e10)
		if p == nil {
			t.Errorf("%s: no peak", c.node)
			continue
		}
		t.Logf("%-8s peak=%.4g at %.4g MHz (%v)", c.node, p.Value, p.Freq/1e6, p.Type)
		if p.Value < c.minV || p.Value > c.maxV {
			t.Errorf("%s: peak %g outside [%g, %g]", c.node, p.Value, c.minV, c.maxV)
		}
		if !num.ApproxEqual(p.Freq, c.fn, c.fnTol, 0) {
			t.Errorf("%s: fn %g, want ~%g", c.node, p.Freq, c.fn)
		}
	}
}

func TestSecondOrderCircuitMatchesTheory(t *testing.T) {
	for _, zeta := range []float64{0.2, 0.5} {
		fn := 1e6
		s := sim(t, SecondOrder(zeta, fn))
		p := nodePeak(t, s, "t", 1e3, 1e9)
		if p == nil {
			t.Fatalf("zeta=%g: no peak", zeta)
		}
		if !num.ApproxEqual(p.Freq, fn, 0.03, 0) || !num.ApproxEqual(p.Zeta, zeta, 0.05, 0) {
			t.Errorf("zeta=%g: recovered fn=%g zeta=%g", zeta, p.Freq, p.Zeta)
		}
	}
}

func TestFullCircuitHasAllTable2Nodes(t *testing.T) {
	c := FullCircuit()
	flat, err := netlist.Flatten(c)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := mna.Compile(flat)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range Table2Nodes() {
		if _, ok := sys.NodeOf(n); !ok {
			t.Errorf("node %q missing from full circuit", n)
		}
	}
}

func TestRCLadderAndResonatorFieldBuild(t *testing.T) {
	for _, n := range []int{5, 50} {
		s := sim(t, RCLadder(n))
		if s.Sys.NumNodes() != n+1 {
			t.Errorf("ladder %d: %d nodes", n, s.Sys.NumNodes())
		}
	}
	c := ResonatorField(4, 1e6, 0.3)
	s := sim(t, c)
	if s.Sys.NumNodes() != 8 {
		t.Errorf("field nodes = %d, want 8", s.Sys.NumNodes())
	}
	// Each resonator shows its pair at the right frequency.
	p := nodePeak(t, s, "ra000", 1e4, 1e9)
	if p == nil || !num.ApproxEqual(p.Freq, 1e6, 0.05, 0) {
		t.Errorf("resonator 0 peak: %+v", p)
	}
}
