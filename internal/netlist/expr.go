package netlist

import (
	"fmt"
	"math"
	"strings"

	"acstab/internal/num"
)

// EvalExpr evaluates a scalar design-variable expression with the given
// parameter bindings. Supported: + - * / ^ parentheses, SPICE numeric
// literals with engineering suffixes, parameter names, and the functions
// sqrt, abs, exp, ln, log10, sin, cos, tan, atan, min(a,b), max(a,b),
// pow(a,b).
//
// Design variables ("Design Variables Support" in the paper's feature
// list) flow through here: netlist expressions written in terms of .param
// names are evaluated against the variable set configured on the run.
func EvalExpr(expr string, params map[string]float64) (float64, error) {
	p := &exprParser{src: expr, params: params}
	v, err := p.expr()
	if err != nil {
		return 0, fmt.Errorf("netlist: expr %q: %w", expr, err)
	}
	p.space()
	if p.pos != len(p.src) {
		return 0, fmt.Errorf("netlist: expr %q: trailing input at %q", expr, p.src[p.pos:])
	}
	return v, nil
}

type exprParser struct {
	src    string
	pos    int
	params map[string]float64
}

func (p *exprParser) space() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *exprParser) peek() byte {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

func (p *exprParser) expr() (float64, error) {
	v, err := p.term()
	if err != nil {
		return 0, err
	}
	for {
		p.space()
		op := p.peek()
		if op != '+' && op != '-' {
			return v, nil
		}
		p.pos++
		r, err := p.term()
		if err != nil {
			return 0, err
		}
		if op == '+' {
			v += r
		} else {
			v -= r
		}
	}
}

func (p *exprParser) term() (float64, error) {
	v, err := p.unary()
	if err != nil {
		return 0, err
	}
	for {
		p.space()
		op := p.peek()
		if op != '*' && op != '/' {
			return v, nil
		}
		p.pos++
		r, err := p.unary()
		if err != nil {
			return 0, err
		}
		if op == '*' {
			v *= r
		} else {
			if r == 0 {
				return 0, fmt.Errorf("division by zero")
			}
			v /= r
		}
	}
}

func (p *exprParser) power() (float64, error) {
	// Exponentiation binds tighter than unary minus (-a^2 == -(a^2)) and is
	// right associative (2^3^2 == 2^9).
	v, err := p.primary()
	if err != nil {
		return 0, err
	}
	p.space()
	if p.peek() == '^' {
		p.pos++
		r, err := p.unary()
		if err != nil {
			return 0, err
		}
		return math.Pow(v, r), nil
	}
	return v, nil
}

func (p *exprParser) unary() (float64, error) {
	p.space()
	switch p.peek() {
	case '-':
		p.pos++
		v, err := p.unary()
		return -v, err
	case '+':
		p.pos++
		return p.unary()
	}
	return p.power()
}

func (p *exprParser) primary() (float64, error) {
	p.space()
	c := p.peek()
	switch {
	case c == '(':
		p.pos++
		v, err := p.expr()
		if err != nil {
			return 0, err
		}
		p.space()
		if p.peek() != ')' {
			return 0, fmt.Errorf("missing ')'")
		}
		p.pos++
		return v, nil
	case c >= '0' && c <= '9' || c == '.':
		return p.number()
	case isExprIdent(c):
		return p.identOrCall()
	}
	return 0, fmt.Errorf("unexpected %q", string(c))
}

func isExprIdent(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' ||
		c >= '0' && c <= '9'
}

func (p *exprParser) number() (float64, error) {
	start := p.pos
	// Scan digits, dot, exponent, then any engineering-suffix letters.
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c >= '0' && c <= '9' || c == '.' {
			p.pos++
			continue
		}
		if (c == 'e' || c == 'E') && p.pos+1 < len(p.src) {
			n := p.src[p.pos+1]
			if n >= '0' && n <= '9' {
				p.pos++
				continue
			}
			if (n == '+' || n == '-') && p.pos+2 < len(p.src) &&
				p.src[p.pos+2] >= '0' && p.src[p.pos+2] <= '9' {
				p.pos += 2 // consume 'e' and the sign
				continue
			}
		}
		break
	}
	// Engineering suffix letters immediately following the number.
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' {
			p.pos++
			continue
		}
		break
	}
	return num.ParseValue(p.src[start:p.pos])
}

func (p *exprParser) identOrCall() (float64, error) {
	start := p.pos
	for p.pos < len(p.src) && isExprIdent(p.src[p.pos]) {
		p.pos++
	}
	name := strings.ToLower(p.src[start:p.pos])
	p.space()
	if p.peek() != '(' {
		// Parameter or constant.
		switch name {
		case "pi":
			return math.Pi, nil
		}
		if p.params != nil {
			if v, ok := p.params[name]; ok {
				return v, nil
			}
		}
		return 0, fmt.Errorf("unknown parameter %q", name)
	}
	p.pos++ // '('
	var args []float64
	p.space()
	if p.peek() != ')' {
		for {
			a, err := p.expr()
			if err != nil {
				return 0, err
			}
			args = append(args, a)
			p.space()
			if p.peek() == ',' {
				p.pos++
				continue
			}
			break
		}
	}
	if p.peek() != ')' {
		return 0, fmt.Errorf("missing ')' in call to %q", name)
	}
	p.pos++
	one := func(f func(float64) float64) (float64, error) {
		if len(args) != 1 {
			return 0, fmt.Errorf("%s wants 1 argument", name)
		}
		return f(args[0]), nil
	}
	two := func(f func(a, b float64) float64) (float64, error) {
		if len(args) != 2 {
			return 0, fmt.Errorf("%s wants 2 arguments", name)
		}
		return f(args[0], args[1]), nil
	}
	switch name {
	case "sqrt":
		return one(math.Sqrt)
	case "abs":
		return one(math.Abs)
	case "exp":
		return one(math.Exp)
	case "ln", "log":
		return one(math.Log)
	case "log10":
		return one(math.Log10)
	case "sin":
		return one(math.Sin)
	case "cos":
		return one(math.Cos)
	case "tan":
		return one(math.Tan)
	case "atan":
		return one(math.Atan)
	case "min":
		return two(math.Min)
	case "max":
		return two(math.Max)
	case "pow":
		return two(math.Pow)
	default:
		return 0, fmt.Errorf("unknown function %q", name)
	}
}
