package netlist

import (
	"math"
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *Circuit {
	t.Helper()
	c, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return c
}

func TestParseBasicRC(t *testing.T) {
	c := mustParse(t, `rc lowpass
R1 in out 1k
C1 out 0 1u
V1 in 0 DC 1 AC 1
.end
`)
	if c.Title != "rc lowpass" {
		t.Errorf("title = %q", c.Title)
	}
	if len(c.Elems) != 3 {
		t.Fatalf("elements = %d", len(c.Elems))
	}
	r := c.Element("R1")
	if r == nil || r.Value != 1000 || r.Nodes[0] != "in" || r.Nodes[1] != "out" {
		t.Errorf("R1 = %+v", r)
	}
	v := c.Element("v1")
	if v.Src == nil || v.Src.DC != 1 || v.Src.ACMag != 1 {
		t.Errorf("V1 src = %+v", v.Src)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestParseContinuationAndComments(t *testing.T) {
	c := mustParse(t, `test
* a comment line
R1 a b
+ 2.2k ; inline comment
C1 b 0 1p
`)
	if len(c.Elems) != 2 {
		t.Fatalf("elements = %d", len(c.Elems))
	}
	if c.Element("r1").Value != 2200 {
		t.Errorf("R1 = %g", c.Element("r1").Value)
	}
}

func TestParseEngineeringSuffixes(t *testing.T) {
	c := mustParse(t, `suffixes
R1 a 0 10MEG
R2 a 0 1.5k
C1 a 0 2.2uF
L1 a 0 10nH
`)
	want := map[string]float64{"r1": 10e6, "r2": 1500, "c1": 2.2e-6, "l1": 10e-9}
	for name, w := range want {
		if got := c.Element(name).Value; math.Abs(got-w) > 1e-9*w {
			t.Errorf("%s = %g, want %g", name, got, w)
		}
	}
}

func TestParseControlledSources(t *testing.T) {
	c := mustParse(t, `ctrl
V1 in 0 1
R1 in mid 1k
E1 e1o 0 in 0 10
G1 g1o 0 mid 0 1m
F1 f1o 0 V1 5
H1 h1o 0 V1 2k
R2 e1o 0 1k
R3 g1o 0 1k
R4 f1o 0 1k
R5 h1o 0 1k
Rm mid 0 1k
`)
	e := c.Element("e1")
	if e.Type != VCVS || e.Value != 10 || len(e.Nodes) != 4 {
		t.Errorf("E1 = %+v", e)
	}
	f := c.Element("f1")
	if f.Ctrl != "v1" || f.Value != 5 {
		t.Errorf("F1 = %+v", f)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestParseDevicesAndModels(t *testing.T) {
	c := mustParse(t, `devices
D1 a 0 dmod
Q1 c b e qnpn
M1 d g s 0 nch w=10u l=1u
.model dmod d is=1e-14
.model qnpn npn (is=1e-16 bf=100 vaf=50)
.model nch nmos (vto=0.7 kp=100u lambda=0.02)
`)
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	m := c.Element("m1")
	if math.Abs(m.Param("w", 0)-10e-6) > 1e-12 || math.Abs(m.Param("l", 0)-1e-6) > 1e-12 {
		t.Errorf("M1 params = %+v", m.Params)
	}
	q := c.Models["qnpn"]
	if q.Type != "npn" || q.Param("bf", 0) != 100 {
		t.Errorf("qnpn = %+v", q)
	}
	if math.Abs(c.Models["nch"].Param("kp", 0)-100e-6) > 1e-12 {
		t.Errorf("kp = %g", c.Models["nch"].Param("kp", 0))
	}
}

func TestParseParams(t *testing.T) {
	c := mustParse(t, `params
.param rload=2k
.param cval={1/(2*pi*rload*fc)} fc=1meg
R1 out 0 {rload}
C1 out 0 {cval}
`)
	if c.Element("r1").Value != 2000 {
		t.Errorf("R1 = %g", c.Element("r1").Value)
	}
	want := 1 / (2 * math.Pi * 2000 * 1e6)
	if got := c.Element("c1").Value; math.Abs(got-want) > 1e-18 {
		t.Errorf("C1 = %g, want %g", got, want)
	}
}

func TestParamCircular(t *testing.T) {
	_, err := Parse(`circ
.param a={b} b={a}
R1 x 0 {a}
`)
	if err == nil {
		t.Fatal("expected circular param error")
	}
}

func TestParseSubcktFlatten(t *testing.T) {
	c := mustParse(t, `hier
.subckt divider in out params: rtop=1k rbot=1k
Rt in out {rtop}
Rb out 0 {rbot}
.ends
X1 a mid divider rtop=2k
X2 mid b divider rbot=500
V1 a 0 1
R1 b 0 1k
`)
	flat, err := Flatten(c)
	if err != nil {
		t.Fatal(err)
	}
	if flat.Element("x1.rt") == nil || flat.Element("x2.rb") == nil {
		t.Fatalf("flatten names wrong: %v", Format(flat))
	}
	if got := flat.Element("x1.rt").Value; got != 2000 {
		t.Errorf("x1.rt = %g, want 2000 (override)", got)
	}
	if got := flat.Element("x1.rb").Value; got != 1000 {
		t.Errorf("x1.rb = %g, want 1000 (default)", got)
	}
	if got := flat.Element("x2.rb").Value; got != 500 {
		t.Errorf("x2.rb = %g, want 500", got)
	}
	// Port mapping: x1.rt connects a->mid.
	rt := flat.Element("x1.rt")
	if rt.Nodes[0] != "a" || rt.Nodes[1] != "mid" {
		t.Errorf("x1.rt nodes = %v", rt.Nodes)
	}
	if err := flat.Validate(); err != nil {
		t.Errorf("flat Validate: %v", err)
	}
}

func TestFlattenNestedSubckt(t *testing.T) {
	c := mustParse(t, `nested
.subckt inner a b
R1 a b 1k
.ends
.subckt outer x y
X1 x m inner
X2 m y inner
.ends
Xtop p q outer
V1 p 0 1
R9 q 0 1k
`)
	flat, err := Flatten(c)
	if err != nil {
		t.Fatal(err)
	}
	if flat.Element("xtop.x1.r1") == nil {
		t.Fatalf("nested names missing; got:\n%s", Format(flat))
	}
	// Internal node of outer is xtop.m.
	r1 := flat.Element("xtop.x1.r1")
	if r1.Nodes[1] != "xtop.m" {
		t.Errorf("internal node = %q", r1.Nodes[1])
	}
}

func TestFlattenGroundInsideSubckt(t *testing.T) {
	c := mustParse(t, `gnd
.subckt cell a
R1 a 0 1k
.ends
X1 n1 cell
V1 n1 0 1
`)
	flat, err := Flatten(c)
	if err != nil {
		t.Fatal(err)
	}
	r := flat.Element("x1.r1")
	if r.Nodes[1] != "0" {
		t.Errorf("ground not preserved: %v", r.Nodes)
	}
}

func TestFlattenPortCountMismatch(t *testing.T) {
	c := mustParse(t, `bad
.subckt cell a b
R1 a b 1k
.ends
X1 n1 cell
`)
	if _, err := Flatten(c); err == nil {
		t.Fatal("expected port count error")
	}
}

func TestParseSources(t *testing.T) {
	c := mustParse(t, `sources
V1 a 0 PULSE(0 1 1u 1n 1n 5u 10u)
V2 b 0 SIN(0 1 1k)
V3 c 0 PWL(0 0 1m 1 2m 0)
I1 d 0 DC 1m AC 2 45
R1 a 0 1k
R2 b 0 1k
R3 c 0 1k
R4 d 0 1k
`)
	p, ok := c.Element("v1").Src.Tran.(PulseFunc)
	if !ok {
		t.Fatalf("V1 tran = %T", c.Element("v1").Src.Tran)
	}
	if p.V2 != 1 || math.Abs(p.TD-1e-6) > 1e-15 || math.Abs(p.PW-5e-6) > 1e-15 {
		t.Errorf("pulse = %+v", p)
	}
	if p.Eval(0) != 0 || p.Eval(2e-6) != 1 {
		t.Errorf("pulse eval wrong: %g %g", p.Eval(0), p.Eval(2e-6))
	}
	s, ok := c.Element("v2").Src.Tran.(SinFunc)
	if !ok || s.Freq != 1000 {
		t.Fatalf("V2 = %+v", s)
	}
	if math.Abs(s.Eval(0.25e-3)-1) > 1e-9 {
		t.Errorf("sin peak = %g", s.Eval(0.25e-3))
	}
	w, ok := c.Element("v3").Src.Tran.(PWLFunc)
	if !ok || len(w.T) != 3 {
		t.Fatalf("V3 = %+v", w)
	}
	if math.Abs(w.Eval(0.5e-3)-0.5) > 1e-9 {
		t.Errorf("pwl midpoint = %g", w.Eval(0.5e-3))
	}
	i := c.Element("i1").Src
	if i.DC != 1e-3 || i.ACMag != 2 || i.ACPhase != 45 {
		t.Errorf("I1 = %+v", i)
	}
}

func TestPulsePeriodic(t *testing.T) {
	p := PulseFunc{V1: 0, V2: 1, TR: 1e-9, TF: 1e-9, PW: 4e-6, PER: 10e-6}
	if p.Eval(2e-6) != 1 {
		t.Error("high during pulse")
	}
	if p.Eval(7e-6) != 0 {
		t.Error("low after pulse")
	}
	if p.Eval(12e-6) != 1 {
		t.Error("periodic repeat")
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []string{
		"dup\nR1 a 0 1k\nR1 b 0 1k\n",
		"missingmodel\nD1 a 0 nosuch\n",
		"missingctrl\nF1 a 0 Vnone 2\nR1 a 0 1k\n",
	}
	for _, src := range cases {
		c, err := Parse(src)
		if err != nil {
			continue // parse-time rejection also acceptable
		}
		if err := c.Validate(); err == nil {
			t.Errorf("expected validation error for %q", strings.SplitN(src, "\n", 2)[0])
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"t\nR1 a 0\n",                 // missing value
		"t\nZ1 a 0 1k\n",              // unknown type
		"t\n.subckt s a\nR1 a 0 1k\n", // unterminated subckt
		"t\n.ends\n",                  // ends without subckt
		"t\n.model foo\n",             // incomplete model
		"t\n.include other.cir\n",
		"t\n.bogus\n",
		"t\nR1 a 0 {undefined_param}\n",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("expected parse error for %q", src)
		}
	}
}

func TestNodesList(t *testing.T) {
	c := mustParse(t, `nodes
R1 b a 1k
C1 a 0 1p
V1 b 0 1
`)
	nodes := c.Nodes()
	if len(nodes) != 2 || nodes[0] != "a" || nodes[1] != "b" {
		t.Errorf("nodes = %v", nodes)
	}
}

func TestBuilderAPI(t *testing.T) {
	c := NewCircuit("built")
	c.AddR("R1", "in", "out", 1e3)
	c.AddC("C1", "out", "0", 1e-6)
	c.AddV("V1", "in", "0", SourceSpec{DC: 1, ACMag: 1})
	c.AddG("G1", "out", "0", "in", "0", 1e-3)
	c.AddQ("Q1", "c", "b", "e", "qnpn")
	c.SetModel("qnpn", "npn", map[string]float64{"is": 1e-16, "bf": 100})
	c.AddM("M1", "d", "g", "s", "0", "nch", 1e-5, 1e-6)
	c.SetModel("nch", "nmos", map[string]float64{"vto": 0.7, "kp": 1e-4})
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if c.Element("q1").Nodes[1] != "b" {
		t.Error("BJT node order")
	}
}

func TestZeroACSources(t *testing.T) {
	c := NewCircuit("z")
	c.AddV("V1", "a", "0", SourceSpec{DC: 1, ACMag: 1})
	c.AddI("I1", "b", "0", SourceSpec{ACMag: 2})
	c.AddV("V2", "c", "0", SourceSpec{DC: 5})
	if n := c.ZeroACSources(); n != 2 {
		t.Errorf("zeroed %d, want 2", n)
	}
	if c.Element("v1").Src.ACMag != 0 || c.Element("i1").Src.ACMag != 0 {
		t.Error("AC not zeroed")
	}
	if c.Element("v2").Src.DC != 5 {
		t.Error("DC must be preserved")
	}
}

func TestFormatRoundTrip(t *testing.T) {
	src := `round trip
R1 in out 1000
C1 out 0 1e-06
V1 in 0 DC 1 AC 1 0
`
	c := mustParse(t, src)
	text := Format(c)
	c2, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	if c2.Element("r1").Value != 1000 || c2.Element("c1").Value != 1e-6 {
		t.Error("values lost in round trip")
	}
	if c2.Element("v1").Src.ACMag != 1 {
		t.Error("source lost in round trip")
	}
}

func TestEvalExpr(t *testing.T) {
	params := map[string]float64{"a": 2, "b_x": 3}
	cases := []struct {
		expr string
		want float64
	}{
		{"1+2", 3},
		{"a*b_x", 6},
		{"2^3", 8},
		{"2^3^2", 512}, // right associative
		{"sqrt(16)", 4},
		{"min(2, 3)", 2},
		{"max(2, 3)", 3},
		{"pow(2, 10)", 1024},
		{"1k + 1", 1001},
		{"2*pi", 2 * math.Pi},
		{"-a^2", -4},
		{"exp(0)", 1},
		{"ln(exp(2))", 2},
		{"log10(1000)", 3},
		{"abs(-5)", 5},
		{"atan(1)*4", math.Pi},
	}
	for _, c := range cases {
		got, err := EvalExpr(c.expr, params)
		if err != nil {
			t.Errorf("%q: %v", c.expr, err)
			continue
		}
		if math.Abs(got-c.want) > 1e-12*(1+math.Abs(c.want)) {
			t.Errorf("%q = %g, want %g", c.expr, got, c.want)
		}
	}
}

func TestEvalExprErrors(t *testing.T) {
	for _, expr := range []string{"", "1/0", "nosuch", "f(1)", "(1", "1+", "sqrt(1,2)"} {
		if _, err := EvalExpr(expr, nil); err == nil {
			t.Errorf("%q: expected error", expr)
		}
	}
}

func TestIsGround(t *testing.T) {
	for _, g := range []string{"0", "gnd", "GND", "gnd!"} {
		if !IsGround(g) {
			t.Errorf("%q should be ground", g)
		}
	}
	if IsGround("out") {
		t.Error("out is not ground")
	}
}

func TestParseNodeset(t *testing.T) {
	c := mustParse(t, `ns
R1 a 0 1k
V1 a 0 1
.nodeset v(a)=0.9 v(b)=1.5
`)
	if c.NodeSet["a"] != 0.9 || c.NodeSet["b"] != 1.5 {
		t.Errorf("nodeset = %v", c.NodeSet)
	}
	flat, err := Flatten(c)
	if err != nil {
		t.Fatal(err)
	}
	if flat.NodeSet["a"] != 0.9 {
		t.Error("nodeset lost in flatten")
	}
	if _, err := Parse("ns\n.nodeset v(a)\n"); err == nil {
		t.Error("expected nodeset syntax error")
	}
}
