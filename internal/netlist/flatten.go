package netlist

import (
	"fmt"
	"sort"
	"strings"
)

// Flatten expands all subcircuit calls recursively, producing a circuit
// containing only primitive elements. Internal subckt nodes and element
// names are prefixed with the instance path ("x1.n3"), element value
// expressions are evaluated against the merged parameter scope (global
// design variables, subckt defaults, instance overrides), and subckt-local
// models are promoted into the flat model namespace.
func Flatten(c *Circuit) (*Circuit, error) {
	flat := NewCircuit(c.Title)
	flat.Temp = c.Temp
	for k, v := range c.Params {
		flat.Params[k] = v
	}
	for k, v := range c.Options {
		flat.Options[k] = v
	}
	for k, v := range c.Models {
		flat.Models[k] = v
	}
	for k, v := range c.NodeSet {
		flat.NodeSet[k] = v
	}
	for _, e := range c.Elems {
		if err := expand(flat, c, e, "", nil, c.Params, 0); err != nil {
			return nil, err
		}
	}
	return flat, nil
}

const maxDepth = 50

// expand emits element e into flat. prefix is the instance path ("x1." or
// ""), portMap translates subckt-internal node names, and scope is the
// parameter environment for expression evaluation.
func expand(flat, top *Circuit, e *Element, prefix string, portMap map[string]string, scope map[string]float64, depth int) error {
	if depth > maxDepth {
		return fmt.Errorf("netlist: subckt nesting deeper than %d (recursive subckts?)", maxDepth)
	}
	mapNode := func(n string) string {
		if portMap != nil {
			if m, ok := portMap[n]; ok {
				return m
			}
		}
		if IsGround(n) {
			return "0"
		}
		if portMap == nil {
			return n // top level: keep name
		}
		return prefix + n // internal node
	}

	if e.Type != Subcall {
		ne := &Element{
			Name:       prefix + e.Name,
			Type:       e.Type,
			Value:      e.Value,
			ValueExpr:  e.ValueExpr,
			Model:      e.Model,
			Ctrl:       e.Ctrl,
			ParamExprs: e.ParamExprs,
			srcTokens:  e.srcTokens,
		}
		if e.Src != nil {
			// Deep copy so post-flatten edits (e.g. the tool's AC
			// auto-zeroing) never mutate the source circuit.
			src := *e.Src
			ne.Src = &src
		}
		for _, n := range e.Nodes {
			ne.Nodes = append(ne.Nodes, mapNode(n))
		}
		if e.Ctrl != "" {
			// The controlling source must live in the same subckt scope.
			ne.Ctrl = prefix + e.Ctrl
		}
		if e.Params != nil {
			ne.Params = map[string]float64{}
			for k, v := range e.Params {
				ne.Params[k] = v
			}
		}
		if err := evalElement(ne, scope); err != nil {
			return err
		}
		flat.Add(ne)
		return nil
	}

	// Subcircuit call.
	sub, ok := top.Subckts[strings.ToLower(e.Model)]
	if !ok {
		return fmt.Errorf("netlist: %q references missing subckt %q", e.Name, e.Model)
	}
	if len(e.Nodes) != len(sub.Ports) {
		return fmt.Errorf("netlist: %q has %d connections, subckt %q wants %d",
			e.Name, len(e.Nodes), sub.Name, len(sub.Ports))
	}
	// Build child scope: globals, then subckt defaults, then overrides.
	child := map[string]float64{}
	for k, v := range scope {
		child[k] = v
	}
	for k, expr := range sub.ParamExprs {
		v, err := EvalExpr(expr, scope)
		if err != nil {
			return fmt.Errorf("netlist: subckt %s param %s: %v", sub.Name, k, err)
		}
		child[k] = v
	}
	// Instance overrides: raw exprs evaluated in the caller's scope.
	for k, expr := range e.ParamExprs {
		v, err := EvalExpr(expr, scope)
		if err != nil {
			return fmt.Errorf("netlist: %s param %s: %v", e.Name, k, err)
		}
		child[k] = v
	}
	for k, v := range e.Params {
		child[k] = v
	}
	// Port mapping: subckt port name -> caller node (already mapped).
	pm := map[string]string{}
	for i, port := range sub.Ports {
		pm[port] = mapNode(e.Nodes[i])
	}
	childPrefix := prefix + strings.ToLower(e.Name) + "."
	// Promote subckt-local models.
	for name, m := range sub.Models {
		if existing, ok := flat.Models[name]; ok && existing != m {
			flat.Models[childPrefix+name] = m
		} else {
			flat.Models[name] = m
		}
	}
	for _, se := range sub.Elems {
		if err := expand(flat, top, se, childPrefix, pm, child, depth+1); err != nil {
			return err
		}
	}
	return nil
}

// Format renders the circuit back as netlist text (primitive elements
// only; subckt definitions are not reproduced). It is used for annotation
// output and golden tests.
func Format(c *Circuit) string {
	var sb strings.Builder
	sb.WriteString(c.Title + "\n")
	for _, e := range c.Elems {
		sb.WriteString(formatElement(e) + "\n")
	}
	for _, m := range sortedModels(c.Models) {
		sb.WriteString(fmt.Sprintf(".model %s %s", m.Name, m.Type))
		for _, k := range sortedKeys(m.Params) {
			sb.WriteString(fmt.Sprintf(" %s=%g", k, m.Params[k]))
		}
		sb.WriteString("\n")
	}
	sb.WriteString(".end\n")
	return sb.String()
}

func formatElement(e *Element) string {
	parts := []string{e.Name}
	parts = append(parts, e.Nodes...)
	switch e.Type {
	case CCCS, CCVS:
		parts = append(parts, e.Ctrl, fmt.Sprintf("%g", e.Value))
	case Diode, BJT, MOSFET:
		parts = append(parts, e.Model)
	case VSource, ISource:
		if e.Src != nil {
			parts = append(parts, fmt.Sprintf("dc %g", e.Src.DC))
			if e.Src.ACMag != 0 {
				parts = append(parts, fmt.Sprintf("ac %g %g", e.Src.ACMag, e.Src.ACPhase))
			}
		}
	default:
		parts = append(parts, fmt.Sprintf("%g", e.Value))
	}
	for _, k := range sortedKeys(e.Params) {
		parts = append(parts, fmt.Sprintf("%s=%g", k, e.Params[k]))
	}
	return strings.Join(parts, " ")
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedModels(m map[string]*Model) []*Model {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*Model, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}
