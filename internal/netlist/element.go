// Package netlist provides SPICE-style circuit capture: element and model
// types, a netlist parser with .subckt/.model/.param support, design-
// variable expressions, hierarchical flattening, and a programmatic builder
// API. It replaces the Composer-schematic + CDF capture path of the
// original DFII tool.
package netlist

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Ground names recognized as the reference node.
func IsGround(node string) bool {
	switch strings.ToLower(node) {
	case "0", "gnd", "gnd!", "vss!":
		return true
	}
	return false
}

// ElemType identifies the element kind by its SPICE key letter.
type ElemType byte

// Element kinds.
const (
	Resistor  ElemType = 'R'
	Capacitor ElemType = 'C'
	Inductor  ElemType = 'L'
	VSource   ElemType = 'V'
	ISource   ElemType = 'I'
	VCVS      ElemType = 'E' // voltage-controlled voltage source
	VCCS      ElemType = 'G' // voltage-controlled current source
	CCCS      ElemType = 'F' // current-controlled current source
	CCVS      ElemType = 'H' // current-controlled voltage source
	Diode     ElemType = 'D'
	BJT       ElemType = 'Q'
	MOSFET    ElemType = 'M'
	Subcall   ElemType = 'X'
)

// String returns the element kind name.
func (t ElemType) String() string {
	switch t {
	case Resistor:
		return "resistor"
	case Capacitor:
		return "capacitor"
	case Inductor:
		return "inductor"
	case VSource:
		return "vsource"
	case ISource:
		return "isource"
	case VCVS:
		return "vcvs"
	case VCCS:
		return "vccs"
	case CCCS:
		return "cccs"
	case CCVS:
		return "ccvs"
	case Diode:
		return "diode"
	case BJT:
		return "bjt"
	case MOSFET:
		return "mosfet"
	case Subcall:
		return "subckt-call"
	}
	return fmt.Sprintf("elem(%c)", byte(t))
}

// SourceSpec describes the excitation of an independent V or I source.
type SourceSpec struct {
	DC      float64
	ACMag   float64
	ACPhase float64 // degrees
	Tran    TranFunc
}

// TranFunc is a time-domain source function.
type TranFunc interface {
	Eval(t float64) float64
}

// PulseFunc is the SPICE PULSE(v1 v2 td tr tf pw per) source.
type PulseFunc struct {
	V1, V2, TD, TR, TF, PW, PER float64
}

// Eval implements TranFunc.
func (p PulseFunc) Eval(t float64) float64 {
	if t < p.TD {
		return p.V1
	}
	tt := t - p.TD
	if p.PER > 0 {
		cycles := float64(int(tt / p.PER))
		tt -= cycles * p.PER
	}
	switch {
	case tt < p.TR:
		if p.TR == 0 {
			return p.V2
		}
		return p.V1 + (p.V2-p.V1)*tt/p.TR
	case tt < p.TR+p.PW:
		return p.V2
	case tt < p.TR+p.PW+p.TF:
		if p.TF == 0 {
			return p.V1
		}
		return p.V2 + (p.V1-p.V2)*(tt-p.TR-p.PW)/p.TF
	default:
		return p.V1
	}
}

// SinFunc is the SPICE SIN(vo va freq td theta) source.
type SinFunc struct {
	VO, VA, Freq, TD, Theta float64
}

// Eval implements TranFunc.
func (s SinFunc) Eval(t float64) float64 {
	if t < s.TD {
		return s.VO
	}
	tt := t - s.TD
	damp := 1.0
	if s.Theta != 0 {
		damp = math.Exp(-s.Theta * tt)
	}
	return s.VO + s.VA*damp*math.Sin(2*math.Pi*s.Freq*tt)
}

// PWLFunc is the SPICE PWL(t1 v1 t2 v2 ...) source.
type PWLFunc struct {
	T, V []float64
}

// Eval implements TranFunc.
func (p PWLFunc) Eval(t float64) float64 {
	n := len(p.T)
	if n == 0 {
		return 0
	}
	if t <= p.T[0] {
		return p.V[0]
	}
	for i := 1; i < n; i++ {
		if t <= p.T[i] {
			f := (t - p.T[i-1]) / (p.T[i] - p.T[i-1])
			return p.V[i-1] + f*(p.V[i]-p.V[i-1])
		}
	}
	return p.V[n-1]
}

// Element is one circuit element instance.
type Element struct {
	Name  string   // full instance name, e.g. "R1" or "x1.q3"
	Type  ElemType // key letter
	Nodes []string // terminal nodes in SPICE order
	// Value is the primary element value (ohms, farads, henries, gain).
	Value float64
	// ValueExpr preserves the unevaluated expression, if the netlist used
	// a design variable or expression for the value.
	ValueExpr string
	Model     string             // model or subcircuit name
	Params    map[string]float64 // instance parameters (w, l, area, ...)
	Ctrl      string             // controlling V-source name for F/H
	Src       *SourceSpec        // excitation for V/I sources
	// ParamExprs preserves unevaluated instance-parameter expressions;
	// flattening re-evaluates them against the instance scope.
	ParamExprs map[string]string
	// srcTokens holds the raw source arguments until evaluation.
	srcTokens []string
}

// Param returns the instance parameter p, or def when absent.
func (e *Element) Param(p string, def float64) float64 {
	if e.Params != nil {
		if v, ok := e.Params[strings.ToLower(p)]; ok {
			return v
		}
	}
	return def
}

// Model is a .model card.
type Model struct {
	Name   string
	Type   string // d, npn, pnp, nmos, pmos, res, cap
	Params map[string]float64
}

// Param returns the model parameter p, or def when absent.
func (m *Model) Param(p string, def float64) float64 {
	if m == nil || m.Params == nil {
		return def
	}
	if v, ok := m.Params[strings.ToLower(p)]; ok {
		return v
	}
	return def
}

// Subckt is a .subckt definition.
type Subckt struct {
	Name   string
	Ports  []string
	Params map[string]float64 // default parameter values (evaluated)
	// ParamExprs holds unevaluated parameter-default expressions; they are
	// evaluated per instance during flattening.
	ParamExprs map[string]string
	Elems      []*Element
	Models     map[string]*Model
}

// Circuit is a parsed (or programmatically built) circuit.
type Circuit struct {
	Title   string
	Elems   []*Element
	Models  map[string]*Model
	Subckts map[string]*Subckt
	// Params holds global .param design variables (already evaluated).
	Params map[string]float64
	// Options holds .option name=value settings.
	Options map[string]float64
	// Temp is the simulation temperature in Celsius (default 27).
	Temp float64
	// NodeSet holds .nodeset initial-guess voltages by node name, used to
	// steer Newton toward the intended operating point of multi-stable
	// circuits (e.g. latch-prone buffers).
	NodeSet map[string]float64
}

// NewCircuit returns an empty circuit with the given title.
func NewCircuit(title string) *Circuit {
	return &Circuit{
		Title:   title,
		Models:  map[string]*Model{},
		Subckts: map[string]*Subckt{},
		Params:  map[string]float64{},
		Options: map[string]float64{},
		NodeSet: map[string]float64{},
		Temp:    27,
	}
}

// Nodes returns the sorted list of all nodes excluding ground.
func (c *Circuit) Nodes() []string {
	seen := map[string]bool{}
	var out []string
	for _, e := range c.Elems {
		limit := len(e.Nodes)
		for i := 0; i < limit; i++ {
			n := e.Nodes[i]
			if IsGround(n) || seen[n] {
				continue
			}
			seen[n] = true
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// Element returns the element with the given (case-insensitive) name.
func (c *Circuit) Element(name string) *Element {
	ln := strings.ToLower(name)
	for _, e := range c.Elems {
		if strings.ToLower(e.Name) == ln {
			return e
		}
	}
	return nil
}

// Add appends an element.
func (c *Circuit) Add(e *Element) { c.Elems = append(c.Elems, e) }

// Validate performs basic sanity checks: unique names, correct terminal
// counts, models present, no dangling controlled-source references.
func (c *Circuit) Validate() error {
	names := map[string]bool{}
	vsrc := map[string]bool{}
	for _, e := range c.Elems {
		ln := strings.ToLower(e.Name)
		if names[ln] {
			return fmt.Errorf("netlist: duplicate element %q", e.Name)
		}
		names[ln] = true
		if e.Type == VSource {
			vsrc[ln] = true
		}
		want := terminalCount(e.Type)
		if want > 0 && len(e.Nodes) != want {
			return fmt.Errorf("netlist: %s %q has %d nodes, want %d",
				e.Type, e.Name, len(e.Nodes), want)
		}
	}
	for _, e := range c.Elems {
		switch e.Type {
		case CCCS, CCVS:
			if !vsrc[strings.ToLower(e.Ctrl)] {
				return fmt.Errorf("netlist: %q references missing control source %q", e.Name, e.Ctrl)
			}
		case Diode, BJT, MOSFET:
			if _, ok := c.Models[strings.ToLower(e.Model)]; !ok {
				return fmt.Errorf("netlist: %q references missing model %q", e.Name, e.Model)
			}
		case Subcall:
			if _, ok := c.Subckts[strings.ToLower(e.Model)]; !ok {
				return fmt.Errorf("netlist: %q references missing subckt %q", e.Name, e.Model)
			}
		}
	}
	return nil
}

func terminalCount(t ElemType) int {
	switch t {
	case Resistor, Capacitor, Inductor, VSource, ISource, Diode:
		return 2
	case VCVS, VCCS:
		return 4
	case CCCS, CCVS:
		return 2
	case BJT:
		return 3
	case MOSFET:
		return 4
	}
	return 0 // X: variable
}
