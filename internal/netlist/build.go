package netlist

import "strings"

// The builder methods below construct circuits programmatically, the path
// the paper's tool takes when driven from a schematic rather than a file.
// All names and nodes are lower-cased for consistency with the parser.

func lowerAll(ss []string) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = strings.ToLower(s)
	}
	return out
}

// AddR adds a resistor.
func (c *Circuit) AddR(name, n1, n2 string, ohms float64) *Element {
	e := &Element{Name: strings.ToLower(name), Type: Resistor,
		Nodes: lowerAll([]string{n1, n2}), Value: ohms}
	c.Add(e)
	return e
}

// AddC adds a capacitor.
func (c *Circuit) AddC(name, n1, n2 string, farads float64) *Element {
	e := &Element{Name: strings.ToLower(name), Type: Capacitor,
		Nodes: lowerAll([]string{n1, n2}), Value: farads}
	c.Add(e)
	return e
}

// AddL adds an inductor.
func (c *Circuit) AddL(name, n1, n2 string, henries float64) *Element {
	e := &Element{Name: strings.ToLower(name), Type: Inductor,
		Nodes: lowerAll([]string{n1, n2}), Value: henries}
	c.Add(e)
	return e
}

// AddV adds an independent voltage source from n+ to n-.
func (c *Circuit) AddV(name, np, nn string, src SourceSpec) *Element {
	s := src
	e := &Element{Name: strings.ToLower(name), Type: VSource,
		Nodes: lowerAll([]string{np, nn}), Src: &s}
	c.Add(e)
	return e
}

// AddI adds an independent current source flowing from n+ through the
// source to n- (SPICE convention: positive current leaves n+ terminal
// through the source into n-).
func (c *Circuit) AddI(name, np, nn string, src SourceSpec) *Element {
	s := src
	e := &Element{Name: strings.ToLower(name), Type: ISource,
		Nodes: lowerAll([]string{np, nn}), Src: &s}
	c.Add(e)
	return e
}

// AddVDC adds a DC voltage source.
func (c *Circuit) AddVDC(name, np, nn string, volts float64) *Element {
	return c.AddV(name, np, nn, SourceSpec{DC: volts})
}

// AddIDC adds a DC current source.
func (c *Circuit) AddIDC(name, np, nn string, amps float64) *Element {
	return c.AddI(name, np, nn, SourceSpec{DC: amps})
}

// AddE adds a voltage-controlled voltage source:
// v(np,nn) = gain * v(cp,cn).
func (c *Circuit) AddE(name, np, nn, cp, cn string, gain float64) *Element {
	e := &Element{Name: strings.ToLower(name), Type: VCVS,
		Nodes: lowerAll([]string{np, nn, cp, cn}), Value: gain}
	c.Add(e)
	return e
}

// AddG adds a voltage-controlled current source:
// i(np->nn) = gm * v(cp,cn).
func (c *Circuit) AddG(name, np, nn, cp, cn string, gm float64) *Element {
	e := &Element{Name: strings.ToLower(name), Type: VCCS,
		Nodes: lowerAll([]string{np, nn, cp, cn}), Value: gm}
	c.Add(e)
	return e
}

// AddF adds a current-controlled current source with the named controlling
// voltage source.
func (c *Circuit) AddF(name, np, nn, vctrl string, gain float64) *Element {
	e := &Element{Name: strings.ToLower(name), Type: CCCS,
		Nodes: lowerAll([]string{np, nn}), Ctrl: strings.ToLower(vctrl), Value: gain}
	c.Add(e)
	return e
}

// AddH adds a current-controlled voltage source with the named controlling
// voltage source.
func (c *Circuit) AddH(name, np, nn, vctrl string, r float64) *Element {
	e := &Element{Name: strings.ToLower(name), Type: CCVS,
		Nodes: lowerAll([]string{np, nn}), Ctrl: strings.ToLower(vctrl), Value: r}
	c.Add(e)
	return e
}

// AddD adds a diode (anode, cathode).
func (c *Circuit) AddD(name, anode, cathode, model string) *Element {
	e := &Element{Name: strings.ToLower(name), Type: Diode,
		Nodes: lowerAll([]string{anode, cathode}), Model: strings.ToLower(model)}
	c.Add(e)
	return e
}

// AddQ adds a BJT (collector, base, emitter).
func (c *Circuit) AddQ(name, col, base, emit, model string) *Element {
	e := &Element{Name: strings.ToLower(name), Type: BJT,
		Nodes: lowerAll([]string{col, base, emit}), Model: strings.ToLower(model)}
	c.Add(e)
	return e
}

// AddM adds a MOSFET (drain, gate, source, bulk) with channel W and L in
// meters.
func (c *Circuit) AddM(name, d, g, s, b, model string, w, l float64) *Element {
	e := &Element{Name: strings.ToLower(name), Type: MOSFET,
		Nodes: lowerAll([]string{d, g, s, b}), Model: strings.ToLower(model),
		Params: map[string]float64{"w": w, "l": l}}
	c.Add(e)
	return e
}

// AddX adds a subcircuit call.
func (c *Circuit) AddX(name string, nodes []string, subckt string, params map[string]float64) *Element {
	e := &Element{Name: strings.ToLower(name), Type: Subcall,
		Nodes: lowerAll(nodes), Model: strings.ToLower(subckt)}
	if params != nil {
		e.Params = map[string]float64{}
		for k, v := range params {
			e.Params[strings.ToLower(k)] = v
		}
	}
	c.Add(e)
	return e
}

// SetModel registers a device model.
func (c *Circuit) SetModel(name, typ string, params map[string]float64) *Model {
	m := &Model{Name: strings.ToLower(name), Type: strings.ToLower(typ),
		Params: map[string]float64{}}
	for k, v := range params {
		m.Params[strings.ToLower(k)] = v
	}
	c.Models[m.Name] = m
	return m
}

// ZeroACSources sets the AC magnitude of every independent source to zero,
// the tool's "auto-zero all AC sources / stimuli in design prior to running
// the analysis" feature: pre-existing testbench stimuli must not corrupt
// the injected probe response. It returns the number of sources changed.
func (c *Circuit) ZeroACSources() int {
	n := 0
	for _, e := range c.Elems {
		if (e.Type == VSource || e.Type == ISource) && e.Src != nil && e.Src.ACMag != 0 {
			e.Src.ACMag = 0
			e.Src.ACPhase = 0
			n++
		}
	}
	return n
}
