package netlist

import (
	"fmt"
	"io/fs"
	"path"
	"strings"
)

// maxIncludeDepth bounds .include nesting (and catches cycles).
const maxIncludeDepth = 16

// ParseFS parses a netlist file from the filesystem, expanding .include
// (and single-argument .lib) directives relative to the including file's
// directory. Plain Parse rejects .include because it has no resolver;
// multi-file decks (model libraries, PDK fragments) go through here.
func ParseFS(fsys fs.FS, name string) (*Circuit, error) {
	src, err := ExpandFS(fsys, name)
	if err != nil {
		return nil, err
	}
	return Parse(src)
}

// ExpandFS returns the netlist text with every .include inlined — useful
// when the expanded deck must travel (e.g. to a remote farm worker).
func ExpandFS(fsys fs.FS, name string) (string, error) {
	return expandIncludes(fsys, name, nil, 0)
}

// expandIncludes inlines the file's include tree. stack carries the open
// files for cycle detection.
func expandIncludes(fsys fs.FS, name string, stack []string, depth int) (string, error) {
	if depth > maxIncludeDepth {
		return "", fmt.Errorf("netlist: include nesting deeper than %d (cycle via %v?)", maxIncludeDepth, stack)
	}
	clean := path.Clean(name)
	for _, open := range stack {
		if open == clean {
			return "", fmt.Errorf("netlist: include cycle: %v -> %s", stack, clean)
		}
	}
	data, err := fs.ReadFile(fsys, clean)
	if err != nil {
		return "", fmt.Errorf("netlist: %w", err)
	}
	stack = append(stack, clean)
	dir := path.Dir(clean)

	var out strings.Builder
	for _, line := range strings.Split(string(data), "\n") {
		trimmed := strings.TrimSpace(line)
		lower := strings.ToLower(trimmed)
		if !strings.HasPrefix(lower, ".include") && !strings.HasPrefix(lower, ".lib") {
			out.WriteString(line)
			out.WriteByte('\n')
			continue
		}
		fields := strings.Fields(trimmed)
		if len(fields) != 2 {
			return "", fmt.Errorf("netlist: %s: %s wants one filename", clean, fields[0])
		}
		inc := strings.Trim(fields[1], `"'`)
		target := inc
		if !path.IsAbs(inc) {
			target = path.Join(dir, inc)
		}
		body, err := expandIncludes(fsys, target, stack, depth+1)
		if err != nil {
			return "", err
		}
		// Included files are card collections, not full decks: their first
		// line is content, not a title, so inline them behind a marker
		// comment. A leading title-like line in the include would be
		// misparsed, so includes must contain only cards and comments.
		out.WriteString("* begin include " + target + "\n")
		out.WriteString(body)
		out.WriteString("* end include " + target + "\n")
	}
	return out.String(), nil
}
