package netlist

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// Property: Parse never panics, whatever bytes arrive. (It may error.)
func TestParseNeverPanicsQuick(t *testing.T) {
	f := func(raw []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on %q: %v", raw, r)
				ok = false
			}
		}()
		Parse(string(raw)) //nolint:errcheck // errors are acceptable, panics are not
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// Property: structured garbage built from netlist-looking fragments never
// panics either (this hits deeper parser paths than raw bytes).
func TestParseFragmentsNeverPanicQuick(t *testing.T) {
	fragments := []string{
		"R1", "C2", "V1", "X9", ".model", ".subckt", ".ends", ".param",
		".nodeset", "a", "0", "{", "}", "(", ")", "=", "1k", "PULSE",
		"SIN", "PWL", "AC", "DC", "+", "*", ";", "npn", "1e", "-",
		"v(a)=1", "w=", "{a*}", "..", "1meg",
	}
	f := func(seed int64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		rng := rand.New(rand.NewSource(seed))
		var sb strings.Builder
		sb.WriteString("fuzz title\n")
		lines := 1 + rng.Intn(8)
		for l := 0; l < lines; l++ {
			n := 1 + rng.Intn(8)
			for i := 0; i < n; i++ {
				sb.WriteString(fragments[rng.Intn(len(fragments))])
				sb.WriteByte(' ')
			}
			sb.WriteByte('\n')
		}
		Parse(sb.String()) //nolint:errcheck
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// Property: whatever parses successfully also flattens (or errors) without
// panicking, and a flattened circuit re-formats to parseable text.
func TestParseFlattenFormatNeverPanicQuick(t *testing.T) {
	srcs := []string{
		"t\nR1 a 0 1k\n",
		"t\n.subckt s a\nR1 a 0 1k\n.ends\nX1 n s\nR2 n 0 1\n",
		"t\nV1 a 0 PULSE(0 1 0 1n 1n 1u 2u)\nR1 a 0 50\n",
		"t\n.param x=2\nR1 a 0 {x*1k}\n",
	}
	for _, src := range srcs {
		c, err := Parse(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		flat, err := Flatten(c)
		if err != nil {
			t.Fatalf("%q flatten: %v", src, err)
		}
		if _, err := Parse(Format(flat)); err != nil {
			t.Errorf("%q re-parse: %v", src, err)
		}
	}
}
