package netlist

import (
	"fmt"
	"strings"

	"acstab/internal/num"
)

// Parse reads a SPICE-style netlist. The first line is the title (SPICE
// convention). Supported cards: R C L V I E G F H D Q M X elements,
// .subckt/.ends, .model, .param, .option, .temp, .end, line continuation
// with '+', comments with leading '*' and inline ';'.
func Parse(src string) (*Circuit, error) {
	if strings.TrimSpace(src) == "" {
		return nil, fmt.Errorf("netlist: empty input")
	}
	lines := preprocess(src)
	if len(lines) == 0 {
		return nil, fmt.Errorf("netlist: empty input")
	}
	c := NewCircuit(strings.TrimSpace(lines[0].text))
	p := &fileParser{ckt: c}
	for _, ln := range lines[1:] {
		if err := p.line(ln.text); err != nil {
			return nil, fmt.Errorf("netlist: line %d: %w", ln.num, err)
		}
	}
	if p.curSub != nil {
		return nil, fmt.Errorf("netlist: unterminated .subckt %q", p.curSub.Name)
	}
	if err := p.resolveParams(); err != nil {
		return nil, err
	}
	if err := p.evalTopLevel(); err != nil {
		return nil, err
	}
	return c, nil
}

type srcLine struct {
	num  int
	text string
}

// preprocess strips comments and joins continuation lines, tracking
// original line numbers.
func preprocess(src string) []srcLine {
	raw := strings.Split(src, "\n")
	var out []srcLine
	for i, l := range raw {
		// Strip inline comments.
		if j := strings.IndexAny(l, ";"); j >= 0 {
			l = l[:j]
		}
		if j := strings.Index(l, "$ "); j >= 0 {
			l = l[:j]
		}
		trimmed := strings.TrimRight(l, " \t\r")
		if i > 0 && strings.TrimSpace(trimmed) == "" {
			continue
		}
		if strings.HasPrefix(strings.TrimSpace(trimmed), "*") && i > 0 {
			continue
		}
		if strings.HasPrefix(strings.TrimSpace(trimmed), "+") && len(out) > 0 {
			cont := strings.TrimSpace(trimmed)[1:]
			out[len(out)-1].text += " " + cont
			continue
		}
		out = append(out, srcLine{num: i + 1, text: trimmed})
	}
	return out
}

type fileParser struct {
	ckt      *Circuit
	curSub   *Subckt
	rawParam map[string]string // unevaluated .param expressions (top level)
}

// subRawParams returns the subckt's raw (unevaluated) parameter defaults,
// allocating the map on first use. Flattening evaluates them per instance.
func (p *fileParser) subRawParams(s *Subckt) map[string]string {
	if s.ParamExprs == nil {
		s.ParamExprs = map[string]string{}
	}
	return s.ParamExprs
}

// tokenize splits a card into tokens. Curly-brace expressions {..} stay
// single tokens; parentheses and commas act as whitespace; "a = b" is
// joined to "a=b".
func tokenize(s string) []string {
	var tokens []string
	var cur strings.Builder
	depth := 0
	flush := func() {
		if cur.Len() > 0 {
			tokens = append(tokens, cur.String())
			cur.Reset()
		}
	}
	for i := 0; i < len(s); i++ {
		ch := s[i]
		if depth > 0 {
			cur.WriteByte(ch)
			if ch == '{' {
				depth++
			}
			if ch == '}' {
				depth--
			}
			continue
		}
		switch ch {
		case '{':
			cur.WriteByte(ch)
			depth++
		case ' ', '\t', '(', ')', ',':
			flush()
		default:
			cur.WriteByte(ch)
		}
	}
	flush()
	// Join "a = b" and "a= b"/"a =b" into "a=b".
	var joined []string
	for i := 0; i < len(tokens); i++ {
		t := tokens[i]
		if t == "=" && len(joined) > 0 && i+1 < len(tokens) {
			joined[len(joined)-1] += "=" + tokens[i+1]
			i++
			continue
		}
		if strings.HasSuffix(t, "=") && i+1 < len(tokens) {
			joined = append(joined, t+tokens[i+1])
			i++
			continue
		}
		if strings.HasPrefix(t, "=") && len(joined) > 0 {
			joined[len(joined)-1] += t
			continue
		}
		joined = append(joined, t)
	}
	return joined
}

func (p *fileParser) line(text string) error {
	t := strings.TrimSpace(text)
	if t == "" || strings.HasPrefix(t, "*") {
		return nil
	}
	if strings.HasPrefix(t, ".") {
		return p.directive(t)
	}
	e, err := parseElement(t)
	if err != nil {
		return err
	}
	if p.curSub != nil {
		p.curSub.Elems = append(p.curSub.Elems, e)
	} else {
		p.ckt.Add(e)
	}
	return nil
}

func (p *fileParser) directive(t string) error {
	tokens := tokenize(t)
	key := strings.ToLower(tokens[0])
	switch key {
	case ".end":
		return nil
	case ".title":
		p.ckt.Title = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(t), tokens[0]))
		return nil
	case ".temp":
		if len(tokens) < 2 {
			return fmt.Errorf(".temp needs a value")
		}
		v, err := num.ParseValue(tokens[1])
		if err != nil {
			return err
		}
		p.ckt.Temp = v
		return nil
	case ".option", ".options":
		for _, tok := range tokens[1:] {
			k, vs, ok := strings.Cut(tok, "=")
			if !ok {
				p.ckt.Options[strings.ToLower(tok)] = 1
				continue
			}
			v, err := num.ParseValue(vs)
			if err != nil {
				return fmt.Errorf(".option %s: %v", tok, err)
			}
			p.ckt.Options[strings.ToLower(k)] = v
		}
		return nil
	case ".param", ".parameters":
		if p.rawParam == nil {
			p.rawParam = map[string]string{}
		}
		target := p.rawParam
		if p.curSub != nil {
			// Subckt-local params become defaults, stored as evaluated later
			// during flatten; keep raw in subckt via a pseudo map.
			for _, tok := range tokens[1:] {
				k, vs, ok := strings.Cut(tok, "=")
				if !ok {
					return fmt.Errorf(".param wants name=value, got %q", tok)
				}
				p.curSub.Params[strings.ToLower(k)] = 0 // placeholder
				p.subRawParams(p.curSub)[strings.ToLower(k)] = stripBraces(vs)
			}
			return nil
		}
		for _, tok := range tokens[1:] {
			k, vs, ok := strings.Cut(tok, "=")
			if !ok {
				return fmt.Errorf(".param wants name=value, got %q", tok)
			}
			target[strings.ToLower(k)] = stripBraces(vs)
		}
		return nil
	case ".subckt":
		if p.curSub != nil {
			return fmt.Errorf("nested .subckt not supported")
		}
		if len(tokens) < 2 {
			return fmt.Errorf(".subckt needs a name")
		}
		sub := &Subckt{
			Name:   strings.ToLower(tokens[1]),
			Params: map[string]float64{},
			Models: map[string]*Model{},
		}
		for _, tok := range tokens[2:] {
			if k, vs, ok := strings.Cut(tok, "="); ok {
				sub.Params[strings.ToLower(k)] = 0
				p.subRawParams(sub)[strings.ToLower(k)] = stripBraces(vs)
				continue
			}
			if strings.EqualFold(tok, "params:") {
				continue
			}
			sub.Ports = append(sub.Ports, strings.ToLower(tok))
		}
		p.curSub = sub
		return nil
	case ".ends":
		if p.curSub == nil {
			return fmt.Errorf(".ends without .subckt")
		}
		p.ckt.Subckts[p.curSub.Name] = p.curSub
		p.curSub = nil
		return nil
	case ".model":
		if len(tokens) < 3 {
			return fmt.Errorf(".model needs name and type")
		}
		m := &Model{
			Name:   strings.ToLower(tokens[1]),
			Type:   strings.ToLower(tokens[2]),
			Params: map[string]float64{},
		}
		for _, tok := range tokens[3:] {
			k, vs, ok := strings.Cut(tok, "=")
			if !ok {
				return fmt.Errorf(".model parameter %q wants name=value", tok)
			}
			v, err := num.ParseValue(vs)
			if err != nil {
				return fmt.Errorf(".model %s: %v", tok, err)
			}
			m.Params[strings.ToLower(k)] = v
		}
		if p.curSub != nil {
			p.curSub.Models[m.Name] = m
		} else {
			p.ckt.Models[m.Name] = m
		}
		return nil
	case ".nodeset", ".ic":
		// Tokens arrive as ["v", "node=value", ...] because parentheses
		// split tokens. Accept bare "node=value" too.
		for _, tok := range tokens[1:] {
			if strings.EqualFold(tok, "v") {
				continue
			}
			k, vs, ok := strings.Cut(tok, "=")
			if !ok {
				return fmt.Errorf("%s wants v(node)=value pairs, got %q", key, tok)
			}
			v, err := num.ParseValue(vs)
			if err != nil {
				return fmt.Errorf("%s %s: %v", key, tok, err)
			}
			if p.ckt.NodeSet == nil {
				p.ckt.NodeSet = map[string]float64{}
			}
			p.ckt.NodeSet[strings.ToLower(k)] = v
		}
		return nil
	case ".include", ".lib":
		return fmt.Errorf("%s is not supported (offline, single-file netlists)", key)
	default:
		return fmt.Errorf("unknown directive %q", tokens[0])
	}
}

func stripBraces(s string) string {
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, "{") && strings.HasSuffix(s, "}") {
		return s[1 : len(s)-1]
	}
	return s
}

// parseElement parses one element card into an Element with raw
// (unevaluated) value and parameter expressions.
func parseElement(t string) (*Element, error) {
	tokens := tokenize(t)
	if len(tokens) == 0 {
		return nil, fmt.Errorf("empty element card")
	}
	name := tokens[0]
	typ := ElemType(strings.ToUpper(name)[0])
	e := &Element{Name: strings.ToLower(name), Type: typ}
	lower := func(s string) string { return strings.ToLower(s) }
	args := tokens[1:]

	splitKV := func(toks []string) (pos []string, kv map[string]string) {
		kv = map[string]string{}
		for _, tok := range toks {
			if k, v, ok := strings.Cut(tok, "="); ok && k != "" {
				kv[lower(k)] = stripBraces(v)
			} else {
				pos = append(pos, tok)
			}
		}
		return pos, kv
	}

	switch typ {
	case Resistor, Capacitor, Inductor:
		pos, kv := splitKV(args)
		if len(pos) < 3 {
			return nil, fmt.Errorf("%s %q needs 2 nodes and a value", typ, name)
		}
		e.Nodes = []string{lower(pos[0]), lower(pos[1])}
		e.ValueExpr = stripBraces(pos[2])
		e.ParamExprs = kv
	case VSource, ISource:
		if len(args) < 2 {
			return nil, fmt.Errorf("%s %q needs 2 nodes", typ, name)
		}
		e.Nodes = []string{lower(args[0]), lower(args[1])}
		e.srcTokens = args[2:]
	case VCVS, VCCS:
		pos, kv := splitKV(args)
		if len(pos) < 5 {
			return nil, fmt.Errorf("%s %q needs 4 nodes and a gain", typ, name)
		}
		e.Nodes = []string{lower(pos[0]), lower(pos[1]), lower(pos[2]), lower(pos[3])}
		e.ValueExpr = stripBraces(pos[4])
		e.ParamExprs = kv
	case CCCS, CCVS:
		pos, kv := splitKV(args)
		if len(pos) < 4 {
			return nil, fmt.Errorf("%s %q needs 2 nodes, a control source, and a gain", typ, name)
		}
		e.Nodes = []string{lower(pos[0]), lower(pos[1])}
		e.Ctrl = lower(pos[2])
		e.ValueExpr = stripBraces(pos[3])
		e.ParamExprs = kv
	case Diode:
		pos, kv := splitKV(args)
		if len(pos) < 3 {
			return nil, fmt.Errorf("diode %q needs 2 nodes and a model", name)
		}
		e.Nodes = []string{lower(pos[0]), lower(pos[1])}
		e.Model = lower(pos[2])
		e.ParamExprs = kv
	case BJT:
		pos, kv := splitKV(args)
		if len(pos) < 4 {
			return nil, fmt.Errorf("bjt %q needs 3 nodes and a model", name)
		}
		e.Nodes = []string{lower(pos[0]), lower(pos[1]), lower(pos[2])}
		e.Model = lower(pos[3])
		if len(pos) > 4 { // optional positional area factor
			kv["area"] = pos[4]
		}
		e.ParamExprs = kv
	case MOSFET:
		pos, kv := splitKV(args)
		if len(pos) < 5 {
			return nil, fmt.Errorf("mosfet %q needs 4 nodes and a model", name)
		}
		e.Nodes = []string{lower(pos[0]), lower(pos[1]), lower(pos[2]), lower(pos[3])}
		e.Model = lower(pos[4])
		e.ParamExprs = kv
	case Subcall:
		pos, kv := splitKV(args)
		if len(pos) < 1 {
			return nil, fmt.Errorf("subckt call %q needs a subckt name", name)
		}
		// Last positional token is the subckt name; the rest are nodes.
		for _, n := range pos[:len(pos)-1] {
			e.Nodes = append(e.Nodes, lower(n))
		}
		e.Model = lower(pos[len(pos)-1])
		e.ParamExprs = kv
	default:
		return nil, fmt.Errorf("unknown element type %q", string(byte(typ)))
	}
	return e, nil
}

// resolveParams evaluates .param expressions, iterating to a fixpoint so
// parameters may reference each other in any order.
func (p *fileParser) resolveParams() error {
	pending := map[string]string{}
	for k, v := range p.rawParam {
		pending[k] = v
	}
	for pass := 0; len(pending) > 0; pass++ {
		progressed := false
		for k, expr := range pending {
			v, err := EvalExpr(expr, p.ckt.Params)
			if err == nil {
				p.ckt.Params[k] = v
				delete(pending, k)
				progressed = true
			}
		}
		if !progressed {
			for k, expr := range pending {
				if _, err := EvalExpr(expr, p.ckt.Params); err != nil {
					return fmt.Errorf("netlist: .param %s=%s: %v", k, expr, err)
				}
			}
		}
		if pass > 100 {
			return fmt.Errorf("netlist: circular .param definitions")
		}
	}
	return nil
}

// evalTopLevel evaluates the values, parameters, and source specs of all
// top-level elements against the global design variables.
func (p *fileParser) evalTopLevel() error {
	for _, e := range p.ckt.Elems {
		if err := evalElement(e, p.ckt.Params); err != nil {
			return err
		}
	}
	return nil
}

// evalElement resolves an element's raw expressions using scope.
func evalElement(e *Element, scope map[string]float64) error {
	if e.ValueExpr != "" {
		v, err := EvalExpr(e.ValueExpr, scope)
		if err != nil {
			return fmt.Errorf("netlist: %s value: %v", e.Name, err)
		}
		e.Value = v
	}
	if len(e.ParamExprs) > 0 {
		if e.Params == nil {
			e.Params = map[string]float64{}
		}
		for k, expr := range e.ParamExprs {
			v, err := EvalExpr(expr, scope)
			if err != nil {
				return fmt.Errorf("netlist: %s param %s: %v", e.Name, k, err)
			}
			e.Params[k] = v
		}
	}
	if e.srcTokens != nil {
		src, err := parseSource(e.srcTokens, scope)
		if err != nil {
			return fmt.Errorf("netlist: %s: %v", e.Name, err)
		}
		e.Src = src
	}
	return nil
}

// parseSource parses independent source arguments:
//
//	[dcval] [DC val] [AC mag [phase]] [PULSE v1 v2 td tr tf pw per]
//	[SIN vo va freq td theta] [PWL t1 v1 t2 v2 ...]
func parseSource(tokens []string, scope map[string]float64) (*SourceSpec, error) {
	s := &SourceSpec{}
	val := func(tok string) (float64, error) { return EvalExpr(stripBraces(tok), scope) }
	i := 0
	// Optional leading bare DC value.
	if i < len(tokens) {
		if v, err := val(tokens[i]); err == nil {
			s.DC = v
			i++
		}
	}
	for i < len(tokens) {
		switch strings.ToLower(tokens[i]) {
		case "dc":
			if i+1 >= len(tokens) {
				return nil, fmt.Errorf("DC needs a value")
			}
			v, err := val(tokens[i+1])
			if err != nil {
				return nil, err
			}
			s.DC = v
			i += 2
		case "ac":
			i++
			s.ACMag = 1
			if i < len(tokens) {
				if v, err := val(tokens[i]); err == nil {
					s.ACMag = v
					i++
					if i < len(tokens) {
						if ph, err := val(tokens[i]); err == nil {
							s.ACPhase = ph
							i++
						}
					}
				}
			}
		case "pulse":
			vals, n, err := takeVals(tokens[i+1:], 7, val)
			if err != nil {
				return nil, fmt.Errorf("PULSE: %v", err)
			}
			f := PulseFunc{}
			set := []*float64{&f.V1, &f.V2, &f.TD, &f.TR, &f.TF, &f.PW, &f.PER}
			for j, v := range vals {
				*set[j] = v
			}
			if f.PW == 0 {
				f.PW = 1 // effectively a step within any realistic window
			}
			s.Tran = f
			i += 1 + n
		case "sin":
			vals, n, err := takeVals(tokens[i+1:], 5, val)
			if err != nil {
				return nil, fmt.Errorf("SIN: %v", err)
			}
			f := SinFunc{}
			set := []*float64{&f.VO, &f.VA, &f.Freq, &f.TD, &f.Theta}
			for j, v := range vals {
				*set[j] = v
			}
			s.Tran = f
			i += 1 + n
		case "pwl":
			vals, n, err := takeVals(tokens[i+1:], 1000, val)
			if err != nil {
				return nil, fmt.Errorf("PWL: %v", err)
			}
			if len(vals) < 2 || len(vals)%2 != 0 {
				return nil, fmt.Errorf("PWL wants time/value pairs")
			}
			f := PWLFunc{}
			for j := 0; j < len(vals); j += 2 {
				f.T = append(f.T, vals[j])
				f.V = append(f.V, vals[j+1])
			}
			s.Tran = f
			i += 1 + n
		default:
			return nil, fmt.Errorf("unexpected source token %q", tokens[i])
		}
	}
	return s, nil
}

// takeVals consumes up to max numeric tokens, stopping at the first
// non-numeric one.
func takeVals(tokens []string, max int, val func(string) (float64, error)) ([]float64, int, error) {
	var out []float64
	for _, tok := range tokens {
		if len(out) >= max {
			break
		}
		v, err := val(tok)
		if err != nil {
			break
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, 0, fmt.Errorf("expected numeric arguments")
	}
	return out, len(out), nil
}
