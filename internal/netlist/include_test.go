package netlist

import (
	"strings"
	"testing"
	"testing/fstest"
)

func TestParseFSIncludes(t *testing.T) {
	fsys := fstest.MapFS{
		"top.cir": {Data: []byte(`top deck
.include models/devices.lib
X1 out bias cell
V1 out 0 1
.include cells.inc
`)},
		"models/devices.lib": {Data: []byte(`* shared models
.model qn npn is=1e-15 bf=120
.include extra.lib
`)},
		"models/extra.lib": {Data: []byte(`.model dm d is=2e-14
`)},
		"cells.inc": {Data: []byte(`.subckt cell a b
Q1 a b 0 qn
D1 b 0 dm
R1 a b 10k
.ends
`)},
	}
	c, err := ParseFS(fsys, "top.cir")
	if err != nil {
		t.Fatal(err)
	}
	if c.Title != "top deck" {
		t.Errorf("title = %q", c.Title)
	}
	if c.Models["qn"] == nil || c.Models["qn"].Param("bf", 0) != 120 {
		t.Error("included model missing")
	}
	if c.Models["dm"] == nil {
		t.Error("nested include missing")
	}
	if c.Subckts["cell"] == nil {
		t.Error("included subckt missing")
	}
	flat, err := Flatten(c)
	if err != nil {
		t.Fatal(err)
	}
	if flat.Element("x1.q1") == nil {
		t.Errorf("flattened include wrong:\n%s", Format(flat))
	}
}

func TestParseFSRelativePaths(t *testing.T) {
	fsys := fstest.MapFS{
		"a/top.cir":   {Data: []byte("t\n.include sub/r.inc\nV1 n 0 1\n")},
		"a/sub/r.inc": {Data: []byte("R1 n 0 1k\n")},
	}
	c, err := ParseFS(fsys, "a/top.cir")
	if err != nil {
		t.Fatal(err)
	}
	if c.Element("r1") == nil {
		t.Error("relative include not resolved")
	}
}

func TestParseFSErrors(t *testing.T) {
	// Missing file.
	if _, err := ParseFS(fstest.MapFS{"t.cir": {Data: []byte("t\n.include gone.inc\n")}}, "t.cir"); err == nil {
		t.Error("missing include should fail")
	}
	// Cycle.
	fsys := fstest.MapFS{
		"a.cir": {Data: []byte("t\n.include b.inc\n")},
		"b.inc": {Data: []byte(".include c.inc\n")},
		"c.inc": {Data: []byte(".include b.inc\n")},
	}
	_, err := ParseFS(fsys, "a.cir")
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("cycle: %v", err)
	}
	// Malformed directive.
	if _, err := ParseFS(fstest.MapFS{"t.cir": {Data: []byte("t\n.include\n")}}, "t.cir"); err == nil {
		t.Error("bare .include should fail")
	}
	// Plain Parse still rejects .include (no resolver).
	if _, err := Parse("t\n.include x.inc\n"); err == nil {
		t.Error("Parse without a filesystem should reject .include")
	}
}
