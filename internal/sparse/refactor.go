package sparse

// Two-phase factorization: the sparsity pattern of an AC sweep's matrix
// (the union of the G and C stamps) is identical at every frequency, so
// the pivot-order search and fill-in analysis need to run only once per
// sweep. This file implements that split:
//
//   - Recorder captures the (i,j) call stream of one stamping pass and
//     freezes it into a Pattern: a CSR layout plus a per-call slot table,
//     so every later stamping pass writes straight into a flat value
//     array (Vals) with no maps and no allocations.
//   - Pattern.Analyze runs the threshold/Markowitz pivot search once and
//     records the elimination order and the exact fill-in pattern of L
//     and U as index arrays (Symbolic).
//   - Symbolic.NewNumeric allocates the value arrays and workspaces once;
//     Numeric.Refactor refills them for new values (a fixed-pivot-order
//     Gilbert–Peierls pass) and Numeric.SolveInto back-substitutes in
//     place. Both are allocation-free, which keeps the per-frequency
//     inner loop of the all-nodes sweep out of the garbage collector.
//
// Reusing a pivot order chosen at one frequency at another is safe for
// the diagonally dominant MNA systems this repo sweeps, but it is guarded
// anyway: Vals carries an order-sensitive structural checksum (pattern
// drift falls back to a full factorization) and Refactor rejects pivots
// that collapse relative to their row scale (numeric drift falls back the
// same way).

import (
	"fmt"
	"math"
	"math/cmplx"
	"sort"
)

// FNV-1a parameters for the structural checksum of a stamp-call stream.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// Pattern is the frozen structure of a stamped matrix: the CSR layout of
// every position one assembly pass touches, the recorded order of Add
// calls mapping each call to its slot in a value array, and a structural
// checksum of the call stream used to detect pattern drift.
type Pattern struct {
	n      int
	rowPtr []int32 // len n+1
	col    []int32 // len nnz; ascending within each row
	seq    []int32 // Add-call index -> slot in the value array
	sig    uint64  // FNV-1a over the (i,j) call stream
}

// N returns the matrix dimension.
func (p *Pattern) N() int { return p.n }

// Checksum returns the FNV-1a structural checksum of the recorded stamp
// stream. Two circuits whose assembly passes issue the same (i, j) call
// sequence share a checksum, and a circuit whose stamping changed (drift)
// does not — which makes it the content fingerprint the worker's
// compiled-system cache validates entries against.
func (p *Pattern) Checksum() uint64 { return p.sig }

// NNZ returns the number of distinct structural positions.
func (p *Pattern) NNZ() int { return len(p.col) }

// SlotOf returns the value-array slot of structural position (i, j), or -1
// when the pattern has no entry there. It lets tests and diagnostics
// address individual entries of a Vals array without replaying a stamp
// pass.
func (p *Pattern) SlotOf(i, j int) int {
	if i < 0 || i >= p.n {
		return -1
	}
	for s := p.rowPtr[i]; s < p.rowPtr[i+1]; s++ {
		if p.col[s] == int32(j) {
			return int(s)
		}
	}
	return -1
}

// Recorder captures the structure of one stamping pass. It implements the
// same Add interface the stamping code targets; values are ignored, only
// the (i,j) stream matters. Record exactly one pass, then Compile.
type Recorder struct {
	n     int
	calls []int64 // i*n + j per Add call, in call order
}

// NewRecorder returns a Recorder for an n-by-n system.
func NewRecorder(n int) *Recorder { return &Recorder{n: n} }

// Add records the position of one stamp call.
func (r *Recorder) Add(i, j int, v complex128) {
	r.calls = append(r.calls, int64(i)*int64(r.n)+int64(j))
}

// Compile freezes the recorded call stream into a Pattern.
func (r *Recorder) Compile() *Pattern {
	n := r.n
	p := &Pattern{n: n, seq: make([]int32, len(r.calls)), sig: fnvOffset}
	// Dedup positions and sort them row-major for the CSR layout.
	keys := append([]int64(nil), r.calls...)
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	uniq := keys[:0]
	for i, k := range keys {
		if i == 0 || k != keys[i-1] {
			uniq = append(uniq, k)
		}
	}
	p.rowPtr = make([]int32, n+1)
	p.col = make([]int32, len(uniq))
	slotOf := make(map[int64]int32, len(uniq))
	for s, k := range uniq {
		i, j := int(k/int64(n)), int(k%int64(n))
		p.rowPtr[i+1]++
		p.col[s] = int32(j)
		slotOf[k] = int32(s)
	}
	for i := 0; i < n; i++ {
		p.rowPtr[i+1] += p.rowPtr[i]
	}
	for t, k := range r.calls {
		p.seq[t] = slotOf[k]
		p.sig = (p.sig ^ uint64(k)) * fnvPrime
	}
	return p
}

// Vals is a flat value array matching a Pattern. It implements the stamp
// Add interface by replaying the recorded call sequence: each call lands
// in its precomputed slot with no map lookups and no allocations. A
// structural checksum accumulated during the replay detects stamp passes
// that deviate from the recorded pattern (Drift).
type Vals struct {
	p   *Pattern
	v   []complex128
	t   int
	sig uint64
}

// NewVals returns an empty value array for the pattern.
func (p *Pattern) NewVals() *Vals {
	return &Vals{p: p, v: make([]complex128, len(p.col))}
}

// Begin resets the values and the call cursor for a new stamping pass.
func (v *Vals) Begin() {
	for i := range v.v {
		v.v[i] = 0
	}
	v.t = 0
	v.sig = fnvOffset
}

// Add accumulates one stamp call into its recorded slot.
func (v *Vals) Add(i, j int, val complex128) {
	key := int64(i)*int64(v.p.n) + int64(j)
	v.sig = (v.sig ^ uint64(key)) * fnvPrime
	if v.t < len(v.p.seq) {
		v.v[v.p.seq[v.t]] += val
	}
	v.t++
}

// Drift reports whether the stamping pass since Begin deviated
// structurally (different call count or call stream) from the pattern.
// When it does, the values are meaningless and the caller must fall back
// to a full map-based factorization.
func (v *Vals) Drift() bool {
	return v.t != len(v.p.seq) || v.sig != v.p.sig
}

// Values exposes the stamped CSR value array (aliased, not copied).
func (v *Vals) Values() []complex128 { return v.v }

// Symbolic is the value-independent half of a factorization: the pivot
// order chosen by one full threshold/Markowitz analysis and the complete
// fill-in pattern of L and U as CSR-style index arrays. It is immutable
// after Analyze and safe to share read-only across worker goroutines;
// each worker owns its Numeric.
type Symbolic struct {
	pat  *Pattern
	n    int
	perm []int32 // elimination step -> original row index
	// L pattern grouped by target step: for step k, lsrc[lptr[k]:lptr[k+1]]
	// lists the source steps that update row k, in ascending order.
	lptr []int32
	lsrc []int32
	// U pattern: for step k, ucol[uptr[k]:uptr[k+1]] lists the surviving
	// columns of pivot row k (all > k), ascending. Columns are eliminated
	// in natural order, so step k pivots column k.
	uptr []int32
	ucol []int32
}

// FillIn returns the number of L multipliers plus U entries (diagonal
// included), the same measure LU.FillIn reports.
func (s *Symbolic) FillIn() int { return len(s.lsrc) + len(s.ucol) + s.n }

// Analyze runs the one-time pivot search and fill analysis on the pattern
// with the given values (one stamped frequency point of the sweep). The
// pivot choice is numeric — threshold partial pivoting with the Markowitz
// sparsity tie-break, exactly like Factor — but the recorded elimination
// order and fill pattern are value-independent: fill positions are kept
// even when a value happens to cancel, so the pattern is closed under the
// elimination at every other frequency.
func (p *Pattern) Analyze(vals []complex128) (*Symbolic, error) {
	n := p.n
	if len(vals) != len(p.col) {
		return nil, fmt.Errorf("sparse: values length %d, want %d", len(vals), len(p.col))
	}
	// Working rows as maps (one-time cost; the numeric phase never sees
	// them). Structural entries are kept even when numerically zero.
	work := make([]map[int32]complex128, n)
	colScale := make([]float64, n)
	rowScale := make([]float64, n)
	for i := 0; i < n; i++ {
		row := make(map[int32]complex128, p.rowPtr[i+1]-p.rowPtr[i])
		for idx := p.rowPtr[i]; idx < p.rowPtr[i+1]; idx++ {
			c := p.col[idx]
			row[c] = vals[idx]
			a := cmplx.Abs(vals[idx])
			if a > colScale[c] {
				colScale[c] = a
			}
			if a > rowScale[i] {
				rowScale[i] = a
			}
		}
		work[i] = row
	}
	sym := &Symbolic{
		pat:  p,
		n:    n,
		perm: make([]int32, n),
		lptr: make([]int32, n+1),
		uptr: make([]int32, n+1),
	}
	// lrows[k] collects the source steps updating the row eliminated at
	// step k; filled while rows are still identified by original index.
	lrows := make([][]int32, n)
	eliminated := make([]bool, n)
	stepOf := make([]int32, n) // original row -> elimination step
	for k := 0; k < n; k++ {
		col := int32(k)
		best := -1
		bestLen := 0
		maxMag := 0.0
		maxRow := -1
		for i := 0; i < n; i++ {
			if eliminated[i] {
				continue
			}
			if v, ok := work[i][col]; ok {
				if a := cmplx.Abs(v); a > maxMag {
					maxMag, maxRow = a, i
				}
			}
		}
		// Same min(column, pivot row) scale rule as Factor: see singularTol.
		scale := colScale[col]
		if maxRow >= 0 && rowScale[maxRow] < scale {
			scale = rowScale[maxRow]
		}
		if maxMag <= singularTol*scale {
			return nil, fmt.Errorf("%w (column %d)", ErrSingular, col)
		}
		for i := 0; i < n; i++ {
			if eliminated[i] {
				continue
			}
			v, ok := work[i][col]
			if !ok || cmplx.Abs(v) < pivotThreshold*maxMag {
				continue
			}
			if best == -1 || len(work[i]) < bestLen {
				best, bestLen = i, len(work[i])
			}
		}
		piv := best
		eliminated[piv] = true
		sym.perm[k] = int32(piv)
		stepOf[piv] = int32(k)
		pivRow := work[piv]
		pd := pivRow[col]
		if pd == 0 {
			// Structural entry with a cancelled value: elimination still
			// needs the position, but the analysis values cannot divide by
			// it. Threshold pivoting never selects it while a nonzero
			// candidate exists, so reaching here means the column is
			// numerically dead at the analysis frequency.
			return nil, fmt.Errorf("%w (column %d)", ErrSingular, col)
		}
		for i := 0; i < n; i++ {
			if eliminated[i] {
				continue
			}
			v, ok := work[i][col]
			if !ok {
				continue
			}
			mult := v / pd
			delete(work[i], col)
			for c, pv := range pivRow {
				if c == col {
					continue
				}
				// Keep fill positions even when the update cancels, so the
				// recorded pattern is valid for every value set.
				work[i][c] = work[i][c] - mult*pv
			}
			lrows[i] = append(lrows[i], int32(k))
		}
		// Freeze the surviving columns as the U row of step k.
		ur := make([]int32, 0, len(pivRow)-1)
		for c := range pivRow {
			if c != col {
				ur = append(ur, c)
			}
		}
		sort.Slice(ur, func(a, b int) bool { return ur[a] < ur[b] })
		sym.uptr[k+1] = sym.uptr[k] + int32(len(ur))
		sym.ucol = append(sym.ucol, ur...)
	}
	// Regroup the L pattern by elimination step of the target row. Source
	// steps were appended in ascending order, which is exactly the order
	// the numeric refactorization must apply them in.
	for k := 0; k < n; k++ {
		lr := lrows[sym.perm[k]]
		sym.lptr[k+1] = sym.lptr[k] + int32(len(lr))
		sym.lsrc = append(sym.lsrc, lr...)
	}
	return sym, nil
}

// refactorPivTol rejects a refactorization pivot that collapsed below
// this fraction of its row's input magnitude. The pivot order was chosen
// at a different frequency; when the values at the current frequency make
// that order numerically unusable, Refactor reports ErrSingular and the
// caller falls back to a full factorization with a fresh pivot search.
const refactorPivTol = 1e-12

// Numeric is a numeric factorization over a fixed Symbolic pattern. All
// storage is allocated once; Refactor and SolveInto never allocate. A
// Numeric is not safe for concurrent use — give each worker its own.
type Numeric struct {
	sym  *Symbolic
	lval []complex128 // aligned with sym.lsrc
	uval []complex128 // aligned with sym.ucol
	// udinv holds the reciprocals of the U diagonal: the substitution
	// loops multiply by them instead of dividing, which keeps the slow
	// runtime complex-division path out of the per-node inner loop.
	udinv []complex128
	w     []complex128 // dense scatter row, all-zero between calls
	// growth is the pivot-growth factor of the last successful Refactor:
	// max over steps of |u_kk| / (input magnitude of the pivot row). Both
	// factors are already computed by the refill loop, so tracking it is
	// free; see PivotGrowth.
	growth float64
}

// NewNumeric allocates the numeric storage for the pattern.
func (s *Symbolic) NewNumeric() *Numeric {
	return &Numeric{
		sym:   s,
		lval:  make([]complex128, len(s.lsrc)),
		uval:  make([]complex128, len(s.ucol)),
		udinv: make([]complex128, s.n),
		w:     make([]complex128, s.n),
	}
}

// Refactor refills the factorization from a freshly stamped value array
// (Vals.Values with Drift() false). It replays the recorded elimination —
// no pivot search, no maps, no allocations: one Gilbert–Peierls pass per
// row over the precomputed fill pattern. On a pivot failure the numeric
// state is invalid and the error wraps acerr.ErrSingularMatrix; the
// caller should refactor from scratch with Factor.
func (nm *Numeric) Refactor(vals []complex128) error {
	sym, p := nm.sym, nm.sym.pat
	if len(vals) != len(p.col) {
		return fmt.Errorf("sparse: values length %d, want %d", len(vals), len(p.col))
	}
	n := sym.n
	w := nm.w
	growth := 0.0
	for k := 0; k < n; k++ {
		row := sym.perm[k]
		scale := 0.0
		for idx := p.rowPtr[row]; idx < p.rowPtr[row+1]; idx++ {
			w[p.col[idx]] = vals[idx]
			if a := cmplx.Abs(vals[idx]); a > scale {
				scale = a
			}
		}
		for t := sym.lptr[k]; t < sym.lptr[k+1]; t++ {
			s := sym.lsrc[t]
			mult := w[s] * nm.udinv[s] // pivot column of step s is s
			w[s] = 0
			nm.lval[t] = mult
			if mult != 0 {
				for ui := sym.uptr[s]; ui < sym.uptr[s+1]; ui++ {
					w[sym.ucol[ui]] -= mult * nm.uval[ui]
				}
			}
		}
		d := w[k]
		w[k] = 0
		for ui := sym.uptr[k]; ui < sym.uptr[k+1]; ui++ {
			c := sym.ucol[ui]
			nm.uval[ui] = w[c]
			w[c] = 0
		}
		ad := cmplx.Abs(d)
		if !(ad > refactorPivTol*scale) || math.IsInf(ad, 0) {
			// !(x > y) also catches NaN. Scrub the scatter row so the next
			// Refactor starts from the all-zero invariant.
			for i := range w {
				w[i] = 0
			}
			return fmt.Errorf("%w (refactor pivot %d collapsed)", ErrSingular, k)
		}
		if scale > 0 {
			if g := ad / scale; g > growth {
				growth = g
			}
		}
		nm.udinv[k] = 1 / d
	}
	nm.growth = growth
	return nil
}

// SolveInto solves A x = b into the caller's x, in place: no allocations.
// b is unchanged and must not alias x.
func (nm *Numeric) SolveInto(x, b []complex128) error {
	sym := nm.sym
	n := sym.n
	if len(b) != n || len(x) != n {
		return fmt.Errorf("sparse: rhs/solution length %d/%d, want %d", len(b), len(x), n)
	}
	for k := 0; k < n; k++ {
		x[k] = b[sym.perm[k]]
	}
	// Forward substitution in elimination order (unit lower triangular).
	for k := 0; k < n; k++ {
		s := x[k]
		for t := sym.lptr[k]; t < sym.lptr[k+1]; t++ {
			if m := nm.lval[t]; m != 0 {
				s -= m * x[sym.lsrc[t]]
			}
		}
		x[k] = s
	}
	// Back substitution; U columns of step k are all > k, so overwriting
	// x[k] never clobbers a value a later (lower-index) step still needs.
	for k := n - 1; k >= 0; k-- {
		s := x[k]
		for ui := sym.uptr[k]; ui < sym.uptr[k+1]; ui++ {
			s -= nm.uval[ui] * x[sym.ucol[ui]]
		}
		x[k] = s * nm.udinv[k]
	}
	return checkFinite(x)
}

// checkFinite returns ErrSingular when the solution contains a non-finite
// component — the downstream stability analysis must never see Inf/NaN
// masquerading as an impedance. The common all-finite case is a tight
// branch-free accumulation: v-v is exactly 0 for finite v and NaN for
// Inf/NaN, so one bad component poisons the accumulator. Only on failure
// does the slow per-component scan run to name the offending index.
func checkFinite(x []complex128) error {
	acc := 0.0
	for _, v := range x {
		re, im := real(v), imag(v)
		acc += (re - re) + (im - im)
	}
	if acc == 0 {
		return nil
	}
	for i, v := range x {
		if cmplx.IsNaN(v) || cmplx.IsInf(v) {
			return fmt.Errorf("%w (non-finite solution component %d)", ErrSingular, i)
		}
	}
	return fmt.Errorf("%w (non-finite solution)", ErrSingular)
}
