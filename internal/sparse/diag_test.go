package sparse

import (
	"testing"
)

// TestSolveDiagAgreesWithSolveInto: on the ladder pattern across many
// value sets, the reach-restricted diagonal extraction must produce the
// same Z_kk a full forward+backward substitution does, for every node.
func TestSolveDiagAgreesWithSolveInto(t *testing.T) {
	const n = 24
	pat, vals := compile(n, ladderStamp(n, 1e6))
	sym, err := pat.Analyze(vals.Values())
	if err != nil {
		t.Fatal(err)
	}
	num := sym.NewNumeric()
	nodes := make([]int, n)
	for i := range nodes {
		nodes[i] = i
	}
	plan, err := sym.DiagPlan(nodes)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]complex128, n)
	b := make([]complex128, n)
	x := make([]complex128, n)
	for _, omega := range []float64{1, 1e3, 1e6, 1e9, 1e12} {
		calls := ladderStamp(n, omega)
		vals.Begin()
		replay(vals, calls)
		if err := num.Refactor(vals.Values()); err != nil {
			t.Fatalf("omega %g: %v", omega, err)
		}
		if err := num.SolveDiagInto(dst, plan); err != nil {
			t.Fatalf("omega %g: %v", omega, err)
		}
		for k := 0; k < n; k++ {
			b[k] = 1
			if err := num.SolveInto(x, b); err != nil {
				t.Fatalf("omega %g node %d: %v", omega, k, err)
			}
			b[k] = 0
			want := x[k]
			scale := cabs(want)
			if scale < 1 {
				scale = 1
			}
			if d := cabs(dst[k] - want); d > 1e-9*scale {
				t.Errorf("omega %g node %d: diag %v vs full %v (|d|=%g)",
					omega, k, dst[k], want, d)
			}
		}
	}
}

// TestSolveDiagSubsetAndOrder: the plan preserves caller node order and
// works for arbitrary subsets, including repeated nodes.
func TestSolveDiagSubsetAndOrder(t *testing.T) {
	const n = 16
	pat, vals := compile(n, ladderStamp(n, 1e5))
	sym, err := pat.Analyze(vals.Values())
	if err != nil {
		t.Fatal(err)
	}
	num := sym.NewNumeric()
	if err := num.Refactor(vals.Values()); err != nil {
		t.Fatal(err)
	}
	nodes := []int{9, 2, 2, 15, 0}
	plan, err := sym.DiagPlan(nodes)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]complex128, len(nodes))
	if err := num.SolveDiagInto(dst, plan); err != nil {
		t.Fatal(err)
	}
	b := make([]complex128, n)
	x := make([]complex128, n)
	for i, k := range nodes {
		b[k] = 1
		if err := num.SolveInto(x, b); err != nil {
			t.Fatal(err)
		}
		b[k] = 0
		if dst[i] != x[k] {
			t.Errorf("node %d (slot %d): diag %v vs full %v", k, i, dst[i], x[k])
		}
	}
	if dst[1] != dst[2] {
		t.Errorf("repeated node solved inconsistently: %v vs %v", dst[1], dst[2])
	}
}

// TestSolveDiagAllocationFree pins the steady-state contract of the
// batched diagonal solve: restamp + refactor + SolveDiagInto must not
// allocate at all once the plan and numeric storage exist.
func TestSolveDiagAllocationFree(t *testing.T) {
	const n = 32
	calls := ladderStamp(n, 1e6)
	pat, vals := compile(n, calls)
	sym, err := pat.Analyze(vals.Values())
	if err != nil {
		t.Fatal(err)
	}
	num := sym.NewNumeric()
	nodes := make([]int, n)
	for i := range nodes {
		nodes[i] = i
	}
	plan, err := sym.DiagPlan(nodes)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]complex128, n)
	allocs := testing.AllocsPerRun(50, func() {
		vals.Begin()
		replay(vals, calls)
		if vals.Drift() {
			t.Fatal("drift")
		}
		if err := num.Refactor(vals.Values()); err != nil {
			t.Fatal(err)
		}
		if err := num.SolveDiagInto(dst, plan); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state restamp+refactor+diag-solve allocated %v times per run, want 0", allocs)
	}
}

// TestDiagPlanErrors: out-of-range nodes are rejected at plan time; a plan
// built for one symbolic analysis is rejected by another's numeric; a
// mis-sized dst is rejected.
func TestDiagPlanErrors(t *testing.T) {
	const n = 8
	pat, vals := compile(n, ladderStamp(n, 1e4))
	sym, err := pat.Analyze(vals.Values())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sym.DiagPlan([]int{n}); err == nil {
		t.Error("out-of-range node accepted")
	}
	if _, err := sym.DiagPlan([]int{-1}); err == nil {
		t.Error("negative node accepted")
	}
	plan, err := sym.DiagPlan([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	num := sym.NewNumeric()
	if err := num.Refactor(vals.Values()); err != nil {
		t.Fatal(err)
	}
	if err := num.SolveDiagInto(make([]complex128, 3), plan); err == nil {
		t.Error("mis-sized dst accepted")
	}
	// A numeric over a different symbolic must reject the plan.
	pat2, vals2 := compile(n, ladderStamp(n, 1e4))
	sym2, err := pat2.Analyze(vals2.Values())
	if err != nil {
		t.Fatal(err)
	}
	num2 := sym2.NewNumeric()
	if err := num2.Refactor(vals2.Values()); err != nil {
		t.Fatal(err)
	}
	if err := num2.SolveDiagInto(make([]complex128, 2), plan); err == nil {
		t.Error("plan from a different symbolic accepted")
	}
	if err := num2.SolveDiagInto(make([]complex128, 2), nil); err == nil {
		t.Error("nil plan accepted")
	}
}

// blockStamp builds a block-diagonal stamp stream: k independent 3-node
// blocks, the shape of the resonator-field workload where reach
// restriction pays the most.
func blockStamp(k int, omega float64) []stampCall {
	var calls []stampCall
	for blk := 0; blk < k; blk++ {
		base := 3 * blk
		for a := 0; a < 3; a++ {
			calls = append(calls, stampCall{base + a, base + a,
				complex(1e-3*float64(a+1), omega*1e-12)})
		}
		for a := 0; a < 2; a++ {
			v := complex(1e-4, omega*1e-13)
			calls = append(calls,
				stampCall{base + a, base + a + 1, -v},
				stampCall{base + a + 1, base + a, -v})
		}
	}
	return calls
}

// TestDiagPlanReachRestriction: on a block-diagonal system the reach sets
// must stay inside each node's own block — RowsPerSolve far below the
// full-substitution row count — and the restricted solve must still agree
// with the full one.
func TestDiagPlanReachRestriction(t *testing.T) {
	const blocks = 8
	n := 3 * blocks
	calls := blockStamp(blocks, 1e6)
	pat, vals := compile(n, calls)
	sym, err := pat.Analyze(vals.Values())
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]int, n)
	for i := range nodes {
		nodes[i] = i
	}
	plan, err := sym.DiagPlan(nodes)
	if err != nil {
		t.Fatal(err)
	}
	// Each node's reach is at most its own 3-row block, forward and back.
	if got, limit := plan.RowsPerSolve(), int64(n*6); got > limit {
		t.Errorf("RowsPerSolve = %d, want <= %d on a block-diagonal system", got, limit)
	}
	if full := plan.RowsFull(); full != int64(n)*2*int64(n) {
		t.Errorf("RowsFull = %d, want %d", plan.RowsFull(), int64(n)*2*int64(n))
	}
	if ratio := float64(plan.RowsPerSolve()) / float64(plan.RowsFull()); ratio > 0.2 {
		t.Errorf("rows-visited ratio %g, want well under 0.2 for independent blocks", ratio)
	}
	num := sym.NewNumeric()
	if err := num.Refactor(vals.Values()); err != nil {
		t.Fatal(err)
	}
	dst := make([]complex128, n)
	if err := num.SolveDiagInto(dst, plan); err != nil {
		t.Fatal(err)
	}
	b := make([]complex128, n)
	x := make([]complex128, n)
	for k := 0; k < n; k++ {
		b[k] = 1
		if err := num.SolveInto(x, b); err != nil {
			t.Fatal(err)
		}
		b[k] = 0
		if dst[k] != x[k] {
			t.Errorf("node %d: diag %v vs full %v", k, dst[k], x[k])
		}
	}
}
