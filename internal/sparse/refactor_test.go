package sparse

import (
	"errors"
	"math/rand"
	"testing"

	"acstab/internal/acerr"
)

// stampCall is one recorded (i,j,value) triple, replayed in order to mimic
// a deterministic MNA stamping pass.
type stampCall struct {
	i, j int
	v    complex128
}

// ladderStamp builds the stamp stream of an n-node RC-ladder-like system:
// a tridiagonal conductance pattern with duplicate accumulation, the same
// shape MNA stamping produces. The values depend on omega so one pattern
// serves many "frequencies".
func ladderStamp(n int, omega float64) []stampCall {
	var calls []stampCall
	for k := 0; k < n-1; k++ {
		g := complex(1/(1e3*float64(k+1)), 0)
		jc := complex(0, omega*1e-12*float64(k+1))
		v := g + jc
		calls = append(calls,
			stampCall{k, k, v}, stampCall{k + 1, k + 1, v},
			stampCall{k, k + 1, -v}, stampCall{k + 1, k, -v})
	}
	for k := 0; k < n; k++ {
		calls = append(calls, stampCall{k, k, complex(1e-4, omega*1e-13)})
	}
	return calls
}

type adder interface{ Add(i, j int, v complex128) }

func replay(a adder, calls []stampCall) {
	for _, c := range calls {
		a.Add(c.i, c.j, c.v)
	}
}

// compile records one pass and returns the frozen pattern plus its Vals.
func compile(n int, calls []stampCall) (*Pattern, *Vals) {
	rec := NewRecorder(n)
	replay(rec, calls)
	pat := rec.Compile()
	vals := pat.NewVals()
	vals.Begin()
	replay(vals, calls)
	return pat, vals
}

func maxRelDiff(a, b []complex128) float64 {
	md := 0.0
	for i := range a {
		d := cabs(a[i] - b[i])
		s := cabs(a[i])
		if s < 1 {
			s = 1
		}
		if d/s > md {
			md = d / s
		}
	}
	return md
}

func cabs(v complex128) float64 {
	re, im := real(v), imag(v)
	if re < 0 {
		re = -re
	}
	if im < 0 {
		im = -im
	}
	if re > im {
		return re + im/2 // cheap upper-ish bound, fine for test tolerances
	}
	return im + re/2
}

// TestRefactorAgreesWithFactor sweeps one symbolic analysis across many
// value sets and checks the fixed-pivot refactorization solves to the same
// answer as a from-scratch pivoting factorization.
func TestRefactorAgreesWithFactor(t *testing.T) {
	const n = 24
	pat, vals := compile(n, ladderStamp(n, 1e6))
	sym, err := pat.Analyze(vals.Values())
	if err != nil {
		t.Fatal(err)
	}
	num := sym.NewNumeric()
	rng := rand.New(rand.NewSource(7))
	for _, omega := range []float64{1, 1e3, 1e6, 1e9, 1e12} {
		calls := ladderStamp(n, omega)
		vals.Begin()
		replay(vals, calls)
		if vals.Drift() {
			t.Fatalf("omega %g: unexpected drift", omega)
		}
		if err := num.Refactor(vals.Values()); err != nil {
			t.Fatalf("omega %g: %v", omega, err)
		}
		b := make([]complex128, n)
		for i := range b {
			b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		x := make([]complex128, n)
		if err := num.SolveInto(x, b); err != nil {
			t.Fatalf("omega %g: %v", omega, err)
		}
		m := New(n)
		replay(m, calls)
		want, err := Solve(m, b)
		if err != nil {
			t.Fatalf("omega %g: %v", omega, err)
		}
		if d := maxRelDiff(want, x); d > 1e-9 {
			t.Errorf("omega %g: refactor solution deviates by %g", omega, d)
		}
	}
}

// TestRefactorAllocationFree is the steady-state allocation contract of
// the AC hot path: restamp + refactor + solve must not allocate at all.
func TestRefactorAllocationFree(t *testing.T) {
	const n = 32
	calls := ladderStamp(n, 1e6)
	pat, vals := compile(n, calls)
	sym, err := pat.Analyze(vals.Values())
	if err != nil {
		t.Fatal(err)
	}
	num := sym.NewNumeric()
	b := make([]complex128, n)
	x := make([]complex128, n)
	b[0] = 1
	allocs := testing.AllocsPerRun(50, func() {
		vals.Begin()
		replay(vals, calls)
		if vals.Drift() {
			t.Fatal("drift")
		}
		if err := num.Refactor(vals.Values()); err != nil {
			t.Fatal(err)
		}
		if err := num.SolveInto(x, b); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state restamp+refactor+solve allocated %v times per run, want 0", allocs)
	}
}

// TestDriftDetection: a stamp pass that deviates from the recorded stream
// (extra call, missing call, or different position order) must be flagged.
func TestDriftDetection(t *testing.T) {
	const n = 8
	calls := ladderStamp(n, 1e3)
	pat, vals := compile(n, calls)

	// Extra call appended.
	vals.Begin()
	replay(vals, calls)
	vals.Add(0, n-1, 1)
	if !vals.Drift() {
		t.Error("extra stamp call not detected")
	}

	// Missing final call.
	vals.Begin()
	replay(vals, calls[:len(calls)-1])
	if !vals.Drift() {
		t.Error("missing stamp call not detected")
	}

	// Same count, different positions.
	vals.Begin()
	swapped := append([]stampCall(nil), calls...)
	swapped[0], swapped[1] = swapped[1], swapped[0]
	replay(vals, swapped)
	if !vals.Drift() {
		t.Error("reordered stamp stream not detected")
	}

	// The pristine stream still verifies after all that.
	vals.Begin()
	replay(vals, calls)
	if vals.Drift() {
		t.Error("false positive on pristine stream")
	}
	_ = pat
}

// TestRefactorSingularFallback: values that collapse a pivot under the
// frozen order must surface ErrSingular (wrapping acerr.ErrSingularMatrix)
// rather than emit garbage, and the Numeric must stay usable afterwards.
func TestRefactorSingularFallback(t *testing.T) {
	const n = 6
	calls := ladderStamp(n, 1e6)
	pat, vals := compile(n, calls)
	sym, err := pat.Analyze(vals.Values())
	if err != nil {
		t.Fatal(err)
	}
	num := sym.NewNumeric()

	// Zero every value: all pivots collapse.
	dead := make([]complex128, len(vals.Values()))
	if err := num.Refactor(dead); err == nil {
		t.Fatal("refactor accepted an all-zero matrix")
	} else if !errors.Is(err, acerr.ErrSingularMatrix) {
		t.Fatalf("error %v does not wrap ErrSingularMatrix", err)
	}

	// The workspace invariant must survive the error: a good refactor
	// right after still agrees with the from-scratch factorization.
	vals.Begin()
	replay(vals, calls)
	if err := num.Refactor(vals.Values()); err != nil {
		t.Fatalf("refactor after singular failure: %v", err)
	}
	b := make([]complex128, n)
	b[n-1] = 1
	x := make([]complex128, n)
	if err := num.SolveInto(x, b); err != nil {
		t.Fatal(err)
	}
	m := New(n)
	replay(m, calls)
	want, err := Solve(m, b)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxRelDiff(want, x); d > 1e-9 {
		t.Errorf("post-error refactor deviates by %g", d)
	}
}

// TestAnalyzeSingular: the symbolic phase itself rejects a numerically
// dead column.
func TestAnalyzeSingular(t *testing.T) {
	rec := NewRecorder(3)
	rec.Add(0, 0, 0)
	rec.Add(1, 1, 0)
	rec.Add(2, 2, 0)
	rec.Add(0, 1, 0)
	pat := rec.Compile()
	vals := pat.NewVals()
	vals.Begin()
	vals.Add(0, 0, 1)
	vals.Add(1, 1, 1)
	vals.Add(2, 2, 0) // column 2 is structurally present but numerically dead
	vals.Add(0, 1, 0.5)
	if _, err := pat.Analyze(vals.Values()); err == nil {
		t.Fatal("Analyze accepted a dead column")
	} else if !errors.Is(err, acerr.ErrSingularMatrix) {
		t.Fatalf("error %v does not wrap ErrSingularMatrix", err)
	}
}

// TestSymbolicSharedAcrossNumerics: one Symbolic, several Numerics (the
// parallel-worker arrangement) all produce the same solutions.
func TestSymbolicSharedAcrossNumerics(t *testing.T) {
	const n = 16
	calls := ladderStamp(n, 1e5)
	pat, vals := compile(n, calls)
	sym, err := pat.Analyze(vals.Values())
	if err != nil {
		t.Fatal(err)
	}
	b := make([]complex128, n)
	b[3] = 1
	var ref []complex128
	for w := 0; w < 3; w++ {
		num := sym.NewNumeric()
		if err := num.Refactor(vals.Values()); err != nil {
			t.Fatal(err)
		}
		x := make([]complex128, n)
		if err := num.SolveInto(x, b); err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = append([]complex128(nil), x...)
			continue
		}
		for i := range x {
			if x[i] != ref[i] {
				t.Fatalf("worker %d deviates at %d", w, i)
			}
		}
	}
}
