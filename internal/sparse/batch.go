package sparse

// Frequency-batched refactorization: an AC sweep refills the same frozen
// Gilbert–Peierls pattern once per frequency, so the index arrays (perm,
// lptr/lsrc, uptr/ucol, the CSR row layout) are streamed from memory K
// times for K frequencies while only the complex values change. A
// NumericBatch refills K factorizations in one pass over the pattern: the
// value arrays are lane-strided (structure-of-arrays — entry t of lane j
// lives at t*K+j), the scatter row is K wide, and every index decode and
// bounds check is amortized across the K lanes.
//
// Per lane the arithmetic is executed in exactly the order the serial
// Numeric.Refactor uses — same loads, same multiplier-zero skips, same
// update order — so each lane's factors, and the diagonal solves computed
// from them, are bitwise identical to a serial Refactor of the same
// values. Batching is therefore a pure throughput optimization: changing
// the batch size can never change a result.
//
// A lane whose pivot collapses (the same refactorPivTol test as the
// serial path) is marked not-OK and the caller refactors that frequency
// from scratch, exactly like the serial fallback. Dead lanes keep
// computing: the elimination's clear-as-consumed discipline is value-
// independent (the pattern is closed under the elimination), so even a
// lane full of Inf/NaN leaves the K-wide scatter row all-zero for the
// next block.

import (
	"fmt"
	"math"
	"math/cmplx"
)

// NumericBatch is a block of up to K numeric factorizations over one
// Symbolic pattern, refilled together. Storage is allocated once; Refactor
// and SolveDiagLanesInto never allocate. Not safe for concurrent use.
type NumericBatch struct {
	sym   *Symbolic
	k     int          // lane capacity (stride of the value arrays)
	m     int          // lanes filled by the last Refactor
	lval  []complex128 // lane-strided, aligned with sym.lsrc
	uval  []complex128 // lane-strided, aligned with sym.ucol
	udinv []complex128 // lane-strided reciprocal U diagonal
	w     []complex128 // K-wide scatter row, all-zero between calls
	d     []complex128 // per-lane pivot / accumulator scratch
	scale []float64    // per-lane row input magnitude
	ok    []bool
	grow  []float64
}

// NewNumericBatch allocates a K-lane batch for the pattern. K must be at
// least 1; typical sweeps use 4-16 (wide enough to amortize the index
// stream, small enough to keep the K-wide scatter row in cache).
func (s *Symbolic) NewNumericBatch(k int) *NumericBatch {
	if k < 1 {
		k = 1
	}
	return &NumericBatch{
		sym:   s,
		k:     k,
		lval:  make([]complex128, len(s.lsrc)*k),
		uval:  make([]complex128, len(s.ucol)*k),
		udinv: make([]complex128, s.n*k),
		w:     make([]complex128, s.n*k),
		d:     make([]complex128, k),
		scale: make([]float64, k),
		ok:    make([]bool, k),
		grow:  make([]float64, k),
	}
}

// K returns the lane capacity (and the stride of SolveDiagLanesInto's
// destination layout).
func (nb *NumericBatch) K() int { return nb.k }

// Lanes returns the number of lanes filled by the last Refactor.
func (nb *NumericBatch) Lanes() int { return nb.m }

// LaneOK reports whether lane j's last Refactor kept every pivot above the
// collapse threshold. Factors of a failed lane are garbage; the caller
// must re-solve that frequency via a full factorization.
func (nb *NumericBatch) LaneOK(j int) bool { return j >= 0 && j < nb.m && nb.ok[j] }

// LaneGrowth returns lane j's pivot-growth factor (max |u_kk| over the
// row's input magnitude), the same measure Numeric.PivotGrowth reports.
func (nb *NumericBatch) LaneGrowth(j int) float64 { return nb.grow[j] }

// Refactor refills all len(lanes) factorizations from freshly stamped
// value arrays (each a Vals.Values with Drift() false). One pass over the
// pattern serves every lane; per lane the result is bitwise identical to
// a serial Numeric.Refactor of the same values. Lane failures are
// per-lane (LaneOK), not errors; the error return covers only shape
// mismatches.
func (nb *NumericBatch) Refactor(lanes [][]complex128) error {
	sym, p := nb.sym, nb.sym.pat
	m := len(lanes)
	if m < 1 || m > nb.k {
		return fmt.Errorf("sparse: batch of %d lanes, capacity %d", m, nb.k)
	}
	for j, vals := range lanes {
		if len(vals) != len(p.col) {
			return fmt.Errorf("sparse: lane %d values length %d, want %d", j, len(vals), len(p.col))
		}
	}
	K := nb.k
	n := sym.n
	w := nb.w
	for j := 0; j < m; j++ {
		nb.ok[j] = true
		nb.grow[j] = 0
	}
	for k := 0; k < n; k++ {
		row := sym.perm[k]
		for j := 0; j < m; j++ {
			nb.scale[j] = 0
		}
		for idx := p.rowPtr[row]; idx < p.rowPtr[row+1]; idx++ {
			cK := int(p.col[idx]) * K
			for j := 0; j < m; j++ {
				v := lanes[j][idx]
				w[cK+j] = v
				if a := cmplx.Abs(v); a > nb.scale[j] {
					nb.scale[j] = a
				}
			}
		}
		for t := sym.lptr[k]; t < sym.lptr[k+1]; t++ {
			s := sym.lsrc[t]
			sK := int(s) * K
			tK := int(t) * K
			for j := 0; j < m; j++ {
				mult := w[sK+j] * nb.udinv[sK+j] // pivot column of step s is s
				w[sK+j] = 0
				nb.lval[tK+j] = mult
			}
			for ui := sym.uptr[s]; ui < sym.uptr[s+1]; ui++ {
				cK := int(sym.ucol[ui]) * K
				uiK := int(ui) * K
				for j := 0; j < m; j++ {
					if mult := nb.lval[tK+j]; mult != 0 {
						w[cK+j] -= mult * nb.uval[uiK+j]
					}
				}
			}
		}
		kK := k * K
		for j := 0; j < m; j++ {
			nb.d[j] = w[kK+j]
			w[kK+j] = 0
		}
		for ui := sym.uptr[k]; ui < sym.uptr[k+1]; ui++ {
			cK := int(sym.ucol[ui]) * K
			uiK := int(ui) * K
			for j := 0; j < m; j++ {
				nb.uval[uiK+j] = w[cK+j]
				w[cK+j] = 0
			}
		}
		for j := 0; j < m; j++ {
			d := nb.d[j]
			if nb.ok[j] {
				ad := cmplx.Abs(d)
				if !(ad > refactorPivTol*nb.scale[j]) || math.IsInf(ad, 0) {
					// Same test as the serial path; !(x > y) also catches NaN.
					// The lane keeps computing so its scatter stripe stays on
					// the clear-as-consumed discipline, but its factors are
					// dead from here on.
					nb.ok[j] = false
				} else if s := nb.scale[j]; s > 0 {
					if g := ad / s; g > nb.grow[j] {
						nb.grow[j] = g
					}
				}
			}
			nb.udinv[kK+j] = 1 / d
		}
	}
	nb.m = m
	return nil
}

// ExtractLane copies lane j's factors into a serial Numeric over the same
// Symbolic, so the full per-point machinery (SolveInto for residual
// probes, CondEst1, refinement) can run against a batch-refilled
// factorization. The copy is exact, so the extracted Numeric behaves
// bitwise identically to a serial Refactor of the lane's values.
func (nb *NumericBatch) ExtractLane(nm *Numeric, j int) error {
	if nm.sym != nb.sym {
		return fmt.Errorf("sparse: numeric was built for a different symbolic analysis")
	}
	if j < 0 || j >= nb.m || !nb.ok[j] {
		return fmt.Errorf("sparse: lane %d not available (m=%d)", j, nb.m)
	}
	K := nb.k
	for t := range nm.lval {
		nm.lval[t] = nb.lval[t*K+j]
	}
	for u := range nm.uval {
		nm.uval[u] = nb.uval[u*K+j]
	}
	for i := range nm.udinv {
		nm.udinv[i] = nb.udinv[i*K+j]
	}
	nm.growth = nb.grow[j]
	return nil
}

// SolveDiagLanesInto computes the driving-point entries for every node of
// the plan across all filled lanes: dst[i*K+j] = (A_j⁻¹)_{kk} for plan
// node i in lane j, with K = nb.K(). The reach-restricted forward and
// backward passes visit each plan row once for all lanes together. Dead
// lanes' entries are garbage (check LaneOK); finiteness is enforced for
// OK lanes only, matching the serial kernel's contract.
func (nb *NumericBatch) SolveDiagLanesInto(dst []complex128, plan *DiagPlan) error {
	sym := nb.sym
	if plan == nil || plan.sym != sym {
		return fmt.Errorf("sparse: diag plan was built for a different symbolic analysis")
	}
	K, m := nb.k, nb.m
	if len(dst) < len(plan.nodes)*K {
		return fmt.Errorf("sparse: dst length %d, want %d", len(dst), len(plan.nodes)*K)
	}
	w := nb.w
	acc := nb.d
	for i := range plan.nodes {
		fs := plan.fstep[plan.fptr[i]:plan.fptr[i+1]]
		bs := plan.bstep[plan.bptr[i]:plan.bptr[i+1]]
		f0K := int(fs[0]) * K
		for j := 0; j < m; j++ {
			w[f0K+j] = 1
		}
		for _, t := range fs {
			tK := int(t) * K
			for j := 0; j < m; j++ {
				acc[j] = w[tK+j]
			}
			for idx := sym.lptr[t]; idx < sym.lptr[t+1]; idx++ {
				sK := int(sym.lsrc[idx]) * K
				idxK := int(idx) * K
				for j := 0; j < m; j++ {
					if lm := nb.lval[idxK+j]; lm != 0 {
						acc[j] -= lm * w[sK+j]
					}
				}
			}
			for j := 0; j < m; j++ {
				w[tK+j] = acc[j]
			}
		}
		for _, t := range bs {
			tK := int(t) * K
			for j := 0; j < m; j++ {
				acc[j] = w[tK+j]
			}
			for ui := sym.uptr[t]; ui < sym.uptr[t+1]; ui++ {
				cK := int(sym.ucol[ui]) * K
				uiK := int(ui) * K
				for j := 0; j < m; j++ {
					acc[j] -= nb.uval[uiK+j] * w[cK+j]
				}
			}
			for j := 0; j < m; j++ {
				w[tK+j] = acc[j] * nb.udinv[tK+j]
			}
		}
		nodeK := int(plan.nodes[i]) * K
		iK := i * K
		for j := 0; j < m; j++ {
			dst[iK+j] = w[nodeK+j]
		}
		for _, t := range fs {
			tK := int(t) * K
			for j := 0; j < m; j++ {
				w[tK+j] = 0
			}
		}
		for _, t := range bs {
			tK := int(t) * K
			for j := 0; j < m; j++ {
				w[tK+j] = 0
			}
		}
	}
	for j := 0; j < m; j++ {
		if !nb.ok[j] {
			continue
		}
		sum := 0.0
		for i := 0; i < len(plan.nodes); i++ {
			v := dst[i*K+j]
			re, im := real(v), imag(v)
			sum += (re - re) + (im - im)
		}
		if sum != 0 {
			return fmt.Errorf("%w (non-finite diagonal in lane %d)", ErrSingular, j)
		}
	}
	return nil
}
