package sparse

// Reach-restricted diagonal extraction: the all-nodes stability sweep only
// ever consumes driving-point impedances Z_kk — inject the unit current
// e_k, read back component k — yet a full SolveInto walks every row of L
// and U per node per frequency. Because e_k is a 1-sparse right-hand side,
// the forward substitution can only make rows reachable from the injection
// step in the elimination DAG nonzero (the Gilbert–Peierls reach), and the
// backward substitution only needs the rows component k transitively
// depends on through the U pattern. Both sets are value-independent, so
// they are computed once per sweep from the Symbolic (DiagPlan) and then
// every frequency's batched solve touches O(|reach|) rows instead of
// O(nnz(L)+nnz(U)) — allocation-free, through the Numeric's existing
// scatter workspace.

import (
	"fmt"
	"sort"
)

// DiagPlan is the frozen road map of a batched diagonal extraction: for a
// fixed Symbolic and a fixed list of injection unknowns, the rows each
// node's reach-restricted forward solve must visit (in elimination order)
// and the suffix of rows its early-terminated backward solve must visit
// (in reverse elimination order). A DiagPlan is immutable after
// Symbolic.DiagPlan and safe to share read-only across sweep workers; the
// per-call scratch lives in each worker's Numeric.
type DiagPlan struct {
	sym   *Symbolic
	nodes []int32 // injection unknowns (columns of A⁻¹), caller order
	// Forward reach: fstep[fptr[i]:fptr[i+1]] lists the elimination steps
	// node i's sparse-RHS forward solve visits, ascending (topological
	// order of the L DAG under the frozen pivot permutation). The first
	// entry is the injection step itself — the step that eliminated the
	// injected row.
	fptr  []int32
	fstep []int32
	// Backward reach: bstep[bptr[i]:bptr[i+1]] lists the steps (== columns,
	// since columns are eliminated in natural order) node i's backward
	// solve visits, descending. The last entry is the node itself.
	bptr  []int32
	bstep []int32
}

// Nodes returns the number of injection nodes the plan covers.
func (p *DiagPlan) Nodes() int { return len(p.nodes) }

// RowsPerSolve returns the total number of rows one batched SolveDiagInto
// call visits (forward plus backward, summed over all nodes) — the
// numerator of the reach-restriction win.
func (p *DiagPlan) RowsPerSolve() int64 {
	return int64(len(p.fstep) + len(p.bstep))
}

// RowsFull returns the rows a full SolveInto per node would visit (every
// row once forward and once backward) — the denominator RowsPerSolve is
// measured against.
func (p *DiagPlan) RowsFull() int64 {
	return int64(len(p.nodes)) * 2 * int64(p.sym.n)
}

// DiagPlan computes the reach sets of a batched diagonal extraction over
// the given injection unknowns. It runs once per sweep (the sets depend
// only on the symbolic pattern, not on values); the transpose of the L
// pattern is built as a scratch adjacency and discarded.
func (s *Symbolic) DiagPlan(nodes []int) (*DiagPlan, error) {
	n := s.n
	p := &DiagPlan{
		sym:   s,
		nodes: make([]int32, len(nodes)),
		fptr:  make([]int32, len(nodes)+1),
		bptr:  make([]int32, len(nodes)+1),
	}
	// stepOf: original row index -> elimination step. The injected RHS e_k
	// permutes to a single 1 at the step that eliminated row k.
	stepOf := make([]int32, n)
	for k, r := range s.perm {
		stepOf[r] = int32(k)
	}
	// Transpose the L pattern (stored by target row) into source-step ->
	// target-steps adjacency, the edge direction a forward reach follows.
	tptr := make([]int32, n+1)
	for _, src := range s.lsrc {
		tptr[src+1]++
	}
	for i := 0; i < n; i++ {
		tptr[i+1] += tptr[i]
	}
	tadj := make([]int32, len(s.lsrc))
	next := append([]int32(nil), tptr[:n]...)
	for t := 0; t < n; t++ {
		for idx := s.lptr[t]; idx < s.lptr[t+1]; idx++ {
			src := s.lsrc[idx]
			tadj[next[src]] = int32(t)
			next[src]++
		}
	}
	// Per-node DFS with an epoch-stamped visited array so the scratch is
	// shared across nodes without clearing.
	seen := make([]int32, n)
	stack := make([]int32, 0, 64)
	epoch := int32(0)
	reach := func(start int32, ptr []int32, adj []int32, out []int32) []int32 {
		epoch++
		stack = stack[:0]
		stack = append(stack, start)
		seen[start] = epoch
		out = append(out, start)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for idx := ptr[v]; idx < ptr[v+1]; idx++ {
				w := adj[idx]
				if seen[w] != epoch {
					seen[w] = epoch
					out = append(out, w)
					stack = append(stack, w)
				}
			}
		}
		return out
	}
	for i, node := range nodes {
		if node < 0 || node >= n {
			return nil, fmt.Errorf("sparse: diag node %d out of range [0,%d)", node, n)
		}
		p.nodes[i] = int32(node)
		// Forward reach from the injection step; ascending = topological
		// order (every L edge goes from a lower to a higher step).
		from := len(p.fstep)
		p.fstep = reach(stepOf[node], tptr, tadj, p.fstep)
		fs := p.fstep[from:]
		sort.Slice(fs, func(a, b int) bool { return fs[a] < fs[b] })
		p.fptr[i+1] = int32(len(p.fstep))
		// Backward reach from column node via the U pattern; descending so
		// every dependency (a higher column) is solved first.
		from = len(p.bstep)
		p.bstep = reach(int32(node), s.uptr, s.ucol, p.bstep)
		bs := p.bstep[from:]
		sort.Slice(bs, func(a, b int) bool { return bs[a] > bs[b] })
		p.bptr[i+1] = int32(len(p.bstep))
	}
	return p, nil
}

// SolveDiagInto computes the driving-point entries dst[i] = (A⁻¹)_{kk} for
// each injection unknown k of the plan, batched through the Numeric's
// scatter workspace: per node, a reach-restricted sparse-RHS forward solve
// followed by an early-terminated backward solve, touching only the rows
// the plan recorded. It never allocates; the scatter row's all-zero
// invariant is restored before returning. The plan must have been built
// from the same Symbolic this Numeric was.
func (nm *Numeric) SolveDiagInto(dst []complex128, plan *DiagPlan) error {
	sym := nm.sym
	if plan == nil || plan.sym != sym {
		return fmt.Errorf("sparse: diag plan was built for a different symbolic analysis")
	}
	if len(dst) != len(plan.nodes) {
		return fmt.Errorf("sparse: dst length %d, want %d", len(dst), len(plan.nodes))
	}
	w := nm.w
	for i := range plan.nodes {
		fs := plan.fstep[plan.fptr[i]:plan.fptr[i+1]]
		bs := plan.bstep[plan.bptr[i]:plan.bptr[i+1]]
		// Permuted RHS: e_k lands as a single 1 at the step that eliminated
		// row k — the lowest forward-reach member. Rows outside the reach
		// stay exactly zero, so they are never loaded.
		w[fs[0]] = 1
		for _, t := range fs {
			acc := w[t]
			for idx := sym.lptr[t]; idx < sym.lptr[t+1]; idx++ {
				if m := nm.lval[idx]; m != 0 {
					acc -= m * w[sym.lsrc[idx]]
				}
			}
			w[t] = acc
		}
		// Early-terminated backward solve: only the columns component k
		// transitively depends on, highest first. Reads outside the
		// forward reach see the exact zero a full solve would.
		for _, t := range bs {
			acc := w[t]
			for ui := sym.uptr[t]; ui < sym.uptr[t+1]; ui++ {
				acc -= nm.uval[ui] * w[sym.ucol[ui]]
			}
			w[t] = acc * nm.udinv[t]
		}
		d := w[plan.nodes[i]]
		// Restore the all-zero scatter invariant (fs and bs may overlap;
		// double-zeroing is harmless).
		for _, t := range fs {
			w[t] = 0
		}
		for _, t := range bs {
			w[t] = 0
		}
		dst[i] = d
	}
	return checkFinite(dst)
}
